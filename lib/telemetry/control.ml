(* Global on/off switch for the whole telemetry layer.

   Instrumentation sites in the hot path guard on [on ()], which compiles
   to a single atomic load and branch — the bench overhead guard
   (bench/main.ml, "telemetry" section) holds the disabled path to within
   10% of the uninstrumented baseline. The flag is process-global rather
   than per-domain: a profiling run either observes itself or it doesn't.

   lint:allow-file atomic — the on/off flag must stay a single raw load:
   routing it through the traced seam would put a scheduling point inside
   every telemetry guard, and the model checker deliberately runs with
   telemetry dark. *)

let enabled = Atomic.make false

let on () = Atomic.get enabled
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
