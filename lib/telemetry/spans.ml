(* Span tracing with Chrome trace_event export.

   Each domain appends begin/end records to its own buffer (no locking on
   the record path); export interleaves all buffers into one Perfetto-
   compatible JSON document, with the domain id as the tid so per-domain
   lanes render separately. Records carry B/E phases rather than complete
   (X) events because strict pairing is itself a property we verify: a
   crash inside a span would otherwise silently drop the interval.

   Buffers are capped; once full, further spans count as dropped rather
   than grow without bound — a profiler must not OOM the process it
   observes. [span] still runs the thunk when disabled or saturated. *)

type record = { name : string; phase : char; ts_ns : int64 }

type buffer = {
  tid : int;
  records : record Ormp_util.Vec.t;
  mutable dropped : int;
  mutable depth : int;
}

let cap = 1 lsl 18

let buffers_mutex = Mutex.create ()
let buffers : buffer Ormp_util.Vec.t = Ormp_util.Vec.create ()

(* Timestamps are exported relative to this module-load epoch so the
   Perfetto timeline starts near zero instead of at machine uptime. *)
let epoch_ns = Ormp_util.Clock.now_ns ()

let key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          tid = (Domain.self () :> int);
          records = Ormp_util.Vec.create ();
          dropped = 0;
          depth = 0;
        }
      in
      Mutex.lock buffers_mutex;
      Ormp_util.Vec.push buffers b;
      Mutex.unlock buffers_mutex;
      b)

let emit b name phase =
  if Ormp_util.Vec.length b.records < cap then
    Ormp_util.Vec.push b.records { name; phase; ts_ns = Ormp_util.Clock.now_ns () }
  else b.dropped <- b.dropped + 1

let span ~name f =
  if not (Control.on ()) then f ()
  else begin
    let b = Domain.DLS.get key in
    emit b name 'B';
    b.depth <- b.depth + 1;
    (* The E record must go out even when [f] raises, or the export would
       fail its own nesting validation after any error path. *)
    Fun.protect
      ~finally:(fun () ->
        b.depth <- b.depth - 1;
        emit b name 'E')
      f
  end

let dropped () =
  Mutex.lock buffers_mutex;
  let n = Ormp_util.Vec.fold_left (fun acc b -> acc + b.dropped) 0 buffers in
  Mutex.unlock buffers_mutex;
  n

let reset () =
  Mutex.lock buffers_mutex;
  Ormp_util.Vec.iter
    (fun b ->
      Ormp_util.Vec.clear b.records;
      b.dropped <- 0;
      b.depth <- 0)
    buffers;
  Mutex.unlock buffers_mutex

(* --- Chrome trace_event export ---------------------------------------- *)

let to_json () =
  let module J = Ormp_util.Json in
  Mutex.lock buffers_mutex;
  let buffers = Ormp_util.Vec.to_array buffers in
  Mutex.unlock buffers_mutex;
  let events = ref [] in
  Array.iter
    (fun b ->
      (* A domain can be mid-span when we export (e.g. the exporting span
         itself); emit only the balanced prefix so the document always
         validates. *)
      let n = Ormp_util.Vec.length b.records in
      let balanced = ref 0 in
      let depth = ref 0 in
      for i = 0 to n - 1 do
        let r = Ormp_util.Vec.get b.records i in
        (match r.phase with 'B' -> Stdlib.incr depth | _ -> Stdlib.decr depth);
        if !depth = 0 then balanced := i + 1
      done;
      for i = !balanced - 1 downto 0 do
        let r = Ormp_util.Vec.get b.records i in
        let ts_us = Int64.to_float (Int64.sub r.ts_ns epoch_ns) /. 1000.0 in
        events :=
          J.Obj
            [
              ("name", J.String r.name);
              ("cat", J.String "ormp");
              ("ph", J.String (String.make 1 r.phase));
              ("ts", J.Float ts_us);
              ("pid", J.Int 1);
              ("tid", J.Int b.tid);
            ]
          :: !events
      done)
    buffers;
  J.Obj [ ("traceEvents", J.List !events); ("displayTimeUnit", J.String "ns") ]

(* Validates a parsed trace document: every event well-formed, and per-tid
   B/E phases strictly paired with matching names (LIFO). Returns the
   number of complete spans. Used by [ormp stats --check] and tests. *)
let validate_json (j : Ormp_util.Json.t) : (int, string) result =
  let module J = Ormp_util.Json in
  match J.member "traceEvents" j with
  | None -> Error "missing traceEvents"
  | Some ev -> (
    match J.to_list ev with
    | None -> Error "traceEvents is not a list"
    | Some events -> (
      let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
      let spans = ref 0 in
      let err = ref None in
      List.iteri
        (fun i e ->
          if !err = None then
            let field name conv =
              match Option.bind (J.member name e) conv with
              | Some v -> Ok v
              | None -> Error (Printf.sprintf "event %d: bad %s" i name)
            in
            match (field "name" J.to_str, field "ph" J.to_str, field "tid" J.to_int) with
            | Error m, _, _ | _, Error m, _ | _, _, Error m -> err := Some m
            | Ok name, Ok ph, Ok tid -> (
              let stack =
                match Hashtbl.find_opt stacks tid with
                | Some s -> s
                | None ->
                  let s = ref [] in
                  Hashtbl.replace stacks tid s;
                  s
              in
              match ph with
              | "B" -> stack := name :: !stack
              | "E" -> (
                match !stack with
                | top :: rest when top = name ->
                  stack := rest;
                  Stdlib.incr spans
                | top :: _ ->
                  err :=
                    Some
                      (Printf.sprintf "event %d: E %S closes open span %S (tid %d)" i name top
                         tid)
                | [] -> err := Some (Printf.sprintf "event %d: E %S with no open span" i name))
              | _ -> err := Some (Printf.sprintf "event %d: unknown phase %S" i ph)))
        events;
      match !err with
      | Some m -> Error m
      | None ->
        let unclosed = Hashtbl.fold (fun _ s acc -> acc + List.length !s) stacks 0 in
        if unclosed > 0 then Error (Printf.sprintf "%d unclosed span(s)" unclosed)
        else Ok !spans))
