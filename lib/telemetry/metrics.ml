(* Domain-safe metrics registry: monotonic counters, latest-wins gauges,
   and log2-bucketed histograms for latencies/sizes.

   Layout is built for a write-heavy hot path read by an occasional
   snapshot. Registration (rare, at module init) interns a name to a
   small integer id under a mutex; recording (hot) indexes a per-domain
   store obtained through Domain.DLS, so domains never contend on writes.
   A snapshot walks every domain's store and merges: counters sum,
   histograms merge bucket-wise, gauges keep the most recently stamped
   value. Snapshot reads race with writers by design — observability
   tolerates a torn read of an int; correctness-critical state lives
   elsewhere.

   Histograms record in log2 space (one bucket per eighth of a doubling,
   0..2^64) so one layout serves nanoseconds and byte sizes; exact
   count/sum/min/max ride alongside, and quantiles convert back with
   exp2. *)

module H = Ormp_util.Histogram

type kind = Counter | Gauge | Hist

type counter = int
type gauge = int
type histogram = int

(* --- registry (rare path, mutex-protected) ---------------------------- *)

let registry_mutex = Mutex.create ()
let ids : (string, int) Hashtbl.t = Hashtbl.create 64
let defs : (string * kind) Ormp_util.Vec.t = Ormp_util.Vec.create ()

let intern name kind =
  Mutex.lock registry_mutex;
  let id =
    match Hashtbl.find_opt ids name with
    | Some id ->
      let _, k = Ormp_util.Vec.get defs id in
      if k <> kind then begin
        Mutex.unlock registry_mutex;
        invalid_arg (Printf.sprintf "Metrics: %S re-registered with a different kind" name)
      end;
      id
    | None ->
      let id = Ormp_util.Vec.length defs in
      Hashtbl.replace ids name id;
      Ormp_util.Vec.push defs (name, kind);
      id
  in
  Mutex.unlock registry_mutex;
  id

let counter name : counter = intern name Counter
let gauge name : gauge = intern name Gauge
let histogram name : histogram = intern name Hist

(* --- per-domain stores (hot path) ------------------------------------- *)

(* log2 buckets: 8 per doubling over 0..2^64. *)
let log2_buckets = 512
let log2_hi = 64.0

type hist_cell = {
  h : H.t;
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
}

type store = {
  mutable counters : int array;
  mutable gauges : float array;
  mutable gstamps : int array;
  mutable hists : hist_cell option array;
}

let stores_mutex = Mutex.create ()
let stores : store Ormp_util.Vec.t = Ormp_util.Vec.create ()

(* Monotone stamp so a snapshot can pick the newest gauge write across
   domains without any cross-domain ordering on the values themselves.
   lint:allow-file atomic — telemetry-internal (here and the
   fetch_and_add stamp sites below), deliberately outside the traced
   transport seam: the checker runs with telemetry dark. *)
let gauge_clock = Atomic.make 0

let key =
  Domain.DLS.new_key (fun () ->
      let s =
        { counters = [||]; gauges = [||]; gstamps = [||]; hists = [||] }
      in
      Mutex.lock stores_mutex;
      Ormp_util.Vec.push stores s;
      Mutex.unlock stores_mutex;
      s)

let grow_int a n = Array.append a (Array.make (n - Array.length a) 0)
let grow_float a n = Array.append a (Array.make (n - Array.length a) 0.0)

let ensure_counter s id =
  if id >= Array.length s.counters then s.counters <- grow_int s.counters (max 16 (id + 1))

let ensure_gauge s id =
  if id >= Array.length s.gauges then begin
    s.gauges <- grow_float s.gauges (max 16 (id + 1));
    s.gstamps <- grow_int s.gstamps (max 16 (id + 1))
  end

let ensure_hist s id =
  if id >= Array.length s.hists then
    s.hists <- Array.append s.hists (Array.make (max 16 (id + 1) - Array.length s.hists) None);
  match s.hists.(id) with
  | Some c -> c
  | None ->
    let c =
      {
        h = H.create ~lo:0.0 ~hi:log2_hi ~buckets:log2_buckets;
        hcount = 0;
        hsum = 0.0;
        hmin = Float.infinity;
        hmax = Float.neg_infinity;
      }
    in
    s.hists.(id) <- Some c;
    c

let add (id : counter) n =
  let s = Domain.DLS.get key in
  ensure_counter s id;
  s.counters.(id) <- s.counters.(id) + n

let incr id = add id 1

let set (id : gauge) v =
  let s = Domain.DLS.get key in
  ensure_gauge s id;
  s.gauges.(id) <- v;
  s.gstamps.(id) <- 1 + Atomic.fetch_and_add gauge_clock 1

(* High-water gauge: keep the largest sample this domain has recorded
   (first sample always sticks). With a single writing domain the merged
   snapshot value is the true maximum; with several writers the snapshot's
   latest-stamp-wins rule returns the most recent domain's high water. *)
let set_max (id : gauge) v =
  let s = Domain.DLS.get key in
  ensure_gauge s id;
  if s.gstamps.(id) = 0 || v > s.gauges.(id) then begin
    s.gauges.(id) <- v;
    s.gstamps.(id) <- 1 + Atomic.fetch_and_add gauge_clock 1
  end

let observe (id : histogram) v =
  let s = Domain.DLS.get key in
  let c = ensure_hist s id in
  H.add c.h (if v <= 1.0 then 0.0 else Float.log2 v);
  c.hcount <- c.hcount + 1;
  c.hsum <- c.hsum +. v;
  if v < c.hmin then c.hmin <- v;
  if v > c.hmax then c.hmax <- v

(* --- snapshot ---------------------------------------------------------- *)

type hist_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

(* Quantiles recorded in log2 space convert back with exp2; every
   consumer of the registry's histograms (snapshot below, the daemon's
   per-session latency cells, the CLI renderers) must use this one
   conversion or their figures silently disagree. *)
let exp2_quantile h p = Float.exp2 (H.quantile h p)

let summarize h ~count ~sum ~min ~max =
  {
    count;
    sum;
    min;
    max;
    p50 = exp2_quantile h 0.5;
    p90 = exp2_quantile h 0.9;
    p99 = exp2_quantile h 0.99;
  }

(* --- single-writer histogram cell -------------------------------------- *)

(* The registry above is domain-safe and daemon-global; a select-loop
   server also wants per-session latency histograms that live and die
   with the session. [Local] is the same log2 layout and summary math
   without the DLS/merge machinery — single writer thread only. *)
module Local = struct
  type t = hist_cell

  let create () : t =
    {
      h = H.create ~lo:0.0 ~hi:log2_hi ~buckets:log2_buckets;
      hcount = 0;
      hsum = 0.0;
      hmin = Float.infinity;
      hmax = Float.neg_infinity;
    }

  let observe (c : t) v =
    H.add c.h (if v <= 1.0 then 0.0 else Float.log2 v);
    c.hcount <- c.hcount + 1;
    c.hsum <- c.hsum +. v;
    if v < c.hmin then c.hmin <- v;
    if v > c.hmax then c.hmax <- v

  let count (c : t) = c.hcount

  let summary (c : t) =
    if c.hcount = 0 then None
    else Some (summarize c.h ~count:c.hcount ~sum:c.hsum ~min:c.hmin ~max:c.hmax)
end

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_hists : (string * hist_summary) list;
}

let snapshot () =
  Mutex.lock registry_mutex;
  let defs = Ormp_util.Vec.to_array defs in
  Mutex.unlock registry_mutex;
  Mutex.lock stores_mutex;
  let stores = Ormp_util.Vec.to_array stores in
  Mutex.unlock stores_mutex;
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  Array.iteri
    (fun id (name, kind) ->
      match kind with
      | Counter ->
        let v =
          Array.fold_left
            (fun acc s -> if id < Array.length s.counters then acc + s.counters.(id) else acc)
            0 stores
        in
        if v <> 0 then counters := (name, v) :: !counters
      | Gauge ->
        let v = ref 0.0 and stamp = ref 0 in
        Array.iter
          (fun s ->
            if id < Array.length s.gauges && s.gstamps.(id) > !stamp then begin
              stamp := s.gstamps.(id);
              v := s.gauges.(id)
            end)
          stores;
        if !stamp > 0 then gauges := (name, !v) :: !gauges
      | Hist ->
        let merged = ref None in
        Array.iter
          (fun s ->
            if id < Array.length s.hists then
              match s.hists.(id) with
              | None -> ()
              | Some c -> (
                match !merged with
                | None ->
                  merged :=
                    Some
                      {
                        h = H.merge c.h (H.create ~lo:0.0 ~hi:log2_hi ~buckets:log2_buckets);
                        hcount = c.hcount;
                        hsum = c.hsum;
                        hmin = c.hmin;
                        hmax = c.hmax;
                      }
                | Some m ->
                  merged :=
                    Some
                      {
                        h = H.merge m.h c.h;
                        hcount = m.hcount + c.hcount;
                        hsum = m.hsum +. c.hsum;
                        hmin = Float.min m.hmin c.hmin;
                        hmax = Float.max m.hmax c.hmax;
                      }))
          stores;
        match !merged with
        | None -> ()
        | Some m when m.hcount = 0 -> ()
        | Some m ->
          hists :=
            (name, summarize m.h ~count:m.hcount ~sum:m.hsum ~min:m.hmin ~max:m.hmax)
            :: !hists)
    defs;
  {
    snap_counters = List.rev !counters;
    snap_gauges = List.rev !gauges;
    snap_hists = List.rev !hists;
  }

(* Zero every store in place. Metric ids stay interned — handles held by
   instrumentation sites remain valid. Used by benches between runs and by
   tests; concurrent writers will race harmlessly. *)
let reset () =
  Mutex.lock stores_mutex;
  let stores = Ormp_util.Vec.to_array stores in
  Mutex.unlock stores_mutex;
  Array.iter
    (fun s ->
      Array.fill s.counters 0 (Array.length s.counters) 0;
      Array.fill s.gauges 0 (Array.length s.gauges) 0.0;
      Array.fill s.gstamps 0 (Array.length s.gstamps) 0;
      s.hists <- Array.make (Array.length s.hists) None)
    stores

(* --- export ------------------------------------------------------------ *)

let to_sexp snap =
  let module S = Ormp_util.Sexp in
  let float_atom f = S.Atom (Printf.sprintf "%.6g" f) in
  S.List
    [
      S.List
        (S.Atom "counters"
        :: List.map (fun (n, v) -> S.List [ S.Atom n; S.int v ]) snap.snap_counters);
      S.List
        (S.Atom "gauges"
        :: List.map (fun (n, v) -> S.List [ S.Atom n; float_atom v ]) snap.snap_gauges);
      S.List
        (S.Atom "histograms"
        :: List.map
             (fun (n, h) ->
               S.List
                 [
                   S.Atom n;
                   S.field "count" [ S.int h.count ];
                   S.field "sum" [ float_atom h.sum ];
                   S.field "min" [ float_atom h.min ];
                   S.field "max" [ float_atom h.max ];
                   S.field "p50" [ float_atom h.p50 ];
                   S.field "p90" [ float_atom h.p90 ];
                   S.field "p99" [ float_atom h.p99 ];
                 ])
             snap.snap_hists);
    ]

(* One histogram-rendering convention shared by `ormp stats` and the
   daemon's live stats snapshot: same column order, same %.6g formatting. *)
let hist_header = [ "histogram"; "count"; "sum"; "min"; "max"; "p50"; "p90"; "p99" ]

let hist_row name (h : hist_summary) =
  let f v = Printf.sprintf "%.6g" v in
  [ name; string_of_int h.count; f h.sum; f h.min; f h.max; f h.p50; f h.p90; f h.p99 ]

(* Parse one histogram object as emitted by [to_json] back into a summary
   (used by the CLI renderers); [None] if any field is missing/mistyped. *)
let hist_summary_of_json (j : Ormp_util.Json.t) : hist_summary option =
  let module J = Ormp_util.Json in
  try
    let num k = Option.get (Option.bind (J.member k j) J.to_float) in
    Some
      {
        count = Option.get (Option.bind (J.member "count" j) J.to_int);
        sum = num "sum";
        min = num "min";
        max = num "max";
        p50 = num "p50";
        p90 = num "p90";
        p99 = num "p99";
      }
  with Invalid_argument _ -> None

let to_json snap =
  let module J = Ormp_util.Json in
  J.Obj
    [
      ("counters", J.Obj (List.map (fun (n, v) -> (n, J.Int v)) snap.snap_counters));
      ("gauges", J.Obj (List.map (fun (n, v) -> (n, J.Float v)) snap.snap_gauges));
      ( "histograms",
        J.Obj
          (List.map
             (fun (n, h) ->
               ( n,
                 J.Obj
                   [
                     ("count", J.Int h.count);
                     ("sum", J.Float h.sum);
                     ("min", J.Float h.min);
                     ("max", J.Float h.max);
                     ("p50", J.Float h.p50);
                     ("p90", J.Float h.p90);
                     ("p99", J.Float h.p99);
                   ] ))
             snap.snap_hists) );
    ]
