(* Facade for the telemetry layer: one module to open at instrumentation
   sites and one entry point for the CLI to dump everything a run
   collected. See DESIGN.md §10 for the metric and span schema. *)

module Control = Control
module Log = Log
module Metrics = Metrics
module Spans = Spans
module Heartbeat = Heartbeat
module Flight = Flight

let on = Control.on
let enable = Control.enable
let disable = Control.disable

let now_ns = Ormp_util.Clock.now_ns

let span = Spans.span

(* Export file names under the --telemetry directory. *)
let metrics_sexp_file = "metrics.sexp"
let metrics_json_file = "metrics.json"
let trace_file = "trace.json"

let write_reports ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let snap = Metrics.snapshot () in
  Ormp_util.Sexp.save (Filename.concat dir metrics_sexp_file) (Metrics.to_sexp snap);
  let write_json name j =
    let oc = open_out (Filename.concat dir name) in
    output_string oc (Ormp_util.Json.to_string j);
    output_char oc '\n';
    close_out oc
  in
  write_json metrics_json_file (Metrics.to_json snap);
  write_json trace_file (Spans.to_json ())

let reset () =
  Metrics.reset ();
  Spans.reset ()
