(* Leveled diagnostics for library code.

   Library modules must never write to stderr unconditionally (a --quiet
   CLI run or an embedding application owns that stream); they report
   through here instead. The level starts from the ORMP_LOG environment
   variable (quiet|error|warn|info|debug, default warn) and the CLI can
   override it with set_level.

   lint:allow-file atomic — the level gate is a raw load by design, same
   reasoning as Control.on.
   lint:allow-file bare-eprintf — this module IS the stderr sink the rule
   points everyone else at. *)

type level = Quiet | Error | Warn | Info | Debug

let severity = function Quiet -> 0 | Error -> 1 | Warn -> 2 | Info -> 3 | Debug -> 4

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "quiet" | "off" | "none" -> Some Quiet
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let level_name = function
  | Quiet -> "quiet"
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let default_level () =
  match Sys.getenv_opt "ORMP_LOG" with
  | None -> Warn
  | Some s -> ( match level_of_string s with Some l -> l | None -> Warn)

let current = Atomic.make (severity (default_level ()))

let set_level l = Atomic.set current (severity l)
let level () =
  match Atomic.get current with
  | 0 -> Quiet
  | 1 -> Error
  | 2 -> Warn
  | 3 -> Info
  | _ -> Debug

let enabled l = severity l <= Atomic.get current

(* Tests capture output by swapping the emitter; default goes to stderr
   in one write so concurrent domains don't interleave mid-line. *)
let emitter : (string -> unit) ref =
  ref (fun line ->
      output_string stderr line;
      flush stderr)

let set_emitter f = emitter := f

let logf lvl ?src fmt =
  Printf.ksprintf
    (fun msg ->
      if enabled lvl then
        let prefix =
          match src with
          | Some s -> Printf.sprintf "[%s] %s: " (level_name lvl) s
          | None -> Printf.sprintf "[%s] " (level_name lvl)
        in
        !emitter (prefix ^ msg ^ "\n"))
    fmt

let errf ?src fmt = logf Error ?src fmt
let warnf ?src fmt = logf Warn ?src fmt
let infof ?src fmt = logf Info ?src fmt
let debugf ?src fmt = logf Debug ?src fmt
