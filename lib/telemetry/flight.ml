(* Flight recorder: a bounded ring of recent notable daemon events
   (session lifecycle, acks, sheds, protocol errors, kills) kept in
   memory at all times, dumped as a post-mortem bundle when a session
   fails. The ring mirrors the Spans buffer discipline — fixed capacity,
   overwrite-oldest with a dropped counter, never grow — because a
   recorder must not OOM the process it is recording.

   A dump writes two files: `trace.json`, a Chrome trace_event document
   of zero-duration B/E pairs (one per recorded event, args carrying the
   session token and detail) that passes [Spans.validate_json]; and
   `record.sexp`, the same events plus the dump reason in a
   grep-friendly sexp. Single-writer: the daemon's select loop owns the
   ring, so there is no locking. *)

type event = { ts_ns : int64; kind : string; session : string; detail : string }

type t = {
  cap : int;
  ring : event array;
  mutable total : int; (* events ever recorded; ring slot = total mod cap *)
  epoch_ns : int64;
}

let default_cap = 1024

let create ?(cap = default_cap) () =
  if cap <= 0 then invalid_arg "Flight.create: cap must be positive";
  {
    cap;
    ring = Array.make cap { ts_ns = 0L; kind = ""; session = ""; detail = "" };
    total = 0;
    epoch_ns = Ormp_util.Clock.now_ns ();
  }

let record t ~kind ~session ~detail =
  t.ring.(t.total mod t.cap) <-
    { ts_ns = Ormp_util.Clock.now_ns (); kind; session; detail };
  t.total <- t.total + 1

let recorded t = t.total
let dropped t = if t.total > t.cap then t.total - t.cap else 0

(* Oldest-to-newest fold over whatever the ring still holds. *)
let fold f acc t =
  let live = min t.total t.cap in
  let first = t.total - live in
  let acc = ref acc in
  for i = first to t.total - 1 do
    acc := f !acc t.ring.(i mod t.cap)
  done;
  !acc

let events t = List.rev (fold (fun acc e -> e :: acc) [] t)

(* --- export ------------------------------------------------------------ *)

(* Each event becomes an instantaneous B/E pair (same name, same tid,
   same timestamp) so the document satisfies the strict LIFO pairing
   that [Spans.validate_json] enforces; session/detail ride in args,
   which the validator ignores. *)
let to_trace_json t =
  let module J = Ormp_util.Json in
  let events =
    fold
      (fun acc e ->
        let ts_us = Int64.to_float (Int64.sub e.ts_ns t.epoch_ns) /. 1000.0 in
        let ev ph =
          J.Obj
            [
              ("name", J.String e.kind);
              ("cat", J.String "flight");
              ("ph", J.String ph);
              ("ts", J.Float ts_us);
              ("pid", J.Int 1);
              ("tid", J.Int 0);
              ( "args",
                J.Obj
                  [ ("session", J.String e.session); ("detail", J.String e.detail) ] );
            ]
        in
        ev "E" :: ev "B" :: acc)
      [] t
  in
  J.Obj
    [ ("traceEvents", J.List (List.rev events)); ("displayTimeUnit", J.String "ns") ]

let to_sexp ?(reason = "") t =
  let module S = Ormp_util.Sexp in
  let evs =
    List.map
      (fun e ->
        S.List
          [
            S.Atom (Int64.to_string e.ts_ns);
            S.Atom e.kind;
            S.Atom e.session;
            S.Atom e.detail;
          ])
      (events t)
  in
  S.List
    [
      S.Atom "flight";
      S.field "reason" [ S.Atom reason ];
      S.field "recorded" [ S.int (recorded t) ];
      S.field "dropped" [ S.int (dropped t) ];
      S.field "events" evs;
    ]

let trace_file = "trace.json"
let record_file = "record.sexp"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* Write the post-mortem bundle under [dir] (created as needed). Best
   effort by design: a full disk must not take the daemon down with it,
   so failures surface as [Error] for the caller to count, not raise. *)
let dump t ~dir ~reason : (unit, string) result =
  try
    mkdir_p dir;
    let oc = open_out_bin (Filename.concat dir trace_file) in
    output_string oc (Ormp_util.Json.to_string (to_trace_json t));
    output_char oc '\n';
    close_out oc;
    Ormp_util.Sexp.save (Filename.concat dir record_file) (to_sexp ~reason t);
    Ok ()
  with Sys_error m -> Error m
