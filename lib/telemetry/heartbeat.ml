(* Heartbeat samples: periodic one-line progress records for a long
   profiling session.

   Written append-only as one s-expression per line so a crashed session
   leaves a readable prefix and `ormp session status --watch` can tail the
   file without any framing protocol. Fields capture the rates the paper
   cares about (events/sec through the profiler) plus the state sizes
   that govern memory: live objects in the OMC, grammar symbols across
   the Sequitur dimensions, LEAP streams, and the on-disk journal and
   snapshot footprint. *)

type sample = {
  wall_s : float;  (** seconds since session start (monotonic) *)
  position : int;  (** events consumed so far *)
  events_per_sec : float;  (** since the previous sample *)
  live_objects : int;
  grammar_symbols : int;  (** sum over all grammar dimensions *)
  leap_streams : int;
  journal_bytes : int;
  snapshot_bytes : int;  (** newest snapshot on disk; 0 before the first *)
  last_checkpoint : int;  (** position of the newest checkpoint; 0 if none *)
  degraded : string list;  (** active degradation kinds, e.g. checkpointing *)
}

module S = Ormp_util.Sexp

let to_sexp s =
  let f v = S.Atom (Printf.sprintf "%.6g" v) in
  S.List
    [
      S.field "wall_s" [ f s.wall_s ];
      S.field "position" [ S.int s.position ];
      S.field "events_per_sec" [ f s.events_per_sec ];
      S.field "live_objects" [ S.int s.live_objects ];
      S.field "grammar_symbols" [ S.int s.grammar_symbols ];
      S.field "leap_streams" [ S.int s.leap_streams ];
      S.field "journal_bytes" [ S.int s.journal_bytes ];
      S.field "snapshot_bytes" [ S.int s.snapshot_bytes ];
      S.field "last_checkpoint" [ S.int s.last_checkpoint ];
      S.field "degraded" (List.map S.atom s.degraded);
    ]

let of_sexp sexp =
  let ( let* ) = Result.bind in
  let int1 name =
    match S.assoc name sexp with
    | Ok [ v ] -> S.as_int v
    | Ok _ -> Error (name ^ ": expected one value")
    | Error e -> Error e
  in
  let float1 name =
    match S.assoc name sexp with
    | Ok [ v ] -> Result.map float_of_string (S.as_atom v)
    | Ok _ -> Error (name ^ ": expected one value")
    | Error e -> Error e
  in
  try
    let* wall_s = float1 "wall_s" in
    let* position = int1 "position" in
    let* events_per_sec = float1 "events_per_sec" in
    let* live_objects = int1 "live_objects" in
    let* grammar_symbols = int1 "grammar_symbols" in
    let* leap_streams = int1 "leap_streams" in
    let* journal_bytes = int1 "journal_bytes" in
    let* snapshot_bytes = int1 "snapshot_bytes" in
    let* last_checkpoint = int1 "last_checkpoint" in
    let degraded =
      match S.assoc "degraded" sexp with
      | Ok atoms -> List.filter_map (fun a -> Result.to_option (S.as_atom a)) atoms
      | Error _ -> []
    in
    Ok
      {
        wall_s;
        position;
        events_per_sec;
        live_objects;
        grammar_symbols;
        leap_streams;
        journal_bytes;
        snapshot_bytes;
        last_checkpoint;
        degraded;
      }
  with Failure _ -> Error "heartbeat: malformed number"

let append path s =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (S.to_string (to_sexp s));
  output_char oc '\n';
  close_out oc

(* Loads every well-formed line; a torn trailing line (crash mid-write)
   is skipped rather than failing the whole file. *)
let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rec go acc =
      (* lint:allow blocking-io — tails a regular heartbeat file *)
      match input_line ic with
      | exception End_of_file -> List.rev acc
      | line ->
        if String.trim line = "" then go acc
        else
          let acc =
            match S.of_string line with
            | Error _ -> acc
            | Ok sexp -> ( match of_sexp sexp with Ok s -> s :: acc | Error _ -> acc)
          in
          go acc
    in
    let samples = go [] in
    close_in ic;
    samples
  end
