(* ORMP-MC: a dscheck-style systematic concurrency model checker for the
   repo's atomics-based transport.

   The code under test is the *production* Spsc/Worker source,
   instantiated through the Atomics_intf seam with the traced scheduler
   below: every atomic get/set/incr, spawn, join and backoff hint becomes
   an effect, the explorer owns every continuation, and a DFS with
   dynamic partial-order reduction (Flanagan–Godefroid backtrack sets
   with vector-clock happens-before filtering) enumerates one
   representative of every Mazurkiewicz trace of the program. Properties
   are plain assertions in the litmus body ([check_that]); a failing
   schedule is replayed into a printable step list.

   Three design points worth naming:

   - Threads are one-shot effect continuations, so backtracking
     re-executes the whole litmus from scratch under a forced schedule
     prefix (the dscheck approach). Litmus programs must therefore be
     deterministic given the schedule — no clocks, no Random.

   - Spin loops would make exhaustive exploration infinite, so
     [cpu_relax]/[sleep] apply the standard await transformation: the
     caller blocks until some other thread performs an atomic write.
     A re-read with no intervening write cannot change a spin condition
     that is a function of atomics (true of every wait in the transport),
     so no observable behavior is lost; a thread still blocked when no
     writer can ever run again is reported as a livelock, which is
     exactly what the real spin loop would do — forever.

   - The happens-before used for race filtering is the SC one: a read
     synchronizes with the last write to the same location, a write with
     the last write and every read since. Joins/spawns edge through
     per-thread "lifetime" pseudo-objects, so producer-side assertions
     after [Worker.stop]/[drain] are correctly ordered after consumer
     steps — the drain-barrier litmus checks precisely that. *)

module ISet = Set.Make (Int)

let max_procs = 16
let life_base = 1_000_000

type op_kind = Start | Finish | Spawn | Join | Get | Set | Incr | Wait

let op_name = function
  | Start -> "start"
  | Finish -> "finish"
  | Spawn -> "spawn"
  | Join -> "join"
  | Get -> "get"
  | Set -> "set"
  | Incr -> "incr"
  | Wait -> "wait"

type descr = {
  kind : op_kind;
  mutable obj : int;  (* location id; [life_base + pid] for lifetimes; -1 = none *)
  mutable label : string;
  mutable target : int;  (* proc id for Spawn/Join; -1 otherwise *)
}

exception Violation of string

let check_that cond msg = if not cond then raise (Violation msg)

type proc = {
  pid : int;
  mutable resume : unit -> unit;
  mutable pending : descr option;  (* next op; None while running or finished *)
  mutable finished : bool;
  mutable wait_from : int;  (* wake threshold: blocked while [wseq <= wait_from] *)
  mutable wait_mark : int;  (* wseq when this proc's last Wait executed *)
  mutable in_spin : bool;  (* a Wait executed with no write by this proc since *)
}

type exec = {
  procs : proc option array;
  mutable nprocs : int;
  mutable next_obj : int;
  mutable wseq : int;  (* count of executed atomic writes, for Wait wakeups *)
}

let cur : exec option ref = ref None

let the_exec () =
  match !cur with
  | Some e -> e
  | None -> failwith "Mc: traced primitive used outside Mc.check"

type _ Effect.t += Op : descr * (descr -> 'a) -> 'a Effect.t

let handler (p : proc) =
  let open Effect.Deep in
  {
    retc = (fun () ->
      p.finished <- true;
      p.pending <- None);
    exnc = (fun ex -> raise ex);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Op (d, run) ->
          Some
            (fun (k : (a, unit) continuation) ->
              p.pending <- Some d;
              (* A first Wait after progress is always enabled — the spin
                 condition was read across several earlier steps, so a write
                 landing between those reads and this suspension must not be
                 treated as already seen. Only a *repeated* Wait blocks, and
                 it wakes on any write since the previous Wait executed
                 (i.e. since the current spin iteration began re-reading). *)
              if d.kind = Wait then p.wait_from <- (if p.in_spin then p.wait_mark else -1);
              p.resume <- (fun () -> continue k (run d)))
        | _ -> None);
  }

let make_proc e body =
  if e.nprocs >= max_procs then failwith "Mc: too many threads";
  let pid = e.nprocs in
  e.nprocs <- pid + 1;
  let p =
    {
      pid;
      resume = (fun () -> ());
      pending =
        Some { kind = Start; obj = life_base + pid; label = Printf.sprintf "p%d" pid; target = -1 };
      finished = false;
      wait_from = -1;
      wait_mark = -1;
      in_spin = false;
    }
  in
  e.procs.(pid) <- Some p;
  (* Executing the Start op = beginning the fiber; it runs to its first
     traced operation (or completion) and suspends there. *)
  p.resume <-
    (fun () ->
      Effect.Deep.match_with
        (fun () ->
          body ();
          Effect.perform
            (Op
               ( { kind = Finish; obj = life_base + pid; label = Printf.sprintf "p%d" pid; target = -1 },
                 fun _ -> () )))
        () (handler p));
  p

(* --- the traced seam implementation ----------------------------------- *)

module TAtomic = struct
  type 'a t = { mutable v : 'a; oid : int; oname : string }

  let make ?(name = "atomic") v =
    let e = the_exec () in
    let oid = e.next_obj in
    e.next_obj <- oid + 1;
    { v; oid; oname = Printf.sprintf "%s#%d" name oid }

  let op kind c run =
    Effect.perform (Op ({ kind; obj = c.oid; label = c.oname; target = -1 }, run))

  let get c = op Get c (fun _ -> c.v)
  let set c v = op Set c (fun _ -> c.v <- v)
  let incr c = op Incr c (fun _ -> c.v <- c.v + 1)
end

module Sched = struct
  module Atomic = TAtomic

  type handle = int

  let spawn f =
    Effect.perform
      (Op
         ( { kind = Spawn; obj = -1; label = "?"; target = -1 },
           fun d ->
             let e = the_exec () in
             let p = make_proc e f in
             d.obj <- life_base + p.pid;
             d.target <- p.pid;
             d.label <- Printf.sprintf "p%d" p.pid;
             p.pid ))

  let join h =
    Effect.perform
      (Op ({ kind = Join; obj = life_base + h; label = Printf.sprintf "p%d" h; target = h }, fun _ -> ()))

  let wait label = Effect.perform (Op ({ kind = Wait; obj = -1; label; target = -1 }, fun _ -> ()))
  let cpu_relax () = wait "cpu_relax"
  let sleep _ = wait "sleep"
end

(* --- dependence and happens-before ------------------------------------ *)

let is_store d = match d.kind with Set | Incr | Spawn | Finish -> true | _ -> false
let is_read d = match d.kind with Get | Join | Start -> true | _ -> false

(* Only real atomic writes wake a Wait: a spin condition is a function of
   atomics, so nothing else can change it. *)
let wake_store d = match d.kind with Set | Incr -> true | _ -> false

let dependent a b =
  (a.obj >= 0 && a.obj = b.obj && (is_store a || is_store b))
  || (a.kind = Wait && wake_store b)
  || (b.kind = Wait && wake_store a)

(* --- exploration ------------------------------------------------------- *)

type step = { st_proc : int; st_descr : descr; st_vc : int array }

type node = {
  nd_enabled : ISet.t;
  mutable nd_backtrack : ISet.t;
  mutable nd_done : ISet.t;
  nd_sleep : ISet.t;
      (* Godefroid sleep set: threads whose next transition from this state
         was already explored under an equivalent order elsewhere. Never
         selected here; inherited by children filtered for independence
         with the step taken. Combined with the DPOR backtrack sets this
         prunes the permutations of pairwise-independent runs — the bulk
         of the tree once several rings are in play. *)
}

type stats = {
  interleavings : int;  (** complete executions explored *)
  violation : string option;  (** first violation found, if any *)
  trace : string list;  (** the violating schedule, one line per step *)
  budget_exhausted : bool;
  max_depth : int;  (** longest execution, in scheduling points *)
  steps_executed : int;  (** total scheduling points across all runs *)
}

module Dyn = struct
  type 'a t = { mutable a : 'a array; mutable len : int }

  let create () = { a = [||]; len = 0 }
  let length t = t.len
  let get t i = t.a.(i)

  let push t x =
    if t.len = Array.length t.a then begin
      let b = Array.make (max 16 (2 * Array.length t.a)) x in
      Array.blit t.a 0 b 0 t.len;
      t.a <- b
    end;
    t.a.(t.len) <- x;
    t.len <- t.len + 1

  let truncate t n = t.len <- n
  let clear t = t.len <- 0
end

let enabled_set e =
  let s = ref ISet.empty in
  for i = 0 to e.nprocs - 1 do
    match e.procs.(i) with
    | Some p when not p.finished -> (
      match p.pending with
      | None -> ()
      | Some d ->
        let ok =
          match d.kind with
          | Join -> (
            match e.procs.(d.target) with Some t -> t.finished | None -> false)
          | Wait -> e.wseq > p.wait_from
          | _ -> true
        in
        if ok then s := ISet.add i !s)
    | _ -> ()
  done;
  !s

let all_finished e =
  let ok = ref true in
  for i = 0 to e.nprocs - 1 do
    match e.procs.(i) with Some p -> if not p.finished then ok := false | None -> ()
  done;
  !ok

let joinv dst src =
  for q = 0 to max_procs - 1 do
    if src.(q) > dst.(q) then dst.(q) <- src.(q)
  done

let fmt_step s =
  Printf.sprintf "p%d: %s %s" s.st_proc (op_name s.st_descr.kind) s.st_descr.label

let default_interleavings = 200_000

let check ?(max_interleavings = default_interleavings) ?(max_total_steps = 30_000_000)
    ?(max_run_steps = 20_000) prog =
  (* Persistent DFS state: [nodes.(d)] is the pre-state of step [d] on the
     current path, [choices.(d)] the thread scheduled there. Backtracking
     re-executes from scratch under the truncated forced prefix. *)
  let nodes = Dyn.create () and choices = Dyn.create () in
  let steps = Dyn.create () in
  let interleavings = ref 0 and total_steps = ref 0 and maxd = ref 0 in
  let violation = ref None and vtrace = ref [] in
  let exhausted = ref false in
  let record_violation msg =
    if !violation = None then begin
      violation := Some msg;
      vtrace := List.init (Dyn.length steps) (fun i -> fmt_step (Dyn.get steps i))
    end
  in
  let run_once () =
    let e = { procs = Array.make max_procs None; nprocs = 0; next_obj = 0; wseq = 0 } in
    cur := Some e;
    ignore (make_proc e prog);
    Dyn.clear steps;
    let cv = Array.init max_procs (fun _ -> Array.make max_procs 0) in
    let wvc : (int, int array) Hashtbl.t = Hashtbl.create 64 in
    let rvc : (int, int array) Hashtbl.t = Hashtbl.create 64 in
    let depth = ref 0 in
    let stop = ref false in
    while not !stop do
      let enabled = enabled_set e in
      if ISet.is_empty enabled then begin
        if all_finished e then incr interleavings
        else record_violation "deadlock/livelock: unfinished threads with nothing enabled";
        stop := true
      end
      else if !total_steps >= max_total_steps || !depth >= max_run_steps then begin
        exhausted := true;
        stop := true
      end
      else begin
        let node =
          if Dyn.length nodes > !depth then Some (Dyn.get nodes !depth)
          else begin
            let sleep =
              if !depth = 0 then ISet.empty
              else begin
                let parent = Dyn.get nodes (!depth - 1) in
                let last = Dyn.get steps (!depth - 1) in
                ISet.filter
                  (fun q ->
                    q <> last.st_proc
                    &&
                    match e.procs.(q) with
                    | Some qp -> (
                      match qp.pending with
                      | Some dq -> not (dependent dq last.st_descr)
                      | None -> false)
                    | None -> false)
                  (ISet.union parent.nd_sleep parent.nd_done)
              end
            in
            let seed = ISet.diff enabled sleep in
            if ISet.is_empty seed then None (* every continuation explored elsewhere *)
            else begin
              let n =
                {
                  nd_enabled = enabled;
                  nd_backtrack = ISet.singleton (ISet.min_elt seed);
                  nd_done = ISet.empty;
                  nd_sleep = sleep;
                }
              in
              Dyn.push nodes n;
              Some n
            end
          end
        in
        match node with
        | None -> stop := true (* sleep-set-blocked leaf: prune, don't count *)
        | Some node ->
        let choice =
          if Dyn.length choices > !depth then Dyn.get choices !depth
          else begin
            let avail = ISet.diff (ISet.diff node.nd_backtrack node.nd_done) node.nd_sleep in
            let c =
              if ISet.is_empty avail then ISet.min_elt (ISet.diff node.nd_enabled node.nd_sleep)
              else ISet.min_elt avail
            in
            Dyn.push choices c;
            c
          end
        in
        let p = match e.procs.(choice) with Some p -> p | None -> assert false in
        let d = match p.pending with Some d -> d | None -> assert false in
        (* DPOR: find the latest earlier step by another thread that is
           dependent with this one and not already ordered before it by
           happens-before; that step's pre-state must also explore running
           this thread (or, if it was disabled there, everything). *)
        let cvp = cv.(p.pid) in
        let best = ref (-1) in
        for i = 0 to Dyn.length steps - 1 do
          let s = Dyn.get steps i in
          if
            s.st_proc <> p.pid && dependent s.st_descr d
            && s.st_vc.(s.st_proc) > cvp.(s.st_proc)
          then best := i
        done;
        if !best >= 0 then begin
          let pre = Dyn.get nodes !best in
          if ISet.mem p.pid pre.nd_enabled then
            pre.nd_backtrack <- ISet.add p.pid pre.nd_backtrack
          else pre.nd_backtrack <- ISet.union pre.nd_backtrack pre.nd_enabled
        end;
        (* Happens-before clocks (SC): reads join the last write's clock,
           writes additionally join every read since it. *)
        if d.obj >= 0 then begin
          if is_read d then (
            match Hashtbl.find_opt wvc d.obj with Some v -> joinv cvp v | None -> ())
          else if is_store d then begin
            (match Hashtbl.find_opt wvc d.obj with Some v -> joinv cvp v | None -> ());
            match Hashtbl.find_opt rvc d.obj with Some v -> joinv cvp v | None -> ()
          end
        end;
        cvp.(p.pid) <- cvp.(p.pid) + 1;
        let svc = Array.copy cvp in
        Dyn.push steps { st_proc = p.pid; st_descr = d; st_vc = svc };
        if d.obj >= 0 then begin
          if is_store d then begin
            Hashtbl.replace wvc d.obj svc;
            Hashtbl.remove rvc d.obj
          end
          else if is_read d then begin
            match Hashtbl.find_opt rvc d.obj with
            | Some v ->
              let m = Array.copy v in
              joinv m svc;
              Hashtbl.replace rvc d.obj m
            | None -> Hashtbl.replace rvc d.obj svc
          end
        end;
        (* Commit the step: the op itself executes inside [resume], which
           then runs the thread to its next suspension point. *)
        p.pending <- None;
        (match d.kind with
        | Wait ->
          p.wait_mark <- e.wseq;
          p.in_spin <- true
        | _ -> if is_store d then p.in_spin <- false);
        if wake_store d then e.wseq <- e.wseq + 1;
        incr total_steps;
        (try p.resume () with
        | Violation msg -> record_violation ("assertion failed: " ^ msg)
        | ex ->
          record_violation
            ("uncaught exception: " ^ Printexc.to_string ex));
        incr depth;
        if !depth > !maxd then maxd := !depth;
        if !violation <> None then stop := true
      end
    done;
    cur := None
  in
  let rec backtrack_next () =
    (* A sleep-blocked leaf leaves a node count equal to the choice count
       already; nothing to trim. A normal leaf has none either — nodes and
       choices stay in lockstep by construction. *)
    if Dyn.length nodes = 0 then false
    else begin
      let dd = Dyn.length nodes - 1 in
      let node = Dyn.get nodes dd in
      let c = Dyn.get choices dd in
      node.nd_done <- ISet.add c node.nd_done;
      Dyn.truncate choices dd;
      let avail = ISet.diff (ISet.diff node.nd_backtrack node.nd_done) node.nd_sleep in
      if ISet.is_empty avail then begin
        Dyn.truncate nodes dd;
        backtrack_next ()
      end
      else begin
        Dyn.push choices (ISet.min_elt avail);
        true
      end
    end
  in
  run_once ();
  let continue_ = ref (!violation = None && not !exhausted) in
  while !continue_ do
    if !interleavings >= max_interleavings then begin
      exhausted := true;
      continue_ := false
    end
    else if backtrack_next () then begin
      run_once ();
      if !violation <> None || !exhausted then continue_ := false
    end
    else continue_ := false
  done;
  {
    interleavings = !interleavings;
    violation = !violation;
    trace = !vtrace;
    budget_exhausted = !exhausted;
    max_depth = !maxd;
    steps_executed = !total_steps;
  }
