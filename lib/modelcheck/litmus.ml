(* The litmus suite: tiny configurations of the production transport
   code, explored exhaustively. Every module under test here is the real
   source — [Spsc.Make]/[Worker.Make]/[Par_scc.Pool] applied to the
   traced scheduler — except [worker_stop_no_drain_racy], which injects
   the pre-PR-5 consumer loop through [Worker.Private.spawn_with] to
   prove the checker finds the shutdown race that loop had. *)

module W = Ormp_trace.Worker.Make (Mc.Sched)
module R = Ormp_trace.Spsc.Make (Mc.Sched.Atomic)
module PL = Ormp_whomp.Par_scc.Pool (W)

type case = {
  name : string;
  descr : string;
  expect_violation : bool;
  exhaustive : bool;
      (* false: the state space is known not to fit the budget (3-domain
         pool configs); the case is a bounded search and an exhausted
         budget is not a failure *)
  budget : int;  (* per-case interleaving budget *)
  prog : unit -> unit;
}

type result = { case : case; stats : Mc.stats; ok : bool }

(* --- raw ring ---------------------------------------------------------- *)

let spin_push r v =
  let rec go () =
    if not (R.try_push r v) then begin
      Mc.Sched.cpu_relax ();
      go ()
    end
  in
  go ()

let spin_pop r =
  let rec go () =
    match R.try_pop r with
    | Some v -> v
    | None ->
      Mc.Sched.cpu_relax ();
      go ()
  in
  go ()

let spsc_fifo ~capacity ~n () =
  let r = R.create ~capacity () in
  let popped = ref [] in
  let consumer =
    Mc.Sched.spawn (fun () ->
        for _ = 1 to n do
          popped := spin_pop r :: !popped
        done)
  in
  for i = 1 to n do
    spin_push r i
  done;
  Mc.Sched.join consumer;
  Mc.check_that
    (List.rev !popped = List.init n (fun i -> i + 1))
    "messages arrive in push order, none lost, none duplicated"

let spsc_length_bounds ~capacity ~n () =
  let r = R.create ~capacity () in
  let consumer =
    Mc.Sched.spawn (fun () ->
        for _ = 1 to n do
          ignore (spin_pop r)
        done)
  in
  let observer =
    Mc.Sched.spawn (fun () ->
        (* No relax between probes: an unconditional wait would block on
           quiet rings, and each [length] is two scheduling points already,
           so the DFS places the probes everywhere that matters. *)
        for _ = 1 to 2 do
          let l = R.length r in
          Mc.check_that (l >= 0 && l <= capacity)
            "length stays in [0, capacity] under concurrent push/pop"
        done)
  in
  for i = 1 to n do
    spin_push r i
  done;
  Mc.Sched.join consumer;
  Mc.Sched.join observer

(* --- worker ------------------------------------------------------------ *)

let worker_stop_no_drain ~capacity ~n () =
  let sum = ref 0 in
  let w = W.spawn ~capacity ~name:"mc.worker" ~f:(fun x -> sum := !sum + x) () in
  for i = 1 to n do
    W.push w i
  done;
  (* The hard case from PR 5: stop with no drain in between — the final
     message may still be in flight when the flag lands. *)
  W.stop w;
  Mc.check_that (!sum = n * (n + 1) / 2) "stop processes every message pushed before it";
  Mc.check_that (W.pending w = 0) "stop leaves nothing pending"

(* The deliberately reverted consumer: exits as soon as an empty poll is
   followed by an observed stop flag, without re-polling. The producer's
   final push can land between the two, and the checker must find that
   schedule. *)
let racy_consumer sh handle =
  let rec loop () =
    match W.Ring.try_pop (W.Private.ring sh) with
    | Some m ->
      handle m;
      loop ()
    | None ->
      if W.Private.stop_requested sh then () (* BUG: no post-flag re-poll *)
      else begin
        Mc.Sched.cpu_relax ();
        loop ()
      end
  in
  loop ()

let worker_stop_no_drain_racy ~capacity ~n () =
  let sum = ref 0 in
  let w =
    W.Private.spawn_with ~capacity ~name:"mc.racy"
      ~f:(fun x -> sum := !sum + x)
      ~consumer:racy_consumer ()
  in
  for i = 1 to n do
    W.push w i
  done;
  W.stop w;
  Mc.check_that (!sum = n * (n + 1) / 2) "stop processes every message pushed before it"

let worker_drain_barrier ~capacity () =
  let sum = ref 0 in
  let w = W.spawn ~capacity ~name:"mc.drain" ~f:(fun x -> sum := !sum + x) () in
  W.push w 1;
  W.push w 2;
  W.drain w;
  (* The consumer's writes must be ordered before this read: drain may not
     return while [f] is still running on a popped message. *)
  Mc.check_that (!sum = 3) "drain returns only after every push is fully processed";
  Mc.check_that (W.pending w = 0) "drain leaves nothing pending";
  W.push w 3;
  W.stop w;
  Mc.check_that (!sum = 6) "pushes after a drain still arrive"

exception Boom

let worker_failure_containment ~capacity () =
  let seen = ref [] in
  let w =
    W.spawn ~capacity ~name:"mc.fail"
      ~f:(fun x ->
        seen := x :: !seen;
        if x = 2 then raise Boom)
      ()
  in
  (* The failure surfaces from whichever producer call first observes it:
     a push that had to wait on a full ring, or the final stop. Either
     way it must surface, and the worker must have kept draining. *)
  let surfaced = ref false in
  (try
     W.push w 1;
     W.push w 2;
     W.push w 3
   with Boom -> surfaced := true);
  (match W.stop w with
  | () -> ()
  | exception Boom -> surfaced := true);
  Mc.check_that !surfaced "the worker failure surfaces on the producer";
  Mc.check_that (W.pending w = 0) "failed worker keeps draining (producer can never block)";
  Mc.check_that
    (List.rev !seen = [ 1; 2 ])
    "messages before the failure are processed, ones after it are discarded"

(* --- slot-pinned pool -------------------------------------------------- *)

let pool_slot_pinning ~workers ~nslots ~per_slot () =
  let out = Array.make nslots [] in
  let p =
    PL.create ~ring_capacity:1 ~stage_capacity:1 ~name:"mc.pool" ~workers ~nslots
      ~handle:(fun slot data -> Array.iter (fun v -> out.(slot) <- v :: out.(slot)) data)
      ()
  in
  for s = 0 to nslots - 1 do
    for v = 1 to per_slot do
      PL.stage p ~slot:s ((10 * s) + v)
    done
  done;
  PL.drain p;
  Mc.check_that (PL.pending p = 0) "drain leaves nothing pending";
  for s = 0 to nslots - 1 do
    Mc.check_that
      (List.rev out.(s) = List.init per_slot (fun i -> (10 * s) + i + 1))
      "each slot's stream is complete and in stage order after drain"
  done;
  PL.shutdown p

(* --- the suite --------------------------------------------------------- *)

let case name ?(expect_violation = false) ?(exhaustive = true) ?(budget = Mc.default_interleavings)
    descr prog =
  { name; descr; expect_violation; exhaustive; budget; prog }

let cases =
  [
    case "spsc_fifo_cap1_n2" "ring cap 1, 2 msgs: FIFO, no loss, no dup" (spsc_fifo ~capacity:1 ~n:2);
    case "spsc_fifo_cap2_n3" "ring cap 2, 3 msgs: FIFO, no loss, no dup" (spsc_fifo ~capacity:2 ~n:3);
    case "spsc_fifo_cap3_n3" "ring cap 3, 3 msgs: FIFO, no loss, no dup" (spsc_fifo ~capacity:3 ~n:3);
    case "spsc_length_bounds" "racy length snapshot stays in [0, cap]"
      (spsc_length_bounds ~capacity:1 ~n:2);
    case "worker_stop_no_drain_cap1_n2" "stop without drain loses nothing (cap 1)"
      (worker_stop_no_drain ~capacity:1 ~n:2);
    case "worker_stop_no_drain_cap2_n3" "stop without drain loses nothing (cap 2)"
      (worker_stop_no_drain ~capacity:2 ~n:3);
    case "worker_stop_no_drain_racy" ~expect_violation:true
      "pre-PR-5 consumer: checker must find the lost trailing message"
      (worker_stop_no_drain_racy ~capacity:2 ~n:2);
    case "worker_drain_barrier" "drain is a full barrier; worker usable after"
      (worker_drain_barrier ~capacity:1);
    case "worker_failure_containment" "exception in f surfaces on stop; worker keeps draining"
      (worker_failure_containment ~capacity:2);
    case "pool_slot_pinning_1w2s" "pool: 2 slots share 1 worker; streams stay pinned, drain quiesces"
      (pool_slot_pinning ~workers:1 ~nslots:2 ~per_slot:1);
    case "pool_slot_pinning_2w2s" ~exhaustive:false ~budget:20_000
      "pool: 2 workers, 2 slots — bounded search (3-domain space outgrows the budget)"
      (pool_slot_pinning ~workers:2 ~nslots:2 ~per_slot:1);
  ]

let find name = List.find_opt (fun c -> c.name = name) cases

let run_case ?max_interleavings c =
  let max_interleavings =
    match max_interleavings with Some b -> min b c.budget | None -> c.budget
  in
  let stats = Mc.check ~max_interleavings c.prog in
  let ok =
    match stats.Mc.violation with
    | Some _ -> c.expect_violation
    | None ->
      (not c.expect_violation) && ((not stats.Mc.budget_exhausted) || not c.exhaustive)
  in
  { case = c; stats; ok }

let run_all ?max_interleavings () = List.map (run_case ?max_interleavings) cases
