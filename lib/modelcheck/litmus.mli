(** The transport litmus suite.

    Each case is a tiny configuration of the production ring / worker /
    pool code (instantiated over the traced scheduler) plus assertions,
    explored exhaustively by {!Mc.check}. One case —
    [worker_stop_no_drain_racy] — runs a {e deliberately reverted}
    consumer loop (the pre-PR-5 shutdown race) and expects the checker to
    find the lost-message schedule; every other case expects a clean
    exhaustive pass. *)

type case = {
  name : string;
  descr : string;
  expect_violation : bool;  (** true only for the seeded-race case *)
  exhaustive : bool;
      (** false for bounded-only cases (3-domain pool configs) where an
          exhausted budget is expected, not a failure *)
  budget : int;  (** per-case interleaving budget *)
  prog : unit -> unit;
}

type result = {
  case : case;
  stats : Mc.stats;
  ok : bool;
      (** violation presence matched the expectation, and (for clean
          exhaustive cases) the search finished within budget — an
          exhausted budget proves nothing *)
}

val cases : case list
val find : string -> case option

val run_case : ?max_interleavings:int -> case -> result
(** [max_interleavings] caps the per-case budget from above (CI wants a
    ceiling); it never raises a case's own budget. *)

val run_all : ?max_interleavings:int -> unit -> result list
