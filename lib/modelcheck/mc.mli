(** ORMP-MC: exhaustive interleaving exploration for the transport layer.

    A dscheck-style model checker: a litmus program written against the
    traced {!Sched} (an {!Ormp_trace.Atomics_intf.SCHED}) is executed
    repeatedly under every schedule a DFS with dynamic partial-order
    reduction deems inequivalent. Every atomic get/set/incr, [spawn],
    [join], [cpu_relax] and [sleep] is a scheduling point; threads are
    effect continuations owned by the explorer, so the search is
    deterministic and single-domain.

    [cpu_relax]/[sleep] are modelled as "blocked until another thread
    performs an atomic write" — the await transformation that makes spin
    loops finite without losing observable behaviors. A thread still
    blocked when every potential writer has finished is reported as a
    livelock violation.

    Litmus programs must be deterministic given the schedule: no time, no
    randomness, no I/O. Keep configurations tiny (2–3 threads, ring
    capacity 1–3, 2–3 messages) — the state space is exponential and the
    checker explores all of it. *)

exception Violation of string

val check_that : bool -> string -> unit
(** Assert inside a litmus; failure aborts the run, records the schedule
    and stops the search. *)

(** The traced scheduler seam. Instantiate the production functors with
    it: [Ormp_trace.Worker.Make (Mc.Sched)],
    [Ormp_trace.Spsc.Make (Mc.Sched.Atomic)]. Usable only inside the
    program passed to {!check}. *)
module Sched : sig
  module Atomic : Ormp_trace.Atomics_intf.ATOMICS

  type handle = int

  val spawn : (unit -> unit) -> handle
  val join : handle -> unit
  val cpu_relax : unit -> unit
  val sleep : float -> unit
end

type stats = {
  interleavings : int;  (** complete executions explored *)
  violation : string option;  (** first violation found, if any *)
  trace : string list;  (** the violating schedule, one line per step *)
  budget_exhausted : bool;
      (** the search hit a budget before completing; absence of a
          violation is then not a proof *)
  max_depth : int;  (** longest execution, in scheduling points *)
  steps_executed : int;  (** total scheduling points across all runs *)
}

val default_interleavings : int

val check :
  ?max_interleavings:int ->
  ?max_total_steps:int ->
  ?max_run_steps:int ->
  (unit -> unit) ->
  stats
(** [check prog] explores [prog]'s interleavings exhaustively (up to the
    budgets). [prog] runs as the root thread; it may [Sched.spawn]
    others. Returns after the first violation or once the reduced state
    space is exhausted. *)
