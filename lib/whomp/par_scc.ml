module Seq_c = Ormp_sequitur.Sequitur
module Worker = Ormp_trace.Worker
module Cdc = Ormp_core.Cdc

(* --- generic slot-pinned worker pool ----------------------------------- *)

(* The staging/pinning protocol, factored out as a functor over the
   Worker seam so the model checker can instantiate it with the traced
   scheduler and verify the protocol (slot order preserved, drain really
   quiesces, shutdown loses nothing) over every interleaving — while
   production applies it to the real [Ormp_trace.Worker] below. *)
module Pool (Wk : Ormp_trace.Worker.S) = struct
  (* One message: a chunk of one slot's symbol stream. The array is owned
     by the consumer once pushed (the producer allocates a fresh copy per
     chunk — one small allocation per ~stage_capacity symbols). *)
  type msg = { m_slot : int; m_data : int array }

  (* Producer-side accumulation with occupancy-adaptive chunk sizing: [base]
     is the configured stage capacity, [target] the current flush threshold.
     After each flush the producer reads the ring's occupancy — a ring that
     stays at least half full means the consumer can't keep up with this
     message granularity, so the target doubles (up to [growth_limit] x
     base, the staging buffer's size) to amortize per-message ring and
     allocation overhead; once the ring drains to an eighth or less the
     target halves back toward the latency-friendly default. Chunk size
     never changes what order symbols reach a slot's consumer, so the
     consumed streams are unaffected. *)
  type stage = { buf : int array; mutable len : int; base : int; mutable target : int }

  let growth_limit = 8

  type t = {
    workers : msg Wk.t array;  (* slot [i] is consumed by [i mod workers] *)
    stages : stage array;  (* per-slot producer-side accumulation *)
    mutable live : bool;
  }

  let create ?ring_capacity ?stage_capacity ~name ~workers ~nslots ~handle () =
    if nslots = 0 then invalid_arg "Par_scc.pool: no slots";
    if workers < 1 then invalid_arg "Par_scc.pool: workers must be at least 1";
    let nw = min workers nslots in
    let stage_capacity =
      match stage_capacity with Some c -> c | None -> Ormp_trace.Batch.default_capacity
    in
    if stage_capacity < 1 then invalid_arg "Par_scc.pool: stage capacity must be positive";
    {
      workers =
        Array.init nw (fun w ->
            Wk.spawn ?capacity:ring_capacity
              ~name:(Printf.sprintf "%s.%d" name w)
              ~f:(fun m -> handle m.m_slot m.m_data)
              ());
      stages =
        Array.init nslots (fun _ ->
            {
              buf = Array.make (stage_capacity * growth_limit) 0;
              len = 0;
              base = stage_capacity;
              target = stage_capacity;
            });
      live = true;
    }

  let worker_of p slot = p.workers.(slot mod Array.length p.workers)

  let flush_slot p slot =
    let st = p.stages.(slot) in
    if st.len > 0 then begin
      let w = worker_of p slot in
      Wk.push w { m_slot = slot; m_data = Array.sub st.buf 0 st.len };
      st.len <- 0;
      let occ = Wk.occupancy w in
      if occ >= 0.5 then st.target <- min (Array.length st.buf) (st.target * 2)
      else if occ <= 0.125 then st.target <- max st.base (st.target / 2)
    end

  let stage p ~slot v =
    let st = p.stages.(slot) in
    if st.len >= st.target then flush_slot p slot;
    st.buf.(st.len) <- v;
    st.len <- st.len + 1

  let stage_lane p ~slot lane len =
    let st = p.stages.(slot) in
    let i = ref 0 in
    while !i < len do
      if st.len >= st.target then flush_slot p slot;
      let take = min (st.target - st.len) (len - !i) in
      Array.blit lane !i st.buf st.len take;
      st.len <- st.len + take;
      i := !i + take
    done

  let drain p =
    Array.iteri (fun slot _ -> flush_slot p slot) p.stages;
    Array.iter Wk.drain p.workers

  let pending p = Array.fold_left (fun acc w -> acc + Wk.pending w) 0 p.workers

  let shutdown p =
    if p.live then begin
      p.live <- false;
      (* Publish whatever is staged so a graceful shutdown loses nothing,
         then join every domain even if one of them failed — the first
         failure is re-raised only after none can be leaked. *)
      (try Array.iteri (fun slot _ -> flush_slot p slot) p.stages with _ -> ());
      let failure = ref None in
      Array.iter
        (fun w ->
          try Wk.stop w
          with e -> if !failure = None then failure := Some (e, Printexc.get_raw_backtrace ()))
        p.workers;
      match !failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
end

(* --- grammar worker pool (production instantiation) -------------------- *)

module P = Pool (Worker)

type pool = {
  slots : Seq_c.t array;
      (* shared with the workers: the handle closure re-reads [slots.(i)]
         for every message, so a swap done while quiesced is published to
         the worker by the next ring operation's happens-before edge *)
  core : P.t;
}

let pool ?ring_capacity ?stage_capacity ~name ~workers slots =
  let n = Array.length slots in
  let core =
    P.create ?ring_capacity ?stage_capacity ~name ~workers ~nslots:n
      ~handle:(fun slot data -> Seq_c.push_batch slots.(slot) data ~off:0 ~len:(Array.length data))
      ()
  in
  { slots; core }

let pool_stage p ~slot v = P.stage p.core ~slot v
let pool_stage_lane p ~slot lane len = P.stage_lane p.core ~slot lane len
let pool_drain p = P.drain p.core
let pool_get p i = p.slots.(i)
let pool_set p i g = p.slots.(i) <- g
let pool_pending p = P.pending p.core
let pool_shutdown p = P.shutdown p.core

(* --- parallel WHOMP profiler ------------------------------------------ *)

(* Slot order is the paper's dimension order — the same order
   [Whomp.collector_dims] reports, so the assembled profile lists
   grammars identically to the serial path. *)
let dim_names = [| "instr"; "group"; "object"; "offset" |]

type t = { cdc : Cdc.t; p : pool }

let create ?grouping ?ring_capacity ~jobs ~site_name () =
  let slots = Array.init 4 (fun _ -> Seq_c.create ()) in
  let p =
    pool ?ring_capacity ~name:"whomp" ~workers:(max 1 (min (jobs - 1) 4)) slots
  in
  let on_tuple (tu : Ormp_core.Tuple.t) =
    pool_stage p ~slot:0 tu.instr;
    pool_stage p ~slot:1 tu.group;
    pool_stage p ~slot:2 tu.obj;
    pool_stage p ~slot:3 tu.offset
  in
  { cdc = Cdc.create ?grouping ~site_name ~on_tuple (); p }

let batch t =
  Cdc.batch_tuples t.cdc
    ~on_tuples:(fun (tp : Cdc.tuples) ->
      pool_stage_lane t.p ~slot:0 tp.tp_instr tp.tp_len;
      pool_stage_lane t.p ~slot:1 tp.tp_group tp.tp_len;
      pool_stage_lane t.p ~slot:2 tp.tp_obj tp.tp_len;
      pool_stage_lane t.p ~slot:3 tp.tp_offset tp.tp_len)
    ()

let sink t = Cdc.sink t.cdc

let shutdown t = pool_shutdown t.p

let finalize t ~elapsed =
  pool_shutdown t.p;
  let dims = List.init 4 (fun i -> (dim_names.(i), pool_get t.p i)) in
  Whomp.publish_dim_gauges dims;
  let omc = Cdc.omc t.cdc in
  Ormp_core.Omc.publish_gauges omc;
  {
    Whomp.dims;
    collected = Cdc.collected t.cdc;
    wild = Cdc.wild t.cdc;
    groups = Ormp_core.Omc.groups omc;
    lifetimes = Ormp_core.Omc.lifetimes omc;
    elapsed;
  }

let profile ?config ?grouping ?ring_capacity ~jobs program =
  if jobs <= 1 then Whomp.profile ?config ?grouping program
  else begin
    let table = ref None in
    let site_name site =
      match !table with
      | None -> Printf.sprintf "site%d" site
      | Some tb -> (Ormp_trace.Instr.info tb site).Ormp_trace.Instr.name
    in
    let t = create ?grouping ?ring_capacity ~jobs ~site_name () in
    Fun.protect
      ~finally:(fun () -> try shutdown t with _ -> ())
      (fun () ->
        let result = Ormp_vm.Runner.run_batched ?config program (batch t) in
        table := Some result.Ormp_vm.Runner.table;
        finalize t ~elapsed:result.Ormp_vm.Runner.elapsed)
  end
