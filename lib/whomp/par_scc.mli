(** Pipeline-parallel SCC for WHOMP (and any grammar-per-stream client).

    The paper's horizontal decomposition (§3) makes the four OMSG
    dimension streams independent by construction, so each one can be
    compressed on its own domain: the CDC keeps translating on the
    producer domain and fans the decomposed lanes out over bounded
    lock-free SPSC rings ({!Ormp_trace.Spsc}) to dedicated Sequitur
    domains. Every stream's symbols stay in order on a single consumer,
    so the grammars — and therefore the persisted profile — are
    byte-identical to a serial run.

    {1 Grammar worker pool}

    The reusable core: [n] grammar slots multiplexed onto at most [n]
    worker domains (slot [i] is pinned to worker [i mod workers], so each
    slot's stream still has exactly one consumer). The session layer
    builds its five-grammar (4 OMSG dims + RASG) pipeline on this. *)

(** The staging/pinning protocol itself, as a functor over the Worker
    seam: [n] slots multiplexed onto [min workers n] consumers (slot [i]
    pinned to worker [i mod workers]), per-slot staging buffers with
    occupancy-adaptive chunk sizing, and quiesce/shutdown that lose
    nothing. The grammar pool below is [Pool (Ormp_trace.Worker)] plus
    slot storage; [Ormp_modelcheck] applies it to a traced Worker to
    verify the protocol exhaustively at small configurations. *)
module Pool (Wk : Ormp_trace.Worker.S) : sig
  type t

  val create :
    ?ring_capacity:int ->
    ?stage_capacity:int ->
    name:string ->
    workers:int ->
    nslots:int ->
    handle:(int -> int array -> unit) ->
    unit ->
    t
  (** [handle slot chunk] runs on the worker owning [slot]; chunks of one
      slot arrive in stage order, each on that single worker. *)

  val stage : t -> slot:int -> int -> unit
  val stage_lane : t -> slot:int -> int array -> int -> unit
  val drain : t -> unit
  val pending : t -> int
  val shutdown : t -> unit
end

type pool

val pool :
  ?ring_capacity:int ->
  ?stage_capacity:int ->
  name:string ->
  workers:int ->
  Ormp_sequitur.Sequitur.t array ->
  pool
(** Spawn [min workers n] consumer domains over the [n] grammar slots.
    [ring_capacity] is the per-worker ring size in messages (chunks);
    [stage_capacity] the symbols staged per slot before a chunk is
    published (default {!Ormp_trace.Batch.default_capacity}). The array
    is owned by the pool until {!pool_shutdown}. *)

val pool_stage : pool -> slot:int -> int -> unit
(** Append one symbol to a slot's stream (publishes a chunk when the
    slot's stage fills). Producer domain only. *)

val pool_stage_lane : pool -> slot:int -> int array -> int -> unit
(** Append the first [len] elements of a lane array — the chunk-granular
    form used by the batched CDC path. *)

val pool_drain : pool -> unit
(** Quiesce: publish every staged symbol and block until all workers have
    consumed their rings. On return the grammars are frozen and safe to
    read — and to replace with {!pool_set} — until the next stage call. *)

val pool_get : pool -> int -> Ormp_sequitur.Sequitur.t
(** The slot's live grammar. Call only between {!pool_drain} and the next
    stage call (or after {!pool_shutdown}). *)

val pool_set : pool -> int -> Ormp_sequitur.Sequitur.t -> unit
(** Replace a slot's grammar (epoch rotation). Same discipline as
    {!pool_get}. *)

val pool_shutdown : pool -> unit
(** Drain, stop and join every worker. Idempotent; safe on error paths.
    Re-raises the first worker failure, after all domains are joined. *)

val pool_pending : pool -> int
(** Chunks published but not yet compressed (racy; for observation). *)

(** {1 Parallel WHOMP profiler}

    Drop-in parallel counterparts of {!Whomp.sink_batched} /
    {!Whomp.profile}. [jobs] counts domains including the producer, so
    [jobs - 1] compressor domains are spawned (capped at the four
    dimension streams); [jobs <= 1] is the caller's cue to use the serial
    path instead ({!profile} falls back by itself). *)

type t

val create :
  ?grouping:Ormp_core.Omc.grouping ->
  ?ring_capacity:int ->
  jobs:int ->
  site_name:(int -> string) ->
  unit ->
  t

val batch : t -> Ormp_trace.Batch.t
(** Batched probe entry (cf. {!Ormp_core.Cdc.batch_tuples}). *)

val sink : t -> Ormp_trace.Sink.t
(** Per-event probe entry, for drivers that cannot batch. *)

val finalize : t -> elapsed:float -> Whomp.profile
(** Drain, shut the pool down and assemble the profile. The grammars are
    the worker-built ones — byte-identical to {!Whomp.sink_batched}'s. *)

val shutdown : t -> unit
(** Abort path: stop and join the workers without assembling a profile.
    Idempotent; {!finalize} calls it internally. Wrap driver exceptions
    with this (e.g. [Fun.protect]) so no domain outlives the run. *)

val profile :
  ?config:Ormp_vm.Config.t ->
  ?grouping:Ormp_core.Omc.grouping ->
  ?ring_capacity:int ->
  jobs:int ->
  Ormp_vm.Program.t ->
  Whomp.profile
(** Run the program under parallel WHOMP instrumentation. [jobs <= 1]
    delegates to the serial {!Whomp.profile}. *)
