module Seq_c = Ormp_sequitur.Sequitur
module Tm = Ormp_telemetry.Telemetry

(* Publish per-grammar gauges at finalize; the session layer also routes
   its RASG baseline through this so all five grammar dimensions show up
   in one metrics snapshot. *)
let publish_dim_gauges dims =
  if Tm.on () then
    List.iter
      (fun (name, g) ->
        let set suffix v =
          Tm.Metrics.set
            (Tm.Metrics.gauge (Printf.sprintf "sequitur.%s.%s" name suffix))
            (float_of_int v)
        in
        set "symbols" (Seq_c.grammar_size g);
        set "rules" (Seq_c.rule_count g);
        set "input" (Seq_c.input_length g))
      dims

type profile = {
  dims : (string * Seq_c.t) list;
  collected : int;
  wild : int;
  groups : Ormp_core.Omc.group_info list;
  lifetimes : Ormp_core.Omc.lifetime list;
  elapsed : float;
}

type collector = {
  g_instr : Seq_c.t;
  g_group : Seq_c.t;
  g_object : Seq_c.t;
  g_offset : Seq_c.t;
}

let collector ?restore () =
  match restore with
  | Some (g_instr, g_group, g_object, g_offset) -> { g_instr; g_group; g_object; g_offset }
  | None ->
    {
      g_instr = Seq_c.create ();
      g_group = Seq_c.create ();
      g_object = Seq_c.create ();
      g_offset = Seq_c.create ();
    }

(* SCC: horizontal decomposition straight into the four compressors. *)
let collect c (tu : Ormp_core.Tuple.t) =
  Seq_c.push c.g_instr tu.instr;
  Seq_c.push c.g_group tu.group;
  Seq_c.push c.g_object tu.obj;
  Seq_c.push c.g_offset tu.offset

let collector_dims c =
  [ ("instr", c.g_instr); ("group", c.g_group); ("object", c.g_object); ("offset", c.g_offset) ]

let make_finalize c cdc =
  let finalize ~elapsed =
    publish_dim_gauges (collector_dims c);
    Ormp_core.Omc.publish_gauges (Ormp_core.Cdc.omc cdc);
    {
      dims = collector_dims c;
      collected = Ormp_core.Cdc.collected cdc;
      wild = Ormp_core.Cdc.wild cdc;
      groups = Ormp_core.Omc.groups (Ormp_core.Cdc.omc cdc);
      lifetimes = Ormp_core.Omc.lifetimes (Ormp_core.Cdc.omc cdc);
      elapsed;
    }
  in
  finalize

let make_cdc ?grouping ~site_name () =
  let c = collector () in
  let cdc = Ormp_core.Cdc.create ?grouping ~site_name ~on_tuple:(collect c) () in
  (cdc, make_finalize c cdc)

let sink ?grouping ~site_name () =
  let cdc, finalize = make_cdc ?grouping ~site_name () in
  (Ormp_core.Cdc.sink cdc, finalize)

(* The batched sink skips the per-tuple [collect] entirely: whole SoA chunk
   lanes go straight into each dimension's compressor via [push_batch].
   Symbol order per grammar is identical to the per-tuple path, so the
   profile is byte-identical — only the call and allocation overhead per
   event changes. *)
let collect_tuples c (tp : Ormp_core.Cdc.tuples) =
  Seq_c.push_batch c.g_instr tp.tp_instr ~off:0 ~len:tp.tp_len;
  Seq_c.push_batch c.g_group tp.tp_group ~off:0 ~len:tp.tp_len;
  Seq_c.push_batch c.g_object tp.tp_obj ~off:0 ~len:tp.tp_len;
  Seq_c.push_batch c.g_offset tp.tp_offset ~off:0 ~len:tp.tp_len

let sink_batched ?grouping ~site_name () =
  let c = collector () in
  let cdc = Ormp_core.Cdc.create ?grouping ~site_name ~on_tuple:(collect c) () in
  let b = Ormp_core.Cdc.batch_tuples cdc ~on_tuples:(collect_tuples c) () in
  (b, make_finalize c cdc)

let profile ?config ?grouping program =
  (* Sites are named after the fact via the table the run produces, so the
     CDC resolves names lazily through this reference. *)
  let table = ref None in
  let site_name site =
    match !table with
    | None -> Printf.sprintf "site%d" site
    | Some t -> (Ormp_trace.Instr.info t site).Ormp_trace.Instr.name
  in
  let b, finalize = sink_batched ?grouping ~site_name () in
  let result = Ormp_vm.Runner.run_batched ?config program b in
  table := Some result.Ormp_vm.Runner.table;
  finalize ~elapsed:result.Ormp_vm.Runner.elapsed

let omsg_size p = List.fold_left (fun acc (_, g) -> acc + Seq_c.grammar_size g) 0 p.dims

let omsg_bytes p = List.fold_left (fun acc (_, g) -> acc + Seq_c.byte_size g) 0 p.dims

let expand p =
  let dim name = Seq_c.expand (List.assoc name p.dims) in
  let instrs = dim "instr" and groups = dim "group" in
  let objects = dim "object" and offsets = dim "offset" in
  let n = Array.length instrs in
  assert (Array.length groups = n && Array.length objects = n && Array.length offsets = n);
  List.init n (fun i ->
      {
        Ormp_core.Tuple.instr = instrs.(i);
        group = groups.(i);
        obj = objects.(i);
        offset = offsets.(i);
        time = i;
        is_store = false;
      })
