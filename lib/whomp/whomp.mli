(** WHOMP — the whole-stream memory profiler (§3).

    WHOMP is the lossless object-relative profiler: the CDC translates
    every collected access into a 5-tuple, the SCC decomposes the stream
    horizontally along the four dimensions (instruction, group, object,
    offset — time is implicit in stream position), and each dimension
    stream is fed to its own Sequitur compressor. The output is the OMSG:
    the object-relative multi-dimensional Sequitur grammar. *)

type profile = {
  dims : (string * Ormp_sequitur.Sequitur.t) list;
      (** the four dimension grammars, in paper order: instr, group,
          object, offset *)
  collected : int;  (** accesses translated and recorded *)
  wild : int;  (** accesses outside any profiled object (not collected) *)
  groups : Ormp_core.Omc.group_info list;
  lifetimes : Ormp_core.Omc.lifetime list;
      (** run-dependent auxiliary output (object lifetimes), kept separate
          from the invariant grammars as §2.3 prescribes *)
  elapsed : float;  (** collection CPU time, probes + compression *)
}

val profile :
  ?config:Ormp_vm.Config.t ->
  ?grouping:Ormp_core.Omc.grouping ->
  Ormp_vm.Program.t ->
  profile
(** Run the program under WHOMP instrumentation. *)

(** {1 Collector}

    The four-grammar SCC core behind {!sink}/{!sink_batched}, exposed so
    the session layer can checkpoint and restore it: a grammar snapshot is
    its {!Ormp_sequitur.Sequitur.rules} listing, and a collector rebuilt
    around grammars restored with {!Ormp_sequitur.Sequitur.of_rules}
    continues the decomposition byte-for-byte. *)

type collector

val collector :
  ?restore:
    Ormp_sequitur.Sequitur.t
    * Ormp_sequitur.Sequitur.t
    * Ormp_sequitur.Sequitur.t
    * Ormp_sequitur.Sequitur.t ->
  unit ->
  collector
(** Fresh (or restored) dimension grammars, in paper order: instr, group,
    object, offset. *)

val collect : collector -> Ormp_core.Tuple.t -> unit
(** Decompose one tuple into the four grammars. *)

val collect_tuples : collector -> Ormp_core.Cdc.tuples -> unit
(** Decompose a whole SoA tuple chunk: each lane goes into its grammar
    via [push_batch]. Symbol order per grammar matches the per-tuple
    path, so profiles stay byte-identical. *)

val collector_dims : collector -> (string * Ormp_sequitur.Sequitur.t) list
(** The live grammars, named, in paper order — the {!profile} [dims]. *)

val publish_dim_gauges : (string * Ormp_sequitur.Sequitur.t) list -> unit
(** Publish per-grammar telemetry gauges (symbols/rules/input per named
    dimension). No-op with telemetry disabled; called at finalize. *)

val sink :
  ?grouping:Ormp_core.Omc.grouping ->
  site_name:(int -> string) ->
  unit ->
  Ormp_trace.Sink.t * (elapsed:float -> profile)
(** Streaming form: a probe sink plus a finalizer, for callers that drive
    the VM themselves (used to share one run between several profilers). *)

val sink_batched :
  ?grouping:Ormp_core.Omc.grouping ->
  site_name:(int -> string) ->
  unit ->
  Ormp_trace.Batch.t * (elapsed:float -> profile)
(** Batched form of {!sink} for {!Ormp_vm.Runner.run_batched}: translation
    goes through the OMC's MRU cache ({!Ormp_core.Cdc.batch}) and produces
    byte-identical grammars — {!profile} uses this path. *)

val omsg_size : profile -> int
(** Total grammar size (symbols on all right-hand sides, all four
    grammars). *)

val omsg_bytes : profile -> int
(** Serialized size estimate in bytes (varint accounting). *)

val expand : profile -> Ormp_core.Tuple.t list
(** Losslessly reconstruct the collected object-relative access stream
    from the four grammars (is_store is not part of the grammars and is
    reconstructed as [false]). Time stamps are re-derived from position. *)
