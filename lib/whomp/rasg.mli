(** RASG — the raw-address Sequitur grammar baseline (§3.2).

    The conventional lossless profiler WHOMP is compared against: one
    Sequitur grammar built over the raw address stream (as in Rubin,
    Bodik & Chilimbi's profile-analysis framework), with no
    object-relative translation. *)

type profile = {
  grammar : Ormp_sequitur.Sequitur.t;
  accesses : int;
  elapsed : float;
}

val profile : ?config:Ormp_vm.Config.t -> Ormp_vm.Program.t -> profile

val sink : unit -> Ormp_trace.Sink.t * (elapsed:float -> profile)
(** Streaming form, mirroring {!Whomp.sink}. *)

val sink_batched : unit -> Ormp_trace.Batch.t * (elapsed:float -> profile)
(** Batched form for {!Ormp_vm.Runner.run_batched}; produces the same
    grammar as {!sink} (the pushed address sequence is identical). *)

val size : profile -> int
(** Grammar size in symbols. *)

val bytes : profile -> int
(** Serialized size estimate in bytes. *)
