module Seq_c = Ormp_sequitur.Sequitur

type profile = { grammar : Seq_c.t; accesses : int; elapsed : float }

let sink () =
  let grammar = Seq_c.create () in
  let count = ref 0 in
  let s (ev : Ormp_trace.Event.t) =
    match ev with
    | Access { addr; _ } ->
      incr count;
      Seq_c.push grammar addr
    | Alloc _ | Free _ -> ()
  in
  (s, fun ~elapsed -> { grammar; accesses = !count; elapsed })

let sink_batched () =
  let grammar = Seq_c.create () in
  let count = ref 0 in
  let on_chunk (c : Ormp_trace.Batch.chunk) =
    count := !count + c.len;
    Seq_c.push_batch grammar c.addr ~off:0 ~len:c.len
  in
  let b = Ormp_trace.Batch.create ~on_chunk ~on_event:(fun _ -> ()) () in
  (b, fun ~elapsed -> { grammar; accesses = !count; elapsed })

let profile ?config program =
  let b, finalize = sink_batched () in
  let result = Ormp_vm.Runner.run_batched ?config program b in
  finalize ~elapsed:result.Ormp_vm.Runner.elapsed

let size p = Seq_c.grammar_size p.grammar
let bytes p = Seq_c.byte_size p.grammar
