module S = Ormp_util.Sexp
module Seq_c = Ormp_sequitur.Sequitur

let ( let* ) = Result.bind

let rec collect_results = function
  | [] -> Ok []
  | Ok x :: rest ->
    let* xs = collect_results rest in
    Ok (x :: xs)
  | Error e :: _ -> Error e

(* One grammar as [(grammar (dim <name>) (rule <id> <sym>...)...)]:
   terminals are bare ints, non-terminals [R<id>] atoms. Rules are
   enumerated with {!Ormp_sequitur.Sequitur.iter_rules} — same ascending-id
   order as [rules], without materializing the intermediate listing. *)
let to_sexp (name, g) =
  let rules = ref [] in
  Seq_c.iter_rules g (fun id rhs ->
      rules :=
        S.field "rule"
          (S.int id
          :: List.map
               (function `T v -> S.int v | `N id -> S.atom (Printf.sprintf "R%d" id))
               rhs)
        :: !rules);
  S.field "grammar" (S.field "dim" [ S.atom name ] :: List.rev !rules)

let sym_of_atom a =
  if String.length a > 1 && a.[0] = 'R' then
    match int_of_string_opt (String.sub a 1 (String.length a - 1)) with
    | Some r -> Ok (`N r)
    | None -> Error ("bad symbol " ^ a)
  else
    match int_of_string_opt a with
    | Some v -> Ok (`T v)
    | None -> Error ("bad symbol " ^ a)

(* [args] are the elements after the [grammar] atom. The live grammar is
   rebuilt with {!Ormp_sequitur.Sequitur.of_rules} (expand + re-push), which
   also rejects cyclic and dangling rule references from corrupt files. *)
let of_sexp args =
  let body = S.List (S.Atom "_" :: args) in
  let* dim_args = S.assoc "dim" body in
  let* dim = match dim_args with [ a ] -> S.as_atom a | _ -> Error "bad dim" in
  let* rules =
    List.fold_left
      (fun acc item ->
        let* rules = acc in
        match item with
        | S.List (S.Atom "rule" :: S.Atom id_s :: rhs) -> (
          match int_of_string_opt id_s with
          | None -> Error ("bad rule id " ^ id_s)
          | Some id ->
            let* syms =
              collect_results
                (List.map
                   (fun s ->
                     let* a = S.as_atom s in
                     sym_of_atom a)
                   rhs)
            in
            Ok ((id, syms) :: rules))
        | _ -> Ok rules)
      (Ok []) args
  in
  let* g = Seq_c.of_rules (List.rev rules) in
  Ok (dim, g)

let save path (name, g) = S.save path (to_sexp (name, g))

let load path =
  match
    let* t = S.load path in
    let* args = S.as_list t in
    match args with
    | S.Atom "grammar" :: rest -> of_sexp rest
    | _ -> Error "not a grammar file"
  with
  | result -> result
  | exception exn -> Error (Printf.sprintf "corrupt grammar %s: %s" path (Printexc.to_string exn))
