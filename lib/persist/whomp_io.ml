module S = Ormp_util.Sexp
module Seq_c = Ormp_sequitur.Sequitur
module W = Ormp_whomp.Whomp
module Omc = Ormp_core.Omc

(* Version 2 added the free-site column to object records. *)
let version = 2

let ( let* ) = Result.bind

let rec collect_results = function
  | [] -> Ok []
  | Ok x :: rest ->
    let* xs = collect_results rest in
    Ok (x :: xs)
  | Error e :: _ -> Error e

let int_list args = collect_results (List.map S.as_int args)

let int_field name t =
  let* args = S.assoc name t in
  match args with [ x ] -> S.as_int x | _ -> Error ("bad field " ^ name)

(* --- writing --------------------------------------------------------- *)

let grammar_to_sexp = Grammar_io.to_sexp

let group_to_sexp (g : Omc.group_info) =
  S.field "group"
    [ S.int g.Omc.gid; S.int g.Omc.site; S.atom g.Omc.label; S.int g.Omc.population ]

let lifetime_to_sexp (l : Omc.lifetime) =
  S.field "object"
    [
      S.int l.Omc.group;
      S.int l.Omc.serial;
      S.int l.Omc.base;
      S.int l.Omc.size;
      S.int l.Omc.alloc_time;
      S.int (match l.Omc.free_time with None -> -1 | Some t -> t);
      S.int (match l.Omc.free_site with None -> -1 | Some s -> s);
    ]

let to_sexp (p : W.profile) =
  S.field "ormp-whomp-profile"
    ([
       S.field "version" [ S.int version ];
       S.field "collected" [ S.int p.W.collected ];
       S.field "wild" [ S.int p.W.wild ];
     ]
    @ List.map grammar_to_sexp p.W.dims
    @ List.map group_to_sexp p.W.groups
    @ List.map lifetime_to_sexp p.W.lifetimes)

let save path p = S.save path (to_sexp p)

(* --- reading --------------------------------------------------------- *)

(* The heavy lifting — rebuilding a live grammar from its rule listing,
   with cyclic/dangling-reference detection — lives in {!Grammar_io} (and
   ultimately {!Seq_c.of_rules}) so the session snapshots share it. *)
let grammar_of_sexp = Grammar_io.of_sexp

let group_of_sexp args =
  match args with
  | [ gid; site; label; population ] ->
    let* gid = S.as_int gid in
    let* site = S.as_int site in
    let* label = S.as_atom label in
    let* population = S.as_int population in
    Ok { Omc.gid; site; label; population }
  | _ -> Error "bad group"

let lifetime_of_sexp args =
  let* xs = int_list args in
  match xs with
  | [ group; serial; base; size; alloc_time; free; free_site ] ->
    Ok
      {
        Omc.group;
        serial;
        base;
        size;
        alloc_time;
        free_time = (if free < 0 then None else Some free);
        free_site = (if free_site < 0 then None else Some free_site);
      }
  | _ -> Error "bad object record"

let of_sexp t =
  let* args = S.as_list t in
  match args with
  | S.Atom "ormp-whomp-profile" :: rest ->
    let body = S.List (S.Atom "_" :: rest) in
    let* v = int_field "version" body in
    if v <> version then Error (Printf.sprintf "unsupported version %d" v)
    else
      let* collected = int_field "collected" body in
      let* wild = int_field "wild" body in
      let pick name f =
        collect_results
          (List.filter_map
             (function
               | S.List (S.Atom n :: args) when n = name -> Some (f args)
               | _ -> None)
             rest)
      in
      let* dims = pick "grammar" grammar_of_sexp in
      let* groups = pick "group" group_of_sexp in
      let* lifetimes = pick "object" lifetime_of_sexp in
      Ok { W.dims; collected; wild; groups; lifetimes; elapsed = 0.0 }
  | _ -> Error "not an ormp-whomp-profile"

let load path =
  (* A malformed file must never escape as an exception: Sexp.load already
     returns [Error] for I/O and parse failures, and this wrapper converts
     anything the structural decoding raises (e.g. Sequitur rejecting an
     impossible rebuilt sequence) into one too. *)
  match
    let* t = S.load path in
    of_sexp t
  with
  | result -> result
  | exception exn -> Error (Printf.sprintf "corrupt profile %s: %s" path (Printexc.to_string exn))
