module S = Ormp_util.Sexp
module Seq_c = Ormp_sequitur.Sequitur
module W = Ormp_whomp.Whomp
module Omc = Ormp_core.Omc

(* Version 2 added the free-site column to object records. *)
let version = 2

let ( let* ) = Result.bind

let rec collect_results = function
  | [] -> Ok []
  | Ok x :: rest ->
    let* xs = collect_results rest in
    Ok (x :: xs)
  | Error e :: _ -> Error e

let int_list args = collect_results (List.map S.as_int args)

let int_field name t =
  let* args = S.assoc name t in
  match args with [ x ] -> S.as_int x | _ -> Error ("bad field " ^ name)

(* --- writing --------------------------------------------------------- *)

let grammar_to_sexp (name, g) =
  S.field "grammar"
    (S.field "dim" [ S.atom name ]
    :: List.map
         (fun (id, rhs) ->
           S.field "rule"
             (S.int id
             :: List.map
                  (function `T v -> S.int v | `N id -> S.atom (Printf.sprintf "R%d" id))
                  rhs))
         (Seq_c.rules g))

let group_to_sexp (g : Omc.group_info) =
  S.field "group"
    [ S.int g.Omc.gid; S.int g.Omc.site; S.atom g.Omc.label; S.int g.Omc.population ]

let lifetime_to_sexp (l : Omc.lifetime) =
  S.field "object"
    [
      S.int l.Omc.group;
      S.int l.Omc.serial;
      S.int l.Omc.base;
      S.int l.Omc.size;
      S.int l.Omc.alloc_time;
      S.int (match l.Omc.free_time with None -> -1 | Some t -> t);
      S.int (match l.Omc.free_site with None -> -1 | Some s -> s);
    ]

let to_sexp (p : W.profile) =
  S.field "ormp-whomp-profile"
    ([
       S.field "version" [ S.int version ];
       S.field "collected" [ S.int p.W.collected ];
       S.field "wild" [ S.int p.W.wild ];
     ]
    @ List.map grammar_to_sexp p.W.dims
    @ List.map group_to_sexp p.W.groups
    @ List.map lifetime_to_sexp p.W.lifetimes)

let save path p = S.save path (to_sexp p)

(* --- reading --------------------------------------------------------- *)

(* Rebuild a live grammar by expanding the saved rules and re-running
   Sequitur over the expansion: the algorithm is deterministic, so the
   result is the grammar that was saved. *)
let grammar_of_sexp args =
  let body = S.List (S.Atom "_" :: args) in
  let* dim_args = S.assoc "dim" body in
  let* dim = match dim_args with [ a ] -> S.as_atom a | _ -> Error "bad dim" in
  let rules = Hashtbl.create 64 in
  let* () =
    List.fold_left
      (fun acc item ->
        let* () = acc in
        match item with
        | S.List (S.Atom "rule" :: S.Atom id_s :: rhs) -> (
          match int_of_string_opt id_s with
          | None -> Error ("bad rule id " ^ id_s)
          | Some id ->
            let* syms =
              collect_results
                (List.map
                   (fun s ->
                     let* a = S.as_atom s in
                     if String.length a > 1 && a.[0] = 'R' then
                       match int_of_string_opt (String.sub a 1 (String.length a - 1)) with
                       | Some r -> Ok (`N r)
                       | None -> Error ("bad symbol " ^ a)
                     else
                       match int_of_string_opt a with
                       | Some v -> Ok (`T v)
                       | None -> Error ("bad symbol " ^ a))
                   rhs)
            in
            Hashtbl.replace rules id syms;
            Ok ())
        | _ -> Ok ())
      (Ok ()) args
  in
  if not (Hashtbl.mem rules 0) then Error "grammar has no start rule"
  else begin
    let memo = Hashtbl.create 64 in
    let expanding = Hashtbl.create 16 in
    let rec expand id =
      match Hashtbl.find_opt memo id with
      | Some e -> Ok e
      | None ->
        if Hashtbl.mem expanding id then
          (* A corrupted file can reference a rule from its own expansion;
             without this check the recursion would never terminate. *)
          Error (Printf.sprintf "cyclic rule R%d" id)
        else (
          match Hashtbl.find_opt rules id with
          | None -> Error (Printf.sprintf "dangling rule R%d" id)
          | Some rhs ->
            Hashtbl.replace expanding id ();
            let* parts =
              collect_results
                (List.map (function `T v -> Ok [ v ] | `N r -> expand r) rhs)
            in
            Hashtbl.remove expanding id;
            let e = List.concat parts in
            Hashtbl.replace memo id e;
            Ok e)
    in
    let* terminals = expand 0 in
    let g = Seq_c.create () in
    List.iter (Seq_c.push g) terminals;
    Ok (dim, g)
  end

let group_of_sexp args =
  match args with
  | [ gid; site; label; population ] ->
    let* gid = S.as_int gid in
    let* site = S.as_int site in
    let* label = S.as_atom label in
    let* population = S.as_int population in
    Ok { Omc.gid; site; label; population }
  | _ -> Error "bad group"

let lifetime_of_sexp args =
  let* xs = int_list args in
  match xs with
  | [ group; serial; base; size; alloc_time; free; free_site ] ->
    Ok
      {
        Omc.group;
        serial;
        base;
        size;
        alloc_time;
        free_time = (if free < 0 then None else Some free);
        free_site = (if free_site < 0 then None else Some free_site);
      }
  | _ -> Error "bad object record"

let of_sexp t =
  let* args = S.as_list t in
  match args with
  | S.Atom "ormp-whomp-profile" :: rest ->
    let body = S.List (S.Atom "_" :: rest) in
    let* v = int_field "version" body in
    if v <> version then Error (Printf.sprintf "unsupported version %d" v)
    else
      let* collected = int_field "collected" body in
      let* wild = int_field "wild" body in
      let pick name f =
        collect_results
          (List.filter_map
             (function
               | S.List (S.Atom n :: args) when n = name -> Some (f args)
               | _ -> None)
             rest)
      in
      let* dims = pick "grammar" grammar_of_sexp in
      let* groups = pick "group" group_of_sexp in
      let* lifetimes = pick "object" lifetime_of_sexp in
      Ok { W.dims; collected; wild; groups; lifetimes; elapsed = 0.0 }
  | _ -> Error "not an ormp-whomp-profile"

let load path =
  (* A malformed file must never escape as an exception: Sexp.load already
     returns [Error] for I/O and parse failures, and this wrapper converts
     anything the structural decoding raises (e.g. Sequitur rejecting an
     impossible rebuilt sequence) into one too. *)
  match
    let* t = S.load path in
    of_sexp t
  with
  | result -> result
  | exception exn -> Error (Printf.sprintf "corrupt profile %s: %s" path (Printexc.to_string exn))
