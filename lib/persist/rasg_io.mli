(** RASG baseline profiles on disk.

    One Sequitur grammar over the raw address stream plus the access
    count, via {!Grammar_io}. The session layer writes this next to the
    WHOMP and LEAP profiles so byte-identical resume can be checked for
    all three outputs; [elapsed] is deliberately not serialized (wall
    time differs between byte-identical runs). *)

val to_sexp : Ormp_whomp.Rasg.profile -> Ormp_util.Sexp.t
val save : string -> Ormp_whomp.Rasg.profile -> unit

val of_sexp : Ormp_util.Sexp.t -> (Ormp_whomp.Rasg.profile, string) result

val load : string -> (Ormp_whomp.Rasg.profile, string) result
(** [elapsed] reads back as 0. Never raises on a corrupt file. *)
