module S = Ormp_util.Sexp

let version = 1

let ( let* ) = Result.bind

let int_field name t =
  let* args = S.assoc name t in
  match args with [ x ] -> S.as_int x | _ -> Error ("bad field " ^ name)

let to_sexp (p : Ormp_whomp.Rasg.profile) =
  S.field "ormp-rasg-profile"
    [
      S.field "version" [ S.int version ];
      S.field "accesses" [ S.int p.Ormp_whomp.Rasg.accesses ];
      Grammar_io.to_sexp ("rasg", p.Ormp_whomp.Rasg.grammar);
    ]

let save path p = S.save path (to_sexp p)

let of_sexp t =
  let* args = S.as_list t in
  match args with
  | S.Atom "ormp-rasg-profile" :: rest ->
    let body = S.List (S.Atom "_" :: rest) in
    let* v = int_field "version" body in
    if v <> version then Error (Printf.sprintf "unsupported version %d" v)
    else
      let* accesses = int_field "accesses" body in
      let* gargs = S.assoc "grammar" body in
      let* _, grammar = Grammar_io.of_sexp gargs in
      Ok { Ormp_whomp.Rasg.grammar; accesses; elapsed = 0.0 }
  | _ -> Error "not an ormp-rasg-profile"

let load path =
  match
    let* t = S.load path in
    of_sexp t
  with
  | result -> result
  | exception exn -> Error (Printf.sprintf "corrupt profile %s: %s" path (Printexc.to_string exn))
