module S = Ormp_util.Sexp
module C = Ormp_lmad.Compressor
module L = Ormp_lmad.Lmad
module Leap = Ormp_leap.Leap

let version = 1

(* --- writing --------------------------------------------------------- *)

let ints xs = List.map S.int xs

let lmad_to_sexp (d : L.t) =
  S.field "lmad"
    (S.field "start" (ints (Array.to_list d.L.start))
    :: List.map
         (fun (l : L.level) ->
           S.field "level"
             [
               S.field "stride" (ints (Array.to_list l.L.stride));
               S.field "count" [ S.int l.L.count ];
             ])
         d.L.levels)

let summary_to_sexp (s : C.summary) =
  S.field "summary"
    [
      S.field "min" (ints (Array.to_list s.C.min_v));
      S.field "max" (ints (Array.to_list s.C.max_v));
      S.field "granularity" (ints (Array.to_list s.C.granularity));
      S.field "discarded" [ S.int s.C.discarded ];
    ]

let comp_to_sexp name (c : C.t) =
  let p = C.parts c in
  S.field name
    ([
       S.field "dims" [ S.int p.C.p_dims ];
       S.field "budget" [ S.int p.C.p_budget ];
       S.field "max-depth" [ S.int p.C.p_max_depth ];
       S.field "total" [ S.int p.C.p_total ];
       S.field "discarded" [ S.int p.C.p_discarded ];
     ]
    @ List.map lmad_to_sexp p.C.p_lmads
    @ match p.C.p_summary with None -> [] | Some s -> [ summary_to_sexp s ])

let stream_to_sexp (k : Leap.key) (s : Leap.stream) =
  S.field "stream"
    ([
       S.field "instr" [ S.int k.Leap.instr ];
       S.field "group" [ S.int k.Leap.group ];
       comp_to_sexp "comp" s.Leap.comp;
       comp_to_sexp "off" s.Leap.off;
       S.field "spans"
         (List.concat_map
            (fun (sp : Leap.span) -> [ S.int sp.Leap.t_first; S.int sp.Leap.t_last ])
            (List.rev
               (Ormp_util.Vec.fold_left (fun acc sp -> sp :: acc) [] s.Leap.spans)));
     ]
    @
    match s.Leap.dspan with
    | None -> []
    | Some sp -> [ S.field "dspan" [ S.int sp.Leap.t_first; S.int sp.Leap.t_last ] ])

let to_sexp (p : Leap.profile) =
  S.field "ormp-leap-profile"
    ([
       S.field "version" [ S.int version ];
       S.field "collected" [ S.int p.Leap.collected ];
       S.field "wild" [ S.int p.Leap.wild ];
       S.field "stores"
         (Hashtbl.fold
            (fun i is_store acc -> if is_store then S.int i :: acc else acc)
            p.Leap.store_instrs []);
       S.field "instrs" (Hashtbl.fold (fun i _ acc -> S.int i :: acc) p.Leap.store_instrs []);
     ]
    @ List.map (fun (k, s) -> stream_to_sexp k s) p.Leap.streams)

let save path p = S.save path (to_sexp p)

(* --- reading --------------------------------------------------------- *)

let ( let* ) = Result.bind

let rec collect_results = function
  | [] -> Ok []
  | Ok x :: rest ->
    let* xs = collect_results rest in
    Ok (x :: xs)
  | Error e :: _ -> Error e

let int_list args = collect_results (List.map S.as_int args)

let int_field name t =
  let* args = S.assoc name t in
  match args with [ x ] -> S.as_int x | _ -> Error ("bad field " ^ name)

let lmad_of_sexp t =
  let* args = S.as_list t in
  match args with
  | S.Atom "lmad" :: rest ->
    let* start_args = S.assoc "start" (S.List (S.Atom "_" :: rest)) in
    let* start = int_list start_args in
    let levels_s =
      List.filter
        (function S.List (S.Atom "level" :: _) -> true | _ -> false)
        rest
    in
    let* levels =
      collect_results
        (List.map
           (fun l ->
             let* stride_args = S.assoc "stride" l in
             let* stride = int_list stride_args in
             let* count = int_field "count" l in
             Ok { L.stride = Array.of_list stride; count })
           levels_s)
    in
    (match L.of_levels ~start:(Array.of_list start) ~levels with
    | d -> Ok d
    | exception Invalid_argument msg -> Error msg)
  | _ -> Error "expected (lmad ...)"

let summary_of_sexp t =
  let* min_args = S.assoc "min" t in
  let* min_v = int_list min_args in
  let* max_args = S.assoc "max" t in
  let* max_v = int_list max_args in
  let* gran_args = S.assoc "granularity" t in
  let* granularity = int_list gran_args in
  let* discarded = int_field "discarded" t in
  Ok
    {
      C.min_v = Array.of_list min_v;
      max_v = Array.of_list max_v;
      granularity = Array.of_list granularity;
      discarded;
    }

let comp_of_sexp name t =
  let* args = S.assoc name t in
  let body = S.List (S.Atom name :: args) in
  let* dims = int_field "dims" body in
  let* budget = int_field "budget" body in
  let* max_depth = int_field "max-depth" body in
  let* total = int_field "total" body in
  let* discarded = int_field "discarded" body in
  let lmad_sexps =
    List.filter (function S.List (S.Atom "lmad" :: _) -> true | _ -> false) args
  in
  let* lmads = collect_results (List.map lmad_of_sexp lmad_sexps) in
  let* summary =
    match S.assoc "summary" body with
    | Ok sargs ->
      let* s = summary_of_sexp (S.List (S.Atom "summary" :: sargs)) in
      Ok (Some s)
    | Error _ -> Ok None
  in
  match
    C.of_parts
      {
        C.p_dims = dims;
        p_budget = budget;
        p_max_depth = max_depth;
        p_lmads = lmads;
        p_total = total;
        p_discarded = discarded;
        p_summary = summary;
      }
  with
  | c -> Ok c
  | exception Invalid_argument msg -> Error msg

let stream_of_sexp t =
  let* instr = int_field "instr" t in
  let* group = int_field "group" t in
  let* comp = comp_of_sexp "comp" t in
  let* off = comp_of_sexp "off" t in
  let* span_args = S.assoc "spans" t in
  let* span_ints = int_list span_args in
  let spans = Ormp_util.Vec.create () in
  let rec pair_up = function
    | [] -> Ok ()
    | a :: b :: rest ->
      Ormp_util.Vec.push spans { Leap.t_first = a; t_last = b };
      pair_up rest
    | [ _ ] -> Error "odd span list"
  in
  let* () = pair_up span_ints in
  let* dspan =
    match S.assoc "dspan" t with
    | Ok [ a; b ] ->
      let* a = S.as_int a in
      let* b = S.as_int b in
      Ok (Some { Leap.t_first = a; t_last = b })
    | Ok _ -> Error "bad dspan"
    | Error _ -> Ok None
  in
  Ok ({ Leap.instr; group }, { Leap.comp; spans; off; dspan })

let of_sexp t =
  let* args = S.as_list t in
  match args with
  | S.Atom "ormp-leap-profile" :: rest ->
    let body = S.List (S.Atom "_" :: rest) in
    let* v = int_field "version" body in
    if v <> version then Error (Printf.sprintf "unsupported version %d" v)
    else
      let* collected = int_field "collected" body in
      let* wild = int_field "wild" body in
      let* store_args = S.assoc "stores" body in
      let* stores = int_list store_args in
      let* instr_args = S.assoc "instrs" body in
      let* all_instrs = int_list instr_args in
      let store_instrs = Hashtbl.create 64 in
      List.iter (fun i -> Hashtbl.replace store_instrs i false) all_instrs;
      List.iter (fun i -> Hashtbl.replace store_instrs i true) stores;
      let stream_sexps =
        List.filter (function S.List (S.Atom "stream" :: _) -> true | _ -> false) rest
      in
      let* streams = collect_results (List.map stream_of_sexp stream_sexps) in
      Ok { Leap.streams; store_instrs; collected; wild; elapsed = 0.0 }
  | _ -> Error "not an ormp-leap-profile"

let load path =
  (* Mirror Whomp_io.load: no exception from a corrupt file may escape. *)
  match
    let* t = S.load path in
    of_sexp t
  with
  | result -> result
  | exception exn -> Error (Printf.sprintf "corrupt profile %s: %s" path (Printexc.to_string exn))
