module S = Ormp_util.Sexp
module Leap = Ormp_leap.Leap

let version = 1

(* --- writing --------------------------------------------------------- *)

let comp_to_sexp = Lmad_io.comp_to_sexp

let stream_to_sexp (k : Leap.key) (s : Leap.stream) =
  S.field "stream"
    ([
       S.field "instr" [ S.int k.Leap.instr ];
       S.field "group" [ S.int k.Leap.group ];
       comp_to_sexp "comp" s.Leap.comp;
       comp_to_sexp "off" s.Leap.off;
       S.field "spans"
         (List.concat_map
            (fun (sp : Leap.span) -> [ S.int sp.Leap.t_first; S.int sp.Leap.t_last ])
            (List.rev
               (Ormp_util.Vec.fold_left (fun acc sp -> sp :: acc) [] s.Leap.spans)));
     ]
    @
    match s.Leap.dspan with
    | None -> []
    | Some sp -> [ S.field "dspan" [ S.int sp.Leap.t_first; S.int sp.Leap.t_last ] ])

let to_sexp (p : Leap.profile) =
  S.field "ormp-leap-profile"
    ([
       S.field "version" [ S.int version ];
       S.field "collected" [ S.int p.Leap.collected ];
       S.field "wild" [ S.int p.Leap.wild ];
       (* Sorted: Hashtbl.fold order depends on insertion history, which
          differs between a serial collector and merged shards — the file
          must be byte-identical either way (the loader never cared). *)
       S.field "stores"
         (List.map S.int
            (List.sort compare
               (* lint:allow hashtbl-order — order erased by the sort above *)
               (Hashtbl.fold
                  (fun i is_store acc -> if is_store then i :: acc else acc)
                  p.Leap.store_instrs [])));
       S.field "instrs"
         (List.map S.int
            (List.sort compare
               (* lint:allow hashtbl-order — order erased by the sort above *)
               (Hashtbl.fold (fun i _ acc -> i :: acc) p.Leap.store_instrs [])));
     ]
    (* Degradation counters ride along only when a session capped stream
       growth, keeping uncapped files (and version 1 readers) unchanged. *)
    @ (if p.Leap.dropped_streams <> 0 then
         [ S.field "dropped-streams" [ S.int p.Leap.dropped_streams ] ]
       else [])
    @ (if p.Leap.dropped_accesses <> 0 then
         [ S.field "dropped-accesses" [ S.int p.Leap.dropped_accesses ] ]
       else [])
    @ List.map (fun (k, s) -> stream_to_sexp k s) p.Leap.streams)

let save path p = S.save path (to_sexp p)

(* --- reading --------------------------------------------------------- *)

let ( let* ) = Result.bind

let rec collect_results = function
  | [] -> Ok []
  | Ok x :: rest ->
    let* xs = collect_results rest in
    Ok (x :: xs)
  | Error e :: _ -> Error e

let int_list args = collect_results (List.map S.as_int args)

let int_field name t =
  let* args = S.assoc name t in
  match args with [ x ] -> S.as_int x | _ -> Error ("bad field " ^ name)

let opt_int_field ~default name t =
  match S.assoc name t with Error _ -> Ok default | Ok _ -> int_field name t

let stream_of_sexp t =
  let* instr = int_field "instr" t in
  let* group = int_field "group" t in
  let* comp = Lmad_io.comp_of_sexp "comp" t in
  let* off = Lmad_io.comp_of_sexp "off" t in
  let* span_args = S.assoc "spans" t in
  let* span_ints = int_list span_args in
  let spans = Ormp_util.Vec.create () in
  let rec pair_up = function
    | [] -> Ok ()
    | a :: b :: rest ->
      Ormp_util.Vec.push spans { Leap.t_first = a; t_last = b };
      pair_up rest
    | [ _ ] -> Error "odd span list"
  in
  let* () = pair_up span_ints in
  let* dspan =
    match S.assoc "dspan" t with
    | Ok [ a; b ] ->
      let* a = S.as_int a in
      let* b = S.as_int b in
      Ok (Some { Leap.t_first = a; t_last = b })
    | Ok _ -> Error "bad dspan"
    | Error _ -> Ok None
  in
  Ok ({ Leap.instr; group }, { Leap.comp; spans; off; dspan })

let of_sexp t =
  let* args = S.as_list t in
  match args with
  | S.Atom "ormp-leap-profile" :: rest ->
    let body = S.List (S.Atom "_" :: rest) in
    let* v = int_field "version" body in
    if v <> version then Error (Printf.sprintf "unsupported version %d" v)
    else
      let* collected = int_field "collected" body in
      let* wild = int_field "wild" body in
      let* dropped_streams = opt_int_field ~default:0 "dropped-streams" body in
      let* dropped_accesses = opt_int_field ~default:0 "dropped-accesses" body in
      let* store_args = S.assoc "stores" body in
      let* stores = int_list store_args in
      let* instr_args = S.assoc "instrs" body in
      let* all_instrs = int_list instr_args in
      let store_instrs = Hashtbl.create 64 in
      List.iter (fun i -> Hashtbl.replace store_instrs i false) all_instrs;
      List.iter (fun i -> Hashtbl.replace store_instrs i true) stores;
      let stream_sexps =
        List.filter (function S.List (S.Atom "stream" :: _) -> true | _ -> false) rest
      in
      let* streams = collect_results (List.map stream_of_sexp stream_sexps) in
      Ok
        {
          Leap.streams;
          store_instrs;
          collected;
          wild;
          dropped_streams;
          dropped_accesses;
          elapsed = 0.0;
        }
  | _ -> Error "not an ormp-leap-profile"

let load path =
  (* Mirror Whomp_io.load: no exception from a corrupt file may escape. *)
  match
    let* t = S.load path in
    of_sexp t
  with
  | result -> result
  | exception exn -> Error (Printf.sprintf "corrupt profile %s: %s" path (Printexc.to_string exn))
