(** LMAD and LEAP-compressor codecs.

    Shared by the LEAP profile format ({!Leap_io}) and the session layer's
    checkpoint snapshots. Two compressor codecs exist on purpose:
    {!comp_to_sexp} persists the {e lossy} {!Ormp_lmad.Compressor.parts}
    view (profile files — the open descriptor is finalized), while
    {!state_to_sexp} persists the {e exact}
    {!Ormp_lmad.Compressor.state} (snapshots — a restored compressor
    continues the stream byte-for-byte). *)

val lmad_to_sexp : Ormp_lmad.Lmad.t -> Ormp_util.Sexp.t
val lmad_of_sexp : Ormp_util.Sexp.t -> (Ormp_lmad.Lmad.t, string) result

val summary_to_sexp : Ormp_lmad.Compressor.summary -> Ormp_util.Sexp.t

val summary_of_sexp :
  Ormp_util.Sexp.t -> (Ormp_lmad.Compressor.summary, string) result
(** Decodes from the body holding the [min]/[max]/... fields. *)

val comp_to_sexp : string -> Ormp_lmad.Compressor.t -> Ormp_util.Sexp.t
(** [(name (dims ..) (budget ..) ... (lmad ..)* (summary ..)?)] via
    {!Ormp_lmad.Compressor.parts}. *)

val comp_of_sexp :
  string -> Ormp_util.Sexp.t -> (Ormp_lmad.Compressor.t, string) result
(** Finds the [name] field in the given body and rebuilds via
    {!Ormp_lmad.Compressor.of_parts}. *)

val state_to_sexp : string -> Ormp_lmad.Compressor.t -> Ormp_util.Sexp.t
(** Exact-state form, including the open descriptor and the
    discarded-summary continuation point. *)

val state_of_sexp :
  string -> Ormp_util.Sexp.t -> (Ormp_lmad.Compressor.t, string) result
(** Inverse of {!state_to_sexp}; rebuilds via
    {!Ormp_lmad.Compressor.of_state}. *)
