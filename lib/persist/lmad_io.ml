module S = Ormp_util.Sexp
module C = Ormp_lmad.Compressor
module L = Ormp_lmad.Lmad

let ( let* ) = Result.bind

let rec collect_results = function
  | [] -> Ok []
  | Ok x :: rest ->
    let* xs = collect_results rest in
    Ok (x :: xs)
  | Error e :: _ -> Error e

let int_list args = collect_results (List.map S.as_int args)

let int_field name t =
  let* args = S.assoc name t in
  match args with [ x ] -> S.as_int x | _ -> Error ("bad field " ^ name)

let ints xs = List.map S.int xs

(* --- LMAD descriptors ------------------------------------------------ *)

let level_to_sexp (l : L.level) =
  S.field "level"
    [
      S.field "stride" (ints (Array.to_list l.L.stride));
      S.field "count" [ S.int l.L.count ];
    ]

let lmad_to_sexp (d : L.t) =
  S.field "lmad" (S.field "start" (ints (Array.to_list d.L.start)) :: List.map level_to_sexp d.L.levels)

let levels_of_sexps items =
  collect_results
    (List.filter_map
       (function
         | S.List (S.Atom "level" :: _) as l ->
           Some
             (let* stride_args = S.assoc "stride" l in
              let* stride = int_list stride_args in
              let* count = int_field "count" l in
              Ok { L.stride = Array.of_list stride; count })
         | _ -> None)
       items)

let lmad_of_sexp t =
  let* args = S.as_list t in
  match args with
  | S.Atom "lmad" :: rest ->
    let* start_args = S.assoc "start" (S.List (S.Atom "_" :: rest)) in
    let* start = int_list start_args in
    let* levels = levels_of_sexps rest in
    (match L.of_levels ~start:(Array.of_list start) ~levels with
    | d -> Ok d
    | exception Invalid_argument msg -> Error msg)
  | _ -> Error "expected (lmad ...)"

(* --- summaries ------------------------------------------------------- *)

let summary_to_sexp (s : C.summary) =
  S.field "summary"
    [
      S.field "min" (ints (Array.to_list s.C.min_v));
      S.field "max" (ints (Array.to_list s.C.max_v));
      S.field "granularity" (ints (Array.to_list s.C.granularity));
      S.field "discarded" [ S.int s.C.discarded ];
    ]

let summary_of_sexp t =
  let* min_args = S.assoc "min" t in
  let* min_v = int_list min_args in
  let* max_args = S.assoc "max" t in
  let* max_v = int_list max_args in
  let* gran_args = S.assoc "granularity" t in
  let* granularity = int_list gran_args in
  let* discarded = int_field "discarded" t in
  Ok
    {
      C.min_v = Array.of_list min_v;
      max_v = Array.of_list max_v;
      granularity = Array.of_list granularity;
      discarded;
    }

(* --- lossy compressor snapshots (profile files) ---------------------- *)

let comp_to_sexp name (c : C.t) =
  let p = C.parts c in
  S.field name
    ([
       S.field "dims" [ S.int p.C.p_dims ];
       S.field "budget" [ S.int p.C.p_budget ];
       S.field "max-depth" [ S.int p.C.p_max_depth ];
       S.field "total" [ S.int p.C.p_total ];
       S.field "discarded" [ S.int p.C.p_discarded ];
     ]
    @ List.map lmad_to_sexp p.C.p_lmads
    @ match p.C.p_summary with None -> [] | Some s -> [ summary_to_sexp s ])

let comp_of_sexp name t =
  let* args = S.assoc name t in
  let body = S.List (S.Atom name :: args) in
  let* dims = int_field "dims" body in
  let* budget = int_field "budget" body in
  let* max_depth = int_field "max-depth" body in
  let* total = int_field "total" body in
  let* discarded = int_field "discarded" body in
  let lmad_sexps =
    List.filter (function S.List (S.Atom "lmad" :: _) -> true | _ -> false) args
  in
  let* lmads = collect_results (List.map lmad_of_sexp lmad_sexps) in
  let* summary =
    match S.assoc "summary" body with
    | Ok sargs ->
      let* s = summary_of_sexp (S.List (S.Atom "summary" :: sargs)) in
      Ok (Some s)
    | Error _ -> Ok None
  in
  match
    C.of_parts
      {
        C.p_dims = dims;
        p_budget = budget;
        p_max_depth = max_depth;
        p_lmads = lmads;
        p_total = total;
        p_discarded = discarded;
        p_summary = summary;
      }
  with
  | c -> Ok c
  | exception Invalid_argument msg -> Error msg

(* --- exact compressor state (session snapshots) ---------------------- *)

let state_to_sexp name (c : C.t) =
  let s = C.state c in
  let open_fields (os : C.open_state) =
    S.field "open"
      ([ S.field "start" (ints (Array.to_list os.C.s_start)) ]
      @ List.map level_to_sexp os.C.s_levels
      @ (match os.C.s_top_stride with
        | None -> []
        | Some ts -> [ S.field "top-stride" (ints (Array.to_list ts)) ])
      @ [
          S.field "top-done" [ S.int os.C.s_top_done ];
          S.field "partial" [ S.int os.C.s_partial ];
        ])
  in
  S.field name
    ([
       S.field "dims" [ S.int s.C.s_dims ];
       S.field "budget" [ S.int s.C.s_budget ];
       S.field "max-depth" [ S.int s.C.s_max_depth ];
       S.field "total" [ S.int s.C.s_total ];
     ]
    @ List.map lmad_to_sexp s.C.s_closed
    @ (match s.C.s_current with None -> [] | Some os -> [ open_fields os ])
    @ (match s.C.s_summary with None -> [] | Some sum -> [ summary_to_sexp sum ])
    @
    match s.C.s_last_discarded with
    | None -> []
    | Some p -> [ S.field "last-discarded" (ints (Array.to_list p)) ])

let state_of_sexp name t =
  let* args = S.assoc name t in
  let body = S.List (S.Atom name :: args) in
  let* dims = int_field "dims" body in
  let* budget = int_field "budget" body in
  let* max_depth = int_field "max-depth" body in
  let* total = int_field "total" body in
  let lmad_sexps =
    List.filter (function S.List (S.Atom "lmad" :: _) -> true | _ -> false) args
  in
  let* closed = collect_results (List.map lmad_of_sexp lmad_sexps) in
  let* current =
    match S.assoc "open" body with
    | Error _ -> Ok None
    | Ok oargs ->
      let obody = S.List (S.Atom "open" :: oargs) in
      let* start_args = S.assoc "start" obody in
      let* start = int_list start_args in
      let* levels = levels_of_sexps oargs in
      let* top_stride =
        match S.assoc "top-stride" obody with
        | Error _ -> Ok None
        | Ok ts_args ->
          let* ts = int_list ts_args in
          Ok (Some (Array.of_list ts))
      in
      let* top_done = int_field "top-done" obody in
      let* partial = int_field "partial" obody in
      Ok
        (Some
           {
             C.s_start = Array.of_list start;
             s_levels = levels;
             s_top_stride = top_stride;
             s_top_done = top_done;
             s_partial = partial;
           })
  in
  let* summary =
    match S.assoc "summary" body with
    | Error _ -> Ok None
    | Ok sargs ->
      let* s = summary_of_sexp (S.List (S.Atom "summary" :: sargs)) in
      Ok (Some s)
  in
  let* last_discarded =
    match S.assoc "last-discarded" body with
    | Error _ -> Ok None
    | Ok largs ->
      let* p = int_list largs in
      Ok (Some (Array.of_list p))
  in
  match
    C.of_state
      {
        C.s_dims = dims;
        s_budget = budget;
        s_max_depth = max_depth;
        s_closed = closed;
        s_current = current;
        s_total = total;
        s_summary = summary;
        s_last_discarded = last_discarded;
      }
  with
  | c -> Ok c
  | exception Invalid_argument msg -> Error msg
