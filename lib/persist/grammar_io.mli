(** Single Sequitur grammars on disk.

    The grammar codec shared by the WHOMP profile format, the RASG
    baseline format and the session layer (checkpoint snapshots and
    sealed-epoch spill files). A grammar is serialized as its
    {!Ormp_sequitur.Sequitur.rules} listing and rebuilt live with
    {!Ormp_sequitur.Sequitur.of_rules}: Sequitur is deterministic, so the
    rebuilt compressor is exactly the one that was saved — including its
    response to further pushes. *)

val to_sexp : string * Ormp_sequitur.Sequitur.t -> Ormp_util.Sexp.t
(** [(grammar (dim <name>) (rule <id> <sym>...)...)]. *)

val of_sexp :
  Ormp_util.Sexp.t list -> (string * Ormp_sequitur.Sequitur.t, string) result
(** Decode from the field list following the [grammar] atom; rejects
    malformed symbols and cyclic or dangling rule references. *)

val save : string -> string * Ormp_sequitur.Sequitur.t -> unit

val load : string -> (string * Ormp_sequitur.Sequitur.t, string) result
(** Never raises on a corrupt file. *)
