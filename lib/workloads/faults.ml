module E = Ormp_vm.Engine

type defect = Uaf | Oob | Double_free | Leak | Wild

let all = [ Uaf; Oob; Double_free; Leak; Wild ]

let name = function
  | Uaf -> "uaf"
  | Oob -> "oob"
  | Double_free -> "double-free"
  | Leak -> "leak"
  | Wild -> "wild"

(* Probe an address range the simulated program never maps: start well
   above the heap segment and skip over any block that happens to live
   there. *)
let unmapped_addr e =
  let rec go addr =
    match Ormp_memsim.Allocator.block_at (E.allocator e) addr with
    | None -> addr
    | Some (base, size) -> go (base + size + 0x10000)
  in
  go 0x7fff_0000

let plant e defects =
  let has d = List.mem d defects in
  (* Allocate every victim before planting any defect: a later allocation
     could reuse a freed victim's address range, which (correctly) evicts
     it from the sanitizer's graveyard and would mask the planted fault. *)
  let uaf_victim =
    if has Uaf then
      let site = E.instr e ~name:"fault:uaf-alloc" Ormp_trace.Instr.Alloc_site in
      Some (site, E.alloc e ~site 64)
    else None
  and df_victim =
    if has Double_free then
      let site = E.instr e ~name:"fault:df-alloc" Ormp_trace.Instr.Alloc_site in
      Some (E.alloc e ~site 64)
    else None
  and oob_victim =
    if has Oob then
      let site = E.instr e ~name:"fault:oob-alloc" Ormp_trace.Instr.Alloc_site in
      (* 57 bytes: the 16-byte-aligned reserved extent is 64, so offsets
         57..63 are outside the object yet inside its own reservation —
         guaranteed not to land in a neighbouring live object. *)
      Some (E.alloc e ~site 57)
    else None
  in
  if has Leak then begin
    let site = E.instr e ~name:"fault:leak-alloc" Ormp_trace.Instr.Alloc_site in
    ignore (E.alloc e ~site 48)
  end;
  (match uaf_victim with
  | None -> ()
  | Some (_, v) ->
    let fsite = E.instr e ~name:"fault:uaf-free" Ormp_trace.Instr.Free_site in
    let load = E.instr e ~name:"fault:uaf-load" Ormp_trace.Instr.Load in
    E.free e ~site:fsite v;
    E.load_raw e ~instr:load (E.addr v + 24));
  (match df_victim with
  | None -> ()
  | Some v ->
    let fsite = E.instr e ~name:"fault:df-free" Ormp_trace.Instr.Free_site in
    let refree = E.instr e ~name:"fault:df-refree" Ormp_trace.Instr.Free_site in
    E.free e ~site:fsite v;
    E.free_raw e ~site:refree (E.addr v));
  (match oob_victim with
  | None -> ()
  | Some v ->
    let load = E.instr e ~name:"fault:oob-load" Ormp_trace.Instr.Load in
    E.load_raw e ~instr:load (E.addr v + 60));
  if has Wild then begin
    let load = E.instr e ~name:"fault:wild-load" Ormp_trace.Instr.Load in
    E.load_raw e ~instr:load (unmapped_addr e)
  end

let inject ?(defects = all) (p : Ormp_vm.Program.t) =
  Ormp_vm.Program.make
    ~name:(p.name ^ "+faults")
    ~description:(p.description ^ " (with planted memory defects)")
    ~statics:p.statics
    (fun e ->
      p.run e;
      plant e defects)

(* --- process-level faults (supervisor / session validation) ----------- *)

exception Injected_crash of string

let crashing (p : Ormp_vm.Program.t) =
  Ormp_vm.Program.make
    ~name:(p.name ^ "+crash")
    ~description:(p.description ^ " (raises after its body completes)")
    ~statics:p.statics
    (fun e ->
      p.run e;
      raise (Injected_crash (p.name ^ " injected crash")))

let hanging ?(period = 64) (p : Ormp_vm.Program.t) =
  Ormp_vm.Program.make
    ~name:(p.name ^ "+hang")
    ~description:(p.description ^ " (never terminates after its body)")
    ~statics:p.statics
    (fun e ->
      p.run e;
      (* Keep emitting events forever: a hang that stays inside the probe
         stream is observable by cooperative cancellation (OCaml domains
         cannot be killed from outside), unlike a silent spin. *)
      let site = E.instr e ~name:"fault:hang-alloc" Ormp_trace.Instr.Alloc_site in
      let load = E.instr e ~name:"fault:hang-load" Ormp_trace.Instr.Load in
      let words = max 1 (period / 8) in
      let v = E.alloc e ~site (words * 8) in
      let i = ref 0 in
      while true do
        E.load e ~instr:load v (!i mod words * 8);
        incr i
      done)

(* --- injected I/O faults (journal / checkpoint durability) ------------ *)

module Io = struct
  exception Torn_write of string
  exception No_space of string
  exception Killed of int

  type plan = {
    torn_write : int option;
    no_space : int option;
    kill_at_checkpoint : int option;
  }

  let none = { torn_write = None; no_space = None; kill_at_checkpoint = None }

  type t = { plan : plan; mutable writes : int; mutable checkpoints : int }

  let create plan = { plan; writes = 0; checkpoints = 0 }

  let writes t = t.writes

  let write t oc s =
    t.writes <- t.writes + 1;
    (match t.plan.no_space with
    | Some n when t.writes = n -> raise (No_space (Printf.sprintf "injected ENOSPC at write %d" n))
    | _ -> ());
    match t.plan.torn_write with
    | Some n when t.writes = n ->
      (* Flush the first half to the descriptor so the file really is torn
         on disk, exactly as a mid-write crash leaves it. *)
      output_string oc (String.sub s 0 (String.length s / 2));
      flush oc;
      raise (Torn_write (Printf.sprintf "injected torn write at write %d" n))
    | _ -> output_string oc s

  let checkpoint_written t =
    t.checkpoints <- t.checkpoints + 1;
    match t.plan.kill_at_checkpoint with
    | Some n when t.checkpoints = n -> raise (Killed n)
    | _ -> ()
end

(* --- injected wire faults (ormp serve / client robustness) ------------- *)

module Net = struct
  type plan = {
    torn_frame : int option;
    disconnect_before : int option;
    slow_frame : int option;
    dup_retry : int option;
  }

  let none =
    { torn_frame = None; disconnect_before = None; slow_frame = None; dup_retry = None }

  type action = Send | Torn | Slow | Disconnect

  type t = { plan : plan; mutable frames : int; mutable rewound : bool }

  let create plan = { plan; frames = 0; rewound = false }

  let frames t = t.frames

  (* The frame counter runs across reconnects, and each fault matches one
     exact ordinal, so every planned fault fires at most once even though
     the stream around it is re-sent. *)
  let next_frame t =
    t.frames <- t.frames + 1;
    if t.plan.disconnect_before = Some t.frames then Disconnect
    else if t.plan.torn_frame = Some t.frames then Torn
    else if t.plan.slow_frame = Some t.frames then Slow
    else Send

  let rewind t =
    match t.plan.dup_retry with
    | Some n when not t.rewound ->
      t.rewound <- true;
      n
    | _ -> 0
end
