module E = Ormp_vm.Engine

type defect = Uaf | Oob | Double_free | Leak | Wild

let all = [ Uaf; Oob; Double_free; Leak; Wild ]

let name = function
  | Uaf -> "uaf"
  | Oob -> "oob"
  | Double_free -> "double-free"
  | Leak -> "leak"
  | Wild -> "wild"

(* Probe an address range the simulated program never maps: start well
   above the heap segment and skip over any block that happens to live
   there. *)
let unmapped_addr e =
  let rec go addr =
    match Ormp_memsim.Allocator.block_at (E.allocator e) addr with
    | None -> addr
    | Some (base, size) -> go (base + size + 0x10000)
  in
  go 0x7fff_0000

let plant e defects =
  let has d = List.mem d defects in
  (* Allocate every victim before planting any defect: a later allocation
     could reuse a freed victim's address range, which (correctly) evicts
     it from the sanitizer's graveyard and would mask the planted fault. *)
  let uaf_victim =
    if has Uaf then
      let site = E.instr e ~name:"fault:uaf-alloc" Ormp_trace.Instr.Alloc_site in
      Some (site, E.alloc e ~site 64)
    else None
  and df_victim =
    if has Double_free then
      let site = E.instr e ~name:"fault:df-alloc" Ormp_trace.Instr.Alloc_site in
      Some (E.alloc e ~site 64)
    else None
  and oob_victim =
    if has Oob then
      let site = E.instr e ~name:"fault:oob-alloc" Ormp_trace.Instr.Alloc_site in
      (* 57 bytes: the 16-byte-aligned reserved extent is 64, so offsets
         57..63 are outside the object yet inside its own reservation —
         guaranteed not to land in a neighbouring live object. *)
      Some (E.alloc e ~site 57)
    else None
  in
  if has Leak then begin
    let site = E.instr e ~name:"fault:leak-alloc" Ormp_trace.Instr.Alloc_site in
    ignore (E.alloc e ~site 48)
  end;
  (match uaf_victim with
  | None -> ()
  | Some (_, v) ->
    let fsite = E.instr e ~name:"fault:uaf-free" Ormp_trace.Instr.Free_site in
    let load = E.instr e ~name:"fault:uaf-load" Ormp_trace.Instr.Load in
    E.free e ~site:fsite v;
    E.load_raw e ~instr:load (E.addr v + 24));
  (match df_victim with
  | None -> ()
  | Some v ->
    let fsite = E.instr e ~name:"fault:df-free" Ormp_trace.Instr.Free_site in
    let refree = E.instr e ~name:"fault:df-refree" Ormp_trace.Instr.Free_site in
    E.free e ~site:fsite v;
    E.free_raw e ~site:refree (E.addr v));
  (match oob_victim with
  | None -> ()
  | Some v ->
    let load = E.instr e ~name:"fault:oob-load" Ormp_trace.Instr.Load in
    E.load_raw e ~instr:load (E.addr v + 60));
  if has Wild then begin
    let load = E.instr e ~name:"fault:wild-load" Ormp_trace.Instr.Load in
    E.load_raw e ~instr:load (unmapped_addr e)
  end

let inject ?(defects = all) (p : Ormp_vm.Program.t) =
  Ormp_vm.Program.make
    ~name:(p.name ^ "+faults")
    ~description:(p.description ^ " (with planted memory defects)")
    ~statics:p.statics
    (fun e ->
      p.run e;
      plant e defects)
