(** Fault injection for sanitizer validation.

    Wraps any workload so that, after its normal body runs, it plants one
    instance of each requested memory-defect class at dedicated,
    recognizably-named program points ([fault:uaf-load],
    [fault:df-refree], ...). The sanitizer must attribute every planted
    defect to exactly these sites — that is what the acceptance tests
    assert — and must report nothing extra on the unwrapped workload. *)

type defect =
  | Uaf  (** free an object, then load from inside its former range *)
  | Oob  (** load a few bytes past the end of a live object *)
  | Double_free  (** free the same base twice *)
  | Leak  (** allocate from a dedicated site and never free *)
  | Wild  (** load from an address no object ever covered *)

val all : defect list

val name : defect -> string

val inject : ?defects:defect list -> Ormp_vm.Program.t -> Ormp_vm.Program.t
(** [inject p] is a program named [p.name ^ "+faults"] that runs [p] and
    then plants [defects] (default {!all}). *)

(** {2 Process-level faults}

    For exercising the session supervisor: workloads that crash or hang
    {e after} completing their real body, so the events up to the fault
    are the unwrapped workload's events. *)

exception Injected_crash of string

val crashing : Ormp_vm.Program.t -> Ormp_vm.Program.t
(** [p.name ^ "+crash"]: runs [p], then raises {!Injected_crash}. *)

val hanging : ?period:int -> Ormp_vm.Program.t -> Ormp_vm.Program.t
(** [p.name ^ "+hang"]: runs [p], then loops forever emitting one access
    event per iteration over a [period]-byte scratch object — never
    returns, but stays observable to cooperative cancellation checks in
    the event stream. *)

(** {2 Injected I/O faults}

    A fault plan threaded through the session layer's file writes. Each
    counter-triggered fault fires exactly once, at the Nth operation,
    making durability failures deterministic and testable. *)
module Io : sig
  exception Torn_write of string
  (** Raised after flushing only the first half of the requested bytes. *)

  exception No_space of string
  (** Raised before writing anything (the classic full-disk failure). *)

  exception Killed of int
  (** Simulated [kill -9] immediately after the Nth checkpoint landed. *)

  type plan = {
    torn_write : int option;  (** tear the Nth {!write} *)
    no_space : int option;  (** fail the Nth {!write} with no effect *)
    kill_at_checkpoint : int option;
        (** die right after the Nth completed checkpoint *)
  }

  val none : plan

  type t

  val create : plan -> t

  val writes : t -> int
  (** Write operations attempted so far. *)

  val write : t -> out_channel -> string -> unit
  (** Write [s] to the channel, or fire the planned fault for this
      ordinal. *)

  val checkpoint_written : t -> unit
  (** Notify the plan that a checkpoint completed (may raise
      {!Killed}). *)
end

(** {2 Injected wire faults}

    A fault plan consulted by the `ormp client` sender once per outgoing
    data frame, numbered from 1 across the whole session (reconnects
    included), so each planned fault fires exactly once at a
    deterministic frame ordinal. The daemon must turn the resulting
    damage into a protocol error on this session alone, and a client
    retry must then resume and complete it. *)
module Net : sig
  type plan = {
    torn_frame : int option;
        (** send only half of the Nth frame, then drop the connection *)
    disconnect_before : int option;
        (** drop the connection instead of sending the Nth frame *)
    slow_frame : int option;
        (** dribble the Nth frame out in tiny delayed chunks *)
    dup_retry : int option;
        (** after the first resumed reconnect, rewind the send position
            by N events past the server-acknowledged point, forcing the
            server to deduplicate the overlap *)
  }

  val none : plan

  (** What the sender must do with the frame it is about to send. *)
  type action = Send | Torn | Slow | Disconnect

  type t

  val create : plan -> t

  val frames : t -> int
  (** Data frames the plan has been consulted about so far. *)

  val next_frame : t -> action
  (** Count one outgoing data frame and return its fate. *)

  val rewind : t -> int
  (** Events to rewind the resume position by on this reconnect (0 when
      no [dup_retry] is planned; fires once). *)
end
