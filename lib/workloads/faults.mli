(** Fault injection for sanitizer validation.

    Wraps any workload so that, after its normal body runs, it plants one
    instance of each requested memory-defect class at dedicated,
    recognizably-named program points ([fault:uaf-load],
    [fault:df-refree], ...). The sanitizer must attribute every planted
    defect to exactly these sites — that is what the acceptance tests
    assert — and must report nothing extra on the unwrapped workload. *)

type defect =
  | Uaf  (** free an object, then load from inside its former range *)
  | Oob  (** load a few bytes past the end of a live object *)
  | Double_free  (** free the same base twice *)
  | Leak  (** allocate from a dedicated site and never free *)
  | Wild  (** load from an address no object ever covered *)

val all : defect list

val name : defect -> string

val inject : ?defects:defect list -> Ormp_vm.Program.t -> Ormp_vm.Program.t
(** [inject p] is a program named [p.name ^ "+faults"] that runs [p] and
    then plants [defects] (default {!all}). *)
