type 'a node = {
  base : int;
  size : int;
  value : 'a;
  mutable left : 'a node option;
  mutable right : 'a node option;
  mutable height : int;
}

type 'a t = {
  mutable root : 'a node option;
  mutable count : int;
  mutable high_water : int;
}

let create () = { root = None; count = 0; high_water = 0 }

let height = function None -> 0 | Some n -> n.height

let update_height n = n.height <- 1 + max (height n.left) (height n.right)

let balance_factor n = height n.left - height n.right

(* Rotations rebuild in place by mutating child links; nodes themselves keep
   their key/value immutable. *)
let rotate_right n =
  match n.left with
  | None -> n
  | Some l ->
    n.left <- l.right;
    l.right <- Some n;
    update_height n;
    update_height l;
    l

let rotate_left n =
  match n.right with
  | None -> n
  | Some r ->
    n.right <- r.left;
    r.left <- Some n;
    update_height n;
    update_height r;
    r

let rebalance n =
  update_height n;
  let bf = balance_factor n in
  if bf > 1 then begin
    (match n.left with
    | Some l when balance_factor l < 0 -> n.left <- Some (rotate_left l)
    | _ -> ());
    rotate_right n
  end
  else if bf < -1 then begin
    (match n.right with
    | Some r when balance_factor r > 0 -> n.right <- Some (rotate_right r)
    | _ -> ());
    rotate_left n
  end
  else n

let overlaps b1 s1 b2 s2 = b1 < b2 + s2 && b2 < b1 + s1

let insert t ~base ~size value =
  if size <= 0 then invalid_arg "Range_index.insert: size must be positive";
  let rec go = function
    | None -> { base; size; value; left = None; right = None; height = 1 }
    | Some n ->
      if overlaps base size n.base n.size then
        invalid_arg
          (Printf.sprintf "Range_index.insert: [%d,%d) overlaps live range [%d,%d)" base
             (base + size) n.base (n.base + n.size))
      else if base < n.base then begin
        n.left <- Some (go n.left);
        rebalance n
      end
      else begin
        n.right <- Some (go n.right);
        rebalance n
      end
  in
  t.root <- Some (go t.root);
  t.count <- t.count + 1;
  if t.count > t.high_water then t.high_water <- t.count

let rec min_node n = match n.left with None -> n | Some l -> min_node l

let remove t ~base =
  let removed = ref false in
  let rec go = function
    | None -> None
    | Some n ->
      if base < n.base then begin
        n.left <- go n.left;
        Some (rebalance n)
      end
      else if base > n.base then begin
        n.right <- go n.right;
        Some (rebalance n)
      end
      else begin
        removed := true;
        match (n.left, n.right) with
        | None, r -> r
        | l, None -> l
        | Some _, Some r ->
          (* Replace with in-order successor. *)
          let succ = min_node r in
          let fresh =
            {
              base = succ.base;
              size = succ.size;
              value = succ.value;
              left = n.left;
              right = remove_min n.right;
              height = 0;
            }
          in
          Some (rebalance fresh)
      end
  and remove_min = function
    | None -> None
    | Some n -> (
      match n.left with
      | None -> n.right
      | Some _ ->
        n.left <- remove_min n.left;
        Some (rebalance n))
  in
  t.root <- go t.root;
  if !removed then t.count <- t.count - 1;
  !removed

let find t addr =
  (* Walk down keeping the greatest base <= addr, then check containment. *)
  let rec go best = function
    | None -> best
    | Some n ->
      if addr < n.base then go best n.left
      else go (Some n) n.right
  in
  match go None t.root with
  | Some n when addr >= n.base && addr < n.base + n.size -> Some (n.base, n.size, n.value)
  | _ -> None

let find_nearest_below t addr =
  let rec go best = function
    | None -> best
    | Some n -> if addr < n.base then go best n.left else go (Some n) n.right
  in
  match go None t.root with
  | Some n -> Some (n.base, n.size, n.value)
  | None -> None

let find_nearest_above t addr =
  let rec go best = function
    | None -> best
    | Some n -> if n.base > addr then go (Some n) n.left else go best n.right
  in
  match go None t.root with
  | Some n -> Some (n.base, n.size, n.value)
  | None -> None

let mem t addr = Option.is_some (find t addr)

let cardinal t = t.count
let max_live t = t.high_water

let iter t f =
  let rec go = function
    | None -> ()
    | Some n ->
      go n.left;
      f ~base:n.base ~size:n.size n.value;
      go n.right
  in
  go t.root

let check_invariants t =
  let exception Bad of string in
  (* Structural pass: AVL balance and height bookkeeping. *)
  let rec structural = function
    | None -> 0
    | Some n ->
      let hl = structural n.left in
      let hr = structural n.right in
      if abs (hl - hr) > 1 then raise (Bad (Printf.sprintf "unbalanced at base=%d" n.base));
      if n.height <> 1 + max hl hr then
        raise (Bad (Printf.sprintf "stale height at base=%d" n.base));
      1 + max hl hr
  in
  (* Order pass: in-order ranges must be sorted and pairwise disjoint. *)
  try
    ignore (structural t.root);
    let prev = ref None in
    let n_seen = ref 0 in
    iter t (fun ~base ~size _ ->
        incr n_seen;
        (match !prev with
        | Some (pb, ps) ->
          if pb + ps > base then raise (Bad "in-order ranges overlap");
          if pb >= base then raise (Bad "in-order bases not increasing")
        | None -> ());
        prev := Some (base, size));
    if !n_seen <> t.count then raise (Bad "cardinal out of sync");
    Ok ()
  with Bad msg -> Error msg
