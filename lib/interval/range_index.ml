(* lint:hot-path *)
(* Flat sorted-interval lanes (PR 10). The old AVL tree allocated a boxed
   node per range and a [Some (base, size, v)] tuple per query; the OMC
   translates hundreds of accesses per allocation event, so queries must
   be allocation-free. Ranges now live in three parallel lanes sorted by
   base — [bases], [sizes], [values] — searched with a branch-minimal
   binary search ([find_idx]) and mutated with memmove-style shifts.
   Inserts/removes are O(n) but ride the rare alloc/free path; the
   [generation] counter (bumped on every mutation) lets callers cache
   lane indices (the OMC's packed-int MRU) and invalidate them with one
   compare instead of a pointer chase. *)

type 'a t = {
  mutable bases : int array;
  mutable sizes : int array;
  mutable values : 'a array;  (* dummy-filled past [count] with a live 'a *)
  mutable count : int;
  mutable high_water : int;
  mutable generation : int;
}

let create () =
  {
    bases = [||];
    sizes = [||];
    values = [||];
    count = 0;
    high_water = 0;
    generation = 0;
  }

let cardinal t = t.count
let max_live t = t.high_water
let generation t = t.generation
let bases_lane t = t.bases
let sizes_lane t = t.sizes
let values_lane t = t.values

(* Index of the greatest base <= addr, or -1. The loop halves a
   [len]-wide window in place; the only data-dependent branch is the
   window-advance compare, which compiles to a conditional add. *)
let[@inline] pred_idx t addr =
  let bases = t.bases in
  let off = ref 0 in
  let len = ref t.count in
  while !len > 1 do
    let half = !len asr 1 in
    if Array.unsafe_get bases (!off + half) <= addr then off := !off + half;
    len := !len - half
  done;
  if t.count > 0 && Array.unsafe_get bases !off <= addr then !off else -1

let[@inline] find_idx t addr =
  let i = pred_idx t addr in
  if i >= 0 && addr - Array.unsafe_get t.bases i < Array.unsafe_get t.sizes i
  then i
  else -1

let[@inline] idx_base t i = Array.unsafe_get t.bases i
let[@inline] idx_size t i = Array.unsafe_get t.sizes i
let[@inline] idx_value t i = Array.unsafe_get t.values i

let find t addr =
  let i = find_idx t addr in
  if i < 0 then None else Some (t.bases.(i), t.sizes.(i), t.values.(i))

let mem t addr = find_idx t addr >= 0

let find_nearest_below t addr =
  let i = pred_idx t addr in
  if i < 0 then None else Some (t.bases.(i), t.sizes.(i), t.values.(i))

let find_nearest_above t addr =
  let i = pred_idx t addr + 1 in
  if i >= t.count then None else Some (t.bases.(i), t.sizes.(i), t.values.(i))

let overlap_msg base size b s =
  "Range_index.insert: [" ^ string_of_int base ^ ","
  ^ string_of_int (base + size)
  ^ ") overlaps live range [" ^ string_of_int b ^ ","
  ^ string_of_int (b + s) ^ ")"

let grow t value =
  let cap = Array.length t.bases in
  let cap' = if cap = 0 then 16 else cap * 2 in
  let bases = Array.make cap' 0 in
  let sizes = Array.make cap' 0 in
  let values = Array.make cap' value in
  Array.blit t.bases 0 bases 0 t.count;
  Array.blit t.sizes 0 sizes 0 t.count;
  Array.blit t.values 0 values 0 t.count;
  t.bases <- bases;
  t.sizes <- sizes;
  t.values <- values

let insert t ~base ~size value =
  if size <= 0 then invalid_arg "Range_index.insert: size must be positive";
  let p = pred_idx t base in
  (* Predecessor may reach into [base, base+size); successor may start
     before base+size. Sortedness + disjointness make these the only two
     candidates. *)
  if p >= 0 && t.bases.(p) + t.sizes.(p) > base then
    invalid_arg (overlap_msg base size t.bases.(p) t.sizes.(p));
  let at = p + 1 in
  if at < t.count && base + size > t.bases.(at) then
    invalid_arg (overlap_msg base size t.bases.(at) t.sizes.(at));
  if t.count = Array.length t.bases then grow t value;
  let tail = t.count - at in
  if tail > 0 then begin
    Array.blit t.bases at t.bases (at + 1) tail;
    Array.blit t.sizes at t.sizes (at + 1) tail;
    Array.blit t.values at t.values (at + 1) tail
  end;
  t.bases.(at) <- base;
  t.sizes.(at) <- size;
  t.values.(at) <- value;
  t.count <- t.count + 1;
  t.generation <- t.generation + 1;
  if t.count > t.high_water then t.high_water <- t.count

let remove t ~base =
  let i = pred_idx t base in
  if i < 0 || t.bases.(i) <> base then false
  else begin
    let tail = t.count - i - 1 in
    if tail > 0 then begin
      Array.blit t.bases (i + 1) t.bases i tail;
      Array.blit t.sizes (i + 1) t.sizes i tail;
      Array.blit t.values (i + 1) t.values i tail
    end;
    t.count <- t.count - 1;
    (* Drop the vacated slot's reference so the GC can reclaim it; reuse
       an existing live value as the filler. *)
    if t.count > 0 then t.values.(t.count) <- t.values.(0);
    t.generation <- t.generation + 1;
    true
  end

let iter t f =
  for i = 0 to t.count - 1 do
    f ~base:t.bases.(i) ~size:t.sizes.(i) t.values.(i)
  done

let check_invariants t =
  let exception Bad of string in
  try
    if t.count < 0 || t.count > Array.length t.bases then
      raise (Bad "count out of bounds");
    if Array.length t.sizes <> Array.length t.bases
       || Array.length t.values <> Array.length t.bases
    then raise (Bad "lane lengths disagree");
    for i = 0 to t.count - 1 do
      if t.sizes.(i) <= 0 then raise (Bad "non-positive size");
      if i > 0 then begin
        if t.bases.(i - 1) >= t.bases.(i) then
          raise (Bad "in-order bases not increasing");
        if t.bases.(i - 1) + t.sizes.(i - 1) > t.bases.(i) then
          raise (Bad "in-order ranges overlap")
      end
    done;
    if t.high_water < t.count then raise (Bad "high_water below count");
    Ok ()
  with Bad msg -> Error msg
