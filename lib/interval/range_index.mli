(** Address-range index for the object-management component.

    The paper speeds up raw-address-to-object lookup with "an auxiliary
    B-tree-like data structure which stores the range of addresses that each
    object takes up" (§3.1). This is that structure, flattened (PR 10)
    into three parallel lanes sorted by base — no per-range boxing, and
    stabbing queries ({!find_idx}) are allocation-free binary searches.
    Inserts and removals shift the lanes (O(n)) but ride the rare
    alloc/free path; profiling streams are access-dominated.

    Ranges must not overlap; the allocator substrate guarantees this, and
    {!val:insert} enforces it defensively. *)

type 'a t
(** Index holding values of type ['a], one per live range. *)

val create : unit -> 'a t
(** Empty index. *)

val insert : 'a t -> base:int -> size:int -> 'a -> unit
(** [insert t ~base ~size v] maps the range [\[base, base+size)] to [v].
    [size] must be positive.
    @raise Invalid_argument if the range overlaps an existing one. *)

val remove : 'a t -> base:int -> bool
(** [remove t ~base] deletes the range starting exactly at [base]; returns
    whether a range was present. *)

val find : 'a t -> int -> (int * int * 'a) option
(** [find t addr] returns [(base, size, v)] for the unique live range
    containing [addr], if any. *)

val find_nearest_below : 'a t -> int -> (int * int * 'a) option
(** [find_nearest_below t addr] is the range with the greatest [base <=
    addr] (which may or may not contain [addr]), if any. Together with
    {!find_nearest_above} this answers proximity queries — e.g. "which
    object does this out-of-bounds address sit just past?". *)

val find_nearest_above : 'a t -> int -> (int * int * 'a) option
(** The range with the least [base > addr], if any. *)

val mem : 'a t -> int -> bool
(** Whether some live range contains the address. *)

val cardinal : 'a t -> int
(** Number of live ranges. *)

val iter : 'a t -> (base:int -> size:int -> 'a -> unit) -> unit
(** Visit all live ranges in increasing base order. *)

val max_live : 'a t -> int
(** High-water mark of {!cardinal} over the index's lifetime. *)

val check_invariants : 'a t -> (unit, string) result
(** Verify lane ordering, range disjointness and bookkeeping; for tests. *)

(** {2 Flat-lane access}

    Allocation-free query surface for hot paths (the OMC's packed-int
    MRU). Indices returned by {!find_idx} are positions in the sorted
    lanes and stay valid only while {!generation} is unchanged — any
    {!insert} or {!remove} shifts the lanes and bumps the generation. *)

val find_idx : 'a t -> int -> int
(** [find_idx t addr] is the lane index of the live range containing
    [addr], or [-1]. Never allocates. *)

val generation : 'a t -> int
(** Mutation counter: bumped by every {!insert} and {!remove}. *)

val idx_base : 'a t -> int -> int
(** Base of the range at a lane index. Unsafe: the index must come from
    {!find_idx} under the current {!generation}. *)

val idx_size : 'a t -> int -> int
(** Size of the range at a lane index (same contract as {!idx_base}). *)

val idx_value : 'a t -> int -> 'a
(** Value of the range at a lane index (same contract as {!idx_base}). *)

val bases_lane : 'a t -> int array
(** Borrowed read-only view of the sorted base lane; entries beyond
    {!cardinal} are garbage. Invalidated (possibly replaced wholesale)
    by any mutation — callers must re-fetch when {!generation} moves. *)

val sizes_lane : 'a t -> int array
(** Borrowed read-only size lane (same contract as {!bases_lane}). *)

val values_lane : 'a t -> 'a array
(** Borrowed read-only value lane (same contract as {!bases_lane}). *)
