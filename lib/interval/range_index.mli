(** Address-range index for the object-management component.

    The paper speeds up raw-address-to-object lookup with "an auxiliary
    B-tree-like data structure which stores the range of addresses that each
    object takes up" (§3.1). This is that structure: a height-balanced
    search tree over non-overlapping half-open ranges [\[base, base+size)],
    supporting O(log n) insert, removal and stabbing queries.

    Ranges must not overlap; the allocator substrate guarantees this, and
    {!val:insert} enforces it defensively. *)

type 'a t
(** Index holding values of type ['a], one per live range. *)

val create : unit -> 'a t
(** Empty index. *)

val insert : 'a t -> base:int -> size:int -> 'a -> unit
(** [insert t ~base ~size v] maps the range [\[base, base+size)] to [v].
    [size] must be positive.
    @raise Invalid_argument if the range overlaps an existing one. *)

val remove : 'a t -> base:int -> bool
(** [remove t ~base] deletes the range starting exactly at [base]; returns
    whether a range was present. *)

val find : 'a t -> int -> (int * int * 'a) option
(** [find t addr] returns [(base, size, v)] for the unique live range
    containing [addr], if any. *)

val find_nearest_below : 'a t -> int -> (int * int * 'a) option
(** [find_nearest_below t addr] is the range with the greatest [base <=
    addr] (which may or may not contain [addr]), if any. Together with
    {!find_nearest_above} this answers proximity queries — e.g. "which
    object does this out-of-bounds address sit just past?". *)

val find_nearest_above : 'a t -> int -> (int * int * 'a) option
(** The range with the least [base > addr], if any. *)

val mem : 'a t -> int -> bool
(** Whether some live range contains the address. *)

val cardinal : 'a t -> int
(** Number of live ranges. *)

val iter : 'a t -> (base:int -> size:int -> 'a -> unit) -> unit
(** Visit all live ranges in increasing base order. *)

val max_live : 'a t -> int
(** High-water mark of {!cardinal} over the index's lifetime. *)

val check_invariants : 'a t -> (unit, string) result
(** Verify AVL balance, BST ordering and range disjointness; for tests. *)
