(** Monotonic wall clock.

    [Sys.time] measures process CPU time, which is the wrong quantity for
    anything run across domains (it sums all cores) and too coarse for
    micro-timing. This wraps the OS monotonic clock that Bechamel vendors,
    so every timing column in the system — runner elapsed times, bench
    section times, dilation batches — reads the same wall clock. *)

val now_ns : unit -> int64
(** Nanoseconds from an arbitrary (but fixed) origin; never goes back. *)

val now_s : unit -> float
(** Same instant in seconds. *)
