(* Table-driven CRC-32 (the IEEE 802.3 / zlib polynomial, reflected form
   0xEDB88320). OCaml ints are at least 63 bits, so the 32-bit value is
   kept in the low bits of a plain [int]; all operations below stay within
   32 bits. *)

(* Built eagerly at module init: a [lazy] here gets forced from several
   domains at once (daemon + clients all encode frames), and a racy
   first force raises in OCaml 5. 256 ints are cheaper than the guard. *)
let table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let update crc s =
  let t = table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  String.iter
    (fun ch -> c := Array.unsafe_get t ((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let string s = update 0 s
