(* Minimal JSON: just enough to emit the telemetry exports (metrics
   snapshots, Chrome trace-event files) and to parse them back for
   validation — the repo deliberately carries no JSON dependency.

   Emission notes: non-finite floats have no JSON encoding and render as
   null (matching bench_log); object member order is preserved. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- emission --------------------------------------------------------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buf buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    if Float.is_nan f || Float.abs f = Float.infinity then Buffer.add_string buf "null"
    else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | String s -> escape_into buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buf buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_into buf k;
        Buffer.add_char buf ':';
        to_buf buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  to_buf buf t;
  Buffer.contents buf

(* --- parsing ---------------------------------------------------------- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      value
    end
    else fail ("bad literal " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let add_utf8 cp =
      (* Enough of an encoder for the escapes our own emitter produces and
         the BMP codepoints a hand-written trace might carry. *)
      if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
    in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
          | Some cp ->
            add_utf8 cp;
            pos := !pos + 4
          | None -> fail "bad \\u escape")
        | _ -> fail "bad escape");
        advance ();
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    if String.exists (function '.' | 'e' | 'E' -> true | _ -> false) lit then
      match float_of_string_opt lit with Some f -> Float f | None -> fail "bad number"
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt lit with Some f -> Float f | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec go () =
          items := parse_value () :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            go ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        go ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec go () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            go ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        go ();
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors -------------------------------------------------------- *)

let member name = function Obj fields -> List.assoc_opt name fields | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_str = function String s -> Some s | _ -> None
