type layout =
  | Uniform of { lo : float; hi : float }
  | Centered of { half_width : float; half_buckets : int }

type t = {
  layout : layout;
  counts : int array;
  mutable total : int;
}

let create ~lo ~hi ~buckets =
  if buckets <= 0 then invalid_arg "Histogram.create: buckets must be positive";
  if not (hi > lo) then invalid_arg "Histogram.create: hi must exceed lo";
  { layout = Uniform { lo; hi }; counts = Array.make buckets 0; total = 0 }

let centered ~half_width ~half_buckets =
  if half_buckets <= 0 then invalid_arg "Histogram.centered: half_buckets must be positive";
  if not (half_width > 0.0) then invalid_arg "Histogram.centered: half_width must be positive";
  {
    layout = Centered { half_width; half_buckets };
    counts = Array.make ((2 * half_buckets) + 1) 0;
    total = 0;
  }

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

let bucket_of t x =
  let n = Array.length t.counts in
  match t.layout with
  | Uniform { lo; hi } ->
    let w = (hi -. lo) /. float_of_int n in
    clamp 0 (n - 1) (int_of_float (floor ((x -. lo) /. w)))
  | Centered { half_width; half_buckets } ->
    if x = 0.0 then half_buckets
    else
      let w = half_width /. float_of_int half_buckets in
      if x > 0.0 then
        (* (0, w] -> first bucket right of center *)
        half_buckets + clamp 1 half_buckets (int_of_float (ceil (x /. w)))
      else half_buckets - clamp 1 half_buckets (int_of_float (ceil (-.x /. w)))

let add_n t x n =
  let i = bucket_of t x in
  t.counts.(i) <- t.counts.(i) + n;
  t.total <- t.total + n

let add t x = add_n t x 1

let counts t = Array.copy t.counts
let total t = t.total

let fractions t =
  if t.total = 0 then Array.make (Array.length t.counts) 0.0
  else Array.map (fun c -> float_of_int c /. float_of_int t.total) t.counts

let labels t =
  let n = Array.length t.counts in
  match t.layout with
  | Uniform { lo; hi } ->
    let w = (hi -. lo) /. float_of_int n in
    Array.init n (fun i ->
        Printf.sprintf "[%g,%g)" (lo +. (w *. float_of_int i)) (lo +. (w *. float_of_int (i + 1))))
  | Centered { half_width; half_buckets } ->
    let w = half_width /. float_of_int half_buckets in
    Array.init n (fun i ->
        if i = half_buckets then "0"
        else if i < half_buckets then
          let k = half_buckets - i in
          (* [0.0 -. x] rather than [-.x] so the upper bound prints as "0",
             not "-0". *)
          Printf.sprintf "[%g,%g)" (0.0 -. (w *. float_of_int k)) (0.0 -. (w *. float_of_int (k - 1)))
        else
          let k = i - half_buckets in
          Printf.sprintf "(%g,%g]" (w *. float_of_int (k - 1)) (w *. float_of_int k))

(* Nominal [lo, hi) range of bucket [i]. Edge buckets also absorb clamped
   out-of-range values, but their nominal bounds are what quantile
   interpolation uses — the clamp already lost the true magnitudes. The
   center bucket of a [Centered] layout is the exact point 0. *)
let bucket_bounds t i =
  let n = Array.length t.counts in
  if i < 0 || i >= n then invalid_arg "Histogram.bucket_bounds: bucket out of range";
  match t.layout with
  | Uniform { lo; hi } ->
    let w = (hi -. lo) /. float_of_int n in
    (lo +. (w *. float_of_int i), lo +. (w *. float_of_int (i + 1)))
  | Centered { half_width; half_buckets } ->
    let w = half_width /. float_of_int half_buckets in
    if i = half_buckets then (0.0, 0.0)
    else if i < half_buckets then
      let k = half_buckets - i in
      (0.0 -. (w *. float_of_int k), 0.0 -. (w *. float_of_int (k - 1)))
    else
      let k = i - half_buckets in
      (w *. float_of_int (k - 1), w *. float_of_int k)

(* Inverse CDF with linear interpolation inside the winning bucket. [p] is
   clamped to [0, 1]; an empty histogram has no quantiles (nan). *)
let quantile t p =
  if t.total = 0 then Float.nan
  else begin
    let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
    let target = p *. float_of_int t.total in
    let n = Array.length t.counts in
    let rec go i cum =
      if i >= n then snd (bucket_bounds t (n - 1))
      else
        let c = t.counts.(i) in
        let cum' = cum +. float_of_int c in
        if c > 0 && cum' >= target then begin
          let lo, hi = bucket_bounds t i in
          if target <= cum then lo
          else lo +. ((hi -. lo) *. ((target -. cum) /. float_of_int c))
        end
        else go (i + 1) cum'
    in
    go 0 0.0
  end

let merge a b =
  if a.layout <> b.layout || Array.length a.counts <> Array.length b.counts then
    invalid_arg "Histogram.merge: layout mismatch";
  {
    layout = a.layout;
    counts = Array.init (Array.length a.counts) (fun i -> a.counts.(i) + b.counts.(i));
    total = a.total + b.total;
  }
