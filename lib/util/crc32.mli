(** CRC-32 checksums (IEEE 802.3 polynomial, as in zlib and gzip).

    Used by the session layer to seal snapshot files and to fingerprint
    write-ahead journal prefixes: a CRC mismatch on load means the file
    was torn or corrupted and the loader must fall back, never trust the
    content. *)

val string : string -> int
(** CRC-32 of a whole string. [string "123456789" = 0xCBF43926]. *)

val update : int -> string -> int
(** Incremental form: [update (string a) b = string (a ^ b)], with
    [update 0 s = string s]. Lets a writer maintain the checksum of an
    append-only stream without rereading it. *)
