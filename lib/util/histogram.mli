(** Fixed-bucket histograms.

    The report layer uses these for the paper's error-distribution figures
    (Figures 6-8); the buckets are symmetric around an exact-zero center
    bucket when built with {!val:centered}. *)

type t

val create : lo:float -> hi:float -> buckets:int -> t
(** [create ~lo ~hi ~buckets] covers [\[lo, hi)] with [buckets] equal-width
    buckets. Samples outside the range are clamped into the edge buckets. *)

val centered : half_width:float -> half_buckets:int -> t
(** [centered ~half_width ~half_buckets] builds the paper-style layout:
    [half_buckets] buckets on each side of a dedicated bucket that counts
    exact zeros, covering [\[-half_width, +half_width\]]. Total bucket count
    is [2*half_buckets + 1]. *)

val add : t -> float -> unit
(** Record one sample. *)

val add_n : t -> float -> int -> unit
(** Record [n] identical samples. *)

val counts : t -> int array
(** Per-bucket counts, low to high. *)

val total : t -> int
(** Number of recorded samples. *)

val fractions : t -> float array
(** Per-bucket fraction of all samples; all zeros when empty. *)

val labels : t -> string array
(** Human-readable bucket labels ("[-20,-10)", "0", ...). *)

val bucket_of : t -> float -> int
(** Index of the bucket a sample would land in. *)

val bucket_bounds : t -> int -> float * float
(** Nominal [(lo, hi)] range of a bucket. Edge buckets also absorb clamped
    out-of-range samples; the center bucket of a {!val:centered} layout is
    the exact point [(0, 0)].
    @raise Invalid_argument when the index is out of range. *)

val quantile : t -> float -> float
(** [quantile t p] is the inverse CDF at [p] (clamped to [\[0, 1\]]), with
    linear interpolation inside the winning bucket. [nan] when empty. *)

val merge : t -> t -> t
(** Sum of two histograms with identical layouts.
    @raise Invalid_argument on layout mismatch. *)
