(** Minimal JSON emitter/parser for telemetry exports.

    Just enough to write metrics snapshots and Chrome trace-event files and
    to parse them back for validation; the repo carries no JSON dependency.
    Non-finite floats render as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering. Object member order is preserved. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a message with the
    byte offset of the failure. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on missing field or non-object. *)

val to_list : t -> t list option
val to_float : t -> float option
(** Accepts both [Float] and [Int]. *)

val to_int : t -> int option
val to_str : t -> string option
