(** Simulated heap allocators.

    The paper's central observation is that raw-address profiles are
    polluted by artifacts of the memory allocator: "even for the same input
    set, a different allocator library could lay out the memory
    differently" (§1). This module provides five allocation policies with
    visibly different placement behaviour, so experiments and tests can run
    one workload under several allocators and observe that raw-address
    streams diverge while object-relative streams stay identical.

    All policies guarantee that live blocks never overlap and are aligned
    to the configured alignment. *)

type policy =
  | Bump  (** arena-style: monotonically increasing placement, frees ignored *)
  | First_fit  (** boundary-tag free list, lowest fitting hole, with coalescing *)
  | Best_fit  (** free list, smallest fitting hole *)
  | Segregated  (** power-of-two size classes with per-class free lists *)
  | Randomized of int  (** ASLR-style placement at seeded random addresses *)

val all_policies : policy list
(** One of each, [Randomized] seeded with 1. *)

val policy_name : policy -> string

type t

val create : ?base:int -> ?limit:int -> ?align:int -> policy -> t
(** [create policy] simulates a heap segment starting at [base]
    (default 0x1000_0000) of [limit] bytes (default 256 MiB), with
    [align]-byte placement (default 16). *)

val alloc : t -> int -> int
(** [alloc t size] returns the base address of a fresh block of [size]
    bytes ([size > 0]). @raise Out_of_memory if the segment is full. *)

val free : t -> int -> unit
(** [free t base] releases the live block starting at [base].
    @raise Invalid_argument if [base] is not a live block. *)

val size_of : t -> int -> int option
(** Size of the live block at exactly this base address, if any. *)

val block_at : t -> int -> (int * int) option
(** [(base, size)] of the live block whose reserved extent contains the
    address, if any — lets a caller probe whether an arbitrary address is
    mapped (the fault-injection harness uses this to pick genuinely
    unmapped addresses). *)

val live_blocks : t -> int
(** Number of currently live blocks. *)

val live_bytes : t -> int
(** Sum of sizes of live blocks. *)

val total_allocs : t -> int
(** Number of [alloc] calls served. *)

val check_no_overlap : t -> (unit, string) result
(** Verify that live blocks are pairwise disjoint and aligned; for tests. *)
