open Ormp_util
module Ri = Ormp_interval.Range_index

type policy = Bump | First_fit | Best_fit | Segregated | Randomized of int

let all_policies = [ Bump; First_fit; Best_fit; Segregated; Randomized 1 ]

let policy_name = function
  | Bump -> "bump"
  | First_fit -> "first-fit"
  | Best_fit -> "best-fit"
  | Segregated -> "segregated"
  | Randomized s -> Printf.sprintf "randomized(%d)" s

module IntMap = Map.Make (Int)

type t = {
  policy : policy;
  base : int;
  limit : int;
  align : int;
  (* Live blocks: range size is the reserved extent, payload the requested
     size (they differ under rounding policies). *)
  live : int Ri.t;
  mutable brk : int;
  mutable holes : int IntMap.t; (* hole base -> hole size (first/best fit) *)
  classes : (int, int list ref) Hashtbl.t; (* size class -> freed bases *)
  rng : Prng.t;
  mutable live_bytes : int;
  mutable total_allocs : int;
}

let create ?(base = 0x1000_0000) ?(limit = 256 * 1024 * 1024) ?(align = 16) policy =
  if align <= 0 || base mod align <> 0 then invalid_arg "Allocator.create: bad alignment";
  let seed = match policy with Randomized s -> s | _ -> 0 in
  {
    policy;
    base;
    limit;
    align;
    live = Ri.create ();
    brk = base;
    holes = IntMap.empty;
    classes = Hashtbl.create 16;
    rng = Prng.create ~seed;
    live_bytes = 0;
    total_allocs = 0;
  }

let round_up t n = (n + t.align - 1) / t.align * t.align

let bump t reserved =
  let addr = t.brk in
  if addr + reserved > t.base + t.limit then raise Out_of_memory;
  t.brk <- addr + reserved;
  addr

(* --- first/best fit hole management ------------------------------- *)

let take_hole t hole_base hole_size reserved =
  t.holes <- IntMap.remove hole_base t.holes;
  if hole_size > reserved then
    t.holes <- IntMap.add (hole_base + reserved) (hole_size - reserved) t.holes;
  hole_base

let first_fit t reserved =
  let found =
    IntMap.to_seq t.holes
    |> Seq.find (fun (_, size) -> size >= reserved)
  in
  match found with
  | Some (hb, hs) -> take_hole t hb hs reserved
  | None -> bump t reserved

let best_fit t reserved =
  let best =
    IntMap.fold
      (fun hb hs acc ->
        if hs < reserved then acc
        else
          match acc with
          | Some (_, bs) when bs <= hs -> acc
          | _ -> Some (hb, hs))
      t.holes None
  in
  match best with
  | Some (hb, hs) -> take_hole t hb hs reserved
  | None -> bump t reserved

let add_hole t base size =
  (* Coalesce with the adjacent holes when they touch. *)
  let base, size =
    match IntMap.find_last_opt (fun b -> b < base) t.holes with
    | Some (pb, ps) when pb + ps = base ->
      t.holes <- IntMap.remove pb t.holes;
      (pb, ps + size)
    | _ -> (base, size)
  in
  let size =
    match IntMap.find_first_opt (fun b -> b > base) t.holes with
    | Some (sb, ss) when base + size = sb ->
      t.holes <- IntMap.remove sb t.holes;
      size + ss
    | _ -> size
  in
  t.holes <- IntMap.add base size t.holes

(* --- segregated size classes -------------------------------------- *)

let class_of t reserved =
  let rec go c = if c >= reserved then c else go (c * 2) in
  go t.align

let seg_alloc t reserved =
  let cls = class_of t reserved in
  match Hashtbl.find_opt t.classes cls with
  | Some ({ contents = addr :: rest } as l) ->
    l := rest;
    addr
  | _ -> bump t cls

let seg_free t base reserved =
  let cls = class_of t reserved in
  match Hashtbl.find_opt t.classes cls with
  | Some l -> l := base :: !l
  | None -> Hashtbl.replace t.classes cls (ref [ base ])

(* --- randomized placement ------------------------------------------ *)

let rand_alloc t reserved =
  let span = t.limit - reserved in
  if span <= 0 then raise Out_of_memory;
  let rec try_place attempts =
    if attempts = 0 then raise Out_of_memory
    else
      let addr = t.base + (Prng.int t.rng (span / t.align) * t.align) in
      (* Probe by trial insertion; the index rejects overlaps atomically. *)
      match Ri.insert t.live ~base:addr ~size:reserved (-1) with
      | () -> addr
      | exception Invalid_argument _ -> try_place (attempts - 1)
  in
  try_place 64

let alloc t size =
  if size <= 0 then invalid_arg "Allocator.alloc: size must be positive";
  let reserved = round_up t (max size 1) in
  let addr =
    match t.policy with
    | Bump -> bump t reserved
    | First_fit -> first_fit t reserved
    | Best_fit -> best_fit t reserved
    | Segregated -> seg_alloc t reserved
    | Randomized _ ->
      let a = rand_alloc t reserved in
      ignore (Ri.remove t.live ~base:a);
      a
  in
  Ri.insert t.live ~base:addr ~size:reserved size;
  t.live_bytes <- t.live_bytes + size;
  t.total_allocs <- t.total_allocs + 1;
  addr

let free t base =
  match Ri.find t.live base with
  | Some (b, reserved, requested) when b = base ->
    ignore (Ri.remove t.live ~base);
    t.live_bytes <- t.live_bytes - requested;
    (match t.policy with
    | Bump | Randomized _ -> ()
    | First_fit | Best_fit -> add_hole t base reserved
    | Segregated -> seg_free t base reserved)
  | _ -> invalid_arg (Printf.sprintf "Allocator.free: %#x is not a live block base" base)

let size_of t base =
  match Ri.find t.live base with
  | Some (b, _, requested) when b = base -> Some requested
  | _ -> None

let block_at t addr =
  match Ri.find t.live addr with
  | Some (base, _, requested) -> Some (base, requested)
  | None -> None

let live_blocks t = Ri.cardinal t.live
let live_bytes t = t.live_bytes
let total_allocs t = t.total_allocs

let check_no_overlap t =
  match Ri.check_invariants t.live with
  | Error _ as e -> e
  | Ok () ->
    let bad = ref None in
    Ri.iter t.live (fun ~base ~size:_ _ ->
        if base mod t.align <> 0 then bad := Some base);
    (match !bad with
    | Some b -> Error (Printf.sprintf "block %#x not aligned to %d" b t.align)
    | None -> Ok ())
