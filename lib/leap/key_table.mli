(** Open-addressing int-keyed tables for the LEAP collector arenas.

    Flat interleaved int columns with linear probing — no boxed keys, no
    polymorphic hashing, no allocation on lookups or (amortized, outside
    growth) on insertion. A -1 sentinel in the payload column marks an
    empty bucket, so payloads must be non-negative. Keys are never
    deleted. *)

type t
(** [(a, b) -> slot] map stored as interleaved [a; b; slot] triplets. *)

val create : ?capacity:int -> unit -> t
(** [capacity] is rounded up to a power of two (default 64 buckets). *)

val length : t -> int
(** Keys bound. *)

val find : t -> int -> int -> int
(** Slot bound to [(a, b)], or -1. *)

val mem : t -> int -> int -> bool

val add : t -> int -> int -> int -> unit
(** [add t a b slot] binds [(a, b) -> slot]. The key must be absent
    (bindings are never replaced — LEAP slots are immutable once
    assigned); grows to keep load at or below one half. *)

type pairs
(** [k -> v] map stored as interleaved [k; v] pairs. *)

val pairs_create : ?capacity:int -> unit -> pairs
val pairs_length : pairs -> int

val pairs_get : pairs -> int -> int
(** Value bound to [k], or -1. *)

val pairs_set : pairs -> int -> int -> unit
(** Bind [k -> v], replacing any previous binding. *)

val pairs_iter : (int -> int -> unit) -> pairs -> unit
(** Iterate bindings in unspecified (bucket) order. *)
