(** Pipeline-parallel LEAP: sharded compressor domains behind SPSC rings.

    The vertical decomposition keys streams by (instruction, group), so
    the CDC shards its tuple stream by instruction id
    ({!Leap.shard_index}) and fans each shard out over a bounded
    lock-free SPSC ring ({!Ormp_trace.Spsc}) to its own consumer domain.
    Each shard is an independent serial {!Leap.collector}; the merged
    profile ({!Leap.shards_finish}) is byte-identical to a serial run.

    {1 Shard worker pool}

    The reusable core: one consumer domain per shard. The session layer
    builds its combined WHOMP+RASG+LEAP pipeline on this. *)

type pool

val pool :
  ?ring_capacity:int -> ?stage_capacity:int -> name:string -> Leap.shard array -> pool
(** Spawn one consumer domain per shard. [ring_capacity] is the
    per-worker ring size in messages (chunks); [stage_capacity] the
    tuples staged per shard before a chunk is published (default
    {!Ormp_trace.Batch.default_capacity}). *)

val nshards : pool -> int

val pool_stage :
  pool -> instr:int -> group:int -> obj:int -> offset:int -> store:int -> time:int -> unit
(** Append one tuple to its shard's stream (publishes a chunk when the
    shard's stage fills). Producer domain only. [store] is 0/1. *)

val pool_stage_tuples : pool -> Ormp_core.Cdc.tuples -> unit
(** Stage a whole SoA tuple chunk (times stamped [tp_time0 + i]). Each
    tuple moves as scalar ints — no per-tuple boxing. Producer domain
    only. *)

val pool_drain : pool -> unit
(** Quiesce: publish every staged tuple and block until all workers have
    consumed their rings. On return the shards are frozen and safe to
    read ({!Leap.shards_live}) — and to replace with {!pool_set_shard} —
    until the next stage call. *)

val pool_shards : pool -> Leap.shard array
(** The live shards. Read only between {!pool_drain} and the next stage
    call (or after {!pool_shutdown}). *)

val pool_set_shard : pool -> int -> Leap.shard -> unit
(** Replace a shard (restore). Same discipline as {!pool_shards}. *)

val pool_shutdown : pool -> unit
(** Drain, stop and join every worker. Idempotent; safe on error paths.
    Re-raises the first worker failure, after all domains are joined. *)

val pool_pending : pool -> int
(** Chunks published but not yet consumed (racy; for observation). *)

(** {1 Parallel LEAP profiler}

    Drop-in parallel counterparts of {!Leap.sink_batched} /
    {!Leap.profile}. [jobs] counts domains including the producer, so
    [jobs - 1] shard domains are spawned; [jobs <= 1] is the caller's cue
    to use the serial path ({!profile} falls back by itself). *)

type t

val create :
  ?grouping:Ormp_core.Omc.grouping ->
  ?budget:int ->
  ?ring_capacity:int ->
  jobs:int ->
  site_name:(int -> string) ->
  unit ->
  t

val batch : t -> Ormp_trace.Batch.t
(** Batched probe entry (cf. {!Ormp_core.Cdc.batch_tuples}). *)

val sink : t -> Ormp_trace.Sink.t
(** Per-event probe entry, for drivers that cannot batch. *)

val finalize : t -> elapsed:float -> Leap.profile
(** Drain, shut the pool down and merge the shards into a profile —
    byte-identical to {!Leap.sink_batched}'s. *)

val shutdown : t -> unit
(** Abort path: stop and join the workers without assembling a profile.
    Idempotent; {!finalize} calls it internally. *)

val profile :
  ?config:Ormp_vm.Config.t ->
  ?grouping:Ormp_core.Omc.grouping ->
  ?budget:int ->
  ?ring_capacity:int ->
  jobs:int ->
  Ormp_vm.Program.t ->
  Leap.profile
(** Run the program under parallel LEAP instrumentation. [jobs <= 1]
    delegates to the serial {!Leap.profile}. *)
