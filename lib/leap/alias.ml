module L = Ormp_lmad.Lmad
module Solver = Ormp_lmad.Solver

(* Fraction of [of_s]'s iterations whose location [against] also touches:
   per descriptor of [of_s], exact lattice matching scaled from lattice
   points to the iterations the descriptor stands for (a no-op for
   captured descriptors, a density estimate for summary boxes). *)
let stream_alias_fraction ~(against : Leap.stream) ~(of_s : Leap.stream) =
  let a_descs = Leap.descriptors against in
  let matched, total =
    List.fold_left
      (fun (m, t) (d, _, cap) ->
        let size = L.size d in
        let hits =
          List.fold_left
            (fun acc (ad, _, acap) ->
              let raw = Solver.count_matches ~store:ad ~load:d in
              (* scale a summary box's evidence by its coverage density *)
              let asize = L.size ad in
              if acap = asize then acc +. float_of_int raw
              else
                acc
                +. (float_of_int raw
                   *. Float.min 1.0 (float_of_int acap /. float_of_int asize)))
            0.0 a_descs
        in
        let frac = Float.min 1.0 (hits /. float_of_int (max 1 size)) in
        (m +. (frac *. float_of_int cap), t + cap))
      (0.0, 0) (Leap.descriptors of_s)
  in
  if total = 0 then 0.0 else matched /. float_of_int total

(* The probe loops key on (instr, group) for every instruction pair; the
   sorted-lane [Leap.stream_index] answers those probes without allocating
   a key record per lookup (internal forms take the index so [rates] can
   build it once for its quadratic sweep). *)

let alias_rate_ix lookup p ~a ~b =
  let total = Leap.instr_total p b in
  if total = 0 then 0.0
  else
    let matched =
      List.fold_left
        (fun acc ((bk : Leap.key), b_stream) ->
          match lookup ~instr:a ~group:bk.Leap.group with
          | Some a_stream ->
            let stream_total = Ormp_lmad.Compressor.total b_stream.Leap.comp in
            acc
            +. (stream_alias_fraction ~against:a_stream ~of_s:b_stream
               *. float_of_int stream_total)
          | None -> acc)
        0.0 (Leap.streams_of p b)
    in
    Float.min 1.0 (matched /. float_of_int total)

let alias_rate p ~a ~b = alias_rate_ix (Leap.stream_index p) p ~a ~b

let may_alias_ix lookup p ~a ~b =
  List.exists
    (fun ((bk : Leap.key), b_stream) ->
      match lookup ~instr:a ~group:bk.Leap.group with
      | Some a_stream ->
        List.exists
          (fun (bd, _, _) ->
            List.exists
              (fun (ad, _, _) -> Solver.count_matches ~store:ad ~load:bd > 0)
              (Leap.descriptors a_stream))
          (Leap.descriptors b_stream)
      | None -> false)
    (Leap.streams_of p b)

let may_alias p ~a ~b = may_alias_ix (Leap.stream_index p) p ~a ~b

let rates p =
  let lookup = Leap.stream_index p in
  let instrs = Leap.instrs p in
  let out = ref [] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a < b then begin
            let r =
              Float.max (alias_rate_ix lookup p ~a ~b) (alias_rate_ix lookup p ~a:b ~b:a)
            in
            if r > 0.0 then out := (a, b, r) :: !out
          end)
        instrs)
    instrs;
  List.sort compare !out
