(* lint:hot-path *)

(* Open-addressing int-keyed tables for the LEAP collector arenas, in the
   PR 6 Sequitur style: interleaved int columns, linear probing, a -1
   sentinel in the payload column marking an empty bucket, load kept at or
   below one half, and the same multiplicative finalizer as the Sequitur
   digram index. Keys are never deleted, so there are no tombstones; both
   tables are self-contained (keys live in the buckets), so growth
   re-inserts from the old buckets without touching caller state. *)

let[@inline] mix k =
  let h = k * 0x2545F4914F6CDD1D in
  h lxor (h lsr 32)

let[@inline] hash2 a b = mix ((a lsl 31) lxor b)

(* --- (a, b) -> slot triplet table -------------------------------------- *)

type t = { mutable data : int array; mutable mask : int; mutable n : int }

let create ?(capacity = 64) () =
  let cap = ref 16 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  { data = Array.make (3 * !cap) (-1); mask = !cap - 1; n = 0 }

let length t = t.n

(* Slot bound to (a, b), or -1. The slot column is read first: an empty
   bucket ends the probe without looking at its (garbage) key columns. *)
let[@inline] find t a b =
  let mask = t.mask in
  let data = t.data in
  let i = ref (hash2 a b land mask) in
  let r = ref (-2) in
  while !r = -2 do
    let base = 3 * !i in
    let s = Array.unsafe_get data (base + 2) in
    if s < 0 then r := -1
    else if Array.unsafe_get data base = a && Array.unsafe_get data (base + 1) = b then r := s
    else i := (!i + 1) land mask
  done;
  !r

let[@inline] mem t a b = find t a b >= 0

let write t a b slot =
  let mask = t.mask in
  let data = t.data in
  let i = ref (hash2 a b land mask) in
  while Array.unsafe_get data ((3 * !i) + 2) >= 0 do
    i := (!i + 1) land mask
  done;
  let base = 3 * !i in
  data.(base) <- a;
  data.(base + 1) <- b;
  data.(base + 2) <- slot

let grow t =
  let old = t.data in
  let old_cap = t.mask + 1 in
  t.data <- Array.make (3 * 2 * old_cap) (-1);
  t.mask <- (2 * old_cap) - 1;
  for i = 0 to old_cap - 1 do
    let base = 3 * i in
    if old.(base + 2) >= 0 then write t old.(base) old.(base + 1) old.(base + 2)
  done

(* Bind (a, b) -> slot; the key must be absent. *)
let add t a b slot =
  if 2 * (t.n + 1) > t.mask + 1 then grow t;
  write t a b slot;
  t.n <- t.n + 1

(* --- k -> v pair table ------------------------------------------------- *)

type pairs = { mutable pdata : int array; mutable pmask : int; mutable pn : int }

let pairs_create ?(capacity = 64) () =
  let cap = ref 16 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  { pdata = Array.make (2 * !cap) (-1); pmask = !cap - 1; pn = 0 }

let pairs_length t = t.pn

(* Value bound to [k], or -1 (values must be non-negative). *)
let[@inline] pairs_get t k =
  let mask = t.pmask in
  let data = t.pdata in
  let i = ref (mix k land mask) in
  let r = ref (-2) in
  while !r = -2 do
    let base = 2 * !i in
    let v = Array.unsafe_get data (base + 1) in
    if v < 0 then r := -1
    else if Array.unsafe_get data base = k then r := v
    else i := (!i + 1) land mask
  done;
  !r

let pairs_write t k v =
  let mask = t.pmask in
  let data = t.pdata in
  let i = ref (mix k land mask) in
  while Array.unsafe_get data ((2 * !i) + 1) >= 0 do
    i := (!i + 1) land mask
  done;
  let base = 2 * !i in
  data.(base) <- k;
  data.(base + 1) <- v

let pairs_grow t =
  let old = t.pdata in
  let old_cap = t.pmask + 1 in
  t.pdata <- Array.make (2 * 2 * old_cap) (-1);
  t.pmask <- (2 * old_cap) - 1;
  for i = 0 to old_cap - 1 do
    let base = 2 * i in
    if old.(base + 1) >= 0 then pairs_write t old.(base) old.(base + 1)
  done

(* Bind k -> v, last write wins (Hashtbl.replace semantics). *)
let pairs_set t k v =
  let mask = t.pmask in
  let data = t.pdata in
  let i = ref (mix k land mask) in
  let go = ref true in
  while !go do
    let base = 2 * !i in
    let cur = Array.unsafe_get data (base + 1) in
    if cur < 0 then begin
      go := false;
      if 2 * (t.pn + 1) > t.pmask + 1 then begin
        pairs_grow t;
        pairs_write t k v
      end
      else begin
        data.(base) <- k;
        data.(base + 1) <- v
      end;
      t.pn <- t.pn + 1
    end
    else if Array.unsafe_get data base = k then begin
      Array.unsafe_set data (base + 1) v;
      go := false
    end
    else i := (!i + 1) land mask
  done

let pairs_iter f t =
  let cap = t.pmask + 1 in
  for i = 0 to cap - 1 do
    let base = 2 * i in
    if t.pdata.(base + 1) >= 0 then f t.pdata.(base) t.pdata.(base + 1)
  done
