module C = Ormp_lmad.Compressor
module L = Ormp_lmad.Lmad
module Solver = Ormp_lmad.Solver
module Vec = Ormp_util.Vec
module Tm = Ormp_telemetry.Telemetry

let m_solver_calls = Tm.Metrics.counter "leap.mdf.solver_calls"

(* Number of distinct locations a descriptor touches: levels that do not
   move the location only revisit it. *)
let distinct_locations (d : L.t) =
  List.fold_left
    (fun acc (l : L.level) ->
      if Array.exists (fun s -> s <> 0) l.L.stride then acc * l.L.count else acc)
    1 d.L.levels

(* Probability that a store time uniform in [s] precedes a load time
   uniform in [l]: the coarse temporal model for summarized accesses, whose
   exact times are gone. Exact piecewise-linear integration. *)
let p_store_before (s : Leap.span) (l : Leap.span) =
  let a = float_of_int s.Leap.t_first and b = float_of_int s.Leap.t_last in
  let c = float_of_int l.Leap.t_first and d = float_of_int l.Leap.t_last in
  if b <= c then 1.0
  else if d <= a then 0.0
  else
    (* cdf t = P(store < t), piecewise linear with breaks at a and b *)
    let cdf t = if t <= a then 0.0 else if t >= b then 1.0 else (t -. a) /. (b -. a) in
    if d = c then cdf c
    else
      let breaks =
        List.filter (fun t -> t > c && t < d) [ a; b ] |> List.sort_uniq compare
      in
      let pts = (c :: breaks) @ [ d ] in
      let rec integrate acc = function
        | t1 :: (t2 :: _ as rest) ->
          integrate (acc +. ((t2 -. t1) *. (cdf t1 +. cdf t2) /. 2.0)) rest
        | _ -> acc
      in
      integrate 0.0 pts /. (d -. c)

let stream_conflicts ~(store_s : Leap.stream) ~(load_s : Leap.stream) =
  let stores = Leap.descriptors store_s in
  let loads = Leap.descriptors load_s in
  List.fold_left
    (fun acc (load_lmad, (lspan : Leap.span), lcap) ->
      let lsize = L.size load_lmad in
      let load_is_box = lcap <> lsize in
      (* Evidence that a load iteration reads a stored location, per store
         descriptor:
         - exact x exact: the lattice intersection counts iterations and
           the descriptor-granularity time filter is binary;
         - once a summary box is involved, fine timing is gone. Model each
           store descriptor by how often it rewrites a matched location:
           lambda = iterations / distinct locations. The location is
           written with probability 1 (captured store) or ~min(1, lambda)
           (box); at least one of the lambda writes precedes the load with
           probability 1 - (1-p)^lambda, p being the probability a single
           uniformly-placed write does. Store descriptors combine by
           complement product. *)
      let exact = ref 0 in
      let p_no_probabilistic = ref 1.0 in
      List.iter
        (fun (store_lmad, (sspan : Leap.span), scap) ->
          if Tm.on () then Tm.Metrics.incr m_solver_calls;
          let matches = Solver.count_matches ~store:store_lmad ~load:load_lmad in
          if matches > 0 then begin
            let ssize = L.size store_lmad in
            let store_is_box = scap <> ssize in
            if (not store_is_box) && not load_is_box then begin
              if sspan.Leap.t_first < lspan.Leap.t_last then exact := !exact + matches
            end
            else begin
              let frac = float_of_int matches /. float_of_int lsize in
              let distinct = max 1 (distinct_locations store_lmad) in
              let lambda = float_of_int scap /. float_of_int distinct in
              let p_written = if store_is_box then Float.min 1.0 lambda else 1.0 in
              let p = p_store_before sspan lspan in
              let p_timing =
                if p >= 1.0 then 1.0 else 1.0 -. ((1.0 -. p) ** Float.max lambda 1.0)
              in
              let contribution = frac *. p_written *. p_timing in
              p_no_probabilistic := !p_no_probabilistic *. (1.0 -. Float.min 1.0 contribution)
            end
          end)
        stores;
      let flcap = float_of_int lcap in
      acc +. Float.min flcap (float_of_int !exact +. (flcap *. (1.0 -. !p_no_probabilistic))))
    0.0 loads

let compute (p : Leap.profile) =
  Tm.span ~name:"leap.mdf" @@ fun () ->
  let lookup = Leap.stream_index p in
  let deps = ref [] in
  List.iter
    (fun load ->
      let total = Leap.instr_total p load in
      if total > 0 then begin
        let per_store =
          List.filter_map
            (fun store ->
              (* Intersect group by group; streams of different groups can
                 never alias. *)
              let conflicts =
                List.fold_left
                  (fun acc (lk, load_s) ->
                    match lookup ~instr:store ~group:lk.Leap.group with
                    | Some store_s -> acc +. stream_conflicts ~store_s ~load_s
                    | None -> acc)
                  0.0
                  (Leap.streams_of p load)
              in
              if conflicts >= 0.5 then Some (store, min 1.0 (conflicts /. float_of_int total))
              else None)
            (Leap.stores p)
        in
        (* Each load execution reads the value of exactly one (last) writer,
           so the per-load frequencies form a sub-distribution — the paper's
           own example sums to exactly 100%. Estimates that cannot tell
           which of several overlapping writers was last are normalized. *)
        let sum = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 per_store in
        let scale = if sum > 1.0 then 1.0 /. sum else 1.0 in
        List.iter
          (fun (store, f) ->
            deps := { Ormp_baselines.Dep_types.store; load; freq = f *. scale } :: !deps)
          per_store
      end)
    (Leap.loads p);
  List.sort
    (fun a b ->
      compare
        (a.Ormp_baselines.Dep_types.store, a.Ormp_baselines.Dep_types.load)
        (b.Ormp_baselines.Dep_types.store, b.Ormp_baselines.Dep_types.load))
    !deps
