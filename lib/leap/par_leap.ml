module Worker = Ormp_trace.Worker
module Cdc = Ormp_core.Cdc

(* --- shard worker pool ------------------------------------------------- *)

(* Concurrency note: this pool leans entirely on the Worker/Spsc
   protocol — per-shard FIFO, the processed-counter drain barrier, and
   stop-after-push completeness. Those properties are verified
   exhaustively (every interleaving at small configurations) by the
   litmus suite in [Ormp_modelcheck.Litmus], which runs the same
   functorized transport code this pool instantiates; the pool layers
   only deterministic staging on top. *)

(* One message: a chunk of one shard's tuple sub-stream, struct-of-arrays.
   Unlike the grammar streams, a shard's tuples are not consecutive in
   time (the other shards' tuples interleave), so the time lane travels
   explicitly. Arrays are exactly the chunk length and owned by the
   consumer once pushed. *)
type msg = {
  s_instr : int array;
  s_group : int array;
  s_obj : int array;
  s_offset : int array;
  s_store : int array;  (* 0/1 *)
  s_time : int array;
}

(* [b_base] is the configured stage capacity, [b_target] the current flush
   threshold — adapted from ring occupancy after each flush exactly like
   [Par_scc] (see the comment there): double toward [growth_limit] x base
   while the ring runs at least half full, halve back once it drains.
   Chunking never reorders a shard's tuples, so results are unaffected. *)
type stage = {
  b_instr : int array;
  b_group : int array;
  b_obj : int array;
  b_offset : int array;
  b_store : int array;
  b_time : int array;
  mutable b_len : int;
  b_base : int;
  mutable b_target : int;
}

let growth_limit = 8

type pool = {
  shards : Leap.shard array;
      (* worker [i] re-reads [shards.(i)] for every message, so a swap
         done while quiesced is published by the next ring operation *)
  workers : msg Worker.t array;  (* exactly one per shard *)
  stages : stage array;
  mutable live : bool;
}

(* The message's lanes go straight into the shard's lane entry point —
   no per-tuple re-boxing on the consumer side. *)
let consume sh (m : msg) =
  Leap.shard_collect_lanes sh ~instr:m.s_instr ~group:m.s_group ~obj:m.s_obj
    ~offset:m.s_offset ~store:m.s_store ~time:m.s_time
    ~len:(Array.length m.s_instr)

let pool ?ring_capacity ?stage_capacity ~name shards =
  let n = Array.length shards in
  if n = 0 then invalid_arg "Par_leap.pool: no shards";
  let stage_capacity =
    match stage_capacity with Some c -> c | None -> Ormp_trace.Batch.default_capacity
  in
  if stage_capacity < 1 then invalid_arg "Par_leap.pool: stage capacity must be positive";
  {
    shards;
    workers =
      Array.init n (fun i ->
          Worker.spawn ?capacity:ring_capacity
            ~name:(Printf.sprintf "%s.%d" name i)
            ~f:(fun m -> consume shards.(i) m)
            ());
    stages =
      Array.init n (fun _ ->
          let cap = stage_capacity * growth_limit in
          {
            b_instr = Array.make cap 0;
            b_group = Array.make cap 0;
            b_obj = Array.make cap 0;
            b_offset = Array.make cap 0;
            b_store = Array.make cap 0;
            b_time = Array.make cap 0;
            b_len = 0;
            b_base = stage_capacity;
            b_target = stage_capacity;
          });
    live = true;
  }

let nshards p = Array.length p.shards

let flush_shard p i =
  let st = p.stages.(i) in
  if st.b_len > 0 then begin
    let n = st.b_len in
    Worker.push p.workers.(i)
      {
        s_instr = Array.sub st.b_instr 0 n;
        s_group = Array.sub st.b_group 0 n;
        s_obj = Array.sub st.b_obj 0 n;
        s_offset = Array.sub st.b_offset 0 n;
        s_store = Array.sub st.b_store 0 n;
        s_time = Array.sub st.b_time 0 n;
      };
    st.b_len <- 0;
    let occ = Worker.occupancy p.workers.(i) in
    if occ >= 0.5 then st.b_target <- min (Array.length st.b_instr) (st.b_target * 2)
    else if occ <= 0.125 then st.b_target <- max st.b_base (st.b_target / 2)
  end

let pool_stage p ~instr ~group ~obj ~offset ~store ~time =
  let i = Leap.shard_index ~nshards:(Array.length p.shards) instr in
  let st = p.stages.(i) in
  if st.b_len >= st.b_target then flush_shard p i;
  let j = st.b_len in
  st.b_instr.(j) <- instr;
  st.b_group.(j) <- group;
  st.b_obj.(j) <- obj;
  st.b_offset.(j) <- offset;
  st.b_store.(j) <- store;
  st.b_time.(j) <- time;
  st.b_len <- j + 1

(* Stage a whole SoA tuple chunk. The shard split makes a wholesale lane
   copy impossible, but each tuple moves as six scalar ints — no per-tuple
   boxing. Times are stamped [tp_time0 + i], matching the CDC's clock. *)
let pool_stage_tuples p (tp : Cdc.tuples) =
  for i = 0 to tp.tp_len - 1 do
    pool_stage p
      ~instr:(Array.unsafe_get tp.tp_instr i)
      ~group:(Array.unsafe_get tp.tp_group i)
      ~obj:(Array.unsafe_get tp.tp_obj i)
      ~offset:(Array.unsafe_get tp.tp_offset i)
      ~store:(Array.unsafe_get tp.tp_store i)
      ~time:(tp.tp_time0 + i)
  done

let pool_drain p =
  Array.iteri (fun i _ -> flush_shard p i) p.stages;
  Array.iter Worker.drain p.workers

let pool_shards p = p.shards
let pool_set_shard p i sh = p.shards.(i) <- sh

let pool_pending p = Array.fold_left (fun acc w -> acc + Worker.pending w) 0 p.workers

let pool_shutdown p =
  if p.live then begin
    p.live <- false;
    (try Array.iteri (fun i _ -> flush_shard p i) p.stages with _ -> ());
    let failure = ref None in
    Array.iter
      (fun w ->
        try Worker.stop w
        with e -> if !failure = None then failure := Some (e, Printexc.get_raw_backtrace ()))
      p.workers;
    match !failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

(* --- parallel LEAP profiler ------------------------------------------- *)

type t = { cdc : Cdc.t; p : pool }

let stage_tuple p (tu : Ormp_core.Tuple.t) =
  pool_stage p ~instr:tu.instr ~group:tu.group ~obj:tu.obj ~offset:tu.offset
    ~store:(if tu.is_store then 1 else 0)
    ~time:tu.time

let create ?grouping ?budget ?ring_capacity ~jobs ~site_name () =
  let shards = Leap.shards ?budget ~nshards:(max 1 (jobs - 1)) () in
  let p = pool ?ring_capacity ~name:"leap" shards in
  { cdc = Cdc.create ?grouping ~site_name ~on_tuple:(stage_tuple p) (); p }

let batch t = Cdc.batch_tuples t.cdc ~on_tuples:(pool_stage_tuples t.p) ()

let sink t = Cdc.sink t.cdc

let shutdown t = pool_shutdown t.p

let finalize t ~elapsed =
  pool_shutdown t.p;
  Ormp_core.Omc.publish_gauges (Cdc.omc t.cdc);
  Leap.shards_finish t.p.shards ~collected:(Cdc.collected t.cdc) ~wild:(Cdc.wild t.cdc)
    ~elapsed

let profile ?config ?grouping ?budget ?ring_capacity ~jobs program =
  if jobs <= 1 then Leap.profile ?config ?grouping ?budget program
  else begin
    let t = create ?grouping ?budget ?ring_capacity ~jobs ~site_name:(Printf.sprintf "site%d") () in
    Fun.protect
      ~finally:(fun () -> try shutdown t with _ -> ())
      (fun () ->
        let result = Ormp_vm.Runner.run_batched ?config program (batch t) in
        finalize t ~elapsed:result.Ormp_vm.Runner.elapsed)
  end
