module C = Ormp_lmad.Compressor
module Vec = Ormp_util.Vec

type key = { instr : int; group : int }

type span = { mutable t_first : int; mutable t_last : int }

type stream = { comp : C.t; spans : span Vec.t; off : C.t; mutable dspan : span option }

type profile = {
  streams : (key * stream) list;
  store_instrs : (int, bool) Hashtbl.t;
  collected : int;
  wild : int;
  elapsed : float;
}

(* The compressor can close-and-reopen descriptors internally (carrying a
   partial iteration over), so placement indices may skip ahead of the span
   table; pad with spans anchored at the current time — the carried points
   are always recent. *)
let span_at stream idx ~time =
  while Vec.length stream.spans <= idx do
    Vec.push stream.spans { t_first = time; t_last = time }
  done;
  Vec.get stream.spans idx

let record stream ~time point =
  (match C.add stream.comp point with
  | C.Extended idx -> (span_at stream idx ~time).t_last <- time
  | C.Opened idx -> ignore (span_at stream idx ~time)
  | C.Discarded -> (
    match stream.dspan with
    | Some sp -> sp.t_last <- time
    | None -> stream.dspan <- Some { t_first = time; t_last = time }));
  ignore (C.add stream.off [| point.(1) |])

let make_cdc ?grouping ?budget ~site_name () =
  let streams : (key, stream) Hashtbl.t = Hashtbl.create 256 in
  let order : key Vec.t = Vec.create () in
  let store_instrs : (int, bool) Hashtbl.t = Hashtbl.create 64 in
  (* SCC: vertical decomposition by instruction then group; each sub-stream
     is compressed online as (object, offset) points with per-descriptor
     time spans. *)
  let on_tuple (tu : Ormp_core.Tuple.t) =
    let key = { instr = tu.instr; group = tu.group } in
    let s =
      match Hashtbl.find_opt streams key with
      | Some s -> s
      | None ->
        let s =
          {
            comp = C.create ?budget ~dims:2 ();
            spans = Vec.create ();
            off = C.create ?budget ~dims:1 ();
            dspan = None;
          }
        in
        Hashtbl.replace streams key s;
        Vec.push order key;
        s
    in
    Hashtbl.replace store_instrs tu.instr tu.is_store;
    record s ~time:tu.time [| tu.obj; tu.offset |]
  in
  let cdc = Ormp_core.Cdc.create ?grouping ~site_name ~on_tuple () in
  let finalize ~elapsed =
    let ordered =
      List.rev (Vec.fold_left (fun acc k -> (k, Hashtbl.find streams k) :: acc) [] order)
    in
    {
      streams = ordered;
      store_instrs;
      collected = Ormp_core.Cdc.collected cdc;
      wild = Ormp_core.Cdc.wild cdc;
      elapsed;
    }
  in
  (cdc, finalize)

let sink ?grouping ?budget ~site_name () =
  let cdc, finalize = make_cdc ?grouping ?budget ~site_name () in
  (Ormp_core.Cdc.sink cdc, finalize)

let sink_batched ?grouping ?budget ~site_name () =
  let cdc, finalize = make_cdc ?grouping ?budget ~site_name () in
  (Ormp_core.Cdc.batch cdc, finalize)

let profile ?config ?grouping ?budget program =
  let b, finalize = sink_batched ?grouping ?budget ~site_name:(Printf.sprintf "site%d") () in
  let result = Ormp_vm.Runner.run_batched ?config program b in
  finalize ~elapsed:result.Ormp_vm.Runner.elapsed

let instrs p = List.sort_uniq compare (List.map (fun (k, _) -> k.instr) p.streams)

let is_store p instr = Option.value ~default:false (Hashtbl.find_opt p.store_instrs instr)

let loads p = List.filter (fun i -> not (is_store p i)) (instrs p)
let stores p = List.filter (is_store p) (instrs p)

let streams_of p instr = List.filter (fun (k, _) -> k.instr = instr) p.streams

let groups_of p instr = List.map (fun (k, _) -> k.group) (streams_of p instr)

let instr_total p instr =
  List.fold_left (fun acc (_, s) -> acc + C.total s.comp) 0 (streams_of p instr)

let byte_size p =
  List.fold_left
    (fun acc (k, s) ->
      let span_bytes =
        Vec.fold_left
          (fun b sp -> b + Ormp_util.Bytesize.of_ints [ sp.t_first; sp.t_last ])
          0 s.spans
      in
      acc + Ormp_util.Bytesize.of_ints [ k.instr; k.group ] + C.byte_size s.comp
      + C.byte_size s.off + span_bytes)
    0 p.streams

let compression_ratio p =
  let trace = p.collected * Ormp_util.Bytesize.fixed_record in
  let prof = byte_size p in
  if prof = 0 then 0.0 else float_of_int trace /. float_of_int prof

let accesses_captured p =
  (* Measured on the offset sub-streams, matching the paper's "fraction of
     all memory accesses ... captured by LMADs at the level of offsets
     inside objects (not including the timing information)". *)
  let cap, tot =
    List.fold_left
      (fun (c, t) (_, s) -> (c + C.captured s.off, t + C.total s.off))
      (0, 0) p.streams
  in
  if tot = 0 then 0.0 else float_of_int cap /. float_of_int tot

(* The effective descriptors of a stream: every captured LMAD with its
   time span, plus — when the stream overflowed — one pseudo-descriptor
   built from the min/max/granularity summary (the "overall information"
   §4.1 says the compressor keeps for what it discards): a box lattice
   stepping by the granularity in each dimension. The count is the number
   of iterations the descriptor stands for, which for the summary box is
   the discarded count, not the (usually much larger) box size. *)
let descriptors (s : stream) =
  let module L = Ormp_lmad.Lmad in
  let lmads = Array.of_list (C.lmads s.comp) in
  (* A descriptor freshly re-opened by the compressor's carry-over may not
     have a span entry yet; anchor it at the latest time the stream saw. *)
  let span_of i =
    if i < Vec.length s.spans then Vec.get s.spans i
    else
      let t =
        if Vec.length s.spans > 0 then (Vec.get s.spans (Vec.length s.spans - 1)).t_last else 0
      in
      { t_first = t; t_last = t }
  in
  let base =
    List.init (Array.length lmads) (fun i -> (lmads.(i), span_of i, L.size lmads.(i)))
  in
  match (C.summary s.comp, s.dspan) with
  | Some sum, Some sp ->
    let dims = Array.length sum.C.min_v in
    let levels =
      List.concat
        (List.init dims (fun d ->
             let extent = sum.C.max_v.(d) - sum.C.min_v.(d) in
             if extent = 0 then []
             else
               let g = sum.C.granularity.(d) in
               (* All discarded points are congruent modulo the per-dim
                  granularity, so it divides the extent; gran 0 with a
                  positive extent cannot happen. *)
               let stride = Array.init dims (fun i -> if i = d then g else 0) in
               [ { L.stride; count = (extent / g) + 1 } ]))
    in
    let pseudo = L.of_levels ~start:sum.C.min_v ~levels in
    base @ [ (pseudo, { t_first = sp.t_first; t_last = sp.t_last }, sum.C.discarded) ]
  | _ -> base

let instructions_captured p =
  let is = instrs p in
  if is = [] then 0.0
  else
    let full =
      List.filter
        (fun i -> List.for_all (fun (_, s) -> C.fully_captured s.off) (streams_of p i))
        is
    in
    float_of_int (List.length full) /. float_of_int (List.length is)
