module C = Ormp_lmad.Compressor
module Vec = Ormp_util.Vec
module Tm = Ormp_telemetry.Telemetry

(* Instrumented only on the rare arms: a stream opening or dropping, an
   LMAD descriptor opening or discarding a point. The Extended arm — the
   per-access common case — stays untouched. *)
let m_streams_opened = Tm.Metrics.counter "leap.streams_opened"
let m_streams_dropped = Tm.Metrics.counter "leap.streams_dropped"
let m_dropped_accesses = Tm.Metrics.counter "leap.dropped_accesses"
let m_lmad_opened = Tm.Metrics.counter "leap.lmad.opened"
let m_lmad_discarded = Tm.Metrics.counter "leap.lmad.discarded"

type key = { instr : int; group : int }

type span = { mutable t_first : int; mutable t_last : int }

type stream = { comp : C.t; spans : span Vec.t; off : C.t; mutable dspan : span option }

type profile = {
  streams : (key * stream) list;
  store_instrs : (int, bool) Hashtbl.t;
  collected : int;
  wild : int;
  dropped_streams : int;
  dropped_accesses : int;
  elapsed : float;
}

(* The compressor can close-and-reopen descriptors internally (carrying a
   partial iteration over), so placement indices may skip ahead of the span
   table; pad with spans anchored at the current time — the carried points
   are always recent. *)
let span_at stream idx ~time =
  while Vec.length stream.spans <= idx do
    Vec.push stream.spans { t_first = time; t_last = time }
  done;
  Vec.get stream.spans idx

let record stream ~time point =
  (match C.add stream.comp point with
  | C.Extended idx -> (span_at stream idx ~time).t_last <- time
  | C.Opened idx ->
    if Tm.on () then Tm.Metrics.incr m_lmad_opened;
    ignore (span_at stream idx ~time)
  | C.Discarded -> (
    if Tm.on () then Tm.Metrics.incr m_lmad_discarded;
    match stream.dspan with
    | Some sp -> sp.t_last <- time
    | None -> stream.dspan <- Some { t_first = time; t_last = time }));
  ignore (C.add stream.off [| point.(1) |])

type live = {
  lv_streams : (key * stream) list;
  lv_stores : (int * bool) list;
  lv_dropped : key list;
  lv_dropped_accesses : int;
}

type collector = {
  c_streams : (key, stream) Hashtbl.t;
  c_order : key Vec.t;
  c_store_instrs : (int, bool) Hashtbl.t;
  c_budget : int option;
  c_max_streams : int;
  c_dropped : (key, unit) Hashtbl.t;
  c_dropped_order : key Vec.t;
  mutable c_dropped_accesses : int;
}

let collector ?budget ?(max_streams = 0) ?restore () =
  let c =
    {
      c_streams = Hashtbl.create 256;
      c_order = Vec.create ();
      c_store_instrs = Hashtbl.create 64;
      c_budget = budget;
      c_max_streams = max_streams;
      c_dropped = Hashtbl.create 16;
      c_dropped_order = Vec.create ();
      c_dropped_accesses = 0;
    }
  in
  (match restore with
  | None -> ()
  | Some lv ->
    List.iter
      (fun (k, s) ->
        if Hashtbl.mem c.c_streams k then invalid_arg "Leap.collector: duplicate stream key";
        Hashtbl.replace c.c_streams k s;
        Vec.push c.c_order k)
      lv.lv_streams;
    List.iter (fun (i, st) -> Hashtbl.replace c.c_store_instrs i st) lv.lv_stores;
    List.iter
      (fun k ->
        if not (Hashtbl.mem c.c_dropped k) then begin
          Hashtbl.replace c.c_dropped k ();
          Vec.push c.c_dropped_order k
        end)
      lv.lv_dropped;
    c.c_dropped_accesses <- lv.lv_dropped_accesses);
  c

(* SCC: vertical decomposition by instruction then group; each sub-stream
   is compressed online as (object, offset) points with per-descriptor
   time spans. When [max_streams] caps the table, accesses of unseen keys
   past the cap are counted but not compressed (graceful degradation under
   a memory budget); established streams keep collecting. *)
let collect c (tu : Ormp_core.Tuple.t) =
  Hashtbl.replace c.c_store_instrs tu.instr tu.is_store;
  let key = { instr = tu.instr; group = tu.group } in
  match Hashtbl.find_opt c.c_streams key with
  | Some s -> record s ~time:tu.time [| tu.obj; tu.offset |]
  | None ->
    if c.c_max_streams > 0 && Hashtbl.length c.c_streams >= c.c_max_streams then begin
      if not (Hashtbl.mem c.c_dropped key) then begin
        Hashtbl.replace c.c_dropped key ();
        Vec.push c.c_dropped_order key;
        if Tm.on () then Tm.Metrics.incr m_streams_dropped
      end;
      c.c_dropped_accesses <- c.c_dropped_accesses + 1;
      if Tm.on () then Tm.Metrics.incr m_dropped_accesses
    end
    else begin
      let s =
        {
          comp = C.create ?budget:c.c_budget ~dims:2 ();
          spans = Vec.create ();
          off = C.create ?budget:c.c_budget ~dims:1 ();
          dspan = None;
        }
      in
      Hashtbl.replace c.c_streams key s;
      Vec.push c.c_order key;
      if Tm.on () then Tm.Metrics.incr m_streams_opened;
      record s ~time:tu.time [| tu.obj; tu.offset |]
    end

let stream_count c = Hashtbl.length c.c_streams

let live c =
  {
    lv_streams =
      List.rev (Vec.fold_left (fun acc k -> (k, Hashtbl.find c.c_streams k) :: acc) [] c.c_order);
    lv_stores = List.sort compare (Hashtbl.fold (fun i st acc -> (i, st) :: acc) c.c_store_instrs []);
    lv_dropped = List.rev (Vec.fold_left (fun acc k -> k :: acc) [] c.c_dropped_order);
    lv_dropped_accesses = c.c_dropped_accesses;
  }

let finish c ~collected ~wild ~elapsed =
  if Tm.on () then begin
    let set name v = Tm.Metrics.set (Tm.Metrics.gauge name) (float_of_int v) in
    set "leap.streams" (Hashtbl.length c.c_streams);
    set "leap.dropped_streams" (Hashtbl.length c.c_dropped);
    set "leap.dropped_accesses.total" c.c_dropped_accesses
  end;
  {
    streams =
      List.rev (Vec.fold_left (fun acc k -> (k, Hashtbl.find c.c_streams k) :: acc) [] c.c_order);
    store_instrs = c.c_store_instrs;
    collected;
    wild;
    dropped_streams = Hashtbl.length c.c_dropped;
    dropped_accesses = c.c_dropped_accesses;
    elapsed;
  }

(* --- sharded collection (pipeline-parallel SCC) ----------------------- *)

(* The vertical decomposition keys streams by (instruction, group), so
   sharding the tuple stream by instruction keeps every (instr, group)
   sub-stream wholly on one shard, in time order — each shard is just a
   smaller serial collector. What sharding loses is the *global*
   first-appearance order across shards (the [streams] order of the
   profile and the admission order a [max_streams] cap depends on), so
   each shard records the time stamp of every key's first admitted tuple
   and the merge re-sorts on it; stamps are globally unique and
   increasing, which makes the merged order exactly the serial order.
   A [max_streams] cap is the one thing that cannot be sharded (admission
   compares against a global count), so capped collectors must run on a
   single shard — enforced in [shard_make]. *)

type shard = {
  sh_coll : collector;
  sh_first : (key, int) Hashtbl.t;
      (* key -> time of its first admitted tuple; for restored shards, the
         key's index in the snapshot's stream order (indices are smaller
         than any live time stamp, so mixed comparisons stay correct) *)
}

let shard_make ?budget ?(max_streams = 0) ~nshards ~restore () =
  if nshards < 1 then invalid_arg "Leap.shards: need at least one shard";
  if max_streams > 0 && nshards > 1 then
    invalid_arg "Leap.shards: a max-streams cap requires a single shard";
  match restore with
  | None ->
    Array.init nshards (fun _ ->
        { sh_coll = collector ?budget ~max_streams (); sh_first = Hashtbl.create 64 })
  | Some lv ->
    (* Split the saved state by the shard key, preserving per-shard order;
       synthetic first-seen stamps (global indices) preserve the global
       order for later merges. Dropped-key state only exists under a cap,
       i.e. with one shard, where the whole of it lands. *)
    let parts = Array.init nshards (fun _ -> ref []) in
    List.iteri
      (fun i ((k : key), s) -> let r = parts.(k.instr mod nshards) in r := (i, k, s) :: !r)
      lv.lv_streams;
    Array.init nshards (fun w ->
        let mine = List.rev !(parts.(w)) in
        let sub =
          {
            lv_streams = List.map (fun (_, k, s) -> (k, s)) mine;
            lv_stores =
              List.filter (fun (i, _) -> i mod nshards = w) lv.lv_stores;
            lv_dropped = (if w = 0 then lv.lv_dropped else []);
            lv_dropped_accesses = (if w = 0 then lv.lv_dropped_accesses else 0);
          }
        in
        let sh_first = Hashtbl.create 64 in
        List.iter (fun (i, k, _) -> Hashtbl.replace sh_first k i) mine;
        { sh_coll = collector ?budget ~max_streams ~restore:sub (); sh_first })

let shards ?budget ?max_streams ?restore ~nshards () =
  shard_make ?budget ?max_streams ~nshards ~restore ()

let shard_index ~nshards instr = instr mod nshards

let shard_collect sh (tu : Ormp_core.Tuple.t) =
  let key = { instr = tu.instr; group = tu.group } in
  let known = Hashtbl.mem sh.sh_coll.c_streams key in
  collect sh.sh_coll tu;
  if (not known) && Hashtbl.mem sh.sh_coll.c_streams key then
    Hashtbl.replace sh.sh_first key tu.time

let shards_stream_count shs =
  Array.fold_left (fun acc sh -> acc + stream_count sh.sh_coll) 0 shs

(* Every shard's streams tagged with their first-seen stamp, merged into
   global first-appearance order. *)
let merge_streams shs =
  Array.to_list shs
  |> List.concat_map (fun sh ->
         List.rev
           (Vec.fold_left
              (fun acc k ->
                (Hashtbl.find sh.sh_first k, k, Hashtbl.find sh.sh_coll.c_streams k) :: acc)
              [] sh.sh_coll.c_order))
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  |> List.map (fun (_, k, s) -> (k, s))

(* Instruction key spaces are disjoint across shards, so a plain union. *)
let merge_stores shs =
  let h = Hashtbl.create 64 in
  Array.iter
    (fun sh -> Hashtbl.iter (fun i st -> Hashtbl.replace h i st) sh.sh_coll.c_store_instrs)
    shs;
  h

let shards_live shs =
  {
    lv_streams = merge_streams shs;
    lv_stores =
      List.sort compare (Hashtbl.fold (fun i st acc -> (i, st) :: acc) (merge_stores shs) []);
    lv_dropped =
      Array.to_list shs
      |> List.concat_map (fun sh ->
             List.rev (Vec.fold_left (fun acc k -> k :: acc) [] sh.sh_coll.c_dropped_order));
    lv_dropped_accesses =
      Array.fold_left (fun acc sh -> acc + sh.sh_coll.c_dropped_accesses) 0 shs;
  }

let shards_finish shs ~collected ~wild ~elapsed =
  let dropped_streams =
    Array.fold_left (fun acc sh -> acc + Hashtbl.length sh.sh_coll.c_dropped) 0 shs
  in
  let dropped_accesses =
    Array.fold_left (fun acc sh -> acc + sh.sh_coll.c_dropped_accesses) 0 shs
  in
  if Tm.on () then begin
    let set name v = Tm.Metrics.set (Tm.Metrics.gauge name) (float_of_int v) in
    set "leap.streams" (shards_stream_count shs);
    set "leap.dropped_streams" dropped_streams;
    set "leap.dropped_accesses.total" dropped_accesses
  end;
  {
    streams = merge_streams shs;
    store_instrs = merge_stores shs;
    collected;
    wild;
    dropped_streams;
    dropped_accesses;
    elapsed;
  }

let make_cdc ?grouping ?budget ~site_name () =
  let c = collector ?budget () in
  let cdc = Ormp_core.Cdc.create ?grouping ~site_name ~on_tuple:(collect c) () in
  let finalize ~elapsed =
    Ormp_core.Omc.publish_gauges (Ormp_core.Cdc.omc cdc);
    finish c ~collected:(Ormp_core.Cdc.collected cdc) ~wild:(Ormp_core.Cdc.wild cdc) ~elapsed
  in
  (cdc, finalize)

let sink ?grouping ?budget ~site_name () =
  let cdc, finalize = make_cdc ?grouping ?budget ~site_name () in
  (Ormp_core.Cdc.sink cdc, finalize)

let sink_batched ?grouping ?budget ~site_name () =
  let cdc, finalize = make_cdc ?grouping ?budget ~site_name () in
  (Ormp_core.Cdc.batch cdc, finalize)

let profile ?config ?grouping ?budget program =
  let b, finalize = sink_batched ?grouping ?budget ~site_name:(Printf.sprintf "site%d") () in
  let result = Ormp_vm.Runner.run_batched ?config program b in
  finalize ~elapsed:result.Ormp_vm.Runner.elapsed

let instrs p = List.sort_uniq compare (List.map (fun (k, _) -> k.instr) p.streams)

let is_store p instr = Option.value ~default:false (Hashtbl.find_opt p.store_instrs instr)

let loads p = List.filter (fun i -> not (is_store p i)) (instrs p)
let stores p = List.filter (is_store p) (instrs p)

let streams_of p instr = List.filter (fun (k, _) -> k.instr = instr) p.streams

let groups_of p instr = List.map (fun (k, _) -> k.group) (streams_of p instr)

let instr_total p instr =
  List.fold_left (fun acc (_, s) -> acc + C.total s.comp) 0 (streams_of p instr)

let byte_size p =
  List.fold_left
    (fun acc (k, s) ->
      let span_bytes =
        Vec.fold_left
          (fun b sp -> b + Ormp_util.Bytesize.of_ints [ sp.t_first; sp.t_last ])
          0 s.spans
      in
      acc + Ormp_util.Bytesize.of_ints [ k.instr; k.group ] + C.byte_size s.comp
      + C.byte_size s.off + span_bytes)
    0 p.streams

let compression_ratio p =
  let trace = p.collected * Ormp_util.Bytesize.fixed_record in
  let prof = byte_size p in
  if prof = 0 then 0.0 else float_of_int trace /. float_of_int prof

let accesses_captured p =
  (* Measured on the offset sub-streams, matching the paper's "fraction of
     all memory accesses ... captured by LMADs at the level of offsets
     inside objects (not including the timing information)". *)
  let cap, tot =
    List.fold_left
      (fun (c, t) (_, s) -> (c + C.captured s.off, t + C.total s.off))
      (0, 0) p.streams
  in
  if tot = 0 then 0.0 else float_of_int cap /. float_of_int tot

(* The effective descriptors of a stream: every captured LMAD with its
   time span, plus — when the stream overflowed — one pseudo-descriptor
   built from the min/max/granularity summary (the "overall information"
   §4.1 says the compressor keeps for what it discards): a box lattice
   stepping by the granularity in each dimension. The count is the number
   of iterations the descriptor stands for, which for the summary box is
   the discarded count, not the (usually much larger) box size. *)
let descriptors (s : stream) =
  let module L = Ormp_lmad.Lmad in
  let lmads = Array.of_list (C.lmads s.comp) in
  (* A descriptor freshly re-opened by the compressor's carry-over may not
     have a span entry yet; anchor it at the latest time the stream saw. *)
  let span_of i =
    if i < Vec.length s.spans then Vec.get s.spans i
    else
      let t =
        if Vec.length s.spans > 0 then (Vec.get s.spans (Vec.length s.spans - 1)).t_last else 0
      in
      { t_first = t; t_last = t }
  in
  let base =
    List.init (Array.length lmads) (fun i -> (lmads.(i), span_of i, L.size lmads.(i)))
  in
  match (C.summary s.comp, s.dspan) with
  | Some sum, Some sp ->
    let dims = Array.length sum.C.min_v in
    let levels =
      List.concat
        (List.init dims (fun d ->
             let extent = sum.C.max_v.(d) - sum.C.min_v.(d) in
             if extent = 0 then []
             else
               let g = sum.C.granularity.(d) in
               (* All discarded points are congruent modulo the per-dim
                  granularity, so it divides the extent; gran 0 with a
                  positive extent cannot happen. *)
               let stride = Array.init dims (fun i -> if i = d then g else 0) in
               [ { L.stride; count = (extent / g) + 1 } ]))
    in
    let pseudo = L.of_levels ~start:sum.C.min_v ~levels in
    base @ [ (pseudo, { t_first = sp.t_first; t_last = sp.t_last }, sum.C.discarded) ]
  | _ -> base

let instructions_captured p =
  let is = instrs p in
  if is = [] then 0.0
  else
    let full =
      List.filter
        (fun i -> List.for_all (fun (_, s) -> C.fully_captured s.off) (streams_of p i))
        is
    in
    float_of_int (List.length full) /. float_of_int (List.length is)
