module C = Ormp_lmad.Compressor
module Vec = Ormp_util.Vec
module Tm = Ormp_telemetry.Telemetry

(* Instrumented only on the rare arms: a stream opening or dropping, an
   LMAD descriptor opening or discarding a point. The Extended arm — the
   per-access common case — stays untouched. *)
let m_streams_opened = Tm.Metrics.counter "leap.streams_opened"
let m_streams_dropped = Tm.Metrics.counter "leap.streams_dropped"
let m_dropped_accesses = Tm.Metrics.counter "leap.dropped_accesses"
let m_lmad_opened = Tm.Metrics.counter "leap.lmad.opened"
let m_lmad_discarded = Tm.Metrics.counter "leap.lmad.discarded"

type key = { instr : int; group : int }

type span = { mutable t_first : int; mutable t_last : int }

type stream = { comp : C.t; spans : span Vec.t; off : C.t; mutable dspan : span option }

type profile = {
  streams : (key * stream) list;
  store_instrs : (int, bool) Hashtbl.t;
  collected : int;
  wild : int;
  dropped_streams : int;
  dropped_accesses : int;
  elapsed : float;
}

(* The compressor can close-and-reopen descriptors internally (carrying a
   partial iteration over), so placement indices may skip ahead of the span
   table; pad with spans anchored at the current time — the carried points
   are always recent. *)
let span_at stream idx ~time =
  while Vec.length stream.spans <= idx do
    Vec.push stream.spans { t_first = time; t_last = time }
  done;
  Vec.get stream.spans idx

(* Feed one (object, offset) point through both compressors using the
   packed-code entry points: the common arms (extend, over-budget discard)
   allocate nothing — the only steady-state allocation left in a stream is
   a span record per descriptor. *)
let record2 stream ~time ~obj ~offset =
  let code = C.add2_code stream.comp obj offset in
  let tag = C.code_tag code in
  (if tag = C.code_extended then (span_at stream (C.code_index code) ~time).t_last <- time
   else if tag = C.code_opened then begin
     if Tm.on () then Tm.Metrics.incr m_lmad_opened;
     ignore (span_at stream (C.code_index code) ~time)
   end
   else begin
     if Tm.on () then Tm.Metrics.incr m_lmad_discarded;
     match stream.dspan with
     | Some sp -> sp.t_last <- time
     | None -> stream.dspan <- Some { t_first = time; t_last = time }
   end);
  ignore (C.add1_code stream.off offset)

type live = {
  lv_streams : (key * stream) list;
  lv_stores : (int * bool) list;
  lv_dropped : key list;
  lv_dropped_accesses : int;
}

(* --- flat collector ---------------------------------------------------

   PR 10: the per-event tables are open-addressing int arenas
   ({!Key_table}, the PR 6 Sequitur style — no boxed keys, no polymorphic
   hashing, no per-event allocation):

   - [c_idx] maps (instr, group) -> stream slot. Admitted streams live in
     parallel slot lanes in admission order
     ([c_key_instr]/[c_key_group]/[c_strs]/[c_first]); slot order IS the
     first-appearance order the profile reports, and [c_first] keeps each
     key's first-admitted time stamp for the sharded merge.
   - [c_st] maps instr -> is_store (0/1); instruction ids are arbitrary
     ints (future trace-import frontends may feed raw IPs), so this stays
     a hash table rather than a direct-indexed lane.
   - Dropped keys (only under a [max_streams] cap) get the same table for
     membership (slot = first-refusal index) plus a key Vec holding that
     order — the rare path keeps its boxed order list. *)

type collector = {
  c_idx : Key_table.t;  (* (instr, group) -> slot *)
  mutable c_key_instr : int array;  (* slot lanes, admission order *)
  mutable c_key_group : int array;
  mutable c_strs : stream array;
  mutable c_first : int array;  (* slot -> first-admitted time stamp *)
  mutable c_n : int;
  c_dummy : stream;  (* filler for unused [c_strs] capacity *)
  c_st : Key_table.pairs;  (* instr -> is_store (0/1) *)
  c_budget : int option;
  c_max_streams : int;
  c_d : Key_table.t;  (* refused keys -> first-refusal index *)
  c_dropped_order : key Vec.t;
  mutable c_dropped_accesses : int;
}

let[@inline] find_slot c instr group = Key_table.find c.c_idx instr group

let grow_slots c =
  let cap = Array.length c.c_strs in
  let cap' = cap * 2 in
  let ki = Array.make cap' 0 in
  let kg = Array.make cap' 0 in
  let ss = Array.make cap' c.c_dummy in
  let fs = Array.make cap' 0 in
  Array.blit c.c_key_instr 0 ki 0 c.c_n;
  Array.blit c.c_key_group 0 kg 0 c.c_n;
  Array.blit c.c_strs 0 ss 0 c.c_n;
  Array.blit c.c_first 0 fs 0 c.c_n;
  c.c_key_instr <- ki;
  c.c_key_group <- kg;
  c.c_strs <- ss;
  c.c_first <- fs

(* Append a stream in the next admission slot, bypassing the cap (used by
   both live admission and checkpoint restore). *)
let push_stream c instr group stream ~first =
  if c.c_n = Array.length c.c_strs then grow_slots c;
  let s = c.c_n in
  c.c_key_instr.(s) <- instr;
  c.c_key_group.(s) <- group;
  c.c_strs.(s) <- stream;
  c.c_first.(s) <- first;
  c.c_n <- s + 1;
  Key_table.add c.c_idx instr group s;
  s

(* instr -> is_store, last write wins (exactly [Hashtbl.replace]). *)
let[@inline] set_store c instr is_store =
  Key_table.pairs_set c.c_st instr (if is_store then 1 else 0)

let stores_list c =
  let acc = ref [] in
  Key_table.pairs_iter (fun i f -> acc := (i, f = 1) :: !acc) c.c_st;
  List.sort compare !acc

(* First refusal of (instr, group): record it in the membership table and
   the order Vec. *)
let drop_key c instr group =
  Key_table.add c.c_d instr group (Vec.length c.c_dropped_order);
  Vec.push c.c_dropped_order { instr; group }

(* --- collection -------------------------------------------------------- *)

let fresh_stream c =
  {
    comp = C.create ?budget:c.c_budget ~dims:2 ();
    spans = Vec.create ();
    off = C.create ?budget:c.c_budget ~dims:1 ();
    dspan = None;
  }

let collector ?budget ?(max_streams = 0) ?restore () =
  let dummy =
    { comp = C.create ~dims:2 (); spans = Vec.create (); off = C.create ~dims:1 (); dspan = None }
  in
  let c =
    {
      c_idx = Key_table.create ();
      c_key_instr = Array.make 32 0;
      c_key_group = Array.make 32 0;
      c_strs = Array.make 32 dummy;
      c_first = Array.make 32 0;
      c_n = 0;
      c_dummy = dummy;
      c_st = Key_table.pairs_create ();
      c_budget = budget;
      c_max_streams = max_streams;
      c_d = Key_table.create ~capacity:16 ();
      c_dropped_order = Vec.create ();
      c_dropped_accesses = 0;
    }
  in
  (match restore with
  | None -> ()
  | Some lv ->
    (* Synthetic first-seen stamps (local indices) keep the saved order;
       [shard_make] overwrites them with the snapshot's global indices. *)
    List.iter
      (fun ((k : key), s) ->
        if find_slot c k.instr k.group >= 0 then
          invalid_arg "Leap.collector: duplicate stream key";
        ignore (push_stream c k.instr k.group s ~first:c.c_n))
      lv.lv_streams;
    List.iter (fun (i, st) -> set_store c i st) lv.lv_stores;
    List.iter
      (fun (k : key) ->
        if not (Key_table.mem c.c_d k.instr k.group) then drop_key c k.instr k.group)
      lv.lv_dropped;
    c.c_dropped_accesses <- lv.lv_dropped_accesses);
  c

(* SCC: vertical decomposition by instruction then group; each sub-stream
   is compressed online as (object, offset) points with per-descriptor
   time spans. When [max_streams] caps the table, accesses of unseen keys
   past the cap are counted but not compressed (graceful degradation under
   a memory budget); established streams keep collecting. *)
let[@inline] collect_one c ~instr ~group ~obj ~offset ~is_store ~time =
  set_store c instr is_store;
  let slot = find_slot c instr group in
  if slot >= 0 then record2 (Array.unsafe_get c.c_strs slot) ~time ~obj ~offset
  else if c.c_max_streams > 0 && c.c_n >= c.c_max_streams then begin
    if not (Key_table.mem c.c_d instr group) then begin
      drop_key c instr group;
      if Tm.on () then Tm.Metrics.incr m_streams_dropped
    end;
    c.c_dropped_accesses <- c.c_dropped_accesses + 1;
    if Tm.on () then Tm.Metrics.incr m_dropped_accesses
  end
  else begin
    let s = push_stream c instr group (fresh_stream c) ~first:time in
    if Tm.on () then Tm.Metrics.incr m_streams_opened;
    record2 (Array.unsafe_get c.c_strs s) ~time ~obj ~offset
  end

let collect c (tu : Ormp_core.Tuple.t) =
  collect_one c ~instr:tu.instr ~group:tu.group ~obj:tu.obj ~offset:tu.offset
    ~is_store:tu.is_store ~time:tu.time

(* SoA lane entry points: one call per chunk, no per-tuple boxing. Stamps
   are [time0 + i] (CDC chunks carry consecutive stamps). *)
let collect_lanes c ~instr ~group ~obj ~offset ~store ~time0 ~len =
  for i = 0 to len - 1 do
    collect_one c
      ~instr:(Array.unsafe_get instr i)
      ~group:(Array.unsafe_get group i)
      ~obj:(Array.unsafe_get obj i)
      ~offset:(Array.unsafe_get offset i)
      ~is_store:(Array.unsafe_get store i <> 0)
      ~time:(time0 + i)
  done

let collect_tuples c (tp : Ormp_core.Cdc.tuples) =
  collect_lanes c ~instr:tp.tp_instr ~group:tp.tp_group ~obj:tp.tp_obj ~offset:tp.tp_offset
    ~store:tp.tp_store ~time0:tp.tp_time0 ~len:tp.tp_len

let stream_count c = c.c_n

let ordered_streams c =
  List.init c.c_n (fun s ->
      ({ instr = c.c_key_instr.(s); group = c.c_key_group.(s) }, c.c_strs.(s)))

let live c =
  {
    lv_streams = ordered_streams c;
    lv_stores = stores_list c;
    lv_dropped = List.rev (Vec.fold_left (fun acc k -> k :: acc) [] c.c_dropped_order);
    lv_dropped_accesses = c.c_dropped_accesses;
  }

let finish c ~collected ~wild ~elapsed =
  if Tm.on () then begin
    let set name v = Tm.Metrics.set (Tm.Metrics.gauge name) (float_of_int v) in
    set "leap.streams" c.c_n;
    set "leap.dropped_streams" (Key_table.length c.c_d);
    set "leap.dropped_accesses.total" c.c_dropped_accesses
  end;
  let store_instrs = Hashtbl.create 64 in
  List.iter (fun (i, st) -> Hashtbl.replace store_instrs i st) (stores_list c);
  {
    streams = ordered_streams c;
    store_instrs;
    collected;
    wild;
    dropped_streams = Key_table.length c.c_d;
    dropped_accesses = c.c_dropped_accesses;
    elapsed;
  }

(* --- sharded collection (pipeline-parallel SCC) ----------------------- *)

(* The vertical decomposition keys streams by (instruction, group), so
   sharding the tuple stream by instruction keeps every (instr, group)
   sub-stream wholly on one shard, in time order — each shard is just a
   smaller serial collector. What sharding loses is the *global*
   first-appearance order across shards (the [streams] order of the
   profile and the admission order a [max_streams] cap depends on), so
   each shard's [c_first] lane records the time stamp of every key's
   first admitted tuple and the merge re-sorts on it; stamps are globally
   unique and increasing, which makes the merged order exactly the serial
   order. For restored shards the stamps are the key's index in the
   snapshot's stream order (indices are smaller than any live time stamp,
   so mixed comparisons stay correct). A [max_streams] cap is the one
   thing that cannot be sharded (admission compares against a global
   count), so capped collectors must run on a single shard — enforced in
   [shard_make]. *)

type shard = collector

let shard_make ?budget ?(max_streams = 0) ~nshards ~restore () =
  if nshards < 1 then invalid_arg "Leap.shards: need at least one shard";
  if max_streams > 0 && nshards > 1 then
    invalid_arg "Leap.shards: a max-streams cap requires a single shard";
  match restore with
  | None -> Array.init nshards (fun _ -> collector ?budget ~max_streams ())
  | Some lv ->
    (* Split the saved state by the shard key, preserving per-shard order;
       synthetic first-seen stamps (global indices) preserve the global
       order for later merges. Dropped-key state only exists under a cap,
       i.e. with one shard, where the whole of it lands. *)
    let parts = Array.init nshards (fun _ -> ref []) in
    List.iteri
      (fun i ((k : key), s) -> let r = parts.(k.instr mod nshards) in r := (i, k, s) :: !r)
      lv.lv_streams;
    Array.init nshards (fun w ->
        let mine = List.rev !(parts.(w)) in
        let sub =
          {
            lv_streams = List.map (fun (_, k, s) -> (k, s)) mine;
            lv_stores = List.filter (fun (i, _) -> i mod nshards = w) lv.lv_stores;
            lv_dropped = (if w = 0 then lv.lv_dropped else []);
            lv_dropped_accesses = (if w = 0 then lv.lv_dropped_accesses else 0);
          }
        in
        let c = collector ?budget ~max_streams ~restore:sub () in
        List.iter
          (fun (i, (k : key), _) -> c.c_first.(find_slot c k.instr k.group) <- i)
          mine;
        c)

let shards ?budget ?max_streams ?restore ~nshards () =
  shard_make ?budget ?max_streams ~nshards ~restore ()

let shard_index ~nshards instr = instr mod nshards

let shard_collect (sh : shard) tu = collect sh tu

let shard_collect_lanes (sh : shard) ~instr ~group ~obj ~offset ~store ~time ~len =
  for i = 0 to len - 1 do
    collect_one sh
      ~instr:(Array.unsafe_get instr i)
      ~group:(Array.unsafe_get group i)
      ~obj:(Array.unsafe_get obj i)
      ~offset:(Array.unsafe_get offset i)
      ~is_store:(Array.unsafe_get store i <> 0)
      ~time:(Array.unsafe_get time i)
  done

let shards_stream_count shs = Array.fold_left (fun acc sh -> acc + sh.c_n) 0 shs

(* Every shard's streams tagged with their first-seen stamp, merged into
   global first-appearance order. *)
let merge_streams shs =
  Array.to_list shs
  |> List.concat_map (fun sh ->
         List.init sh.c_n (fun s ->
             ( sh.c_first.(s),
               { instr = sh.c_key_instr.(s); group = sh.c_key_group.(s) },
               sh.c_strs.(s) )))
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  |> List.map (fun (_, k, s) -> (k, s))

(* Instruction key spaces are disjoint across shards, so a plain union. *)
let merge_stores shs =
  let h = Hashtbl.create 64 in
  Array.iter (fun sh -> List.iter (fun (i, st) -> Hashtbl.replace h i st) (stores_list sh)) shs;
  h

let shards_live shs =
  {
    lv_streams = merge_streams shs;
    lv_stores =
      List.sort compare (Hashtbl.fold (fun i st acc -> (i, st) :: acc) (merge_stores shs) []);
    lv_dropped =
      Array.to_list shs
      |> List.concat_map (fun sh ->
             List.rev (Vec.fold_left (fun acc k -> k :: acc) [] sh.c_dropped_order));
    lv_dropped_accesses = Array.fold_left (fun acc sh -> acc + sh.c_dropped_accesses) 0 shs;
  }

let shards_finish shs ~collected ~wild ~elapsed =
  let dropped_streams =
    Array.fold_left (fun acc sh -> acc + Key_table.length sh.c_d) 0 shs
  in
  let dropped_accesses =
    Array.fold_left (fun acc sh -> acc + sh.c_dropped_accesses) 0 shs
  in
  if Tm.on () then begin
    let set name v = Tm.Metrics.set (Tm.Metrics.gauge name) (float_of_int v) in
    set "leap.streams" (shards_stream_count shs);
    set "leap.dropped_streams" dropped_streams;
    set "leap.dropped_accesses.total" dropped_accesses
  end;
  {
    streams = merge_streams shs;
    store_instrs = merge_stores shs;
    collected;
    wild;
    dropped_streams;
    dropped_accesses;
    elapsed;
  }

let make_cdc ?grouping ?budget ~site_name () =
  let c = collector ?budget () in
  let cdc = Ormp_core.Cdc.create ?grouping ~site_name ~on_tuple:(collect c) () in
  let finalize ~elapsed =
    Ormp_core.Omc.publish_gauges (Ormp_core.Cdc.omc cdc);
    finish c ~collected:(Ormp_core.Cdc.collected cdc) ~wild:(Ormp_core.Cdc.wild cdc) ~elapsed
  in
  (cdc, c, finalize)

let sink ?grouping ?budget ~site_name () =
  let cdc, _, finalize = make_cdc ?grouping ?budget ~site_name () in
  (Ormp_core.Cdc.sink cdc, finalize)

(* The batched sink consumes SoA tuple chunks directly — one callback and
   zero tuple boxing per chunk, instead of one [Tuple.t] per access. *)
let sink_batched ?grouping ?budget ~site_name () =
  let c = collector ?budget () in
  let cdc = Ormp_core.Cdc.create ?grouping ~site_name ~on_tuple:(collect c) () in
  let batch = Ormp_core.Cdc.batch_tuples cdc ~on_tuples:(collect_tuples c) () in
  let finalize ~elapsed =
    Ormp_core.Omc.publish_gauges (Ormp_core.Cdc.omc cdc);
    finish c ~collected:(Ormp_core.Cdc.collected cdc) ~wild:(Ormp_core.Cdc.wild cdc) ~elapsed
  in
  (batch, finalize)

let profile ?config ?grouping ?budget program =
  let b, finalize = sink_batched ?grouping ?budget ~site_name:(Printf.sprintf "site%d") () in
  let result = Ormp_vm.Runner.run_batched ?config program b in
  finalize ~elapsed:result.Ormp_vm.Runner.elapsed

let instrs p = List.sort_uniq compare (List.map (fun (k, _) -> k.instr) p.streams)

let is_store p instr = Option.value ~default:false (Hashtbl.find_opt p.store_instrs instr)

let loads p = List.filter (fun i -> not (is_store p i)) (instrs p)
let stores p = List.filter (is_store p) (instrs p)

let streams_of p instr = List.filter (fun (k, _) -> k.instr = instr) p.streams

let groups_of p instr = List.map (fun (k, _) -> k.group) (streams_of p instr)

(* Sorted-lane lookup for the post-processors: freeze the stream list once
   and answer (instr, group) probes by binary search, with no per-probe key
   allocation (the old [List.assoc_opt { instr; group }] pattern allocated
   a key record per probe and scanned the whole list). *)
let stream_index p =
  let arr = Array.of_list p.streams in
  Array.sort
    (fun ((a : key), _) ((b : key), _) ->
      if a.instr <> b.instr then compare a.instr b.instr else compare a.group b.group)
    arr;
  fun ~instr ~group ->
    let lo = ref 0 in
    let hi = ref (Array.length arr) in
    let res = ref None in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let k, s = arr.(mid) in
      if k.instr < instr || (k.instr = instr && k.group < group) then lo := mid + 1
      else if k.instr = instr && k.group = group then begin
        res := Some s;
        lo := !hi
      end
      else hi := mid
    done;
    !res

let instr_total p instr =
  List.fold_left (fun acc (_, s) -> acc + C.total s.comp) 0 (streams_of p instr)

let byte_size p =
  List.fold_left
    (fun acc (k, s) ->
      let span_bytes =
        Vec.fold_left
          (fun b sp -> b + Ormp_util.Bytesize.of_ints [ sp.t_first; sp.t_last ])
          0 s.spans
      in
      acc + Ormp_util.Bytesize.of_ints [ k.instr; k.group ] + C.byte_size s.comp
      + C.byte_size s.off + span_bytes)
    0 p.streams

let compression_ratio p =
  let trace = p.collected * Ormp_util.Bytesize.fixed_record in
  let prof = byte_size p in
  if prof = 0 then 0.0 else float_of_int trace /. float_of_int prof

let accesses_captured p =
  (* Measured on the offset sub-streams, matching the paper's "fraction of
     all memory accesses ... captured by LMADs at the level of offsets
     inside objects (not including the timing information)". *)
  let cap, tot =
    List.fold_left
      (fun (c, t) (_, s) -> (c + C.captured s.off, t + C.total s.off))
      (0, 0) p.streams
  in
  if tot = 0 then 0.0 else float_of_int cap /. float_of_int tot

(* The effective descriptors of a stream: every captured LMAD with its
   time span, plus — when the stream overflowed — one pseudo-descriptor
   built from the min/max/granularity summary (the "overall information"
   §4.1 says the compressor keeps for what it discards): a box lattice
   stepping by the granularity in each dimension. The count is the number
   of iterations the descriptor stands for, which for the summary box is
   the discarded count, not the (usually much larger) box size. *)
let descriptors (s : stream) =
  let module L = Ormp_lmad.Lmad in
  let lmads = Array.of_list (C.lmads s.comp) in
  (* A descriptor freshly re-opened by the compressor's carry-over may not
     have a span entry yet; anchor it at the latest time the stream saw. *)
  let span_of i =
    if i < Vec.length s.spans then Vec.get s.spans i
    else
      let t =
        if Vec.length s.spans > 0 then (Vec.get s.spans (Vec.length s.spans - 1)).t_last else 0
      in
      { t_first = t; t_last = t }
  in
  let base =
    List.init (Array.length lmads) (fun i -> (lmads.(i), span_of i, L.size lmads.(i)))
  in
  match (C.summary s.comp, s.dspan) with
  | Some sum, Some sp ->
    let dims = Array.length sum.C.min_v in
    let levels =
      List.concat
        (List.init dims (fun d ->
             let extent = sum.C.max_v.(d) - sum.C.min_v.(d) in
             if extent = 0 then []
             else
               let g = sum.C.granularity.(d) in
               (* All discarded points are congruent modulo the per-dim
                  granularity, so it divides the extent; gran 0 with a
                  positive extent cannot happen. *)
               let stride = Array.init dims (fun i -> if i = d then g else 0) in
               [ { L.stride; count = (extent / g) + 1 } ]))
    in
    let pseudo = L.of_levels ~start:sum.C.min_v ~levels in
    base @ [ (pseudo, { t_first = sp.t_first; t_last = sp.t_last }, sum.C.discarded) ]
  | _ -> base

let instructions_captured p =
  let is = instrs p in
  if is = [] then 0.0
  else
    let full =
      List.filter
        (fun i -> List.for_all (fun (_, s) -> C.fully_captured s.off) (streams_of p i))
        is
    in
    float_of_int (List.length full) /. float_of_int (List.length is)
