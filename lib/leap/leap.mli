(** LEAP — the loss-enhanced access profiler (§4).

    LEAP translates accesses object-relatively (like WHOMP), then the SCC
    decomposes the tuple stream {e vertically} by instruction id and then
    by group, producing one (object, offset, time) stream per
    (instruction, group) pair. Each stream is compressed online with at
    most {!Ormp_lmad.Compressor.default_budget} LMADs; what does not fit is
    discarded into a min/max/granularity summary. The result is a compact,
    instruction-indexed lossy profile from which the {!Mdf} and {!Strides}
    post-processors extract dependence frequencies and stride patterns. *)

type key = { instr : int; group : int }

type span = { mutable t_first : int; mutable t_last : int }
(** Time-stamps of the first and last access a descriptor covers.

    The exact time dimension is too irregular to keep inside the LMADs
    (any data-dependent control flow between two executions of an
    instruction perturbs it, which would burn the whole budget on time
    breaks), so — like the paper, which measures capture "at the level of
    offsets inside objects (not including the timing information)" and
    whose omega-test example solves location equality only — LEAP keeps
    location-exact descriptors and time at descriptor granularity. *)

type stream = {
  comp : Ormp_lmad.Compressor.t;  (** 2-dim (object, offset) points *)
  spans : span Ormp_util.Vec.t;  (** one per [comp] LMAD, by creation index *)
  off : Ormp_lmad.Compressor.t;
      (** the horizontally-decomposed offset sub-stream (1-dim), §2.2/§4.1:
          "the (object, offset, time) sub-streams are also decomposed
          horizontally". Offsets stay regular even when object serials are
          visited in scattered order, so this is the stream the paper's
          sample quality ("captured ... at the level of offsets inside
          objects") and stride post-processing read. *)
  mutable dspan : span option;
      (** time span of the discarded (summarized) accesses, if any; lets
          the post-processors use the min/max/granularity summary as a
          coarse descriptor *)
}

type profile = {
  streams : (key * stream) list;
      (** one per (instruction, group), in first-appearance order *)
  store_instrs : (int, bool) Hashtbl.t;
      (** instr id -> is_store, for every instruction that appears *)
  collected : int;
  wild : int;
  dropped_streams : int;
      (** distinct (instr, group) keys refused because a stream cap was in
          force (0 unless the session layer caps stream growth) *)
  dropped_accesses : int;
      (** accesses of refused keys; [collected] still counts them *)
  elapsed : float;
}

val profile :
  ?config:Ormp_vm.Config.t ->
  ?grouping:Ormp_core.Omc.grouping ->
  ?budget:int ->
  Ormp_vm.Program.t ->
  profile

val sink :
  ?grouping:Ormp_core.Omc.grouping ->
  ?budget:int ->
  site_name:(int -> string) ->
  unit ->
  Ormp_trace.Sink.t * (elapsed:float -> profile)
(** Streaming form, for sharing a run with other profilers. *)

val sink_batched :
  ?grouping:Ormp_core.Omc.grouping ->
  ?budget:int ->
  site_name:(int -> string) ->
  unit ->
  Ormp_trace.Batch.t * (elapsed:float -> profile)
(** Batched form of {!sink} for {!Ormp_vm.Runner.run_batched}; translation
    goes through the OMC's MRU cache and yields an identical profile —
    {!profile} uses this path. *)

(** {1 Collector}

    The reusable collection core behind {!sink}/{!sink_batched}, exposed
    so the session layer can drive it directly: restore it from a
    checkpoint, cap its stream growth under a memory budget, and snapshot
    its exact live state. *)

type collector

type live = {
  lv_streams : (key * stream) list;
      (** first-appearance order; shares the collector's mutable stream
          records — serialize before feeding further tuples *)
  lv_stores : (int * bool) list;  (** ascending instruction id *)
  lv_dropped : key list;  (** refused keys, first-refusal order *)
  lv_dropped_accesses : int;
}
(** The collector's exact state, for checkpointing. *)

val collector : ?budget:int -> ?max_streams:int -> ?restore:live -> unit -> collector
(** [max_streams] (default 0 = unlimited) caps the number of per-key
    streams: once reached, accesses of unseen keys are counted into the
    dropped totals instead of opening streams — established streams keep
    collecting. [restore] rebuilds a collector mid-stream; admission
    decisions and totals continue exactly as on the original. *)

val collect : collector -> Ormp_core.Tuple.t -> unit
(** Feed one object-relative tuple (what the CDC emits). *)

val collect_lanes :
  collector ->
  instr:int array ->
  group:int array ->
  obj:int array ->
  offset:int array ->
  store:int array ->
  time0:int ->
  len:int ->
  unit
(** Feed [len] tuples from parallel SoA lanes — the zero-boxing batched
    path. [store] holds 0/1 flags; stamps are [time0 + i] (CDC chunks
    carry consecutive stamps). Lanes are read, never retained. *)

val collect_tuples : collector -> Ormp_core.Cdc.tuples -> unit
(** {!collect_lanes} on a CDC tuple chunk, for
    {!Ormp_core.Cdc.batch_tuples} consumers. *)

val live : collector -> live

val stream_count : collector -> int
(** Streams currently admitted (dropped keys excluded). *)

val finish : collector -> collected:int -> wild:int -> elapsed:float -> profile
(** Assemble the profile; [collected]/[wild] come from the CDC driving the
    collector. *)

(** {1 Sharded collection (pipeline-parallel SCC)}

    The vertical decomposition keys streams by (instruction, group), so a
    tuple stream sharded by instruction id keeps every (instr, group)
    sub-stream wholly on one shard in time order — each shard is a
    smaller, independent serial collector, suitable for one consumer
    domain each. Every shard records the time stamp of each key's first
    admitted tuple; merging re-sorts streams on those globally-unique
    stamps, reproducing the serial first-appearance order exactly, so the
    merged profile is byte-identical to a single collector's. *)

type shard

val shards :
  ?budget:int -> ?max_streams:int -> ?restore:live -> nshards:int -> unit -> shard array
(** [nshards] independent shards; feed each tuple to shard
    [shard_index ~nshards tu.instr]. A positive [max_streams] cap requires
    [nshards = 1] (admission order is inherently global) and raises
    [Invalid_argument] otherwise. [restore] splits a saved {!live} state
    back onto the shards, with synthetic first-seen stamps that preserve
    the saved order through later merges. *)

val shard_index : nshards:int -> int -> int
(** Which shard owns an instruction id. *)

val shard_collect : shard -> Ormp_core.Tuple.t -> unit
(** Feed one tuple; the shard's single consumer only. *)

val shard_collect_lanes :
  shard ->
  instr:int array ->
  group:int array ->
  obj:int array ->
  offset:int array ->
  store:int array ->
  time:int array ->
  len:int ->
  unit
(** Lane form of {!shard_collect}: [len] tuples from parallel SoA arrays,
    with an explicit [time] lane (a shard's stamps are not consecutive —
    it only sees its slice of the stream). *)

val shards_stream_count : shard array -> int

val shards_live : shard array -> live
(** Merged exact state across shards — same value {!live} would give on a
    serial collector fed the same stream. Quiesce the consumers first. *)

val shards_finish : shard array -> collected:int -> wild:int -> elapsed:float -> profile
(** Merged profile across shards — byte-identical to {!finish} on a
    serial collector fed the same stream. *)

val instrs : profile -> int list
(** All instruction ids seen, ascending. *)

val is_store : profile -> int -> bool
val loads : profile -> int list
val stores : profile -> int list

val streams_of : profile -> int -> (key * stream) list
(** The per-group streams of one instruction. *)

val stream_index : profile -> instr:int -> group:int -> stream option
(** [stream_index p] freezes the profile's streams into sorted lanes once
    and returns a lookup answering (instr, group) probes by binary search
    with no per-probe key allocation — for post-processors that probe many
    pairs ({!Mdf}, {!Alias}). *)

val groups_of : profile -> int -> int list
(** Groups an instruction touches. *)

val instr_total : profile -> int -> int
(** Collected accesses of an instruction (captured + discarded). *)

val descriptors : stream -> (Ormp_lmad.Lmad.t * span * int) list
(** The stream's effective descriptors for post-processing: every captured
    LMAD with its time span and iteration count, plus — when the stream
    overflowed — one pseudo-descriptor built from the min/max/granularity
    summary (a box lattice stepping by the granularity in each dimension)
    whose count is the number of discarded accesses it stands for. *)

val byte_size : profile -> int
(** Profile size in varint bytes (all LMADs, summaries and stream keys). *)

val compression_ratio : profile -> float
(** Raw-trace bytes ({!Ormp_util.Bytesize.fixed_record} per collected
    access) over profile bytes — the "Compression Ratio" column of
    Table 1. *)

val accesses_captured : profile -> float
(** Fraction of collected accesses represented in LMADs — the "Accesses
    captured" column of Table 1. *)

val instructions_captured : profile -> float
(** Fraction of instructions all of whose streams are fully captured — the
    "Instructions captured" column of Table 1. *)
