module C = Ormp_lmad.Compressor
module L = Ormp_lmad.Lmad

(* The deltas between consecutive accesses described by a nested LMAD: a
   transition at level j steps by stride_j and rewinds every inner level
   from its last iteration back to 0. Level j transitions happen
   (count_j - 1) times per iteration of the levels outside it. *)
let consecutive_deltas (d : L.t) =
  let n = L.dims d in
  let levels = Array.of_list d.L.levels in
  let rewind = Array.make n 0 in
  let out = ref [] in
  Array.iteri
    (fun j (l : L.level) ->
      let delta = Array.init n (fun i -> l.L.stride.(i) - rewind.(i)) in
      let outer_iters = ref 1 in
      for j' = j + 1 to Array.length levels - 1 do
        outer_iters := !outer_iters * levels.(j').L.count
      done;
      let occ = (l.L.count - 1) * !outer_iters in
      if occ > 0 then out := (delta, occ) :: !out;
      for i = 0 to n - 1 do
        rewind.(i) <- rewind.(i) + ((l.L.count - 1) * l.L.stride.(i))
      done)
    levels;
  List.rev !out

(* Stride evidence comes from the captured offset sub-streams (the paper's
   post-process "examines all offset strides captured for a given
   instruction", §4.2.2). *)
let stride_weights (p : Leap.profile) instr =
  (* Distinct strides per instruction are few (one per LMAD level shape),
     so the accumulator is a pair of parallel int lanes probed linearly —
     no boxed keys, and a deterministic result: ties in weight break on
     the smaller stride (a Hashtbl fold order would be arbitrary). *)
  let strides = ref (Array.make 8 0) in
  let occs = ref (Array.make 8 0) in
  let n = ref 0 in
  let bump st occ =
    let i = ref 0 in
    while !i < !n && !strides.(!i) <> st do incr i done;
    if !i < !n then !occs.(!i) <- !occs.(!i) + occ
    else begin
      if !n = Array.length !strides then begin
        let s' = Array.make (2 * !n) 0 and o' = Array.make (2 * !n) 0 in
        Array.blit !strides 0 s' 0 !n;
        Array.blit !occs 0 o' 0 !n;
        strides := s';
        occs := o'
      end;
      !strides.(!n) <- st;
      !occs.(!n) <- occ;
      incr n
    end
  in
  List.iter
    (fun (_, (s : Leap.stream)) ->
      List.iter
        (fun d -> List.iter (fun (delta, occ) -> bump delta.(0) occ) (consecutive_deltas d))
        (C.lmads s.off))
    (Leap.streams_of p instr);
  List.init !n (fun i -> (!strides.(i), !occs.(i)))
  |> List.sort (fun (s1, w1) (s2, w2) -> if w1 <> w2 then compare w2 w1 else compare s1 s2)

let min_sample = 0.05

let strongly_strided ?(threshold = 0.7) (p : Leap.profile) =
  (* The threshold is applied to the stride evidence the profile actually
     holds: LEAP's descriptors are "essentially a sample of the initial
     part of the original data stream" (§4.1), so the dominant stride must
     cover [threshold] of the *captured* stride instances — but a sample
     below [min_sample] of the instruction's executions is too thin to
     extrapolate from and never qualifies. *)
  List.filter_map
    (fun instr ->
      let total = Leap.instr_total p instr in
      match stride_weights p instr with
      | [] -> None
      | (s, w) :: _ as weights ->
        let captured = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
        if
          captured >= 1
          && float_of_int captured >= min_sample *. float_of_int (max 1 (total - 1))
          && float_of_int w >= threshold *. float_of_int captured
        then Some (instr, s)
        else None)
    (Leap.instrs p)
  |> List.sort compare
