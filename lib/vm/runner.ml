type result = { table : Ormp_trace.Instr.table; elapsed : float }

let run ?(config = Config.default) (program : Program.t) sink =
  let engine = Engine.make ~config ~sink ~statics:program.statics in
  let t0 = Ormp_util.Clock.now_s () in
  program.run engine;
  let elapsed = Ormp_util.Clock.now_s () -. t0 in
  { table = Engine.table engine; elapsed }

let run_batched ?(config = Config.default) (program : Program.t) batch =
  let engine = Engine.make_batched ~config ~batch ~statics:program.statics in
  let t0 = Ormp_util.Clock.now_s () in
  program.run engine;
  Ormp_trace.Batch.flush batch;
  let elapsed = Ormp_util.Clock.now_s () -. t0 in
  { table = Engine.table engine; elapsed }

let run_bare ?config program = run ?config program Ormp_trace.Sink.null
