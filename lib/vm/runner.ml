type result = { table : Ormp_trace.Instr.table; elapsed : float }

let run ?(config = Config.default) (program : Program.t) sink =
  let engine = Engine.make ~config ~sink ~statics:program.statics in
  let t0 = Ormp_util.Clock.now_s () in
  program.run engine;
  let elapsed = Ormp_util.Clock.now_s () -. t0 in
  { table = Engine.table engine; elapsed }

let run_batched ?(config = Config.default) (program : Program.t) batch =
  let engine = Engine.make_batched ~config ~batch ~statics:program.statics in
  let t0 = Ormp_util.Clock.now_s () in
  (match program.run engine with
  | () -> Ormp_trace.Batch.flush batch
  | exception exn ->
    (* Deliver the events buffered before the crash — a supervisor or journal
       downstream needs them — then re-raise with the workload's own
       backtrace, not the flush site's. *)
    let bt = Printexc.get_raw_backtrace () in
    (try Ormp_trace.Batch.flush batch with _ -> ());
    Printexc.raise_with_backtrace exn bt);
  let elapsed = Ormp_util.Clock.now_s () -. t0 in
  { table = Engine.table engine; elapsed }

let run_bare ?config program = run ?config program Ormp_trace.Sink.null
