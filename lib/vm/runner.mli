(** Driving a workload under a configuration.

    [run] is the whole "instrumented execution": it builds an engine for the
    given config, points the probes at [sink], executes the program, and
    reports wall time — which is how the dilation factors of Table 1 are
    measured (profiled run time / bare run time on the same config). *)

type result = {
  table : Ormp_trace.Instr.table;  (** program points registered by the run *)
  elapsed : float;
      (** monotonic wall-clock seconds spent in the run, probes included
          (CPU time would be wrong under the parallel bench harness) *)
}

val run : ?config:Config.t -> Program.t -> Ormp_trace.Sink.t -> result

val run_batched : ?config:Config.t -> Program.t -> Ormp_trace.Batch.t -> result
(** Same execution through the batched fast path: accesses are delivered
    to the batch unboxed, and the batch is flushed before the run is
    declared over (flush time is part of [elapsed]).

    If the workload raises, the buffered tail of the batch is still
    flushed (so crash-time journals are complete up to the failing
    event) and the exception is re-raised with its original backtrace
    preserved. *)

val run_bare : ?config:Config.t -> Program.t -> result
(** Same execution with all probes discarded — the "native" run. *)
