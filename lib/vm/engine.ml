open Ormp_trace

type pool_state = {
  mutable cursor : int;
  exposed : int option; (* pieces' alloc-site id when pieces are probed *)
  mutable live_pieces : (int * int) list; (* (base, size), exposed mode only *)
}

type obj = { base : int; size : int; pool : pool_state option }

(* Probe delivery: the legacy path boxes one event per probe and hands it
   to the sink synchronously; the batched path writes accesses into a
   struct-of-arrays buffer and only boxes the rare object events. *)
type path = Direct of Sink.t | Batched of Batch.t

type t = {
  table : Instr.table;
  path : path;
  heap : Ormp_memsim.Allocator.t;
  rng : Ormp_util.Prng.t;
  statics : (string * obj) list;
}

let emit_event t ev =
  match t.path with Direct sink -> sink ev | Batched b -> Batch.event b ev

let emit_access t ~instr ~addr ~size ~is_store =
  match t.path with
  | Direct sink -> sink (Event.Access { instr; addr; size; is_store })
  | Batched b -> Batch.on_access b ~instr ~addr ~size ~is_store

let make_path ~config ~path ~statics =
  let open Config in
  let heap =
    Ormp_memsim.Allocator.create ~base:config.heap_base ~align:config.align config.policy
  in
  let table = Instr.create_table () in
  let placements =
    Ormp_memsim.Layout.assign ~base:config.static_base ~gap:config.static_gap statics
  in
  let t =
    { table; path; heap; rng = Ormp_util.Prng.create ~seed:config.seed; statics = [] }
  in
  let static_objs =
    List.map
      (fun p ->
        let open Ormp_memsim.Layout in
        let site = Instr.register table ~name:("static:" ^ p.entry.name) Instr.Alloc_site in
        emit_event t
          (Event.Alloc { site; addr = p.address; size = p.entry.size; type_name = Some p.entry.name });
        (p.entry.name, { base = p.address; size = p.entry.size; pool = None }))
      placements
  in
  { t with statics = static_objs }

let make ~config ~sink ~statics = make_path ~config ~path:(Direct sink) ~statics
let make_batched ~config ~batch ~statics = make_path ~config ~path:(Batched batch) ~statics

let table t = t.table
let rng t = t.rng
let allocator t = t.heap

let instr t ~name kind = Instr.register t.table ~name kind

let static t name =
  match List.assoc_opt name t.statics with
  | Some o -> o
  | None -> raise Not_found

let alloc t ~site ?type_name size =
  let base = Ormp_memsim.Allocator.alloc t.heap size in
  emit_event t (Event.Alloc { site; addr = base; size; type_name });
  { base; size; pool = None }

let free t ~site o =
  Ormp_memsim.Allocator.free t.heap o.base;
  emit_event t (Event.Free { addr = o.base; site = Some site })

let free_raw t ?site a = emit_event t (Event.Free { addr = a; site })

let addr o = o.base
let obj_size o = o.size

let access t ~instr ~size ~is_store o off =
  if off < 0 || off + size > o.size then
    invalid_arg
      (Printf.sprintf "Engine: access [%d,%d) outside object of size %d" off (off + size) o.size);
  emit_access t ~instr ~addr:(o.base + off) ~size ~is_store

let load t ~instr ?(size = 8) o off = access t ~instr ~size ~is_store:false o off
let store t ~instr ?(size = 8) o off = access t ~instr ~size ~is_store:true o off

let load_raw t ~instr ?(size = 8) a = emit_access t ~instr ~addr:a ~size ~is_store:false

let store_raw t ~instr ?(size = 8) a = emit_access t ~instr ~addr:a ~size ~is_store:true

let pool_create t ~site ?type_name ?(expose_pieces = false) ?pieces_site size =
  let exposed =
    match (expose_pieces, pieces_site) with
    | false, _ -> None
    | true, Some s -> Some s
    | true, None -> invalid_arg "Engine.pool_create: expose_pieces needs pieces_site"
  in
  let base = Ormp_memsim.Allocator.alloc t.heap size in
  (* Targeting the custom alloc functions means the pool's own malloc goes
     unprobed — otherwise the piece objects would overlap the pool object
     in the OMC's range index. *)
  if exposed = None then emit_event t (Event.Alloc { site; addr = base; size; type_name });
  { base; size; pool = Some { cursor = 0; exposed; live_pieces = [] } }

let pool_piece t ~pool size =
  match pool.pool with
  | None -> invalid_arg "Engine.pool_piece: not a pool"
  | Some st ->
    let aligned = (size + 7) / 8 * 8 in
    if st.cursor + aligned > pool.size then raise Out_of_memory;
    let base = pool.base + st.cursor in
    st.cursor <- st.cursor + aligned;
    (match st.exposed with
    | Some site ->
      st.live_pieces <- (base, size) :: st.live_pieces;
      emit_event t (Event.Alloc { site; addr = base; size; type_name = None })
    | None -> ());
    { base; size; pool = None }

let pool_reset t ~pool =
  match pool.pool with
  | None -> invalid_arg "Engine.pool_reset: not a pool"
  | Some st ->
    List.iter
      (fun (base, _) -> emit_event t (Event.Free { addr = base; site = None }))
      st.live_pieces;
    st.live_pieces <- [];
    st.cursor <- 0

let pool_destroy t ~site ~pool =
  match pool.pool with
  | None -> invalid_arg "Engine.pool_destroy: not a pool"
  | Some { exposed = None; _ } -> free t ~site pool
  | Some st ->
    (* exposed mode: the pieces are the profiled objects *)
    List.iter
      (fun (base, _) -> emit_event t (Event.Free { addr = base; site = Some site }))
      st.live_pieces;
    st.live_pieces <- [];
    Ormp_memsim.Allocator.free t.heap pool.base
