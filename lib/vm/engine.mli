(** The workload execution engine.

    This plays the role of the instrumented program: workloads are written
    against a typed object API (allocate an object, load/store a field at
    an offset), and the engine turns every operation into the raw-address
    probe events a binary instrumentor would emit — allocations placed by
    the configured allocator, statics placed by the simulated linker, and
    one {!Ormp_trace.Event.Access} per executed memory operation.

    Program points (loads, stores, allocation sites) are registered
    explicitly and deterministically, so instruction ids are identical
    across configurations while raw addresses are not. *)

type t

type obj
(** Handle to a live object (or pool piece): a concrete address range. *)

val make :
  config:Config.t -> sink:Ormp_trace.Sink.t -> statics:Ormp_memsim.Layout.entry list -> t
(** Build an engine: lays out [statics], registers one allocation site per
    static and emits their [Alloc] events (the paper inserts static-object
    probes "at the beginning ... of the program", §3.1). Probes are
    delivered per event, synchronously. *)

val make_batched :
  config:Config.t -> batch:Ormp_trace.Batch.t -> statics:Ormp_memsim.Layout.entry list -> t
(** Same engine, but load/store probes take {!Ormp_trace.Batch.on_access}
    — the unboxed struct-of-arrays fast path. The caller owns the batch
    and must {!Ormp_trace.Batch.flush} it when the run ends
    ({!Runner.run_batched} does). *)

val table : t -> Ormp_trace.Instr.table
(** The program-point table built so far. *)

val rng : t -> Ormp_util.Prng.t
(** Workload-internal randomness, seeded from the config. *)

val allocator : t -> Ormp_memsim.Allocator.t

val instr : t -> name:string -> Ormp_trace.Instr.kind -> int
(** Register a program point; returns its id. *)

val static : t -> string -> obj
(** Handle to a laid-out static object. @raise Not_found. *)

val alloc : t -> site:int -> ?type_name:string -> int -> obj
(** Heap-allocate an object of the given byte size at an allocation site;
    emits the object-creation probe event. *)

val free : t -> site:int -> obj -> unit
(** Destroy a heap object; emits the destruction probe event carrying the
    free-site program point, so free sites appear in the instruction
    table and the event stream just like alloc sites do. *)

val addr : obj -> int
val obj_size : obj -> int

val load : t -> instr:int -> ?size:int -> obj -> int -> unit
(** [load t ~instr o off] reads [size] bytes (default 8) at [off] inside
    [o]; emits an access event. @raise Invalid_argument when the access
    falls outside the object. *)

val store : t -> instr:int -> ?size:int -> obj -> int -> unit

val load_raw : t -> instr:int -> ?size:int -> int -> unit
(** Access a raw address with no object bookkeeping (stack-like or wild
    accesses; the paper leaves such accesses unprofiled). *)

val store_raw : t -> instr:int -> ?size:int -> int -> unit

val free_raw : t -> ?site:int -> int -> unit
(** Emit a destruction probe for a raw address without touching the
    allocator — the double-free analogue of {!load_raw}. The fault
    harness uses this to plant invalid frees the allocator itself would
    refuse to perform. *)

(** Custom allocation pools (§3.1 footnote). By default a pool is profiled
    as a single object; with [~expose_pieces:true] the profiler instead
    "manually target[s] the custom alloc/dealloc functions": every piece
    emits its own creation probe (at [pieces_site]) and a reset emits
    destruction probes for all live pieces, so pieces become first-class
    objects with their own group and serials. *)

val pool_create :
  t -> site:int -> ?type_name:string -> ?expose_pieces:bool -> ?pieces_site:int -> int -> obj
(** Allocate a pool of the given size. With [~expose_pieces:true] (default
    false), [pieces_site] must be given; the pool's own allocation goes
    unprobed (its pieces are the profiled objects — they would otherwise
    overlap the pool in the object index).
    @raise Invalid_argument if [expose_pieces] is set without
    [pieces_site]. *)

val pool_piece : t -> pool:obj -> int -> obj
(** Carve a piece of the given size out of the pool. No probe event in the
    default mode (accesses through the piece translate into the pool
    object); a creation probe in [expose_pieces] mode. *)

val pool_reset : t -> pool:obj -> unit
(** Recycle the pool's space: no probe event in the default mode, one
    destruction probe per live piece in [expose_pieces] mode. *)

val pool_destroy : t -> site:int -> pool:obj -> unit
(** Free the pool object; emits the destruction probe event. *)
