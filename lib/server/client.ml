(* See the mli. The client is deliberately synchronous: one session is
   one loop of send-frame / poll-acks, with every blocking step going
   through the Net_io deadline seam, so a wedged daemon can only cost a
   timeout, never a hang. *)

module Batch = Ormp_trace.Batch
module Event = Ormp_trace.Event
module Net_fault = Ormp_workloads.Faults.Net
module Prng = Ormp_util.Prng
module Log = Ormp_telemetry.Log

type retry = {
  attempts : int;
  backoff_s : float;
  backoff_max_s : float;
  jitter : float;
  seed : int;
}

let default_retry =
  { attempts = 10; backoff_s = 0.02; backoff_max_s = 0.5; jitter = 0.25; seed = 0x5eed }

type stats = {
  st_events : int;
  st_frames : int;
  st_reconnects : int;
  st_sheds : int;
  st_acks : int;
  st_ack_latencies : float list;
  st_wall_s : float;
}

let find_workload name =
  match Ormp_workloads.Registry.find name with
  | entry -> Ok (Ormp_workloads.Registry.program entry)
  | exception Not_found -> (
    match List.assoc_opt name Ormp_workloads.Micro.all with
    | Some p -> Ok p
    | None -> Error (Printf.sprintf "unknown workload %S" name))

let generate ~workload ~seed =
  match find_workload workload with
  | Error _ as e -> e
  | Ok program ->
    let buf = Ormp_util.Vec.create () in
    let config = { Ormp_vm.Config.default with seed } in
    ignore (Ormp_vm.Runner.run ~config program (Ormp_util.Vec.push buf));
    let events = Ormp_util.Vec.to_array buf in
    Ok (events, Array.length events)

let rec mkdirs path =
  if path = "" || path = "." || Sys.file_exists path then ()
  else begin
    mkdirs (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let reference ~dir ~events =
  mkdirs dir;
  let pipe = Pipeline.create () in
  Array.iter (Pipeline.apply pipe) events;
  Pipeline.finalize pipe ~dir ~elapsed:0.0

let percentile xs p =
  match xs with
  | [] -> 0.0
  | _ ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let rank = int_of_float (ceil (p *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

(* --- one session -------------------------------------------------------- *)

exception Reconnect of string

type live = {
  fd : Unix.file_descr;
  dec : Wire.decoder;
  buf : Bytes.t;
  io_timeout_s : float;
  net : Net_fault.t;
  (* (end position, send instant) of frames awaiting an Ack *)
  pending : (int * float) Queue.t;
  mutable frames : int;
  mutable acks : int;
  mutable latencies : float list;
}

let deadline l = Net_io.now () +. l.io_timeout_s

let send_frame l msg =
  let s = Wire.encode msg in
  match Net_fault.next_frame l.net with
  | Net_fault.Send ->
    Net_io.send_all l.fd s ~deadline_s:(deadline l);
    true
  | Net_fault.Slow ->
    Net_io.send_slow l.fd s ~chunk:7 ~delay_s:0.002 ~deadline_s:(deadline l);
    true
  | Net_fault.Torn ->
    Net_io.send_prefix l.fd s (String.length s / 2) ~deadline_s:(deadline l);
    raise (Reconnect "injected torn frame")
  | Net_fault.Disconnect -> raise (Reconnect "injected disconnect")

(* Control frames (Hello, Finish, Pong) bypass the fault plan: the plan
   counts data frames so a fault ordinal maps to a stream position. *)
let send_ctl l msg = Net_io.send_all l.fd (Wire.encode msg) ~deadline_s:(deadline l)

let handle_ack l position =
  let now = Net_io.now () in
  let continue = ref true in
  while !continue && not (Queue.is_empty l.pending) do
    let p, sent = Queue.peek l.pending in
    if p <= position then begin
      ignore (Queue.pop l.pending);
      l.acks <- l.acks + 1;
      l.latencies <- (now -. sent) :: l.latencies
    end
    else continue := false
  done

(* Drain whatever the server has pushed at us without blocking. *)
let rec poll_inbound l =
  match Wire.next l.dec with
  | Error e -> raise (Reconnect ("server sent garbage: " ^ e))
  | Ok (Some msg) ->
    (match msg with
    | Wire.Ack { position } -> handle_ack l position
    | Wire.Ping -> send_ctl l Wire.Pong
    | Wire.Err e -> raise (Reconnect ("server error: " ^ e))
    | Wire.Shed _ -> raise (Reconnect "shed mid-stream")
    | _ -> ());
    poll_inbound l
  | Ok None -> (
    match Net_io.read_nonblock l.fd l.buf with
    | `Again -> ()
    | `Eof -> raise (Reconnect "server closed connection")
    | `Read n ->
      Wire.feed l.dec l.buf 0 n;
      poll_inbound l)

(* Block for the next frame, still answering pings. *)
let rec recv_msg l =
  match Wire.next l.dec with
  | Error e -> raise (Reconnect ("server sent garbage: " ^ e))
  | Ok (Some Wire.Ping) ->
    send_ctl l Wire.Pong;
    recv_msg l
  | Ok (Some msg) -> msg
  | Ok None ->
    let n = Net_io.recv_into l.fd l.buf ~deadline_s:(deadline l) in
    if n = 0 then raise (Reconnect "server closed connection");
    Wire.feed l.dec l.buf 0 n;
    recv_msg l

(* One-shot stats fetch: connect, ask, read frames (answering pings)
   until the snapshot arrives. No session, no retry loop — a monitor
   polls, so the poller owns the retry policy. *)
let fetch_stats ~socket ?(io_timeout_s = 10.0) () : (Stats.t, string) result =
  match
    let fd = Net_io.connect_unix ~path:socket ~deadline_s:(Net_io.now () +. io_timeout_s) in
    Fun.protect
      ~finally:(fun () -> Net_io.close_noerr fd)
      (fun () ->
        let l =
          {
            fd;
            dec = Wire.decoder ();
            buf = Bytes.create 65536;
            io_timeout_s;
            net = Net_fault.create Net_fault.none;
            pending = Queue.create ();
            frames = 0;
            acks = 0;
            latencies = [];
          }
        in
        send_ctl l Wire.Stats_req;
        let rec wait () =
          match recv_msg l with
          | Wire.Stats s -> Ok s
          | Wire.Err e -> Error ("server error: " ^ e)
          | _ -> wait ()
        in
        wait ())
  with
  | r -> r
  | exception Reconnect reason -> Error reason
  | exception Net_io.Timeout -> Error "i/o deadline expired"
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

type outcome = Done | Shed_off of float | Dropped of string

let stream l ~events ~from =
  let total = Array.length events in
  let cap = Batch.default_capacity in
  let chunk =
    {
      Batch.instr = Array.make cap 0;
      addr = Array.make cap 0;
      size = Array.make cap 0;
      store = Array.make cap 0;
      len = 0;
    }
  in
  let start = ref from in
  let flush_chunk () =
    if chunk.Batch.len > 0 then begin
      let sent = send_frame l (Wire.Batch { start = !start; chunk }) in
      if sent then begin
        l.frames <- l.frames + 1;
        Queue.add (!start + chunk.Batch.len, Net_io.now ()) l.pending
      end;
      start := !start + chunk.Batch.len;
      chunk.Batch.len <- 0;
      poll_inbound l
    end
  in
  for i = from to total - 1 do
    match events.(i) with
    | Event.Access { instr; addr; size; is_store } ->
      if chunk.Batch.len = cap then flush_chunk ();
      let j = chunk.Batch.len in
      chunk.Batch.instr.(j) <- instr;
      chunk.Batch.addr.(j) <- addr;
      chunk.Batch.size.(j) <- size;
      chunk.Batch.store.(j) <- Bool.to_int is_store;
      chunk.Batch.len <- j + 1
    | (Event.Alloc _ | Event.Free _) as ev ->
      flush_chunk ();
      if send_frame l (Wire.Ev { position = i; event = ev }) then begin
        l.frames <- l.frames + 1;
        Queue.add (i + 1, Net_io.now ()) l.pending
      end;
      start := i + 1;
      poll_inbound l
  done;
  flush_chunk ();
  send_ctl l (Wire.Finish { position = total });
  let rec wait_finish () =
    match recv_msg l with
    | Wire.Finish_ok _ -> ()
    | Wire.Ack { position } ->
      handle_ack l position;
      wait_finish ()
    | Wire.Err e -> raise (Reconnect ("server error: " ^ e))
    | _ -> wait_finish ()
  in
  wait_finish ()

let attempt ~socket ~token ~workload ~events ~ack_every ~io_timeout_s ~net ~frames ~acks
    ~latencies =
  let fd = Net_io.connect_unix ~path:socket ~deadline_s:(Net_io.now () +. io_timeout_s) in
  Fun.protect
    ~finally:(fun () -> Net_io.close_noerr fd)
    (fun () ->
      let l =
        {
          fd;
          dec = Wire.decoder ();
          buf = Bytes.create 65536;
          io_timeout_s;
          net;
          pending = Queue.create ();
          frames = 0;
          acks = 0;
          latencies = [];
        }
      in
      let finish outcome =
        frames := !frames + l.frames;
        acks := !acks + l.acks;
        latencies := l.latencies @ !latencies;
        outcome
      in
      let result =
        try
          send_ctl l (Wire.Hello { token; workload; ack_every });
          match recv_msg l with
          | Wire.Shed { retry_after_s; reason } ->
            Log.debugf ~src:"client" "session %s shed: %s" token reason;
            Shed_off retry_after_s
          | Wire.Err e -> Dropped ("server refused hello: " ^ e)
          | Wire.Hello_ok { complete = true; _ } -> Done
          | Wire.Hello_ok { position; _ } ->
            let from =
              if position > 0 then max 0 (position - Net_fault.rewind net) else position
            in
            stream l ~events ~from;
            Done
          | _ -> Dropped "unexpected reply to hello"
        with
        | Reconnect reason -> Dropped reason
        | Net_io.Timeout -> Dropped "i/o deadline expired"
      in
      finish result)

let run_session ~socket ~token ~workload ~events ?(ack_every = 4)
    ?(retry = default_retry) ?(net = Net_fault.create Net_fault.none)
    ?(io_timeout_s = 10.0) () =
  (* The daemon closes connections we are mid-write on (protocol errors,
     restarts): that must surface as EPIPE for the retry loop, not kill
     the process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t0 = Net_io.now () in
  let prng = Prng.create ~seed:retry.seed in
  let frames = ref 0 and acks = ref 0 and latencies = ref [] in
  let reconnects = ref 0 and sheds = ref 0 in
  let backoff k =
    let base =
      Float.min retry.backoff_max_s (retry.backoff_s *. (2.0 ** float_of_int (k - 1)))
    in
    let w = 1.0 +. (retry.jitter *. (Prng.float prng 2.0 -. 1.0)) in
    Float.max 0.0 (base *. w)
  in
  let stats () =
    {
      st_events = Array.length events;
      st_frames = !frames;
      st_reconnects = !reconnects;
      st_sheds = !sheds;
      st_acks = !acks;
      st_ack_latencies = !latencies;
      st_wall_s = Net_io.now () -. t0;
    }
  in
  let rec go k =
    if k > retry.attempts then
      Error (Printf.sprintf "session %s: retry budget exhausted after %d attempts" token retry.attempts)
    else
      let retry_after reason extra =
        Log.debugf ~src:"client" "session %s attempt %d: %s" token k reason;
        Net_io.sleep (extra +. backoff k);
        go (k + 1)
      in
      match
        attempt ~socket ~token ~workload ~events ~ack_every ~io_timeout_s ~net ~frames
          ~acks ~latencies
      with
      | Done -> Ok (stats ())
      | Shed_off after ->
        incr sheds;
        retry_after "shed" after
      | Dropped reason ->
        incr reconnects;
        retry_after reason 0.0
      | exception Unix.Unix_error (e, _, _) ->
        incr reconnects;
        retry_after (Unix.error_message e) 0.0
      | exception Net_io.Timeout ->
        incr reconnects;
        retry_after "connect deadline expired" 0.0
  in
  go 1
