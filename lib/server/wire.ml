(* Frame codec for `ormp serve`. See the mli for the wire layout.

   Encoding writes into a fresh Buffer per message — the daemon and the
   client both send at most one frame per 512 events (the SoA chunk
   capacity), so codec allocation is noise next to the grammar work the
   payload triggers. Decoding is incremental over a compacting byte
   buffer so a reader can feed whatever slice sizes the socket hands it. *)

module Batch = Ormp_trace.Batch
module Event = Ormp_trace.Event
module Tf = Ormp_trace.Trace_file
module Crc32 = Ormp_util.Crc32

type msg =
  | Hello of { token : string; workload : string; ack_every : int }
  | Hello_ok of { fresh : bool; complete : bool; position : int }
  | Shed of { retry_after_s : float; reason : string }
  | Err of string
  | Batch of { start : int; chunk : Batch.chunk }
  | Ev of { position : int; event : Event.t }
  | Finish of { position : int }
  | Finish_ok of { position : int; collected : int; wild : int }
  | Ack of { position : int }
  | Ping
  | Pong
  | Stats_req
  | Stats of Stats.t

let max_frame = 1 lsl 20

(* The length field bounds the count field transitively, but a direct cap
   keeps a corrupt-yet-CRC-valid count from allocating wild arrays. *)
let max_batch = 65536

(* Session rows beyond this are cut (and the frame flagged truncated) so
   a crowded daemon's Stats reply can never outgrow [max_frame]. *)
let max_stats_rows = 2048

(* --- encoding ----------------------------------------------------------- *)

let add_i64 b v = Buffer.add_int64_be b (Int64.of_int v)
let add_u32 b v = Buffer.add_int32_be b (Int32.of_int v)

let add_str16 b s =
  if String.length s > 0xFFFF then invalid_arg "Wire: string field too long";
  Buffer.add_uint16_be b (String.length s);
  Buffer.add_string b s

let add_f64 b v = Buffer.add_int64_be b (Int64.bits_of_float v)

(* Stats payload, after the 'U' tag: u8 layout version, then the daemon
   gauges (floats as raw IEEE bits, counts as i64), a truncation flag,
   the session rows, and the three registry tables, each length-prefixed
   with a u32 count. *)
let add_stats b (s : Stats.t) =
  Buffer.add_uint8 b Stats.version;
  add_f64 b s.Stats.s_wall_s;
  add_f64 b s.Stats.s_events_per_sec;
  add_f64 b s.Stats.s_pool_occupancy;
  add_i64 b s.Stats.s_sessions_live;
  add_i64 b s.Stats.s_sessions_started;
  add_i64 b s.Stats.s_sessions_resumed;
  add_i64 b s.Stats.s_sheds;
  add_i64 b s.Stats.s_protocol_errors;
  add_i64 b s.Stats.s_deadline_kills;
  add_i64 b s.Stats.s_events_total;
  add_i64 b s.Stats.s_wal_bytes;
  add_i64 b s.Stats.s_out_backlog;
  add_i64 b s.Stats.s_out_backlog_hw;
  add_i64 b s.Stats.s_grammar_symbols;
  add_i64 b s.Stats.s_grammar_budget;
  add_i64 b s.Stats.s_flight_events;
  add_i64 b s.Stats.s_flight_dropped;
  add_i64 b s.Stats.s_flight_dumps;
  let nrows = List.length s.Stats.s_rows in
  let truncated = s.Stats.s_rows_truncated || nrows > max_stats_rows in
  Buffer.add_uint8 b (Bool.to_int truncated);
  add_u32 b (min nrows max_stats_rows);
  List.iteri
    (fun i (r : Stats.row) ->
      if i < max_stats_rows then begin
        add_str16 b r.Stats.r_token;
        add_str16 b r.Stats.r_workload;
        add_i64 b r.Stats.r_position;
        add_i64 b r.Stats.r_journal_bytes;
        add_i64 b r.Stats.r_journal_lag;
        add_f64 b r.Stats.r_events_per_sec;
        add_f64 b r.Stats.r_ack_p50_ms;
        add_f64 b r.Stats.r_ack_p99_ms;
        add_f64 b r.Stats.r_ring_occupancy
      end)
    s.Stats.s_rows;
  add_u32 b (List.length s.Stats.s_counters);
  List.iter
    (fun (n, v) ->
      add_str16 b n;
      add_i64 b v)
    s.Stats.s_counters;
  add_u32 b (List.length s.Stats.s_gauges);
  List.iter
    (fun (n, v) ->
      add_str16 b n;
      add_f64 b v)
    s.Stats.s_gauges;
  add_u32 b (List.length s.Stats.s_hists);
  List.iter
    (fun (n, (h : Stats.hist)) ->
      add_str16 b n;
      add_i64 b h.Stats.count;
      add_f64 b h.Stats.sum;
      add_f64 b h.Stats.min;
      add_f64 b h.Stats.max;
      add_f64 b h.Stats.p50;
      add_f64 b h.Stats.p90;
      add_f64 b h.Stats.p99)
    s.Stats.s_hists

let payload = function
  | Hello { token; workload; ack_every } ->
    let b = Buffer.create 64 in
    Buffer.add_char b 'H';
    add_str16 b token;
    add_str16 b workload;
    add_i64 b ack_every;
    Buffer.contents b
  | Hello_ok { fresh; complete; position } ->
    let b = Buffer.create 16 in
    Buffer.add_char b 'O';
    Buffer.add_uint8 b (Bool.to_int fresh);
    Buffer.add_uint8 b (Bool.to_int complete);
    add_i64 b position;
    Buffer.contents b
  | Shed { retry_after_s; reason } ->
    let b = Buffer.create 32 in
    Buffer.add_char b 'S';
    Buffer.add_int64_be b (Int64.bits_of_float retry_after_s);
    add_str16 b reason;
    Buffer.contents b
  | Err m ->
    let b = Buffer.create 32 in
    Buffer.add_char b 'E';
    add_str16 b m;
    Buffer.contents b
  | Batch { start; chunk } ->
    let n = chunk.Batch.len in
    if n > max_batch then invalid_arg "Wire: oversized batch";
    let b = Buffer.create (16 + (n * 21)) in
    Buffer.add_char b 'B';
    add_i64 b start;
    add_u32 b n;
    for i = 0 to n - 1 do
      add_i64 b chunk.Batch.instr.(i)
    done;
    for i = 0 to n - 1 do
      add_i64 b chunk.Batch.addr.(i)
    done;
    for i = 0 to n - 1 do
      add_u32 b chunk.Batch.size.(i)
    done;
    for i = 0 to n - 1 do
      Buffer.add_uint8 b (if chunk.Batch.store.(i) <> 0 then 1 else 0)
    done;
    Buffer.contents b
  | Ev { position; event } ->
    let b = Buffer.create 32 in
    Buffer.add_char b 'V';
    add_i64 b position;
    Buffer.add_string b (Tf.event_line event);
    Buffer.contents b
  | Finish { position } ->
    let b = Buffer.create 16 in
    Buffer.add_char b 'F';
    add_i64 b position;
    Buffer.contents b
  | Finish_ok { position; collected; wild } ->
    let b = Buffer.create 32 in
    Buffer.add_char b 'G';
    add_i64 b position;
    add_i64 b collected;
    add_i64 b wild;
    Buffer.contents b
  | Ack { position } ->
    let b = Buffer.create 16 in
    Buffer.add_char b 'A';
    add_i64 b position;
    Buffer.contents b
  | Ping -> "P"
  | Pong -> "Q"
  | Stats_req -> "T"
  | Stats s ->
    let b = Buffer.create 1024 in
    Buffer.add_char b 'U';
    add_stats b s;
    Buffer.contents b

let encode msg =
  let p = payload msg in
  let n = String.length p in
  if n = 0 || n > max_frame then invalid_arg "Wire.encode: bad payload size";
  let b = Buffer.create (n + 8) in
  add_u32 b n;
  Buffer.add_string b p;
  add_u32 b (Crc32.string p);
  Buffer.contents b

(* --- payload parsing ---------------------------------------------------- *)

exception Bad of string

let get_i64 s pos =
  if !pos + 8 > String.length s then raise (Bad "truncated integer");
  let v = Int64.to_int (String.get_int64_be s !pos) in
  pos := !pos + 8;
  v

(* Raw 64-bit read: [get_i64] narrows to the native 63-bit int, which
   would corrupt the high exponent bits of an IEEE double. *)
let get_f64 s pos =
  if !pos + 8 > String.length s then raise (Bad "truncated float");
  let v = Int64.float_of_bits (String.get_int64_be s !pos) in
  pos := !pos + 8;
  v

let get_u32 s pos =
  if !pos + 4 > String.length s then raise (Bad "truncated integer");
  let v = Int32.to_int (String.get_int32_be s !pos) land 0xFFFFFFFF in
  pos := !pos + 4;
  v

let get_u8 s pos =
  if !pos + 1 > String.length s then raise (Bad "truncated byte");
  let v = Char.code s.[!pos] in
  incr pos;
  v

let get_str16 s pos =
  if !pos + 2 > String.length s then raise (Bad "truncated string length");
  let n = (Char.code s.[!pos] lsl 8) lor Char.code s.[!pos + 1] in
  pos := !pos + 2;
  if !pos + n > String.length s then raise (Bad "truncated string");
  let v = String.sub s !pos n in
  pos := !pos + n;
  v

let get_stats p pos : Stats.t =
  let v = get_u8 p pos in
  if v <> Stats.version then
    raise (Bad (Printf.sprintf "unsupported stats version %d (want %d)" v Stats.version));
  let s_wall_s = get_f64 p pos in
  let s_events_per_sec = get_f64 p pos in
  let s_pool_occupancy = get_f64 p pos in
  let s_sessions_live = get_i64 p pos in
  let s_sessions_started = get_i64 p pos in
  let s_sessions_resumed = get_i64 p pos in
  let s_sheds = get_i64 p pos in
  let s_protocol_errors = get_i64 p pos in
  let s_deadline_kills = get_i64 p pos in
  let s_events_total = get_i64 p pos in
  let s_wal_bytes = get_i64 p pos in
  let s_out_backlog = get_i64 p pos in
  let s_out_backlog_hw = get_i64 p pos in
  let s_grammar_symbols = get_i64 p pos in
  let s_grammar_budget = get_i64 p pos in
  let s_flight_events = get_i64 p pos in
  let s_flight_dropped = get_i64 p pos in
  let s_flight_dumps = get_i64 p pos in
  let s_rows_truncated = get_u8 p pos <> 0 in
  let nrows = get_u32 p pos in
  if nrows > max_stats_rows then raise (Bad "bad stats row count");
  let rows =
    Array.init nrows (fun _ ->
        let r_token = get_str16 p pos in
        let r_workload = get_str16 p pos in
        let r_position = get_i64 p pos in
        let r_journal_bytes = get_i64 p pos in
        let r_journal_lag = get_i64 p pos in
        let r_events_per_sec = get_f64 p pos in
        let r_ack_p50_ms = get_f64 p pos in
        let r_ack_p99_ms = get_f64 p pos in
        let r_ring_occupancy = get_f64 p pos in
        {
          Stats.r_token;
          r_workload;
          r_position;
          r_journal_bytes;
          r_journal_lag;
          r_events_per_sec;
          r_ack_p50_ms;
          r_ack_p99_ms;
          r_ring_occupancy;
        })
  in
  (* Each registry entry consumes at least two bytes, so any genuine
     count is below the payload length; checking that before Array.init
     keeps a corrupt-yet-CRC-valid count from allocating a wild array. *)
  let get_count () =
    let n = get_u32 p pos in
    if n > String.length p then raise (Bad "bad stats table count");
    n
  in
  let ncounters = get_count () in
  let counters =
    Array.init ncounters (fun _ ->
        let n = get_str16 p pos in
        (n, get_i64 p pos))
  in
  let ngauges = get_count () in
  let gauges =
    Array.init ngauges (fun _ ->
        let n = get_str16 p pos in
        (n, get_f64 p pos))
  in
  let nhists = get_count () in
  let hists =
    Array.init nhists (fun _ ->
        let n = get_str16 p pos in
        let count = get_i64 p pos in
        let sum = get_f64 p pos in
        let min = get_f64 p pos in
        let max = get_f64 p pos in
        let p50 = get_f64 p pos in
        let p90 = get_f64 p pos in
        let p99 = get_f64 p pos in
        (n, { Stats.count; sum; min; max; p50; p90; p99 }))
  in
  {
    Stats.s_wall_s;
    s_events_per_sec;
    s_pool_occupancy;
    s_sessions_live;
    s_sessions_started;
    s_sessions_resumed;
    s_sheds;
    s_protocol_errors;
    s_deadline_kills;
    s_events_total;
    s_wal_bytes;
    s_out_backlog;
    s_out_backlog_hw;
    s_grammar_symbols;
    s_grammar_budget;
    s_flight_events;
    s_flight_dropped;
    s_flight_dumps;
    s_rows_truncated;
    s_rows = Array.to_list rows;
    s_counters = Array.to_list counters;
    s_gauges = Array.to_list gauges;
    s_hists = Array.to_list hists;
  }

let parse p =
  let len = String.length p in
  let pos = ref 1 in
  let finish msg =
    if !pos <> len then raise (Bad "trailing payload bytes");
    msg
  in
  match p.[0] with
  | 'H' ->
    let token = get_str16 p pos in
    let workload = get_str16 p pos in
    let ack_every = get_i64 p pos in
    finish (Hello { token; workload; ack_every })
  | 'O' ->
    let fresh = get_u8 p pos <> 0 in
    let complete = get_u8 p pos <> 0 in
    let position = get_i64 p pos in
    finish (Hello_ok { fresh; complete; position })
  | 'S' ->
    let retry_after_s = get_f64 p pos in
    let reason = get_str16 p pos in
    finish (Shed { retry_after_s; reason })
  | 'E' -> finish (Err (get_str16 p pos))
  | 'B' ->
    let start = get_i64 p pos in
    let n = get_u32 p pos in
    if n = 0 || n > max_batch then raise (Bad "bad batch count");
    let instr = Array.init n (fun _ -> get_i64 p pos) in
    let addr = Array.init n (fun _ -> get_i64 p pos) in
    let size = Array.init n (fun _ -> get_u32 p pos) in
    let store = Array.init n (fun _ -> get_u8 p pos) in
    finish (Batch { start; chunk = { Batch.instr; addr; size; store; len = n } })
  | 'V' ->
    let position = get_i64 p pos in
    let line = String.sub p !pos (len - !pos) in
    pos := len;
    (match Tf.parse_line line with
    | Ok event -> finish (Ev { position; event })
    | Error e -> raise (Bad ("bad event payload: " ^ e)))
  | 'F' -> finish (Finish { position = get_i64 p pos })
  | 'G' ->
    let position = get_i64 p pos in
    let collected = get_i64 p pos in
    let wild = get_i64 p pos in
    finish (Finish_ok { position; collected; wild })
  | 'A' -> finish (Ack { position = get_i64 p pos })
  | 'P' -> finish Ping
  | 'Q' -> finish Pong
  | 'T' -> finish Stats_req
  | 'U' -> finish (Stats (get_stats p pos))
  | c -> raise (Bad (Printf.sprintf "unknown frame tag %C" c))

(* --- incremental decoding ----------------------------------------------- *)

type decoder = { mutable buf : Bytes.t; mutable len : int }

let decoder () = { buf = Bytes.create 4096; len = 0 }

let buffered d = d.len

let feed d src off n =
  if off < 0 || n < 0 || off + n > Bytes.length src then invalid_arg "Wire.feed";
  let need = d.len + n in
  if need > Bytes.length d.buf then begin
    let cap = ref (Bytes.length d.buf) in
    while !cap < need do
      cap := !cap * 2
    done;
    let bigger = Bytes.create !cap in
    Bytes.blit d.buf 0 bigger 0 d.len;
    d.buf <- bigger
  end;
  Bytes.blit src off d.buf d.len n;
  d.len <- d.len + n

let peek_u32 d off = Int32.to_int (Bytes.get_int32_be d.buf off) land 0xFFFFFFFF

let next d =
  if d.len < 4 then Ok None
  else begin
    let n = peek_u32 d 0 in
    if n < 1 || n > max_frame then
      Error (Printf.sprintf "bad frame length %d (max %d)" n max_frame)
    else if d.len < 4 + n + 4 then Ok None
    else begin
      let p = Bytes.sub_string d.buf 4 n in
      let crc = peek_u32 d (4 + n) in
      let total = 8 + n in
      Bytes.blit d.buf total d.buf 0 (d.len - total);
      d.len <- d.len - total;
      if Crc32.string p land 0xFFFFFFFF <> crc then Error "frame CRC mismatch"
      else
        match parse p with
        | msg -> Ok (Some msg)
        | exception Bad e -> Error e
    end
  end
