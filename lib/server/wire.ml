(* Frame codec for `ormp serve`. See the mli for the wire layout.

   Encoding writes into a fresh Buffer per message — the daemon and the
   client both send at most one frame per 512 events (the SoA chunk
   capacity), so codec allocation is noise next to the grammar work the
   payload triggers. Decoding is incremental over a compacting byte
   buffer so a reader can feed whatever slice sizes the socket hands it. *)

module Batch = Ormp_trace.Batch
module Event = Ormp_trace.Event
module Tf = Ormp_trace.Trace_file
module Crc32 = Ormp_util.Crc32

type msg =
  | Hello of { token : string; workload : string; ack_every : int }
  | Hello_ok of { fresh : bool; complete : bool; position : int }
  | Shed of { retry_after_s : float; reason : string }
  | Err of string
  | Batch of { start : int; chunk : Batch.chunk }
  | Ev of { position : int; event : Event.t }
  | Finish of { position : int }
  | Finish_ok of { position : int; collected : int; wild : int }
  | Ack of { position : int }
  | Ping
  | Pong

let max_frame = 1 lsl 20

(* The length field bounds the count field transitively, but a direct cap
   keeps a corrupt-yet-CRC-valid count from allocating wild arrays. *)
let max_batch = 65536

(* --- encoding ----------------------------------------------------------- *)

let add_i64 b v = Buffer.add_int64_be b (Int64.of_int v)
let add_u32 b v = Buffer.add_int32_be b (Int32.of_int v)

let add_str16 b s =
  if String.length s > 0xFFFF then invalid_arg "Wire: string field too long";
  Buffer.add_uint16_be b (String.length s);
  Buffer.add_string b s

let payload = function
  | Hello { token; workload; ack_every } ->
    let b = Buffer.create 64 in
    Buffer.add_char b 'H';
    add_str16 b token;
    add_str16 b workload;
    add_i64 b ack_every;
    Buffer.contents b
  | Hello_ok { fresh; complete; position } ->
    let b = Buffer.create 16 in
    Buffer.add_char b 'O';
    Buffer.add_uint8 b (Bool.to_int fresh);
    Buffer.add_uint8 b (Bool.to_int complete);
    add_i64 b position;
    Buffer.contents b
  | Shed { retry_after_s; reason } ->
    let b = Buffer.create 32 in
    Buffer.add_char b 'S';
    Buffer.add_int64_be b (Int64.bits_of_float retry_after_s);
    add_str16 b reason;
    Buffer.contents b
  | Err m ->
    let b = Buffer.create 32 in
    Buffer.add_char b 'E';
    add_str16 b m;
    Buffer.contents b
  | Batch { start; chunk } ->
    let n = chunk.Batch.len in
    if n > max_batch then invalid_arg "Wire: oversized batch";
    let b = Buffer.create (16 + (n * 21)) in
    Buffer.add_char b 'B';
    add_i64 b start;
    add_u32 b n;
    for i = 0 to n - 1 do
      add_i64 b chunk.Batch.instr.(i)
    done;
    for i = 0 to n - 1 do
      add_i64 b chunk.Batch.addr.(i)
    done;
    for i = 0 to n - 1 do
      add_u32 b chunk.Batch.size.(i)
    done;
    for i = 0 to n - 1 do
      Buffer.add_uint8 b (if chunk.Batch.store.(i) <> 0 then 1 else 0)
    done;
    Buffer.contents b
  | Ev { position; event } ->
    let b = Buffer.create 32 in
    Buffer.add_char b 'V';
    add_i64 b position;
    Buffer.add_string b (Tf.event_line event);
    Buffer.contents b
  | Finish { position } ->
    let b = Buffer.create 16 in
    Buffer.add_char b 'F';
    add_i64 b position;
    Buffer.contents b
  | Finish_ok { position; collected; wild } ->
    let b = Buffer.create 32 in
    Buffer.add_char b 'G';
    add_i64 b position;
    add_i64 b collected;
    add_i64 b wild;
    Buffer.contents b
  | Ack { position } ->
    let b = Buffer.create 16 in
    Buffer.add_char b 'A';
    add_i64 b position;
    Buffer.contents b
  | Ping -> "P"
  | Pong -> "Q"

let encode msg =
  let p = payload msg in
  let n = String.length p in
  if n = 0 || n > max_frame then invalid_arg "Wire.encode: bad payload size";
  let b = Buffer.create (n + 8) in
  add_u32 b n;
  Buffer.add_string b p;
  add_u32 b (Crc32.string p);
  Buffer.contents b

(* --- payload parsing ---------------------------------------------------- *)

exception Bad of string

let get_i64 s pos =
  if !pos + 8 > String.length s then raise (Bad "truncated integer");
  let v = Int64.to_int (String.get_int64_be s !pos) in
  pos := !pos + 8;
  v

(* Raw 64-bit read: [get_i64] narrows to the native 63-bit int, which
   would corrupt the high exponent bits of an IEEE double. *)
let get_f64 s pos =
  if !pos + 8 > String.length s then raise (Bad "truncated float");
  let v = Int64.float_of_bits (String.get_int64_be s !pos) in
  pos := !pos + 8;
  v

let get_u32 s pos =
  if !pos + 4 > String.length s then raise (Bad "truncated integer");
  let v = Int32.to_int (String.get_int32_be s !pos) land 0xFFFFFFFF in
  pos := !pos + 4;
  v

let get_u8 s pos =
  if !pos + 1 > String.length s then raise (Bad "truncated byte");
  let v = Char.code s.[!pos] in
  incr pos;
  v

let get_str16 s pos =
  if !pos + 2 > String.length s then raise (Bad "truncated string length");
  let n = (Char.code s.[!pos] lsl 8) lor Char.code s.[!pos + 1] in
  pos := !pos + 2;
  if !pos + n > String.length s then raise (Bad "truncated string");
  let v = String.sub s !pos n in
  pos := !pos + n;
  v

let parse p =
  let len = String.length p in
  let pos = ref 1 in
  let finish msg =
    if !pos <> len then raise (Bad "trailing payload bytes");
    msg
  in
  match p.[0] with
  | 'H' ->
    let token = get_str16 p pos in
    let workload = get_str16 p pos in
    let ack_every = get_i64 p pos in
    finish (Hello { token; workload; ack_every })
  | 'O' ->
    let fresh = get_u8 p pos <> 0 in
    let complete = get_u8 p pos <> 0 in
    let position = get_i64 p pos in
    finish (Hello_ok { fresh; complete; position })
  | 'S' ->
    let retry_after_s = get_f64 p pos in
    let reason = get_str16 p pos in
    finish (Shed { retry_after_s; reason })
  | 'E' -> finish (Err (get_str16 p pos))
  | 'B' ->
    let start = get_i64 p pos in
    let n = get_u32 p pos in
    if n = 0 || n > max_batch then raise (Bad "bad batch count");
    let instr = Array.init n (fun _ -> get_i64 p pos) in
    let addr = Array.init n (fun _ -> get_i64 p pos) in
    let size = Array.init n (fun _ -> get_u32 p pos) in
    let store = Array.init n (fun _ -> get_u8 p pos) in
    finish (Batch { start; chunk = { Batch.instr; addr; size; store; len = n } })
  | 'V' ->
    let position = get_i64 p pos in
    let line = String.sub p !pos (len - !pos) in
    pos := len;
    (match Tf.parse_line line with
    | Ok event -> finish (Ev { position; event })
    | Error e -> raise (Bad ("bad event payload: " ^ e)))
  | 'F' -> finish (Finish { position = get_i64 p pos })
  | 'G' ->
    let position = get_i64 p pos in
    let collected = get_i64 p pos in
    let wild = get_i64 p pos in
    finish (Finish_ok { position; collected; wild })
  | 'A' -> finish (Ack { position = get_i64 p pos })
  | 'P' -> finish Ping
  | 'Q' -> finish Pong
  | c -> raise (Bad (Printf.sprintf "unknown frame tag %C" c))

(* --- incremental decoding ----------------------------------------------- *)

type decoder = { mutable buf : Bytes.t; mutable len : int }

let decoder () = { buf = Bytes.create 4096; len = 0 }

let buffered d = d.len

let feed d src off n =
  if off < 0 || n < 0 || off + n > Bytes.length src then invalid_arg "Wire.feed";
  let need = d.len + n in
  if need > Bytes.length d.buf then begin
    let cap = ref (Bytes.length d.buf) in
    while !cap < need do
      cap := !cap * 2
    done;
    let bigger = Bytes.create !cap in
    Bytes.blit d.buf 0 bigger 0 d.len;
    d.buf <- bigger
  end;
  Bytes.blit src off d.buf d.len n;
  d.len <- d.len + n

let peek_u32 d off = Int32.to_int (Bytes.get_int32_be d.buf off) land 0xFFFFFFFF

let next d =
  if d.len < 4 then Ok None
  else begin
    let n = peek_u32 d 0 in
    if n < 1 || n > max_frame then
      Error (Printf.sprintf "bad frame length %d (max %d)" n max_frame)
    else if d.len < 4 + n + 4 then Ok None
    else begin
      let p = Bytes.sub_string d.buf 4 n in
      let crc = peek_u32 d (4 + n) in
      let total = 8 + n in
      Bytes.blit d.buf total d.buf 0 (d.len - total);
      d.len <- d.len - total;
      if Crc32.string p land 0xFFFFFFFF <> crc then Error "frame CRC mismatch"
      else
        match parse p with
        | msg -> Ok (Some msg)
        | exception Bad e -> Error e
    end
  end
