(** The `ormp serve` daemon: a single-threaded select loop accepting many
    concurrent profiling sessions over {!Wire} frames on a Unix-domain
    socket, multiplexing their compression onto one shared
    {!Pipeline.Pool}, and journaling every session under
    [root/sessions/<token>/] so a killed daemon resumes any in-flight
    session byte-identically when its client reconnects.

    Robustness properties (see DESIGN.md §14 for the full ladder):
    - a malformed, torn or out-of-order frame is a {e protocol error}: the
      offending connection gets an [Err] frame and is closed, its session
      is detached (journal flushed — still resumable), and no other
      session or the daemon itself is disturbed;
    - per-connection deadlines: an idle connection is pinged and then
      dropped, a partially-received frame older than the frame timeout is
      treated as a slow-loris and dropped, and a connection that will not
      accept writes is dropped once its output backlog passes a bound;
    - bounded admission: past [max_sessions], [grammar_budget] or the
      pool-occupancy threshold, new sessions get a [Shed] frame with a
      retry hint instead of service;
    - SIGTERM/SIGINT (or {!stop}) stops accepting, flushes and closes
      every journal, and exits the loop cleanly.

    Introspection (DESIGN.md §15): any connection may send [Stats_req]
    and gets a {!Stats.t} snapshot built from select-loop-owned state
    (never blocking the data path); a flight recorder keeps a bounded
    ring of recent session events and dumps a Chrome-trace + sexp bundle
    under [root/flight/] on every protocol error, deadline kill, shed
    and crash-resume. *)

type options = {
  socket : string;
  root : string;  (** sessions live under [root ^ "/sessions"] *)
  jobs : int;  (** compressor pool size; 1 = inline, no pool *)
  max_sessions : int;  (** concurrent-session admission cap; 0 = unlimited *)
  grammar_budget : int;
      (** total live grammar symbols across sessions above which new
          sessions are shed; 0 = unlimited *)
  max_occupancy : float;
      (** pool-ring occupancy in [0,1] above which new sessions are shed *)
  idle_timeout_s : float;  (** drop a connection silent for this long *)
  frame_timeout_s : float;  (** max age of a partially-received frame *)
  ping_every_s : float;  (** liveness ping cadence on quiet connections *)
  heartbeat_every_s : float;  (** aggregate heartbeat-sample cadence *)
  retry_after_s : float;  (** hint carried by [Shed] frames *)
  leap_budget : int option;  (** per-session LEAP LMAD budget *)
  max_streams : int;  (** per-session LEAP stream cap; 0 = unlimited *)
  stats : bool;
      (** enable the telemetry registry at {!create} so [Stats_req]
          frames get populated snapshots (default true); disable only
          to measure the observability overhead itself *)
  stats_file : string option;
      (** also export the JSON stats snapshot here (atomic rename) at
          heartbeat cadence, for scrapers that cannot speak the wire *)
}

val default_options : socket:string -> root:string -> options

type t

val create : options -> t
(** Bind and listen. Raises [Unix.Unix_error] if the socket path is not
    bindable. *)

val run : ?handle_signals:bool -> t -> unit
(** The event loop; blocks until {!stop} (or, with [handle_signals],
    SIGTERM/SIGINT — which also sets SIGPIPE to ignore). Always returns
    having flushed and closed every live journal and joined the pool. *)

val stop : t -> unit
(** Request a graceful drain-then-exit; safe from any thread or domain
    (self-pipe). *)
