(* The blocking-I/O seam — see the mli. Everything here is written
   against non-blocking descriptors plus select-based waits, so a caller
   always holds a deadline while blocked and EINTR never aborts an
   operation (signal flags are polled by the daemon loop between waits). *)

exception Timeout

let now () = Ormp_util.Clock.now_s ()

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let listen_unix ~path ~backlog =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd backlog;
     Unix.set_nonblock fd
   with e ->
     close_noerr fd;
     raise e);
  fd

let wait ~readable ~writable ~timeout_s =
  let deadline = now () +. timeout_s in
  let rec go () =
    let left = deadline -. now () in
    match Unix.select readable writable [] (Float.max 0.0 left) with
    | r, w, _ -> (r, w)
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      (* A signal landed; give the caller a chance to observe its flag
         once the remaining time is spent, but don't extend the wait. *)
      if now () >= deadline then ([], []) else go ()
  in
  go ()

let connect_unix ~path ~deadline_s =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.set_nonblock fd;
    (try Unix.connect fd (Unix.ADDR_UNIX path) with
    | Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> (
      match wait ~readable:[] ~writable:[ fd ] ~timeout_s:(deadline_s -. now ()) with
      | _, [ _ ] -> (
        match Unix.getsockopt_error fd with
        | None -> ()
        | Some err -> raise (Unix.Unix_error (err, "connect", path)))
      | _ -> raise Timeout));
    fd
  with e ->
    close_noerr fd;
    raise e

let accept_nonblock fd =
  match Unix.accept ~cloexec:true fd with
  | conn, _ ->
    Unix.set_nonblock conn;
    Some conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> None

let read_nonblock fd buf =
  match Unix.read fd buf 0 (Bytes.length buf) with
  | 0 -> `Eof
  | n -> `Read n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> `Again
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> `Eof

let write_nonblock fd buf off len =
  match Unix.write fd buf off len with
  | n -> n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> 0

let recv_into fd buf ~deadline_s =
  let rec go () =
    match read_nonblock fd buf with
    | `Read n -> n
    | `Eof -> 0
    | `Again -> (
      match wait ~readable:[ fd ] ~writable:[] ~timeout_s:(deadline_s -. now ()) with
      | [ _ ], _ -> go ()
      | _ -> if now () >= deadline_s then raise Timeout else go ())
  in
  go ()

let send_all fd s ~deadline_s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    (match write_nonblock fd b !off (len - !off) with
    | 0 -> (
      match wait ~readable:[] ~writable:[ fd ] ~timeout_s:(deadline_s -. now ()) with
      | _, [ _ ] -> ()
      | _ -> if now () >= deadline_s then raise Timeout)
    | n -> off := !off + n);
    if !off < len && now () >= deadline_s then raise Timeout
  done

let send_prefix fd s n ~deadline_s = send_all fd (String.sub s 0 n) ~deadline_s

(* lint:allow blocking-io — bounded by the explicit cap; the backoff seam. *)
let sleep s = if s > 0.0 then Unix.sleepf (Float.min s 60.0)

let send_slow fd s ~chunk ~delay_s ~deadline_s =
  let chunk = max 1 chunk in
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    let n = min chunk (len - !off) in
    send_all fd (String.sub s !off n) ~deadline_s;
    off := !off + n;
    if !off < len then sleep delay_s
  done
