(* The select-loop daemon — see the mli. Single producer thread: every
   journal append and pipeline apply happens here, so per-session state
   needs no locking; only the compressor pool runs on other domains,
   behind the Worker drain barrier. *)

module Journal = Ormp_session.Journal
module Event = Ormp_trace.Event
module Log = Ormp_telemetry.Log
module Tm = Ormp_telemetry.Telemetry
module Hb = Ormp_telemetry.Heartbeat
module S = Ormp_util.Sexp

let ( // ) = Filename.concat

let m_sessions = Tm.Metrics.counter "serve.sessions"
let m_frames = Tm.Metrics.counter "serve.frames"
let m_sheds = Tm.Metrics.counter "serve.sheds"
let m_proto_errors = Tm.Metrics.counter "serve.protocol_errors"
let m_stats_requests = Tm.Metrics.counter "serve.stats_requests"
let m_hb_dropped = Tm.Metrics.counter "daemon.heartbeat.dropped"
let m_ack_flush = Tm.Metrics.histogram "serve.ack_flush_ns"

type options = {
  socket : string;
  root : string;
  jobs : int;
  max_sessions : int;
  grammar_budget : int;
  max_occupancy : float;
  idle_timeout_s : float;
  frame_timeout_s : float;
  ping_every_s : float;
  heartbeat_every_s : float;
  retry_after_s : float;
  leap_budget : int option;
  max_streams : int;
  stats : bool;
  stats_file : string option;
}

let default_options ~socket ~root =
  {
    socket;
    root;
    jobs = 1;
    max_sessions = 64;
    grammar_budget = 0;
    max_occupancy = 0.95;
    idle_timeout_s = 30.0;
    frame_timeout_s = 5.0;
    ping_every_s = 5.0;
    heartbeat_every_s = 1.0;
    retry_after_s = 0.05;
    leap_budget = None;
    max_streams = 0;
    stats = true;
    stats_file = None;
  }

type session = {
  token : string;
  dir : string;
  workload : string;
  pipe : Pipeline.t;
  journal : Journal.writer;
  ack_every : int;
  mutable frames_since_ack : int;
  (* Introspection state, all owned by the select loop. *)
  ack_ns : Tm.Metrics.Local.t;  (* ack-flush latency, ns *)
  mutable durable : int;  (* Journal.count at the last flush *)
  mutable rate : float;  (* events/s over the last rate window *)
  mutable rate_last_pos : int;
  mutable rate_last_s : float;
  mutable cached_symbols : int;  (* grammar size; refreshed at heartbeat *)
}

type conn = {
  fd : Unix.file_descr;
  dec : Wire.decoder;
  outq : string Queue.t;
  mutable out_off : int;  (* bytes of the queue head already written *)
  mutable out_bytes : int;  (* total unsent bytes across the queue *)
  mutable sess : session option;
  mutable last_recv : float;
  mutable last_ping : float;
  mutable frame_since : float;  (* start of the current partial frame; 0 = none *)
  mutable closing : bool;  (* close once the out queue drains *)
  mutable close_by : float;  (* give a closing conn this long to drain *)
  mutable dead : bool;
}

type t = {
  opts : options;
  listen_fd : Unix.file_descr;
  pool : Pipeline.Pool.t option;
  sessions : (string, session) Hashtbl.t;  (* attached (conn-bound) only *)
  mutable conns : conn list;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  mutable stopping : bool;
  mutable next_slot : int;
  mutable shed_count : int;
  mutable total_events : int;
  start_s : float;
  mutable hb_last_s : float;
  mutable hb_last_events : int;
  (* Introspection state. *)
  flight : Ormp_telemetry.Flight.t;
  mutable sessions_started : int;
  mutable sessions_resumed : int;
  mutable proto_errors : int;
  mutable deadline_kills : int;
  mutable out_hw : int;  (* high water of total unsent output bytes *)
  mutable flight_dumps : int;
  mutable flight_dumps_suppressed : int;
  mutable hb_dropped : int;
  mutable hb_drop_warned : bool;
  mutable rate : float;  (* daemon-wide events/s over the last window *)
  mutable rate_last_events : int;
  mutable rate_last_s : float;
  mutable stats_last_s : float;  (* last --stats-file export *)
}

let rec mkdirs path =
  if path = "" || path = "." || Sys.file_exists path then ()
  else begin
    mkdirs (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create opts =
  mkdirs (opts.root // "sessions");
  (* The stats channel reads the telemetry registry; a daemon that
     serves Stats frames must have it recording. *)
  if opts.stats then Tm.enable ();
  let listen_fd = Net_io.listen_unix ~path:opts.socket ~backlog:64 in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock stop_r;
  {
    opts;
    listen_fd;
    pool = (if opts.jobs > 1 then Some (Pipeline.Pool.spawn ~jobs:opts.jobs) else None);
    sessions = Hashtbl.create 64;
    conns = [];
    stop_r;
    stop_w;
    stopping = false;
    next_slot = 0;
    shed_count = 0;
    total_events = 0;
    start_s = Net_io.now ();
    hb_last_s = Net_io.now ();
    hb_last_events = 0;
    flight = Ormp_telemetry.Flight.create ();
    sessions_started = 0;
    sessions_resumed = 0;
    proto_errors = 0;
    deadline_kills = 0;
    out_hw = 0;
    flight_dumps = 0;
    flight_dumps_suppressed = 0;
    hb_dropped = 0;
    hb_drop_warned = false;
    rate = 0.0;
    rate_last_events = 0;
    rate_last_s = Net_io.now ();
    stats_last_s = Net_io.now ();
  }

let stop t = try ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1) with Unix.Unix_error _ -> ()

(* --- flight recorder ---------------------------------------------------- *)

module Flight = Ormp_telemetry.Flight

(* A fault storm must not turn the flight directory into its own outage:
   past this many bundles we keep counting but stop writing. *)
let max_flight_dumps = 64

let flight_record t ~kind ~session ~detail = Flight.record t.flight ~kind ~session ~detail

let conn_session c = match c.sess with Some s -> s.token | None -> ""

(* Dump the ring as a post-mortem bundle under root/flight/. Called at
   every fault class the protocol can produce: protocol errors, deadline
   kills, sheds, crash-resumes. *)
let flight_dump t ~kind ~session ~reason =
  flight_record t ~kind ~session ~detail:reason;
  if t.flight_dumps >= max_flight_dumps then
    t.flight_dumps_suppressed <- t.flight_dumps_suppressed + 1
  else begin
    let name =
      Printf.sprintf "%03d-%s-%s" t.flight_dumps kind
        (if session = "" then "daemon" else session)
    in
    let dir = t.opts.root // "flight" // name in
    match Flight.dump t.flight ~dir ~reason with
    | Ok () -> t.flight_dumps <- t.flight_dumps + 1
    | Error e ->
      t.flight_dumps_suppressed <- t.flight_dumps_suppressed + 1;
      Log.warnf ~src:"serve" "flight dump %s failed: %s" name e
  end

(* --- output queue ------------------------------------------------------- *)

(* Unsent output above this bound means the peer has stopped reading
   while we keep producing — the write-side slow-loris. *)
let max_out_bytes = 4 * 1024 * 1024

let total_out_bytes t =
  List.fold_left (fun acc c -> if c.dead then acc else acc + c.out_bytes) 0 t.conns

let send t c msg =
  let s = Wire.encode msg in
  Queue.add s c.outq;
  c.out_bytes <- c.out_bytes + String.length s;
  if c.out_bytes > max_out_bytes && not c.dead then begin
    c.dead <- true;
    t.deadline_kills <- t.deadline_kills + 1;
    flight_dump t ~kind:"backlog-kill" ~session:(conn_session c)
      ~reason:
        (Printf.sprintf "output backlog %d exceeds %d bytes (peer stopped reading)"
           c.out_bytes max_out_bytes)
  end;
  let total = total_out_bytes t in
  if total > t.out_hw then t.out_hw <- total

let flush_out c =
  try
    let progress = ref true in
    while (not (Queue.is_empty c.outq)) && !progress do
      let head = Queue.peek c.outq in
      let len = String.length head - c.out_off in
      let n =
        Net_io.write_nonblock c.fd (Bytes.unsafe_of_string head) c.out_off len
      in
      c.out_bytes <- c.out_bytes - n;
      if n = len then begin
        ignore (Queue.pop c.outq);
        c.out_off <- 0
      end
      else begin
        c.out_off <- c.out_off + n;
        progress := n > 0
      end
    done
  with Unix.Unix_error _ -> c.dead <- true

(* --- session lifecycle -------------------------------------------------- *)

let session_dir t token = t.opts.root // "sessions" // token

let token_ok token =
  token <> ""
  && String.length token <= 128
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_' || c = '.')
       token
  && token.[0] <> '.'

let write_report s =
  let body =
    S.field "ormp-serve-report"
      [
        S.field "workload" [ S.atom s.workload ];
        S.field "position" [ S.int (Pipeline.position s.pipe) ];
        S.field "collected" [ S.int (Pipeline.collected s.pipe) ];
        S.field "wild" [ S.int (Pipeline.wild s.pipe) ];
      ]
  in
  Ormp_session.Storage.write_atomic ~path:(s.dir // "report") (S.to_string body ^ "\n")

(* Detach a session from its (dying) connection: flush what the journal
   holds and forget the in-memory state. The next Hello with this token
   rebuilds it from the journal — the same recovery a daemon restart
   performs, so both paths stay exercised. *)
let detach t c =
  match c.sess with
  | None -> ()
  | Some s ->
    c.sess <- None;
    Hashtbl.remove t.sessions s.token;
    flight_record t ~kind:"detach" ~session:s.token
      ~detail:(Printf.sprintf "position %d" (Pipeline.position s.pipe));
    (try Pipeline.quiesce s.pipe with _ -> ());
    (try
       Journal.flush s.journal;
       Journal.close s.journal
     with _ -> ())

let kill_conn t c =
  c.dead <- true;
  detach t c

let protocol_error ?(kind = "proto-error") t c msg =
  if Tm.on () then Tm.Metrics.incr m_proto_errors;
  t.proto_errors <- t.proto_errors + 1;
  Log.warnf ~src:"serve" "protocol error%s: %s"
    (match c.sess with Some s -> " (session " ^ s.token ^ ")" | None -> "")
    msg;
  flight_dump t ~kind ~session:(conn_session c) ~reason:msg;
  send t c (Wire.Err msg);
  detach t c;
  (* Let the Err frame drain briefly, then close regardless. *)
  c.closing <- true;
  c.close_by <- Net_io.now () +. 1.0

let shed t c ~token reason =
  t.shed_count <- t.shed_count + 1;
  if Tm.on () then Tm.Metrics.incr m_sheds;
  Log.infof ~src:"serve" "shedding session: %s" reason;
  flight_dump t ~kind:"shed" ~session:token ~reason;
  send t c (Wire.Shed { retry_after_s = t.opts.retry_after_s; reason });
  c.closing <- true;
  c.close_by <- Net_io.now () +. 1.0

let new_pipeline t =
  let pool =
    match t.pool with
    | None -> None
    | Some p ->
      let slot = t.next_slot in
      t.next_slot <- t.next_slot + 1;
      Some (p, slot)
  in
  Pipeline.create ?pool
    ?leap_budget:t.opts.leap_budget
    ~max_streams:t.opts.max_streams ()

(* Admission control, cheapest check first. The grammar-budget check
   reads live grammars, which requires the pool drained; admission is
   rare relative to frames, so the barrier is affordable. *)
let admission_refusal t =
  let o = t.opts in
  if o.max_sessions > 0 && Hashtbl.length t.sessions >= o.max_sessions then
    Some (Printf.sprintf "session limit (%d) reached" o.max_sessions)
  else
    match t.pool with
    | Some p when Pipeline.Pool.occupancy p > o.max_occupancy ->
      Some "compressor pool saturated"
    | _ ->
      if o.grammar_budget > 0 then begin
        (match t.pool with Some p -> Pipeline.Pool.drain p | None -> ());
        let total =
          Hashtbl.fold (fun _ s acc -> acc + Pipeline.grammar_symbols s.pipe) t.sessions 0
        in
        if total > o.grammar_budget then
          Some (Printf.sprintf "grammar budget exceeded (%d > %d symbols)" total o.grammar_budget)
        else None
      end
      else None

let handle_hello t c ~token ~workload ~ack_every =
  if c.sess <> None then protocol_error t c "duplicate Hello on one connection"
  else if not (token_ok token) then protocol_error t c "invalid session token"
  else begin
    let dir = session_dir t token in
    if Sys.file_exists (dir // "report") then
      (* Finalized earlier; the Finish_ok may have been lost in a crash —
         at-most-once means we must not re-ingest. *)
      send t c (Wire.Hello_ok { fresh = false; complete = true; position = 0 })
    else if Hashtbl.mem t.sessions token then begin
      (* A live connection owns this token. Refuse the newcomer; if the
         old connection is actually dead, its idle timeout frees the
         token and the client's retry gets through. *)
      send t c (Wire.Err "session busy");
      c.closing <- true;
      c.close_by <- Net_io.now () +. 1.0
    end
    else if t.stopping then shed t c ~token "draining for shutdown"
    else
      match admission_refusal t with
      | Some reason -> shed t c ~token reason
      | None -> (
        let journal_path = dir // "journal.trace" in
        let resume = Sys.file_exists journal_path in
        let now = Net_io.now () in
        let make_session pipe journal =
          {
            token;
            dir;
            workload;
            pipe;
            journal;
            ack_every;
            frames_since_ack = 0;
            ack_ns = Tm.Metrics.Local.create ();
            durable = 0;
            rate = 0.0;
            rate_last_pos = Pipeline.position pipe;
            rate_last_s = now;
            cached_symbols = 0;
          }
        in
        let attach s position fresh =
          Hashtbl.replace t.sessions token s;
          c.sess <- Some s;
          if Tm.on () then Tm.Metrics.incr m_sessions;
          (* The position we report must be durable before the client can
             trust it as a resume point. *)
          Journal.flush s.journal;
          s.durable <- Journal.count s.journal;
          send t c (Wire.Hello_ok { fresh; complete = false; position })
        in
        if not resume then begin
          mkdirs dir;
          Ormp_session.Storage.write_atomic ~path:(dir // "manifest")
            (S.to_string (S.field "ormp-serve-session" [ S.field "workload" [ S.atom workload ] ])
            ^ "\n");
          let s = make_session (new_pipeline t) (Journal.create journal_path) in
          t.sessions_started <- t.sessions_started + 1;
          flight_record t ~kind:"hello" ~session:token ~detail:workload;
          attach s 0 true
        end
        else
          match Journal.recover journal_path with
          | Error e -> protocol_error t c (Printf.sprintf "session %s unrecoverable: %s" token e)
          | Ok r -> (
            let pipe = new_pipeline t in
            Array.iter (fun ev -> Pipeline.apply pipe ev) r.Journal.events;
            Pipeline.quiesce pipe;
            match Pipeline.failure pipe with
            | Some e ->
              protocol_error t c
                (Printf.sprintf "session %s replay failed: %s" token (Printexc.to_string e))
            | None ->
              let count = Array.length r.Journal.events in
              t.total_events <- t.total_events + count;
              let s =
                make_session pipe (Journal.create ~resume:(count, r.Journal.r_crc) journal_path)
              in
              Log.infof ~src:"serve" "resumed session %s at position %d%s" token count
                (if r.Journal.truncated then " (torn tail truncated)" else "");
              t.sessions_resumed <- t.sessions_resumed + 1;
              (* A resume means the previous attachment ended abnormally
                 (crash, kill, torn connection) — exactly when the recent
                 event trail is worth keeping. *)
              flight_dump t ~kind:"resume" ~session:token
                ~reason:
                  (Printf.sprintf "resumed at position %d%s" count
                     (if r.Journal.truncated then " (torn tail truncated)" else ""));
              attach s count false))
  end

(* Apply the new suffix of a frame that claims to start at [start]. A
   start beyond our position is a gap (protocol error — the client and
   we disagree about durable history); a start before it is the overlap
   a duplicated retry produces, and the overlap is dropped exactly. *)
let ingest t c s ~start ~count ~event_at =
  let pos = Pipeline.position s.pipe in
  if start > pos then begin
    protocol_error t c
      (Printf.sprintf "position gap: frame starts at %d, session is at %d" start pos);
    false
  end
  else begin
    let skip = pos - start in
    (try
       for i = skip to count - 1 do
         let ev = event_at i in
         Journal.append s.journal ev;
         Pipeline.apply s.pipe ev;
         t.total_events <- t.total_events + 1
       done;
       true
     with e ->
       protocol_error t c
         (Printf.sprintf "ingest failed at position %d: %s" (Pipeline.position s.pipe)
            (Printexc.to_string e));
       false)
  end

let after_frame t c s =
  s.frames_since_ack <- s.frames_since_ack + 1;
  if s.ack_every > 0 && s.frames_since_ack >= s.ack_every then begin
    s.frames_since_ack <- 0;
    (* Ack only durable positions. The flush is the daemon's durability
       wait, so its latency is what a client perceives as ack latency —
       observed per session (for the stats rows) and daemon-wide. *)
    let t0 = Tm.now_ns () in
    Journal.flush s.journal;
    let dt = Int64.to_float (Int64.sub (Tm.now_ns ()) t0) in
    Tm.Metrics.Local.observe s.ack_ns dt;
    if Tm.on () then Tm.Metrics.observe m_ack_flush dt;
    s.durable <- Journal.count s.journal;
    send t c (Wire.Ack { position = Pipeline.position s.pipe })
  end

let handle_finish t c s ~position =
  if position <> Pipeline.position s.pipe then
    protocol_error t c
      (Printf.sprintf "finish at %d but session is at %d" position (Pipeline.position s.pipe))
  else begin
    match
      Journal.flush s.journal;
      Pipeline.finalize s.pipe ~dir:s.dir ~elapsed:0.0
    with
    | () ->
      write_report s;
      Journal.close s.journal;
      Hashtbl.remove t.sessions s.token;
      c.sess <- None;
      flight_record t ~kind:"finish" ~session:s.token
        ~detail:(Printf.sprintf "position %d" (Pipeline.position s.pipe));
      send t c
        (Wire.Finish_ok
           {
             position = Pipeline.position s.pipe;
             collected = Pipeline.collected s.pipe;
             wild = Pipeline.wild s.pipe;
           })
    | exception e ->
      protocol_error t c (Printf.sprintf "finalize failed: %s" (Printexc.to_string e))
  end

(* --- the stats snapshot -------------------------------------------------- *)

(* Events/s windows update lazily, only when asked and only once the
   window is wide enough to mean something; a poller faster than the
   window just reads the previous figure. *)
let rate_window_s = 0.2

let session_rate (s : session) ~now =
  let dt = now -. s.rate_last_s in
  if dt >= rate_window_s then begin
    let pos = Pipeline.position s.pipe in
    s.rate <- float_of_int (pos - s.rate_last_pos) /. dt;
    s.rate_last_pos <- pos;
    s.rate_last_s <- now
  end;
  s.rate

let daemon_rate t ~now =
  let dt = now -. t.rate_last_s in
  if dt >= rate_window_s then begin
    t.rate <- float_of_int (t.total_events - t.rate_last_events) /. dt;
    t.rate_last_events <- t.total_events;
    t.rate_last_s <- now
  end;
  t.rate

(* Everything here is a plain read of select-loop-owned state — no pool
   drain, no blocking, so serving Stats cannot stall the data path. The
   one aggregate that would need a drain (grammar symbols) is served
   from the per-session cache the heartbeat refreshes; with the pool
   disabled it is exact. *)
let build_snapshot t =
  let now = Net_io.now () in
  let ms_of_ns ns = ns /. 1e6 in
  let rows, nrows =
    Hashtbl.fold
      (fun _ s (acc, n) ->
        if n >= Wire.max_stats_rows then (acc, n + 1)
        else
          let position = Pipeline.position s.pipe in
          let p50, p99 =
            match Tm.Metrics.Local.summary s.ack_ns with
            | None -> (0.0, 0.0)
            | Some h -> (ms_of_ns h.Tm.Metrics.p50, ms_of_ns h.Tm.Metrics.p99)
          in
          let row =
            {
              Stats.r_token = s.token;
              (* Workload names come from the client; cap them so no
                 Hello can inflate the Stats frame. *)
              r_workload =
                (if String.length s.workload > 64 then String.sub s.workload 0 64
                 else s.workload);
              r_position = position;
              r_journal_bytes = Journal.bytes s.journal;
              r_journal_lag = max 0 (position - s.durable);
              r_events_per_sec = session_rate s ~now;
              r_ack_p50_ms = p50;
              r_ack_p99_ms = p99;
              r_ring_occupancy = Pipeline.occupancy s.pipe;
            }
          in
          (row :: acc, n + 1))
      t.sessions ([], 0)
  in
  let sum f = Hashtbl.fold (fun _ s acc -> acc + f s) t.sessions 0 in
  let counters, gauges, hists =
    if Tm.on () then
      let snap = Tm.Metrics.snapshot () in
      ( snap.Tm.Metrics.snap_counters,
        snap.Tm.Metrics.snap_gauges,
        snap.Tm.Metrics.snap_hists )
    else ([], [], [])
  in
  {
    Stats.s_wall_s = now -. t.start_s;
    s_events_per_sec = daemon_rate t ~now;
    s_pool_occupancy =
      (match t.pool with Some p -> Pipeline.Pool.occupancy p | None -> 0.0);
    s_sessions_live = Hashtbl.length t.sessions;
    s_sessions_started = t.sessions_started;
    s_sessions_resumed = t.sessions_resumed;
    s_sheds = t.shed_count;
    s_protocol_errors = t.proto_errors;
    s_deadline_kills = t.deadline_kills;
    s_events_total = t.total_events;
    s_wal_bytes = sum (fun s -> Journal.bytes s.journal);
    s_out_backlog = total_out_bytes t;
    s_out_backlog_hw = t.out_hw;
    s_grammar_symbols =
      (match t.pool with
      | None -> sum (fun s -> Pipeline.grammar_symbols s.pipe)
      | Some _ -> sum (fun s -> s.cached_symbols));
    s_grammar_budget = t.opts.grammar_budget;
    s_flight_events = Flight.recorded t.flight;
    s_flight_dropped = Flight.dropped t.flight;
    s_flight_dumps = t.flight_dumps;
    s_rows_truncated = nrows > Wire.max_stats_rows;
    s_rows = rows;
    s_counters = counters;
    s_gauges = gauges;
    s_hists = hists;
  }

let handle_msg t c (msg : Wire.msg) =
  if Tm.on () then Tm.Metrics.incr m_frames;
  match msg with
  | Hello { token; workload; ack_every } -> handle_hello t c ~token ~workload ~ack_every
  | Ping -> send t c Wire.Pong
  | Pong -> ()
  | Stats_req ->
    (* Any connection may ask, session or not — a monitor need not own a
       session, and answering costs only select-loop-owned reads. *)
    if Tm.on () then Tm.Metrics.incr m_stats_requests;
    send t c (Wire.Stats (build_snapshot t))
  | Batch { start; chunk } -> (
    match c.sess with
    | None -> protocol_error t c "Batch before Hello"
    | Some s ->
      let event_at i =
        Event.Access
          {
            instr = chunk.Ormp_trace.Batch.instr.(i);
            addr = chunk.Ormp_trace.Batch.addr.(i);
            size = chunk.Ormp_trace.Batch.size.(i);
            is_store = chunk.Ormp_trace.Batch.store.(i) <> 0;
          }
      in
      if ingest t c s ~start ~count:chunk.Ormp_trace.Batch.len ~event_at then after_frame t c s)
  | Ev { position; event } -> (
    match c.sess with
    | None -> protocol_error t c "Ev before Hello"
    | Some s ->
      if ingest t c s ~start:position ~count:1 ~event_at:(fun _ -> event) then after_frame t c s)
  | Finish { position } -> (
    match c.sess with
    | None -> protocol_error t c "Finish before Hello"
    | Some s -> handle_finish t c s ~position)
  | Hello_ok _ | Shed _ | Err _ | Finish_ok _ | Ack _ | Stats _ ->
    protocol_error t c "unexpected server-side frame from client"

(* --- the event loop ----------------------------------------------------- *)

let read_conn t ~scratch c =
  match Net_io.read_nonblock c.fd scratch with
  | `Again -> ()
  | `Eof -> kill_conn t c
  | `Read n ->
    c.last_recv <- Net_io.now ();
    Wire.feed c.dec scratch 0 n;
    let continue = ref true in
    while !continue && not c.dead && not c.closing do
      match Wire.next c.dec with
      | Ok None -> continue := false
      | Ok (Some msg) -> handle_msg t c msg
      | Error e ->
        protocol_error t c e;
        continue := false
    done;
    c.frame_since <-
      (if Wire.buffered c.dec > 0 then
         if c.frame_since = 0.0 then Net_io.now () else c.frame_since
       else 0.0)

let heartbeat t =
  let now = Net_io.now () in
  (match t.pool with Some p -> Pipeline.Pool.drain p | None -> ());
  (* The pool is drained right now — the one moment grammar sizes may be
     read — so refresh the per-session caches the stats snapshot serves
     between heartbeats. *)
  Hashtbl.iter
    (fun _ s -> s.cached_symbols <- Pipeline.grammar_symbols s.pipe)
    t.sessions;
  let sum f = Hashtbl.fold (fun _ s acc -> acc + f s) t.sessions 0 in
  let dt = now -. t.hb_last_s in
  let sample =
    {
      Hb.wall_s = now -. t.start_s;
      position = t.total_events;
      events_per_sec =
        (if dt > 0.0 then float_of_int (t.total_events - t.hb_last_events) /. dt else 0.0);
      live_objects = sum (fun s -> Pipeline.live_objects s.pipe);
      grammar_symbols = sum (fun s -> s.cached_symbols);
      leap_streams = sum (fun s -> Pipeline.leap_streams s.pipe);
      journal_bytes = sum (fun s -> Journal.bytes s.journal);
      snapshot_bytes = 0;
      last_checkpoint = 0;
      degraded =
        (if t.stopping then [ "draining" ] else [])
        @ (if t.shed_count > 0 then [ "shed" ] else []);
    }
  in
  t.hb_last_s <- now;
  t.hb_last_events <- t.total_events;
  try Hb.append (t.opts.root // "heartbeat") sample
  with Sys_error e ->
    (* A monitoring write must never take the daemon down, but it must
       not vanish either: count every drop, warn once. *)
    t.hb_dropped <- t.hb_dropped + 1;
    if Tm.on () then Tm.Metrics.incr m_hb_dropped;
    flight_record t ~kind:"heartbeat-drop" ~session:"" ~detail:e;
    if not t.hb_drop_warned then begin
      t.hb_drop_warned <- true;
      Log.warnf ~src:"serve" "heartbeat append failed (%s); counting further drops" e
    end

let export_stats_file t ~now =
  match t.opts.stats_file with
  | None -> ()
  | Some path ->
    let every =
      if t.opts.heartbeat_every_s > 0.0 then t.opts.heartbeat_every_s else 1.0
    in
    if now -. t.stats_last_s >= every then begin
      t.stats_last_s <- now;
      let json = Ormp_util.Json.to_string (Stats.to_json (build_snapshot t)) in
      try Ormp_session.Storage.write_atomic ~path (json ^ "\n")
      with Sys_error e -> Log.warnf ~src:"serve" "stats export failed: %s" e
    end

let timers t =
  let now = Net_io.now () in
  let o = t.opts in
  List.iter
    (fun c ->
      if not c.dead then begin
        if c.closing then begin
          if Queue.is_empty c.outq || now >= c.close_by then c.dead <- true
        end
        else if c.frame_since > 0.0 && now -. c.frame_since > o.frame_timeout_s then begin
          t.deadline_kills <- t.deadline_kills + 1;
          protocol_error ~kind:"deadline-kill" t c
            "frame deadline exceeded (slow or torn sender)"
        end
        else if now -. c.last_recv > o.idle_timeout_s then begin
          (* Idle sessionless connections (parked monitors) die quietly;
             an idle *session* is a deadline kill worth a post-mortem. *)
          if c.sess <> None then begin
            t.deadline_kills <- t.deadline_kills + 1;
            flight_dump t ~kind:"deadline-kill" ~session:(conn_session c)
              ~reason:
                (Printf.sprintf "idle for %.1fs (timeout %.1fs)" (now -. c.last_recv)
                   o.idle_timeout_s)
          end;
          kill_conn t c
        end
        else if
          now -. c.last_recv > o.ping_every_s && now -. c.last_ping > o.ping_every_s
        then begin
          c.last_ping <- now;
          send t c Wire.Ping
        end
      end)
    t.conns;
  if o.heartbeat_every_s > 0.0 && now -. t.hb_last_s >= o.heartbeat_every_s then heartbeat t;
  export_stats_file t ~now

let reap t =
  let dead, live = List.partition (fun c -> c.dead) t.conns in
  List.iter
    (fun c ->
      detach t c;
      Net_io.close_noerr c.fd)
    dead;
  t.conns <- live

let shutdown t =
  Log.infof ~src:"serve" "draining %d session(s) for shutdown" (Hashtbl.length t.sessions);
  List.iter (fun c -> kill_conn t c) t.conns;
  reap t;
  (match t.pool with Some p -> Pipeline.Pool.stop p | None -> ());
  Net_io.close_noerr t.listen_fd;
  Net_io.close_noerr t.stop_r;
  Net_io.close_noerr t.stop_w;
  (try Unix.unlink t.opts.socket with Unix.Unix_error _ -> ())

let run ?(handle_signals = false) t =
  (* A peer can close at any instant between our select and our write; a
     select-loop server must see that as EPIPE on the one connection, not
     a process-fatal signal. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if handle_signals then begin
    let request _ = stop t in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request)
  end;
  Log.infof ~src:"serve" "listening on %s (root %s, jobs %d)" t.opts.socket t.opts.root
    t.opts.jobs;
  let scratch = Bytes.create 65536 in
  let tick = 0.1 in
  while not t.stopping do
    let readable =
      t.stop_r :: t.listen_fd :: List.map (fun c -> c.fd) (List.filter (fun c -> not c.dead) t.conns)
    in
    let writable =
      List.filter_map
        (fun c -> if (not c.dead) && not (Queue.is_empty c.outq) then Some c.fd else None)
        t.conns
    in
    let r, w = Net_io.wait ~readable ~writable ~timeout_s:tick in
    if List.mem t.stop_r r then t.stopping <- true
    else begin
      if List.mem t.listen_fd r then begin
        let more = ref true in
        while !more do
          match Net_io.accept_nonblock t.listen_fd with
          | None -> more := false
          | Some fd ->
            let now = Net_io.now () in
            t.conns <-
              {
                fd;
                dec = Wire.decoder ();
                outq = Queue.create ();
                out_off = 0;
                out_bytes = 0;
                sess = None;
                last_recv = now;
                last_ping = now;
                frame_since = 0.0;
                closing = false;
                close_by = 0.0;
                dead = false;
              }
              :: t.conns
        done
      end;
      List.iter (fun c -> if (not c.dead) && List.memq c.fd r then read_conn t ~scratch c) t.conns;
      List.iter (fun c -> if (not c.dead) && List.memq c.fd w then flush_out c) t.conns;
      (* Opportunistic flush for freshly queued replies. *)
      List.iter (fun c -> if (not c.dead) && not (Queue.is_empty c.outq) then flush_out c) t.conns;
      timers t;
      reap t
    end
  done;
  shutdown t
