(* The select-loop daemon — see the mli. Single producer thread: every
   journal append and pipeline apply happens here, so per-session state
   needs no locking; only the compressor pool runs on other domains,
   behind the Worker drain barrier. *)

module Journal = Ormp_session.Journal
module Event = Ormp_trace.Event
module Log = Ormp_telemetry.Log
module Tm = Ormp_telemetry.Telemetry
module Hb = Ormp_telemetry.Heartbeat
module S = Ormp_util.Sexp

let ( // ) = Filename.concat

let m_sessions = Tm.Metrics.counter "serve.sessions"
let m_frames = Tm.Metrics.counter "serve.frames"
let m_sheds = Tm.Metrics.counter "serve.sheds"
let m_proto_errors = Tm.Metrics.counter "serve.protocol_errors"

type options = {
  socket : string;
  root : string;
  jobs : int;
  max_sessions : int;
  grammar_budget : int;
  max_occupancy : float;
  idle_timeout_s : float;
  frame_timeout_s : float;
  ping_every_s : float;
  heartbeat_every_s : float;
  retry_after_s : float;
  leap_budget : int option;
  max_streams : int;
}

let default_options ~socket ~root =
  {
    socket;
    root;
    jobs = 1;
    max_sessions = 64;
    grammar_budget = 0;
    max_occupancy = 0.95;
    idle_timeout_s = 30.0;
    frame_timeout_s = 5.0;
    ping_every_s = 5.0;
    heartbeat_every_s = 1.0;
    retry_after_s = 0.05;
    leap_budget = None;
    max_streams = 0;
  }

type session = {
  token : string;
  dir : string;
  workload : string;
  pipe : Pipeline.t;
  journal : Journal.writer;
  ack_every : int;
  mutable frames_since_ack : int;
}

type conn = {
  fd : Unix.file_descr;
  dec : Wire.decoder;
  outq : string Queue.t;
  mutable out_off : int;  (* bytes of the queue head already written *)
  mutable out_bytes : int;  (* total unsent bytes across the queue *)
  mutable sess : session option;
  mutable last_recv : float;
  mutable last_ping : float;
  mutable frame_since : float;  (* start of the current partial frame; 0 = none *)
  mutable closing : bool;  (* close once the out queue drains *)
  mutable close_by : float;  (* give a closing conn this long to drain *)
  mutable dead : bool;
}

type t = {
  opts : options;
  listen_fd : Unix.file_descr;
  pool : Pipeline.Pool.t option;
  sessions : (string, session) Hashtbl.t;  (* attached (conn-bound) only *)
  mutable conns : conn list;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  mutable stopping : bool;
  mutable next_slot : int;
  mutable shed_count : int;
  mutable total_events : int;
  start_s : float;
  mutable hb_last_s : float;
  mutable hb_last_events : int;
}

let rec mkdirs path =
  if path = "" || path = "." || Sys.file_exists path then ()
  else begin
    mkdirs (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create opts =
  mkdirs (opts.root // "sessions");
  let listen_fd = Net_io.listen_unix ~path:opts.socket ~backlog:64 in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock stop_r;
  {
    opts;
    listen_fd;
    pool = (if opts.jobs > 1 then Some (Pipeline.Pool.spawn ~jobs:opts.jobs) else None);
    sessions = Hashtbl.create 64;
    conns = [];
    stop_r;
    stop_w;
    stopping = false;
    next_slot = 0;
    shed_count = 0;
    total_events = 0;
    start_s = Net_io.now ();
    hb_last_s = Net_io.now ();
    hb_last_events = 0;
  }

let stop t = try ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1) with Unix.Unix_error _ -> ()

(* --- output queue ------------------------------------------------------- *)

(* Unsent output above this bound means the peer has stopped reading
   while we keep producing — the write-side slow-loris. *)
let max_out_bytes = 4 * 1024 * 1024

let send c msg =
  let s = Wire.encode msg in
  Queue.add s c.outq;
  c.out_bytes <- c.out_bytes + String.length s;
  if c.out_bytes > max_out_bytes then c.dead <- true

let flush_out c =
  try
    let progress = ref true in
    while (not (Queue.is_empty c.outq)) && !progress do
      let head = Queue.peek c.outq in
      let len = String.length head - c.out_off in
      let n =
        Net_io.write_nonblock c.fd (Bytes.unsafe_of_string head) c.out_off len
      in
      c.out_bytes <- c.out_bytes - n;
      if n = len then begin
        ignore (Queue.pop c.outq);
        c.out_off <- 0
      end
      else begin
        c.out_off <- c.out_off + n;
        progress := n > 0
      end
    done
  with Unix.Unix_error _ -> c.dead <- true

(* --- session lifecycle -------------------------------------------------- *)

let session_dir t token = t.opts.root // "sessions" // token

let token_ok token =
  token <> ""
  && String.length token <= 128
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_' || c = '.')
       token
  && token.[0] <> '.'

let write_report s =
  let body =
    S.field "ormp-serve-report"
      [
        S.field "workload" [ S.atom s.workload ];
        S.field "position" [ S.int (Pipeline.position s.pipe) ];
        S.field "collected" [ S.int (Pipeline.collected s.pipe) ];
        S.field "wild" [ S.int (Pipeline.wild s.pipe) ];
      ]
  in
  Ormp_session.Storage.write_atomic ~path:(s.dir // "report") (S.to_string body ^ "\n")

(* Detach a session from its (dying) connection: flush what the journal
   holds and forget the in-memory state. The next Hello with this token
   rebuilds it from the journal — the same recovery a daemon restart
   performs, so both paths stay exercised. *)
let detach t c =
  match c.sess with
  | None -> ()
  | Some s ->
    c.sess <- None;
    Hashtbl.remove t.sessions s.token;
    (try Pipeline.quiesce s.pipe with _ -> ());
    (try
       Journal.flush s.journal;
       Journal.close s.journal
     with _ -> ())

let kill_conn t c =
  c.dead <- true;
  detach t c

let protocol_error t c msg =
  if Tm.on () then Tm.Metrics.incr m_proto_errors;
  Log.warnf ~src:"serve" "protocol error%s: %s"
    (match c.sess with Some s -> " (session " ^ s.token ^ ")" | None -> "")
    msg;
  send c (Wire.Err msg);
  detach t c;
  (* Let the Err frame drain briefly, then close regardless. *)
  c.closing <- true;
  c.close_by <- Net_io.now () +. 1.0

let shed t c reason =
  t.shed_count <- t.shed_count + 1;
  if Tm.on () then Tm.Metrics.incr m_sheds;
  Log.infof ~src:"serve" "shedding session: %s" reason;
  send c (Wire.Shed { retry_after_s = t.opts.retry_after_s; reason });
  c.closing <- true;
  c.close_by <- Net_io.now () +. 1.0

let new_pipeline t =
  let pool =
    match t.pool with
    | None -> None
    | Some p ->
      let slot = t.next_slot in
      t.next_slot <- t.next_slot + 1;
      Some (p, slot)
  in
  Pipeline.create ?pool
    ?leap_budget:t.opts.leap_budget
    ~max_streams:t.opts.max_streams ()

(* Admission control, cheapest check first. The grammar-budget check
   reads live grammars, which requires the pool drained; admission is
   rare relative to frames, so the barrier is affordable. *)
let admission_refusal t =
  let o = t.opts in
  if o.max_sessions > 0 && Hashtbl.length t.sessions >= o.max_sessions then
    Some (Printf.sprintf "session limit (%d) reached" o.max_sessions)
  else
    match t.pool with
    | Some p when Pipeline.Pool.occupancy p > o.max_occupancy ->
      Some "compressor pool saturated"
    | _ ->
      if o.grammar_budget > 0 then begin
        (match t.pool with Some p -> Pipeline.Pool.drain p | None -> ());
        let total =
          Hashtbl.fold (fun _ s acc -> acc + Pipeline.grammar_symbols s.pipe) t.sessions 0
        in
        if total > o.grammar_budget then
          Some (Printf.sprintf "grammar budget exceeded (%d > %d symbols)" total o.grammar_budget)
        else None
      end
      else None

let handle_hello t c ~token ~workload ~ack_every =
  if c.sess <> None then protocol_error t c "duplicate Hello on one connection"
  else if not (token_ok token) then protocol_error t c "invalid session token"
  else begin
    let dir = session_dir t token in
    if Sys.file_exists (dir // "report") then
      (* Finalized earlier; the Finish_ok may have been lost in a crash —
         at-most-once means we must not re-ingest. *)
      send c (Wire.Hello_ok { fresh = false; complete = true; position = 0 })
    else if Hashtbl.mem t.sessions token then begin
      (* A live connection owns this token. Refuse the newcomer; if the
         old connection is actually dead, its idle timeout frees the
         token and the client's retry gets through. *)
      send c (Wire.Err "session busy");
      c.closing <- true;
      c.close_by <- Net_io.now () +. 1.0
    end
    else if t.stopping then shed t c "draining for shutdown"
    else
      match admission_refusal t with
      | Some reason -> shed t c reason
      | None -> (
        let journal_path = dir // "journal.trace" in
        let resume = Sys.file_exists journal_path in
        let attach s position fresh =
          Hashtbl.replace t.sessions token s;
          c.sess <- Some s;
          if Tm.on () then Tm.Metrics.incr m_sessions;
          (* The position we report must be durable before the client can
             trust it as a resume point. *)
          Journal.flush s.journal;
          send c (Wire.Hello_ok { fresh; complete = false; position })
        in
        if not resume then begin
          mkdirs dir;
          Ormp_session.Storage.write_atomic ~path:(dir // "manifest")
            (S.to_string (S.field "ormp-serve-session" [ S.field "workload" [ S.atom workload ] ])
            ^ "\n");
          let s =
            {
              token;
              dir;
              workload;
              pipe = new_pipeline t;
              journal = Journal.create journal_path;
              ack_every;
              frames_since_ack = 0;
            }
          in
          attach s 0 true
        end
        else
          match Journal.recover journal_path with
          | Error e -> protocol_error t c (Printf.sprintf "session %s unrecoverable: %s" token e)
          | Ok r -> (
            let pipe = new_pipeline t in
            Array.iter (fun ev -> Pipeline.apply pipe ev) r.Journal.events;
            Pipeline.quiesce pipe;
            match Pipeline.failure pipe with
            | Some e ->
              protocol_error t c
                (Printf.sprintf "session %s replay failed: %s" token (Printexc.to_string e))
            | None ->
              let count = Array.length r.Journal.events in
              t.total_events <- t.total_events + count;
              let s =
                {
                  token;
                  dir;
                  workload;
                  pipe;
                  journal = Journal.create ~resume:(count, r.Journal.r_crc) journal_path;
                  ack_every;
                  frames_since_ack = 0;
                }
              in
              Log.infof ~src:"serve" "resumed session %s at position %d%s" token count
                (if r.Journal.truncated then " (torn tail truncated)" else "");
              attach s count false))
  end

(* Apply the new suffix of a frame that claims to start at [start]. A
   start beyond our position is a gap (protocol error — the client and
   we disagree about durable history); a start before it is the overlap
   a duplicated retry produces, and the overlap is dropped exactly. *)
let ingest t c s ~start ~count ~event_at =
  let pos = Pipeline.position s.pipe in
  if start > pos then begin
    protocol_error t c
      (Printf.sprintf "position gap: frame starts at %d, session is at %d" start pos);
    false
  end
  else begin
    let skip = pos - start in
    (try
       for i = skip to count - 1 do
         let ev = event_at i in
         Journal.append s.journal ev;
         Pipeline.apply s.pipe ev;
         t.total_events <- t.total_events + 1
       done;
       true
     with e ->
       protocol_error t c
         (Printf.sprintf "ingest failed at position %d: %s" (Pipeline.position s.pipe)
            (Printexc.to_string e));
       false)
  end

let after_frame c s =
  s.frames_since_ack <- s.frames_since_ack + 1;
  if s.ack_every > 0 && s.frames_since_ack >= s.ack_every then begin
    s.frames_since_ack <- 0;
    (* Ack only durable positions. *)
    Journal.flush s.journal;
    send c (Wire.Ack { position = Pipeline.position s.pipe })
  end

let handle_finish t c s ~position =
  if position <> Pipeline.position s.pipe then
    protocol_error t c
      (Printf.sprintf "finish at %d but session is at %d" position (Pipeline.position s.pipe))
  else begin
    match
      Journal.flush s.journal;
      Pipeline.finalize s.pipe ~dir:s.dir ~elapsed:0.0
    with
    | () ->
      write_report s;
      Journal.close s.journal;
      Hashtbl.remove t.sessions s.token;
      c.sess <- None;
      send c
        (Wire.Finish_ok
           {
             position = Pipeline.position s.pipe;
             collected = Pipeline.collected s.pipe;
             wild = Pipeline.wild s.pipe;
           })
    | exception e ->
      protocol_error t c (Printf.sprintf "finalize failed: %s" (Printexc.to_string e))
  end

let handle_msg t c (msg : Wire.msg) =
  if Tm.on () then Tm.Metrics.incr m_frames;
  match msg with
  | Hello { token; workload; ack_every } -> handle_hello t c ~token ~workload ~ack_every
  | Ping -> send c Wire.Pong
  | Pong -> ()
  | Batch { start; chunk } -> (
    match c.sess with
    | None -> protocol_error t c "Batch before Hello"
    | Some s ->
      let event_at i =
        Event.Access
          {
            instr = chunk.Ormp_trace.Batch.instr.(i);
            addr = chunk.Ormp_trace.Batch.addr.(i);
            size = chunk.Ormp_trace.Batch.size.(i);
            is_store = chunk.Ormp_trace.Batch.store.(i) <> 0;
          }
      in
      if ingest t c s ~start ~count:chunk.Ormp_trace.Batch.len ~event_at then after_frame c s)
  | Ev { position; event } -> (
    match c.sess with
    | None -> protocol_error t c "Ev before Hello"
    | Some s ->
      if ingest t c s ~start:position ~count:1 ~event_at:(fun _ -> event) then after_frame c s)
  | Finish { position } -> (
    match c.sess with
    | None -> protocol_error t c "Finish before Hello"
    | Some s -> handle_finish t c s ~position)
  | Hello_ok _ | Shed _ | Err _ | Finish_ok _ | Ack _ ->
    protocol_error t c "unexpected server-side frame from client"

(* --- the event loop ----------------------------------------------------- *)

let read_conn t ~scratch c =
  match Net_io.read_nonblock c.fd scratch with
  | `Again -> ()
  | `Eof -> kill_conn t c
  | `Read n ->
    c.last_recv <- Net_io.now ();
    Wire.feed c.dec scratch 0 n;
    let continue = ref true in
    while !continue && not c.dead && not c.closing do
      match Wire.next c.dec with
      | Ok None -> continue := false
      | Ok (Some msg) -> handle_msg t c msg
      | Error e ->
        protocol_error t c e;
        continue := false
    done;
    c.frame_since <-
      (if Wire.buffered c.dec > 0 then
         if c.frame_since = 0.0 then Net_io.now () else c.frame_since
       else 0.0)

let heartbeat t =
  let now = Net_io.now () in
  (match t.pool with Some p -> Pipeline.Pool.drain p | None -> ());
  let sum f = Hashtbl.fold (fun _ s acc -> acc + f s) t.sessions 0 in
  let dt = now -. t.hb_last_s in
  let sample =
    {
      Hb.wall_s = now -. t.start_s;
      position = t.total_events;
      events_per_sec =
        (if dt > 0.0 then float_of_int (t.total_events - t.hb_last_events) /. dt else 0.0);
      live_objects = sum (fun s -> Pipeline.live_objects s.pipe);
      grammar_symbols = sum (fun s -> Pipeline.grammar_symbols s.pipe);
      leap_streams = sum (fun s -> Pipeline.leap_streams s.pipe);
      journal_bytes = sum (fun s -> Journal.bytes s.journal);
      snapshot_bytes = 0;
      last_checkpoint = 0;
      degraded =
        (if t.stopping then [ "draining" ] else [])
        @ (if t.shed_count > 0 then [ "shed" ] else []);
    }
  in
  t.hb_last_s <- now;
  t.hb_last_events <- t.total_events;
  try Hb.append (t.opts.root // "heartbeat") sample with Sys_error _ -> ()

let timers t =
  let now = Net_io.now () in
  let o = t.opts in
  List.iter
    (fun c ->
      if not c.dead then begin
        if c.closing then begin
          if Queue.is_empty c.outq || now >= c.close_by then c.dead <- true
        end
        else if c.frame_since > 0.0 && now -. c.frame_since > o.frame_timeout_s then
          protocol_error t c "frame deadline exceeded (slow or torn sender)"
        else if now -. c.last_recv > o.idle_timeout_s then kill_conn t c
        else if
          now -. c.last_recv > o.ping_every_s && now -. c.last_ping > o.ping_every_s
        then begin
          c.last_ping <- now;
          send c Wire.Ping
        end
      end)
    t.conns;
  if o.heartbeat_every_s > 0.0 && now -. t.hb_last_s >= o.heartbeat_every_s then heartbeat t

let reap t =
  let dead, live = List.partition (fun c -> c.dead) t.conns in
  List.iter
    (fun c ->
      detach t c;
      Net_io.close_noerr c.fd)
    dead;
  t.conns <- live

let shutdown t =
  Log.infof ~src:"serve" "draining %d session(s) for shutdown" (Hashtbl.length t.sessions);
  List.iter (fun c -> kill_conn t c) t.conns;
  reap t;
  (match t.pool with Some p -> Pipeline.Pool.stop p | None -> ());
  Net_io.close_noerr t.listen_fd;
  Net_io.close_noerr t.stop_r;
  Net_io.close_noerr t.stop_w;
  (try Unix.unlink t.opts.socket with Unix.Unix_error _ -> ())

let run ?(handle_signals = false) t =
  (* A peer can close at any instant between our select and our write; a
     select-loop server must see that as EPIPE on the one connection, not
     a process-fatal signal. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if handle_signals then begin
    let request _ = stop t in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request)
  end;
  Log.infof ~src:"serve" "listening on %s (root %s, jobs %d)" t.opts.socket t.opts.root
    t.opts.jobs;
  let scratch = Bytes.create 65536 in
  let tick = 0.1 in
  while not t.stopping do
    let readable =
      t.stop_r :: t.listen_fd :: List.map (fun c -> c.fd) (List.filter (fun c -> not c.dead) t.conns)
    in
    let writable =
      List.filter_map
        (fun c -> if (not c.dead) && not (Queue.is_empty c.outq) then Some c.fd else None)
        t.conns
    in
    let r, w = Net_io.wait ~readable ~writable ~timeout_s:tick in
    if List.mem t.stop_r r then t.stopping <- true
    else begin
      if List.mem t.listen_fd r then begin
        let more = ref true in
        while !more do
          match Net_io.accept_nonblock t.listen_fd with
          | None -> more := false
          | Some fd ->
            let now = Net_io.now () in
            t.conns <-
              {
                fd;
                dec = Wire.decoder ();
                outq = Queue.create ();
                out_off = 0;
                out_bytes = 0;
                sess = None;
                last_recv = now;
                last_ping = now;
                frame_since = 0.0;
                closing = false;
                close_by = 0.0;
                dead = false;
              }
              :: t.conns
        done
      end;
      List.iter (fun c -> if (not c.dead) && List.memq c.fd r then read_conn t ~scratch c) t.conns;
      List.iter (fun c -> if (not c.dead) && List.memq c.fd w then flush_out c) t.conns;
      (* Opportunistic flush for freshly queued replies. *)
      List.iter (fun c -> if (not c.dead) && not (Queue.is_empty c.outq) then flush_out c) t.conns;
      timers t;
      reap t
    end
  done;
  shutdown t
