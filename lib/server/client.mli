(** The `ormp client` side: generate a workload's event stream once,
    then stream it to a daemon with retry, resume and fault injection —
    and optionally run the identical {!Pipeline} locally to produce the
    serial reference profiles the daemon's output must match byte for
    byte.

    The whole event stream is materialized up front (the VM is
    deterministic, but holding the array makes resume a trivial index
    skip and lets one generation feed many sessions), so a reconnect
    restarts exactly at the position the server reports durable. *)

type retry = {
  attempts : int;  (** total connection attempts before giving up *)
  backoff_s : float;  (** first backoff; doubles per attempt *)
  backoff_max_s : float;
  jitter : float;  (** +/- fraction applied to each backoff *)
  seed : int;  (** deterministic jitter stream *)
}

val default_retry : retry

type stats = {
  st_events : int;  (** events in the stream (sent + skipped-on-resume) *)
  st_frames : int;  (** data frames actually sent *)
  st_reconnects : int;  (** connections given up on (faults, drops, timeouts) *)
  st_sheds : int;  (** [Shed] responses absorbed *)
  st_acks : int;
  st_ack_latencies : float list;  (** seconds from frame send to its ack *)
  st_wall_s : float;
}

val generate :
  workload:string -> seed:int -> (Ormp_trace.Event.t array * int, string) result
(** Run the workload under the VM with the given config seed and collect
    its full event stream; also returns the stream length. *)

val run_session :
  socket:string ->
  token:string ->
  workload:string ->
  events:Ormp_trace.Event.t array ->
  ?ack_every:int ->
  ?retry:retry ->
  ?net:Ormp_workloads.Faults.Net.t ->
  ?io_timeout_s:float ->
  unit ->
  (stats, string) result
(** Stream [events] as session [token], surviving [Shed] responses,
    injected wire faults, connection drops and daemon restarts by
    reconnecting with exponential backoff + jitter and resuming at the
    server-reported durable position. Returns [Error] only once the
    retry budget is exhausted. *)

val fetch_stats :
  socket:string -> ?io_timeout_s:float -> unit -> (Stats.t, string) result
(** One-shot live snapshot from a running daemon: connect, send
    [Stats_req], wait for the [Stats] reply (answering pings). The
    building block behind [ormp top]; callers poll, so retry policy is
    theirs. Errors are connection/timeout/protocol failures as text. *)

val reference : dir:string -> events:Ormp_trace.Event.t array -> unit
(** Run the serial {!Pipeline} locally over [events] and write the three
    profile files into [dir] — the byte-comparison baseline for any
    daemon-produced session directory. *)

val percentile : float list -> float -> float
(** [percentile xs 0.99] — nearest-rank percentile; 0 on an empty list. *)
