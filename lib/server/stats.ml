(* The daemon's live introspection snapshot: daemon-wide gauges, one row
   per attached session, and the merged telemetry registry. Built by the
   daemon's select loop from state it already owns (no pool drain, no
   blocking) and shipped over the wire as a versioned Stats frame; this
   module is the shared vocabulary between the daemon, the codec, and
   the CLI renderers, so it depends on neither Wire nor Daemon. *)

module Metrics = Ormp_telemetry.Metrics
module J = Ormp_util.Json

(* Bump when the snapshot layout changes; the codec refuses frames from
   a different version rather than misreading them. *)
let version = 1

type hist = Metrics.hist_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type row = {
  r_token : string;
  r_workload : string;
  r_position : int;
  r_journal_bytes : int;
  r_journal_lag : int;  (* ingested events not yet durable in the WAL *)
  r_events_per_sec : float;
  r_ack_p50_ms : float;  (* 0.0 until the first ack flush *)
  r_ack_p99_ms : float;
  r_ring_occupancy : float;  (* worst SPSC ring of the session's slots *)
}

type t = {
  s_wall_s : float;  (* daemon uptime *)
  s_events_per_sec : float;  (* daemon-wide, over the last sample window *)
  s_pool_occupancy : float;
  s_sessions_live : int;
  s_sessions_started : int;
  s_sessions_resumed : int;
  s_sheds : int;
  s_protocol_errors : int;
  s_deadline_kills : int;
  s_events_total : int;
  s_wal_bytes : int;
  s_out_backlog : int;  (* unsent output bytes across live connections *)
  s_out_backlog_hw : int;  (* high water since daemon start *)
  s_grammar_symbols : int;  (* freshness bounded by heartbeat cadence *)
  s_grammar_budget : int;  (* 0 = unlimited *)
  s_flight_events : int;
  s_flight_dropped : int;
  s_flight_dumps : int;
  s_rows_truncated : bool;  (* true when the frame row cap cut sessions *)
  s_rows : row list;
  s_counters : (string * int) list;
  s_gauges : (string * float) list;
  s_hists : (string * hist) list;
}

(* Fraction of the grammar budget still free; 1.0 when unlimited. *)
let headroom t =
  if t.s_grammar_budget <= 0 then 1.0
  else
    Float.max 0.0
      (1.0 -. (float_of_int t.s_grammar_symbols /. float_of_int t.s_grammar_budget))

(* --- export ------------------------------------------------------------ *)

let row_to_json r =
  J.Obj
    [
      ("token", J.String r.r_token);
      ("workload", J.String r.r_workload);
      ("position", J.Int r.r_position);
      ("journal_bytes", J.Int r.r_journal_bytes);
      ("journal_lag", J.Int r.r_journal_lag);
      ("events_per_sec", J.Float r.r_events_per_sec);
      ("ack_p50_ms", J.Float r.r_ack_p50_ms);
      ("ack_p99_ms", J.Float r.r_ack_p99_ms);
      ("ring_occupancy", J.Float r.r_ring_occupancy);
    ]

let to_json t =
  J.Obj
    [
      ("version", J.Int version);
      ( "daemon",
        J.Obj
          [
            ("wall_s", J.Float t.s_wall_s);
            ("events_per_sec", J.Float t.s_events_per_sec);
            ("pool_occupancy", J.Float t.s_pool_occupancy);
            ("sessions_live", J.Int t.s_sessions_live);
            ("sessions_started", J.Int t.s_sessions_started);
            ("sessions_resumed", J.Int t.s_sessions_resumed);
            ("sheds", J.Int t.s_sheds);
            ("protocol_errors", J.Int t.s_protocol_errors);
            ("deadline_kills", J.Int t.s_deadline_kills);
            ("events_total", J.Int t.s_events_total);
            ("wal_bytes", J.Int t.s_wal_bytes);
            ("out_backlog", J.Int t.s_out_backlog);
            ("out_backlog_hw", J.Int t.s_out_backlog_hw);
            ("grammar_symbols", J.Int t.s_grammar_symbols);
            ("grammar_budget", J.Int t.s_grammar_budget);
            ("grammar_headroom", J.Float (headroom t));
            ("flight_events", J.Int t.s_flight_events);
            ("flight_dropped", J.Int t.s_flight_dropped);
            ("flight_dumps", J.Int t.s_flight_dumps);
          ] );
      ("rows_truncated", J.Bool t.s_rows_truncated);
      ("sessions", J.List (List.map row_to_json t.s_rows));
      ( "registry",
        J.Obj
          [
            ("counters", J.Obj (List.map (fun (n, v) -> (n, J.Int v)) t.s_counters));
            ("gauges", J.Obj (List.map (fun (n, v) -> (n, J.Float v)) t.s_gauges));
            ( "histograms",
              J.Obj
                (List.map
                   (fun (n, h) ->
                     ( n,
                       J.Obj
                         [
                           ("count", J.Int h.count);
                           ("sum", J.Float h.sum);
                           ("min", J.Float h.min);
                           ("max", J.Float h.max);
                           ("p50", J.Float h.p50);
                           ("p90", J.Float h.p90);
                           ("p99", J.Float h.p99);
                         ] ))
                   t.s_hists) );
          ] );
    ]

(* --- rendering ---------------------------------------------------------- *)

let pretty_bytes n =
  let f = float_of_int n in
  if n < 1024 then Printf.sprintf "%dB" n
  else if f < 1024.0 *. 1024.0 then Printf.sprintf "%.1fKiB" (f /. 1024.0)
  else if f < 1024.0 *. 1024.0 *. 1024.0 then
    Printf.sprintf "%.1fMiB" (f /. (1024.0 *. 1024.0))
  else Printf.sprintf "%.1fGiB" (f /. (1024.0 *. 1024.0 *. 1024.0))

let render t =
  let module A = Ormp_util.Ascii in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  out "%s" (A.section "daemon");
  let daemon_rows =
    [
      [ "uptime"; Printf.sprintf "%.1fs" t.s_wall_s ];
      [ "events/s"; Printf.sprintf "%.0f" t.s_events_per_sec ];
      [ "events total"; string_of_int t.s_events_total ];
      [
        "sessions";
        Printf.sprintf "%d live / %d started / %d resumed" t.s_sessions_live
          t.s_sessions_started t.s_sessions_resumed;
      ];
      [
        "faults";
        Printf.sprintf "%d shed / %d proto-err / %d deadline-kill" t.s_sheds
          t.s_protocol_errors t.s_deadline_kills;
      ];
      [ "pool occupancy"; A.percent t.s_pool_occupancy ];
      [ "WAL bytes"; pretty_bytes t.s_wal_bytes ];
      [
        "out backlog";
        Printf.sprintf "%s (hw %s)" (pretty_bytes t.s_out_backlog)
          (pretty_bytes t.s_out_backlog_hw);
      ];
      [
        "grammar";
        (if t.s_grammar_budget <= 0 then
           Printf.sprintf "%d symbols (no budget)" t.s_grammar_symbols
         else
           Printf.sprintf "%d / %d symbols (headroom %s)" t.s_grammar_symbols
             t.s_grammar_budget
             (A.percent (headroom t)));
      ];
      [
        "flight recorder";
        Printf.sprintf "%d events (%d dropped), %d dumps" t.s_flight_events
          t.s_flight_dropped t.s_flight_dumps;
      ];
    ]
  in
  out "%s" (A.table ~header:[ "gauge"; "value" ] ~rows:daemon_rows);
  out "";
  out "%s" (A.section "sessions");
  if t.s_rows = [] then out "(no attached sessions)"
  else begin
    let rows =
      List.map
        (fun r ->
          [
            r.r_token;
            r.r_workload;
            string_of_int r.r_position;
            Printf.sprintf "%.0f" r.r_events_per_sec;
            Printf.sprintf "%.3f" r.r_ack_p50_ms;
            Printf.sprintf "%.3f" r.r_ack_p99_ms;
            A.percent r.r_ring_occupancy;
            pretty_bytes r.r_journal_bytes;
            string_of_int r.r_journal_lag;
          ])
        t.s_rows
    in
    out "%s"
      (A.table
         ~header:
           [
             "session"; "workload"; "position"; "ev/s"; "ack p50 ms"; "ack p99 ms";
             "ring"; "wal"; "lag";
           ]
         ~rows);
    if t.s_rows_truncated then out "(session rows truncated at the frame cap)"
  end;
  if t.s_counters <> [] || t.s_hists <> [] then begin
    out "";
    out "%s" (A.section "registry");
    if t.s_counters <> [] then
      out "%s"
        (A.table ~header:[ "counter"; "value" ]
           ~rows:(List.map (fun (n, v) -> [ n; string_of_int v ]) t.s_counters));
    if t.s_gauges <> [] then
      out "%s"
        (A.table ~header:[ "gauge"; "value" ]
           ~rows:(List.map (fun (n, v) -> [ n; Printf.sprintf "%.6g" v ]) t.s_gauges));
    if t.s_hists <> [] then
      out "%s"
        (A.table ~header:Metrics.hist_header
           ~rows:(List.map (fun (n, h) -> Metrics.hist_row n h) t.s_hists))
  end;
  Buffer.contents buf
