(** The `ormp serve` wire protocol: length-prefixed, CRC-sealed binary
    frames whose bulk payload is the existing SoA batch format.

    Layout of one frame on the wire:

    {v
      u32 BE  payload length N   (1 <= N <= max_frame)
      N bytes payload            (first byte = message tag)
      u32 BE  CRC-32 of the payload
    v}

    A frame whose length field is out of range, whose CRC does not match,
    or whose payload does not parse is a {e protocol error}: the daemon
    kills only the offending connection's session (which stays resumable
    on disk) and never lets the error travel to other sessions.

    Access events travel as struct-of-arrays [Batch] frames — the same
    lane layout {!Ormp_trace.Batch.chunk} uses in memory — tagged with
    the absolute event position of their first event so that duplicated
    retries are detected and dropped exactly. Alloc/free events travel as
    single [Ev] frames in {!Ormp_trace.Trace_file} line syntax, which is
    also what the server journals. *)

type msg =
  | Hello of { token : string; workload : string; ack_every : int }
      (** Open or resume the session named [token]. [ack_every > 0] asks
          the server to acknowledge the durable journal position every
          that many frames. *)
  | Hello_ok of { fresh : bool; complete : bool; position : int }
      (** [position] is the number of events durably journaled; the
          client must start (or restart) streaming at exactly that event
          index. [complete] means the session already finalized — there
          is nothing left to send. *)
  | Shed of { retry_after_s : float; reason : string }
      (** Admission refused under overload; retry after the hint. *)
  | Err of string
      (** Session-fatal protocol error; the connection closes, the
          session stays resumable. *)
  | Batch of { start : int; chunk : Ormp_trace.Batch.chunk }
      (** Access events [start, start + chunk.len) in SoA lanes. *)
  | Ev of { position : int; event : Ormp_trace.Event.t }
      (** One alloc/free event at an absolute position. *)
  | Finish of { position : int }
      (** End of stream; [position] is the total event count and must
          match the server's. *)
  | Finish_ok of { position : int; collected : int; wild : int }
      (** Profiles are durably written. *)
  | Ack of { position : int }  (** Journal durable through [position]. *)
  | Ping
  | Pong
  | Stats_req
      (** Ask the daemon for a live {!Stats.t} snapshot. Allowed on any
          connection at any time, including before [Hello] — a monitor
          need not own a session. *)
  | Stats of Stats.t
      (** The snapshot, versioned: the payload leads with a layout
          version byte and parsers reject frames from another version
          rather than misreading them. Floats travel as raw IEEE-754
          bits, like [Shed]'s retry hint. *)

val max_frame : int
(** Upper bound on the payload length field; larger claims are protocol
    errors, so a torn or malicious length prefix cannot make the server
    buffer unboundedly. *)

val max_stats_rows : int
(** Per-session rows beyond this are dropped from a [Stats] frame (and
    the snapshot flagged truncated) so the reply stays under
    {!max_frame} on any daemon. *)

val encode : msg -> string
(** The full frame: header, payload and CRC trailer. *)

(** Incremental frame decoder for a byte stream that arrives in
    arbitrary slices. *)
type decoder

val decoder : unit -> decoder

val feed : decoder -> bytes -> int -> int -> unit
(** Append [len] bytes of [buf] starting at [off]. *)

val next : decoder -> (msg option, string) result
(** The next complete frame, [Ok None] when more bytes are needed, or
    [Error reason] on a protocol error (oversized length, CRC mismatch,
    unparseable payload). After an error the decoder must be discarded —
    framing is lost. *)

val buffered : decoder -> int
(** Bytes received but not yet consumed by {!next} — non-zero while a
    frame is partially received, which is what the server's frame
    deadline watches (a slow-loris writer keeps this non-zero without
    ever completing a frame). *)
