(* See the mli. The session stack mirrors Ormp_session.Session.execute /
   write_outputs; the pool mode mirrors the PR-5 Parallel stage, reduced
   to the pieces a multi-tenant daemon needs: per-grammar worker pinning
   for order (and thus byte) identity, staging buffers to amortize ring
   traffic, and per-session failure capture so one session's compressor
   exception can never poison the shared workers. *)

module Cdc = Ormp_core.Cdc
module Omc = Ormp_core.Omc
module W = Ormp_whomp.Whomp
module Rasg = Ormp_whomp.Rasg
module Leap = Ormp_leap.Leap
module Seq_c = Ormp_sequitur.Sequitur
module Batch = Ormp_trace.Batch
module Event = Ormp_trace.Event
module Worker = Ormp_trace.Worker

let whomp_file = "whomp.profile"
let rasg_file = "rasg.profile"
let leap_file = "leap.profile"

module Pool = struct
  type t = { workers : (unit -> unit) Worker.t array }

  let spawn ~jobs =
    if jobs < 1 then invalid_arg "Pipeline.Pool.spawn: jobs must be >= 1";
    {
      workers =
        Array.init jobs (fun i ->
            Worker.spawn ~name:(Printf.sprintf "serve.pool%d" i) ~f:(fun th -> th ()) ());
    }

  let size t = Array.length t.workers
  let dispatch t i th = Worker.push t.workers.(i) th
  let drain t = Array.iter Worker.drain t.workers
  let stop t = Array.iter Worker.stop t.workers

  let occupancy t =
    Array.fold_left (fun acc w -> Float.max acc (Worker.occupancy w)) 0.0 t.workers
end

type par = {
  pool : Pool.t;
  slots : int array;  (* worker index per grammar unit: 4 WHOMP dims + RASG *)
  stage_addr : int array;  (* RASG staging; the dim lanes stage inside the CDC *)
  mutable stage_len : int;
}

type t = {
  cdc : Cdc.t;
  batch : Batch.t;
  whomp : W.collector;
  rasg : Seq_c.t;
  leap : Leap.collector;
  par : par option;
  failed : exn option ref;
  mutable rasg_accesses : int;
  mutable position : int;
}

(* Park the first failure for the producer; the worker itself stays
   healthy for every other session multiplexed onto it. The ref is
   plain: the worker's write is ordered before its processed-counter
   publish, which [Pool.drain] acquires, so the producer reads it after
   any drain. *)
let guard failed f () =
  try f () with e -> if !failed = None then failed := Some e

let site_name site = Printf.sprintf "site%d" site

let create ?pool ?leap_budget ?max_streams () =
  let whomp = W.collector () in
  let rasg = Seq_c.create () in
  let leap = Leap.collector ?budget:leap_budget ?max_streams () in
  let failed = ref None in
  match pool with
  | None ->
    (* Serial twin of the pool path below: push each CDC lane into its
       grammar as a batch (no copies — the push consumes the chunk
       synchronously) and hand the whole chunk to LEAP's lane sink. *)
    let on_tuples (tp : Cdc.tuples) =
      W.collect_tuples whomp tp;
      Leap.collect_tuples leap tp
    in
    let cdc = Cdc.create ~site_name ~on_tuple:(fun _ -> assert false) () in
    let batch = Cdc.batch_tuples cdc ~on_tuples () in
    {
      cdc;
      batch;
      whomp;
      rasg;
      leap;
      par = None;
      failed;
      rasg_accesses = 0;
      position = 0;
    }
  | Some (p, slot) ->
    let n = Pool.size p in
    let par =
      {
        pool = p;
        slots = Array.init 5 (fun d -> (slot + d) mod n);
        stage_addr = Array.make Batch.default_capacity 0;
        stage_len = 0;
      }
    in
    let dims =
      match W.collector_dims whomp with
      | [ (_, gi); (_, gg); (_, go); (_, gf) ] -> [| gi; gg; go; gf |]
      | _ -> assert false
    in
    let on_tuples (tp : Cdc.tuples) =
      let len = tp.Cdc.tp_len in
      if len > 0 then begin
        let lanes = [| tp.tp_instr; tp.tp_group; tp.tp_obj; tp.tp_offset |] in
        for d = 0 to 3 do
          (* Copy the lane out of the reused chunk before handing it to
             the worker; the pinned slot keeps this grammar's pushes in
             producer order. *)
          let copy = Array.sub lanes.(d) 0 len in
          let g = dims.(d) in
          Pool.dispatch p par.slots.(d)
            (guard failed (fun () -> Seq_c.push_batch g copy ~off:0 ~len))
        done;
        (* LEAP admission order is global per session, so it stays on the
           producer thread — it is cheap next to grammar maintenance. *)
        Leap.collect_tuples leap tp
      end
    in
    (* The tuple-chunk path never calls [on_tuple]; all events go through
       [batch] below. *)
    let cdc = Cdc.create ~site_name ~on_tuple:(fun _ -> assert false) () in
    let batch = Cdc.batch_tuples cdc ~on_tuples () in
    {
      cdc;
      batch;
      whomp;
      rasg;
      leap;
      par = Some par;
      failed;
      rasg_accesses = 0;
      position = 0;
    }

let flush_stage t p =
  if p.stage_len > 0 then begin
    let len = p.stage_len in
    let copy = Array.sub p.stage_addr 0 len in
    let g = t.rasg in
    Pool.dispatch p.pool p.slots.(4)
      (guard t.failed (fun () -> Seq_c.push_batch g copy ~off:0 ~len));
    p.stage_len <- 0
  end

let apply t (ev : Event.t) =
  (match ev with
  | Access { addr; _ } -> (
    t.rasg_accesses <- t.rasg_accesses + 1;
    match t.par with
    | None -> Seq_c.push t.rasg addr
    | Some p ->
      if p.stage_len = Array.length p.stage_addr then flush_stage t p;
      p.stage_addr.(p.stage_len) <- addr;
      p.stage_len <- p.stage_len + 1)
  | Alloc _ | Free _ -> ());
  Batch.event t.batch ev;
  t.position <- t.position + 1

let position t = t.position

let quiesce t =
  Batch.flush t.batch;
  match t.par with
  | None -> ()
  | Some p ->
    flush_stage t p;
    Pool.drain p.pool

let failure t = !(t.failed)

let collected t = Cdc.collected t.cdc
let wild t = Cdc.wild t.cdc

let grammar_symbols t =
  List.fold_left
    (fun acc (_, g) -> acc + Seq_c.grammar_size g)
    (Seq_c.grammar_size t.rasg)
    (W.collector_dims t.whomp)

let live_objects t = Omc.live_objects (Cdc.omc t.cdc)
let leap_streams t = Leap.stream_count t.leap

(* Worst ring occupancy across this session's pinned slots — the
   backpressure this one session sees, as opposed to [Pool.occupancy]'s
   daemon-wide view. Racy by design, like every occupancy read. *)
let occupancy t =
  match t.par with
  | None -> 0.0
  | Some p ->
    Array.fold_left
      (fun acc slot -> Float.max acc (Worker.occupancy p.pool.Pool.workers.(slot)))
      0.0 p.slots

let ( // ) = Filename.concat

let finalize t ~dir ~elapsed =
  quiesce t;
  (match failure t with Some e -> raise e | None -> ());
  let omc = Cdc.omc t.cdc in
  let whomp_profile =
    {
      W.dims = W.collector_dims t.whomp;
      collected = Cdc.collected t.cdc;
      wild = Cdc.wild t.cdc;
      groups = Omc.groups omc;
      lifetimes = Omc.lifetimes omc;
      elapsed;
    }
  in
  Ormp_persist.Whomp_io.save (dir // whomp_file) whomp_profile;
  Ormp_persist.Rasg_io.save (dir // rasg_file)
    { Rasg.grammar = t.rasg; accesses = t.rasg_accesses; elapsed };
  let leap_profile =
    Leap.finish t.leap ~collected:(Cdc.collected t.cdc) ~wild:(Cdc.wild t.cdc) ~elapsed
  in
  Ormp_persist.Leap_io.save (dir // leap_file) leap_profile
