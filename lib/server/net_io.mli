(** The one deadline-wrapped blocking-I/O seam of the server stack.

    Every blocking primitive the daemon and the client need — reads,
    writes, waits, sleeps — lives here and carries an explicit deadline,
    so the `blocking-io` lint rule can forbid raw [Unix.read]/
    [Unix.select]/[Unix.sleepf] everywhere else in [lib/] and a hang-prone
    path cannot be reintroduced by accident. This file itself is the
    rule's single exemption. *)

exception Timeout
(** A deadline expired before the operation completed. *)

val now : unit -> float
(** Monotonic seconds ({!Ormp_util.Clock.now_s}); all deadlines below are
    absolute values of this clock. *)

(** {1 Connection setup} *)

val listen_unix : path:string -> backlog:int -> Unix.file_descr
(** Bind and listen on a Unix-domain socket, unlinking any stale socket
    file first. The returned descriptor is non-blocking. *)

val connect_unix : path:string -> deadline_s:float -> Unix.file_descr
(** Connect to a Unix-domain socket; the returned descriptor is
    non-blocking. Raises {!Timeout} past the deadline, [Unix.Unix_error]
    if the daemon is not there. *)

val close_noerr : Unix.file_descr -> unit

(** {1 Readiness (the daemon's event loop)} *)

val wait :
  readable:Unix.file_descr list ->
  writable:Unix.file_descr list ->
  timeout_s:float ->
  Unix.file_descr list * Unix.file_descr list
(** [Unix.select], restarted on [EINTR] with the balance of the timeout
    (an interrupting signal is observed by the caller's own flags on
    return). *)

val accept_nonblock : Unix.file_descr -> Unix.file_descr option
(** Accept one pending connection, [None] if there is none. The accepted
    descriptor is non-blocking. *)

val read_nonblock : Unix.file_descr -> Bytes.t -> [ `Read of int | `Eof | `Again ]
(** One non-blocking read into the whole buffer. *)

val write_nonblock : Unix.file_descr -> Bytes.t -> int -> int -> int
(** Write at most [len] bytes from [off]; returns bytes written (0 when
    the kernel buffer is full). Raises on a dead peer ([EPIPE] &c). *)

(** {1 Deadlined client-side I/O} *)

val recv_into : Unix.file_descr -> Bytes.t -> deadline_s:float -> int
(** Block (via {!wait}) until bytes arrive, EOF (returns 0) or the
    deadline ({!Timeout}). *)

val send_all : Unix.file_descr -> string -> deadline_s:float -> unit
(** Write the whole string, waiting for writability as needed; raises
    {!Timeout} past the deadline. *)

val send_prefix : Unix.file_descr -> string -> int -> deadline_s:float -> unit
(** [send_all] of the first [n] bytes only — the torn-frame fault. *)

val send_slow :
  Unix.file_descr -> string -> chunk:int -> delay_s:float -> deadline_s:float -> unit
(** Write in [chunk]-byte pieces with [delay_s] sleeps between them — the
    slow-loris fault. *)

val sleep : float -> unit
(** Bounded sleep (capped at 60 s) for retry backoff — the only sanctioned
    way for server-stack code to sleep. *)
