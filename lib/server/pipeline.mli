(** One profiling session's in-memory state: the CDC + WHOMP + RASG +
    LEAP stack of {!Ormp_session.Session}, repackaged so a daemon can run
    many of them side by side and a client can run the identical stack
    locally to produce reference profiles.

    Byte-identity is the contract: feeding the same event sequence to any
    two pipelines — serial or multiplexed over a shared worker {!Pool},
    in one process or across a daemon kill/restart — produces identical
    profile files. To that end group labels always come from the generic
    [site<N>] namer (a daemon never sees the client's instruction table)
    and the [elapsed] recorded in the profiles is the caller's, normally
    0 — wall-clock truth lives in telemetry, not in comparable outputs. *)

(** A shared pool of compressor workers (one SPSC ring + consumer domain
    each) that many sessions multiplex onto. Each session pins each of
    its five grammar slots (four WHOMP dimensions + RASG) to a fixed
    worker, so per-grammar push order — and hence the grammar — is
    exactly the serial one. *)
module Pool : sig
  type t

  val spawn : jobs:int -> t
  val size : t -> int

  val drain : t -> unit
  (** Producer only: barrier until all dispatched work is done. *)

  val stop : t -> unit

  val occupancy : t -> float
  (** Max instantaneous ring occupancy across workers, in [0, 1] (racy;
      the daemon's load-shedding signal). *)
end

type t

val create :
  ?pool:Pool.t * int ->
  ?leap_budget:int ->
  ?max_streams:int ->
  unit ->
  t
(** A fresh session pipeline. [pool = (p, slot)] multiplexes compression
    onto [p], with [slot] seeding the per-dimension worker pinning (pass
    a distinct slot per session to spread load). Without [pool],
    everything runs inline on the caller's thread. *)

val apply : t -> Ormp_trace.Event.t -> unit
(** Feed one event, exactly as {!Ormp_session.Session} applies events:
    accesses also feed the RASG address grammar, alloc/free flush the
    SoA batch. Caller's thread only. *)

val position : t -> int
(** Events applied so far. *)

val quiesce : t -> unit
(** Flush all staged work and drain the pool (when any) so the state
    below is the exact serial state at {!position}. *)

val failure : t -> exn option
(** An exception a pooled compressor caught while working for this
    session. Meaningful after {!quiesce}; a failed session must be
    discarded (its journal remains the recovery source), but the shared
    pool and every other session are unaffected. *)

val collected : t -> int
val wild : t -> int

val grammar_symbols : t -> int
(** Total symbols across the five grammars. Call only after {!quiesce}
    (the grammars belong to the workers in between). *)

val live_objects : t -> int
val leap_streams : t -> int

val occupancy : t -> float
(** Worst instantaneous ring occupancy across this session's pinned
    worker slots, in [0, 1] (racy; 0.0 for a serial pipeline) — the
    backpressure this one session sees, where {!Pool.occupancy} is the
    daemon-wide maximum. *)

val finalize : t -> dir:string -> elapsed:float -> unit
(** {!quiesce}, then write [whomp.profile], [rasg.profile] and
    [leap.profile] into [dir] — the same files, bytes included, that a
    serial {!Ormp_session.Session} run over the same events would leave.
    Raises the pipeline {!failure} if there is one. *)

val whomp_file : string
val rasg_file : string
val leap_file : string
