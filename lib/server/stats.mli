(** Live daemon introspection snapshot — the payload of the wire [Stats]
    frame and the substance behind [ormp top] and [serve --stats-file].

    The daemon builds one from state its select loop already owns: cheap
    live reads (positions, WAL bytes, backlog) are exact, while
    aggregates that would need a pool drain (grammar symbols) are served
    from caches refreshed at heartbeat cadence. This module knows
    nothing of the wire or the daemon; it is the shared vocabulary
    between them and the CLI renderers. *)

(** Snapshot layout version carried in the frame; parsers reject other
    versions. *)
val version : int

type hist = Ormp_telemetry.Metrics.hist_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

(** One attached session. *)
type row = {
  r_token : string;
  r_workload : string;
  r_position : int;
  r_journal_bytes : int;
  r_journal_lag : int;  (** ingested events not yet durable in the WAL *)
  r_events_per_sec : float;
  r_ack_p50_ms : float;  (** 0.0 until the first ack flush *)
  r_ack_p99_ms : float;
  r_ring_occupancy : float;  (** worst SPSC ring across the session's slots *)
}

type t = {
  s_wall_s : float;
  s_events_per_sec : float;
  s_pool_occupancy : float;
  s_sessions_live : int;
  s_sessions_started : int;
  s_sessions_resumed : int;
  s_sheds : int;
  s_protocol_errors : int;
  s_deadline_kills : int;
  s_events_total : int;
  s_wal_bytes : int;
  s_out_backlog : int;
  s_out_backlog_hw : int;
  s_grammar_symbols : int;
  s_grammar_budget : int;  (** 0 = unlimited *)
  s_flight_events : int;
  s_flight_dropped : int;
  s_flight_dumps : int;
  s_rows_truncated : bool;
  s_rows : row list;
  s_counters : (string * int) list;
  s_gauges : (string * float) list;
  s_hists : (string * hist) list;
}

(** Fraction of the grammar budget still free; 1.0 when unlimited. *)
val headroom : t -> float

val to_json : t -> Ormp_util.Json.t

(** Multi-table human rendering shared by [ormp top] and one-shot dumps. *)
val render : t -> string

(** Human-scale byte formatting ("3.2MiB"). *)
val pretty_bytes : int -> string
