(** The object-management component (§2.3).

    The OMC "records information about every object allocated in the
    program: the time when it is allocated and de-allocated, the address
    range used by the object, and the type of the object", assigns group
    and object identifiers, and answers the central query of the paper:
    given a raw address, which [(group, object, offset)] is it?

    Lookup uses the B-tree-like range index of {!Ormp_interval.Range_index}
    (§3.1). Objects are grouped by allocation site by default — "the
    profiler groups allocated dynamic objects by static instruction" — or
    by type name when the workload provides one and [`Type] grouping is
    selected ("the compiler can provide type information to further refine
    this strategy"). *)

type grouping = [ `Site | `Type ]

type group_info = {
  gid : int;  (** dense group id *)
  site : int;  (** allocation site that first created the group *)
  label : string;  (** site name, or type name under [`Type] grouping *)
  mutable population : int;  (** objects ever allocated in this group *)
}

type lifetime = {
  group : int;
  serial : int;  (** object id within the group, dense from 0 *)
  base : int;
  size : int;
  alloc_time : int;
  mutable free_time : int option;  (** [None] while live / never freed *)
  mutable free_site : int option;
      (** the static free-site program point, when the destruction probe
          carried one — the attribution the checking layer reports as
          "freed at site f @t" *)
}

type t

val create :
  ?grouping:grouping -> site_name:(int -> string) -> unit -> t
(** [site_name] renders an allocation-site id for group labels (typically
    {!Ormp_trace.Instr.info}). Default grouping is [`Site]. *)

val on_alloc : t -> time:int -> site:int -> addr:int -> size:int -> type_name:string option -> unit
(** Object-creation probe. @raise Invalid_argument if the range overlaps a
    live object (a substrate bug). *)

val on_free : ?site:int -> t -> time:int -> addr:int -> unit
(** Object-destruction probe; [site] is the free-site program point when
    the probe carried one. Unknown addresses are counted but ignored. *)

val translate : t -> int -> (int * int * int) option
(** [translate t addr] is [Some (group, object-serial, offset)] for the
    live object containing [addr], [None] for unprofiled memory. Always
    pays the full range-index lookup; the batched pipeline uses
    {!translate_fast}/{!translate_batch} instead. *)

val translate_fast : t -> instr:int -> int -> (int * int * int) option
(** Same answer as {!translate}, but consults a two-way per-instruction
    MRU cache first (DJXPerf-style "last touched object" plus the entry it
    displaced): most instructions hit the same object repeatedly, so the
    common case is three compares instead
    of an AVL descent. A cached object answers only while it is live and
    its range contains the address — freeing an object invalidates every
    cache entry pointing at it, so an allocation reusing the same base can
    never be answered with the dead object's identity. *)

val translate_batch :
  t ->
  instrs:int array ->
  addrs:int array ->
  len:int ->
  groups:int array ->
  serials:int array ->
  offsets:int array ->
  unit
(** Translate the first [len] (instr, addr) pairs through the MRU cache,
    writing results into [groups]/[serials]/[offsets] (all [-1] for an
    untranslatable address). This is the allocation-free hot path the
    batched CDC drives. @raise Invalid_argument if any array is shorter
    than [len]. *)

val group : t -> int -> group_info
(** @raise Invalid_argument for an unknown group id. *)

val groups : t -> group_info list
(** In group-id order. *)

val lifetimes : t -> lifetime list
(** Every object ever seen, in allocation order — the run-dependent
    auxiliary output the paper keeps alongside the invariant tuples. *)

val live_objects : t -> int
val max_live_objects : t -> int
val translations : t -> int
val misses : t -> int

val cache_hits : t -> int
(** Translations answered by the MRU cache (a subset of
    {!translations}). *)

val cache_hit_rate : t -> float
(** [cache_hits / translations], 0 when nothing was translated. *)

val publish_gauges : t -> unit
(** Publish the OMC lifetime totals (live/max objects, translations,
    misses, cache hits, unknown frees) as telemetry gauges. No-op with
    telemetry disabled; meant to be called once at finalize. *)

(** {1 Checkpoint state}

    A deep, serializable snapshot of the object table, for the session
    layer's checkpoint/resume. Translation statistics and the MRU cache are
    deliberately not part of the state: neither ever influences profile
    content, and the cache refills itself. *)

type group_state = {
  gs_site : int;  (** allocation site that first created the group *)
  gs_type : string option;  (** type key under [`Type] grouping *)
  gs_population : int;
}

type state = {
  s_grouping : grouping;
  s_groups : group_state list;  (** in group-id order *)
  s_lifetimes : lifetime list;  (** allocation order; deep copies *)
  s_unknown_frees : int;
}

val state : t -> state

val of_state : site_name:(int -> string) -> state -> t
(** Rebuild an OMC: groups are re-interned in id order, lifetimes re-added
    in allocation order, and still-live objects re-inserted into the range
    index, so subsequent probes and translations answer exactly as the
    original would have. [max_live_objects] restarts from the restored
    live count and the MRU cache restarts cold (statistics only).
    @raise Invalid_argument on an inconsistent state. *)
