module Tm = Ormp_telemetry.Telemetry

(* Chunk-granularity telemetry: the per-access loop stays untouched. *)
let m_chunk_ns = Tm.Metrics.histogram "cdc.chunk.ns"
let m_chunks = Tm.Metrics.counter "cdc.chunks"
let m_tuples = Tm.Metrics.counter "cdc.tuples"
let m_wild = Tm.Metrics.counter "cdc.wild"

type t = {
  omc : Omc.t;
  on_tuple : Tuple.t -> unit;
  on_wild : Ormp_trace.Event.t -> unit;
  mutable clock : int;
  mutable wild : int;
}

let create ?grouping ?(on_wild = fun _ -> ()) ~site_name ~on_tuple () =
  { omc = Omc.create ?grouping ~site_name (); on_tuple; on_wild; clock = 0; wild = 0 }

let sink t =
  fun (ev : Ormp_trace.Event.t) ->
    match ev with
    | Access { instr; addr; size = _; is_store } -> (
      match Omc.translate t.omc addr with
      | Some (group, obj, offset) ->
        let tuple = { Tuple.instr; group; obj; offset; time = t.clock; is_store } in
        t.clock <- t.clock + 1;
        t.on_tuple tuple
      | None ->
        t.wild <- t.wild + 1;
        t.on_wild ev)
    | Alloc { site; addr; size; type_name } ->
      Omc.on_alloc t.omc ~time:t.clock ~site ~addr ~size ~type_name
    | Free { addr; site } -> Omc.on_free ?site t.omc ~time:t.clock ~addr

let batch ?capacity t =
  let capacity =
    match capacity with Some c -> c | None -> Ormp_trace.Batch.default_capacity
  in
  (* Scratch translation results, reused across chunks. *)
  let groups = Array.make capacity 0 in
  let serials = Array.make capacity 0 in
  let offsets = Array.make capacity 0 in
  let on_chunk (c : Ormp_trace.Batch.chunk) =
    let len = c.len in
    if len > capacity then invalid_arg "Cdc.batch: chunk larger than capacity";
    let t0 = if Tm.on () then Tm.now_ns () else 0L in
    let clock0 = t.clock and wild0 = t.wild in
    Omc.translate_batch t.omc ~instrs:c.instr ~addrs:c.addr ~len ~groups ~serials ~offsets;
    (* [translate_batch] validated instr/addr and the scratch arrays
       against [len], and the guard above covers the size/store arrays
       (all four chunk arrays share the batch capacity), so the per-access
       loop reads unchecked. *)
    for i = 0 to len - 1 do
      let group = Array.unsafe_get groups i in
      if group >= 0 then begin
        let tuple =
          {
            Tuple.instr = Array.unsafe_get c.instr i;
            group;
            obj = Array.unsafe_get serials i;
            offset = Array.unsafe_get offsets i;
            time = t.clock;
            is_store = Array.unsafe_get c.store i <> 0;
          }
        in
        t.clock <- t.clock + 1;
        t.on_tuple tuple
      end
      else begin
        t.wild <- t.wild + 1;
        t.on_wild
          (Ormp_trace.Event.Access
             {
               instr = c.instr.(i);
               addr = c.addr.(i);
               size = c.size.(i);
               is_store = c.store.(i) <> 0;
             })
      end
    done;
    if Tm.on () then begin
      Tm.Metrics.observe m_chunk_ns (Int64.to_float (Int64.sub (Tm.now_ns ()) t0));
      Tm.Metrics.incr m_chunks;
      Tm.Metrics.add m_tuples (t.clock - clock0);
      Tm.Metrics.add m_wild (t.wild - wild0)
    end
  in
  let on_event (ev : Ormp_trace.Event.t) =
    match ev with
    | Alloc { site; addr; size; type_name } ->
      Omc.on_alloc t.omc ~time:t.clock ~site ~addr ~size ~type_name
    | Free { addr; site } -> Omc.on_free ?site t.omc ~time:t.clock ~addr
    | Access _ -> assert false (* batches route accesses through on_chunk *)
  in
  Ormp_trace.Batch.create ~capacity ~on_chunk ~on_event ()

(* --- SoA tuple chunks (pipeline fan-out source) ----------------------- *)

type tuples = {
  tp_instr : int array;
  tp_group : int array;
  tp_obj : int array;
  tp_offset : int array;
  tp_store : int array;
  mutable tp_len : int;
  mutable tp_time0 : int;
}

let batch_tuples ?capacity t ~on_tuples () =
  let capacity =
    match capacity with Some c -> c | None -> Ormp_trace.Batch.default_capacity
  in
  let groups = Array.make capacity 0 in
  let serials = Array.make capacity 0 in
  let offsets = Array.make capacity 0 in
  let out =
    {
      tp_instr = Array.make capacity 0;
      tp_group = Array.make capacity 0;
      tp_obj = Array.make capacity 0;
      tp_offset = Array.make capacity 0;
      tp_store = Array.make capacity 0;
      tp_len = 0;
      tp_time0 = 0;
    }
  in
  let on_chunk (c : Ormp_trace.Batch.chunk) =
    let len = c.len in
    if len > capacity then invalid_arg "Cdc.batch_tuples: chunk larger than capacity";
    let t0 = if Tm.on () then Tm.now_ns () else 0L in
    let clock0 = t.clock and wild0 = t.wild in
    Omc.translate_batch t.omc ~instrs:c.instr ~addrs:c.addr ~len ~groups ~serials ~offsets;
    (* Compact the translated accesses into one SoA tuple chunk. Stamps
       are consecutive (the clock advances only on translated accesses),
       so the chunk carries just the first one. *)
    out.tp_time0 <- t.clock;
    out.tp_len <- 0;
    for i = 0 to len - 1 do
      let group = Array.unsafe_get groups i in
      if group >= 0 then begin
        let j = out.tp_len in
        Array.unsafe_set out.tp_instr j (Array.unsafe_get c.instr i);
        Array.unsafe_set out.tp_group j group;
        Array.unsafe_set out.tp_obj j (Array.unsafe_get serials i);
        Array.unsafe_set out.tp_offset j (Array.unsafe_get offsets i);
        Array.unsafe_set out.tp_store j (Array.unsafe_get c.store i);
        out.tp_len <- j + 1;
        t.clock <- t.clock + 1
      end
      else begin
        t.wild <- t.wild + 1;
        t.on_wild
          (Ormp_trace.Event.Access
             {
               instr = c.instr.(i);
               addr = c.addr.(i);
               size = c.size.(i);
               is_store = c.store.(i) <> 0;
             })
      end
    done;
    if out.tp_len > 0 then on_tuples out;
    if Tm.on () then begin
      Tm.Metrics.observe m_chunk_ns (Int64.to_float (Int64.sub (Tm.now_ns ()) t0));
      Tm.Metrics.incr m_chunks;
      Tm.Metrics.add m_tuples (t.clock - clock0);
      Tm.Metrics.add m_wild (t.wild - wild0)
    end
  in
  let on_event (ev : Ormp_trace.Event.t) =
    match ev with
    | Alloc { site; addr; size; type_name } ->
      Omc.on_alloc t.omc ~time:t.clock ~site ~addr ~size ~type_name
    | Free { addr; site } -> Omc.on_free ?site t.omc ~time:t.clock ~addr
    | Access _ -> assert false
  in
  Ormp_trace.Batch.create ~capacity ~on_chunk ~on_event ()

let omc t = t.omc
let collected t = t.clock
let wild t = t.wild

type state = { s_omc : Omc.state; s_clock : int; s_wild : int }

let state t = { s_omc = Omc.state t.omc; s_clock = t.clock; s_wild = t.wild }

let of_state ?(on_wild = fun _ -> ()) ~site_name ~on_tuple (s : state) =
  {
    omc = Omc.of_state ~site_name s.s_omc;
    on_tuple;
    on_wild;
    clock = s.s_clock;
    wild = s.s_wild;
  }
