(** The control and decomposition component (§2.3).

    The CDC is "a hub to the profiling process": it receives probe events,
    routes object probes to the OMC, queries the OMC to make each access
    object-relative, stamps it with the collected-access time counter, and
    hands the resulting {!Tuple.t} to the separation-and-compression stage
    (whatever consumer the profiler installs).

    Accesses the OMC cannot translate (stack or otherwise unprofiled
    memory) are not collected; they are counted and optionally forwarded
    raw. *)

type t

val create :
  ?grouping:Omc.grouping ->
  ?on_wild:(Ormp_trace.Event.t -> unit) ->
  site_name:(int -> string) ->
  on_tuple:(Tuple.t -> unit) ->
  unit ->
  t

val sink : t -> Ormp_trace.Sink.t
(** The per-event probe entry point: boxes nothing itself but pays one
    full range-index lookup (and the caller one event allocation) per
    access. *)

val batch : ?capacity:int -> t -> Ormp_trace.Batch.t
(** The batched probe entry point for {!Ormp_vm.Runner.run_batched} (or
    for replaying a recorded trace with {!Ormp_trace.Batch.event}):
    accesses arrive as struct-of-arrays chunks, are translated through the
    OMC's MRU cache with {!Omc.translate_batch}, and come out as exactly
    the same tuple sequence {!sink} would produce — object events flush
    pending accesses first, so the interleaving and the time stamps are
    identical. *)

(** {1 SoA tuple chunks}

    The fan-out source for the pipeline-parallel SCC: instead of one
    [on_tuple] callback per access, translated accesses are compacted
    (wild ones removed) into a reused struct-of-arrays chunk and handed
    over once per chunk, cheap enough to slice into per-dimension lane
    copies for the compressor domains. *)

type tuples = {
  tp_instr : int array;
  tp_group : int array;
  tp_obj : int array;
  tp_offset : int array;
  tp_store : int array;  (** 0/1 *)
  mutable tp_len : int;  (** live prefix of the five arrays *)
  mutable tp_time0 : int;
      (** time stamp of tuple 0; tuple [i] has stamp [tp_time0 + i] (the
          clock advances only on translated accesses, so stamps inside a
          chunk are consecutive) *)
}

val batch_tuples :
  ?capacity:int -> t -> on_tuples:(tuples -> unit) -> unit -> Ormp_trace.Batch.t
(** Like {!batch}, but emits SoA tuple chunks instead of per-access
    callbacks. The chunk is reused: consumers must copy what they keep
    before returning. The tuple sequence (concatenated over chunks) is
    exactly what {!batch} would deliver; wild accesses still go to
    [on_wild] one at a time. *)

val omc : t -> Omc.t

val collected : t -> int
(** Accesses translated and forwarded so far; also the current value of the
    time-stamp counter. *)

val wild : t -> int
(** Accesses that missed translation. *)

(** {1 Checkpoint state} *)

type state = { s_omc : Omc.state; s_clock : int; s_wild : int }

val state : t -> state
(** Deep snapshot: the OMC state plus the time-stamp and wild counters —
    everything that determines how future events are translated and
    stamped. *)

val of_state :
  ?on_wild:(Ormp_trace.Event.t -> unit) ->
  site_name:(int -> string) ->
  on_tuple:(Tuple.t -> unit) ->
  state ->
  t
(** Rebuild a CDC mid-stream: the restored hub stamps the next collected
    access with the saved clock and translates through the rebuilt object
    table, so the tuple stream continues exactly where the snapshot was
    taken. Consumers ([on_tuple]/[on_wild]) are supplied fresh. *)
