module Ri = Ormp_interval.Range_index
module Vec = Ormp_util.Vec
module Tm = Ormp_telemetry.Telemetry

(* Telemetry handles, interned once at load. Instrumentation is per-chunk
   (one clock pair and a few counter adds per translate_batch call), never
   per-access — see DESIGN.md §10. *)
let m_batch_ns = Tm.Metrics.histogram "omc.translate_batch.ns"
let m_batches = Tm.Metrics.counter "omc.batches"
let m_batch_accesses = Tm.Metrics.counter "omc.batch_accesses"

type grouping = [ `Site | `Type ]

type group_info = { gid : int; site : int; label : string; mutable population : int }

type lifetime = {
  group : int;
  serial : int;
  base : int;
  size : int;
  alloc_time : int;
  mutable free_time : int option;
  mutable free_site : int option;
}

type group_key = By_site of int | By_type of string

(* Internal group record. Labels are resolved lazily through [site_name]
   because instruction tables are typically still being filled while the
   program runs; by the time anyone asks for group metadata the table is
   complete. *)
type ginfo = { g_id : int; g_site : int; g_key : group_key; mutable g_population : int }

type t = {
  grouping : grouping;
  site_name : int -> string;
  index : lifetime Ri.t;
  group_ids : (group_key, int) Hashtbl.t;
  group_recs : ginfo Vec.t;
  all : lifetime Vec.t;
  (* Two-way per-instruction MRU cache: [cache0] holds the last-hit
     object, [cache1] the one it displaced. The second way costs nothing
     on the (dominant) first-way hit and converts the common alternation
     pattern — one instruction ping-ponging between two objects, as in a
     copy loop or parent/child pointer chase — from guaranteed misses
     into hits. *)
  mutable cache0 : lifetime array;
  mutable cache1 : lifetime array;
  mutable translations : int;
  mutable misses : int;
  mutable cache_hits : int;
  mutable unknown_frees : int;
}

(* Cache slot for instructions that have not hit yet: an empty range at the
   top of the address space, so the validity check fails for every addr. *)
let sentinel =
  {
    group = -1;
    serial = -1;
    base = max_int;
    size = 0;
    alloc_time = 0;
    free_time = None;
    free_site = None;
  }

let create ?(grouping = `Site) ~site_name () =
  {
    grouping;
    site_name;
    index = Ri.create ();
    group_ids = Hashtbl.create 64;
    group_recs = Vec.create ();
    all = Vec.create ();
    cache0 = Array.make 64 sentinel;
    cache1 = Array.make 64 sentinel;
    translations = 0;
    misses = 0;
    cache_hits = 0;
    unknown_frees = 0;
  }

let group_key t ~site ~type_name =
  match (t.grouping, type_name) with
  | `Type, Some ty -> By_type ty
  | _ -> By_site site

let group_of t ~site ~type_name =
  let key = group_key t ~site ~type_name in
  match Hashtbl.find_opt t.group_ids key with
  | Some gid -> Vec.get t.group_recs gid
  | None ->
    let gid = Vec.length t.group_recs in
    let g = { g_id = gid; g_site = site; g_key = key; g_population = 0 } in
    Hashtbl.replace t.group_ids key gid;
    Vec.push t.group_recs g;
    g

let on_alloc t ~time ~site ~addr ~size ~type_name =
  let g = group_of t ~site ~type_name in
  let lt =
    {
      group = g.g_id;
      serial = g.g_population;
      base = addr;
      size;
      alloc_time = time;
      free_time = None;
      free_site = None;
    }
  in
  g.g_population <- g.g_population + 1;
  Ri.insert t.index ~base:addr ~size lt;
  Vec.push t.all lt

let on_free ?site t ~time ~addr =
  match Ri.find t.index addr with
  | Some (base, _, lt) when base = addr ->
    lt.free_time <- Some time;
    lt.free_site <- site;
    ignore (Ri.remove t.index ~base)
  | _ -> t.unknown_frees <- t.unknown_frees + 1

let translate t addr =
  match Ri.find t.index addr with
  | Some (base, _, lt) ->
    t.translations <- t.translations + 1;
    Some (lt.group, lt.serial, addr - base)
  | None ->
    t.misses <- t.misses + 1;
    None

(* --- MRU translation cache ----------------------------------------- *)

(* A cached lifetime answers for [addr] only while it is still live and
   its range contains the address. Liveness is the invalidation rule: a
   freed object keeps its range in the record, so without the [free_time]
   check a new object allocated at the same base (bump allocators never
   reuse, but every free-list allocator does) would be answered with the
   dead object's (group, serial) — the classic stale-MRU bug. A live
   cached object can never be overrun by a new allocation because the
   range index rejects overlapping inserts. *)
let[@inline] cache_valid lt addr =
  (match lt.free_time with None -> true | Some _ -> false)
  && addr >= lt.base
  && addr - lt.base < lt.size

let ensure_cache t instr =
  let n = Array.length t.cache0 in
  if instr >= n then begin
    let m = max (instr + 1) (2 * n) in
    let grown0 = Array.make m sentinel in
    let grown1 = Array.make m sentinel in
    Array.blit t.cache0 0 grown0 0 n;
    Array.blit t.cache1 0 grown1 0 n;
    t.cache0 <- grown0;
    t.cache1 <- grown1
  end

(* Slow half of the cache lookup, shared by [translate_fast] and
   [translate_batch]: try the second way, then the range index; either
   way the winner moves to way 0 and the previous way-0 entry is demoted.
   Returns [sentinel] for an untranslatable address. *)
let cache_fill t instr addr lt0 =
  let lt1 = Array.unsafe_get t.cache1 instr in
  if cache_valid lt1 addr then begin
    t.translations <- t.translations + 1;
    t.cache_hits <- t.cache_hits + 1;
    Array.unsafe_set t.cache1 instr lt0;
    Array.unsafe_set t.cache0 instr lt1;
    lt1
  end
  else
    match Ri.find t.index addr with
    | Some (_, _, lt) ->
      t.translations <- t.translations + 1;
      Array.unsafe_set t.cache1 instr lt0;
      Array.unsafe_set t.cache0 instr lt;
      lt
    | None ->
      t.misses <- t.misses + 1;
      sentinel

let translate_fast t ~instr addr =
  ensure_cache t instr;
  let lt0 = Array.unsafe_get t.cache0 instr in
  if cache_valid lt0 addr then begin
    t.translations <- t.translations + 1;
    t.cache_hits <- t.cache_hits + 1;
    Some (lt0.group, lt0.serial, addr - lt0.base)
  end
  else
    let lt = cache_fill t instr addr lt0 in
    if lt == sentinel then None else Some (lt.group, lt.serial, addr - lt.base)

let translate_batch t ~instrs ~addrs ~len ~groups ~serials ~offsets =
  if
    len < 0 || len > Array.length instrs || len > Array.length addrs
    || len > Array.length groups
    || len > Array.length serials
    || len > Array.length offsets
  then invalid_arg "Omc.translate_batch: len exceeds an array";
  (* Disabled telemetry costs one atomic load and the 0L constant — no
     allocation (verified by the Gc.minor_words test in test_telemetry). *)
  let t0 = if Tm.on () then Tm.now_ns () else 0L in
  (* Bounds are validated above, once per chunk, so the loop body — which
     runs once per access — can use unchecked array operations. The cache
     is also grown once, for the chunk's largest instruction id, keeping
     the growth check off the per-access path. *)
  let max_instr = ref (-1) in
  for i = 0 to len - 1 do
    let v = Array.unsafe_get instrs i in
    if v > !max_instr then max_instr := v
  done;
  if !max_instr >= 0 then ensure_cache t !max_instr;
  let cache0 = t.cache0 in
  (* Way-0 hits are counted in locals (registers) and folded into the
     per-OMC counters once per chunk; [cache_fill] maintains the counters
     itself for the slow paths. *)
  let hits = ref 0 in
  for i = 0 to len - 1 do
    let instr = Array.unsafe_get instrs i and addr = Array.unsafe_get addrs i in
    let lt0 = Array.unsafe_get cache0 instr in
    if cache_valid lt0 addr then begin
      incr hits;
      Array.unsafe_set groups i lt0.group;
      Array.unsafe_set serials i lt0.serial;
      Array.unsafe_set offsets i (addr - lt0.base)
    end
    else begin
      let lt = cache_fill t instr addr lt0 in
      Array.unsafe_set groups i lt.group;
      Array.unsafe_set serials i lt.serial;
      Array.unsafe_set offsets i (if lt == sentinel then -1 else addr - lt.base)
    end
  done;
  t.translations <- t.translations + !hits;
  t.cache_hits <- t.cache_hits + !hits;
  if Tm.on () then begin
    Tm.Metrics.observe m_batch_ns (Int64.to_float (Int64.sub (Tm.now_ns ()) t0));
    Tm.Metrics.incr m_batches;
    Tm.Metrics.add m_batch_accesses len
  end

let public_info t (g : ginfo) =
  let label =
    match g.g_key with By_type ty -> ty | By_site s -> t.site_name s
  in
  { gid = g.g_id; site = g.g_site; label; population = g.g_population }

let group t gid =
  if gid < 0 || gid >= Vec.length t.group_recs then invalid_arg "Omc.group: unknown group id";
  public_info t (Vec.get t.group_recs gid)

let groups t = List.rev (Vec.fold_left (fun acc g -> public_info t g :: acc) [] t.group_recs)

let lifetimes t = List.rev (Vec.fold_left (fun acc l -> l :: acc) [] t.all)

let live_objects t = Ri.cardinal t.index
let max_live_objects t = Ri.max_live t.index
let translations t = t.translations
let misses t = t.misses
let cache_hits t = t.cache_hits

let cache_hit_rate t =
  if t.translations = 0 then 0.0 else float_of_int t.cache_hits /. float_of_int t.translations

(* Publish the OMC's lifetime totals as gauges — called at finalize (rare),
   so the gauge-name interning cost does not matter. *)
let publish_gauges t =
  if Tm.on () then begin
    let set name v = Tm.Metrics.set (Tm.Metrics.gauge name) (float_of_int v) in
    set "omc.live_objects" (Ri.cardinal t.index);
    set "omc.max_live_objects" (Ri.max_live t.index);
    set "omc.translations" t.translations;
    set "omc.misses" t.misses;
    set "omc.cache_hits" t.cache_hits;
    set "omc.unknown_frees" t.unknown_frees
  end

(* --- checkpoint state ------------------------------------------------ *)

type group_state = { gs_site : int; gs_type : string option; gs_population : int }

type state = {
  s_grouping : grouping;
  s_groups : group_state list;
  s_lifetimes : lifetime list;
  s_unknown_frees : int;
}

let copy_lifetime l =
  {
    group = l.group;
    serial = l.serial;
    base = l.base;
    size = l.size;
    alloc_time = l.alloc_time;
    free_time = l.free_time;
    free_site = l.free_site;
  }

let state t =
  {
    s_grouping = t.grouping;
    s_groups =
      List.rev
        (Vec.fold_left
           (fun acc g ->
             {
               gs_site = g.g_site;
               gs_type = (match g.g_key with By_type ty -> Some ty | By_site _ -> None);
               gs_population = g.g_population;
             }
             :: acc)
           [] t.group_recs);
    s_lifetimes = List.rev (Vec.fold_left (fun acc l -> copy_lifetime l :: acc) [] t.all);
    s_unknown_frees = t.unknown_frees;
  }

let of_state ~site_name (s : state) =
  let t = create ~grouping:s.s_grouping ~site_name () in
  List.iter
    (fun gs ->
      let key = match gs.gs_type with Some ty -> By_type ty | None -> By_site gs.gs_site in
      if Hashtbl.mem t.group_ids key then invalid_arg "Omc.of_state: duplicate group key";
      let gid = Vec.length t.group_recs in
      Hashtbl.replace t.group_ids key gid;
      Vec.push t.group_recs
        { g_id = gid; g_site = gs.gs_site; g_key = key; g_population = gs.gs_population })
    s.s_groups;
  List.iter
    (fun l ->
      if l.group < 0 || l.group >= Vec.length t.group_recs then
        invalid_arg "Omc.of_state: lifetime references unknown group";
      let l = copy_lifetime l in
      Vec.push t.all l;
      (* Only live objects re-enter the range index; freed ones keep their
         record but must not answer translations. *)
      if l.free_time = None then Ri.insert t.index ~base:l.base ~size:l.size l)
    s.s_lifetimes;
  t.unknown_frees <- s.s_unknown_frees;
  t
