(* lint:hot-path *)

module Ri = Ormp_interval.Range_index
module Vec = Ormp_util.Vec
module Tm = Ormp_telemetry.Telemetry

(* Telemetry handles, interned once at load. Instrumentation is per-chunk
   (one clock pair and a few counter adds per translate_batch call), never
   per-access — see DESIGN.md §10. *)
let m_batch_ns = Tm.Metrics.histogram "omc.translate_batch.ns"
let m_batches = Tm.Metrics.counter "omc.batches"
let m_batch_accesses = Tm.Metrics.counter "omc.batch_accesses"

type grouping = [ `Site | `Type ]

type group_info = { gid : int; site : int; label : string; mutable population : int }

type lifetime = {
  group : int;
  serial : int;
  base : int;
  size : int;
  alloc_time : int;
  mutable free_time : int option;
  mutable free_site : int option;
}

type group_key = By_site of int | By_type of string

(* Internal group record. Labels are resolved lazily through [site_name]
   because instruction tables are typically still being filled while the
   program runs; by the time anyone asks for group metadata the table is
   complete. *)
type ginfo = { g_id : int; g_site : int; g_key : group_key; mutable g_population : int }

(* Two-way per-instruction MRU cache, packed into int lanes (PR 10). Each
   instruction owns [cache_stride] consecutive ints — five per way
   [generation; base; size; group; serial], way 0 first — so a lookup
   touches one flat array and no boxed lifetime record. An entry answers
   only while its generation equals the range index's current one: any
   insert or remove bumps that counter, invalidating every entry at once.
   Whole-cache invalidation is deliberately coarse — profiling is
   access-dominated, so two int compares on the hot path beat precise
   per-object invalidation — and it subsumes the stale-MRU liveness rule:
   a free removes the object from the index and bumps the generation, so
   a dead object can never answer for a reused address. The second way
   costs nothing on the (dominant) first-way hit and converts the common
   alternation pattern — one instruction ping-ponging between two
   objects, as in a copy loop or parent/child pointer chase — from
   guaranteed misses into hits. *)
let cache_stride = 10

type t = {
  grouping : grouping;
  site_name : int -> string;
  index : lifetime Ri.t;
  group_ids : (group_key, int) Hashtbl.t;
  group_recs : ginfo Vec.t;
  all : lifetime Vec.t;
  mutable cache : int array;  (* cache_stride ints per instruction *)
  mutable translations : int;
  mutable misses : int;
  mutable cache_hits : int;
  mutable unknown_frees : int;
}

(* Generation -1 marks a never-filled way: the index's counter starts at 0
   and only grows, so it can never match. *)
let new_cache n =
  let a = Array.make (cache_stride * n) 0 in
  for i = 0 to n - 1 do
    a.(cache_stride * i) <- -1;
    a.((cache_stride * i) + 5) <- -1
  done;
  a

let create ?(grouping = `Site) ~site_name () =
  {
    grouping;
    site_name;
    index = Ri.create ();
    group_ids = Hashtbl.create 64;
    group_recs = Vec.create ();
    all = Vec.create ();
    cache = new_cache 64;
    translations = 0;
    misses = 0;
    cache_hits = 0;
    unknown_frees = 0;
  }

let group_key t ~site ~type_name =
  match (t.grouping, type_name) with
  | `Type, Some ty -> By_type ty
  | _ -> By_site site

let group_of t ~site ~type_name =
  let key = group_key t ~site ~type_name in
  match Hashtbl.find_opt t.group_ids key with
  | Some gid -> Vec.get t.group_recs gid
  | None ->
    let gid = Vec.length t.group_recs in
    let g = { g_id = gid; g_site = site; g_key = key; g_population = 0 } in
    Hashtbl.replace t.group_ids key gid;
    Vec.push t.group_recs g;
    g

let on_alloc t ~time ~site ~addr ~size ~type_name =
  let g = group_of t ~site ~type_name in
  let lt =
    {
      group = g.g_id;
      serial = g.g_population;
      base = addr;
      size;
      alloc_time = time;
      free_time = None;
      free_site = None;
    }
  in
  g.g_population <- g.g_population + 1;
  Ri.insert t.index ~base:addr ~size lt;
  Vec.push t.all lt

let on_free ?site t ~time ~addr =
  match Ri.find t.index addr with
  | Some (base, _, lt) when base = addr ->
    lt.free_time <- Some time;
    lt.free_site <- site;
    ignore (Ri.remove t.index ~base)
  | _ -> t.unknown_frees <- t.unknown_frees + 1

let translate t addr =
  match Ri.find t.index addr with
  | Some (base, _, lt) ->
    t.translations <- t.translations + 1;
    Some (lt.group, lt.serial, addr - base)
  | None ->
    t.misses <- t.misses + 1;
    None

(* --- MRU translation cache ----------------------------------------- *)

let ensure_cache t instr =
  let n = Array.length t.cache / cache_stride in
  if instr >= n then begin
    let m = max (instr + 1) (2 * n) in
    let grown = new_cache m in
    Array.blit t.cache 0 grown 0 (cache_stride * n);
    t.cache <- grown
  end

(* Slow half of the cache lookup, shared by [translate_fast] and
   [translate_batch]: try the second way, then the range index; either
   way the winner moves to way 0 and the previous way-0 entry is demoted.
   [b] is the instruction's lane base; on [true] the way-0 lanes hold the
   answer. The range-index probe goes through [Ri.find_idx] and the flat
   lanes, so even the fill path allocates nothing. *)
let cache_fill t gen addr b =
  let cache = t.cache in
  let base1 = Array.unsafe_get cache (b + 6) in
  if
    Array.unsafe_get cache (b + 5) = gen
    && addr - base1 >= 0
    && addr - base1 < Array.unsafe_get cache (b + 7)
  then begin
    t.translations <- t.translations + 1;
    t.cache_hits <- t.cache_hits + 1;
    for f = 0 to 4 do
      let v0 = Array.unsafe_get cache (b + f) in
      Array.unsafe_set cache (b + f) (Array.unsafe_get cache (b + 5 + f));
      Array.unsafe_set cache (b + 5 + f) v0
    done;
    true
  end
  else begin
    let idx = Ri.find_idx t.index addr in
    if idx >= 0 then begin
      t.translations <- t.translations + 1;
      Array.blit cache b cache (b + 5) 5;
      let lt = Ri.idx_value t.index idx in
      Array.unsafe_set cache b gen;
      Array.unsafe_set cache (b + 1) (Ri.idx_base t.index idx);
      Array.unsafe_set cache (b + 2) (Ri.idx_size t.index idx);
      Array.unsafe_set cache (b + 3) lt.group;
      Array.unsafe_set cache (b + 4) lt.serial;
      true
    end
    else begin
      t.misses <- t.misses + 1;
      false
    end
  end

let translate_fast t ~instr addr =
  ensure_cache t instr;
  let cache = t.cache in
  let gen = Ri.generation t.index in
  let b = cache_stride * instr in
  let base0 = Array.unsafe_get cache (b + 1) in
  if
    Array.unsafe_get cache b = gen
    && addr - base0 >= 0
    && addr - base0 < Array.unsafe_get cache (b + 2)
  then begin
    t.translations <- t.translations + 1;
    t.cache_hits <- t.cache_hits + 1;
    Some (Array.unsafe_get cache (b + 3), Array.unsafe_get cache (b + 4), addr - base0)
  end
  else if cache_fill t gen addr b then
    let cache = t.cache in
    Some
      ( Array.unsafe_get cache (b + 3),
        Array.unsafe_get cache (b + 4),
        addr - Array.unsafe_get cache (b + 1) )
  else None

let translate_batch t ~instrs ~addrs ~len ~groups ~serials ~offsets =
  if
    len < 0 || len > Array.length instrs || len > Array.length addrs
    || len > Array.length groups
    || len > Array.length serials
    || len > Array.length offsets
  then invalid_arg "Omc.translate_batch: len exceeds an array";
  (* Disabled telemetry costs one atomic load and the 0L constant — no
     allocation (verified by the Gc.minor_words test in test_telemetry). *)
  let t0 = if Tm.on () then Tm.now_ns () else 0L in
  (* Bounds are validated above, once per chunk, so the loop body — which
     runs once per access — can use unchecked array operations. The cache
     is also grown once, for the chunk's largest instruction id, keeping
     the growth check off the per-access path, and the index generation is
     hoisted: nothing inside a batch mutates the index. *)
  let max_instr = ref (-1) in
  for i = 0 to len - 1 do
    let v = Array.unsafe_get instrs i in
    if v > !max_instr then max_instr := v
  done;
  if !max_instr >= 0 then ensure_cache t !max_instr;
  let cache = t.cache in
  let gen = Ri.generation t.index in
  (* Way-0 hits are counted in locals (registers) and folded into the
     per-OMC counters once per chunk; [cache_fill] maintains the counters
     itself for the slow paths. *)
  let hits = ref 0 in
  for i = 0 to len - 1 do
    let instr = Array.unsafe_get instrs i and addr = Array.unsafe_get addrs i in
    let b = cache_stride * instr in
    let base0 = Array.unsafe_get cache (b + 1) in
    if
      Array.unsafe_get cache b = gen
      && addr - base0 >= 0
      && addr - base0 < Array.unsafe_get cache (b + 2)
    then begin
      incr hits;
      Array.unsafe_set groups i (Array.unsafe_get cache (b + 3));
      Array.unsafe_set serials i (Array.unsafe_get cache (b + 4));
      Array.unsafe_set offsets i (addr - base0)
    end
    else if cache_fill t gen addr b then begin
      Array.unsafe_set groups i (Array.unsafe_get cache (b + 3));
      Array.unsafe_set serials i (Array.unsafe_get cache (b + 4));
      Array.unsafe_set offsets i (addr - Array.unsafe_get cache (b + 1))
    end
    else begin
      Array.unsafe_set groups i (-1);
      Array.unsafe_set serials i (-1);
      Array.unsafe_set offsets i (-1)
    end
  done;
  t.translations <- t.translations + !hits;
  t.cache_hits <- t.cache_hits + !hits;
  if Tm.on () then begin
    Tm.Metrics.observe m_batch_ns (Int64.to_float (Int64.sub (Tm.now_ns ()) t0));
    Tm.Metrics.incr m_batches;
    Tm.Metrics.add m_batch_accesses len
  end

let public_info t (g : ginfo) =
  let label =
    match g.g_key with By_type ty -> ty | By_site s -> t.site_name s
  in
  { gid = g.g_id; site = g.g_site; label; population = g.g_population }

let group t gid =
  if gid < 0 || gid >= Vec.length t.group_recs then invalid_arg "Omc.group: unknown group id";
  public_info t (Vec.get t.group_recs gid)

let groups t = List.rev (Vec.fold_left (fun acc g -> public_info t g :: acc) [] t.group_recs)

let lifetimes t = List.rev (Vec.fold_left (fun acc l -> l :: acc) [] t.all)

let live_objects t = Ri.cardinal t.index
let max_live_objects t = Ri.max_live t.index
let translations t = t.translations
let misses t = t.misses
let cache_hits t = t.cache_hits

let cache_hit_rate t =
  if t.translations = 0 then 0.0 else float_of_int t.cache_hits /. float_of_int t.translations

(* Publish the OMC's lifetime totals as gauges — called at finalize (rare),
   so the gauge-name interning cost does not matter. *)
let publish_gauges t =
  if Tm.on () then begin
    let set name v = Tm.Metrics.set (Tm.Metrics.gauge name) (float_of_int v) in
    set "omc.live_objects" (Ri.cardinal t.index);
    set "omc.max_live_objects" (Ri.max_live t.index);
    set "omc.translations" t.translations;
    set "omc.misses" t.misses;
    set "omc.cache_hits" t.cache_hits;
    set "omc.unknown_frees" t.unknown_frees
  end

(* --- checkpoint state ------------------------------------------------ *)

type group_state = { gs_site : int; gs_type : string option; gs_population : int }

type state = {
  s_grouping : grouping;
  s_groups : group_state list;
  s_lifetimes : lifetime list;
  s_unknown_frees : int;
}

let copy_lifetime l =
  {
    group = l.group;
    serial = l.serial;
    base = l.base;
    size = l.size;
    alloc_time = l.alloc_time;
    free_time = l.free_time;
    free_site = l.free_site;
  }

let state t =
  {
    s_grouping = t.grouping;
    s_groups =
      List.rev
        (Vec.fold_left
           (fun acc g ->
             {
               gs_site = g.g_site;
               gs_type = (match g.g_key with By_type ty -> Some ty | By_site _ -> None);
               gs_population = g.g_population;
             }
             :: acc)
           [] t.group_recs);
    s_lifetimes = List.rev (Vec.fold_left (fun acc l -> copy_lifetime l :: acc) [] t.all);
    s_unknown_frees = t.unknown_frees;
  }

let of_state ~site_name (s : state) =
  let t = create ~grouping:s.s_grouping ~site_name () in
  List.iter
    (fun gs ->
      let key = match gs.gs_type with Some ty -> By_type ty | None -> By_site gs.gs_site in
      if Hashtbl.mem t.group_ids key then invalid_arg "Omc.of_state: duplicate group key";
      let gid = Vec.length t.group_recs in
      Hashtbl.replace t.group_ids key gid;
      Vec.push t.group_recs
        { g_id = gid; g_site = gs.gs_site; g_key = key; g_population = gs.gs_population })
    s.s_groups;
  List.iter
    (fun l ->
      if l.group < 0 || l.group >= Vec.length t.group_recs then
        invalid_arg "Omc.of_state: lifetime references unknown group";
      let l = copy_lifetime l in
      Vec.push t.all l;
      (* Only live objects re-enter the range index; freed ones keep their
         record but must not answer translations. *)
      if l.free_time = None then Ri.insert t.index ~base:l.base ~size:l.size l)
    s.s_lifetimes;
  t.unknown_frees <- s.s_unknown_frees;
  t
