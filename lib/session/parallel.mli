(** The session's pipeline-parallel compressor stage.

    Bundles a five-slot grammar pool ({!Ormp_whomp.Par_scc}: the 4 WHOMP
    dimension streams + RASG) with a sharded LEAP pool
    ({!Ormp_leap.Par_leap}). The grammar slots alias the live collector
    objects the session context holds, so sealing, snapshotting and
    measuring work exactly as in the serial path — but only while the
    pipeline is quiesced: every such read must sit between {!drain} and
    the next stage call. *)

type t

val spawn :
  ?ring_capacity:int ->
  jobs:int ->
  whomp:Ormp_whomp.Whomp.collector ->
  rasg:Ormp_sequitur.Sequitur.t ->
  leap_budget:int option ->
  max_streams:int ->
  leap_restore:Ormp_leap.Leap.live option ->
  unit ->
  t
(** Spawn the consumer domains over the given (possibly restored) live
    state. [jobs] counts domains including the producer. A positive
    [max_streams] cap forces a single LEAP shard. [leap_restore] splits a
    snapshot's LEAP state onto the shards. *)

val stage_tuples : t -> Ormp_core.Cdc.tuples -> unit
(** Fan a whole SoA tuple chunk out: each dimension lane goes wholesale
    to its grammar stream, the chunk to its LEAP shards. Producer domain
    only. *)

val stage_rasg : t -> int -> unit
(** Append one raw address to the RASG stream. *)

val drain : t -> unit
(** Quiesce every ring. On return all compressor state is frozen and the
    producer may read or swap it until the next stage call. *)

val rotate : t -> whomp:Ormp_whomp.Whomp.collector -> rasg:Ormp_sequitur.Sequitur.t -> unit
(** Point the grammar slots at a fresh collector/grammar (epoch
    rotation). Call only while quiesced. *)

val leap_live : t -> Ormp_leap.Leap.live
(** Merged LEAP checkpoint state (cf. {!Ormp_leap.Leap.live}). Quiesced
    only. *)

val leap_stream_count : t -> int
(** Quiesced only. *)

val leap_finish :
  t -> collected:int -> wild:int -> elapsed:float -> Ormp_leap.Leap.profile
(** Merged LEAP profile — byte-identical to a serial collector's.
    Quiesced (or shut down) only. *)

val pending : t -> int
(** Chunks published but not yet consumed (racy; for observation). *)

val shutdown : t -> unit
(** Drain, stop and join every domain in both pools. Idempotent;
    re-raises the first worker failure after all domains are joined. *)
