(** Supervised execution of one task in its own domain.

    The supervisor gives a task a deadline and a bounded retry policy,
    and isolates its crashes: an exception ends the task's domain, not
    the suite. Cancellation is cooperative — OCaml domains cannot be
    killed from outside — so tasks receive a [should_stop] closure and
    are expected to poll it from their event path (see
    {!Suite.guarded_sink}); when the deadline passes the flag flips, and
    the task raises {!Cancelled} at its next poll. *)

exception Cancelled
(** Raised {e by the task} (typically via its guard sink) once
    [should_stop] turns true. *)

type failure = { attempts : int; error : string; backtrace : string }

type 'a outcome =
  | Completed of 'a
  | Failed of failure  (** crashed on every attempt *)
  | Timed_out of { attempts : int; timeout_s : float }

val run :
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  (should_stop:(unit -> bool) -> 'a) ->
  'a outcome
(** Run the task in a fresh domain. Crashes are retried up to [retries]
    times (so at most [retries + 1] attempts) with linear backoff of
    [backoff_s * attempt] seconds; a timeout is terminal. The task's
    exception text and backtrace are preserved in {!Failed}. *)
