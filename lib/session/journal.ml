module Tf = Ormp_trace.Trace_file
module Io = Ormp_workloads.Faults.Io
module Tm = Ormp_telemetry.Telemetry

(* Per-event counters are fine here: sessions are I/O-bound, and the
   append path already formats and writes a line per event. *)
let m_appends = Tm.Metrics.counter "journal.appends"
let m_bytes = Tm.Metrics.counter "journal.bytes"

(* --- writing ---------------------------------------------------------- *)

type writer = {
  oc : out_channel;
  io : Io.t option;
  mutable count : int;
  mutable crc : int;
}

let create ?io ?resume path =
  match resume with
  | None ->
    let oc = open_out_bin path in
    output_string oc Tf.header;
    output_char oc '\n';
    { oc; io; count = 0; crc = 0 }
  | Some (count, crc) ->
    let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
    { oc; io; count; crc }

let append w ev =
  let line = Tf.event_line ev in
  (match w.io with None -> output_string w.oc line | Some f -> Io.write f w.oc line);
  (* The CRC covers event lines only (header excluded), and includes each
     line's newline — the same accumulation recovery performs. *)
  w.crc <- Ormp_util.Crc32.update w.crc line;
  w.count <- w.count + 1;
  if Tm.on () then begin
    Tm.Metrics.incr m_appends;
    Tm.Metrics.add m_bytes (String.length line)
  end

let flush w = flush w.oc

let bytes w = pos_out w.oc
let close w = close_out_noerr w.oc
let count w = w.count
let crc w = w.crc

(* --- recovery --------------------------------------------------------- *)

type recovered = {
  events : Ormp_trace.Event.t array;
  r_crc : int;
  crc_at : int;
  truncated : bool;
}

let ( let* ) = Result.bind

let recover ?(at = 0) path =
  let* data = Storage.read_file path in
  let len = String.length data in
  let line_end from = match String.index_from_opt data from '\n' with Some i -> i | None -> -1 in
  let hdr_end = line_end 0 in
  if hdr_end < 0 || String.trim (String.sub data 0 hdr_end) <> Tf.header then
    Error "journal: bad header"
  else begin
    let events = Ormp_util.Vec.create () in
    let crc = ref 0 and crc_at = ref (if at = 0 then Some 0 else None) in
    let truncate_at = ref None in
    let err = ref None in
    let pos = ref (hdr_end + 1) in
    while !err = None && !truncate_at = None && !pos < len do
      match line_end !pos with
      | -1 ->
        (* Final bytes with no terminating newline: the torn tail of a write
           that died mid-line. Note the byte offset so the caller's journal
           can be reopened for append right where the sound prefix ends. *)
        truncate_at := Some !pos
      | e -> (
        let line = String.sub data !pos (e - !pos) in
        pos := e + 1;
        if String.trim line = "" then ()
        else
          match Tf.parse_line line with
          | Error msg -> err := Some (Printf.sprintf "journal: %s in %S" msg line)
          | Ok ev ->
            Ormp_util.Vec.push events ev;
            (* Re-render rather than reuse [line]: append CRCs exactly what
               event_line emits, and the two must stay byte-equal. *)
            crc := Ormp_util.Crc32.update !crc (Tf.event_line ev);
            if Ormp_util.Vec.length events = at then crc_at := Some !crc)
    done;
    match !err with
    | Some e -> Error e
    | None -> (
      (match !truncate_at with
      | Some off -> (try Unix.truncate path off with Unix.Unix_error _ -> ())
      | None -> ());
      match !crc_at with
      | None -> Error (Printf.sprintf "journal holds %d events, snapshot is at %d" (Ormp_util.Vec.length events) at)
      | Some crc_at ->
        Ok
          {
            events = Ormp_util.Vec.to_array events;
            r_crc = !crc;
            crc_at;
            truncated = !truncate_at <> None;
          })
  end
