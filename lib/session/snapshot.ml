module S = Ormp_util.Sexp
module Seq_c = Ormp_sequitur.Sequitur
module Omc = Ormp_core.Omc
module Cdc = Ormp_core.Cdc
module Leap = Ormp_leap.Leap
module Lmad_io = Ormp_persist.Lmad_io
module Grammar_io = Ormp_persist.Grammar_io

let version = 1

type epoch = {
  ep_index : int;
  ep_dim : string;
  ep_file : string;
  ep_from : int;
  ep_to : int;
  ep_symbols : int;
}

type degradation = { dg_position : int; dg_kind : string; dg_detail : string }

type t = {
  position : int;
  checkpoint : int;
  journal_crc : int;
  rotations : int;
  epochs : epoch list;
  degradations : degradation list;
  cdc : Cdc.state;
  whomp : Seq_c.t * Seq_c.t * Seq_c.t * Seq_c.t;
  rasg : Seq_c.t;
  leap : Leap.live;
}

(* --- encoding --------------------------------------------------------- *)

let opt_atom = function None -> S.atom "-" | Some s -> S.list [ S.atom s ]

let group_to_sexp (g : Omc.group_state) =
  S.field "group" [ S.int g.Omc.gs_site; opt_atom g.Omc.gs_type; S.int g.Omc.gs_population ]

let lifetime_to_sexp (l : Omc.lifetime) =
  S.field "object"
    [
      S.int l.Omc.group;
      S.int l.Omc.serial;
      S.int l.Omc.base;
      S.int l.Omc.size;
      S.int l.Omc.alloc_time;
      S.int (match l.Omc.free_time with None -> -1 | Some t -> t);
      S.int (match l.Omc.free_site with None -> -1 | Some s -> s);
    ]

let cdc_to_sexp (s : Cdc.state) =
  S.field "cdc"
    ([
       S.field "grouping"
         [ S.atom (match s.Cdc.s_omc.Omc.s_grouping with `Site -> "site" | `Type -> "type") ];
       S.field "clock" [ S.int s.Cdc.s_clock ];
       S.field "wild" [ S.int s.Cdc.s_wild ];
       S.field "unknown-frees" [ S.int s.Cdc.s_omc.Omc.s_unknown_frees ];
     ]
    @ List.map group_to_sexp s.Cdc.s_omc.Omc.s_groups
    @ List.map lifetime_to_sexp s.Cdc.s_omc.Omc.s_lifetimes)

let stream_to_sexp (k : Leap.key) (s : Leap.stream) =
  S.field "stream"
    ([
       S.field "instr" [ S.int k.Leap.instr ];
       S.field "group" [ S.int k.Leap.group ];
       Lmad_io.state_to_sexp "comp" s.Leap.comp;
       Lmad_io.state_to_sexp "off" s.Leap.off;
       S.field "spans"
         (List.concat_map
            (fun (sp : Leap.span) -> [ S.int sp.Leap.t_first; S.int sp.Leap.t_last ])
            (List.rev (Ormp_util.Vec.fold_left (fun acc sp -> sp :: acc) [] s.Leap.spans)));
     ]
    @
    match s.Leap.dspan with
    | None -> []
    | Some sp -> [ S.field "dspan" [ S.int sp.Leap.t_first; S.int sp.Leap.t_last ] ])

let leap_to_sexp (lv : Leap.live) =
  S.field "leap"
    ([
       S.field "stores"
         (List.filter_map (fun (i, st) -> if st then Some (S.int i) else None) lv.Leap.lv_stores);
       S.field "instrs" (List.map (fun (i, _) -> S.int i) lv.Leap.lv_stores);
       S.field "dropped"
         (List.concat_map
            (fun (k : Leap.key) -> [ S.int k.Leap.instr; S.int k.Leap.group ])
            lv.Leap.lv_dropped);
       S.field "dropped-accesses" [ S.int lv.Leap.lv_dropped_accesses ];
     ]
    @ List.map (fun (k, s) -> stream_to_sexp k s) lv.Leap.lv_streams)

let epoch_to_sexp (e : epoch) =
  S.field "epoch"
    [
      S.int e.ep_index;
      S.atom e.ep_dim;
      S.atom e.ep_file;
      S.int e.ep_from;
      S.int e.ep_to;
      S.int e.ep_symbols;
    ]

let degradation_to_sexp (d : degradation) =
  S.field "degradation" [ S.int d.dg_position; S.atom d.dg_kind; S.atom d.dg_detail ]

let to_sexp (t : t) =
  let gi, gg, go, gf = t.whomp in
  S.field "ormp-session-snapshot"
    ([
       S.field "version" [ S.int version ];
       S.field "position" [ S.int t.position ];
       S.field "checkpoint" [ S.int t.checkpoint ];
       S.field "journal-crc" [ S.int t.journal_crc ];
       S.field "rotations" [ S.int t.rotations ];
     ]
    @ List.map epoch_to_sexp t.epochs
    @ List.map degradation_to_sexp t.degradations
    @ [
        cdc_to_sexp t.cdc;
        S.field "whomp"
          [
            Grammar_io.to_sexp ("instr", gi);
            Grammar_io.to_sexp ("group", gg);
            Grammar_io.to_sexp ("object", go);
            Grammar_io.to_sexp ("offset", gf);
          ];
        S.field "rasg" [ Grammar_io.to_sexp ("rasg", t.rasg) ];
        leap_to_sexp t.leap;
      ])

(* --- decoding --------------------------------------------------------- *)

let ( let* ) = Result.bind

let rec collect_results = function
  | [] -> Ok []
  | Ok x :: rest ->
    let* xs = collect_results rest in
    Ok (x :: xs)
  | Error e :: _ -> Error e

let int_list args = collect_results (List.map S.as_int args)

let int_field name t =
  let* args = S.assoc name t in
  match args with [ x ] -> S.as_int x | _ -> Error ("bad field " ^ name)

let pick rest name f =
  collect_results
    (List.filter_map
       (function S.List (S.Atom n :: args) when n = name -> Some (f args) | _ -> None)
       rest)

let group_of_sexp args =
  match args with
  | [ site; ty; population ] ->
    let* gs_site = S.as_int site in
    let* gs_type =
      match ty with
      | S.Atom "-" -> Ok None
      | S.List [ S.Atom t ] -> Ok (Some t)
      | _ -> Error "bad group type"
    in
    let* gs_population = S.as_int population in
    Ok { Omc.gs_site; gs_type; gs_population }
  | _ -> Error "bad group"

let lifetime_of_sexp args =
  let* xs = int_list args in
  match xs with
  | [ group; serial; base; size; alloc_time; free; free_site ] ->
    Ok
      {
        Omc.group;
        serial;
        base;
        size;
        alloc_time;
        free_time = (if free < 0 then None else Some free);
        free_site = (if free_site < 0 then None else Some free_site);
      }
  | _ -> Error "bad object record"

let cdc_of_sexp args =
  let body = S.List (S.Atom "_" :: args) in
  let* grouping =
    let* g = S.assoc "grouping" body in
    match g with
    | [ S.Atom "site" ] -> Ok `Site
    | [ S.Atom "type" ] -> Ok `Type
    | _ -> Error "bad grouping"
  in
  let* s_clock = int_field "clock" body in
  let* s_wild = int_field "wild" body in
  let* s_unknown_frees = int_field "unknown-frees" body in
  let* s_groups = pick args "group" group_of_sexp in
  let* s_lifetimes = pick args "object" lifetime_of_sexp in
  Ok
    {
      Cdc.s_omc = { Omc.s_grouping = grouping; s_groups; s_lifetimes; s_unknown_frees };
      s_clock;
      s_wild;
    }

let stream_of_sexp t =
  let* instr = int_field "instr" t in
  let* group = int_field "group" t in
  let* comp = Lmad_io.state_of_sexp "comp" t in
  let* off = Lmad_io.state_of_sexp "off" t in
  let* span_args = S.assoc "spans" t in
  let* span_ints = int_list span_args in
  let spans = Ormp_util.Vec.create () in
  let rec pair_up = function
    | [] -> Ok ()
    | a :: b :: rest ->
      Ormp_util.Vec.push spans { Leap.t_first = a; t_last = b };
      pair_up rest
    | [ _ ] -> Error "odd span list"
  in
  let* () = pair_up span_ints in
  let* dspan =
    match S.assoc "dspan" t with
    | Ok [ a; b ] ->
      let* a = S.as_int a in
      let* b = S.as_int b in
      Ok (Some { Leap.t_first = a; t_last = b })
    | Ok _ -> Error "bad dspan"
    | Error _ -> Ok None
  in
  Ok ({ Leap.instr; group }, { Leap.comp; spans; off; dspan })

let leap_of_sexp args =
  let body = S.List (S.Atom "_" :: args) in
  let* store_args = S.assoc "stores" body in
  let* stores = int_list store_args in
  let* instr_args = S.assoc "instrs" body in
  let* instrs = int_list instr_args in
  let* dropped_args = S.assoc "dropped" body in
  let* dropped_ints = int_list dropped_args in
  let rec pair_up = function
    | [] -> Ok []
    | i :: g :: rest ->
      let* ks = pair_up rest in
      Ok ({ Leap.instr = i; group = g } :: ks)
    | [ _ ] -> Error "odd dropped list"
  in
  let* lv_dropped = pair_up dropped_ints in
  let* lv_dropped_accesses = int_field "dropped-accesses" body in
  let* lv_streams =
    pick args "stream" (fun a -> stream_of_sexp (S.List (S.Atom "_" :: a)))
  in
  let lv_stores =
    List.map (fun i -> (i, List.mem i stores)) (List.sort_uniq compare instrs)
  in
  Ok { Leap.lv_streams; lv_stores; lv_dropped; lv_dropped_accesses }

let epoch_of_sexp args =
  match args with
  | [ idx; dim; file; from_; to_; symbols ] ->
    let* ep_index = S.as_int idx in
    let* ep_dim = S.as_atom dim in
    let* ep_file = S.as_atom file in
    let* ep_from = S.as_int from_ in
    let* ep_to = S.as_int to_ in
    let* ep_symbols = S.as_int symbols in
    Ok { ep_index; ep_dim; ep_file; ep_from; ep_to; ep_symbols }
  | _ -> Error "bad epoch"

let degradation_of_sexp args =
  match args with
  | [ pos; kind; detail ] ->
    let* dg_position = S.as_int pos in
    let* dg_kind = S.as_atom kind in
    let* dg_detail = S.as_atom detail in
    Ok { dg_position; dg_kind; dg_detail }
  | _ -> Error "bad degradation"

let grammar_in name args =
  let* named = collect_results (List.map (fun g -> S.as_list g) args) in
  let* found =
    match
      List.find_opt
        (function
          | S.Atom "grammar" :: body -> (
            match S.assoc "dim" (S.List (S.Atom "_" :: body)) with
            | Ok [ S.Atom d ] -> d = name
            | _ -> false)
          | _ -> false)
        named
    with
    | Some (_ :: body) -> Ok body
    | _ -> Error (Printf.sprintf "missing %s grammar" name)
  in
  let* _, g = Grammar_io.of_sexp found in
  Ok g

let of_sexp t =
  let* args = S.as_list t in
  match args with
  | S.Atom "ormp-session-snapshot" :: rest ->
    let body = S.List (S.Atom "_" :: rest) in
    let* v = int_field "version" body in
    if v <> version then Error (Printf.sprintf "unsupported snapshot version %d" v)
    else
      let* position = int_field "position" body in
      let* checkpoint = int_field "checkpoint" body in
      let* journal_crc = int_field "journal-crc" body in
      let* rotations = int_field "rotations" body in
      let* epochs = pick rest "epoch" epoch_of_sexp in
      let* degradations = pick rest "degradation" degradation_of_sexp in
      let* cdc_args = S.assoc "cdc" body in
      let* cdc = cdc_of_sexp cdc_args in
      let* whomp_args = S.assoc "whomp" body in
      let* gi = grammar_in "instr" whomp_args in
      let* gg = grammar_in "group" whomp_args in
      let* go = grammar_in "object" whomp_args in
      let* gf = grammar_in "offset" whomp_args in
      let* rasg_args = S.assoc "rasg" body in
      let* rasg = grammar_in "rasg" rasg_args in
      let* leap_args = S.assoc "leap" body in
      let* leap = leap_of_sexp leap_args in
      Ok
        {
          position;
          checkpoint;
          journal_crc;
          rotations;
          epochs;
          degradations;
          cdc;
          whomp = (gi, gg, go, gf);
          rasg;
          leap;
        }
  | _ -> Error "not an ormp-session-snapshot"

let save ?io path t = Storage.save_sealed ?io path (to_sexp t)

let load path =
  match
    let* s = Storage.load_sealed path in
    of_sexp s
  with
  | result -> result
  | exception exn ->
    Error (Printf.sprintf "corrupt snapshot %s: %s" path (Printexc.to_string exn))
