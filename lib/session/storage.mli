(** Durable file primitives for the session layer.

    Everything a checkpoint touches goes through two disciplines: writes
    are atomic (temp file + rename, so a crash never leaves a partial
    file under the real name) and payloads are sealed with a CRC-32
    trailer (so a corrupt file is detected, not trusted). The optional
    {!Ormp_workloads.Faults.Io.t} threads the injected-fault plan through
    every write for the durability tests. *)

val read_file : string -> (string, string) result

val write_atomic :
  ?io:Ormp_workloads.Faults.Io.t -> path:string -> string -> unit
(** Write [content] to [path ^ ".tmp"], then rename over [path]. On any
    exception (injected or real) the temp file is removed and the real
    path is untouched. *)

val seal : string -> string
(** [payload ^ "\n;crc <decimal CRC-32 of payload>\n"]. *)

val unseal : string -> (string, string) result
(** Recover and verify a sealed payload. *)

val save_sealed : ?io:Ormp_workloads.Faults.Io.t -> string -> Ormp_util.Sexp.t -> unit
(** Atomic write of a sealed rendered sexp. *)

val load_sealed : string -> (Ormp_util.Sexp.t, string) result
(** Read + unseal + parse; [Error] on missing, torn, or corrupt files. *)
