module Io = Ormp_workloads.Faults.Io

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Ok s
  | exception Sys_error msg -> Error msg

let write_channel ?io oc s =
  match io with None -> output_string oc s | Some f -> Io.write f oc s

let write_atomic ?io ~path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (match
     write_channel ?io oc content;
     flush oc
   with
  | () -> close_out oc
  | exception exn ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise exn);
  (* The rename is what makes the write atomic: readers either see the old
     complete file or the new complete file, never a prefix. *)
  Sys.rename tmp path

let crc_marker = "\n;crc "

let seal payload =
  Printf.sprintf "%s%s%d\n" payload crc_marker (Ormp_util.Crc32.string payload)

(* Last occurrence of [crc_marker] in [data], or -1. Searched from the end
   because a payload is free to contain the marker bytes itself. *)
let last_marker data =
  let m = String.length crc_marker and n = String.length data in
  let rec go i =
    if i < 0 then -1 else if String.sub data i m = crc_marker then i else go (i - 1)
  in
  go (n - m)

let unseal data =
  match last_marker data with
  | -1 -> Error "no CRC trailer"
  | i -> (
    let payload = String.sub data 0 i in
    let tail_start = i + String.length crc_marker in
    let tail = String.sub data tail_start (String.length data - tail_start) in
    match int_of_string_opt (String.trim tail) with
    | None -> Error "malformed CRC trailer"
    | Some crc ->
      let actual = Ormp_util.Crc32.string payload in
      if actual <> crc then Error (Printf.sprintf "CRC mismatch: file %d, computed %d" crc actual)
      else Ok payload)

let save_sealed ?io path sexp =
  write_atomic ?io ~path (seal (Ormp_util.Sexp.to_string sexp))

let load_sealed path =
  let ( let* ) = Result.bind in
  let* data = read_file path in
  let* payload = unseal data in
  Ormp_util.Sexp.of_string payload
