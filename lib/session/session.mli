(** Crash-safe profiling sessions.

    A session runs one workload under all three profilers at once (WHOMP,
    the RASG baseline, and LEAP) inside a directory that makes the run
    durable: every raw probe event is written ahead to a {!Journal},
    periodic {!Snapshot}s capture the exact profiler state, and a killed
    run resumes from the newest valid snapshot. Resume replays the
    journal tail, then deterministically re-executes the workload
    skipping the already-incorporated prefix (CRC-checked against the
    journal) — producing profiles {e byte-identical} to an uninterrupted
    run.

    Under a memory budget, a watchdog rotates the live grammars into
    sealed on-disk epochs and the LEAP collector caps stream growth;
    every such event is reported as a {!Snapshot.degradation}. *)

type options = {
  checkpoint_every : int;  (** snapshot every N raw events; 0 = never *)
  watch_every : int;  (** poll the memory watchdog every N events; 0 = never *)
  grammar_budget : int;
      (** total live grammar symbols (4 WHOMP dims + RASG) above which the
          watchdog rotates; 0 = unlimited *)
  max_streams : int;  (** LEAP per-key stream cap; 0 = unlimited *)
  leap_budget : int option;  (** per-stream LMAD budget override *)
  keep : int;  (** snapshots retained (older ones pruned) *)
}

val default_options : options
(** No checkpoints, no watchdog, no caps, [keep = 2]. *)

type outcome = {
  oc_dir : string;
  oc_workload : string;
  oc_position : int;  (** raw events consumed *)
  oc_collected : int;
  oc_wild : int;
  oc_checkpoints : int;  (** snapshots written by this process *)
  oc_resumed_from : int option;  (** snapshot position, if resumed *)
  oc_replayed : int;  (** journal-tail events replayed, if resumed *)
  oc_rotations : int;
  oc_epochs : Snapshot.epoch list;
  oc_degradations : Snapshot.degradation list;
  oc_elapsed : float;
}

type status_info = {
  st_workload : string;
  st_snapshot : (int * int) option;  (** newest valid (ordinal, position) *)
  st_journal : int option;  (** surviving journal events *)
  st_complete : bool;  (** final profiles + report written *)
}

val outcome_to_sexp : outcome -> Ormp_util.Sexp.t

val find_workload : string -> (Ormp_vm.Program.t, string) result
(** Resolve by {!Ormp_workloads.Registry} name/spec-ref, then by
    {!Ormp_workloads.Micro} name. *)

val heartbeat_file : string
(** Name of the heartbeat sample file inside a session directory
    ([heartbeat]) — one {!Ormp_telemetry.Heartbeat.sample} s-expression
    per line, append-only. *)

val run :
  ?io:Ormp_workloads.Faults.Io.t ->
  ?heartbeat_every:int ->
  ?jobs:int ->
  ?config:Ormp_vm.Config.t ->
  ?options:options ->
  dir:string ->
  workload:string ->
  unit ->
  (outcome, string) result
(** Start a fresh session in [dir] (created; must not already hold one).
    Writes [manifest], [journal.trace], snapshots, and on completion
    [whomp.profile] / [rasg.profile] / [leap.profile] plus a [report].

    [heartbeat_every] (0 = off, the default) appends a progress sample to
    {!heartbeat_file} every N raw events. The cadence is deliberately not
    stored in the manifest: it observes a process, it does not identify
    the session, and resume is free to pick a different one.

    [jobs] (default 1 = serial) sizes the pipeline-parallel compressor
    stage: with [jobs > 1] the grammar and LEAP consumers run on their
    own domains behind SPSC rings, quiesced at every checkpoint,
    rotation and heartbeat. Like [heartbeat_every] it is a per-process
    execution knob, not part of the session's identity — every profile,
    snapshot and epoch file is byte-identical for any [jobs], and a
    session may be resumed with a different value than it started with.

    Raises whatever kills the run — notably
    {!Ormp_workloads.Faults.Io.Killed} from an injected crash — after
    making the journal durable, so a later {!resume} can continue. *)

val resume :
  ?io:Ormp_workloads.Faults.Io.t ->
  ?heartbeat_every:int ->
  ?jobs:int ->
  dir:string ->
  unit ->
  (outcome, string) result
(** Continue a session killed mid-run. Picks the newest snapshot whose
    seal and journal cross-check hold (falling back to older ones, or to
    a from-scratch re-run when none survive), replays the journal tail,
    re-executes the remainder, and finishes exactly as {!run} would
    have: the three profile files are byte-identical. *)

val status : dir:string -> (status_info, string) result
