module Par_scc = Ormp_whomp.Par_scc
module Par_leap = Ormp_leap.Par_leap
module W = Ormp_whomp.Whomp
module Leap = Ormp_leap.Leap

(* The session's compressor pipeline: five grammar streams (4 WHOMP dims
   + RASG) over a Par_scc pool, plus a sharded LEAP consumer pool. The
   grammar slots alias the session's live collector objects — the workers
   mutate the very grammars [ctx.whomp]/[ctx.rasg] hold, so everything
   the serial session does with them (seal, snapshot, measure) stays
   valid, as long as it happens between [drain] and the next stage.

   Both pools chunk adaptively: when a consumer ring runs persistently
   full (the usual state when domains outnumber cores) the staging layer
   grows its chunk target to amortize ring traffic, and ring waits back
   off with exponentially capped microsleeps (see [Ormp_trace.Worker]).
   Neither mechanism reorders a stream, so parallel sessions remain
   byte-identical to serial ones at any [ring_capacity].

   The transport invariants this file assumes — FIFO per ring, drain
   means drained, stop loses nothing, a failed worker cannot wedge the
   producer — are checked over every interleaving at small
   configurations by [Ormp_modelcheck.Litmus] (`ormp modelcheck`),
   including a pool slot-pinning litmus shaped like the grammar pool
   here: two slots multiplexed onto one worker at ring capacity 1. *)

type t = { gpool : Par_scc.pool; lpool : Par_leap.pool }

let rasg_slot = 4

let grammar_slots ~whomp ~rasg =
  match W.collector_dims whomp with
  | [ (_, gi); (_, gg); (_, go); (_, gf) ] -> [| gi; gg; go; gf; rasg |]
  | _ -> assert false

let spawn ?ring_capacity ~jobs ~whomp ~rasg ~leap_budget ~max_streams ~leap_restore () =
  (* [jobs] counts domains including the producer. The five grammar
     streams take up to five consumer domains; whatever the budget has
     left beyond them becomes extra LEAP shards (a stream cap forces a
     single shard — admission order is global). On small budgets the
     pools oversubscribe slightly rather than starve either side. *)
  let gworkers = max 1 (min (jobs - 1) 5) in
  let nshards = if max_streams > 0 then 1 else max 1 (min (jobs - 1 - gworkers) 8) in
  let shards =
    Leap.shards ?budget:leap_budget ~max_streams ?restore:leap_restore ~nshards ()
  in
  let lpool = Par_leap.pool ?ring_capacity ~name:"session.leap" shards in
  match
    Par_scc.pool ?ring_capacity ~name:"session.grammar" ~workers:gworkers
      (grammar_slots ~whomp ~rasg)
  with
  | gpool -> { gpool; lpool }
  | exception e ->
    (try Par_leap.pool_shutdown lpool with _ -> ());
    raise e

(* SoA tuple chunks from the batched CDC: each dimension lane is staged
   wholesale into its pinned grammar slot, and the chunk goes to the LEAP
   pool's lane entry — no per-tuple boxing anywhere on the producer. *)
let stage_tuples t (tp : Ormp_core.Cdc.tuples) =
  Par_scc.pool_stage_lane t.gpool ~slot:0 tp.tp_instr tp.tp_len;
  Par_scc.pool_stage_lane t.gpool ~slot:1 tp.tp_group tp.tp_len;
  Par_scc.pool_stage_lane t.gpool ~slot:2 tp.tp_obj tp.tp_len;
  Par_scc.pool_stage_lane t.gpool ~slot:3 tp.tp_offset tp.tp_len;
  Par_leap.pool_stage_tuples t.lpool tp

let stage_rasg t addr = Par_scc.pool_stage t.gpool ~slot:rasg_slot addr

let drain t =
  Par_scc.pool_drain t.gpool;
  Par_leap.pool_drain t.lpool

let rotate t ~whomp ~rasg =
  Array.iteri (fun i g -> Par_scc.pool_set t.gpool i g) (grammar_slots ~whomp ~rasg)

let leap_live t = Leap.shards_live (Par_leap.pool_shards t.lpool)
let leap_stream_count t = Leap.shards_stream_count (Par_leap.pool_shards t.lpool)

let leap_finish t ~collected ~wild ~elapsed =
  Leap.shards_finish (Par_leap.pool_shards t.lpool) ~collected ~wild ~elapsed

let pending t = Par_scc.pool_pending t.gpool + Par_leap.pool_pending t.lpool

let shutdown t =
  (* Join both pools even if one fails; the first failure wins. *)
  let failure = ref None in
  let guard f =
    try f ()
    with e -> if !failure = None then failure := Some (e, Printexc.get_raw_backtrace ())
  in
  guard (fun () -> Par_scc.pool_shutdown t.gpool);
  guard (fun () -> Par_leap.pool_shutdown t.lpool);
  match !failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()
