(** Checkpoint snapshots: the exact profiling state at one stream position.

    A snapshot captures everything needed to continue a run as if it never
    stopped: the CDC/OMC translation state, the four WHOMP dimension
    grammars, the RASG baseline grammar, and the LEAP collector's live
    stream states ({!Ormp_lmad.Compressor.state}, open descriptors
    included). Grammars serialize as their rule listings —
    {!Ormp_sequitur.Sequitur.of_rules} rebuilds a live grammar that
    continues byte-for-byte.

    Files are written atomically and sealed with a CRC-32 trailer
    ({!Storage}); a snapshot that fails its seal is skipped in favour of
    an older one. *)

type epoch = {
  ep_index : int;  (** rotation ordinal, from 1 *)
  ep_dim : string;  (** grammar dimension ([instr] ... [rasg]) *)
  ep_file : string;  (** file name inside the session directory *)
  ep_from : int;  (** raw-event position where the epoch began *)
  ep_to : int;  (** position where it was sealed *)
  ep_symbols : int;  (** grammar size at sealing *)
}
(** A sealed grammar epoch spilled to disk by the memory watchdog. *)

type degradation = {
  dg_position : int;  (** raw-event position when it happened *)
  dg_kind : string;  (** e.g. [rotate], [journal-off], [checkpoint-failed] *)
  dg_detail : string;
}
(** One graceful-degradation event, reported in the session outcome. *)

type t = {
  position : int;  (** raw events consumed when taken *)
  checkpoint : int;  (** checkpoint ordinal *)
  journal_crc : int;  (** journal CRC over events [0, position) *)
  rotations : int;
  epochs : epoch list;
  degradations : degradation list;
  cdc : Ormp_core.Cdc.state;
  whomp :
    Ormp_sequitur.Sequitur.t
    * Ormp_sequitur.Sequitur.t
    * Ormp_sequitur.Sequitur.t
    * Ormp_sequitur.Sequitur.t;  (** instr, group, object, offset *)
  rasg : Ormp_sequitur.Sequitur.t;
  leap : Ormp_leap.Leap.live;
}

val epoch_to_sexp : epoch -> Ormp_util.Sexp.t
val epoch_of_sexp : Ormp_util.Sexp.t list -> (epoch, string) result

val degradation_to_sexp : degradation -> Ormp_util.Sexp.t
val degradation_of_sexp : Ormp_util.Sexp.t list -> (degradation, string) result

val to_sexp : t -> Ormp_util.Sexp.t
val of_sexp : Ormp_util.Sexp.t -> (t, string) result

val save : ?io:Ormp_workloads.Faults.Io.t -> string -> t -> unit
(** Atomic + sealed; may raise the planned injected fault. *)

val load : string -> (t, string) result
(** Never raises: torn, truncated, or structurally corrupt snapshots come
    back as [Error]. *)
