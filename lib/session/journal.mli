(** The write-ahead event journal.

    Every raw probe event is appended (in {!Ormp_trace.Trace_file} line
    format) {e before} it is applied to the profilers, with a running
    CRC-32 over the event lines. A checkpoint records the journal position
    and CRC it covers; recovery replays the journal tail after the newest
    valid snapshot and detects both torn tails (truncated, tolerated) and
    divergence (CRC mismatch, fatal). *)

type writer

val create :
  ?io:Ormp_workloads.Faults.Io.t -> ?resume:int * int -> string -> writer
(** Open a fresh journal (header written), or — with [resume:(count, crc)]
    — reopen an existing one for append, continuing the event count and
    running CRC from the recovered values. *)

val append : writer -> Ormp_trace.Event.t -> unit
(** May raise the planned {!Ormp_workloads.Faults.Io} fault. *)

val flush : writer -> unit
val close : writer -> unit

val count : writer -> int
(** Events appended over the journal's whole life. *)

val crc : writer -> int
(** Running CRC-32 over all appended event lines. *)

val bytes : writer -> int
(** Bytes buffered/written to the journal so far (channel position). *)

type recovered = {
  events : Ormp_trace.Event.t array;  (** the full surviving journal *)
  r_crc : int;  (** CRC over all surviving event lines *)
  crc_at : int;  (** CRC after the first [at] events *)
  truncated : bool;  (** a torn tail was cut off *)
}

val recover : ?at:int -> string -> (recovered, string) result
(** Scan a journal left behind by a dead run. A final line without its
    terminating newline is a torn write: it is dropped and the file is
    truncated to the sound prefix (so a resumed writer appends cleanly).
    Fails if the journal holds fewer than [at] events or any complete
    line is unparseable. *)
