(** The supervised suite runner.

    Profiles every {!Ormp_workloads.Registry} workload under WHOMP, each
    in its own supervised domain ({!Supervise}): a crashing workload is
    retried and then reported as failed, a hanging one is cancelled at
    its deadline — and neither takes the suite down. The result is a
    structured partial-results report: every workload appears with its
    outcome, and healthy workloads complete normally alongside faulty
    ones.

    [faults] injects process-level faults by workload name (via
    {!Ormp_workloads.Faults.crashing}/[hanging]) — how the degraded-suite
    acceptance test drives this module. *)

type fault = Crash | Hang

val fault_name : fault -> string

type success = {
  sc_collected : int;
  sc_wild : int;
  sc_omsg : int;  (** OMSG grammar size, symbols *)
  sc_elapsed : float;
}

type entry = {
  en_workload : string;
  en_fault : fault option;  (** the fault injected into it, if any *)
  en_outcome : success Supervise.outcome;
}

type report = {
  rp_entries : entry list;  (** one per registry workload, in Table 1 order *)
  rp_completed : int;
  rp_failed : int;
  rp_timed_out : int;
  rp_elapsed : float;
}

val guarded_sink :
  (unit -> bool) -> Ormp_trace.Sink.t -> Ormp_trace.Sink.t
(** Wrap a sink with a cooperative-cancellation guard: every 1024 events
    it polls the flag and raises {!Supervise.Cancelled}. *)

val run :
  ?bench:bool ->
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?faults:(string * fault) list ->
  ?config:Ormp_vm.Config.t ->
  ?jobs:int ->
  ?out_dir:string ->
  unit ->
  report
(** Run the whole suite sequentially under supervision (default
    [retries = 1]). With [out_dir], each completed workload's WHOMP
    profile is saved as [<name>.whomp] there. Never raises on workload
    failure — that is the point. [jobs > 1] (default 1) compresses each
    workload's dimension streams on dedicated domains
    ({!Ormp_whomp.Par_scc}); the saved profiles are byte-identical
    either way, and a cancelled or crashed task still joins its
    compressor domains before the supervisor moves on. *)

val report_to_sexp : report -> Ormp_util.Sexp.t
val save_report : string -> report -> unit
