module S = Ormp_util.Sexp
module Seq_c = Ormp_sequitur.Sequitur
module A = Ormp_memsim.Allocator
module Cdc = Ormp_core.Cdc
module Omc = Ormp_core.Omc
module W = Ormp_whomp.Whomp
module Rasg = Ormp_whomp.Rasg
module Leap = Ormp_leap.Leap
module Io = Ormp_workloads.Faults.Io
module Tf = Ormp_trace.Trace_file
module Event = Ormp_trace.Event
module Batch = Ormp_trace.Batch
module Tm = Ormp_telemetry.Telemetry

let m_snapshot_saves = Tm.Metrics.counter "snapshot.saves"
let m_snapshot_bytes = Tm.Metrics.counter "snapshot.bytes_written"

let ( let* ) = Result.bind
let ( // ) = Filename.concat

exception Resume_diverged of string
(* Raised when deterministic re-execution regenerates a different event
   stream than the journal recorded: the workload, config, or code
   changed between the original run and the resume. *)

(* --- options and outcome ---------------------------------------------- *)

type options = {
  checkpoint_every : int;
  watch_every : int;
  grammar_budget : int;
  max_streams : int;
  leap_budget : int option;
  keep : int;
}

let default_options =
  {
    checkpoint_every = 0;
    watch_every = 0;
    grammar_budget = 0;
    max_streams = 0;
    leap_budget = None;
    keep = 2;
  }

type outcome = {
  oc_dir : string;
  oc_workload : string;
  oc_position : int;
  oc_collected : int;
  oc_wild : int;
  oc_checkpoints : int;
  oc_resumed_from : int option;
  oc_replayed : int;
  oc_rotations : int;
  oc_epochs : Snapshot.epoch list;
  oc_degradations : Snapshot.degradation list;
  oc_elapsed : float;
}

type status_info = {
  st_workload : string;
  st_snapshot : (int * int) option;
  st_journal : int option;
  st_complete : bool;
}

(* --- file layout ------------------------------------------------------- *)

let manifest_file = "manifest"
let journal_file = "journal.trace"
let report_file = "report"
let heartbeat_file = "heartbeat"
let whomp_file = "whomp.profile"
let rasg_file = "rasg.profile"
let leap_file = "leap.profile"
let snapshot_file k = Printf.sprintf "snapshot-%d" k

let rec mkdirs path =
  if path = "" || path = "." || Sys.file_exists path then ()
  else begin
    mkdirs (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* --- manifest ---------------------------------------------------------- *)

let policy_to_string = function
  | A.Bump -> "bump"
  | A.First_fit -> "first-fit"
  | A.Best_fit -> "best-fit"
  | A.Segregated -> "segregated"
  | A.Randomized n -> Printf.sprintf "randomized:%d" n

let policy_of_string s =
  match s with
  | "bump" -> Ok A.Bump
  | "first-fit" -> Ok A.First_fit
  | "best-fit" -> Ok A.Best_fit
  | "segregated" -> Ok A.Segregated
  | _ -> (
    match String.index_opt s ':' with
    | Some i
      when String.sub s 0 i = "randomized" ->
      (match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some n -> Ok (A.Randomized n)
      | None -> Error ("bad policy " ^ s))
    | _ -> Error ("unknown policy " ^ s))

let manifest_to_sexp ~workload ~(config : Ormp_vm.Config.t) ~(options : options) =
  S.field "ormp-session"
    [
      S.field "version" [ S.int 1 ];
      S.field "workload" [ S.atom workload ];
      S.field "config"
        [
          S.field "policy" [ S.atom (policy_to_string config.policy) ];
          S.field "heap-base" [ S.int config.heap_base ];
          S.field "static-base" [ S.int config.static_base ];
          S.field "static-gap" [ S.int config.static_gap ];
          S.field "align" [ S.int config.align ];
          S.field "seed" [ S.int config.seed ];
        ];
      S.field "options"
        [
          S.field "checkpoint-every" [ S.int options.checkpoint_every ];
          S.field "watch-every" [ S.int options.watch_every ];
          S.field "grammar-budget" [ S.int options.grammar_budget ];
          S.field "max-streams" [ S.int options.max_streams ];
          S.field "leap-budget"
            [ S.int (match options.leap_budget with None -> -1 | Some b -> b) ];
          S.field "keep" [ S.int options.keep ];
        ];
    ]

let int_field name t =
  let* args = S.assoc name t in
  match args with [ x ] -> S.as_int x | _ -> Error ("bad field " ^ name)

let atom_field name t =
  let* args = S.assoc name t in
  match args with [ x ] -> S.as_atom x | _ -> Error ("bad field " ^ name)

let manifest_of_sexp t =
  let* args = S.as_list t in
  match args with
  | S.Atom "ormp-session" :: rest ->
    let body = S.List (S.Atom "_" :: rest) in
    let* v = int_field "version" body in
    if v <> 1 then Error (Printf.sprintf "unsupported manifest version %d" v)
    else
      let* workload = atom_field "workload" body in
      let* cargs = S.assoc "config" body in
      let cbody = S.List (S.Atom "_" :: cargs) in
      let* policy_s = atom_field "policy" cbody in
      let* policy = policy_of_string policy_s in
      let* heap_base = int_field "heap-base" cbody in
      let* static_base = int_field "static-base" cbody in
      let* static_gap = int_field "static-gap" cbody in
      let* align = int_field "align" cbody in
      let* seed = int_field "seed" cbody in
      let* oargs = S.assoc "options" body in
      let obody = S.List (S.Atom "_" :: oargs) in
      let* checkpoint_every = int_field "checkpoint-every" obody in
      let* watch_every = int_field "watch-every" obody in
      let* grammar_budget = int_field "grammar-budget" obody in
      let* max_streams = int_field "max-streams" obody in
      let* leap_budget = int_field "leap-budget" obody in
      let* keep = int_field "keep" obody in
      Ok
        ( workload,
          { Ormp_vm.Config.policy; heap_base; static_base; static_gap; align; seed },
          {
            checkpoint_every;
            watch_every;
            grammar_budget;
            max_streams;
            leap_budget = (if leap_budget < 0 then None else Some leap_budget);
            keep;
          } )
  | _ -> Error "not an ormp-session manifest"

(* --- workload lookup --------------------------------------------------- *)

let find_workload name =
  match Ormp_workloads.Registry.find name with
  | entry -> Ok (Ormp_workloads.Registry.program entry)
  | exception Not_found -> (
    match List.assoc_opt name Ormp_workloads.Micro.all with
    | Some p -> Ok p
    | None -> Error (Printf.sprintf "unknown workload %S" name))

(* --- the live session -------------------------------------------------- *)

(* Heartbeat sampler state. Kept out of [options] (and thus out of the
   manifest) on purpose: the sampling cadence is an observation knob of
   one process, not part of the session's identity — resume must not
   depend on it. *)
type hb = {
  hb_every : int;
  hb_path : string;
  hb_start_ns : int64;
  mutable hb_last_ns : int64;
  mutable hb_last_pos : int;
}

type ctx = {
  dir : string;
  io : Io.t option;
  options : options;
  hb : hb option;
  mutable whomp : W.collector;
  mutable rasg : Seq_c.t;
  mutable leap : Leap.collector;
  mutable rasg_accesses : int;
  mutable position : int;  (* events applied to the profilers *)
  mutable epoch_start : int;
  mutable rotations : int;
  mutable epochs : Snapshot.epoch list;  (* oldest first *)
  mutable degradations : Snapshot.degradation list;  (* oldest first *)
  mutable checkpoints_written : int;
  mutable last_snapshot_bytes : int;
  mutable last_checkpoint_pos : int;
  mutable journal : Journal.writer option;
  mutable jcrc : int;
      (* CRC of the journal through [position] — tracked here (not just in
         the writer) because replay re-derives it with no writer open *)
  mutable checkpointing : bool;
  mutable par : Parallel.t option;
      (* the pipeline-parallel compressor stage, when running with jobs > 1;
         its grammar slots alias [whomp]/[rasg], so those are read (and
         swapped) only while the pipeline is quiesced *)
}

let degrade ctx kind detail =
  ctx.degradations <-
    ctx.degradations
    @ [ { Snapshot.dg_position = ctx.position; dg_kind = kind; dg_detail = detail } ]

let total_symbols ctx =
  List.fold_left
    (fun acc (_, g) -> acc + Seq_c.grammar_size g)
    (Seq_c.grammar_size ctx.rasg)
    (W.collector_dims ctx.whomp)

(* Seal every live grammar into epoch files and start fresh ones. Grammar
   continuity across the seal is intentional only in the files: analysis
   concatenates epochs. The trigger fires at exact raw-event positions, so
   a resumed run re-rotates at exactly the same points (idempotently
   rewriting the same epoch files). *)
let rotate ctx =
  Tm.span ~name:"session.rotate" @@ fun () ->
  ctx.rotations <- ctx.rotations + 1;
  let seal (dim, g) =
    let file = Printf.sprintf "epoch-%d-%s" ctx.rotations dim in
    Storage.save_sealed (ctx.dir // file) (Ormp_persist.Grammar_io.to_sexp (dim, g));
    {
      Snapshot.ep_index = ctx.rotations;
      ep_dim = dim;
      ep_file = file;
      ep_from = ctx.epoch_start;
      ep_to = ctx.position;
      ep_symbols = Seq_c.grammar_size g;
    }
  in
  let eps = List.map seal (W.collector_dims ctx.whomp @ [ ("rasg", ctx.rasg) ]) in
  ctx.epochs <- ctx.epochs @ eps;
  ctx.whomp <- W.collector ();
  ctx.rasg <- Seq_c.create ();
  (match ctx.par with
  | Some p -> Parallel.rotate p ~whomp:ctx.whomp ~rasg:ctx.rasg
  | None -> ());
  ctx.epoch_start <- ctx.position;
  degrade ctx "rotate"
    (Printf.sprintf "grammar budget exceeded; sealed epoch %d" ctx.rotations)

let dims_tuple ctx =
  match W.collector_dims ctx.whomp with
  | [ (_, gi); (_, gg); (_, go); (_, gf) ] -> (gi, gg, go, gf)
  | _ -> assert false

let take_snapshot ctx cdc ~ordinal ~journal_crc =
  {
    Snapshot.position = ctx.position;
    checkpoint = ordinal;
    journal_crc;
    rotations = ctx.rotations;
    epochs = ctx.epochs;
    degradations = ctx.degradations;
    cdc = Cdc.state cdc;
    whomp = dims_tuple ctx;
    rasg = ctx.rasg;
    leap =
      (match ctx.par with None -> Leap.live ctx.leap | Some p -> Parallel.leap_live p);
  }

let prune_snapshots ctx ~ordinal =
  if ctx.options.keep > 0 then begin
    let stale = ordinal - ctx.options.keep in
    if stale >= 1 then
      let path = ctx.dir // snapshot_file stale in
      if Sys.file_exists path then try Sys.remove path with Sys_error _ -> ()
  end

let checkpoint ctx cdc =
  Tm.span ~name:"session.checkpoint" @@ fun () ->
  let ordinal = ctx.position / ctx.options.checkpoint_every in
  (* The journal must be durable through [position] before the snapshot
     that claims to cover it exists — the write-ahead discipline. *)
  (match ctx.journal with Some j -> Journal.flush j | None -> ());
  let path = ctx.dir // snapshot_file ordinal in
  match Snapshot.save ?io:ctx.io path (take_snapshot ctx cdc ~ordinal ~journal_crc:ctx.jcrc)
  with
  | () ->
    ctx.checkpoints_written <- ctx.checkpoints_written + 1;
    ctx.last_checkpoint_pos <- ctx.position;
    (match (Unix.stat path).Unix.st_size with
    | size ->
      ctx.last_snapshot_bytes <- size;
      if Tm.on () then begin
        Tm.Metrics.incr m_snapshot_saves;
        Tm.Metrics.add m_snapshot_bytes size
      end
    | exception Unix.Unix_error _ -> ());
    prune_snapshots ctx ~ordinal;
    (match ctx.io with Some f -> Io.checkpoint_written f | None -> ())
  | exception (Io.Torn_write msg | Io.No_space msg) ->
    (* The atomic-write discipline already discarded the partial temp file;
       the previous snapshot is intact, so the run can go on — only the
       recovery point is older than intended. *)
    degrade ctx "checkpoint-failed" msg

(* Apply one raw event to every profiler. The CDC side stages into the
   batched translation path; [triggers] flushes it before anything
   position-exact (watchdog, checkpoint, heartbeat) observes state. *)
let apply ctx batch ev =
  (match ev with
  | Event.Access { addr; _ } ->
    ctx.rasg_accesses <- ctx.rasg_accesses + 1;
    (match ctx.par with
    | None -> Seq_c.push ctx.rasg addr
    | Some p -> Parallel.stage_rasg p addr)
  | Event.Alloc _ | Event.Free _ -> ());
  Batch.event batch ev;
  ctx.position <- ctx.position + 1

(* Write one heartbeat sample: rates since the previous sample plus the
   live state sizes. Failures to append are swallowed — the heartbeat is
   observation only and must never degrade the session itself. *)
let heartbeat ctx cdc h =
  let now = Ormp_util.Clock.now_ns () in
  let dt_s = Int64.to_float (Int64.sub now h.hb_last_ns) /. 1e9 in
  let events = ctx.position - h.hb_last_pos in
  let sample =
    {
      Ormp_telemetry.Heartbeat.wall_s = Int64.to_float (Int64.sub now h.hb_start_ns) /. 1e9;
      position = ctx.position;
      events_per_sec = (if dt_s > 0.0 then float_of_int events /. dt_s else 0.0);
      live_objects = Omc.live_objects (Cdc.omc cdc);
      grammar_symbols = total_symbols ctx;
      leap_streams =
        (match ctx.par with
        | None -> Leap.stream_count ctx.leap
        | Some p -> Parallel.leap_stream_count p);
      journal_bytes = (match ctx.journal with Some j -> Journal.bytes j | None -> 0);
      snapshot_bytes = ctx.last_snapshot_bytes;
      last_checkpoint = ctx.last_checkpoint_pos;
      degraded =
        List.sort_uniq compare
          (List.map (fun d -> d.Snapshot.dg_kind) ctx.degradations);
    }
  in
  h.hb_last_ns <- now;
  h.hb_last_pos <- ctx.position;
  try Ormp_telemetry.Heartbeat.append h.hb_path sample with Sys_error _ -> ()

(* Post-application triggers, at exact raw-event positions so that replay
   and re-execution hit them identically. (The heartbeat is the exception:
   it observes wall-clock rates, so replay re-emits samples with replay
   timing — the file is append-only and watchers read the latest line.) *)
let triggers ctx cdc batch =
  let o = ctx.options in
  let fire_watch = o.watch_every > 0 && ctx.position mod o.watch_every = 0 in
  let fire_ckpt =
    ctx.checkpointing && o.checkpoint_every > 0 && ctx.position mod o.checkpoint_every = 0
  in
  let fire_hb =
    match ctx.hb with Some h -> ctx.position mod h.hb_every = 0 | None -> false
  in
  if fire_watch || fire_ckpt || fire_hb then begin
    (* Quiesce the whole pipeline before any trigger runs: the watchdog
       measures the live grammars, the checkpoint serializes them, and the
       heartbeat sizes them — all of which require the staged batch to be
       translated and the compressor domains to have consumed everything
       published so far, so the observed state is exactly the serial state
       at this position. *)
    Batch.flush batch;
    (match ctx.par with Some p -> Parallel.drain p | None -> ());
    if fire_watch && o.grammar_budget > 0 && total_symbols ctx > o.grammar_budget then
      rotate ctx;
    if fire_ckpt then checkpoint ctx cdc;
    match ctx.hb with
    | Some h when fire_hb -> heartbeat ctx cdc h
    | _ -> ()
  end

let journal_append ctx ev =
  match ctx.journal with
  | None -> ()
  | Some j -> (
    match Journal.append j ev with
    | () -> ctx.jcrc <- Journal.crc j
    | exception (Io.Torn_write msg | Io.No_space msg) ->
      (* Without a sound journal, a snapshot taken now could never be
         replayed past — so checkpointing is disabled together with
         journaling, and the run continues purely in memory. *)
      Journal.close j;
      ctx.journal <- None;
      ctx.checkpointing <- false;
      degrade ctx "journal-off" msg)

(* --- finalization ------------------------------------------------------ *)

let write_outputs ctx cdc ~elapsed =
  Tm.span ~name:"session.finalize" @@ fun () ->
  (* Group labels resolve through the OMC's own [site_name] closure, which
     reads the now-filled table reference — no plumbing needed here. *)
  let omc = Cdc.omc cdc in
  (* One finalize covers all five grammar dimensions (4 WHOMP + RASG),
     the OMC and the LEAP table, so a --telemetry session snapshot spans
     every profiler stage. *)
  Omc.publish_gauges omc;
  W.publish_dim_gauges (W.collector_dims ctx.whomp @ [ ("rasg", ctx.rasg) ]);
  let whomp_profile =
    {
      W.dims = W.collector_dims ctx.whomp;
      collected = Cdc.collected cdc;
      wild = Cdc.wild cdc;
      groups = Omc.groups omc;
      lifetimes = Omc.lifetimes omc;
      elapsed;
    }
  in
  Ormp_persist.Whomp_io.save (ctx.dir // whomp_file) whomp_profile;
  Ormp_persist.Rasg_io.save (ctx.dir // rasg_file)
    { Rasg.grammar = ctx.rasg; accesses = ctx.rasg_accesses; elapsed };
  let leap_profile =
    match ctx.par with
    | None -> Leap.finish ctx.leap ~collected:(Cdc.collected cdc) ~wild:(Cdc.wild cdc) ~elapsed
    | Some p ->
      Parallel.leap_finish p ~collected:(Cdc.collected cdc) ~wild:(Cdc.wild cdc) ~elapsed
  in
  Ormp_persist.Leap_io.save (ctx.dir // leap_file) leap_profile

let outcome_to_sexp (o : outcome) =
  S.field "ormp-session-report"
    ([
       S.field "workload" [ S.atom o.oc_workload ];
       S.field "position" [ S.int o.oc_position ];
       S.field "collected" [ S.int o.oc_collected ];
       S.field "wild" [ S.int o.oc_wild ];
       S.field "checkpoints" [ S.int o.oc_checkpoints ];
       S.field "resumed-from"
         [ S.int (match o.oc_resumed_from with None -> -1 | Some p -> p) ];
       S.field "replayed" [ S.int o.oc_replayed ];
       S.field "rotations" [ S.int o.oc_rotations ];
     ]
    @ List.map Snapshot.epoch_to_sexp o.oc_epochs
    @ List.map Snapshot.degradation_to_sexp o.oc_degradations)

(* --- run / resume core ------------------------------------------------- *)

type restore = {
  rs_snapshot : Snapshot.t;
  rs_tail : Event.t array;  (* journal events [snapshot position, end) *)
  rs_count : int;  (* total surviving journal events *)
  rs_crc : int;  (* CRC over all of them *)
}

let execute ?io ?(heartbeat_every = 0) ?(jobs = 1) ~dir ~workload
    ~(config : Ormp_vm.Config.t) ~(options : options) ~restore () =
  let* program = find_workload workload in
  (* Sites are named through the table the run produces (cf. Whomp.profile);
     the reference is filled once the workload finishes. *)
  let table = ref None in
  let site_name site =
    match !table with
    | None -> Printf.sprintf "site%d" site
    | Some t -> (Ormp_trace.Instr.info t site).Ormp_trace.Instr.name
  in
  let ctx =
    {
      dir;
      io;
      options;
      hb =
        (if heartbeat_every > 0 then begin
           let now = Ormp_util.Clock.now_ns () in
           Some
             {
               hb_every = heartbeat_every;
               hb_path = dir // heartbeat_file;
               hb_start_ns = now;
               hb_last_ns = now;
               hb_last_pos = 0;
             }
         end
         else None);
      whomp = W.collector ();
      rasg = Seq_c.create ();
      leap = Leap.collector ?budget:options.leap_budget ~max_streams:options.max_streams ();
      rasg_accesses = 0;
      position = 0;
      epoch_start = 0;
      rotations = 0;
      epochs = [];
      degradations = [];
      checkpoints_written = 0;
      last_snapshot_bytes = 0;
      last_checkpoint_pos = 0;
      journal = None;
      jcrc = 0;
      checkpointing = options.checkpoint_every > 0;
      par = None;
    }
  in
  (* Tuples arrive as SoA chunks from the batched CDC. [ctx.whomp] and
     [ctx.leap] are re-read per chunk, so epoch rotation and restore swaps
     stay visible. The per-tuple [on_tuple] entry is never called — every
     event goes through the batch below. *)
  let on_tuples (tp : Cdc.tuples) =
    match ctx.par with
    | None ->
      W.collect_tuples ctx.whomp tp;
      Leap.collect_tuples ctx.leap tp
    | Some p -> Parallel.stage_tuples p tp
  in
  let on_tuple _ = assert false in
  let cdc, resumed_from, replay_tail, journal_resume =
    match restore with
    | None -> (Cdc.create ~site_name ~on_tuple (), None, [||], None)
    | Some r ->
      let snap = r.rs_snapshot in
      let gi, gg, go, gf = snap.Snapshot.whomp in
      ctx.whomp <- W.collector ~restore:(gi, gg, go, gf) ();
      ctx.rasg <- snap.Snapshot.rasg;
      (* With jobs > 1 the LEAP state is restored into the shard pool
         below instead; [ctx.leap] stays an unused empty collector (the
         stream records are mutable — they must not be shared). *)
      if jobs <= 1 then
        ctx.leap <-
          Leap.collector ?budget:options.leap_budget ~max_streams:options.max_streams
            ~restore:snap.Snapshot.leap ();
      ctx.position <- snap.Snapshot.position;
      ctx.rotations <- snap.Snapshot.rotations;
      ctx.epochs <- snap.Snapshot.epochs;
      ctx.degradations <- snap.Snapshot.degradations;
      ctx.epoch_start <-
        (match List.rev snap.Snapshot.epochs with e :: _ -> e.Snapshot.ep_to | [] -> 0);
      ctx.rasg_accesses <- snap.Snapshot.cdc.Cdc.s_clock + snap.Snapshot.cdc.Cdc.s_wild;
      ctx.jcrc <- snap.Snapshot.journal_crc;
      ( Cdc.of_state ~site_name ~on_tuple snap.Snapshot.cdc,
        Some snap.Snapshot.position,
        r.rs_tail,
        Some (r.rs_count, r.rs_crc) )
  in
  (* Spawn the compressor domains over the (possibly restored) live state —
     before Phase A, so replayed events flow down the same pipeline. *)
  if jobs > 1 then
    ctx.par <-
      Some
        (Parallel.spawn ~jobs ~whomp:ctx.whomp ~rasg:ctx.rasg
           ~leap_budget:options.leap_budget ~max_streams:options.max_streams
           ~leap_restore:
             (match restore with
             | Some r -> Some r.rs_snapshot.Snapshot.leap
             | None -> None)
           ());
  let batch = Cdc.batch_tuples cdc ~on_tuples () in
  (* Phase A: replay the journal tail the dead run wrote after its last
     snapshot. Triggers re-fire (rotations must be re-applied; snapshot
     rewrites are idempotent), but nothing is re-journaled — the CRC is
     re-derived instead so rewritten snapshots carry the right value. *)
  let replayed = Array.length replay_tail in
  if replayed > 0 then
    (Tm.span ~name:"session.replay" @@ fun () ->
     Array.iter
       (fun ev ->
         ctx.jcrc <- Ormp_util.Crc32.update ctx.jcrc (Tf.event_line ev);
         apply ctx batch ev;
         triggers ctx cdc batch)
       replay_tail);
  ctx.journal <-
    Some
      (match journal_resume with
      | None -> Journal.create ?io (dir // journal_file)
      | Some (count, crc) -> Journal.create ?io ~resume:(count, crc) (dir // journal_file));
  (* Phase B: (re-)execute the workload. The first [skip] events were already
     incorporated via snapshot + replay; they are regenerated (the VM is
     deterministic), CRC-checked against the journal, and dropped. *)
  let skip = match restore with None -> 0 | Some r -> r.rs_count in
  let expect_crc = match restore with None -> 0 | Some r -> r.rs_crc in
  let gen = ref 0 and regen_crc = ref 0 in
  let sink ev =
    if !gen < skip then begin
      regen_crc := Ormp_util.Crc32.update !regen_crc (Tf.event_line ev);
      incr gen;
      if !gen = skip && !regen_crc <> expect_crc then
        raise
          (Resume_diverged
             (Printf.sprintf "re-executed events [0,%d) differ from the journal (crc %d, journal %d)"
                skip !regen_crc expect_crc))
    end
    else begin
      incr gen;
      journal_append ctx ev;
      apply ctx batch ev;
      triggers ctx cdc batch
    end
  in
  let close_journal () =
    match ctx.journal with
    | None -> ()
    | Some j ->
      (try Journal.flush j with Sys_error _ -> ());
      Journal.close j;
      ctx.journal <- None
  in
  (* No domain may outlive the run, whichever way it ends. On the failure
     paths the original error wins over any secondary worker failure. *)
  let abandon_pipeline () =
    match ctx.par with
    | Some p -> ( try Parallel.shutdown p with _ -> ())
    | None -> ()
  in
  match Ormp_vm.Runner.run ~config program sink with
  | exception Resume_diverged msg ->
    abandon_pipeline ();
    close_journal ();
    Error msg
  | result ->
    close_journal ();
    (* Translate the staged tail, then quiesce and join the compressor
       domains: a worker failure surfaces here (with the journal already
       durable for a resume), and afterwards every grammar and shard is
       frozen for [write_outputs] to serialize. *)
    Batch.flush batch;
    (match ctx.par with Some p -> Parallel.shutdown p | None -> ());
    table := Some result.Ormp_vm.Runner.table;
    write_outputs ctx cdc ~elapsed:result.Ormp_vm.Runner.elapsed;
    let outcome =
      {
        oc_dir = dir;
        oc_workload = workload;
        oc_position = ctx.position;
        oc_collected = Cdc.collected cdc;
        oc_wild = Cdc.wild cdc;
        oc_checkpoints = ctx.checkpoints_written;
        oc_resumed_from = resumed_from;
        oc_replayed = replayed;
        oc_rotations = ctx.rotations;
        oc_epochs = ctx.epochs;
        oc_degradations = ctx.degradations;
        oc_elapsed = result.Ormp_vm.Runner.elapsed;
      }
    in
    Storage.write_atomic ~path:(dir // report_file) (S.to_string (outcome_to_sexp outcome) ^ "\n");
    Ok outcome
  | exception exn ->
    (* Leave the journal durable for a later [resume], then let the failure
       travel with its original backtrace ([Io.Killed] reaches the CLI). *)
    let bt = Printexc.get_raw_backtrace () in
    abandon_pipeline ();
    close_journal ();
    Printexc.raise_with_backtrace exn bt

(* --- public entry points ----------------------------------------------- *)

let run ?io ?heartbeat_every ?jobs ?(config = Ormp_vm.Config.default)
    ?(options = default_options) ~dir ~workload () =
  let* _ = find_workload workload in
  mkdirs dir;
  if Sys.file_exists (dir // manifest_file) then
    Error (Printf.sprintf "session already exists in %s (use resume)" dir)
  else begin
    Storage.write_atomic ~path:(dir // manifest_file)
      (S.to_string (manifest_to_sexp ~workload ~config ~options) ^ "\n");
    execute ?io ?heartbeat_every ?jobs ~dir ~workload ~config ~options ~restore:None ()
  end

let newest_snapshot dir =
  let ordinals =
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun f ->
           match String.length f > 9 && String.sub f 0 9 = "snapshot-" with
           | true -> int_of_string_opt (String.sub f 9 (String.length f - 9))
           | false -> None)
    |> List.sort (fun a b -> compare b a)
  in
  let rec first_valid = function
    | [] -> None
    | k :: rest -> (
      match Snapshot.load (dir // snapshot_file k) with
      | Ok snap -> Some snap
      | Error _ -> first_valid rest)
  in
  first_valid ordinals

let resume ?io ?heartbeat_every ?jobs ~dir () =
  let* manifest_sexp =
    match S.load (dir // manifest_file) with
    | Ok s -> Ok s
    | Error e -> Error (Printf.sprintf "no session in %s: %s" dir e)
  in
  let* workload, config, options = manifest_of_sexp manifest_sexp in
  let restore =
    match newest_snapshot dir with
    | None -> None
    | Some snap -> (
      match Journal.recover ~at:snap.Snapshot.position (dir // journal_file) with
      | Error _ -> None
      | Ok r ->
        if r.Journal.crc_at <> snap.Snapshot.journal_crc then None
        else
          Some
            {
              rs_snapshot = snap;
              rs_tail =
                Array.sub r.Journal.events snap.Snapshot.position
                  (Array.length r.Journal.events - snap.Snapshot.position);
              rs_count = Array.length r.Journal.events;
              rs_crc = r.Journal.r_crc;
            })
  in
  (* With no usable snapshot (or a journal that contradicts it), fall back
     to a from-scratch run over the same manifest — correct, just slower. *)
  execute ?io ?heartbeat_every ?jobs ~dir ~workload ~config ~options ~restore ()

let status ~dir =
  let* manifest_sexp =
    match S.load (dir // manifest_file) with
    | Ok s -> Ok s
    | Error e -> Error (Printf.sprintf "no session in %s: %s" dir e)
  in
  let* workload, _, _ = manifest_of_sexp manifest_sexp in
  let st_snapshot =
    match newest_snapshot dir with
    | None -> None
    | Some s -> Some (s.Snapshot.checkpoint, s.Snapshot.position)
  in
  let st_journal =
    match Journal.recover (dir // journal_file) with
    | Ok r -> Some (Array.length r.Journal.events)
    | Error _ -> None
  in
  Ok
    {
      st_workload = workload;
      st_snapshot;
      st_journal;
      st_complete = Sys.file_exists (dir // report_file);
    }
