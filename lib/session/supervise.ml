(* lint:allow-file atomic — supervision-plane state (cancel flag, result
   slot), not transport: it pairs with Unix timeouts and real wall-clock
   deadlines, which the deterministic model checker cannot trace anyway. *)

exception Cancelled

type failure = { attempts : int; error : string; backtrace : string }

type 'a outcome =
  | Completed of 'a
  | Failed of failure
  | Timed_out of { attempts : int; timeout_s : float }

type 'a slot = Pending | Done of 'a | Raised of exn * string

let attempt ?timeout_s task =
  let cancel = Atomic.make false in
  let slot = Atomic.make Pending in
  let should_stop () = Atomic.get cancel in
  let d =
    Domain.spawn (fun () ->
        (* Backtrace recording is per-domain state; without this the
           failure report's backtrace is always empty. *)
        Printexc.record_backtrace true;
        match task ~should_stop with
        | v -> Atomic.set slot (Done v)
        | exception exn ->
          Atomic.set slot (Raised (exn, Printexc.get_backtrace ())))
  in
  let deadline =
    match timeout_s with None -> None | Some s -> Some (Unix.gettimeofday () +. s)
  in
  let timed_out = ref false in
  let rec wait () =
    match Atomic.get slot with
    | Pending -> (
      match deadline with
      | Some t when Unix.gettimeofday () > t && not (Atomic.get cancel) ->
        (* Past the deadline: flip the cooperative stop flag and keep
           waiting — the task notices at its next guard poll and raises
           {!Cancelled}, which ends the domain. OCaml domains cannot be
           killed from outside, so this only terminates tasks that keep
           emitting events (which is what a profiled hang looks like). *)
        timed_out := true;
        Atomic.set cancel true;
        wait ()
      | _ ->
        (* lint:allow blocking-io — 2ms poll tick, trivially bounded *)
        Unix.sleepf 0.002;
        wait ())
    | Done _ | Raised _ -> ()
  in
  wait ();
  Domain.join d;
  match Atomic.get slot with
  | Done v -> `Done v
  | Raised (Cancelled, _) -> `Timed_out
  | Raised _ when !timed_out ->
    (* The cancel flag can surface as a secondary exception from inside the
       workload; the root cause is still the deadline. *)
    `Timed_out
  | Raised (exn, bt) -> `Raised (Printexc.to_string exn, bt)
  | Pending -> assert false

let run ?timeout_s ?(retries = 0) ?(backoff_s = 0.05) task =
  let rec go_attempt n =
    match attempt ?timeout_s task with
    | `Done v -> Completed v
    | `Timed_out -> Timed_out { attempts = n; timeout_s = Option.value ~default:0.0 timeout_s }
    | `Raised (error, backtrace) ->
      if n <= retries then begin
        (* Crashes retry with linear backoff; timeouts do not (a hang that
           exhausted its budget once will again). *)
        (* lint:allow blocking-io — finite retry backoff between attempts *)
        Unix.sleepf (backoff_s *. float_of_int n);
        go_attempt (n + 1)
      end
      else Failed { attempts = n; error; backtrace }
  in
  go_attempt 1
