module S = Ormp_util.Sexp
module W = Ormp_whomp.Whomp
module Faults = Ormp_workloads.Faults
module Registry = Ormp_workloads.Registry

let ( // ) = Filename.concat

type fault = Crash | Hang

let fault_name = function Crash -> "crash" | Hang -> "hang"

type success = { sc_collected : int; sc_wild : int; sc_omsg : int; sc_elapsed : float }

type entry = {
  en_workload : string;
  en_fault : fault option;
  en_outcome : success Supervise.outcome;
}

type report = {
  rp_entries : entry list;
  rp_completed : int;
  rp_failed : int;
  rp_timed_out : int;
  rp_elapsed : float;
}

(* Check the stop flag once every 1024 events: cheap against a per-event
   profile cost, frequent against any workload that is still making
   progress (a hang inside the probe stream keeps emitting events, so the
   guard is guaranteed to run). *)
let guarded_sink should_stop inner =
  let n = ref 0 in
  fun ev ->
    incr n;
    if !n land 1023 = 0 && should_stop () then raise Supervise.Cancelled;
    inner ev

let profile_task ?config ?(jobs = 1) program ~should_stop =
  let table = ref None in
  let site_name site =
    match !table with
    | None -> Printf.sprintf "site%d" site
    | Some t -> (Ormp_trace.Instr.info t site).Ormp_trace.Instr.name
  in
  if jobs <= 1 then begin
    let sink, finalize = W.sink ~site_name () in
    let result = Ormp_vm.Runner.run ?config program (guarded_sink should_stop sink) in
    table := Some result.Ormp_vm.Runner.table;
    finalize ~elapsed:result.Ormp_vm.Runner.elapsed
  end
  else begin
    let t = Ormp_whomp.Par_scc.create ~jobs ~site_name () in
    (* A cancellation (or any fault) raised by the guarded sink must still
       join the compressor domains before it propagates to Supervise. *)
    Fun.protect
      ~finally:(fun () -> try Ormp_whomp.Par_scc.shutdown t with _ -> ())
      (fun () ->
        let result =
          Ormp_vm.Runner.run ?config program
            (guarded_sink should_stop (Ormp_whomp.Par_scc.sink t))
        in
        table := Some result.Ormp_vm.Runner.table;
        Ormp_whomp.Par_scc.finalize t ~elapsed:result.Ormp_vm.Runner.elapsed)
  end

let run ?(bench = false) ?timeout_s ?(retries = 1) ?backoff_s ?(faults = []) ?config ?jobs
    ?out_dir () =
  let t0 = Ormp_util.Clock.now_s () in
  (match out_dir with
  | Some d -> if not (Sys.file_exists d) then Unix.mkdir d 0o755
  | None -> ());
  let entries =
    List.map
      (fun (e : Registry.entry) ->
        let fault = List.assoc_opt e.Registry.name faults in
        let program =
          let p = Registry.program ~bench e in
          match fault with
          | None -> p
          | Some Crash -> Faults.crashing p
          | Some Hang -> Faults.hanging p
        in
        let outcome =
          Supervise.run ?timeout_s ~retries ?backoff_s (fun ~should_stop ->
              Ormp_telemetry.Telemetry.span ~name:("suite:" ^ e.Registry.name) @@ fun () ->
              let p = profile_task ?config ?jobs program ~should_stop in
              (match out_dir with
              | Some d ->
                Ormp_persist.Whomp_io.save (d // (e.Registry.name ^ ".whomp")) p
              | None -> ());
              {
                sc_collected = p.W.collected;
                sc_wild = p.W.wild;
                sc_omsg = W.omsg_size p;
                sc_elapsed = p.W.elapsed;
              })
        in
        { en_workload = e.Registry.name; en_fault = fault; en_outcome = outcome })
      Registry.spec
  in
  let count f = List.length (List.filter f entries) in
  {
    rp_entries = entries;
    rp_completed = count (fun e -> match e.en_outcome with Supervise.Completed _ -> true | _ -> false);
    rp_failed = count (fun e -> match e.en_outcome with Supervise.Failed _ -> true | _ -> false);
    rp_timed_out =
      count (fun e -> match e.en_outcome with Supervise.Timed_out _ -> true | _ -> false);
    rp_elapsed = Ormp_util.Clock.now_s () -. t0;
  }

let entry_to_sexp (e : entry) =
  let base =
    [
      S.field "workload" [ S.atom e.en_workload ];
      S.field "fault"
        [ S.atom (match e.en_fault with None -> "-" | Some f -> fault_name f) ];
    ]
  in
  S.field "entry"
    (base
    @
    match e.en_outcome with
    | Supervise.Completed s ->
      [
        S.field "outcome" [ S.atom "completed" ];
        S.field "collected" [ S.int s.sc_collected ];
        S.field "wild" [ S.int s.sc_wild ];
        S.field "omsg" [ S.int s.sc_omsg ];
      ]
    | Supervise.Failed f ->
      [
        S.field "outcome" [ S.atom "failed" ];
        S.field "attempts" [ S.int f.Supervise.attempts ];
        S.field "error" [ S.atom f.Supervise.error ];
      ]
    | Supervise.Timed_out t ->
      [
        S.field "outcome" [ S.atom "timed-out" ];
        S.field "attempts" [ S.int t.attempts ];
      ])

let report_to_sexp (r : report) =
  S.field "ormp-suite-report"
    ([
       S.field "completed" [ S.int r.rp_completed ];
       S.field "failed" [ S.int r.rp_failed ];
       S.field "timed-out" [ S.int r.rp_timed_out ];
     ]
    @ List.map entry_to_sexp r.rp_entries)

let save_report path r = S.save path (report_to_sexp r)
