(** Sequitur grammar compression (Nevill-Manning & Witten, 1997).

    Sequitur incrementally builds a context-free grammar for an input
    sequence by enforcing two constraints: {e digram uniqueness} (no pair of
    adjacent symbols occurs more than once in the grammar) and {e rule
    utility} (every rule is used at least twice). WHOMP feeds each
    decomposed object-relative stream to one instance of this compressor;
    the RASG baseline feeds it the raw address stream.

    Terminals are arbitrary OCaml [int]s. The grammar is lossless:
    {!expand} reproduces exactly the pushed sequence. *)

type t
(** An incremental Sequitur compressor and the grammar built so far. *)

val create : ?size_hint:int -> unit -> t
(** Fresh compressor with an empty start rule. [size_hint] — the expected
    input-stream length, when the caller knows it — pre-sizes the digram
    hashtable so the incremental build never pays a rehash; the grammar
    produced is identical either way. *)

val push : t -> int -> unit
(** Append one terminal to the input sequence and restore the grammar
    constraints. Amortized ~O(1). *)

val push_array : t -> int array -> unit
(** [push] every element in order. *)

val push_batch : t -> int array -> off:int -> len:int -> unit
(** [push_batch t a ~off ~len] pushes [a.(off) .. a.(off + len - 1)] in
    order — the bulk entry point the WHOMP/RASG/LEAP sinks and the
    parallel compressor pools feed whole SoA chunk lanes through, avoiding
    per-symbol call overhead. Equivalent to [len] single {!push}es.
    @raise Invalid_argument if [off]/[len] do not denote a valid span. *)

val input_length : t -> int
(** Number of terminals pushed so far. *)

val grammar_size : t -> int
(** Total number of symbols on the right-hand sides of all live rules —
    the standard Sequitur size metric used for the paper's compression
    comparisons. *)

val rule_count : t -> int
(** Number of live rules, including the start rule. *)

val byte_size : t -> int
(** Serialized size estimate in bytes: every RHS symbol is charged its
    varint width (terminals by value, non-terminals by rule id, one tag
    bit), plus one separator byte per rule. *)

val expand : t -> int array
(** Decompress: the exact sequence of terminals pushed so far. *)

val rules : t -> (int * [ `T of int | `N of int ] list) list
(** Live rules as [(rule-id, right-hand side)], start rule (id 0) first,
    for display and testing. *)

val iter_rules : t -> (int -> [ `T of int | `N of int ] list -> unit) -> unit
(** Iterate live rules in ascending rule-id order (start rule first) —
    the same deterministic order as {!rules} without materializing the
    whole listing, and without the per-call sorted-id list the previous
    implementation built: rule ids are monotonic, so an ascending id scan
    is already sorted. Serialization ([persist]) and verification
    ([check]) enumerate rules through this. *)

val of_rules : (int * [ `T of int | `N of int ] list) list -> (t, string) result
(** Rebuild a live compressor from a {!rules} listing: the start rule is
    expanded (rejecting dangling and cyclic rule references) and the
    terminal sequence re-pushed. Sequitur is deterministic, so the rebuilt
    grammar has exactly the saved rules — ids included — and further
    {!push}es continue as if the original compressor had never stopped.
    This is what makes grammar state checkpointable: a snapshot is just
    {!rules}. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print the grammar, one rule per line ([R0 -> a R1 R1]). *)

val check_invariants : t -> (unit, string) result
(** Validate internal consistency: doubly-linked list integrity, no dead
    symbol reachable, reference counts matching actual uses, every digram
    index entry live and matching its key, and rule utility (every
    non-start rule used at least twice). For tests. *)

(**/**)

val gen_sweep : t -> unit
(** Re-baseline the generation counters that detect stale digram-index
    entries: drop stale entries, restart every live generation at zero.
    Runs automatically (between pushes) before a counter can outgrow its
    packed field — after hundreds of millions of symbol deaths — so tests
    exercise it directly; calling it at any push boundary must leave the
    grammar and all subsequent pushes unchanged. *)
