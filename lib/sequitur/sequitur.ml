(* Flat-arena port of the reference Sequitur algorithm (Nevill-Manning &
   Witten). The previous OCaml implementation boxed every symbol as a
   4-mutable-word record and indexed digrams through a [Hashtbl] whose
   [find_opt] allocated an option per push — per-access heap churn on the
   hottest path of the whole profiler. This rewrite stores symbols as slots
   in one interleaved int array and the digram index as an open-addressing
   int->int table, so a [push] in the common no-match case touches no
   allocator at all.

   Layout:

   - Symbols are stride-4 records in one int array [sym]; a slot is the
     base offset (a multiple of 4) of its record, whose four words are
     [code] (terminal value or rule id, stored verbatim), [prv]/[nxt]
     (doubly-linked RHS list, holding slot base offsets), and [meta]. The
     four words of a symbol share one cache line (a 64-byte line holds two
     whole records), where the previous four-parallel-column layout
     touched four lines per symbol — the constraint cascade walks
     code+links+meta of the same symbol constantly, and the large
     dimension grammars (thousands of live symbols) were paying a miss per
     column. A [meta] word packs
     [generation lsl 3 | nonterm lsl 2 | allocated lsl 1 | guard]. The
     generation is bumped when a symbol dies, so a digram-index entry that
     remembers the generation it was created under detects that its slot
     has since died — the arena equivalent of the old [dead] flag, with
     the same validate-on-lookup discipline instead of the reference
     implementation's "triples" re-indexing hack.
   - Arena accesses on the push path are unchecked ([Array.unsafe_get]):
     every slot that reaches them came out of [alloc_sym] below [sym_top],
     and links only ever hold such slots — [check_invariants] validates
     the link structure in tests.
   - Dead slots keep their code, tag and links frozen until the current
     push's constraint cascade has fully settled, and only then join the
     free list (threaded through [nxt]): the record implementation's dead
     records stayed intact under the GC, and the cascade does read through
     them — e.g. re-indexing a just-created rule's first digram after a
     deeper substitution already retired that rule. Freeing eagerly would
     let a recycled slot alias a dead one mid-cascade and change the
     grammar. Allocation is pop-or-bump-top.
   - Rules are identified by their monotonically-assigned id. Two columns
     indexed by id hold the guard slot ([rule_guard], bit-complemented on
     retirement so dead rules stay addressable) and the reference count.
     Ids are never recycled, so iterating ids in ascending order
     enumerates live rules start-rule-first with no sort and no
     allocation (the old implementation built a sorted id list per
     [fold_rules] call).
   - The digram index is linear-probing open addressing over three
     parallel arrays (packed key, slot, slot generation at insert), with
     -1/-2 empty/tombstone sentinels in the slot column and a
     multiplicative hash — no polymorphic hashing, no per-operation
     allocation. The table is kept at most half full (counting
     tombstones), so probes terminate.

   Symbol codes, digram keys, operation order and the digram-index binding
   semantics (single binding per key, replace overwrites, remove deletes)
   are carried over exactly from the record implementation, so the grammar
   built for any input — including packed-key collisions from oversized or
   negative terminals — is identical symbol-for-symbol, rule ids included.
   [test/sequitur_legacy.ml] keeps the old implementation alive to prove
   this property under qcheck. *)

module Tm = Ormp_telemetry.Telemetry

(* Telemetry only at the rare structural events (rule creation, retirement,
   utility inlining) — never per push, which runs once per profiled access
   across four grammar dimensions. Even the structural counts are batched:
   cascades bump plain fields on [t] and [flush_tm] publishes them once
   per [push]/[push_batch], so the domain-local store is touched a few
   times per batch instead of once per match. The enable flag is likewise
   sampled once per push entry ([tm_on]) instead of per structural event —
   [Tm.on] is a cross-module atomic read the cascade would otherwise pay
   several times per match. *)
let m_matches = Tm.Metrics.counter "sequitur.matches"
let m_rules_created = Tm.Metrics.counter "sequitur.rules_created"
let m_rules_retired = Tm.Metrics.counter "sequitur.rules_retired"
let m_utility_inlines = Tm.Metrics.counter "sequitur.utility_inlines"

type t = {
  (* symbol arena: interleaved [code; prv; nxt; meta] records, slots are
     base offsets (multiples of 4) *)
  mutable sym : int array;
  mutable sym_top : int;
  mutable free_head : int;  (* free list through [nxt]; -1 = empty *)
  mutable pend : int array;  (* dead slots awaiting end-of-push reclaim *)
  mutable pend_len : int;
  (* rules, indexed by id *)
  mutable rule_guard : int array;  (* guard slot; [lnot slot] once retired *)
  mutable rule_refs : int array;
  mutable next_rule_id : int;
  mutable live_rule_count : int;
  (* digram index: open addressing, linear probing. Entries are
     interleaved [key; slot lor (gen lsl 34)] pairs in one array: a
     16-byte entry never straddles a cache line (the old [key;slot;gen]
     triplet did every third entry) and the table is a third smaller —
     the offset dimension's index is the single largest structure the
     combined profile touches, and the four dimension grammars share the
     cache when a chunk interleaves them. The packed word -1 = empty,
     -2 = tombstone; gen is the slot's generation at insert time, and
     [gen_sweep] restarts generations before the 29-bit field can wrap. *)
  mutable dig : int array;
  mutable dig_mask : int;
  mutable dig_live : int;  (* live bindings *)
  mutable dig_used : int;  (* live bindings + tombstones *)
  mutable input_len : int;
  mutable need_sweep : bool;  (* a generation reached the packed-field limit *)
  (* telemetry accumulators, published by [flush_tm] *)
  mutable tm_on : bool;
  mutable tm_matches : int;
  mutable tm_created : int;
  mutable tm_retired : int;
  mutable tm_inlines : int;
}

let flush_tm t =
  if t.tm_matches <> 0 then begin
    Tm.Metrics.add m_matches t.tm_matches;
    t.tm_matches <- 0
  end;
  if t.tm_created <> 0 then begin
    Tm.Metrics.add m_rules_created t.tm_created;
    t.tm_created <- 0
  end;
  if t.tm_retired <> 0 then begin
    Tm.Metrics.add m_rules_retired t.tm_retired;
    t.tm_retired <- 0
  end;
  if t.tm_inlines <> 0 then begin
    Tm.Metrics.add m_utility_inlines t.tm_inlines;
    t.tm_inlines <- 0
  end

(* --- symbol arena ------------------------------------------------------ *)

let tag_guard = 1
let tag_live = 2
let tag_nonterm = 4

(* Digram-index entries pack [slot lor (gen lsl slot_bits)] into one word;
   [gen_sweep] re-baselines all generations before one can outgrow the
   field. *)
let slot_bits = 34
let slot_mask = (1 lsl slot_bits) - 1
let gen_limit = (1 lsl 29) - 1

let s_code t s = Array.unsafe_get t.sym s
let s_prv t s = Array.unsafe_get t.sym (s + 1)
let s_nxt t s = Array.unsafe_get t.sym (s + 2)
let s_meta t s = Array.unsafe_get t.sym (s + 3)
let set_prv t s v = Array.unsafe_set t.sym (s + 1) v
let set_nxt t s v = Array.unsafe_set t.sym (s + 2) v
let is_guard t s = s_meta t s land tag_guard <> 0
let is_live t s = s_meta t s land tag_live <> 0
let is_nonterm t s = s_meta t s land tag_nonterm <> 0
let gen t s = s_meta t s lsr 3

(* The record implementation's [code_of]: terminals on the even codes,
   rule ids on the odd. Used for digram keys, digram comparison and
   byte-size accounting only — the raw 63-bit value in [code] is what
   [expand] reproduces, so the top-bit truncation here affects matching
   exactly as before and storage not at all. *)
let sym_code t s =
  let c = s_code t s in
  if is_nonterm t s then (c lsl 1) lor 1 else c lsl 1

let grow_syms t =
  let n = Array.length t.sym in
  (* Slots must fit the digram entries' 34-bit slot field; 2^34 words of
     arena is 128 GiB — unreachable, but fail loud rather than pack a
     truncated slot. *)
  if n * 2 > (1 lsl 34) - 1 then failwith "Sequitur: symbol arena limit";
  let b = Array.make (n * 2) 0 in
  Array.blit t.sym 0 b 0 n;
  t.sym <- b

(* Fresh symbols are self-linked, like the record implementation's
   [fresh]. The accumulated generation survives recycling. *)
let alloc_sym t tag code =
  let s =
    match t.free_head with
    | -1 ->
      if t.sym_top = Array.length t.sym then grow_syms t;
      let s = t.sym_top in
      t.sym_top <- s + 4;
      s
    | s ->
      t.free_head <- s_nxt t s;
      s
  in
  let g = gen t s in
  let a = t.sym in
  Array.unsafe_set a s code;
  Array.unsafe_set a (s + 1) s;
  Array.unsafe_set a (s + 2) s;
  Array.unsafe_set a (s + 3) ((g lsl 3) lor tag_live lor tag);
  s

(* Death bumps the generation (any digram-index entry still naming this
   slot now reads as stale, exactly like the old [dead] flag) but freezes
   code, tag and links, and only queues the slot for reclaim — see the
   layout comment on why mid-cascade reads of dead slots must keep seeing
   the dead symbol's data. *)
let mark_dead t s =
  let m = s_meta t s in
  let g = (m lsr 3) + 1 in
  Array.unsafe_set t.sym (s + 3) ((g lsl 3) lor (m land (tag_guard lor tag_nonterm)));
  if g >= gen_limit then t.need_sweep <- true;
  if t.pend_len = Array.length t.pend then begin
    let b = Array.make (2 * t.pend_len) 0 in
    Array.blit t.pend 0 b 0 t.pend_len;
    t.pend <- b
  end;
  Array.unsafe_set t.pend t.pend_len s;
  t.pend_len <- t.pend_len + 1

(* End-of-push reclaim: the cascade has settled, nothing references the
   dead slots any more; thread them onto the free list. *)
let reclaim_dead t =
  for i = 0 to t.pend_len - 1 do
    let s = Array.unsafe_get t.pend i in
    set_nxt t s t.free_head;
    t.free_head <- s
  done;
  t.pend_len <- 0

(* --- rules ------------------------------------------------------------- *)

let grow_rules t want =
  let cap = Array.length t.rule_guard in
  if want > cap then begin
    let cap' = max want (cap * 2) in
    let g def a =
      let b = Array.make cap' def in
      Array.blit a 0 b 0 cap;
      b
    in
    t.rule_guard <- g (-1) t.rule_guard;
    t.rule_refs <- g 0 t.rule_refs
  end

(* A guard slot's [code] is its rule id. *)
let make_rule t id =
  grow_rules t (id + 1);
  t.rule_guard.(id) <- alloc_sym t tag_guard id;
  t.rule_refs.(id) <- 0;
  t.live_rule_count <- t.live_rule_count + 1

(* Retired rules stay addressable ([lnot slot]): a deep cascade can retire
   a rule the enclosing [process_match] still holds, which then re-reads
   [first]/[last] through the dead guard — the record implementation did
   the same through its garbage guard record. *)
let guard_slot t r =
  let g = Array.unsafe_get t.rule_guard r in
  if g >= 0 then g else lnot g

let first t r = s_nxt t (guard_slot t r)
let last t r = s_prv t (guard_slot t r)
let reuse t r = t.rule_refs.(r) <- t.rule_refs.(r) + 1

(* Guarded on liveness: [expand_symbol] reaches here twice for the same
   rule (via [deuse] and directly), and retirement must count once. *)
let kill_rule t r =
  let g = t.rule_guard.(r) in
  if g >= 0 then begin
    mark_dead t g;
    t.rule_guard.(r) <- lnot g;
    t.live_rule_count <- t.live_rule_count - 1;
    if t.tm_on then t.tm_retired <- t.tm_retired + 1
  end

let deuse t r =
  t.rule_refs.(r) <- t.rule_refs.(r) - 1;
  if t.rule_refs.(r) = 0 && r <> 0 then kill_rule t r

(* --- digram index ------------------------------------------------------ *)

(* Packed digram keys, identical to the record implementation (see the
   comment there): injective while both codes fit in 31 non-negative bits;
   collisions from oversized or negative codes are re-validated on every
   hit, so they cost at most a missed match. *)
let pack hi lo = (hi lsl 31) lxor lo

(* Multiplicative finalizer: packed keys put most entropy in the high bits,
   the table index wants it low. *)
let mix k =
  let h = k * 0x2545F4914F6CDD1D in
  h lxor (h lsr 32)

(* Find [key]. Returns the entry's base offset into [dig] (>= 0, a
   multiple of 2), or [lnot b] where [b] is the insertion entry's base —
   first tombstone on the probe path if any, else the terminating empty
   entry. Single-int result so the hot path allocates nothing. *)
let dig_probe t key =
  let mask = t.dig_mask in
  let d = t.dig in
  let i = ref (mix key land mask) in
  let ins = ref (-1) in
  let res = ref 0 in
  let probing = ref true in
  while !probing do
    let b = 2 * !i in
    let v = Array.unsafe_get d (b + 1) in
    if v = -1 then begin
      res := lnot (if !ins >= 0 then !ins else b);
      probing := false
    end
    else if v = -2 then begin
      if !ins < 0 then ins := b;
      i := (!i + 1) land mask
    end
    else if Array.unsafe_get d b = key then begin
      res := b;
      probing := false
    end
    else i := (!i + 1) land mask
  done;
  !res

let dig_alloc cap =
  let d = Array.make (2 * cap) 0 in
  let i = ref 1 in
  while !i < 2 * cap do
    d.(!i) <- -1;
    i := !i + 2
  done;
  d

let dig_rehash t cap' =
  let od = t.dig in
  let n = Array.length od / 2 in
  let d = dig_alloc cap' in
  t.dig <- d;
  t.dig_mask <- cap' - 1;
  t.dig_used <- t.dig_live;
  let mask = t.dig_mask in
  for i = 0 to n - 1 do
    let v = od.((2 * i) + 1) in
    if v >= 0 then begin
      let key = od.(2 * i) in
      let j = ref (mix key land mask) in
      while d.((2 * !j) + 1) >= 0 do
        j := (!j + 1) land mask
      done;
      let b = 2 * !j in
      d.(b) <- key;
      d.(b + 1) <- v
    end
  done

(* Keep at least half the table empty-or-reusable so probes stay short and
   always terminate: resize when live+tombstones reach half capacity; grow
   only when live bindings justify it, otherwise rehash in place to purge
   tombstones. *)
let dig_maybe_resize t =
  let cap = t.dig_mask + 1 in
  if t.dig_used * 2 >= cap then
    dig_rehash t (if t.dig_live * 3 >= cap then cap * 2 else cap)

(* Insert at probe-result base [ins]; no binding for [key] exists. *)
let dig_insert_at t ins key slot =
  let d = t.dig in
  let reused_tombstone = Array.unsafe_get d (ins + 1) = -2 in
  Array.unsafe_set d ins key;
  Array.unsafe_set d (ins + 1) (slot lor (gen t slot lsl slot_bits));
  t.dig_live <- t.dig_live + 1;
  if not reused_tombstone then t.dig_used <- t.dig_used + 1;
  dig_maybe_resize t

(* [Hashtbl.replace] semantics: overwrite the single binding or insert. *)
let dig_replace t key slot =
  let p = dig_probe t key in
  if p >= 0 then
    Array.unsafe_set t.dig (p + 1) (slot lor (gen t slot lsl slot_bits))
  else dig_insert_at t (lnot p) key slot

(* Remove the binding for [key], but only if it names exactly this live
   occurrence (slot and generation — one packed compare). *)
let dig_remove_if t key slot =
  let p = dig_probe t key in
  if p >= 0 then begin
    let d = t.dig in
    if Array.unsafe_get d (p + 1) = slot lor (gen t slot lsl slot_bits) then begin
      Array.unsafe_set d (p + 1) (-2);
      t.dig_live <- t.dig_live - 1
    end
  end

(* Generations are packed into 29 bits of a digram entry. A pathological
   stream could in principle drive one slot's death count to the field
   limit (hundreds of millions of deaths of a single recycled slot);
   before that happens, re-baseline: drop stale entries outright, then
   restart every generation — stored and live — at zero. Entry validity
   is preserved exactly (stale entries were already dead to every lookup,
   live entries still name their slot's current generation), so the
   grammar is unaffected. O(table + arena), amortized over 2^29 deaths.
   Runs between pushes, never mid-cascade — [push_one] checks the flag
   after the cascade settles, and a slot dies at most once per cascade
   (dead slots are not recycled until [reclaim_dead]), so a generation
   exceeds [gen_limit] by at most the one increment that set the flag. *)
let gen_sweep t =
  let d = t.dig in
  for i = 0 to t.dig_mask do
    let b = 2 * i in
    let v = d.(b + 1) in
    if v >= 0 then begin
      let slot = v land slot_mask in
      if v lsr slot_bits <> gen t slot then begin
        d.(b + 1) <- -2;
        t.dig_live <- t.dig_live - 1
      end
      else d.(b + 1) <- slot (* generation 0 *)
    end
  done;
  let s = ref 0 in
  while !s < t.sym_top do
    t.sym.(!s + 3) <- t.sym.(!s + 3) land (tag_guard lor tag_live lor tag_nonterm);
    s := !s + 4
  done;
  t.need_sweep <- false

(* --- construction ------------------------------------------------------ *)

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(size_hint = 0) () =
  (* A stream of n symbols keeps at most ~n live digram entries (grammar
     size is bounded by input length); pre-sizing the index to twice the
     expected stream length eliminates every rehash of the doubling
     schedule while preserving the half-empty probe guarantee. The symbol
     arena is likewise pre-sized — live symbols never exceed grammar size
     plus live guards. *)
  let dig_cap = next_pow2 (max 8192 (2 * size_hint)) in
  let sym_cap = max 1024 (next_pow2 size_hint) in
  let t =
    {
      sym = Array.make (4 * sym_cap) 0;
      sym_top = 0;
      free_head = -1;
      pend = Array.make 64 0;
      pend_len = 0;
      rule_guard = Array.make 64 (-1);
      rule_refs = Array.make 64 0;
      next_rule_id = 1;
      live_rule_count = 0;
      dig = dig_alloc dig_cap;
      dig_mask = dig_cap - 1;
      dig_live = 0;
      dig_used = 0;
      input_len = 0;
      need_sweep = false;
      tm_on = false;
      tm_matches = 0;
      tm_created = 0;
      tm_retired = 0;
      tm_inlines = 0;
    }
  in
  make_rule t 0;
  t

(* --- core algorithm ---------------------------------------------------- *)

(* Remove the index entry for the digram starting at [s], but only if the
   index actually points at this occurrence. *)
let delete_digram t s =
  let n = s_nxt t s in
  if (not (is_guard t s)) && not (is_guard t n) then
    dig_remove_if t (pack (sym_code t s) (sym_code t n)) s

(* Relink [left] -> [right]; drops the index entry of the digram that used
   to start at [left]. *)
let join t left right =
  if not (is_guard t left) then delete_digram t left;
  set_nxt t left right;
  set_prv t right left

(* Insert [ns] right after [q]. Every insertion site allocates [ns] fresh,
   which licenses skipping the symmetric [delete_digram t ns] a generic
   two-[join] insert would perform: [ns] was never indexed since its
   allocation, and any stale index entry naming its slot carries a
   pre-death generation ([mark_dead] bumps it) so [dig_remove_if] rejects
   it. Skipping that probe halves the digram-table traffic of a no-match
   push. *)
let insert_fresh_after t q ns =
  let r = s_nxt t q in
  set_nxt t ns r;
  set_prv t r ns;
  join t q ns

(* Unlink [s] from its rule, cleaning the two digram entries it anchors and
   releasing its rule reference if it is a non-terminal. *)
let delete_symbol t s =
  delete_digram t s;
  join t (s_prv t s) (s_nxt t s);
  mark_dead t s;
  if is_nonterm t s then deuse t (s_code t s)

(* [delete_symbol] minus the leading [delete_digram], for a slot that
   provably has no index binding anchored at it. Bindings always carry
   their anchor's current digram key, and every successor change at a
   slot goes through a [join] there that deletes the then-current
   binding — so at most one binding names a live slot, keyed by its
   current digram. When a [join] at [s] just ran, that binding is gone
   and the probe would find nothing. *)
let delete_symbol_unanchored t s =
  join t (s_prv t s) (s_nxt t s);
  mark_dead t s;
  if is_nonterm t s then deuse t (s_code t s)

let append_copy t r proto =
  let c = s_code t proto in
  let nonterm = is_nonterm t proto in
  let ns = alloc_sym t (if nonterm then tag_nonterm else 0) c in
  if nonterm then reuse t c;
  insert_fresh_after t (last t r) ns

(* [check t s] enforces digram uniqueness for the digram starting at [s].
   Returns [true] iff a match was found and processed (in which case [s] is
   dead and the caller must not use it further). Branch order matches the
   record implementation exactly — grammar equality depends on it. *)
let rec check t s =
  let sn = s_nxt t s in
  if is_guard t s || is_guard t sn then false
  else begin
    let cs = sym_code t s and csn = sym_code t sn in
    let key = pack cs csn in
    let p = dig_probe t key in
    if p < 0 then begin
      dig_insert_at t (lnot p) key s;
      false
    end
    else begin
      let d = t.dig in
      let mp = Array.unsafe_get d (p + 1) in
      let m = mp land slot_mask in
      if mp = s lor (gen t s lsl slot_bits) then false
      else if
        mp lsr slot_bits <> gen t m
        (* stale: the stored occurrence died (slot possibly recycled) *)
        || is_guard t (s_nxt t m)
        || not (sym_code t m = cs && sym_code t (s_nxt t m) = csn)
        (* packed-key collision: key equality is not digram equality *)
      then begin
        Array.unsafe_set d (p + 1) (s lor (gen t s lsl slot_bits));
        false
      end
      else if s_nxt t m = s || sn = m then
        (* Overlapping occurrences (a run like "aaa"): not a usable match. *)
        false
      else begin
        process_match t s m;
        true
      end
    end
  end

(* A duplicate digram was found: replace both occurrences by a non-terminal,
   creating a rule if the stored occurrence is not already a whole rule. *)
and process_match t s m =
  if t.tm_on then t.tm_matches <- t.tm_matches + 1;
  let r =
    if is_guard t (s_prv t m) && is_guard t (s_nxt t (s_nxt t m)) then begin
      (* [m] spans the complete right-hand side of an existing rule. *)
      let r = s_code t (s_prv t m) in
      substitute t s r;
      r
    end
    else begin
      let r = t.next_rule_id in
      t.next_rule_id <- r + 1;
      make_rule t r;
      if t.tm_on then t.tm_created <- t.tm_created + 1;
      append_copy t r s;
      append_copy t r (s_nxt t s);
      substitute t m r;
      substitute t s r;
      let f = first t r in
      dig_replace t (pack (sym_code t f) (sym_code t (s_nxt t f))) f;
      r
    end
  in
  (* Rule utility: the substitution dropped one use of each component of the
     matched digram, i.e. of [first r] and [last r] (a matched rule always
     has a two-symbol right-hand side). Inline any that is now used once. *)
  let underused i =
    (not (is_guard t i)) && is_nonterm t i && t.rule_refs.(s_code t i) = 1
  in
  let f = first t r in
  if underused f then expand_symbol t f;
  let l = last t r in
  if underused l then expand_symbol t l

(* Replace the digram starting at [s] with a single non-terminal for [r]. *)
and substitute t s r =
  let q = s_prv t s in
  (* The first deletion's [join] at [s] drops the binding anchored at [s]
     (the matched digram's, when it named this occurrence), so the second
     deletion skips its fruitless probe; that deletion's own [join] at [q]
     likewise drops the binding anchored at [q], so the replacement symbol
     is spliced in with no probe at all. *)
  delete_symbol t (s_nxt t s);
  delete_symbol_unanchored t s;
  let ns = alloc_sym t tag_nonterm r in
  reuse t r;
  let nq = s_nxt t q in
  set_nxt t ns nq;
  set_prv t nq ns;
  set_nxt t q ns;
  set_prv t ns q;
  if not (check t q) then ignore (check t ns)

(* Rule utility repair: [s] is the only use of its rule; splice the rule's
   right-hand side in place of [s] and retire the rule. *)
and expand_symbol t s =
  if t.tm_on then t.tm_inlines <- t.tm_inlines + 1;
  let r = s_code t s in
  let left = s_prv t s and right = s_nxt t s in
  let f = first t r and l = last t r in
  delete_digram t s;
  mark_dead t s;
  join t left f;
  join t l right;
  deuse t r;
  kill_rule t r;
  if (not (is_guard t l)) && not (is_guard t right) then
    dig_replace t (pack (sym_code t l) (sym_code t right)) l;
  if (not (is_guard t left)) && not (is_guard t f) then
    dig_replace t (pack (sym_code t left) (sym_code t f)) left

let push_one t v =
  let s = alloc_sym t 0 v in
  insert_fresh_after t (last t 0) s;
  t.input_len <- t.input_len + 1;
  ignore (check t (s_prv t s));
  if t.pend_len > 0 then begin
    reclaim_dead t;
    if t.need_sweep then gen_sweep t
  end

let push t v =
  t.tm_on <- Tm.on ();
  push_one t v;
  flush_tm t

let push_batch t a ~off ~len =
  if off < 0 || len < 0 || off > Array.length a - len then
    invalid_arg "Sequitur.push_batch";
  t.tm_on <- Tm.on ();
  for i = off to off + len - 1 do
    push_one t (Array.unsafe_get a i)
  done;
  flush_tm t

let push_array t a = push_batch t a ~off:0 ~len:(Array.length a)

let input_length t = t.input_len

(* --- observers --------------------------------------------------------- *)

(* Rule ids are monotonic and never recycled, so an ascending id scan
   enumerates live rules deterministically (start rule first) with no
   intermediate sorted id list. *)
let fold_live_rules t init f =
  let acc = ref init in
  for id = 0 to t.next_rule_id - 1 do
    if t.rule_guard.(id) >= 0 then acc := f !acc id
  done;
  !acc

let iter_rhs t r f =
  let g = t.rule_guard.(r) in
  let s = ref (s_nxt t g) in
  while !s <> g do
    f !s;
    s := s_nxt t !s
  done

let grammar_size t =
  fold_live_rules t 0 (fun acc id ->
      let n = ref 0 in
      iter_rhs t id (fun _ -> incr n);
      acc + !n)

let rule_count t = t.live_rule_count

let byte_size t =
  fold_live_rules t 0 (fun acc id ->
      let n = ref 1 (* rule separator *) in
      iter_rhs t id (fun s -> n := !n + Ormp_util.Bytesize.varint (sym_code t s));
      acc + !n)

let expand t =
  let a = Array.make t.input_len 0 in
  let k = ref 0 in
  let rec go r =
    iter_rhs t r (fun s ->
        if is_nonterm t s then go (s_code t s)
        else begin
          a.(!k) <- s_code t s;
          incr k
        end)
  in
  go 0;
  assert (!k = t.input_len);
  a

let rhs_list t id =
  let rhs = ref [] in
  iter_rhs t id (fun s ->
      rhs := (if is_nonterm t s then `N (s_code t s) else `T (s_code t s)) :: !rhs);
  List.rev !rhs

let iter_rules t f = fold_live_rules t () (fun () id -> f id (rhs_list t id))

let rules t = List.rev (fold_live_rules t [] (fun acc id -> (id, rhs_list t id) :: acc))

let of_rules rule_list =
  let table = Hashtbl.create 64 in
  List.iter (fun (id, rhs) -> Hashtbl.replace table id rhs) rule_list;
  if not (Hashtbl.mem table 0) then Error "grammar has no start rule"
  else begin
    let exception Bad of string in
    let memo = Hashtbl.create 64 in
    let expanding = Hashtbl.create 16 in
    let rec expand_rule id =
      match Hashtbl.find_opt memo id with
      | Some e -> e
      | None ->
        if Hashtbl.mem expanding id then
          (* A corrupted listing can reference a rule from its own
             expansion; without this check the recursion would never
             terminate. *)
          raise (Bad (Printf.sprintf "cyclic rule R%d" id));
        (match Hashtbl.find_opt table id with
        | None -> raise (Bad (Printf.sprintf "dangling rule R%d" id))
        | Some rhs ->
          Hashtbl.replace expanding id ();
          let parts = List.map (function `T v -> [ v ] | `N r -> expand_rule r) rhs in
          Hashtbl.remove expanding id;
          let e = List.concat parts in
          Hashtbl.replace memo id e;
          e)
    in
    match expand_rule 0 with
    | terminals ->
      (* The algorithm is deterministic: re-pushing the expansion rebuilds
         exactly the saved grammar, rule ids included. *)
      let g = create ~size_hint:(List.length terminals) () in
      List.iter (push g) terminals;
      Ok g
    | exception Bad msg -> Error msg
  end

let pp fmt t =
  iter_rules t (fun id rhs ->
      Format.fprintf fmt "R%d ->" id;
      List.iter
        (fun sym ->
          match sym with
          | `T v -> Format.fprintf fmt " %d" v
          | `N id -> Format.fprintf fmt " R%d" id)
        rhs;
      Format.fprintf fmt "@.")

let check_invariants t =
  let exception Bad of string in
  try
    if t.pend_len <> 0 then raise (Bad "dead slots pending outside a push cascade");
    let uses : (int, int) Hashtbl.t = Hashtbl.create 64 in
    fold_live_rules t () (fun () id ->
        let g = t.rule_guard.(id) in
        if not (is_live t g && is_guard t g) then
          raise (Bad (Printf.sprintf "dead guard in rule %d" id));
        if s_code t g <> id then
          raise (Bad (Printf.sprintf "guard code mismatch in rule %d" id));
        iter_rhs t id (fun s ->
            if not (is_live t s) then
              raise (Bad (Printf.sprintf "dead symbol reachable in rule %d" id));
            if is_guard t s then raise (Bad (Printf.sprintf "guard inside rule %d body" id));
            if s_prv t (s_nxt t s) <> s then raise (Bad "broken next/prev link");
            if s_nxt t (s_prv t s) <> s then raise (Bad "broken prev/next link");
            if is_nonterm t s then begin
              let r2 = s_code t s in
              if r2 < 0 || r2 >= t.next_rule_id || t.rule_guard.(r2) < 0 then
                raise (Bad (Printf.sprintf "rule %d references dead rule %d" id r2));
              Hashtbl.replace uses r2 (1 + Option.value ~default:0 (Hashtbl.find_opt uses r2))
            end));
    fold_live_rules t () (fun () id ->
        if id <> 0 then begin
          let u = Option.value ~default:0 (Hashtbl.find_opt uses id) in
          if u <> t.rule_refs.(id) then
            raise (Bad (Printf.sprintf "rule %d refcount %d but %d uses" id t.rule_refs.(id) u));
          if u < 2 then raise (Bad (Printf.sprintf "rule %d violates utility (%d uses)" id u))
        end);
    let entries = ref 0 in
    for i = 0 to t.dig_mask do
      let b = 2 * i in
      let v = t.dig.(b + 1) in
      if v >= 0 then begin
        incr entries;
        let s = v land slot_mask in
        if v lsr slot_bits <> gen t s || not (is_live t s) then
          raise (Bad "digram index entry points to dead symbol");
        if is_guard t s || is_guard t (s_nxt t s) then
          raise (Bad "digram index entry anchored at guard");
        if pack (sym_code t s) (sym_code t (s_nxt t s)) <> t.dig.(b) then
          raise (Bad "digram index entry key mismatch")
      end
    done;
    if !entries <> t.dig_live then raise (Bad "digram index live-count drift");
    Ok ()
  with Bad msg -> Error msg
