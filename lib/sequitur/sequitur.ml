(* Port of the reference Sequitur algorithm (Nevill-Manning & Witten) to
   OCaml. Differences from the reference C++ implementation:

   - Symbols carry a [dead] flag and every digram-index hit is re-validated
     (liveness + key match) before use. The reference implementation instead
     relies on a delicate "triples" re-indexing hack inside [join] to keep
     the index exact across runs of equal symbols; validating on lookup is
     simpler and makes stale entries harmless (worst case: one missed match,
     re-discovered on the next repetition). Losslessness is unaffected.
   - Rules are tracked in a live-rule table so the grammar can be sized,
     printed and expanded without chasing pointers from the start rule. *)

module Tm = Ormp_telemetry.Telemetry

(* Telemetry only at the rare structural events (rule creation, retirement,
   utility inlining) — never per push, which runs once per profiled access
   across four grammar dimensions. *)
let m_matches = Tm.Metrics.counter "sequitur.matches"
let m_rules_created = Tm.Metrics.counter "sequitur.rules_created"
let m_rules_retired = Tm.Metrics.counter "sequitur.rules_retired"
let m_utility_inlines = Tm.Metrics.counter "sequitur.utility_inlines"

type symbol = {
  mutable kind : kind;
  mutable prev : symbol;
  mutable next : symbol;
  mutable dead : bool;
}

and kind =
  | Guard of rule
  | Term of int
  | Nonterm of rule

and rule = {
  id : int;
  mutable guard : symbol;
  mutable refcount : int;
}

type t = {
  start : rule;
  digrams : (int, symbol) Hashtbl.t; (* packed digram key -> first occurrence *)
  live_rules : (int, rule) Hashtbl.t;
  mutable next_rule_id : int;
  mutable input_len : int;
}

let is_guard s = match s.kind with Guard _ -> true | _ -> false

(* Dense integer code for a symbol's identity, used in digram keys and in
   byte-size accounting: terminals use the even codes, rule ids the odd. *)
let code_of s =
  match s.kind with
  | Term v -> v lsl 1
  | Nonterm r -> (r.id lsl 1) lor 1
  | Guard _ -> invalid_arg "Sequitur.code_of: guard"

(* Digram keys are a single packed int instead of an (int * int) tuple:
   tuple keys cost one 3-word allocation plus a polymorphic structural
   hash per index operation, on the hottest path of the whole compressor.
   Packing is injective while both codes fit in 31 non-negative bits (the
   low code occupies bits 0..30, the high code the bits above), which
   holds for every stream the profilers compress: terminal codes are 2x
   the input value — simulated addresses stay under the 512 MiB heap
   segment ceiling — and rule-id codes are small and dense. Codes outside
   that range (negative or oversized terminals) may collide; [check]
   therefore validates every index hit against the actual digram, so a
   collision costs at most a missed match — never a wrong merge. *)
let pack hi lo = (hi lsl 31) lxor lo

let digram_key s = pack (code_of s) (code_of s.next)

(* Exact digram equality, used to re-validate index hits: with a packed
   (possibly colliding) key, key equality alone is not proof the stored
   occurrence is the same digram. *)
let same_digram a b = code_of a = code_of b && code_of a.next = code_of b.next

let make_rule id =
  let rec rule = { id; guard = g; refcount = 0 }
  and g = { kind = Guard rule; prev = g; next = g; dead = false } in
  rule

let create ?(size_hint = 0) () =
  let start = make_rule 0 in
  let t =
    {
      start;
      (* A stream of n symbols keeps at most ~n live digram entries
         (grammar size is bounded by input length), so pre-sizing to the
         expected stream length eliminates every rehash of the table's
         doubling schedule — measurable churn in the micro bench on
         multi-thousand-symbol streams. Hashtbl rounds up internally. *)
      digrams = Hashtbl.create (max 4096 size_hint);
      live_rules = Hashtbl.create 64;
      next_rule_id = 1;
      input_len = 0;
    }
  in
  Hashtbl.replace t.live_rules 0 start;
  t

let first r = r.guard.next
let last r = r.guard.prev

let reuse r = r.refcount <- r.refcount + 1

(* Guarded on membership: [expand_symbol] reaches here twice for the same
   rule (via [deuse] and directly), and retirement must count once. *)
let kill_rule t r =
  if Hashtbl.mem t.live_rules r.id then begin
    Hashtbl.remove t.live_rules r.id;
    if Tm.on () then Tm.Metrics.incr m_rules_retired
  end

let deuse t r =
  r.refcount <- r.refcount - 1;
  if r.refcount = 0 && r.id <> 0 then kill_rule t r

(* Remove the index entry for the digram starting at [s], but only if the
   index actually points at this occurrence. *)
let delete_digram t s =
  if (not (is_guard s)) && not (is_guard s.next) then
    let key = digram_key s in
    match Hashtbl.find_opt t.digrams key with
    | Some m when m == s -> Hashtbl.remove t.digrams key
    | _ -> ()

(* Relink [left] -> [right]; drops the index entry of the digram that used
   to start at [left]. *)
let join t left right =
  if not (is_guard left) then delete_digram t left;
  left.next <- right;
  right.prev <- left

let insert_after t q ns =
  join t ns q.next;
  join t q ns

(* Unlink [s] from its rule, cleaning the two digram entries it anchors and
   releasing its rule reference if it is a non-terminal. *)
let delete_symbol t s =
  delete_digram t s;
  join t s.prev s.next;
  s.dead <- true;
  match s.kind with Nonterm r -> deuse t r | _ -> ()

let fresh kind =
  let rec s = { kind; prev = s; next = s; dead = false } in
  s

let append_copy t r proto =
  let ns = fresh proto.kind in
  (match proto.kind with Nonterm r2 -> reuse r2 | _ -> ());
  insert_after t (last r) ns

(* [check t s] enforces digram uniqueness for the digram starting at [s].
   Returns [true] iff a match was found and processed (in which case [s] is
   dead and the caller must not use it further). *)
let rec check t s =
  if is_guard s || is_guard s.next then false
  else
    let key = digram_key s in
    match Hashtbl.find_opt t.digrams key with
    | None ->
      Hashtbl.replace t.digrams key s;
      false
    | Some m when m == s -> false
    | Some m when m.dead || m.next.dead || is_guard m.next || not (same_digram m s) ->
      (* Stale entry left behind by unindexed relinking, or a packed-key
         collision; repoint it here. *)
      Hashtbl.replace t.digrams key s;
      false
    | Some m when m.next == s || s.next == m ->
      (* Overlapping occurrences (a run like "aaa"): not a usable match. *)
      false
    | Some m ->
      process_match t s m;
      true

(* A duplicate digram was found: replace both occurrences by a non-terminal,
   creating a rule if the stored occurrence is not already a whole rule. *)
and process_match t s m =
  if Tm.on () then Tm.Metrics.incr m_matches;
  let r =
    if is_guard m.prev && is_guard m.next.next then begin
      (* [m] spans the complete right-hand side of an existing rule. *)
      let r = match m.prev.kind with Guard r -> r | _ -> assert false in
      substitute t s r;
      r
    end
    else begin
      let r = make_rule t.next_rule_id in
      t.next_rule_id <- t.next_rule_id + 1;
      Hashtbl.replace t.live_rules r.id r;
      if Tm.on () then Tm.Metrics.incr m_rules_created;
      append_copy t r s;
      append_copy t r s.next;
      substitute t m r;
      substitute t s r;
      Hashtbl.replace t.digrams (digram_key (first r)) (first r);
      r
    end
  in
  (* Rule utility: the substitution dropped one use of each component of the
     matched digram, i.e. of [first r] and [last r] (a matched rule always
     has a two-symbol right-hand side). Inline any that is now used once. *)
  let underused s = match s.kind with Nonterm r2 -> r2.refcount = 1 | _ -> false in
  let f = first r in
  if underused f then expand_symbol t f;
  let l = last r in
  if underused l then expand_symbol t l

(* Replace the digram starting at [s] with a single non-terminal for [r]. *)
and substitute t s r =
  let q = s.prev in
  delete_symbol t s.next;
  delete_symbol t s;
  let ns = fresh (Nonterm r) in
  reuse r;
  insert_after t q ns;
  if not (check t q) then ignore (check t ns)

(* Rule utility repair: [s] is the only use of its rule; splice the rule's
   right-hand side in place of [s] and retire the rule. *)
and expand_symbol t s =
  match s.kind with
  | Nonterm r ->
    if Tm.on () then Tm.Metrics.incr m_utility_inlines;
    let left = s.prev and right = s.next in
    let f = first r and l = last r in
    delete_digram t s;
    s.dead <- true;
    join t left f;
    join t l right;
    deuse t r;
    kill_rule t r;
    if (not (is_guard l)) && not (is_guard right) then
      Hashtbl.replace t.digrams (pack (code_of l) (code_of right)) l;
    if (not (is_guard left)) && not (is_guard f) then
      Hashtbl.replace t.digrams (pack (code_of left) (code_of f)) left
  | _ -> invalid_arg "Sequitur.expand_symbol: not a non-terminal"

let push t v =
  let s = fresh (Term v) in
  insert_after t (last t.start) s;
  t.input_len <- t.input_len + 1;
  ignore (check t s.prev)

let push_array t a = Array.iter (push t) a

let input_length t = t.input_len

let iter_rhs r f =
  let rec go s = if not (is_guard s) then (f s; go s.next) in
  go (first r)

let fold_rules t init f =
  (* Deterministic order: start rule first, then ascending rule id. *)
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) t.live_rules [] in
  let ids = List.sort compare ids in
  List.fold_left (fun acc id -> f acc (Hashtbl.find t.live_rules id)) init ids

let grammar_size t =
  fold_rules t 0 (fun acc r ->
      let n = ref 0 in
      iter_rhs r (fun _ -> incr n);
      acc + !n)

let rule_count t = Hashtbl.length t.live_rules

let byte_size t =
  fold_rules t 0 (fun acc r ->
      let n = ref 1 (* rule separator *) in
      iter_rhs r (fun s -> n := !n + Ormp_util.Bytesize.varint (code_of s));
      acc + !n)

let expand t =
  let out = ref [] in
  let n = ref 0 in
  let rec go r =
    iter_rhs r (fun s ->
        match s.kind with
        | Term v ->
          out := v :: !out;
          incr n
        | Nonterm r2 -> go r2
        | Guard _ -> assert false)
  in
  go t.start;
  let a = Array.make !n 0 in
  List.iteri (fun i v -> a.(!n - 1 - i) <- v) !out;
  a

let rules t =
  List.rev
    (fold_rules t [] (fun acc r ->
         let rhs = ref [] in
         iter_rhs r (fun s ->
             rhs :=
               (match s.kind with
               | Term v -> `T v
               | Nonterm r2 -> `N r2.id
               | Guard _ -> assert false)
               :: !rhs);
         (r.id, List.rev !rhs) :: acc))

let of_rules rule_list =
  let table = Hashtbl.create 64 in
  List.iter (fun (id, rhs) -> Hashtbl.replace table id rhs) rule_list;
  if not (Hashtbl.mem table 0) then Error "grammar has no start rule"
  else begin
    let exception Bad of string in
    let memo = Hashtbl.create 64 in
    let expanding = Hashtbl.create 16 in
    let rec expand_rule id =
      match Hashtbl.find_opt memo id with
      | Some e -> e
      | None ->
        if Hashtbl.mem expanding id then
          (* A corrupted listing can reference a rule from its own
             expansion; without this check the recursion would never
             terminate. *)
          raise (Bad (Printf.sprintf "cyclic rule R%d" id));
        (match Hashtbl.find_opt table id with
        | None -> raise (Bad (Printf.sprintf "dangling rule R%d" id))
        | Some rhs ->
          Hashtbl.replace expanding id ();
          let parts = List.map (function `T v -> [ v ] | `N r -> expand_rule r) rhs in
          Hashtbl.remove expanding id;
          let e = List.concat parts in
          Hashtbl.replace memo id e;
          e)
    in
    match expand_rule 0 with
    | terminals ->
      (* The algorithm is deterministic: re-pushing the expansion rebuilds
         exactly the saved grammar, rule ids included. *)
      let g = create ~size_hint:(List.length terminals) () in
      List.iter (push g) terminals;
      Ok g
    | exception Bad msg -> Error msg
  end

let pp fmt t =
  List.iter
    (fun (id, rhs) ->
      Format.fprintf fmt "R%d ->" id;
      List.iter
        (fun sym ->
          match sym with
          | `T v -> Format.fprintf fmt " %d" v
          | `N id -> Format.fprintf fmt " R%d" id)
        rhs;
      Format.fprintf fmt "@.")
    (rules t)

let check_invariants t =
  let exception Bad of string in
  try
    let uses : (int, int) Hashtbl.t = Hashtbl.create 64 in
    fold_rules t () (fun () r ->
        if r.guard.dead then raise (Bad (Printf.sprintf "dead guard in rule %d" r.id));
        let rec go s =
          if not (is_guard s) then begin
            if s.dead then raise (Bad (Printf.sprintf "dead symbol reachable in rule %d" r.id));
            if s.next.prev != s then raise (Bad "broken next/prev link");
            if s.prev.next != s then raise (Bad "broken prev/next link");
            (match s.kind with
            | Nonterm r2 ->
              if not (Hashtbl.mem t.live_rules r2.id) then
                raise (Bad (Printf.sprintf "rule %d references dead rule %d" r.id r2.id));
              Hashtbl.replace uses r2.id (1 + Option.value ~default:0 (Hashtbl.find_opt uses r2.id))
            | _ -> ());
            go s.next
          end
        in
        go (first r));
    fold_rules t () (fun () r ->
        if r.id <> 0 then begin
          let u = Option.value ~default:0 (Hashtbl.find_opt uses r.id) in
          if u <> r.refcount then
            raise (Bad (Printf.sprintf "rule %d refcount %d but %d uses" r.id r.refcount u));
          if u < 2 then raise (Bad (Printf.sprintf "rule %d violates utility (%d uses)" r.id u))
        end);
    Hashtbl.iter
      (fun key s ->
        if s.dead then raise (Bad "digram index entry points to dead symbol");
        if is_guard s || is_guard s.next then raise (Bad "digram index entry anchored at guard");
        if digram_key s <> key then raise (Bad "digram index entry key mismatch"))
      t.digrams;
    Ok ()
  with Bad msg -> Error msg
