(** Experiment drivers: one function per figure/table of the paper's
    evaluation, plus the ablations called out in DESIGN.md.

    Each driver returns plain data (so tests can assert on it) and has a
    [render_*] companion producing the text the benchmark harness prints.
    Workloads default to their test scale; pass [~bench:true] for the
    paper-scale ("training input") runs. *)

open Ormp_workloads

(** One shared instrumented run of a workload: the same probe-event stream
    fanned out to LEAP, the lossless dependence baseline, Connors' windowed
    profiler and the lossless stride profiler. *)
type suite = {
  entry : Registry.entry;
  leap : Ormp_leap.Leap.profile;
  truth : Ormp_baselines.Lossless_dep.t;
  connors : Ormp_baselines.Connors.t;
  wu : Ormp_baselines.Lossless_stride.t;
}

val run_suite :
  ?bench:bool -> ?config:Ormp_vm.Config.t -> ?window:int -> Registry.entry -> suite

val run_suites : ?bench:bool -> ?parallel:bool -> unit -> suite list
(** All seven SPEC-like workloads, in Table 1 order. With [~parallel:true]
    each suite runs on its own domain ([Domain.spawn]); suites share no
    mutable state, and the per-suite [elapsed] figures are monotonic wall
    clock, so they stay meaningful under parallel execution. *)

(** {1 Figure 5: OMSG vs RASG compression} *)

type fig5_row = {
  workload : string;
  rasg_bytes : int;
  omsg_bytes : int;
  rasg_symbols : int;
  omsg_symbols : int;
  compression_pct : float;  (** (rasg - omsg) / rasg, byte sizes *)
  rasg_time : float;
  omsg_time : float;
}

val fig5 : ?bench:bool -> unit -> fig5_row list
val render_fig5 : fig5_row list -> string

(** {1 Figures 6-8: memory-dependence error distributions} *)

type dist_row = { workload : string; hist : Ormp_util.Histogram.t }

val fig6 : suite list -> dist_row list
(** LEAP vs the lossless baseline. *)

val fig7 : suite list -> dist_row list
(** Connors vs the lossless baseline. *)

val render_dist : title:string -> dist_row list -> string

type fig8_data = {
  leap_avg : Ormp_util.Histogram.t;
  connors_avg : Ormp_util.Histogram.t;
  leap_good : float;
  connors_good : float;
  improvement_pct : float;
      (** relative improvement of LEAP's good fraction over Connors' (the
          paper's "56% improvement") *)
}

val fig8 : suite list -> fig8_data
val render_fig8 : fig8_data -> string

(** {1 Figure 9: stride score} *)

type fig9_row = {
  workload : string;
  real : int;  (** strongly-strided instructions per the lossless profiler *)
  identified : int;  (** of those, also identified by LEAP *)
  score : float;
}

val fig9 : suite list -> fig9_row list
val render_fig9 : fig9_row list -> string

(** {1 Table 1: LEAP profile size, speed and sample quality} *)

type table1_row = {
  workload : string;
  compression_ratio : float;
  dilation : float;
  accesses_captured : float;
  instructions_captured : float;
}

val table1 : ?bench:bool -> ?repeats:int -> suite list -> table1_row list
(** Dilation re-runs each workload bare and LEAP-instrumented [repeats]
    times (default 3) and compares CPU time. *)

val render_table1 : table1_row list -> string

(** {1 Ablations} *)

type budget_row = {
  budget : int;
  accesses_captured_b : float;
  instructions_captured_b : float;
  profile_bytes : int;
  mdf_good : float;  (** dependence accuracy at this budget *)
}

val ablation_lmad_budget :
  ?bench:bool -> ?budgets:int list -> Registry.entry -> budget_row list
(** §4.1's trade-off: "Reducing the number of LMADs will reduce the running
    time, but affect the profile quality." Defaults to budgets
     5/10/30/100. *)

val render_budget : workload:string -> budget_row list -> string

type window_row = { window : int; connors_good : float; pairs_found : int }

val ablation_connors_window :
  ?bench:bool -> ?windows:int list -> Registry.entry -> window_row list
(** How Connors' accuracy depends on the history-window size. *)

val render_window : workload:string -> window_row list -> string

type grouping_row = {
  workload_g : string;
  site_groups : int;  (** groups under allocation-site grouping *)
  type_groups : int;  (** groups when the compiler supplies type names *)
  site_capture : float;  (** LEAP access capture under [`Site] *)
  type_capture : float;
  site_omsg_bytes : int;  (** WHOMP profile size under [`Site] *)
  type_omsg_bytes : int;
}

val ablation_grouping : ?bench:bool -> unit -> grouping_row list
(** §3.1's refinement: "the compiler can provide type information to
    further refine this strategy". Compares [`Site] and [`Type] grouping
    on workloads where they differ (one type allocated at two sites, and
    two types allocated at one site). *)

val render_grouping : grouping_row list -> string

type pool_row = {
  pool_mode : string;  (** "single object" or "exposed pieces" *)
  pool_groups : int;
  pool_objects : int;  (** objects ever allocated *)
  pool_capture : float;
  pool_profile_bytes : int;
  pool_mdf_good : float;
}

val ablation_pool_handling : ?bench:bool -> unit -> pool_row list
(** §3.1's footnote: custom alloc pools can be profiled as single objects
    (the default) or by targeting the custom alloc/dealloc functions so
    every piece is its own object. Compares both on the parser stand-in. *)

val render_pool : pool_row list -> string

type phase_row = {
  workload_p : string;
  n_phases : int;
  mono_capture : float;  (** offset-stream capture, one budget for the run *)
  phased_capture : float;  (** budget reset at detected phase boundaries *)
}

val extension_phases : ?bench:bool -> unit -> phase_row list
(** §6's future work, implemented: detect phases from group-mix signatures
    and compare LMAD capture with and without per-phase budgets. *)

val render_phases : phase_row list -> string

type fused_row = {
  workload_f : string;
  fused_bytes : int;  (** one Sequitur over the interleaved 4-tuple stream *)
  omsg_bytes_f : int;  (** four per-dimension grammars *)
  decomposition_gain_pct : float;
}

val ablation_no_decomposition : ?bench:bool -> unit -> fused_row list
(** What horizontal decomposition itself buys (§2.2): compress the
    object-relative stream with and without splitting it by dimension. *)

val render_fused : fused_row list -> string
