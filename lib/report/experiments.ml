open Ormp_util
open Ormp_workloads
module Dt = Ormp_baselines.Dep_types

type suite = {
  entry : Registry.entry;
  leap : Ormp_leap.Leap.profile;
  truth : Ormp_baselines.Lossless_dep.t;
  connors : Ormp_baselines.Connors.t;
  wu : Ormp_baselines.Lossless_stride.t;
}

let site_name = Printf.sprintf "site%d"

let run_suite ?(bench = false) ?config ?window entry =
  let program = Registry.program ~bench entry in
  let leap_sink, leap_fin = Ormp_leap.Leap.sink ~site_name () in
  let truth = Ormp_baselines.Lossless_dep.create () in
  let connors = Ormp_baselines.Connors.create ?window () in
  let wu = Ormp_baselines.Lossless_stride.create () in
  let sink =
    Ormp_trace.Sink.fanout
      [
        leap_sink;
        Ormp_baselines.Lossless_dep.sink truth;
        Ormp_baselines.Connors.sink connors;
        Ormp_baselines.Lossless_stride.sink wu;
      ]
  in
  let result = Ormp_vm.Runner.run ?config program sink in
  { entry; leap = leap_fin ~elapsed:result.Ormp_vm.Runner.elapsed; truth; connors; wu }

let run_suites ?bench ?(parallel = false) () =
  if not parallel then List.map (run_suite ?bench) Registry.spec
  else
    (* One domain per workload (seven suites). Each suite builds its own
       program, profilers and tables from scratch, so the domains share
       nothing mutable; joining in [spec] order keeps the result
       deterministic regardless of completion order. *)
    Registry.spec
    |> List.map (fun entry -> Domain.spawn (fun () -> run_suite ?bench entry))
    |> List.map Domain.join

(* --- Figure 5 ------------------------------------------------------ *)

type fig5_row = {
  workload : string;
  rasg_bytes : int;
  omsg_bytes : int;
  rasg_symbols : int;
  omsg_symbols : int;
  compression_pct : float;
  rasg_time : float;
  omsg_time : float;
}

let fig5_row ?bench entry =
  let program = Registry.program ?bench entry in
  let omsg = Ormp_whomp.Whomp.profile program in
  let rasg = Ormp_whomp.Rasg.profile program in
  let rb = Ormp_whomp.Rasg.bytes rasg in
  let ob = Ormp_whomp.Whomp.omsg_bytes omsg in
  {
    workload = entry.Registry.name;
    rasg_bytes = rb;
    omsg_bytes = ob;
    rasg_symbols = Ormp_whomp.Rasg.size rasg;
    omsg_symbols = Ormp_whomp.Whomp.omsg_size omsg;
    compression_pct = (if rb = 0 then 0.0 else float_of_int (rb - ob) /. float_of_int rb);
    rasg_time = rasg.Ormp_whomp.Rasg.elapsed;
    omsg_time = omsg.Ormp_whomp.Whomp.elapsed;
  }

let fig5 ?bench () = List.map (fig5_row ?bench) Registry.spec

let render_fig5 rows =
  let avg = Stats.mean (List.map (fun r -> r.compression_pct) rows) in
  let table =
    Ascii.table
      ~header:
        [
          "benchmark"; "RASG bytes"; "OMSG bytes"; "compression"; "RASG syms"; "OMSG syms";
          "RASG time"; "OMSG time";
        ]
      ~rows:
        (List.map
           (fun r ->
             [
               r.workload;
               string_of_int r.rasg_bytes;
               string_of_int r.omsg_bytes;
               Ascii.percent r.compression_pct;
               string_of_int r.rasg_symbols;
               string_of_int r.omsg_symbols;
               Printf.sprintf "%.2fs" r.rasg_time;
               Printf.sprintf "%.2fs" r.omsg_time;
             ])
           rows)
  in
  let chart =
    Ascii.bar_chart
      ~labels:(Array.of_list (List.map (fun r -> r.workload) rows))
      ~values:(Array.of_list (List.map (fun r -> 100.0 *. r.compression_pct) rows))
      ()
  in
  Printf.sprintf
    "%s\n%s\n\nCompression of OMSG over RASG (%%, RASG as base; paper avg: 22%%):\n%s\n\
     Average: %s  (paper: 22%%)\n"
    (Ascii.section "Figure 5: OMSG vs RASG compression")
    table chart (Ascii.percent avg)

(* --- Figures 6-8 ---------------------------------------------------- *)

type dist_row = { workload : string; hist : Histogram.t }

let fig6 suites =
  List.map
    (fun s ->
      {
        workload = s.entry.Registry.name;
        hist =
          Error_dist.of_deps
            ~truth:(Ormp_baselines.Lossless_dep.deps s.truth)
            ~estimate:(Ormp_leap.Mdf.compute s.leap);
      })
    suites

let fig7 suites =
  List.map
    (fun s ->
      {
        workload = s.entry.Registry.name;
        hist =
          Error_dist.of_deps
            ~truth:(Ormp_baselines.Lossless_dep.deps s.truth)
            ~estimate:(Ormp_baselines.Connors.deps s.connors);
      })
    suites

let render_dist ~title rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Ascii.section title);
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s: %d dependent pairs, good(|err|<=10%%)=%s over+=%s under-=%s\n"
           r.workload (Histogram.total r.hist)
           (Ascii.percent (Error_dist.good_fraction r.hist))
           (Ascii.percent (Error_dist.overestimates r.hist))
           (Ascii.percent (Error_dist.underestimates r.hist))))
    rows;
  let merged = List.fold_left (fun acc r -> Histogram.merge acc r.hist)
      (Histogram.centered ~half_width:100.0 ~half_buckets:Error_dist.half_buckets) rows
  in
  Buffer.add_string buf "\nPooled error distribution (percent of pairs per bucket):\n";
  Buffer.add_string buf
    (Ascii.bar_chart ~width:30 ~labels:(Histogram.labels merged)
       ~values:(Array.map (fun f -> 100.0 *. f) (Histogram.fractions merged))
       ());
  Buffer.add_char buf '\n';
  Buffer.contents buf

type fig8_data = {
  leap_avg : Histogram.t;
  connors_avg : Histogram.t;
  leap_good : float;
  connors_good : float;
  improvement_pct : float;
}

let fig8 suites =
  let merge rows =
    List.fold_left (fun acc r -> Histogram.merge acc r.hist)
      (Histogram.centered ~half_width:100.0 ~half_buckets:Error_dist.half_buckets) rows
  in
  let leap_avg = merge (fig6 suites) in
  let connors_avg = merge (fig7 suites) in
  let leap_good = Error_dist.good_fraction leap_avg in
  let connors_good = Error_dist.good_fraction connors_avg in
  let improvement_pct =
    if connors_good = 0.0 then Float.infinity
    else 100.0 *. (leap_good -. connors_good) /. connors_good
  in
  { leap_avg; connors_avg; leap_good; connors_good; improvement_pct }

let render_fig8 d =
  Printf.sprintf
    "%s\nLEAP   : good(|err|<=10%%) = %s of dependent pairs  (paper: ~75%%)\n\
     Connors: good(|err|<=10%%) = %s\n\
     LEAP improvement over Connors: %.0f%%  (paper: 56%%)\n"
    (Ascii.section "Figure 8: LEAP vs Connors, averaged error distributions")
    (Ascii.percent d.leap_good) (Ascii.percent d.connors_good) d.improvement_pct

(* --- Figure 9 ------------------------------------------------------- *)

type fig9_row = { workload : string; real : int; identified : int; score : float }

let fig9 suites =
  List.map
    (fun s ->
      let real = Ormp_baselines.Lossless_stride.strongly_strided s.wu in
      let leap_found = Ormp_leap.Strides.strongly_strided s.leap in
      let leap_instrs = List.map fst leap_found in
      let hit = List.filter (fun (i, _) -> List.mem i leap_instrs) real in
      {
        workload = s.entry.Registry.name;
        real = List.length real;
        identified = List.length hit;
        score =
          (if real = [] then 1.0
           else float_of_int (List.length hit) /. float_of_int (List.length real));
      })
    suites

let render_fig9 rows =
  let avg = Stats.mean (List.map (fun r -> r.score) rows) in
  let chart =
    Ascii.bar_chart
      ~labels:(Array.of_list (List.map (fun r -> r.workload) rows))
      ~values:(Array.of_list (List.map (fun r -> 100.0 *. r.score) rows))
      ()
  in
  Printf.sprintf
    "%s\nPercent of strongly-strided instructions correctly identified by LEAP:\n%s\n\
     Average: %s  (paper: 88%%)\n"
    (Ascii.section "Figure 9: stride score for LEAP")
    chart (Ascii.percent avg)

(* --- Table 1 -------------------------------------------------------- *)

type table1_row = {
  workload : string;
  compression_ratio : float;
  dilation : float;
  accesses_captured : float;
  instructions_captured : float;
}

let measure_dilation ?(bench = false) ~repeats entry =
  let program = Registry.program ~bench entry in
  (* Bare runs are very fast, so time whole batches, doubling the batch
     size until one batch is comfortably above timer noise. (The wall
     clock has ns resolution, unlike the old Sys.time CPU clock, so the
     floor can be low — and wall time stays truthful when the harness runs
     other sections on sibling domains.) *)
  let time_batch run_once =
    let run_batch n =
      let t0 = Clock.now_s () in
      for _ = 1 to n do
        run_once ()
      done;
      Clock.now_s () -. t0
    in
    let rec go n =
      let t = run_batch n in
      if t >= 0.05 || n >= 512 then t /. float_of_int n else go (n * 2)
    in
    go repeats
  in
  let bare = time_batch (fun () -> ignore (Ormp_vm.Runner.run_bare program)) in
  let instrumented =
    (* The batched fast path — the pipeline [Leap.profile] actually uses —
       so the dilation column reports production probe cost. *)
    time_batch (fun () ->
        let b, fin = Ormp_leap.Leap.sink_batched ~site_name () in
        ignore (Ormp_vm.Runner.run_batched program b);
        ignore (fin ~elapsed:0.0))
  in
  if bare <= 0.0 then Float.nan else instrumented /. bare

let table1 ?(bench = false) ?(repeats = 3) suites =
  List.map
    (fun s ->
      {
        workload = s.entry.Registry.name;
        compression_ratio = Ormp_leap.Leap.compression_ratio s.leap;
        dilation = measure_dilation ~bench ~repeats s.entry;
        accesses_captured = Ormp_leap.Leap.accesses_captured s.leap;
        instructions_captured = Ormp_leap.Leap.instructions_captured s.leap;
      })
    suites

let render_table1 rows =
  let fmt_dil d = if Float.is_nan d then "n/a" else Ascii.ratio d in
  let avg f = Stats.mean (List.map f rows) in
  let body =
    List.map
      (fun r ->
        [
          r.workload;
          Ascii.ratio r.compression_ratio;
          fmt_dil r.dilation;
          Ascii.percent r.accesses_captured;
          Ascii.percent r.instructions_captured;
        ])
      rows
    @ [
        [
          "Average";
          Ascii.ratio (avg (fun r -> r.compression_ratio));
          fmt_dil (avg (fun r -> r.dilation));
          Ascii.percent (avg (fun r -> r.accesses_captured));
          Ascii.percent (avg (fun r -> r.instructions_captured));
        ];
      ]
  in
  Printf.sprintf "%s\n%s\n(paper averages: 3539x compression, 11.5x dilation, 46.5%% / 40.5%% sample quality)\n"
    (Ascii.section "Table 1: LEAP profile size, speed, and sample quality")
    (Ascii.table
       ~header:[ "benchmark"; "compression"; "dilation"; "accesses capt."; "instrs capt." ]
       ~rows:body)

(* --- Ablations ------------------------------------------------------ *)

type budget_row = {
  budget : int;
  accesses_captured_b : float;
  instructions_captured_b : float;
  profile_bytes : int;
  mdf_good : float;
}

let ablation_lmad_budget ?(bench = false) ?(budgets = [ 5; 10; 30; 100 ]) entry =
  let program = Registry.program ~bench entry in
  let truth = Ormp_baselines.Lossless_dep.profile program in
  let truth_deps = Ormp_baselines.Lossless_dep.deps truth in
  List.map
    (fun budget ->
      let p = Ormp_leap.Leap.profile ~budget program in
      let hist = Error_dist.of_deps ~truth:truth_deps ~estimate:(Ormp_leap.Mdf.compute p) in
      {
        budget;
        accesses_captured_b = Ormp_leap.Leap.accesses_captured p;
        instructions_captured_b = Ormp_leap.Leap.instructions_captured p;
        profile_bytes = Ormp_leap.Leap.byte_size p;
        mdf_good = Error_dist.good_fraction hist;
      })
    budgets

let render_budget ~workload rows =
  Printf.sprintf "%s\n%s\n"
    (Ascii.section (Printf.sprintf "Ablation: LMAD budget on %s (paper picks 30)" workload))
    (Ascii.table
       ~header:[ "budget"; "accesses capt."; "instrs capt."; "profile bytes"; "MDF good" ]
       ~rows:
         (List.map
            (fun r ->
              [
                string_of_int r.budget;
                Ascii.percent r.accesses_captured_b;
                Ascii.percent r.instructions_captured_b;
                string_of_int r.profile_bytes;
                Ascii.percent r.mdf_good;
              ])
            rows))

type window_row = { window : int; connors_good : float; pairs_found : int }

let ablation_connors_window ?(bench = false) ?(windows = [ 256; 1024; 4096; 16384; 65536 ]) entry =
  let program = Registry.program ~bench entry in
  let truth = Ormp_baselines.Lossless_dep.profile program in
  let truth_deps = Ormp_baselines.Lossless_dep.deps truth in
  List.map
    (fun window ->
      let c = Ormp_baselines.Connors.profile ~window program in
      let deps = Ormp_baselines.Connors.deps c in
      let hist = Error_dist.of_deps ~truth:truth_deps ~estimate:deps in
      { window; connors_good = Error_dist.good_fraction hist; pairs_found = List.length deps })
    windows

let render_window ~workload rows =
  Printf.sprintf "%s\n%s\n"
    (Ascii.section (Printf.sprintf "Ablation: Connors window size on %s" workload))
    (Ascii.table
       ~header:[ "window"; "MDF good"; "pairs found" ]
       ~rows:
         (List.map
            (fun r ->
              [ string_of_int r.window; Ascii.percent r.connors_good; string_of_int r.pairs_found ])
            rows))

type grouping_row = {
  workload_g : string;
  site_groups : int;
  type_groups : int;
  site_capture : float;
  type_capture : float;
  site_omsg_bytes : int;
  type_omsg_bytes : int;
}

let grouping_programs ?(bench = false) () =
  [
    ("micro.two_site_list", Ormp_workloads.Micro.two_site_list ());
    ("164.gzip-like", Registry.program ~bench (Registry.find "164.gzip-like"));
    ("197.parser-like", Registry.program ~bench (Registry.find "197.parser-like"));
  ]

let ablation_grouping ?bench () =
  List.map
    (fun (name, program) ->
      let measure grouping =
        let leap = Ormp_leap.Leap.profile ~grouping program in
        let whomp = Ormp_whomp.Whomp.profile ~grouping program in
        ( List.length whomp.Ormp_whomp.Whomp.groups,
          Ormp_leap.Leap.accesses_captured leap,
          Ormp_whomp.Whomp.omsg_bytes whomp )
      in
      let sg, sc, sb = measure `Site in
      let tg, tc, tb = measure `Type in
      {
        workload_g = name;
        site_groups = sg;
        type_groups = tg;
        site_capture = sc;
        type_capture = tc;
        site_omsg_bytes = sb;
        type_omsg_bytes = tb;
      })
    (grouping_programs ?bench ())

let render_grouping rows =
  Printf.sprintf "%s\n%s\n"
    (Ascii.section "Ablation: allocation-site vs type grouping (section 3.1)")
    (Ascii.table
       ~header:
         [
           "workload"; "site groups"; "type groups"; "site capture"; "type capture";
           "site OMSG"; "type OMSG";
         ]
       ~rows:
         (List.map
            (fun r ->
              [
                r.workload_g;
                string_of_int r.site_groups;
                string_of_int r.type_groups;
                Ascii.percent r.site_capture;
                Ascii.percent r.type_capture;
                string_of_int r.site_omsg_bytes;
                string_of_int r.type_omsg_bytes;
              ])
            rows))

type pool_row = {
  pool_mode : string;
  pool_groups : int;
  pool_objects : int;
  pool_capture : float;
  pool_profile_bytes : int;
  pool_mdf_good : float;
}

let ablation_pool_handling ?(bench = false) () =
  let scale =
    let e = Registry.find "197.parser-like" in
    if bench then e.Registry.bench_scale else e.Registry.default_scale
  in
  List.map
    (fun (mode, expose_pieces) ->
      let program = Ormp_workloads.Parser_like.program ~scale ~expose_pieces () in
      let leap_sink, leap_fin = Ormp_leap.Leap.sink ~site_name () in
      let truth = Ormp_baselines.Lossless_dep.create () in
      let whomp_sink, whomp_fin = Ormp_whomp.Whomp.sink ~site_name () in
      let result =
        Ormp_vm.Runner.run program
          (Ormp_trace.Sink.fanout
             [ leap_sink; Ormp_baselines.Lossless_dep.sink truth; whomp_sink ])
      in
      let leap = leap_fin ~elapsed:result.Ormp_vm.Runner.elapsed in
      let whomp = whomp_fin ~elapsed:0.0 in
      let hist =
        Error_dist.of_deps
          ~truth:(Ormp_baselines.Lossless_dep.deps truth)
          ~estimate:(Ormp_leap.Mdf.compute leap)
      in
      {
        pool_mode = mode;
        pool_groups = List.length whomp.Ormp_whomp.Whomp.groups;
        pool_objects = List.length whomp.Ormp_whomp.Whomp.lifetimes;
        pool_capture = Ormp_leap.Leap.accesses_captured leap;
        pool_profile_bytes = Ormp_leap.Leap.byte_size leap;
        pool_mdf_good = Error_dist.good_fraction hist;
      })
    [ ("single object", false); ("exposed pieces", true) ]

let render_pool rows =
  Printf.sprintf "%s\n%s\n"
    (Ascii.section
       "Ablation: custom pool as one object vs exposed pieces (section 3.1 footnote), 197.parser-like")
    (Ascii.table
       ~header:[ "pool handling"; "groups"; "objects"; "capture"; "LEAP bytes"; "MDF good" ]
       ~rows:
         (List.map
            (fun r ->
              [
                r.pool_mode;
                string_of_int r.pool_groups;
                string_of_int r.pool_objects;
                Ascii.percent r.pool_capture;
                string_of_int r.pool_profile_bytes;
                Ascii.percent r.pool_mdf_good;
              ])
            rows))

type phase_row = {
  workload_p : string;
  n_phases : int;
  mono_capture : float;
  phased_capture : float;
}

(* Offset-stream capture when the LMAD budget is opened fresh for each
   index range: ranges = [whole run] gives the monolithic profiler,
   per-phase ranges the phase-cognizant one. *)
let capture_over_ranges tuples ranges =
  let captured = ref 0 and total = ref 0 in
  List.iter
    (fun (lo, hi) ->
      let streams = Hashtbl.create 64 in
      for i = lo to hi - 1 do
        let tu = tuples.(i) in
        let key = (tu.Ormp_core.Tuple.instr, tu.Ormp_core.Tuple.group) in
        let comp =
          match Hashtbl.find_opt streams key with
          | Some c -> c
          | None ->
            let c = Ormp_lmad.Compressor.create ~dims:1 () in
            Hashtbl.replace streams key c;
            c
        in
        ignore (Ormp_lmad.Compressor.add comp [| tu.Ormp_core.Tuple.offset |])
      done;
      Hashtbl.iter
        (fun _ c ->
          captured := !captured + Ormp_lmad.Compressor.captured c;
          total := !total + Ormp_lmad.Compressor.total c)
        streams)
    ranges;
  if !total = 0 then 0.0 else float_of_int !captured /. float_of_int !total

let extension_phases ?(bench = false) () =
  List.map
    (fun entry ->
      let c = Ormp_analysis.Collect.run (Registry.program ~bench entry) in
      let tuples = c.Ormp_analysis.Collect.tuples in
      let phases = Ormp_analysis.Phase.detect tuples in
      let per_phase =
        List.map
          (fun p -> (p.Ormp_analysis.Phase.start_time, p.Ormp_analysis.Phase.stop_time))
          phases
      in
      {
        workload_p = entry.Registry.name;
        n_phases = List.length phases;
        mono_capture = capture_over_ranges tuples [ (0, Array.length tuples) ];
        phased_capture = capture_over_ranges tuples per_phase;
      })
    Registry.spec

let render_phases rows =
  Printf.sprintf "%s\n%s\n"
    (Ascii.section "Extension: phase-cognizant profiling (section 6 future work)")
    (Ascii.table
       ~header:[ "benchmark"; "phases"; "monolithic capture"; "per-phase capture" ]
       ~rows:
         (List.map
            (fun r ->
              [
                r.workload_p;
                string_of_int r.n_phases;
                Ascii.percent r.mono_capture;
                Ascii.percent r.phased_capture;
              ])
            rows))

type fused_row = {
  workload_f : string;
  fused_bytes : int;
  omsg_bytes_f : int;
  decomposition_gain_pct : float;
}

let ablation_no_decomposition ?(bench = false) () =
  List.map
    (fun entry ->
      let program = Registry.program ~bench entry in
      (* Fused: one Sequitur over the interleaved 4-tuple stream. *)
      let fused = Ormp_sequitur.Sequitur.create () in
      let on_tuple (tu : Ormp_core.Tuple.t) =
        Ormp_sequitur.Sequitur.push fused tu.instr;
        Ormp_sequitur.Sequitur.push fused tu.group;
        Ormp_sequitur.Sequitur.push fused tu.obj;
        Ormp_sequitur.Sequitur.push fused tu.offset
      in
      let cdc = Ormp_core.Cdc.create ~site_name ~on_tuple () in
      ignore (Ormp_vm.Runner.run program (Ormp_core.Cdc.sink cdc));
      let omsg = Ormp_whomp.Whomp.profile program in
      let fb = Ormp_sequitur.Sequitur.byte_size fused in
      let ob = Ormp_whomp.Whomp.omsg_bytes omsg in
      {
        workload_f = entry.Registry.name;
        fused_bytes = fb;
        omsg_bytes_f = ob;
        decomposition_gain_pct =
          (if fb = 0 then 0.0 else float_of_int (fb - ob) /. float_of_int fb);
      })
    Registry.spec

let render_fused rows =
  Printf.sprintf "%s\n%s\n"
    (Ascii.section "Ablation: horizontal decomposition vs fused tuple grammar")
    (Ascii.table
       ~header:[ "benchmark"; "fused bytes"; "OMSG bytes"; "decomposition gain" ]
       ~rows:
         (List.map
            (fun r ->
              [
                r.workload_f;
                string_of_int r.fused_bytes;
                string_of_int r.omsg_bytes_f;
                Ascii.percent r.decomposition_gain_pct;
              ])
            rows))
