(** The LEAP linear compressor (§4.1).

    Reads an n-dimensional point stream and describes it with at most
    [budget] LMADs. A new point first tries to extend the {e current}
    descriptor; a mismatch that falls exactly on an iteration boundary can
    instead {e deepen} the descriptor by one loop level (up to
    [max_depth]), which is how a repeating inner-loop sweep becomes a
    single two-level LMAD instead of one descriptor per sweep. Any other
    mismatch closes the current descriptor and starts a new one. Once the
    budget is exhausted, non-fitting points are {e discarded} and only an
    overall summary (per-dimension min, max and granularity) is kept —
    this is what makes LEAP lossy. The paper uses a budget of 30 LMADs per
    (instruction, group) pair. *)

type summary = {
  min_v : int array;  (** per-dimension minimum over discarded points *)
  max_v : int array;  (** per-dimension maximum over discarded points *)
  granularity : int array;
      (** per-dimension gcd of deltas between consecutive discarded points *)
  discarded : int;    (** number of discarded points *)
}

type t

type placement =
  | Extended of int  (** the point extended the LMAD with this creation index *)
  | Opened of int  (** a new LMAD with this creation index was started *)
  | Discarded  (** budget exhausted; the point went into the summary *)

val create : ?budget:int -> ?max_depth:int -> dims:int -> unit -> t
(** [create ~dims ()] with the paper's default budget of 30 and at most 3
    nesting levels per descriptor. *)

val default_budget : int
(** 30, per §4.1. *)

val add : t -> int array -> placement
(** Offer the next point of the stream; reports where it went so callers
    can keep per-descriptor side metadata (LEAP keeps time spans). A point
    that closes the current descriptor and opens a fresh one reports
    [Opened]; the trailing partial iteration of the closed descriptor is
    transparently carried into the fresh one.
    @raise Invalid_argument on dimension mismatch. *)

(** {2 Packed-code entry points}

    [add] boxes every point into an array and allocates its [placement]
    result; the LEAP hot path feeds millions of 1- and 2-dimensional
    points per run, so these variants take the point as scalars and
    return the placement packed into an int: {!code_tag} on the low two
    bits, {!code_index} (the descriptor creation index, meaningful for
    extended/opened) above. Semantics are identical to [add] — the two
    steady states (extend a matching descriptor, discard over budget)
    are allocation-free, and every structural change routes through the
    same machinery as [add]. *)

val add2_code : t -> int -> int -> int
(** [add2_code t a b] = [add t [|a; b|]] as a packed code.
    @raise Invalid_argument unless the compressor has [dims = 2]. *)

val add1_code : t -> int -> int
(** [add1_code t a] = [add t [|a|]] as a packed code.
    @raise Invalid_argument unless the compressor has [dims = 1]. *)

val code_tag : int -> int
(** Low bits of a packed code: {!code_extended}, {!code_opened} or
    {!code_discarded}. *)

val code_index : int -> int
(** Descriptor creation index of a packed code (extended/opened only). *)

val code_extended : int
val code_opened : int
val code_discarded : int

val lmads : t -> Lmad.t list
(** Closed and open descriptors, in creation order. The open descriptor's
    trailing partial iteration is not visible here (it is still pending). *)

val total : t -> int
(** Points offered so far. *)

val captured : t -> int
(** Points represented by the descriptors ([total - discarded]). *)

val discarded : t -> int
(** Points dropped into the summary. *)

val fully_captured : t -> bool
(** No point was discarded: the descriptors describe the stream
    losslessly. *)

val summary : t -> summary option
(** Present iff at least one point was discarded. *)

val byte_size : t -> int
(** Serialized size of all LMADs plus the summary, in varint bytes. *)

val reconstruct : t -> int array list
(** Every captured point in arrival order (including the open descriptor's
    pending partial iteration); equals the input stream when
    [fully_captured]. For tests. *)

(** {1 Persistence} *)

type parts = {
  p_dims : int;
  p_budget : int;
  p_max_depth : int;
  p_lmads : Lmad.t list;  (** in creation order; the open descriptor is
                              finalized (a trailing partial iteration, if
                              any, is not representable and is dropped
                              from the descriptors — totals keep counting
                              it) *)
  p_total : int;
  p_discarded : int;
  p_summary : summary option;
}

val parts : t -> parts
(** A serializable snapshot of the compressor's state. *)

val of_parts : parts -> t
(** Rebuild a compressor from a snapshot. The result answers every query
    like the original; further [add]s start a fresh descriptor, and the
    summary's granularity chain restarts at the next discarded point.
    @raise Invalid_argument on inconsistent parts. *)

(** {1 Exact state snapshots}

    {!parts} is the {e lossy} persistence view: the open descriptor is
    finalized, so a rebuilt compressor does not continue the stream the
    way the original would have. Checkpoint/resume needs the exact live
    state — open descriptor, pending partial iteration, discarded-summary
    chain — so that a restored compressor placed back in a stream behaves
    byte-for-byte like one that was never interrupted. *)

type open_state = {
  s_start : int array;  (** descriptor origin *)
  s_levels : Lmad.level list;  (** frozen inner levels, innermost first *)
  s_top_stride : int array option;
      (** stride of the still-growing outermost level; [None] before the
          second point arrives *)
  s_top_done : int;  (** complete outer iterations consumed *)
  s_partial : int;  (** points consumed of the next outer iteration *)
}
(** The in-flight descriptor, field for field. *)

type state = {
  s_dims : int;
  s_budget : int;
  s_max_depth : int;
  s_closed : Lmad.t list;  (** closed descriptors, creation order *)
  s_current : open_state option;
  s_total : int;
  s_summary : summary option;
      (** present iff points were discarded; carries the discarded count *)
  s_last_discarded : int array option;
      (** last discarded point, so the granularity gcd chain continues *)
}

val state : t -> state
(** Deep snapshot of the exact compressor state (arrays are copied). *)

val of_state : state -> t
(** Rebuild from {!state}. [add]s on the result behave exactly as they
    would have on the original — extending the open descriptor, deepening
    on the same boundaries, and continuing the summary's granularity
    chain. @raise Invalid_argument on an inconsistent state. *)
