(** A sanitizer run's findings, severity-ranked, with a human renderer and
    a machine-readable s-expression form. *)

type t = {
  subject : string;  (** what was checked — workload or profile path *)
  findings : Finding.t list;  (** sorted by {!Finding.compare} *)
  accesses : int;  (** accesses observed by the sanitizer *)
  allocs : int;
  frees : int;
}

val errors : t -> int
val warnings : t -> int
val notes : t -> int

val clean : t -> bool
(** No errors and no warnings (notes — e.g. leak reports — do not make a
    run dirty; registered workloads legitimately never free). *)

val render : Format.formatter -> t -> unit
val to_sexp : t -> Ormp_util.Sexp.t
