(** Source-level lint for the repo's concurrency and output conventions.

    Five rules, enforced over [.ml] files (comments and strings are
    stripped before matching):

    - [atomic] (error) — no raw [Atomic.] use outside the functorized
      transport seam ({!Ormp_trace.Atomics_intf}); everything else must
      go through the seam so the model checker can trace it.
    - [hashtbl-order] (error) — no [Hashtbl.iter]/[Hashtbl.fold] under
      [persist/]: iteration order depends on insertion history and would
      make persisted output nondeterministic. Waive at sort sites.
    - [hot-path-alloc] (warning) — no allocation-prone constructs
      ([sprintf], [List.map], …) in files tagged [lint:hot-path].
    - [blocking-io] (error) — no unbounded blocking calls ([Unix.read],
      [Unix.sleep*], [input_line], [Unix.accept]/[connect]/[select]/
      [recv]) outside the server's deadline-aware I/O seam (any path
      ending in [server/net_io.ml] is exempt): a call that can wait
      forever turns one slow peer into a wedged daemon. Waive at sites
      that provably touch only regular files or are startup-only.
    - [bare-eprintf] (error) — no direct stderr writes ([eprintf],
      [prerr_*], [output_string stderr]) bypassing
      {!Ormp_telemetry.Log}.

    Waivers are comments carrying their own justification:
    [lint:allow <rule>] (same or preceding line),
    [lint:allow-file <rule>] (whole file), [lint:hot-path] (tag). *)

type finding = {
  rule : string;
  severity : Finding.severity;
  file : string;
  line : int;  (* 1-based *)
  text : string;  (** the offending source line, trimmed *)
  message : string;
}

type report = { roots : string list; files_scanned : int; findings : finding list }

val rule_names : string list

val scan_file : string -> finding list
(** Findings for one file, in line order. *)

val scan : string list -> report
(** Walk the given roots (skipping [_build] and dot-entries), scan every
    [.ml], and return findings sorted severity-major, then file, then
    line. *)

val errors : report -> int
val warnings : report -> int
val notes : report -> int

val clean : report -> bool
(** No errors and no warnings (mirrors {!Report.clean}). *)

val render : Format.formatter -> report -> unit

val to_sexp : report -> Ormp_util.Sexp.t
(** Mirrors the [ormp-check-report] shape: subject, severity counts, then
    the findings. *)
