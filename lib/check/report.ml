type t = {
  subject : string;
  findings : Finding.t list;
  accesses : int;
  allocs : int;
  frees : int;
}

let count sev t =
  List.length (List.filter (fun (f : Finding.t) -> f.severity = sev) t.findings)

let errors t = count Finding.Error t
let warnings t = count Finding.Warning t
let notes t = count Finding.Note t
let clean t = errors t = 0 && warnings t = 0

let render fmt t =
  Format.fprintf fmt "ormp-san: %s — %d error(s), %d warning(s), %d note(s)@."
    t.subject (errors t) (warnings t) (notes t);
  Format.fprintf fmt "  accesses %d, allocs %d, frees %d@." t.accesses t.allocs t.frees;
  List.iter (fun f -> Format.fprintf fmt "  %a@." Finding.pp f) t.findings

let to_sexp t =
  let module S = Ormp_util.Sexp in
  S.field "ormp-check-report"
    ([
       S.field "subject" [ S.atom t.subject ];
       S.field "errors" [ S.int (errors t) ];
       S.field "warnings" [ S.int (warnings t) ];
       S.field "notes" [ S.int (notes t) ];
       S.field "accesses" [ S.int t.accesses ];
       S.field "allocs" [ S.int t.allocs ];
       S.field "frees" [ S.int t.frees ];
     ]
    @ List.map Finding.to_sexp t.findings)
