(* Source-level lint for the repo's own concurrency and output-path
   conventions. Line-based: comments and string literals are stripped
   with a small cross-line state machine (so prose mentioning an atomic
   API, or this module's own pattern tables, never trigger), then each
   rule looks for literal tokens at identifier boundaries.

   Waivers are source comments, so the justification lives next to the
   code it covers — see the mli for the exact marker syntax (spelling the
   hot-path tag out here would tag this very file).

   Findings reuse {!Finding.severity} and the report mirrors the
   [ormp-check-report] sexp shape from {!Report}. *)

type finding = {
  rule : string;
  severity : Finding.severity;
  file : string;
  line : int;
  text : string;  (* the offending source line, trimmed *)
  message : string;
}

type report = { roots : string list; files_scanned : int; findings : finding list }

(* --- rule table -------------------------------------------------------- *)

type rule = {
  r_name : string;
  r_severity : Finding.severity;
  r_doc : string;
  r_applies : string -> bool;  (* on the /-normalized relative path *)
  r_needs_tag : bool;  (* only files carrying the hot-path tag *)
  r_patterns : string list;
  r_message : string;
}

let in_dir d path = List.mem d (String.split_on_char '/' path)

let rules =
  [
    {
      r_name = "atomic";
      r_severity = Finding.Error;
      r_doc = "no raw Atomic use outside the functorized transport seam";
      r_applies = (fun _ -> true);
      r_needs_tag = false;
      r_patterns = [ "Atomic." ];
      r_message =
        "raw Atomic use outside the transport seam — go through the \
         Atomics_intf functor seam (or waive with a justification)";
    };
    {
      r_name = "hashtbl-order";
      r_severity = Finding.Error;
      r_doc = "no Hashtbl.iter/fold on output paths (iteration order is nondeterministic)";
      r_applies = in_dir "persist";
      r_needs_tag = false;
      r_patterns = [ "Hashtbl.iter"; "Hashtbl.fold" ];
      r_message =
        "Hashtbl iteration order depends on insertion history; persisted \
         output must sort (waive at the sort site)";
    };
    {
      r_name = "hot-path-alloc";
      r_severity = Finding.Warning;
      r_doc = "no allocation-prone constructs in lint:hot-path files";
      r_applies = (fun _ -> true);
      r_needs_tag = true;
      r_patterns =
        [
          "Printf.sprintf";
          "Format.sprintf";
          "Format.asprintf";
          "String.concat";
          "List.map";
          "List.filter";
          "List.concat";
          "List.append";
          "Array.to_list";
          "Array.of_list";
        ];
      r_message = "allocation-prone construct in a hot-path-tagged file";
    };
    {
      r_name = "blocking-io";
      r_severity = Finding.Error;
      r_doc = "no unbounded blocking calls outside the server's deadline-aware I/O seam";
      r_applies = (fun p -> not (String.ends_with ~suffix:"server/net_io.ml" p));
      r_needs_tag = false;
      r_patterns =
        [
          "Unix.read";
          "Unix.sleep";
          "input_line";
          "Unix.accept";
          "Unix.connect";
          "Unix.select";
          "Unix.recv";
        ];
      r_message =
        "unbounded blocking call — go through the deadline-aware Net_io seam \
         (or waive with a justification)";
    };
    {
      r_name = "bare-eprintf";
      r_severity = Finding.Error;
      r_doc = "no direct stderr writes bypassing the telemetry logger";
      r_applies = (fun _ -> true);
      r_needs_tag = false;
      r_patterns = [ "eprintf"; "prerr_"; "output_string stderr" ];
      r_message = "direct stderr write — report through Ormp_telemetry.Log instead";
    };
  ]

let rule_names = List.map (fun r -> r.r_name) rules

(* --- comment/string stripping ------------------------------------------ *)

(* State carried across lines: comment nesting depth, inside-a-string,
   and whether that string started inside a comment. Each line splits
   into a code view (rules match here — string contents are blanked, so a
   pattern table never matches itself) and a comment view (waiver markers
   are comment syntax, so they are recognized only here). Stripped
   characters become spaces so column positions survive. Char literals
   containing quote characters ('"', '\'') are skipped by a narrow
   lookahead — enough for real OCaml source. *)
type strip_state = {
  mutable depth : int;
  mutable in_string : bool;
  mutable str_in_comment : bool;
}

let strip_line st line =
  let n = String.length line in
  let code = Bytes.make n ' ' in
  let com = Bytes.make n ' ' in
  let i = ref 0 in
  while !i < n do
    let c = line.[!i] in
    if st.in_string then begin
      if st.str_in_comment then Bytes.set com !i c;
      if c = '\\' then begin
        if st.str_in_comment && !i + 1 < n then Bytes.set com (!i + 1) line.[!i + 1];
        incr i (* skip the escaped char *)
      end
      else if c = '"' then st.in_string <- false
    end
    else if st.depth > 0 then begin
      Bytes.set com !i c;
      if c = '(' && !i + 1 < n && line.[!i + 1] = '*' then begin
        st.depth <- st.depth + 1;
        Bytes.set com (!i + 1) '*';
        incr i
      end
      else if c = '*' && !i + 1 < n && line.[!i + 1] = ')' then begin
        st.depth <- st.depth - 1;
        Bytes.set com (!i + 1) ')';
        incr i
      end
      else if c = '"' then begin
        st.in_string <- true;
        st.str_in_comment <- true
      end
    end
    else if c = '(' && !i + 1 < n && line.[!i + 1] = '*' then begin
      st.depth <- 1;
      incr i
    end
    else if c = '"' then begin
      st.in_string <- true;
      st.str_in_comment <- false
    end
    else if c = '\'' && !i + 2 < n && line.[!i + 2] = '\'' && line.[!i + 1] <> '\\' then begin
      (* char literal, e.g. '"' *)
      Bytes.set code !i c;
      i := !i + 2
    end
    else if c = '\'' && !i + 3 < n && line.[!i + 1] = '\\' && line.[!i + 3] = '\'' then begin
      (* escaped char literal, e.g. '\"' *)
      Bytes.set code !i c;
      i := !i + 3
    end
    else Bytes.set code !i c;
    incr i
  done;
  (Bytes.to_string code, Bytes.to_string com)

(* --- token matching ---------------------------------------------------- *)

let ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '\''

(* [needle] occurs at an identifier boundary: the preceding character is
   not part of an identifier. A '.' prefix is allowed on purpose —
   [Stdlib.Atomic.get] and [Format.eprintf] are still the raw thing. *)
let has_token hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i =
    if i + nn > nh then false
    else if String.sub hay i nn = needle && (i = 0 || not (ident_char hay.[i - 1])) then true
    else at (i + 1)
  in
  nn > 0 && at 0

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i =
    if i + nn > nh then false else if String.sub hay i nn = needle then true else at (i + 1)
  in
  nn > 0 && at 0

let allow_marker rule = "lint:allow " ^ rule
let allow_file_marker rule = "lint:allow-file " ^ rule
(* Concatenated so this file's own source never carries the live tag. *)
let hot_path_marker = "lint:" ^ "hot-path"

(* --- scanning ---------------------------------------------------------- *)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        (* lint:allow blocking-io — reads a regular file the walk just
           listed; no socket or pipe can reach here *)
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let normalize path = String.concat "/" (String.split_on_char '\\' path)

let scan_file path =
  let path = normalize path in
  let raw = read_lines path in
  let st = { depth = 0; in_string = false; str_in_comment = false } in
  let views = List.map (strip_line st) raw in
  let stripped = List.map fst views in
  let comments = Array.of_list (List.map snd views) in
  let raw_arr = Array.of_list raw in
  let hot = Array.exists (fun l -> contains l hot_path_marker) comments in
  let file_waived r =
    Array.exists (fun l -> contains l (allow_file_marker r.r_name)) comments
  in
  let line_waived r i =
    (* same line or the line above — where the justification comment sits *)
    contains comments.(i) (allow_marker r.r_name)
    || (i > 0 && contains comments.(i - 1) (allow_marker r.r_name))
  in
  let active =
    List.filter
      (fun r -> r.r_applies path && ((not r.r_needs_tag) || hot) && not (file_waived r))
      rules
  in
  let findings = ref [] in
  List.iteri
    (fun i line ->
      List.iter
        (fun r ->
          if List.exists (has_token line) r.r_patterns && not (line_waived r i) then
            findings :=
              {
                rule = r.r_name;
                severity = r.r_severity;
                file = path;
                line = i + 1;
                text = String.trim raw_arr.(i);
                message = r.r_message;
              }
              :: !findings)
        active)
    stripped;
  List.rev !findings

let rec walk path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if entry = "" || entry.[0] = '.' || entry = "_build" then acc
        else walk (Filename.concat path entry) acc)
      acc
      (let entries = Sys.readdir path in
       Array.sort compare entries;
       entries)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let scan roots =
  let files = List.rev (List.fold_left (fun acc root -> walk root acc) [] roots) in
  let findings = List.concat_map scan_file files in
  let findings =
    List.stable_sort
      (fun a b ->
        let c = compare (Finding.severity_rank a.severity) (Finding.severity_rank b.severity) in
        if c <> 0 then c
        else
          let c = compare a.file b.file in
          if c <> 0 then c else compare a.line b.line)
      findings
  in
  { roots; files_scanned = List.length files; findings }

(* --- reporting --------------------------------------------------------- *)

let count sev t = List.length (List.filter (fun f -> f.severity = sev) t.findings)
let errors t = count Finding.Error t
let warnings t = count Finding.Warning t
let notes t = count Finding.Note t
let clean t = errors t = 0 && warnings t = 0

let render fmt t =
  Format.fprintf fmt "ormp-lint: %s — %d error(s), %d warning(s), %d note(s) in %d file(s)@."
    (String.concat " " t.roots) (errors t) (warnings t) (notes t) t.files_scanned;
  List.iter
    (fun f ->
      Format.fprintf fmt "  %s:%d: %s [%s] %s@." f.file f.line
        (Finding.severity_name f.severity)
        f.rule f.message;
      Format.fprintf fmt "      %s@." f.text)
    t.findings

let finding_to_sexp f =
  let module S = Ormp_util.Sexp in
  S.field "finding"
    [
      S.field "rule" [ S.atom f.rule ];
      S.field "severity" [ S.atom (Finding.severity_name f.severity) ];
      S.field "file" [ S.atom f.file ];
      S.field "line" [ S.int f.line ];
      S.field "message" [ S.atom f.message ];
      S.field "text" [ S.atom f.text ];
    ]

let to_sexp t =
  let module S = Ormp_util.Sexp in
  S.field "ormp-lint-report"
    ([
       S.field "subject" [ S.atom (String.concat " " t.roots) ];
       S.field "errors" [ S.int (errors t) ];
       S.field "warnings" [ S.int (warnings t) ];
       S.field "notes" [ S.int (notes t) ];
       S.field "files" [ S.int t.files_scanned ];
     ]
    @ List.map finding_to_sexp t.findings)
