(** Byte-level profile equivalence.

    The pipeline-parallel SCC promises profiles {e byte-identical} to the
    serial path; these checkers state that promise as an executable
    invariant. Each compares two profiles through their persisted
    serialization (which deliberately excludes wall-clock [elapsed]) and
    reports the first divergence — for WHOMP, narrowed to the first
    differing dimension grammar. Used by the parallel-equivalence
    property tests and available to any harness that runs both paths. *)

val whomp :
  Ormp_whomp.Whomp.profile -> Ormp_whomp.Whomp.profile -> (unit, string) result

val rasg : Ormp_whomp.Rasg.profile -> Ormp_whomp.Rasg.profile -> (unit, string) result

val leap : Ormp_leap.Leap.profile -> Ormp_leap.Leap.profile -> (unit, string) result
