module S = Ormp_util.Sexp

let first_diff a b =
  let n = min (String.length a) (String.length b) in
  let i = ref 0 in
  while !i < n && a.[!i] = b.[!i] do
    incr i
  done;
  !i

let excerpt s i =
  let lo = max 0 (i - 40) in
  let hi = min (String.length s) (i + 40) in
  String.sub s lo (hi - lo)

let check ~what a b =
  if String.equal a b then Ok ()
  else
    let i = first_diff a b in
    Error
      (Printf.sprintf "%s profiles differ at byte %d (%d vs %d bytes): ...%s... vs ...%s..."
         what i (String.length a) (String.length b) (excerpt a i) (excerpt b i))

let rasg a b =
  check ~what:"rasg"
    (S.to_string (Ormp_persist.Rasg_io.to_sexp a))
    (S.to_string (Ormp_persist.Rasg_io.to_sexp b))

let leap a b =
  check ~what:"leap"
    (S.to_string (Ormp_persist.Leap_io.to_sexp a))
    (S.to_string (Ormp_persist.Leap_io.to_sexp b))

let whomp (a : Ormp_whomp.Whomp.profile) (b : Ormp_whomp.Whomp.profile) =
  match
    check ~what:"whomp"
      (S.to_string (Ormp_persist.Whomp_io.to_sexp a))
      (S.to_string (Ormp_persist.Whomp_io.to_sexp b))
  with
  | Ok () -> Ok ()
  | Error e ->
    (* Narrow the report to the first differing dimension grammar, when the
       profiles are at least shaped alike. *)
    let rec narrow = function
      | (na, ga) :: ra, (nb, gb) :: rb ->
        if na <> nb then Error (Printf.sprintf "%s (dimension order: %S vs %S)" e na nb)
        else if
          S.to_string (Ormp_persist.Grammar_io.to_sexp (na, ga))
          <> S.to_string (Ormp_persist.Grammar_io.to_sexp (nb, gb))
        then Error (Printf.sprintf "%s (first divergent dimension: %S)" e na)
        else narrow (ra, rb)
      | _ -> Error e
    in
    narrow (a.Ormp_whomp.Whomp.dims, b.Ormp_whomp.Whomp.dims)
