module Ri = Ormp_interval.Range_index

(* The sanitizer keeps its own object database rather than reusing the
   OMC: it must remember *freed* objects (the graveyard) to attribute
   use-after-free and double-free, which the OMC deliberately forgets
   from its index the moment an object dies. Grouping is by allocation
   site, the same default the OMC uses, so findings speak the profilers'
   coordinates. *)
type sobj = {
  site : int;
  serial : int;  (** dense per allocation site *)
  base : int;
  size : int;
  alloc_time : int;
  mutable free_time : int option;
  mutable free_site : int option;
}

type raw = {
  kind : Finding.kind;
  r_instr : int option;
  r_addr : int;
  r_offset : int option;
  r_obj : sobj option;
  r_time : int;
  mutable r_count : int;
}

type t = {
  live : sobj Ri.t;
  graveyard : sobj Ri.t;
  serials : (int, int) Hashtbl.t;  (* alloc site -> next serial *)
  dedup : (Finding.kind * int * int * int, raw) Hashtbl.t;
  order : raw Ormp_util.Vec.t;  (* dedup values in first-occurrence order *)
  slack : int;
  mutable mru : sobj option;  (* last object an access resolved to *)
  mutable clock : int;  (* advances once per access inside a live object *)
  mutable accesses : int;
  mutable allocs : int;
  mutable frees : int;
}

let default_slack = 64

let create ?(slack = default_slack) () =
  if slack < 0 then invalid_arg "Sanitizer.create: slack must be non-negative";
  {
    live = Ri.create ();
    graveyard = Ri.create ();
    serials = Hashtbl.create 64;
    dedup = Hashtbl.create 64;
    order = Ormp_util.Vec.create ();
    slack;
    mru = None;
    clock = 0;
    accesses = 0;
    allocs = 0;
    frees = 0;
  }

let record t kind ?instr ?offset ?obj ~addr () =
  let key =
    ( kind,
      (match instr with Some i -> i | None -> -1),
      (match obj with Some o -> o.site | None -> -1),
      match obj with Some o -> o.serial | None -> -1 )
  in
  match Hashtbl.find_opt t.dedup key with
  | Some r -> r.r_count <- r.r_count + 1
  | None ->
    let r =
      {
        kind;
        r_instr = instr;
        r_addr = addr;
        r_offset = offset;
        r_obj = obj;
        r_time = t.clock;
        r_count = 1;
      }
    in
    Hashtbl.replace t.dedup key r;
    Ormp_util.Vec.push t.order r

(* Drop every graveyard range overlapping [base, base+size): the address
   space has been reused, so those corpses can no longer be blamed for
   accesses landing there. *)
let evict_graveyard t ~base ~size =
  let rec go () =
    match Ri.find_nearest_below t.graveyard (base + size - 1) with
    | Some (b, s, _) when b + s > base ->
      ignore (Ri.remove t.graveyard ~base:b);
      go ()
    | _ -> ()
  in
  go ()

let on_alloc t ~site ~addr ~size =
  t.allocs <- t.allocs + 1;
  evict_graveyard t ~base:addr ~size;
  let serial =
    let n = match Hashtbl.find_opt t.serials site with Some n -> n | None -> 0 in
    Hashtbl.replace t.serials site (n + 1);
    n
  in
  let o =
    { site; serial; base = addr; size; alloc_time = t.clock; free_time = None; free_site = None }
  in
  match Ri.insert t.live ~base:addr ~size o with
  | () -> ()
  | exception Invalid_argument _ ->
    (* A creation probe for memory that is already live: the probe stream
       itself is corrupt (a substrate bug, not a workload bug). *)
    let victim =
      match Ri.find_nearest_below t.live (addr + size - 1) with
      | Some (b, s, v) when b + s > addr -> Some v
      | _ -> None
    in
    record t Finding.Overlapping_alloc ~instr:site ?obj:victim ~addr ()

let on_free t ?site ~addr () =
  t.frees <- t.frees + 1;
  match Ri.find t.live addr with
  | Some (b, _, o) when b = addr ->
    o.free_time <- Some t.clock;
    o.free_site <- site;
    ignore (Ri.remove t.live ~base:addr);
    evict_graveyard t ~base:o.base ~size:o.size;
    Ri.insert t.graveyard ~base:o.base ~size:o.size o
  | Some (_, _, o) ->
    record t Finding.Invalid_free ?instr:site ~offset:(addr - o.base) ~obj:o ~addr ()
  | None -> (
    match Ri.find t.graveyard addr with
    | Some (b, _, o) when b = addr ->
      record t Finding.Double_free ?instr:site ~offset:0 ~obj:o ~addr ()
    | Some (_, _, o) ->
      record t Finding.Invalid_free ?instr:site ~offset:(addr - o.base) ~obj:o ~addr ()
    | None -> record t Finding.Invalid_free ?instr:site ~addr ())

(* An access that resolved to no live object: blame, in order of
   preference, the freed object whose former range contains it
   (use-after-free), a live object it sits within [slack] bytes of
   (out-of-bounds), or nothing (unmapped). The sanitizer clock does not
   advance — it mirrors the CDC's collected-access counter, so finding
   times line up with profile time stamps. *)
let classify_wild t ~instr ~addr =
  match Ri.find t.graveyard addr with
  | Some (_, _, o) ->
    record t Finding.Use_after_free ~instr ~offset:(addr - o.base) ~obj:o ~addr ()
  | None ->
    let below =
      match Ri.find_nearest_below t.live addr with
      | Some (b, s, o) when addr >= b + s && addr - (b + s) < t.slack ->
        Some (addr - (b + s), o)
      | _ -> None
    and above =
      match Ri.find_nearest_above t.live addr with
      | Some (b, _, o) when b - addr <= t.slack -> Some (b - addr, o)
      | _ -> None
    in
    let nearest =
      match (below, above) with
      | Some (d1, o1), Some (d2, o2) -> Some (if d1 <= d2 then o1 else o2)
      | (Some (_, o), None | None, Some (_, o)) -> Some o
      | None, None -> None
    in
    (match nearest with
    | Some o -> record t Finding.Out_of_bounds ~instr ~offset:(addr - o.base) ~obj:o ~addr ()
    | None -> record t Finding.Unmapped_access ~instr ~addr ())

let on_access_slow t ~instr ~addr =
  match Ri.find t.live addr with
  | Some (_, _, o) ->
    t.mru <- Some o;
    t.clock <- t.clock + 1
  | None -> classify_wild t ~instr ~addr

let[@inline] on_access t ~instr ~addr =
  t.accesses <- t.accesses + 1;
  match t.mru with
  | Some o when o.free_time = None && addr - o.base >= 0 && addr - o.base < o.size ->
    t.clock <- t.clock + 1
  | _ -> on_access_slow t ~instr ~addr

let event t (ev : Ormp_trace.Event.t) =
  match ev with
  | Access { instr; addr; size = _; is_store = _ } -> on_access t ~instr ~addr
  | Alloc { site; addr; size; type_name = _ } -> on_alloc t ~site ~addr ~size
  | Free { addr; site } -> on_free t ?site ~addr ()

let sink t : Ormp_trace.Sink.t = fun ev -> event t ev

let batch ?capacity t =
  Ormp_trace.Batch.create ?capacity
    ~on_chunk:(fun c ->
      for i = 0 to c.len - 1 do
        on_access t ~instr:c.instr.(i) ~addr:c.addr.(i)
      done)
    ~on_event:(fun ev ->
      match ev with
      | Alloc _ | Free _ -> event t ev
      | Access _ -> assert false (* batches route accesses through on_chunk *))
    ()

let is_static_default label =
  String.length label >= 7 && String.sub label 0 7 = "static:"

let finish ?(leaks = false) ?(site_name = fun i -> Printf.sprintf "site#%d" i)
    ?(is_static_site = is_static_default) ~subject t =
  let raws = Ormp_util.Vec.fold_left (fun acc r -> r :: acc) [] t.order in
  let info (o : sobj) =
    let label = site_name o.site in
    {
      Finding.group = label;
      serial = o.serial;
      base = o.base;
      size = o.size;
      alloc_site = label;
      alloc_time = o.alloc_time;
      free_site = Option.map site_name o.free_site;
      free_time = o.free_time;
    }
  in
  let of_raw r =
    {
      Finding.kind = r.kind;
      severity = Finding.severity_of_kind r.kind;
      instr = Option.map site_name r.r_instr;
      addr = r.r_addr;
      offset = r.r_offset;
      obj = Option.map info r.r_obj;
      first_time = r.r_time;
      count = r.r_count;
    }
  in
  let leak_findings =
    if not leaks then []
    else begin
      (* One finding per allocation site, counting its still-live objects
         — per-object leak records would swamp the report on workloads
         that intentionally hold everything until exit. *)
      let by_site : (int, Finding.t) Hashtbl.t = Hashtbl.create 16 in
      let sites_in_order = ref [] in
      Ri.iter t.live (fun ~base:_ ~size:_ o ->
          if not (is_static_site (site_name o.site)) then
            match Hashtbl.find_opt by_site o.site with
            | Some f -> Hashtbl.replace by_site o.site { f with Finding.count = f.count + 1 }
            | None ->
              sites_in_order := o.site :: !sites_in_order;
              Hashtbl.replace by_site o.site
                (Finding.make ~obj:(info o) ~addr:o.base ~time:t.clock Finding.Leak));
      List.rev_map (fun s -> Hashtbl.find by_site s) !sites_in_order
    end
  in
  let findings = List.sort Finding.compare (List.rev_map of_raw raws @ leak_findings) in
  {
    Report.subject;
    findings;
    accesses = t.accesses;
    allocs = t.allocs;
    frees = t.frees;
  }

let accesses t = t.accesses
let collected t = t.clock

let run ?config ?slack ?(leaks = false) (p : Ormp_vm.Program.t) =
  let t = create ?slack () in
  let b = batch t in
  let result = Ormp_vm.Runner.run_batched ?config p b in
  let site_name i = (Ormp_trace.Instr.info result.table i).name in
  finish ~leaks ~site_name ~subject:p.name t
