module Ri = Ormp_interval.Range_index
module Seq_c = Ormp_sequitur.Sequitur
module L = Ormp_lmad.Lmad
module C = Ormp_lmad.Compressor

let ( let* ) = Result.bind

let rec check_all = function
  | [] -> Ok ()
  | f :: rest ->
    let* () = f () in
    check_all rest

let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

(* --- Sequitur grammars ------------------------------------------------ *)

type rules = (int * [ `T of int | `N of int ] list) list

let grammar_rules ?input_length ?(max_duplicate_digrams = 0) (rules : rules) =
  let tbl = Hashtbl.create 64 in
  let* () =
    check_all
      (List.map
         (fun (id, rhs) () ->
           if Hashtbl.mem tbl id then errf "duplicate rule R%d" id
           else begin
             Hashtbl.replace tbl id rhs;
             Ok ()
           end)
         rules)
  in
  if not (Hashtbl.mem tbl 0) then Error "no start rule R0"
  else
    (* Rule utility: every non-start rule is referenced at least twice
       (otherwise Sequitur would have inlined it). *)
    let refs = Hashtbl.create 64 in
    List.iter
      (fun (_, rhs) ->
        List.iter
          (function
            | `N r -> Hashtbl.replace refs r (1 + Option.value ~default:0 (Hashtbl.find_opt refs r))
            | `T _ -> ())
          rhs)
      rules;
    let* () =
      check_all
        (List.map
           (fun (id, rhs) () ->
             if id <> 0 && Option.value ~default:0 (Hashtbl.find_opt refs id) < 2 then
               errf "rule R%d used %d time(s), utility requires 2" id
                 (Option.value ~default:0 (Hashtbl.find_opt refs id))
             else if id <> 0 && List.length rhs < 2 then
               errf "rule R%d has %d symbol(s), rules describe digrams or longer" id
                 (List.length rhs)
             else Ok ())
           rules)
    in
    (* Digram uniqueness: no pair of adjacent symbols occurs twice in the
       grammar, except the overlapping occurrence a run of equal symbols
       produces ("aaa" holds digram aa at positions 0 and 1, which share
       the middle symbol — the classic algorithm leaves those alone).
       [max_duplicate_digrams] tolerates that many violations: our
       Sequitur validates digram-index hits lazily, so a stale index
       entry can cost one missed match whose duplicate then survives in
       the final grammar (documented in the compressor; rediscovered on
       the next repetition, so duplicates stay rare). *)
    let digrams = Hashtbl.create 256 in
    let duplicates = ref 0 in
    let first_dup = ref None in
    let* () =
      check_all
        (List.map
           (fun (id, rhs) () ->
             let arr = Array.of_list rhs in
             for p = 0 to Array.length arr - 2 do
               let d = (arr.(p), arr.(p + 1)) in
               match Hashtbl.find_opt digrams d with
               | Some (r0, p0) when not (r0 = id && p = p0 + 1) ->
                 incr duplicates;
                 if !first_dup = None then first_dup := Some (r0, p0, id, p)
               | _ -> Hashtbl.replace digrams d (id, p)
             done;
             match !first_dup with
             | Some (r0, p0, rd, pd) when !duplicates > max_duplicate_digrams ->
               errf "%d repeated digram(s) (first: R%d position %d and R%d position %d)"
                 !duplicates r0 p0 rd pd
             | _ -> Ok ())
           rules)
    in
    (* Expansion round-trip: the grammar must be acyclic, fully defined,
       and expand to exactly the pushed sequence's length. *)
    let memo = Hashtbl.create 64 in
    let expanding = Hashtbl.create 16 in
    let rec expand_len id =
      match Hashtbl.find_opt memo id with
      | Some n -> Ok n
      | None ->
        if Hashtbl.mem expanding id then errf "cyclic rule R%d" id
        else (
          match Hashtbl.find_opt tbl id with
          | None -> errf "dangling reference R%d" id
          | Some rhs ->
            Hashtbl.replace expanding id ();
            let* n =
              List.fold_left
                (fun acc sym ->
                  let* n = acc in
                  match sym with
                  | `T _ -> Ok (n + 1)
                  | `N r ->
                    let* m = expand_len r in
                    Ok (n + m))
                (Ok 0) rhs
            in
            Hashtbl.remove expanding id;
            Hashtbl.replace memo id n;
            Ok n)
    in
    let* n = expand_len 0 in
    (match input_length with
    | Some len when len <> n -> errf "expansion length %d, input length %d" n len
    | _ ->
      (* Unreferenced non-start rules escape the expansion; refs caught them
         above (0 uses < 2), so nothing more to check. *)
      Ok ())

let grammar g =
  let* () = Seq_c.check_invariants g in
  (* Tolerate roughly one lazily-missed digram match per 512 grammar
     symbols (and always at least 2): stale-index misses scale with how
     much relinking the input forced, i.e. with grammar size. *)
  let tolerance = max 2 (Seq_c.grammar_size g / 512) in
  (* Enumerate through [iter_rules] (ascending-id, allocation-light) rather
     than materializing [rules] twice over the verification pass. *)
  let listing = ref [] in
  Seq_c.iter_rules g (fun id rhs -> listing := (id, rhs) :: !listing);
  grammar_rules ~input_length:(Seq_c.input_length g) ~max_duplicate_digrams:tolerance
    (List.rev !listing)

(* --- LMADs and compressors ------------------------------------------- *)

let lmad ?dims (d : L.t) =
  let n = Array.length d.L.start in
  let* () =
    match dims with
    | Some expect when expect <> n -> errf "LMAD dims %d, stream dims %d" n expect
    | _ -> Ok ()
  in
  check_all
    (List.map
       (fun (lv : L.level) () ->
         if Array.length lv.L.stride <> n then
           errf "LMAD level stride dims %d, start dims %d" (Array.length lv.L.stride) n
         else if lv.L.count < 2 then errf "LMAD level count %d < 2" lv.L.count
         else Ok ())
       d.L.levels)

let compressor (c : C.t) =
  let p = C.parts c in
  let* () = if p.C.p_dims < 1 then errf "compressor dims %d < 1" p.C.p_dims else Ok () in
  let* () =
    if p.C.p_budget < 1 then errf "compressor budget %d < 1" p.C.p_budget else Ok ()
  in
  let n = List.length p.C.p_lmads in
  let* () =
    if n > p.C.p_budget then errf "%d LMADs exceed budget %d" n p.C.p_budget else Ok ()
  in
  let* () = check_all (List.map (fun d () -> lmad ~dims:p.C.p_dims d) p.C.p_lmads) in
  let* () =
    if p.C.p_discarded < 0 || p.C.p_discarded > p.C.p_total then
      errf "discarded %d outside [0, total %d]" p.C.p_discarded p.C.p_total
    else Ok ()
  in
  let captured = p.C.p_total - p.C.p_discarded in
  let described = List.fold_left (fun acc d -> acc + L.size d) 0 p.C.p_lmads in
  let* () =
    if described > captured then
      errf "LMADs describe %d points but only %d were captured" described captured
    else Ok ()
  in
  match (p.C.p_summary, p.C.p_discarded) with
  | None, 0 -> Ok ()
  | None, d -> errf "%d points discarded but no summary" d
  | Some _, 0 -> Error "summary present but nothing was discarded"
  | Some s, d ->
    if s.C.discarded <> d then
      errf "summary counts %d discarded, compressor %d" s.C.discarded d
    else if
      Array.length s.C.min_v <> p.C.p_dims
      || Array.length s.C.max_v <> p.C.p_dims
      || Array.length s.C.granularity <> p.C.p_dims
    then Error "summary dimensionality mismatch"
    else begin
      let bad = ref (Ok ()) in
      for i = 0 to p.C.p_dims - 1 do
        if !bad = Ok () then
          if s.C.min_v.(i) > s.C.max_v.(i) then
            bad := errf "summary box dim %d: min %d > max %d" i s.C.min_v.(i) s.C.max_v.(i)
          else if s.C.granularity.(i) < 0 then
            bad := errf "summary granularity dim %d negative" i
      done;
      !bad
    end

(* --- LEAP streams and profiles ---------------------------------------- *)

let leap_stream (s : Ormp_leap.Leap.stream) =
  let* () = compressor s.Ormp_leap.Leap.comp in
  let* () = compressor s.Ormp_leap.Leap.off in
  let pc = C.parts s.Ormp_leap.Leap.comp and po = C.parts s.Ormp_leap.Leap.off in
  let* () = if pc.C.p_dims <> 2 then errf "point stream dims %d <> 2" pc.C.p_dims else Ok () in
  let* () = if po.C.p_dims <> 1 then errf "offset stream dims %d <> 1" po.C.p_dims else Ok () in
  let* () =
    if pc.C.p_total <> po.C.p_total then
      errf "point stream saw %d accesses, offset stream %d" pc.C.p_total po.C.p_total
    else Ok ()
  in
  let nspans = Ormp_util.Vec.length s.Ormp_leap.Leap.spans in
  let nlmads = List.length pc.C.p_lmads in
  (* The compressor can close-and-reopen a descriptor internally without
     reporting a placement for it, so the span table may run one short of
     the descriptor list; [Leap.descriptors] pads the tail. More spans
     than descriptors is always wrong. *)
  let* () =
    if nspans > nlmads then errf "%d time spans for %d LMADs" nspans nlmads else Ok ()
  in
  let bad = ref (Ok ()) in
  let prev_last = ref min_int in
  Ormp_util.Vec.iteri
    (fun i (sp : Ormp_leap.Leap.span) ->
      if !bad = Ok () then
        if sp.t_first > sp.t_last then
          bad := errf "span %d: t_first %d > t_last %d" i sp.t_first sp.t_last
        else if sp.t_first < !prev_last then
          bad := errf "span %d begins @t%d before span %d ended @t%d" i sp.t_first (i - 1) !prev_last
        else prev_last := sp.t_last)
    s.Ormp_leap.Leap.spans;
  let* () = !bad in
  match (s.Ormp_leap.Leap.dspan, pc.C.p_discarded) with
  | None, 0 -> Ok ()
  | None, d -> errf "%d accesses discarded but no discard span" d
  | Some _, 0 -> Error "discard span present but nothing was discarded"
  | Some sp, _ ->
    if sp.t_first > sp.t_last then
      errf "discard span: t_first %d > t_last %d" sp.t_first sp.t_last
    else Ok ()

let leap_profile (p : Ormp_leap.Leap.profile) =
  let* () =
    check_all
      (List.map
         (fun ({ Ormp_leap.Leap.instr; group }, s) () ->
           match leap_stream s with
           | Ok () -> Ok ()
           | Error e -> errf "stream (i%d, g%d): %s" instr group e)
         p.Ormp_leap.Leap.streams)
  in
  let total =
    List.fold_left
      (fun acc (_, s) -> acc + C.total s.Ormp_leap.Leap.comp)
      0 p.Ormp_leap.Leap.streams
  in
  let* () =
    (* A budget-capped session routes accesses for dropped streams past the
       compressors entirely; those are accounted in [dropped_accesses]. *)
    if total + p.Ormp_leap.Leap.dropped_accesses <> p.Ormp_leap.Leap.collected then
      errf "streams hold %d accesses (+%d dropped), profile collected %d" total
        p.Ormp_leap.Leap.dropped_accesses p.Ormp_leap.Leap.collected
    else Ok ()
  in
  check_all
    (List.map
       (fun ({ Ormp_leap.Leap.instr; _ }, _) () ->
         if Hashtbl.mem p.Ormp_leap.Leap.store_instrs instr then Ok ()
         else errf "instruction i%d has a stream but no load/store record" instr)
       p.Ormp_leap.Leap.streams)

(* --- OMC object lifetimes ---------------------------------------------- *)

let objects ?groups (lts : Ormp_core.Omc.lifetime list) =
  let module O = Ormp_core.Omc in
  (* Per-group serial density and list-order alloc-time monotonicity. *)
  let next_serial = Hashtbl.create 64 in
  let* () =
    check_all
      (List.map
         (fun (l : O.lifetime) () ->
           let expect = Option.value ~default:0 (Hashtbl.find_opt next_serial l.O.group) in
           if l.O.serial <> expect then
             errf "group g%d: serial %d out of order, expected %d" l.O.group l.O.serial expect
           else begin
             Hashtbl.replace next_serial l.O.group (expect + 1);
             Ok ()
           end)
         lts)
  in
  let* () =
    let prev = ref min_int in
    check_all
      (List.map
         (fun (l : O.lifetime) () ->
           if l.O.alloc_time < !prev then
             errf "object g%d#%d allocated @t%d after a later allocation @t%d" l.O.group
               l.O.serial l.O.alloc_time !prev
           else begin
             prev := l.O.alloc_time;
             Ok ()
           end)
         lts)
  in
  let* () =
    check_all
      (List.map
         (fun (l : O.lifetime) () ->
           match (l.O.free_time, l.O.free_site) with
           | Some ft, _ when ft < l.O.alloc_time ->
             errf "object g%d#%d freed @t%d before allocation @t%d" l.O.group l.O.serial ft
               l.O.alloc_time
           | None, Some _ -> errf "object g%d#%d has a free site but no free time" l.O.group l.O.serial
           | _ -> Ok ())
         lts)
  in
  (* No two objects live at the same time may overlap in address space:
     time-sweep over [alloc_time, free_time) with frees applied before
     allocations at equal times (the clock does not advance on object
     events, so free-then-reuse at one time stamp is routine). Lifetimes
     with an empty live interval cannot overlap anything and are skipped. *)
  let events =
    List.concat_map
      (fun (l : O.lifetime) ->
        match l.O.free_time with
        | Some ft when ft = l.O.alloc_time -> []
        | Some ft -> [ (l.O.alloc_time, 1, l); (ft, 0, l) ]
        | None -> [ (l.O.alloc_time, 1, l) ])
      lts
  in
  let events =
    List.stable_sort
      (fun (t1, k1, _) (t2, k2, _) ->
        let c = Int.compare t1 t2 in
        if c <> 0 then c else Int.compare k1 k2)
      events
  in
  let idx = Ri.create () in
  let* () =
    check_all
      (List.map
         (fun (_, k, (l : O.lifetime)) () ->
           if k = 0 then begin
             ignore (Ri.remove idx ~base:l.O.base);
             Ok ()
           end
           else
             match Ri.insert idx ~base:l.O.base ~size:l.O.size l with
             | () -> Ok ()
             | exception Invalid_argument _ ->
               errf "object g%d#%d [%#x, +%d) overlaps another live object" l.O.group
                 l.O.serial l.O.base l.O.size)
         events)
  in
  match groups with
  | None -> Ok ()
  | Some gs ->
    let module O = Ormp_core.Omc in
    let counts = Hashtbl.create 64 in
    List.iter
      (fun (l : O.lifetime) ->
        Hashtbl.replace counts l.O.group
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts l.O.group)))
      lts;
    let* () =
      check_all
        (List.mapi
           (fun i (g : O.group_info) () ->
             if g.O.gid <> i then errf "group ids not dense: slot %d holds g%d" i g.O.gid
             else if g.O.population <> Option.value ~default:0 (Hashtbl.find_opt counts g.O.gid)
             then
               errf "group g%d population %d, but %d objects recorded" g.O.gid g.O.population
                 (Option.value ~default:0 (Hashtbl.find_opt counts g.O.gid))
             else Ok ())
           gs)
    in
    check_all
      (List.map
         (fun (l : O.lifetime) () ->
           if l.O.group < 0 || l.O.group >= List.length gs then
             errf "object references unknown group g%d" l.O.group
           else Ok ())
         lts)

let omc (o : Ormp_core.Omc.t) =
  objects ~groups:(Ormp_core.Omc.groups o) (Ormp_core.Omc.lifetimes o)

(* --- whole profiles ---------------------------------------------------- *)

let whomp_profile (p : Ormp_whomp.Whomp.profile) =
  let module W = Ormp_whomp.Whomp in
  let* () =
    let names = List.map fst p.W.dims in
    let expected = [ "instr"; "group"; "object"; "offset" ] in
    if names <> expected then
      errf "dimension grammars [%s], expected [%s]" (String.concat ";" names)
        (String.concat ";" expected)
    else Ok ()
  in
  let* () =
    check_all
      (List.map
         (fun (name, g) () ->
           let* () =
             match grammar g with Ok () -> Ok () | Error e -> errf "%s grammar: %s" name e
           in
           let n = Seq_c.input_length g in
           if n <> p.W.collected then
             errf "%s grammar holds %d symbols, profile collected %d" name n p.W.collected
           else Ok ())
         p.W.dims)
  in
  objects ~groups:p.W.groups p.W.lifetimes
