(** The object-relative memory sanitizer.

    A batched probe-stream consumer — the same {!Ormp_trace.Batch}
    interface the profilers use, so sanitizer dilation is measurable with
    the same harness — that maintains its own live/freed object database
    and flags:

    - {e use-after-free}: an access inside the former range of a freed
      object whose memory has not been reused since;
    - {e out-of-bounds}: an access within [slack] bytes of a live object
      but outside it;
    - {e double-free} / {e invalid-free}: destruction probes for freed
      bases or non-base addresses;
    - {e unmapped accesses}: everything else that hits no object
      (warning severity — stack-like raw accesses are unprofiled by
      design, but a workload built purely on objects should have none);
    - {e leaks}: objects still live at run end (note severity, reported
      only on request — the workload suite deliberately holds most data
      until exit).

    Every finding carries the object-relative attribution of §2.3:
    (group label, object serial, offset), plus the implicated object's
    allocation/free sites and times. Findings are deduplicated by
    (kind, program point, object) with occurrence counts.

    The sanitizer's clock advances once per access that resolves to a
    live object — the same rule as the CDC's collected-access counter —
    so finding times are directly comparable to profile time stamps. *)

type t

val default_slack : int
(** 64 bytes: how far outside a live object an access may land and still
    be classified as out-of-bounds against that object rather than as an
    unmapped access. *)

val create : ?slack:int -> unit -> t
(** @raise Invalid_argument on negative slack. *)

val batch : ?capacity:int -> t -> Ormp_trace.Batch.t
(** The batched fast path; accesses are checked straight out of the
    chunk arrays with a one-entry MRU object cache. *)

val sink : t -> Ormp_trace.Sink.t
(** Per-event adapter, for callers still on the legacy sink interface. *)

val event : t -> Ormp_trace.Event.t -> unit

val finish :
  ?leaks:bool ->
  ?site_name:(int -> string) ->
  ?is_static_site:(string -> bool) ->
  subject:string ->
  t ->
  Report.t
(** Resolve program-point labels via [site_name] (typically the run's
    instruction table) and build the severity-ranked report. With
    [~leaks:true], still-live non-static objects are reported as one
    note per allocation site with the site's leaked-object count;
    [is_static_site] (default: label starts with ["static:"], the
    engine's convention) exempts global variables. *)

val accesses : t -> int
(** Access probes observed. *)

val collected : t -> int
(** Accesses that resolved to a live object (the sanitizer clock). *)

val run :
  ?config:Ormp_vm.Config.t -> ?slack:int -> ?leaks:bool -> Ormp_vm.Program.t -> Report.t
(** Instrument one workload run with only the sanitizer attached and
    report. *)
