type severity = Error | Warning | Note

let severity_name = function Error -> "error" | Warning -> "warning" | Note -> "note"
let severity_rank = function Error -> 0 | Warning -> 1 | Note -> 2

type kind =
  | Use_after_free
  | Out_of_bounds
  | Double_free
  | Invalid_free
  | Unmapped_access
  | Leak
  | Overlapping_alloc

let kind_name = function
  | Use_after_free -> "use-after-free"
  | Out_of_bounds -> "out-of-bounds"
  | Double_free -> "double-free"
  | Invalid_free -> "invalid-free"
  | Unmapped_access -> "unmapped-access"
  | Leak -> "leak"
  | Overlapping_alloc -> "overlapping-alloc"

let severity_of_kind = function
  | Use_after_free | Out_of_bounds | Double_free | Invalid_free | Overlapping_alloc ->
    Error
  | Unmapped_access -> Warning
  | Leak -> Note

type object_info = {
  group : string;
  serial : int;
  base : int;
  size : int;
  alloc_site : string;
  alloc_time : int;
  free_site : string option;
  free_time : int option;
}

type t = {
  kind : kind;
  severity : severity;
  instr : string option;
  addr : int;
  offset : int option;
  obj : object_info option;
  first_time : int;
  count : int;
}

let make ?instr ?offset ?obj ~addr ~time kind =
  {
    kind;
    severity = severity_of_kind kind;
    instr;
    addr;
    offset;
    obj;
    first_time = time;
    count = 1;
  }

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = Int.compare a.first_time b.first_time in
    if c <> 0 then c else Stdlib.compare (a.kind, a.addr) (b.kind, b.addr)

let pp_obj fmt (o : object_info) =
  Format.fprintf fmt "object %s#%d [%#x, +%d) allocated @t%d" o.group o.serial o.base
    o.size o.alloc_time;
  match o.free_time with
  | None -> ()
  | Some ft ->
    Format.fprintf fmt ", freed @t%d%s" ft
      (match o.free_site with None -> "" | Some s -> Printf.sprintf " by %s" s)

let pp fmt t =
  Format.fprintf fmt "%s %s:" (String.uppercase_ascii (severity_name t.severity))
    (kind_name t.kind);
  (match t.instr with Some i -> Format.fprintf fmt " %s" i | None -> ());
  Format.fprintf fmt " addr %#x" t.addr;
  (match t.offset with Some o -> Format.fprintf fmt " (offset %+d)" o | None -> ());
  (match t.obj with Some o -> Format.fprintf fmt " in %a" pp_obj o | None -> ());
  Format.fprintf fmt " — first @t%d" t.first_time;
  if t.count > 1 then Format.fprintf fmt " ×%d" t.count

let to_sexp t =
  let module S = Ormp_util.Sexp in
  let obj_fields =
    match t.obj with
    | None -> []
    | Some o ->
      [
        S.field "object"
          ([
             S.field "group" [ S.atom o.group ];
             S.field "serial" [ S.int o.serial ];
             S.field "base" [ S.int o.base ];
             S.field "size" [ S.int o.size ];
             S.field "alloc-site" [ S.atom o.alloc_site ];
             S.field "alloc-time" [ S.int o.alloc_time ];
           ]
          @ (match o.free_site with
            | None -> []
            | Some s -> [ S.field "free-site" [ S.atom s ] ])
          @
          match o.free_time with
          | None -> []
          | Some ft -> [ S.field "free-time" [ S.int ft ] ]);
      ]
  in
  S.field "finding"
    ([
       S.field "kind" [ S.atom (kind_name t.kind) ];
       S.field "severity" [ S.atom (severity_name t.severity) ];
     ]
    @ (match t.instr with None -> [] | Some i -> [ S.field "instr" [ S.atom i ] ])
    @ [ S.field "addr" [ S.int t.addr ] ]
    @ (match t.offset with None -> [] | Some o -> [ S.field "offset" [ S.int o ] ])
    @ obj_fields
    @ [ S.field "first-time" [ S.int t.first_time ]; S.field "count" [ S.int t.count ] ])
