(** Profile invariant verifiers.

    Each profiler's output obeys structural invariants by construction;
    these checkers re-establish them from first principles, so a
    persisted profile (or a profiler bug) that silently violates one is
    caught instead of corrupting downstream analysis. Every verifier
    returns the first violation as a human-readable [Error]. *)

type rules = (int * [ `T of int | `N of int ] list) list
(** The serializable grammar view of {!Ormp_sequitur.Sequitur.rules}. *)

val grammar_rules :
  ?input_length:int -> ?max_duplicate_digrams:int -> rules -> (unit, string) result
(** Sequitur's two defining constraints plus structural sanity, checked
    on the rules view alone (so tests can hand-corrupt a grammar):
    digram uniqueness (overlapping occurrences inside a run of equal
    symbols are exempt, as in the classic algorithm), rule utility
    (every non-start rule referenced at least twice, bodies of length
    >= 2), no duplicate or dangling or cyclic rules, and — when
    [input_length] is given — expansion round-trip length.

    [max_duplicate_digrams] (default 0: strict) tolerates that many
    repeated digrams: our compressor validates digram-index hits lazily,
    so a stale entry can cost a missed match whose duplicate survives in
    the final grammar. *)

val grammar : Ormp_sequitur.Sequitur.t -> (unit, string) result
(** Internal invariants ({!Ormp_sequitur.Sequitur.check_invariants})
    plus {!grammar_rules} against the compressor's own input length,
    with a small size-proportional duplicate-digram tolerance for the
    lazy index (see {!grammar_rules}). *)

val lmad : ?dims:int -> Ormp_lmad.Lmad.t -> (unit, string) result
(** Well-formedness: every level's stride vector matches the start
    point's dimensionality ([dims], when given), every level iterates at
    least twice. *)

val compressor : Ormp_lmad.Compressor.t -> (unit, string) result
(** Budget respected, every LMAD well-formed at the stream
    dimensionality, captured/discarded accounting consistent, summary
    present iff points were discarded and its box ordered (min <= max)
    with non-negative granularity. *)

val leap_stream : Ormp_leap.Leap.stream -> (unit, string) result
(** Per-stream LEAP invariants: both compressors valid, point stream
    2-dimensional and offset stream 1-dimensional with equal totals, one
    time span per LMAD, spans internally ordered (t_first <= t_last) and
    non-overlapping across creation order, discard span present iff
    accesses were discarded. *)

val leap_profile : Ormp_leap.Leap.profile -> (unit, string) result
(** Every stream valid, stream totals sum to [collected], every keyed
    instruction classified as load or store. *)

val objects :
  ?groups:Ormp_core.Omc.group_info list ->
  Ormp_core.Omc.lifetime list ->
  (unit, string) result
(** OMC lifetime invariants: serials dense per group in allocation
    order, allocation times monotone, frees after allocations (and free
    sites only on freed objects), and no two simultaneously-live objects
    overlapping in address space (time-sweep re-insertion). With
    [groups], also group-id density and population accounting. *)

val omc : Ormp_core.Omc.t -> (unit, string) result
(** {!objects} over a live OMC's groups and lifetimes. *)

val whomp_profile : Ormp_whomp.Whomp.profile -> (unit, string) result
(** The four dimension grammars present in paper order, each passing
    {!grammar} with input length equal to [collected], and the
    lifetime/group tables passing {!objects}. *)
