(** One sanitizer finding — a memory-safety defect the checking layer
    detected in the probe stream, attributed object-relatively.

    Where a conventional sanitizer reports a raw address, ORMP-San reports
    the same coordinates the profilers use: (group label, object serial,
    offset), plus the allocation/free sites and times of the implicated
    object. This is the object-relative view of §2.3 turned from a
    profiling vocabulary into a diagnostic one. *)

type severity =
  | Error  (** definite memory-safety violation *)
  | Warning  (** suspicious but conceivably intentional (unprofiled memory) *)
  | Note  (** informational (e.g. never-freed objects) *)

val severity_name : severity -> string
val severity_rank : severity -> int
(** 0 = most severe; for sorting. *)

type kind =
  | Use_after_free  (** access inside a freed object's former range *)
  | Out_of_bounds  (** access just outside a live object (within slack) *)
  | Double_free  (** free of an already-freed object's base *)
  | Invalid_free  (** free of an address that is not a live object base *)
  | Unmapped_access  (** access to memory no object ever covered nearby *)
  | Leak  (** object still live at end of run (reported only on request) *)
  | Overlapping_alloc  (** allocation overlapping a live object: corrupt stream *)

val kind_name : kind -> string

val severity_of_kind : kind -> severity
(** [Error] for the definite violations, [Warning] for
    {!Unmapped_access}, [Note] for {!Leak}. *)

type object_info = {
  group : string;  (** group label (allocation-site name) *)
  serial : int;  (** object id within the group, dense from 0 *)
  base : int;
  size : int;
  alloc_site : string;
  alloc_time : int;
  free_site : string option;
  free_time : int option;
}

type t = {
  kind : kind;
  severity : severity;
  instr : string option;  (** faulting program point, when the event had one *)
  addr : int;  (** faulting raw address *)
  offset : int option;  (** object-relative offset, when an object is implicated *)
  obj : object_info option;
  first_time : int;  (** sanitizer clock at the first occurrence *)
  count : int;  (** occurrences folded into this finding *)
}

val make :
  ?instr:string ->
  ?offset:int ->
  ?obj:object_info ->
  addr:int ->
  time:int ->
  kind ->
  t
(** A fresh single-occurrence finding; severity is derived from the kind. *)

val compare : t -> t -> int
(** Severity-major order (errors first), then first occurrence time. *)

val pp : Format.formatter -> t -> unit
val to_sexp : t -> Ormp_util.Sexp.t
