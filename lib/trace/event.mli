(** Probe events.

    These are exactly what the paper's inserted probes deliver to the
    profiling machinery (§2.3): instruction probes report every executed
    load/store with its raw address; object probes report creations and
    destructions with address range, allocation site and optional type. *)

type t =
  | Access of { instr : int; addr : int; size : int; is_store : bool }
      (** one executed load or store *)
  | Alloc of { site : int; addr : int; size : int; type_name : string option }
      (** an object was created: heap allocation, pool creation, or a
          static object at program start *)
  | Free of { addr : int; site : int option }
      (** an object was destroyed; [site] is the static free-site program
          point when the destruction is probed at one (pool recycling has
          none) *)

val is_access : t -> bool

val pp : Format.formatter -> t -> unit
