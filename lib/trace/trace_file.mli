(** Raw probe-event traces on disk.

    Trace-based memory profilers (the paper's reference [5] lineage)
    separate trace collection from analysis: record the instrumented run
    once, replay it through any profiler later. The format is a plain text
    line per event:

    {v ormp-trace 1
A <instr> <addr> <size> <0|1>      an executed load (0) or store (1)
+ <site> <addr> <size> <type|->    object creation
- <addr>                           object destruction v}

    Reading streams line by line, so traces larger than memory replay
    fine. *)

val header : string
(** The first line of every trace file. *)

val event_line : Event.t -> string
(** The exact line (newline included) {!writer} emits for an event — the
    session journal CRCs these strings, so the two must never diverge. *)

val parse_line : string -> (Event.t, string) result
(** Decode one event line (header excluded). *)

val writer : out_channel -> Sink.t
(** A sink that appends every event to the channel (header written
    immediately). The caller owns the channel. *)

val save : string -> Event.t array -> unit
(** Write a recorded event array to a file. *)

val replay : ?on_truncated:(string -> unit) -> string -> Sink.t -> (int, string) result
(** Stream the events of a trace file into a sink; returns the event
    count, or a parse/IO error naming the offending line.

    A final record that both fails to parse and lacks its terminating
    newline is treated as a torn write from a crashed recorder: the
    events before it are delivered, [on_truncated] is told (default:
    warns on stderr), and the result is [Ok]. *)

val load : string -> (Event.t array, string) result
(** Materialize a whole trace (tests and small traces). *)
