(** The memory-model seam of the lock-free transport.

    {!Spsc} and {!Worker} are functorized over these two signatures so
    that the exact same ring/worker code runs in two worlds:

    - production, over {!Real} / {!Real_sched} — the stdlib [Atomic] and
      [Domain]/[Unix] primitives, with no extra allocation on the hot
      path (the indirection is a static functor application at module
      initialization);
    - under the model checker ([Ormp_modelcheck.Mc]), over a traced,
      schedule-controlled implementation in which every atomic operation
      is a scheduling point of a DPOR exploration.

    Keeping the signature minimal (exactly the operations the transport
    uses) is deliberate: every primitive listed here is an event the
    model checker must interleave, so anything not needed by the
    protocol stays out. *)

module type ATOMICS = sig
  type 'a t

  val make : ?name:string -> 'a -> 'a t
  (** [name] labels the location in model-checker traces; production
      ignores it. *)

  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val incr : int t -> unit
end

module type SCHED = sig
  module Atomic : ATOMICS

  type handle
  (** A spawned consumer thread: a [Domain.t] in production, a scheduler
      task id under the model checker. *)

  val spawn : (unit -> unit) -> handle

  val join : handle -> unit
  (** Blocks until the thread finishes. *)

  val cpu_relax : unit -> unit
  (** Spin-wait hint. The model checker treats this as "blocked until
      some other thread performs an atomic write" — the standard await
      transformation that keeps spin loops finite under exhaustive
      exploration without hiding any observable behavior (a re-read with
      no intervening write cannot change the spin condition). *)

  val sleep : float -> unit
  (** Backpressure sleep; same model-checker semantics as {!cpu_relax}. *)
end

(* lint:allow-file atomic — this module IS the production atomics implementation
   behind the functorized transport; everything else goes through it. *)

module Real : ATOMICS with type 'a t = 'a Atomic.t = struct
  type 'a t = 'a Atomic.t

  let make ?name:_ v = Atomic.make v
  let get = Atomic.get
  let set = Atomic.set
  let incr = Atomic.incr
end

module Real_sched : SCHED with module Atomic = Real and type handle = unit Domain.t =
struct
  module Atomic = Real

  type handle = unit Domain.t

  let spawn = Domain.spawn
  let join = Domain.join
  let cpu_relax = Domain.cpu_relax
  (* lint:allow blocking-io — real scheduler behind the seam; callers bound it *)
  let sleep = Unix.sleepf
end
