(** Batched probe delivery — the zero-allocation fast path.

    The per-event interface ({!Sink.t}) boxes one {!Event.Access} record
    per executed load/store, which makes GC churn the dominant constant
    factor of the whole profiling pipeline. A [Batch.t] instead accumulates
    accesses into a fixed-capacity struct-of-arrays buffer via the unboxed
    {!on_access} call and hands the buffer to its consumer in chunks.

    Event order is preserved exactly: non-access events (alloc/free) are
    rare, so they flush the pending accesses and are delivered individually
    through [on_event]. Consumers therefore observe the same sequence a
    per-event sink would, just sliced into chunks.

    {!of_sink} adapts any legacy per-event sink to the batched interface,
    so existing profilers keep working unchanged while batch-aware ones
    ({!Ormp_core.Cdc.batch} and the profilers built on it) skip event
    boxing entirely. *)

type chunk = {
  instr : int array;
  addr : int array;
  size : int array;
  store : int array;  (** 0 = load, 1 = store *)
  mutable len : int;  (** valid prefix length of the four arrays *)
}

val default_capacity : int

val is_store : chunk -> int -> bool

val iter :
  chunk -> (instr:int -> addr:int -> size:int -> is_store:bool -> unit) -> unit
(** Visit the valid prefix in arrival order. *)

type t

val create :
  ?capacity:int ->
  on_chunk:(chunk -> unit) ->
  on_event:(Event.t -> unit) ->
  unit ->
  t
(** [on_chunk] consumes the first [len] entries of the buffer (the arrays
    are reused across flushes — consumers must not retain them);
    [on_event] receives the non-access events, always after any pending
    accesses have been flushed. Capacity defaults to
    {!default_capacity}. @raise Invalid_argument on capacity <= 0. *)

val on_access : t -> instr:int -> addr:int -> size:int -> is_store:bool -> unit
(** The fast path: four int writes, no allocation; flushes when full. *)

val event : t -> Event.t -> unit
(** Feed an already-boxed event: accesses take the fast path, object
    events flush and forward. Useful for replaying recorded traces. *)

val flush : t -> unit
(** Deliver any buffered accesses now. Call once at end of run. *)

val fanout : ?capacity:int -> t list -> t
(** One batch feeding several: every access and event is replayed, in
    order, into each child batch, so one instrumented run can drive
    several batch-aware consumers (e.g. a profiler plus the sanitizer)
    without re-executing the workload. Children buffer independently and
    flush at their own chunk boundaries; {!flush} on the fanout cascades
    into every child, so the usual end-of-run flush still drains
    everything. @raise Invalid_argument on capacity <= 0. *)

val of_sink : ?capacity:int -> Sink.t -> t
(** Adapter: a batch whose consumer re-boxes each chunk entry into
    {!Event.Access} records for a legacy per-event sink. *)
