type t =
  | Access of { instr : int; addr : int; size : int; is_store : bool }
  | Alloc of { site : int; addr : int; size : int; type_name : string option }
  | Free of { addr : int; site : int option }

let is_access = function Access _ -> true | _ -> false

let pp fmt = function
  | Access { instr; addr; size; is_store } ->
    Format.fprintf fmt "%s i%d %#x+%d" (if is_store then "st" else "ld") instr addr size
  | Alloc { site; addr; size; type_name } ->
    Format.fprintf fmt "alloc s%d %#x+%d%s" site addr size
      (match type_name with None -> "" | Some t -> " :" ^ t)
  | Free { addr; site } ->
    Format.fprintf fmt "free%s %#x"
      (match site with None -> "" | Some s -> Printf.sprintf " s%d" s)
      addr
