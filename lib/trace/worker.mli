(** A dedicated consumer thread behind one {!Spsc} ring.

    One worker owns one stream (or a fixed set of streams multiplexed
    onto it): messages pushed from the producer are processed by [f] on
    the worker's thread, strictly in push order. The state [f] mutates
    belongs to the worker; the producer may touch it only between
    [drain] (or [stop]) and its next [push] — those operations establish
    the happens-before edges both ways.

    Backpressure is blocking and adaptive: [push] spins briefly, then
    sleeps with exponentially doubling microsleeps capped at 1 ms —
    essential on machines with fewer cores than domains, where pure
    spinning starves the consumer it is waiting on, and where a slow ramp
    to a useful sleep quantum burns a syscall per step.

    An exception escaping [f] marks the worker failed; the failure
    surfaces (with its original backtrace) from the producer's next
    [push], [drain] or [stop]. A failed worker keeps consuming and
    discarding so the producer can never deadlock against it.

    Like {!Spsc}, the module is a functor over the transport seam: the
    top-level module is [Make (Atomics_intf.Real_sched)] (real domains),
    and [Ormp_modelcheck] instantiates [Make] with a traced scheduler to
    verify the drain barrier, the shutdown protocol and failure
    containment over every interleaving at small configurations.

    Telemetry (when enabled), all per-ring under [ring.<name>.]:
    high-water depth gauge [depth], peak occupancy-fraction gauge
    [occupancy], stall counter [stalls] (pushes that had to wait), message
    counter [msgs], producer wait-spin counter [push_spins], consumer
    wait-spin counter [pop_spins], and microsleep counter [sleeps]
    (producer + consumer). *)

module type S = sig
  module Ring : Spsc.S

  type 'a t

  val spawn : ?capacity:int -> name:string -> f:('a -> unit) -> unit -> 'a t
  (** Spawn the consumer thread. [capacity] is the ring size in messages
      (default [Ring.default_capacity]); [name] labels telemetry. *)

  val push : 'a t -> 'a -> unit
  (** Producer only. Blocks while the ring is full. *)

  val drain : 'a t -> unit
  (** Producer only. Block until every pushed message has been fully
      processed. On return the worker is idle and its state is safe to
      read — and to replace, provided nothing is pushed concurrently. *)

  val stop : 'a t -> unit
  (** Signal shutdown and join the thread. Idempotent. Re-raises a worker
      failure after the join, so the thread is never leaked. *)

  val pending : 'a t -> int
  (** Messages pushed but not yet fully processed (racy, for telemetry). *)

  val occupancy : 'a t -> float
  (** Instantaneous ring occupancy in [0, 1] (racy, producer-side). The
      staging layers ([Par_scc], [Par_leap]) read this after each flush to
      adapt their chunk size: a ring that stays near full means the
      consumer is the bottleneck and larger chunks amortize per-message
      overhead; a near-empty ring means staging can shrink back toward the
      latency-friendly default. *)

  (** Model-checking seam: the shared transport state and an injection
      point for alternative consumer loops. This exists so the litmus
      suite can run a {e deliberately reverted} consumer (the pre-PR-5
      shutdown race) against the real push/stop machinery and watch the
      checker find the lost message; production code must use {!spawn}. *)
  module Private : sig
    type 'a shared

    val ring : 'a shared -> 'a Ring.t
    val stop_requested : 'a shared -> bool

    val handle : 'a shared -> ('a -> unit) -> 'a -> unit
    (** The failure-guarded message step: apply [f] (parking any exception
        for the producer), then advance the processed counter. *)

    val spawn_with :
      ?capacity:int ->
      name:string ->
      f:('a -> unit) ->
      consumer:('a shared -> ('a -> unit) -> unit) ->
      unit ->
      'a t
    (** Spawn a worker whose consumer loop is [consumer shared handle]
        instead of the production loop. No telemetry is recorded for the
        consumer's waits. *)
  end
end

module Make (Sc : Atomics_intf.SCHED) : S

include S
