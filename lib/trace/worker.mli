(** A dedicated consumer domain behind one {!Spsc} ring.

    One worker owns one stream (or a fixed set of streams multiplexed
    onto it): messages pushed from the producer domain are processed by
    [f] on the worker's domain, strictly in push order. The state [f]
    mutates belongs to the worker; the producer may touch it only between
    {!drain} (or {!stop}) and its next {!push} — those operations
    establish the happens-before edges both ways.

    Backpressure is blocking and adaptive: {!push} spins briefly, then
    sleeps with exponentially doubling microsleeps capped at 1 ms —
    essential on machines with fewer cores than domains, where pure
    spinning starves the consumer it is waiting on, and where a slow ramp
    to a useful sleep quantum burns a syscall per step.

    An exception escaping [f] marks the worker failed; the failure
    surfaces (with its original backtrace) from the producer's next
    {!push}, {!drain} or {!stop}. A failed worker keeps consuming and
    discarding so the producer can never deadlock against it.

    Telemetry (when enabled), all per-ring under [ring.<name>.]:
    high-water depth gauge [depth], peak occupancy-fraction gauge
    [occupancy], stall counter [stalls] (pushes that had to wait), message
    counter [msgs], producer wait-spin counter [push_spins], consumer
    wait-spin counter [pop_spins], and microsleep counter [sleeps]
    (producer + consumer). *)

type 'a t

val spawn : ?capacity:int -> name:string -> f:('a -> unit) -> unit -> 'a t
(** Spawn the consumer domain. [capacity] is the ring size in messages
    (default {!Spsc.default_capacity}); [name] labels telemetry. *)

val push : 'a t -> 'a -> unit
(** Producer only. Blocks while the ring is full. *)

val drain : 'a t -> unit
(** Producer only. Block until every pushed message has been fully
    processed. On return the worker is idle and its state is safe to
    read — and to replace, provided nothing is pushed concurrently. *)

val stop : 'a t -> unit
(** Drain, signal shutdown, and join the domain. Idempotent. Re-raises a
    worker failure after the join, so the domain is never leaked. *)

val pending : 'a t -> int
(** Messages pushed but not yet fully processed (racy, for telemetry). *)

val occupancy : 'a t -> float
(** Instantaneous ring occupancy in [0, 1] (racy, producer-side). The
    staging layers ([Par_scc], [Par_leap]) read this after each flush to
    adapt their chunk size: a ring that stays near full means the
    consumer is the bottleneck and larger chunks amortize per-message
    overhead; a near-empty ring means staging can shrink back toward the
    latency-friendly default. *)
