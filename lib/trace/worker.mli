(** A dedicated consumer domain behind one {!Spsc} ring.

    One worker owns one stream (or a fixed set of streams multiplexed
    onto it): messages pushed from the producer domain are processed by
    [f] on the worker's domain, strictly in push order. The state [f]
    mutates belongs to the worker; the producer may touch it only between
    {!drain} (or {!stop}) and its next {!push} — those operations
    establish the happens-before edges both ways.

    Backpressure is blocking: {!push} spins briefly, then sleeps with
    exponential backoff — essential on machines with fewer cores than
    domains, where pure spinning starves the consumer it is waiting on.

    An exception escaping [f] marks the worker failed; the failure
    surfaces (with its original backtrace) from the producer's next
    {!push}, {!drain} or {!stop}. A failed worker keeps consuming and
    discarding so the producer can never deadlock against it.

    Telemetry (when enabled): per-ring high-water depth gauge
    [ring.<name>.depth], stall counter [ring.<name>.stalls] (pushes that
    had to wait) and message counter [ring.<name>.msgs]. *)

type 'a t

val spawn : ?capacity:int -> name:string -> f:('a -> unit) -> unit -> 'a t
(** Spawn the consumer domain. [capacity] is the ring size in messages
    (default {!Spsc.default_capacity}); [name] labels telemetry. *)

val push : 'a t -> 'a -> unit
(** Producer only. Blocks while the ring is full. *)

val drain : 'a t -> unit
(** Producer only. Block until every pushed message has been fully
    processed. On return the worker is idle and its state is safe to
    read — and to replace, provided nothing is pushed concurrently. *)

val stop : 'a t -> unit
(** Drain, signal shutdown, and join the domain. Idempotent. Re-raises a
    worker failure after the join, so the domain is never leaked. *)

val pending : 'a t -> int
(** Messages pushed but not yet fully processed (racy, for telemetry). *)
