(** Bounded lock-free single-producer / single-consumer ring buffer.

    The transport under the pipeline-parallel SCC: the translating
    producer publishes batch-granularity messages to one dedicated
    compressor domain per decomposed stream. Exactly one domain may call
    {!try_push} and exactly one (other) domain may call {!try_pop}; under
    that discipline every operation is wait-free and the messages arrive
    in push order.

    Publication safety follows from the OCaml memory model: a slot is
    written before the tail {!Atomic} is advanced, and the consumer reads
    the tail before the slot, so the slot contents happen-before the pop
    (and symmetrically for slot reuse via the head). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Ring with room for [capacity] messages (default
    {!default_capacity}). Capacity 1 is legal — the ring degenerates to a
    rendezvous slot. Raises [Invalid_argument] on capacity < 1. *)

val default_capacity : int

val try_push : 'a t -> 'a -> bool
(** Producer only. [false] when the ring is full (backpressure: the
    caller decides how to wait). *)

val try_pop : 'a t -> 'a option
(** Consumer only. [None] when the ring is empty. The slot is cleared so
    the ring never pins a consumed message for the GC. *)

val length : 'a t -> int
(** Messages currently buffered. Racy by nature (either end may be
    mid-operation); exact when the ring is quiesced. For telemetry. *)

val capacity : 'a t -> int
