(** Bounded lock-free single-producer / single-consumer ring buffer.

    The transport under the pipeline-parallel SCC: the translating
    producer publishes batch-granularity messages to one dedicated
    compressor domain per decomposed stream. Exactly one domain may call
    [try_push] and exactly one (other) domain may call [try_pop]; under
    that discipline every operation is wait-free and the messages arrive
    in push order.

    Publication safety follows from the OCaml memory model: a slot is
    written before the tail atomic is advanced, and the consumer reads
    the tail before the slot, so the slot contents happen-before the pop
    (and symmetrically for slot reuse via the head).

    The implementation is a functor over {!Atomics_intf.ATOMICS}: the
    top-level module is [Make (Atomics_intf.Real)] (stdlib atomics), and
    the model checker ([Ormp_modelcheck]) instantiates [Make] with a
    traced implementation to verify these claims exhaustively at small
    capacities rather than by review. *)

module type S = sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  (** Ring with room for [capacity] messages (default
      {!default_capacity}). Capacity 1 is legal — the ring degenerates to
      a rendezvous slot. Raises [Invalid_argument] on capacity < 1. *)

  val default_capacity : int

  val try_push : 'a t -> 'a -> bool
  (** Producer only. [false] when the ring is full (backpressure: the
      caller decides how to wait). *)

  val try_pop : 'a t -> 'a option
  (** Consumer only. [None] when the ring is empty. The slot is cleared so
      the ring never pins a consumed message for the GC. *)

  val length : 'a t -> int
  (** Messages currently buffered, clamped to [[0, capacity]]. The two
      position reads are racy by nature (either end may be mid-operation),
      so the raw difference can transiently fall outside the ring's real
      bounds; the clamp guarantees telemetry gauges never record a
      negative or over-capacity depth. Exact when the ring is quiesced. *)

  val capacity : 'a t -> int
end

module Make (A : Atomics_intf.ATOMICS) : S

include S
