(* Classic SPSC ring over monotonic positions: [tail] counts pushes,
   [head] counts pops, slot = position mod capacity. Each side owns one
   atomic and keeps a cached copy of the other side's, refreshed only
   when the cached value says the ring looks full (producer) or empty
   (consumer) — the common case touches no shared line at all beyond its
   own atomic.

   The whole module is a functor over the transport's ATOMICS seam
   (Atomics_intf): production applies it to the stdlib Atomic, the model
   checker to a traced implementation whose every get/set is a
   scheduling point. *)

(* lint:hot-path *)

module type S = sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  val default_capacity : int
  val try_push : 'a t -> 'a -> bool
  val try_pop : 'a t -> 'a option
  val length : 'a t -> int
  val capacity : 'a t -> int
end

module Make (A : Atomics_intf.ATOMICS) = struct
  type 'a t = {
    slots : 'a option array;
    cap : int;
    head : int A.t;  (* consumer position; written by the consumer only *)
    _pad1 : int array;
        (* Best-effort cache-line spacing: the pad keeps the two atomics
           (allocated consecutively) from sharing a line, so producer and
           consumer don't false-share. The pads must be reachable from the
           record or the GC would slide the atomics back together. *)
    tail : int A.t;  (* producer position; written by the producer only *)
    _pad2 : int array;
    mutable cached_head : int;  (* producer's last view of [head] *)
    mutable cached_tail : int;  (* consumer's last view of [tail] *)
  }

  let default_capacity = 16

  let pad () = Array.make 15 0

  let create ?(capacity = default_capacity) () =
    if capacity < 1 then invalid_arg "Spsc.create: capacity must be at least 1";
    let head = A.make ~name:"head" 0 in
    let _pad1 = pad () in
    let tail = A.make ~name:"tail" 0 in
    let _pad2 = pad () in
    {
      slots = Array.make capacity None;
      cap = capacity;
      head;
      _pad1;
      tail;
      _pad2;
      cached_head = 0;
      cached_tail = 0;
    }

  let capacity t = t.cap

  (* The two reads are not a consistent snapshot: the other side may
     advance its position between them, so the raw difference can be
     transiently negative (stale tail, fresh head) or above capacity
     (fresh tail, stale head). Clamping keeps the documented [0, cap]
     contract for telemetry gauges; the exact value is only meaningful on
     a quiesced ring either way. *)
  let length t =
    let n = A.get t.tail - A.get t.head in
    if n < 0 then 0 else if n > t.cap then t.cap else n

  let try_push t v =
    let tail = A.get t.tail in
    let full = tail - t.cached_head >= t.cap in
    let full =
      if not full then false
      else begin
        t.cached_head <- A.get t.head;
        tail - t.cached_head >= t.cap
      end
    in
    if full then false
    else begin
      t.slots.(tail mod t.cap) <- Some v;
      (* Release: the slot write above becomes visible before the new tail. *)
      A.set t.tail (tail + 1);
      true
    end

  let try_pop t =
    let head = A.get t.head in
    let empty = t.cached_tail - head <= 0 in
    let empty =
      if not empty then false
      else begin
        t.cached_tail <- A.get t.tail;
        t.cached_tail - head <= 0
      end
    in
    if empty then None
    else begin
      let i = head mod t.cap in
      let v = t.slots.(i) in
      t.slots.(i) <- None;
      (* Release: the slot is cleared before the producer may reuse it. *)
      A.set t.head (head + 1);
      v
    end
end

include Make (Atomics_intf.Real)
