let header = "ormp-trace 1"

let event_line (ev : Event.t) =
  match ev with
  | Access { instr; addr; size; is_store } ->
    Printf.sprintf "A %d %d %d %d\n" instr addr size (if is_store then 1 else 0)
  | Alloc { site; addr; size; type_name } ->
    Printf.sprintf "+ %d %d %d %s\n" site addr size
      (match type_name with None -> "-" | Some t -> t)
  | Free { addr; site = None } -> Printf.sprintf "- %d\n" addr
  | Free { addr; site = Some site } -> Printf.sprintf "- %d %d\n" addr site

let write_event oc ev = output_string oc (event_line ev)

let writer oc =
  output_string oc header;
  output_char oc '\n';
  fun ev -> write_event oc ev

let save path events =
  let oc = open_out path in
  let sink = writer oc in
  Array.iter sink events;
  close_out oc

let parse_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "A"; instr; addr; size; st ] -> (
    match (int_of_string_opt instr, int_of_string_opt addr, int_of_string_opt size, st) with
    | Some instr, Some addr, Some size, ("0" | "1") ->
      Ok (Event.Access { instr; addr; size; is_store = st = "1" })
    | _ -> Error "malformed access")
  | "+" :: site :: addr :: size :: rest -> (
    let type_name =
      match rest with [] | [ "-" ] -> None | parts -> Some (String.concat " " parts)
    in
    match (int_of_string_opt site, int_of_string_opt addr, int_of_string_opt size) with
    | Some site, Some addr, Some size -> Ok (Event.Alloc { site; addr; size; type_name })
    | _ -> Error "malformed alloc")
  | [ "-"; addr ] -> (
    match int_of_string_opt addr with
    | Some addr -> Ok (Event.Free { addr; site = None })
    | None -> Error "malformed free")
  | [ "-"; addr; site ] -> (
    match (int_of_string_opt addr, int_of_string_opt site) with
    | Some addr, Some site -> Ok (Event.Free { addr; site = Some site })
    | _ -> Error "malformed free")
  | _ -> Error "unrecognized event"

let default_truncation_warning msg = Ormp_telemetry.Log.warnf ~src:"trace" "%s" msg

let replay ?(on_truncated = default_truncation_warning) path sink =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic -> (
    let finish r =
      close_in ic;
      r
    in
    (* lint:allow blocking-io — replay reads a recorded regular file *)
    match input_line ic with
    | exception End_of_file -> finish (Error "empty trace file")
    | first when String.trim first <> header ->
      finish (Error (Printf.sprintf "bad header %S" first))
    | _ ->
      let len = in_channel_length ic in
      (* A record that fails to parse, sits at the very end of the file, and
         lacks its terminating newline is the signature of a torn write (the
         process died mid-[write_event]). Every complete record before it is
         intact, so warn and deliver those rather than rejecting the trace. *)
      let torn_tail () = pos_in ic >= len && len > 0 && (seek_in ic (len - 1); input_char ic <> '\n') in
      let count = ref 0 in
      let lineno = ref 1 in
      let rec go () =
        (* lint:allow blocking-io — same regular trace file as above *)
        match input_line ic with
        | exception End_of_file -> Ok !count
        | line when String.trim line = "" -> go ()
        | line -> (
          incr lineno;
          match parse_line line with
          | Ok ev ->
            sink ev;
            incr count;
            go ()
          | Error msg ->
            if torn_tail () then begin
              on_truncated
                (Printf.sprintf "%s: truncated final record at line %d (%s); keeping %d events"
                   path !lineno msg !count);
              Ok !count
            end
            else Error (Printf.sprintf "line %d: %s" !lineno msg))
      in
      finish (go ()))

let load path =
  let buf = Ormp_util.Vec.create () in
  match replay path (Ormp_util.Vec.push buf) with
  | Ok _ -> Ok (Ormp_util.Vec.to_array buf)
  | Error _ as e -> e
