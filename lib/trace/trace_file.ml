let header = "ormp-trace 1"

let write_event oc (ev : Event.t) =
  match ev with
  | Access { instr; addr; size; is_store } ->
    Printf.fprintf oc "A %d %d %d %d\n" instr addr size (if is_store then 1 else 0)
  | Alloc { site; addr; size; type_name } ->
    Printf.fprintf oc "+ %d %d %d %s\n" site addr size
      (match type_name with None -> "-" | Some t -> t)
  | Free { addr; site = None } -> Printf.fprintf oc "- %d\n" addr
  | Free { addr; site = Some site } -> Printf.fprintf oc "- %d %d\n" addr site

let writer oc =
  output_string oc header;
  output_char oc '\n';
  fun ev -> write_event oc ev

let save path events =
  let oc = open_out path in
  let sink = writer oc in
  Array.iter sink events;
  close_out oc

let parse_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "A"; instr; addr; size; st ] -> (
    match (int_of_string_opt instr, int_of_string_opt addr, int_of_string_opt size, st) with
    | Some instr, Some addr, Some size, ("0" | "1") ->
      Ok (Event.Access { instr; addr; size; is_store = st = "1" })
    | _ -> Error "malformed access")
  | "+" :: site :: addr :: size :: rest -> (
    let type_name =
      match rest with [] | [ "-" ] -> None | parts -> Some (String.concat " " parts)
    in
    match (int_of_string_opt site, int_of_string_opt addr, int_of_string_opt size) with
    | Some site, Some addr, Some size -> Ok (Event.Alloc { site; addr; size; type_name })
    | _ -> Error "malformed alloc")
  | [ "-"; addr ] -> (
    match int_of_string_opt addr with
    | Some addr -> Ok (Event.Free { addr; site = None })
    | None -> Error "malformed free")
  | [ "-"; addr; site ] -> (
    match (int_of_string_opt addr, int_of_string_opt site) with
    | Some addr, Some site -> Ok (Event.Free { addr; site = Some site })
    | _ -> Error "malformed free")
  | _ -> Error "unrecognized event"

let replay path sink =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic -> (
    let finish r =
      close_in ic;
      r
    in
    match input_line ic with
    | exception End_of_file -> finish (Error "empty trace file")
    | first when String.trim first <> header ->
      finish (Error (Printf.sprintf "bad header %S" first))
    | _ ->
      let count = ref 0 in
      let lineno = ref 1 in
      let rec go () =
        match input_line ic with
        | exception End_of_file -> Ok !count
        | line when String.trim line = "" -> go ()
        | line -> (
          incr lineno;
          match parse_line line with
          | Ok ev ->
            sink ev;
            incr count;
            go ()
          | Error msg -> Error (Printf.sprintf "line %d: %s" !lineno msg))
      in
      finish (go ()))

let load path =
  let buf = Ormp_util.Vec.create () in
  match replay path (Ormp_util.Vec.push buf) with
  | Ok _ -> Ok (Ormp_util.Vec.to_array buf)
  | Error _ as e -> e
