module Tm = Ormp_telemetry.Telemetry

type 'a t = {
  ring : 'a Spsc.t;
  mutable pushed : int;  (* producer-local; only read cross-domain via [processed] *)
  processed : int Atomic.t;
      (* advanced by the consumer *after* [f] returns, so
         [processed = pushed] means fully processed, not merely popped *)
  stop_flag : bool Atomic.t;
  failure : (exn * Printexc.raw_backtrace) option Atomic.t;
  dom : unit Domain.t;
  mutable joined : bool;
  m_depth : Tm.Metrics.gauge;
  m_stalls : Tm.Metrics.counter;
  m_msgs : Tm.Metrics.counter;
}

(* Spin briefly (cheap when the other side is actively running on another
   core), then sleep with exponential backoff capped at 1ms. On a machine
   with fewer cores than domains the sleep is what lets the other side be
   scheduled at all. *)
let backoff n =
  incr n;
  if !n < 64 then Domain.cpu_relax ()
  else Unix.sleepf (Float.min 0.001 (1e-6 *. float_of_int (!n - 63)))

let run_consumer ring processed stop_flag failure f =
  let idle = ref 0 in
  let handle m =
    idle := 0;
    (match Atomic.get failure with
    | None -> (
      try f m
      with e -> Atomic.set failure (Some (e, Printexc.get_raw_backtrace ())))
    | Some _ -> () (* failed: keep draining so the producer never blocks *));
    Atomic.incr processed
  in
  let rec loop () =
    match Spsc.try_pop ring with
    | Some m -> handle m; loop ()
    | None -> if Atomic.get stop_flag then final_drain () else (backoff idle; loop ())
  and final_drain () =
    (* The producer sets [stop_flag] only after its last push, and both are
       seq_cst, so any pop performed *after* observing the flag sees every
       preceding push. An empty pop observed *before* the flag proves
       nothing (the final push may land in between), hence this re-poll:
       exit only when a post-flag pop returns [None]. *)
    match Spsc.try_pop ring with
    | Some m -> handle m; final_drain ()
    | None -> ()
  in
  loop ()

let spawn ?capacity ~name ~f () =
  let ring = Spsc.create ?capacity () in
  let processed = Atomic.make 0 in
  let stop_flag = Atomic.make false in
  let failure = Atomic.make None in
  {
    ring;
    pushed = 0;
    processed;
    stop_flag;
    failure;
    dom = Domain.spawn (fun () -> run_consumer ring processed stop_flag failure f);
    joined = false;
    m_depth = Tm.Metrics.gauge (Printf.sprintf "ring.%s.depth" name);
    m_stalls = Tm.Metrics.counter (Printf.sprintf "ring.%s.stalls" name);
    m_msgs = Tm.Metrics.counter (Printf.sprintf "ring.%s.msgs" name);
  }

let check t =
  match Atomic.get t.failure with
  | None -> ()
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt

let pending t = t.pushed - Atomic.get t.processed

let push t m =
  if not (Spsc.try_push t.ring m) then begin
    if Tm.on () then Tm.Metrics.incr t.m_stalls;
    let n = ref 0 in
    while not (Spsc.try_push t.ring m) do
      check t;
      backoff n
    done
  end;
  t.pushed <- t.pushed + 1;
  if Tm.on () then begin
    Tm.Metrics.incr t.m_msgs;
    Tm.Metrics.set_max t.m_depth (float_of_int (Spsc.length t.ring))
  end

let drain t =
  let n = ref 0 in
  while Atomic.get t.processed < t.pushed do
    backoff n
  done;
  check t

let stop t =
  if not t.joined then begin
    (* Draining first is not required for correctness (after observing the
       flag the consumer re-polls and exits only on an empty post-flag pop,
       so everything pushed before this point is processed) but bounds how
       long the join can take. *)
    Atomic.set t.stop_flag true;
    Domain.join t.dom;
    t.joined <- true
  end;
  check t
