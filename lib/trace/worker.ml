module Tm = Ormp_telemetry.Telemetry

(* Functorized over the SCHED seam (Atomics_intf): production runs over
   real domains and stdlib atomics; the model checker instantiates [Make]
   with a traced scheduler in which every atomic operation, spawn, join
   and backoff is an exhaustively explored scheduling point. *)

module type S = sig
  module Ring : Spsc.S

  type 'a t

  val spawn : ?capacity:int -> name:string -> f:('a -> unit) -> unit -> 'a t
  val push : 'a t -> 'a -> unit
  val drain : 'a t -> unit
  val stop : 'a t -> unit
  val pending : 'a t -> int
  val occupancy : 'a t -> float

  module Private : sig
    type 'a shared

    val ring : 'a shared -> 'a Ring.t
    val stop_requested : 'a shared -> bool
    val handle : 'a shared -> ('a -> unit) -> 'a -> unit

    val spawn_with :
      ?capacity:int ->
      name:string ->
      f:('a -> unit) ->
      consumer:('a shared -> ('a -> unit) -> unit) ->
      unit ->
      'a t
  end
end

module Make (Sc : Atomics_intf.SCHED) : S = struct
  module A = Sc.Atomic
  module Ring = Spsc.Make (A)

  (* The cross-domain state one worker shares with its producer. *)
  type 'a shared = {
    sh_ring : 'a Ring.t;
    sh_processed : int A.t;
        (* advanced by the consumer *after* [f] returns, so
           [processed = pushed] means fully processed, not merely popped *)
    sh_stop : bool A.t;
    sh_failure : (exn * Printexc.raw_backtrace) option A.t;
  }

  type 'a t = {
    sh : 'a shared;
    mutable pushed : int;  (* producer-local; only read cross-domain via [processed] *)
    dom : Sc.handle;
    mutable joined : bool;
    m_depth : Tm.Metrics.gauge;
    m_occupancy : Tm.Metrics.gauge;
    m_stalls : Tm.Metrics.counter;
    m_msgs : Tm.Metrics.counter;
    m_push_spins : Tm.Metrics.counter;
    m_sleeps : Tm.Metrics.counter;
  }

  (* Adaptive backpressure: spin briefly (cheap when the other side is
     actively running on another core), then sleep with exponentially
     doubling microsleeps capped at 1 ms. On a machine with fewer cores than
     domains the sleeps are what let the other side be scheduled at all, and
     the exponential ramp reaches the cap within ~10 syscalls — the previous
     linear ramp burned hundreds of short sleeps (syscall each) before
     yielding a useful quantum, which is where the jobs=2 < jobs=1 scaling
     inversion came from on small machines. Returns whether it slept, so
     callers can split spin/sleep telemetry without timing anything. *)
  let spin_limit = 32

  let backoff n =
    incr n;
    let k = !n - spin_limit in
    if k <= 0 then begin
      Sc.cpu_relax ();
      false
    end
    else begin
      Sc.sleep (Float.min 0.001 (1e-6 *. float_of_int (1 lsl Int.min 10 (k - 1))));
      true
    end

  (* Failure containment: an exception from [f] is parked in [sh_failure]
     (with its backtrace) and the worker keeps consuming and discarding,
     so the producer can never deadlock against a dead consumer; the
     failure surfaces from the producer's next push/drain/stop. *)
  let handle sh f m =
    (match A.get sh.sh_failure with
    | None -> (
      try f m
      with e -> A.set sh.sh_failure (Some (e, Printexc.get_raw_backtrace ())))
    | Some _ -> () (* failed: keep draining so the producer never blocks *));
    A.incr sh.sh_processed

  let run_consumer sh ~m_pop_spins ~m_sleeps f =
    let idle = ref 0 in
    (* Wait costs are accumulated locally and published when an idle episode
       ends — per-iteration counter increments would put telemetry writes on
       the spin path. *)
    let spins = ref 0 and sleeps = ref 0 in
    let flush_waits () =
      if !spins > 0 || !sleeps > 0 then begin
        if Tm.on () then begin
          Tm.Metrics.add m_pop_spins !spins;
          Tm.Metrics.add m_sleeps !sleeps
        end;
        spins := 0;
        sleeps := 0
      end
    in
    let handle m =
      idle := 0;
      flush_waits ();
      handle sh f m
    in
    let rec loop () =
      match Ring.try_pop sh.sh_ring with
      | Some m -> handle m; loop ()
      | None ->
        if A.get sh.sh_stop then final_drain ()
        else begin
          if backoff idle then incr sleeps else incr spins;
          loop ()
        end
    and final_drain () =
      (* The producer sets [sh_stop] only after its last push, and both are
         seq_cst, so any pop performed *after* observing the flag sees every
         preceding push. An empty pop observed *before* the flag proves
         nothing (the final push may land in between), hence this re-poll:
         exit only when a post-flag pop returns [None]. The model-check
         litmus [worker_stop_no_drain_racy] demonstrates what goes wrong
         without it: the pre-PR-5 loop that exits straight after observing
         the flag drops the trailing message in a 3-step interleaving. *)
      match Ring.try_pop sh.sh_ring with
      | Some m -> handle m; final_drain ()
      | None -> ()
    in
    loop ();
    flush_waits ()

  let make_t ?capacity ~name consumer =
    let sh =
      {
        sh_ring = Ring.create ?capacity ();
        sh_processed = A.make ~name:"processed" 0;
        sh_stop = A.make ~name:"stop_flag" false;
        sh_failure = A.make ~name:"failure" None;
      }
    in
    {
      sh;
      pushed = 0;
      dom = Sc.spawn (fun () -> consumer sh);
      joined = false;
      m_depth = Tm.Metrics.gauge (Printf.sprintf "ring.%s.depth" name);
      m_occupancy = Tm.Metrics.gauge (Printf.sprintf "ring.%s.occupancy" name);
      m_stalls = Tm.Metrics.counter (Printf.sprintf "ring.%s.stalls" name);
      m_msgs = Tm.Metrics.counter (Printf.sprintf "ring.%s.msgs" name);
      m_push_spins = Tm.Metrics.counter (Printf.sprintf "ring.%s.push_spins" name);
      m_sleeps = Tm.Metrics.counter (Printf.sprintf "ring.%s.sleeps" name);
    }

  let spawn ?capacity ~name ~f () =
    let m_pop_spins = Tm.Metrics.counter (Printf.sprintf "ring.%s.pop_spins" name) in
    let m_sleeps = Tm.Metrics.counter (Printf.sprintf "ring.%s.sleeps" name) in
    make_t ?capacity ~name (fun sh -> run_consumer sh ~m_pop_spins ~m_sleeps f)

  let check t =
    match A.get t.sh.sh_failure with
    | None -> ()
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt

  let pending t = t.pushed - A.get t.sh.sh_processed

  let occupancy t =
    float_of_int (Ring.length t.sh.sh_ring) /. float_of_int (Ring.capacity t.sh.sh_ring)

  (* Producer-side waiting (full-ring pushes and drains) shares one pair of
     wait counters; like the consumer, counts are accumulated locally and
     published once per episode. *)
  let wait_while t cond =
    if cond () then begin
      let n = ref 0 and spins = ref 0 and sleeps = ref 0 in
      while cond () do
        check t;
        if backoff n then incr sleeps else incr spins
      done;
      if Tm.on () then begin
        Tm.Metrics.add t.m_push_spins !spins;
        Tm.Metrics.add t.m_sleeps !sleeps
      end
    end

  let push t m =
    if not (Ring.try_push t.sh.sh_ring m) then begin
      if Tm.on () then Tm.Metrics.incr t.m_stalls;
      wait_while t (fun () -> not (Ring.try_push t.sh.sh_ring m))
    end;
    t.pushed <- t.pushed + 1;
    if Tm.on () then begin
      Tm.Metrics.incr t.m_msgs;
      let len = Ring.length t.sh.sh_ring in
      Tm.Metrics.set_max t.m_depth (float_of_int len);
      Tm.Metrics.set_max t.m_occupancy
        (float_of_int len /. float_of_int (Ring.capacity t.sh.sh_ring))
    end

  let drain t =
    wait_while t (fun () -> A.get t.sh.sh_processed < t.pushed);
    check t

  let stop t =
    if not t.joined then begin
      (* Draining first is not required for correctness (after observing the
         flag the consumer re-polls and exits only on an empty post-flag pop,
         so everything pushed before this point is processed) but bounds how
         long the join can take. *)
      A.set t.sh.sh_stop true;
      Sc.join t.dom;
      t.joined <- true
    end;
    check t

  module Private = struct
    type nonrec 'a shared = 'a shared

    let ring sh = sh.sh_ring
    let stop_requested sh = A.get sh.sh_stop
    let handle = handle

    let spawn_with ?capacity ~name ~f ~consumer () =
      make_t ?capacity ~name (fun sh -> consumer sh (handle sh f))
  end
end

include Make (Atomics_intf.Real_sched)
