module Tm = Ormp_telemetry.Telemetry

type 'a t = {
  ring : 'a Spsc.t;
  mutable pushed : int;  (* producer-local; only read cross-domain via [processed] *)
  processed : int Atomic.t;
      (* advanced by the consumer *after* [f] returns, so
         [processed = pushed] means fully processed, not merely popped *)
  stop_flag : bool Atomic.t;
  failure : (exn * Printexc.raw_backtrace) option Atomic.t;
  dom : unit Domain.t;
  mutable joined : bool;
  m_depth : Tm.Metrics.gauge;
  m_occupancy : Tm.Metrics.gauge;
  m_stalls : Tm.Metrics.counter;
  m_msgs : Tm.Metrics.counter;
  m_push_spins : Tm.Metrics.counter;
  m_sleeps : Tm.Metrics.counter;
}

(* Adaptive backpressure: spin briefly (cheap when the other side is
   actively running on another core), then sleep with exponentially
   doubling microsleeps capped at 1 ms. On a machine with fewer cores than
   domains the sleeps are what let the other side be scheduled at all, and
   the exponential ramp reaches the cap within ~10 syscalls — the previous
   linear ramp burned hundreds of short sleeps (syscall each) before
   yielding a useful quantum, which is where the jobs=2 < jobs=1 scaling
   inversion came from on small machines. Returns whether it slept, so
   callers can split spin/sleep telemetry without timing anything. *)
let spin_limit = 32

let backoff n =
  incr n;
  let k = !n - spin_limit in
  if k <= 0 then begin
    Domain.cpu_relax ();
    false
  end
  else begin
    Unix.sleepf (Float.min 0.001 (1e-6 *. float_of_int (1 lsl Int.min 10 (k - 1))));
    true
  end

let run_consumer ring processed stop_flag failure ~m_pop_spins ~m_sleeps f =
  let idle = ref 0 in
  (* Wait costs are accumulated locally and published when an idle episode
     ends — per-iteration counter increments would put telemetry writes on
     the spin path. *)
  let spins = ref 0 and sleeps = ref 0 in
  let flush_waits () =
    if !spins > 0 || !sleeps > 0 then begin
      if Tm.on () then begin
        Tm.Metrics.add m_pop_spins !spins;
        Tm.Metrics.add m_sleeps !sleeps
      end;
      spins := 0;
      sleeps := 0
    end
  in
  let handle m =
    idle := 0;
    flush_waits ();
    (match Atomic.get failure with
    | None -> (
      try f m
      with e -> Atomic.set failure (Some (e, Printexc.get_raw_backtrace ())))
    | Some _ -> () (* failed: keep draining so the producer never blocks *));
    Atomic.incr processed
  in
  let rec loop () =
    match Spsc.try_pop ring with
    | Some m -> handle m; loop ()
    | None ->
      if Atomic.get stop_flag then final_drain ()
      else begin
        if backoff idle then incr sleeps else incr spins;
        loop ()
      end
  and final_drain () =
    (* The producer sets [stop_flag] only after its last push, and both are
       seq_cst, so any pop performed *after* observing the flag sees every
       preceding push. An empty pop observed *before* the flag proves
       nothing (the final push may land in between), hence this re-poll:
       exit only when a post-flag pop returns [None]. *)
    match Spsc.try_pop ring with
    | Some m -> handle m; final_drain ()
    | None -> ()
  in
  loop ();
  flush_waits ()

let spawn ?capacity ~name ~f () =
  let ring = Spsc.create ?capacity () in
  let processed = Atomic.make 0 in
  let stop_flag = Atomic.make false in
  let failure = Atomic.make None in
  let m_pop_spins = Tm.Metrics.counter (Printf.sprintf "ring.%s.pop_spins" name) in
  let m_sleeps = Tm.Metrics.counter (Printf.sprintf "ring.%s.sleeps" name) in
  {
    ring;
    pushed = 0;
    processed;
    stop_flag;
    failure;
    dom =
      Domain.spawn (fun () ->
          run_consumer ring processed stop_flag failure ~m_pop_spins ~m_sleeps f);
    joined = false;
    m_depth = Tm.Metrics.gauge (Printf.sprintf "ring.%s.depth" name);
    m_occupancy = Tm.Metrics.gauge (Printf.sprintf "ring.%s.occupancy" name);
    m_stalls = Tm.Metrics.counter (Printf.sprintf "ring.%s.stalls" name);
    m_msgs = Tm.Metrics.counter (Printf.sprintf "ring.%s.msgs" name);
    m_push_spins = Tm.Metrics.counter (Printf.sprintf "ring.%s.push_spins" name);
    m_sleeps;
  }

let check t =
  match Atomic.get t.failure with
  | None -> ()
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt

let pending t = t.pushed - Atomic.get t.processed

let occupancy t = float_of_int (Spsc.length t.ring) /. float_of_int (Spsc.capacity t.ring)

(* Producer-side waiting (full-ring pushes and drains) shares one pair of
   wait counters; like the consumer, counts are accumulated locally and
   published once per episode. *)
let wait_while t cond =
  if cond () then begin
    let n = ref 0 and spins = ref 0 and sleeps = ref 0 in
    while cond () do
      check t;
      if backoff n then incr sleeps else incr spins
    done;
    if Tm.on () then begin
      Tm.Metrics.add t.m_push_spins !spins;
      Tm.Metrics.add t.m_sleeps !sleeps
    end
  end

let push t m =
  if not (Spsc.try_push t.ring m) then begin
    if Tm.on () then Tm.Metrics.incr t.m_stalls;
    wait_while t (fun () -> not (Spsc.try_push t.ring m))
  end;
  t.pushed <- t.pushed + 1;
  if Tm.on () then begin
    Tm.Metrics.incr t.m_msgs;
    let len = Spsc.length t.ring in
    Tm.Metrics.set_max t.m_depth (float_of_int len);
    Tm.Metrics.set_max t.m_occupancy
      (float_of_int len /. float_of_int (Spsc.capacity t.ring))
  end

let drain t =
  wait_while t (fun () -> Atomic.get t.processed < t.pushed);
  check t

let stop t =
  if not t.joined then begin
    (* Draining first is not required for correctness (after observing the
       flag the consumer re-polls and exits only on an empty post-flag pop,
       so everything pushed before this point is processed) but bounds how
       long the join can take. *)
    Atomic.set t.stop_flag true;
    Domain.join t.dom;
    t.joined <- true
  end;
  check t
