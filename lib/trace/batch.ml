type chunk = {
  instr : int array;
  addr : int array;
  size : int array;
  store : int array;
  mutable len : int;
}

(* Small enough that the four chunk arrays plus the consumer's scratch
   arrays stay resident in L1/L2 across the fill and drain passes; large
   enough that the per-chunk flush overhead is noise. *)
let default_capacity = 512

let is_store c i = c.store.(i) <> 0

let iter c f =
  for i = 0 to c.len - 1 do
    f ~instr:c.instr.(i) ~addr:c.addr.(i) ~size:c.size.(i) ~is_store:(c.store.(i) <> 0)
  done

type t = {
  chunk : chunk;
  capacity : int;
  on_chunk : chunk -> unit;
  on_event : Event.t -> unit;
  children : t list;
      (** downstream batches fed by [on_chunk]/[on_event] (fanout); they
          buffer independently, so {!flush} cascades into them *)
}

let create ?(capacity = default_capacity) ~on_chunk ~on_event () =
  if capacity <= 0 then invalid_arg "Batch.create: capacity must be positive";
  {
    chunk =
      {
        instr = Array.make capacity 0;
        addr = Array.make capacity 0;
        size = Array.make capacity 0;
        store = Array.make capacity 0;
        len = 0;
      };
    capacity;
    on_chunk;
    on_event;
    children = [];
  }

let rec flush t =
  if t.chunk.len > 0 then begin
    t.on_chunk t.chunk;
    t.chunk.len <- 0
  end;
  List.iter flush t.children

let[@inline] on_access t ~instr ~addr ~size ~is_store =
  let c = t.chunk in
  if c.len = t.capacity then begin
    t.on_chunk c;
    c.len <- 0
  end;
  (* [len < capacity = length of each array] holds here, so the writes
     need no bounds checks — this function runs once per executed
     load/store. *)
  let i = c.len in
  Array.unsafe_set c.instr i instr;
  Array.unsafe_set c.addr i addr;
  Array.unsafe_set c.size i size;
  Array.unsafe_set c.store i (Bool.to_int is_store);
  c.len <- i + 1

let event t (ev : Event.t) =
  match ev with
  | Access { instr; addr; size; is_store } -> on_access t ~instr ~addr ~size ~is_store
  | Alloc _ | Free _ ->
    flush t;
    t.on_event ev

let fanout ?(capacity = default_capacity) children =
  if capacity <= 0 then invalid_arg "Batch.fanout: capacity must be positive";
  let t =
    {
      chunk =
        {
          instr = Array.make capacity 0;
          addr = Array.make capacity 0;
          size = Array.make capacity 0;
          store = Array.make capacity 0;
          len = 0;
        };
      capacity;
      on_chunk =
        (fun c ->
          List.iter
            (fun child ->
              for i = 0 to c.len - 1 do
                on_access child ~instr:(Array.unsafe_get c.instr i)
                  ~addr:(Array.unsafe_get c.addr i)
                  ~size:(Array.unsafe_get c.size i)
                  ~is_store:(Array.unsafe_get c.store i <> 0)
              done)
            children);
      on_event = (fun ev -> List.iter (fun child -> event child ev) children);
      children;
    }
  in
  t

let of_sink ?capacity (sink : Sink.t) =
  create ?capacity
    ~on_chunk:(fun c ->
      for i = 0 to c.len - 1 do
        sink
          (Event.Access
             {
               instr = c.instr.(i);
               addr = c.addr.(i);
               size = c.size.(i);
               is_store = c.store.(i) <> 0;
             })
      done)
    ~on_event:sink ()
