(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (CGO 2004, §3.2 and §4.2), the design-choice ablations called
   out in DESIGN.md, and a set of Bechamel micro-benchmarks for the core
   data structures.

   Usage:
     main.exe                 -- everything, at paper ("training input") scale
     main.exe --fast          -- everything, at the small test scale
     main.exe fig5 table1 ... -- only the named sections
     main.exe --baseline BENCH_ormp.json ...
                              -- after the run, compare the hotpath and
                                 sequitur micro rows against the named
                                 baseline log and exit 1 if any ns figure
                                 regressed more than 1.5x (the @perf-guard
                                 alias runs this against the committed
                                 baseline)
   Section names: fig5 fig6 fig7 fig8 fig9 table1 ablations extensions
   hotpath micro scaling recovery telemetry modelcheck serve observe
   verify

   The verify section (debug-mode checking pass: sanitize every workload,
   verify every profile's structural invariants) runs in --fast mode and
   when named explicitly, but not in default timing runs — it would
   pollute the dilation measurements with redundant instrumented runs.

   Besides the human-readable report on stdout, every run writes
   BENCH_ormp.json (schema documented in README.md) with the section wall
   times and the headline machine-readable metrics. *)

open Ormp_report

let section_names =
  [
    "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "table1"; "ablations"; "extensions"; "hotpath";
    "micro"; "scaling"; "recovery"; "telemetry"; "modelcheck"; "serve"; "observe"; "verify";
  ]

let parse_args () =
  let args = List.tl (Array.to_list Sys.argv) in
  let fast = List.mem "--fast" args in
  let rec split baseline acc = function
    | [] -> (baseline, List.rev acc)
    | "--baseline" :: path :: rest -> split (Some path) acc rest
    | [ "--baseline" ] ->
      prerr_endline "--baseline requires a path";
      exit 2
    | "--fast" :: rest -> split baseline acc rest
    | a :: rest -> split baseline (a :: acc) rest
  in
  let baseline, wanted = split None [] args in
  List.iter
    (fun w ->
      if not (List.mem w section_names) then begin
        Printf.eprintf "unknown section %S (known: %s)\n" w (String.concat " " section_names);
        exit 2
      end)
    wanted;
  let enabled name = wanted = [] || List.mem name wanted in
  (fast, baseline, wanted, enabled)

let timed log name f =
  let t0 = Ormp_util.Clock.now_s () in
  let r = f () in
  let dt = Ormp_util.Clock.now_s () -. t0 in
  Printf.printf "[%s took %.1fs]\n\n%!" name dt;
  Bench_log.add_section log name dt;
  r

(* ------------------------------------------------------------------ *)
(* Paper sections                                                      *)
(* ------------------------------------------------------------------ *)

let run_fig5 log ~bench () =
  timed log "fig5" (fun () ->
      print_string (Experiments.render_fig5 (Experiments.fig5 ~bench ())))

let run_dependence_figs log ~bench ~enabled () =
  let needs = List.exists enabled [ "fig6"; "fig7"; "fig8"; "fig9"; "table1" ] in
  if needs then begin
    let suites =
      timed log "instrumented runs (shared, one domain per workload)" (fun () ->
          let t0 = Ormp_util.Clock.now_s () in
          let suites = Experiments.run_suites ~bench ~parallel:true () in
          let wall = Ormp_util.Clock.now_s () -. t0 in
          Bench_log.set_suites log ~parallel:true ~wall_s:wall
            (List.map
               (fun s ->
                 let leap = s.Experiments.leap in
                 {
                   Bench_log.suite_name = s.Experiments.entry.Ormp_workloads.Registry.name;
                   suite_events =
                     leap.Ormp_leap.Leap.collected + leap.Ormp_leap.Leap.wild;
                   suite_elapsed_s = leap.Ormp_leap.Leap.elapsed;
                 })
               suites);
          suites)
    in
    if enabled "fig6" then
      print_string
        (Experiments.render_dist
           ~title:"Figure 6: error distribution of the LEAP memory-dependence results"
           (Experiments.fig6 suites));
    if enabled "fig7" then
      print_string
        (Experiments.render_dist
           ~title:"Figure 7: error distribution of the Connors memory-dependence results"
           (Experiments.fig7 suites));
    if enabled "fig8" then print_string (Experiments.render_fig8 (Experiments.fig8 suites));
    if enabled "fig9" then print_string (Experiments.render_fig9 (Experiments.fig9 suites));
    if enabled "table1" then
      timed log "table1 (dilation reruns)" (fun () ->
          let rows = Experiments.table1 ~bench suites in
          List.iter
            (fun r ->
              Bench_log.add_dilation log ~workload:r.Experiments.workload
                ~dilation:r.Experiments.dilation)
            rows;
          print_string (Experiments.render_table1 rows))
  end

let run_ablations log ~bench () =
  timed log "ablations" (fun () ->
      let mcf = Ormp_workloads.Registry.find "181.mcf-like" in
      let gzip = Ormp_workloads.Registry.find "164.gzip-like" in
      print_string
        (Experiments.render_budget ~workload:mcf.Ormp_workloads.Registry.name
           (Experiments.ablation_lmad_budget ~bench mcf));
      print_string
        (Experiments.render_budget ~workload:gzip.Ormp_workloads.Registry.name
           (Experiments.ablation_lmad_budget ~bench gzip));
      print_string
        (Experiments.render_window ~workload:gzip.Ormp_workloads.Registry.name
           (Experiments.ablation_connors_window ~bench gzip));
      print_string (Experiments.render_fused (Experiments.ablation_no_decomposition ~bench ()));
      print_string (Experiments.render_grouping (Experiments.ablation_grouping ~bench ()));
      print_string (Experiments.render_pool (Experiments.ablation_pool_handling ~bench ())))

let run_extensions log ~bench () =
  timed log "extensions" (fun () ->
      print_string (Experiments.render_phases (Experiments.extension_phases ~bench ())))

(* ------------------------------------------------------------------ *)
(* Hot path: per-event sink vs batched translation                     *)
(* ------------------------------------------------------------------ *)

(* Measures the access -> translate path in isolation, on a recorded
   trace: the legacy path boxes one Event.Access per access, pattern-matches
   it in a sink, and walks the AVL range index for every address; the
   batched path writes four ints into the chunk buffer and translates each
   chunk through the OMC's per-instruction MRU cache with
   [Omc.translate_batch]. Everything downstream of translation (tuple
   construction, the SCC compressors) is identical for both paths and is
   excluded here; the micro section benches the full profiler pipelines
   both ways. *)
let run_hotpath log ~bench () =
  timed log "hotpath" (fun () ->
      let open Bechamel in
      print_endline
        (Ormp_util.Ascii.section "Hot path: per-event sink vs batched translation");
      (* 164.gzip-like supplies the access stream: like most of the suite
         (mcf, crafty, bzip2 too) its instructions keep touching the same
         buffer they touched last, which is exactly the locality the MRU
         translation cache exploits. The OMC is additionally pre-populated
         with a few thousand long-lived decoy objects (the same trick
         Micro.linked_list plays): the test-scale stand-ins keep only a
         handful of objects live, while a real heap holds thousands, so
         without the decoys the legacy AVL descent would be measured at
         toy depth. Cache-hostile access shapes (linked-list node walks,
         vpr/twolf-style wandering) are covered by the micro section and
         the table1 dilation column rather than here. *)
      let decoys = if bench then 4096 else 2048 in
      let entry = Ormp_workloads.Registry.find "164.gzip-like" in
      let rc = Ormp_trace.Sink.recorder () in
      ignore
        (Ormp_vm.Runner.run
           (Ormp_workloads.Registry.program entry)
           (Ormp_trace.Sink.recorder_sink rc));
      let events = Ormp_trace.Sink.events rc in
      (* Split the trace: object events populate an OMC once, the access
         stream is what the measured loops replay (gzip-like never frees,
         so every object stays live across iterations). *)
      let accesses =
        Array.of_list
          (List.filter_map
             (function
               | Ormp_trace.Event.Access { instr; addr; size; is_store } ->
                 Some (instr, addr, size, is_store)
               | _ -> None)
             (Array.to_list events))
      in
      let n = Array.length accesses in
      let instr = Array.map (fun (i, _, _, _) -> i) accesses in
      let addr = Array.map (fun (_, a, _, _) -> a) accesses in
      let size = Array.map (fun (_, _, s, _) -> s) accesses in
      let store = Array.map (fun (_, _, _, st) -> Bool.to_int st) accesses in
      let fresh_omc () =
        let omc = Ormp_core.Omc.create ~site_name:(Printf.sprintf "s%d") () in
        (* Long-lived decoy heap population, allocated above the workload
           allocator's 512 MiB ceiling so the two ranges never overlap. *)
        for i = 0 to decoys - 1 do
          Ormp_core.Omc.on_alloc omc ~time:0 ~site:9999
            ~addr:(0x4000_0000 + (i * 256))
            ~size:128 ~type_name:None
        done;
        Array.iteri
          (fun i ev ->
            match ev with
            | Ormp_trace.Event.Alloc { site; addr; size; type_name } ->
              Ormp_core.Omc.on_alloc omc ~time:i ~site ~addr ~size ~type_name
            | Ormp_trace.Event.Free { addr; _ } -> Ormp_core.Omc.on_free omc ~time:i ~addr
            | Ormp_trace.Event.Access _ -> ())
          events;
        omc
      in
      let omc_legacy = fresh_omc () in
      let legacy_sink : Ormp_trace.Sink.t = function
        | Ormp_trace.Event.Access { addr; _ } -> ignore (Ormp_core.Omc.translate omc_legacy addr)
        | _ -> ()
      in
      let t_legacy =
        Test.make ~name:"legacy"
          (Staged.stage (fun () ->
               for i = 0 to n - 1 do
                 legacy_sink
                   (Ormp_trace.Event.Access
                      {
                        instr = instr.(i);
                        addr = addr.(i);
                        size = size.(i);
                        is_store = store.(i) <> 0;
                      })
               done))
      in
      let omc_batched = fresh_omc () in
      let capacity = Ormp_trace.Batch.default_capacity in
      let groups = Array.make capacity 0 in
      let serials = Array.make capacity 0 in
      let offsets = Array.make capacity 0 in
      let batch =
        Ormp_trace.Batch.create ~capacity
          ~on_chunk:(fun c ->
            Ormp_core.Omc.translate_batch omc_batched ~instrs:c.Ormp_trace.Batch.instr
              ~addrs:c.Ormp_trace.Batch.addr ~len:c.Ormp_trace.Batch.len ~groups ~serials
              ~offsets)
          ~on_event:(fun _ -> ())
          ()
      in
      let t_batched =
        Test.make ~name:"batched"
          (Staged.stage (fun () ->
               for i = 0 to n - 1 do
                 Ormp_trace.Batch.on_access batch ~instr:instr.(i) ~addr:addr.(i)
                   ~size:size.(i)
                   ~is_store:(store.(i) <> 0)
               done;
               Ormp_trace.Batch.flush batch))
      in
      let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
      let instances = Toolkit.Instance.[ monotonic_clock ] in
      (* stabilize:false — per-sample GC stabilization would hide the
         sustained allocation cost that is precisely what the legacy
         boxed-event path pays; a profiler observes billions of events, so
         steady-state throughput with GC included is the honest figure. *)
      let cfg =
        Benchmark.cfg ~limit:2000 ~quota:(Time.second 2.0) ~stabilize:false ()
      in
      let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"hotpath" [ t_legacy; t_batched ]) in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      let estimate suffix =
        Hashtbl.fold
          (fun name ols_result acc ->
            if String.length name >= String.length suffix
               && String.sub name (String.length name - String.length suffix)
                    (String.length suffix)
                  = suffix
            then
              match Analyze.OLS.estimates ols_result with Some [ ns ] -> Some ns | _ -> acc
            else acc)
          results None
      in
      match (estimate "legacy", estimate "batched") with
      | Some legacy_ns, Some batched_ns ->
        let legacy_pe = legacy_ns /. float_of_int n in
        let batched_pe = batched_ns /. float_of_int n in
        let speedup = legacy_pe /. batched_pe in
        let eps = 1e9 /. batched_pe in
        let hit_rate = Ormp_core.Omc.cache_hit_rate omc_batched in
        Printf.printf
          "%d accesses per iteration\n\
           legacy  (boxed event + AVL lookup): %7.2f ns/event\n\
           batched (SoA chunk + MRU cache)   : %7.2f ns/event\n\
           speedup: %.2fx   throughput: %.1f M events/s   MRU hit rate: %.1f%%\n\n"
          n legacy_pe batched_pe speedup (eps /. 1e6) (100.0 *. hit_rate);
        Bench_log.set_hotpath log
          {
            Bench_log.events = n;
            legacy_ns_per_event = legacy_pe;
            batched_ns_per_event = batched_pe;
            speedup;
            events_per_sec = eps;
            cache_hit_rate = hit_rate;
          }
      | _ -> print_endline "hotpath: estimation failed (no OLS estimates)")

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let rng = Ormp_util.Prng.create ~seed:42 in
  (* Pre-built inputs so the benchmarks measure steady-state operations. *)
  let repetitive = Array.init 4096 (fun i -> i mod 7) in
  let scattered = Array.init 4096 (fun _ -> Ormp_util.Prng.int rng 100000) in
  let scattered_big = Array.init 32768 (fun _ -> Ormp_util.Prng.int rng 1000000) in
  let seq_push ?size_hint name input =
    Test.make ~name
      (Staged.stage (fun () ->
           let s = Ormp_sequitur.Sequitur.create ?size_hint () in
           Array.iter (Ormp_sequitur.Sequitur.push s) input))
  in
  let seq_push_batch ?size_hint name input =
    Test.make ~name
      (Staged.stage (fun () ->
           let s = Ormp_sequitur.Sequitur.create ?size_hint () in
           Ormp_sequitur.Sequitur.push_batch s input ~off:0 ~len:(Array.length input)))
  in
  let range_index =
    Test.make ~name:"range_index: 1k insert+find"
      (Staged.stage (fun () ->
           let t = Ormp_interval.Range_index.create () in
           for i = 0 to 999 do
             Ormp_interval.Range_index.insert t ~base:(i * 64) ~size:64 i
           done;
           for i = 0 to 999 do
             ignore (Ormp_interval.Range_index.find t ((i * 64) + 17))
           done))
  in
  (* One address pattern shared by the three OMC rows so cached vs
     uncached is a like-for-like comparison: 1000 live objects, 8 hot
     instructions, each instruction ping-ponging between two objects —
     the per-instruction locality real probe streams exhibit, and exactly
     what the two-way MRU is built to absorb. *)
  let omc_make () =
    let omc = Ormp_core.Omc.create ~site_name:(Printf.sprintf "s%d") () in
    for i = 0 to 999 do
      Ormp_core.Omc.on_alloc omc ~time:i ~site:1 ~addr:(i * 128) ~size:64 ~type_name:None
    done;
    omc
  in
  let omc_instrs = Array.init 1000 (fun i -> i land 7) in
  let omc_addrs =
    Array.init 1000 (fun i -> (((i land 7) * 2) + ((i lsr 3) land 1)) * 128 + 8)
  in
  let omc_translate =
    let omc = omc_make () in
    Test.make ~name:"omc: 1k translations"
      (Staged.stage (fun () ->
           for i = 0 to 999 do
             ignore (Ormp_core.Omc.translate omc (Array.unsafe_get omc_addrs i))
           done))
  in
  let omc_translate_fast =
    let omc = omc_make () in
    Test.make ~name:"omc: 1k translations (MRU cache)"
      (Staged.stage (fun () ->
           for i = 0 to 999 do
             ignore
               (Ormp_core.Omc.translate_fast omc
                  ~instr:(Array.unsafe_get omc_instrs i)
                  (Array.unsafe_get omc_addrs i))
           done))
  in
  let omc_translate_batch =
    let omc = omc_make () in
    let groups = Array.make 1000 0 in
    let serials = Array.make 1000 0 in
    let offsets = Array.make 1000 0 in
    Test.make ~name:"omc: 1k batched translations"
      (Staged.stage (fun () ->
           Ormp_core.Omc.translate_batch omc ~instrs:omc_instrs ~addrs:omc_addrs ~len:1000
             ~groups ~serials ~offsets))
  in
  let lmad_add name pts =
    Test.make ~name
      (Staged.stage (fun () ->
           let c = Ormp_lmad.Compressor.create ~dims:1 () in
           Array.iter (fun p -> ignore (Ormp_lmad.Compressor.add c [| p |])) pts))
  in
  let solver =
    let mk start stride count =
      Ormp_lmad.Lmad.of_levels ~start ~levels:[ { Ormp_lmad.Lmad.stride; count } ]
    in
    let store = mk [| 0; 0; 0 |] [| 1; 8; 1 |] 100000 in
    let load = mk [| 0; 4; 50 |] [| 1; 12; 1 |] 100000 in
    Test.make ~name:"solver: closed-form conflict count (100k x 100k)"
      (Staged.stage (fun () -> ignore (Ormp_lmad.Solver.count_conflicts ~store ~load)))
  in
  (* One shared recorded trace for every profiler-probe row, so their
     per-event figures divide by the same denominator (returned to the
     caller for the bench table and the guard). *)
  let trace_events =
    let r = Ormp_trace.Sink.recorder () in
    ignore
      (Ormp_vm.Runner.run
         (Ormp_workloads.Micro.linked_list ~nodes:64 ~sweeps:8 ())
         (Ormp_trace.Sink.recorder_sink r));
    Ormp_trace.Sink.events r
  in
  let trace_count = ref [] in
  let profiler_event name mk_sink =
    trace_count := (name, Array.length trace_events) :: !trace_count;
    Test.make ~name
      (Staged.stage (fun () ->
           let sink = mk_sink () in
           Array.iter sink trace_events))
  in
  let profiler_batch name mk_batch =
    trace_count := (name, Array.length trace_events) :: !trace_count;
    Test.make ~name
      (Staged.stage (fun () ->
           let b = mk_batch () in
           Array.iter (Ormp_trace.Batch.event b) trace_events;
           Ormp_trace.Batch.flush b))
  in
  let tests =
    Test.make_grouped ~name:"ormp"
      [
      seq_push "sequitur: 4k repetitive symbols" repetitive;
      seq_push "sequitur: 4k scattered symbols" scattered;
      (* The digram table pre-sized from the stream-length hint: a
         scattered stream interns ~one digram per symbol, so past the
         4096-bucket default floor the unhinted run pays repeated
         rehash-and-copy churn. The delta between these two rows is the
         measured saving. *)
      seq_push "sequitur: 32k scattered symbols" scattered_big;
      seq_push ~size_hint:(Array.length scattered_big)
        "sequitur: 32k scattered symbols (size hint)" scattered_big;
      seq_push_batch "sequitur: 4k repetitive symbols (push_batch)" repetitive;
      seq_push_batch ~size_hint:(Array.length scattered_big)
        "sequitur: 32k scattered symbols (push_batch, size hint)" scattered_big;
        range_index;
        omc_translate;
        omc_translate_fast;
        omc_translate_batch;
        lmad_add "lmad: 4k-point regular stream" (Array.init 4096 (fun i -> i * 8));
        lmad_add "lmad: 4k-point scattered stream" scattered;
        solver;
        profiler_event "whomp: probe event cost (3k-event trace)" (fun () ->
            fst (Ormp_whomp.Whomp.sink ~site_name:(Printf.sprintf "s%d") ()));
        profiler_batch "whomp: batched probe cost (3k-event trace)" (fun () ->
            fst (Ormp_whomp.Whomp.sink_batched ~site_name:(Printf.sprintf "s%d") ()));
        profiler_event "leap: probe event cost (3k-event trace)" (fun () ->
            fst (Ormp_leap.Leap.sink ~site_name:(Printf.sprintf "s%d") ()));
        profiler_batch "leap: batched probe cost (3k-event trace)" (fun () ->
            fst (Ormp_leap.Leap.sink_batched ~site_name:(Printf.sprintf "s%d") ()));
        profiler_event "connors: probe event cost (3k-event trace)" (fun () ->
            Ormp_baselines.Connors.sink (Ormp_baselines.Connors.create ()));
        profiler_event "lossless-dep: probe event cost (3k-event trace)" (fun () ->
            Ormp_baselines.Lossless_dep.sink (Ormp_baselines.Lossless_dep.create ()));
      ]
  in
  (tests, !trace_count)

(* ------------------------------------------------------------------ *)
(* Scaling: pipeline-parallel SCC jobs sweep                           *)
(* ------------------------------------------------------------------ *)

(* One combined WHOMP+LEAP instrumented run per jobs value, sweeping
   1 -> max(4, recommended_domain_count): jobs=1 is the serial pipeline,
   jobs>1 fans the compressor work out to dedicated domains behind the
   SPSC rings. The log records the machine's core count next to the
   curve, because the curve only means what the hardware lets it mean —
   on a single-core box every row degenerates to serial-plus-ring-
   overhead, and that flat line is the honest result, not a failure.
   Each row also lands in the dilation block (instrumented wall over
   native wall) so the jobs sweep is comparable with Table 1. *)
let run_scaling log ~bench () =
  timed log "scaling" (fun () ->
      print_endline
        (Ormp_util.Ascii.section "Scaling: pipeline-parallel SCC (--jobs sweep)");
      let entry = Ormp_workloads.Registry.find "164.gzip-like" in
      let program = Ormp_workloads.Registry.program ~bench entry in
      let cores = Domain.recommended_domain_count () in
      let sweep =
        List.sort_uniq compare (1 :: 2 :: 4 :: (if cores > 4 then [ cores ] else []))
      in
      let site_name = Printf.sprintf "s%d" in
      let native_s =
        let t0 = Ormp_util.Clock.now_s () in
        ignore (Ormp_vm.Runner.run_bare program);
        Ormp_util.Clock.now_s () -. t0
      in
      let events = ref 0 in
      let measure jobs =
        let t0 = Ormp_util.Clock.now_s () in
        let wp =
          if jobs <= 1 then begin
            (* The serial pipeline as the server/session layer wires it
               since the lane refactor: one CDC translating once, SoA
               chunk lanes fanned to both collectors — not two
               independent sinks each dragging their own CDC. *)
            let wc = Ormp_whomp.Whomp.collector () in
            let lc = Ormp_leap.Leap.collector () in
            let on_tuples (tp : Ormp_core.Cdc.tuples) =
              Ormp_whomp.Whomp.collect_tuples wc tp;
              Ormp_leap.Leap.collect_tuples lc tp
            in
            let cdc = Ormp_core.Cdc.create ~site_name ~on_tuple:(fun _ -> assert false) () in
            let b = Ormp_core.Cdc.batch_tuples cdc ~on_tuples () in
            let r = Ormp_vm.Runner.run_batched program b in
            let collected = Ormp_core.Cdc.collected cdc
            and wild = Ormp_core.Cdc.wild cdc in
            ignore
              (Ormp_leap.Leap.finish lc ~collected ~wild ~elapsed:r.Ormp_vm.Runner.elapsed);
            {
              Ormp_whomp.Whomp.dims = Ormp_whomp.Whomp.collector_dims wc;
              collected;
              wild;
              groups = Ormp_core.Omc.groups (Ormp_core.Cdc.omc cdc);
              lifetimes = Ormp_core.Omc.lifetimes (Ormp_core.Cdc.omc cdc);
              elapsed = r.Ormp_vm.Runner.elapsed;
            }
          end
          else begin
            let wt = Ormp_whomp.Par_scc.create ~jobs ~site_name () in
            let lt = Ormp_leap.Par_leap.create ~jobs ~site_name () in
            Fun.protect
              ~finally:(fun () ->
                (try Ormp_whomp.Par_scc.shutdown wt with _ -> ());
                try Ormp_leap.Par_leap.shutdown lt with _ -> ())
              (fun () ->
                let fan =
                  Ormp_trace.Batch.fanout
                    [ Ormp_whomp.Par_scc.batch wt; Ormp_leap.Par_leap.batch lt ]
                in
                let r = Ormp_vm.Runner.run_batched program fan in
                ignore (Ormp_leap.Par_leap.finalize lt ~elapsed:r.Ormp_vm.Runner.elapsed);
                Ormp_whomp.Par_scc.finalize wt ~elapsed:r.Ormp_vm.Runner.elapsed)
          end
        in
        events := wp.Ormp_whomp.Whomp.collected + wp.Ormp_whomp.Whomp.wild;
        Ormp_util.Clock.now_s () -. t0
      in
      ignore (measure 1);
      (* warm-up *)
      (* Best of three trials per jobs value: a single sample on a busy
         box regularly swings 2x (the compressor domains time-slice with
         whatever else the machine runs), and the guard gates on this
         row. Best-of measures the pipeline, not the scheduler. *)
      let best jobs =
        let w = ref (measure jobs) in
        for _ = 2 to 3 do
          w := Float.min !w (measure jobs)
        done;
        !w
      in
      let walls = List.map (fun jobs -> (jobs, best jobs)) sweep in
      let serial_s = List.assoc 1 walls in
      let rows =
        List.map
          (fun (jobs, wall_s) ->
            Bench_log.add_dilation log
              ~workload:(Printf.sprintf "combined(jobs=%d)" jobs)
              ~dilation:(wall_s /. native_s);
            {
              Bench_log.sl_jobs = jobs;
              sl_wall_s = wall_s;
              sl_speedup = serial_s /. wall_s;
              sl_events_per_sec =
                (if wall_s > 0.0 then float_of_int !events /. wall_s else Float.nan);
            })
          walls
      in
      Printf.printf "%s: %d accesses, %d core(s) available\n" "164.gzip-like" !events cores;
      print_endline
        (Ormp_util.Ascii.table
           ~header:[ "jobs"; "wall"; "speedup"; "throughput"; "dilation" ]
           ~rows:
             (List.map
                (fun (r : Bench_log.scaling_row) ->
                  [
                    string_of_int r.Bench_log.sl_jobs;
                    Printf.sprintf "%.3f s" r.Bench_log.sl_wall_s;
                    Printf.sprintf "%.2fx" r.Bench_log.sl_speedup;
                    Printf.sprintf "%.2f M ev/s" (r.Bench_log.sl_events_per_sec /. 1e6);
                    Printf.sprintf "%.1fx" (r.Bench_log.sl_wall_s /. native_s);
                  ])
                rows));
      if cores = 1 then
        print_endline
          "note: 1 core available — the compressor domains time-slice one CPU,\n\
           so this curve measures ring overhead, not parallel speedup.\n";
      Bench_log.set_scaling log
        {
          Bench_log.sl_workload = "164.gzip-like";
          sl_cores = cores;
          sl_events = !events;
          sl_rows = rows;
        })

(* ------------------------------------------------------------------ *)
(* Recovery: session durability figures (non-timing)                   *)
(* ------------------------------------------------------------------ *)

(* Runs one crash-safe session end to end: an uninterrupted reference, a
   copy killed at its second checkpoint, and a resume — reporting the
   on-disk cost of the safety net (snapshot and journal sizes) and the
   wall time of coming back, with a byte-identity cross-check against
   the reference profiles. These are durability figures, not profiler
   timings: the journal write on every event makes a session run a poor
   dilation measurement by design. *)
let run_recovery log ~bench () =
  timed log "recovery" (fun () ->
      print_endline
        (Ormp_util.Ascii.section "Crash recovery: snapshot size and resume cost");
      let module Session = Ormp_session.Session in
      let module Fio = Ormp_workloads.Faults.Io in
      let workload = if bench then "matrix" else "linked_list" in
      let options = { Session.default_options with Session.checkpoint_every = 1000 } in
      let rec rm_rf path =
        if Sys.file_exists path then
          if Sys.is_directory path then begin
            Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
            Sys.rmdir path
          end
          else Sys.remove path
      in
      let read_file path =
        In_channel.with_open_bin path In_channel.input_all
      in
      let file_size path = (Unix.stat path).Unix.st_size in
      let base =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "ormp-bench-recovery-%d" (Unix.getpid ()))
      in
      let ref_dir = Filename.concat base "reference"
      and kill_dir = Filename.concat base "killed" in
      rm_rf base;
      Fun.protect ~finally:(fun () -> rm_rf base) @@ fun () ->
      let reference =
        match Session.run ~options ~dir:ref_dir ~workload () with
        | Ok o -> o
        | Error msg -> failwith ("recovery reference run failed: " ^ msg)
      in
      let io = Fio.create { Fio.none with Fio.kill_at_checkpoint = Some 2 } in
      (match Session.run ~io ~options ~dir:kill_dir ~workload () with
      | exception Fio.Killed _ -> ()
      | Ok _ -> failwith "recovery: injected kill did not fire"
      | Error msg -> failwith ("recovery killed run failed early: " ^ msg));
      let snapshot_bytes =
        (* Newest surviving snapshot at the kill point. *)
        Array.fold_left
          (fun acc f ->
            if String.length f > 9 && String.sub f 0 9 = "snapshot-" then
              max acc (file_size (Filename.concat kill_dir f))
            else acc)
          0 (Sys.readdir kill_dir)
      in
      let journal_bytes = file_size (Filename.concat kill_dir "journal.trace") in
      let t0 = Ormp_util.Clock.now_s () in
      let resumed =
        match Session.resume ~dir:kill_dir () with
        | Ok o -> o
        | Error msg -> failwith ("recovery resume failed: " ^ msg)
      in
      let resume_s = Ormp_util.Clock.now_s () -. t0 in
      let identical =
        List.for_all
          (fun f ->
            read_file (Filename.concat kill_dir f) = read_file (Filename.concat ref_dir f))
          [ "whomp.profile"; "rasg.profile"; "leap.profile" ]
      in
      Printf.printf
        "%s: %d events, %d checkpoints\n\
         snapshot: %d bytes   journal at kill: %d bytes\n\
         resume: %.3fs (%d journal events replayed)   byte-identical: %b\n\n"
        workload reference.Session.oc_position reference.Session.oc_checkpoints
        snapshot_bytes journal_bytes resume_s resumed.Session.oc_replayed identical;
      if not identical then failwith "recovery: resumed profiles differ from reference";
      Bench_log.set_recovery log
        {
          Bench_log.rc_workload = workload;
          rc_events = reference.Session.oc_position;
          rc_checkpoints = reference.Session.oc_checkpoints;
          rc_snapshot_bytes = snapshot_bytes;
          rc_journal_bytes = journal_bytes;
          rc_resume_s = resume_s;
          rc_replayed = resumed.Session.oc_replayed;
          rc_identical = identical;
        })

(* ------------------------------------------------------------------ *)
(* Telemetry: instrumentation overhead guard                           *)
(* ------------------------------------------------------------------ *)

(* Pushes the same recorded event stream through the batched WHOMP
   pipeline with telemetry off and on, min-of-N on each, and fails the
   run if switching the layer on costs more than 10%. The per-stage
   histogram breakdown from the instrumented repetitions shows where the
   enabled-path time goes. Min-of-N rather than Bechamel because the
   figure is a guard ratio, not a reported number: the minimum is the
   noise-robust estimator for "how fast can this path go". *)
let run_telemetry log ~bench () =
  timed log "telemetry" (fun () ->
      let module Tm = Ormp_telemetry.Telemetry in
      print_endline
        (Ormp_util.Ascii.section "Telemetry: instrumentation overhead (on/off guard)");
      let entry = Ormp_workloads.Registry.find "164.gzip-like" in
      let rc = Ormp_trace.Sink.recorder () in
      ignore
        (Ormp_vm.Runner.run
           (Ormp_workloads.Registry.program ~bench entry)
           (Ormp_trace.Sink.recorder_sink rc));
      let events = Ormp_trace.Sink.events rc in
      let n =
        Array.fold_left
          (fun acc ev ->
            match ev with Ormp_trace.Event.Access _ -> acc + 1 | _ -> acc)
          0 events
      in
      let run_once () =
        let b, fin =
          Ormp_whomp.Whomp.sink_batched ~site_name:(Printf.sprintf "s%d") ()
        in
        let t0 = Ormp_util.Clock.now_ns () in
        Array.iter (Ormp_trace.Batch.event b) events;
        Ormp_trace.Batch.flush b;
        let dt = Int64.to_float (Int64.sub (Ormp_util.Clock.now_ns ()) t0) in
        ignore (fin ~elapsed:0.0);
        dt
      in
      let min_of k f =
        let best = ref Float.infinity in
        for _ = 1 to k do
          let v = f () in
          if v < !best then best := v
        done;
        !best
      in
      let reps = if bench then 5 else 3 in
      Tm.disable ();
      ignore (run_once ());
      (* warm-up *)
      let off_ns = min_of reps run_once in
      Tm.enable ();
      Tm.reset ();
      let on_ns = min_of reps run_once in
      let snap = Tm.Metrics.snapshot () in
      Tm.disable ();
      let off_pe = off_ns /. float_of_int n in
      let on_pe = on_ns /. float_of_int n in
      let ratio = on_pe /. off_pe in
      let stages =
        List.map
          (fun (name, h) ->
            {
              Bench_log.tl_stage = name;
              tl_count = h.Ormp_telemetry.Metrics.count;
              tl_total_ns = h.Ormp_telemetry.Metrics.sum;
              tl_p50_ns = h.Ormp_telemetry.Metrics.p50;
            })
          snap.Ormp_telemetry.Metrics.snap_hists
      in
      Printf.printf
        "%d accesses per repetition (min of %d)\n\
         telemetry off: %7.2f ns/event\n\
         telemetry on : %7.2f ns/event   ratio: %.3f\n\n"
        n reps off_pe on_pe ratio;
      if stages <> [] then
        print_endline
          (Ormp_util.Ascii.table
             ~header:[ "stage"; "count"; "total"; "p50" ]
             ~rows:
               (List.map
                  (fun (s : Bench_log.telemetry_stage) ->
                    [
                      s.Bench_log.tl_stage;
                      string_of_int s.Bench_log.tl_count;
                      Printf.sprintf "%.2f ms" (s.Bench_log.tl_total_ns /. 1e6);
                      Printf.sprintf "%.0f ns" s.Bench_log.tl_p50_ns;
                    ])
                  stages));
      Bench_log.set_telemetry log
        {
          Bench_log.tl_events = n;
          tl_off_ns_per_event = off_pe;
          tl_on_ns_per_event = on_pe;
          tl_ratio = ratio;
          tl_stages = stages;
        };
      if ratio > 1.10 then begin
        Printf.printf "telemetry guard: FAILED — enabling telemetry costs %.1f%% (> 10%%)\n"
          ((ratio -. 1.0) *. 100.0);
        exit 1
      end)

(* ------------------------------------------------------------------ *)
(* Modelcheck: transport litmus suite coverage (non-timing)            *)
(* ------------------------------------------------------------------ *)

(* Runs the full Ormp_modelcheck litmus suite and logs the per-case
   state-space coverage: interleavings explored, scheduling points,
   depth, and whether the expectation held (clean exhaustive pass, or —
   for the seeded pre-fix consumer — a rediscovered violation). The
   counts are deterministic, so unlike every timing figure in this
   harness they are comparable across machines and commits: a jump in
   interleavings means the protocol grew scheduling points. *)
let run_modelcheck log () =
  timed log "modelcheck" (fun () ->
      print_endline
        (Ormp_util.Ascii.section "Model checker: transport litmus coverage");
      let module L = Ormp_modelcheck.Litmus in
      let module Mc = Ormp_modelcheck.Mc in
      let results = L.run_all () in
      let rows =
        List.map
          (fun (r : L.result) ->
            let s = r.L.stats in
            {
              Bench_log.mk_name = r.L.case.L.name;
              mk_interleavings = s.Mc.interleavings;
              mk_steps = s.Mc.steps_executed;
              mk_max_depth = s.Mc.max_depth;
              mk_exhaustive = r.L.case.L.exhaustive;
              mk_budget_exhausted = s.Mc.budget_exhausted;
              mk_violation = s.Mc.violation <> None;
              mk_ok = r.L.ok;
            })
          results
      in
      print_endline
        (Ormp_util.Ascii.table
           ~header:[ "litmus"; "interleavings"; "steps"; "depth"; "coverage"; "ok" ]
           ~rows:
             (List.map
                (fun (r : Bench_log.modelcheck_row) ->
                  [
                    r.Bench_log.mk_name;
                    string_of_int r.Bench_log.mk_interleavings;
                    string_of_int r.Bench_log.mk_steps;
                    string_of_int r.Bench_log.mk_max_depth;
                    (if r.Bench_log.mk_violation then "violation"
                     else if r.Bench_log.mk_budget_exhausted then "bounded"
                     else "exhaustive");
                    (if r.Bench_log.mk_ok then "yes" else "NO");
                  ])
                rows));
      Bench_log.set_modelcheck log rows;
      if List.exists (fun (r : Bench_log.modelcheck_row) -> not r.Bench_log.mk_ok) rows
      then begin
        print_endline "modelcheck: FAILED — a litmus expectation did not hold";
        exit 1
      end)

(* ------------------------------------------------------------------ *)
(* Serve: multi-tenant daemon throughput shape (non-timing)            *)
(* ------------------------------------------------------------------ *)

(* Drives N concurrent client sessions against an in-process `ormp
   serve` daemon whose admission cap is set below N, so the run
   exercises the whole ladder: pooled ingest, ack round-trips, Shed +
   client backoff, and the byte-identity contract. Sessions/sec and the
   ack-latency percentiles are machine-local colour; the session count,
   shed behaviour and byte-identity verdict are the figures the section
   exists to pin down. *)
let run_serve log ~bench () =
  timed log "serve" (fun () ->
      print_endline
        (Ormp_util.Ascii.section "Serving: multi-tenant daemon session throughput");
      let module Daemon = Ormp_server.Daemon in
      let module Client = Ormp_server.Client in
      let n_sessions = if bench then 16 else 8 in
      let jobs = 2 in
      let rec rm_rf path =
        if Sys.file_exists path then
          if Sys.is_directory path then begin
            Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
            Sys.rmdir path
          end
          else Sys.remove path
      in
      let read_file path = In_channel.with_open_bin path In_channel.input_all in
      let base =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "ormp-bench-serve-%d" (Unix.getpid ()))
      in
      rm_rf base;
      Unix.mkdir base 0o755;
      Fun.protect ~finally:(fun () -> rm_rf base) @@ fun () ->
      let socket = Filename.concat base "ormp.sock" in
      let events =
        match Client.generate ~workload:"linked_list" ~seed:1 with
        | Ok (evs, _) -> evs
        | Error msg -> failwith ("serve: " ^ msg)
      in
      let options =
        {
          (Daemon.default_options ~socket ~root:base) with
          Daemon.jobs;
          (* below n_sessions, so latecomers see Shed + retry *)
          max_sessions = max 2 (n_sessions / 2);
          retry_after_s = 0.01;
        }
      in
      let daemon = Daemon.create options in
      let daemon_domain = Domain.spawn (fun () -> Daemon.run daemon) in
      let t0 = Ormp_util.Clock.now_s () in
      let clients =
        Array.init n_sessions (fun i ->
            Domain.spawn (fun () ->
                Client.run_session ~socket ~token:(Printf.sprintf "bench-%d" i)
                  ~workload:"linked_list" ~events ~ack_every:4
                  ~retry:
                    {
                      Client.default_retry with
                      Client.attempts = 60;
                      backoff_s = 0.005;
                      backoff_max_s = 0.05;
                      seed = 0xbe7c + i;
                    }
                  ()))
      in
      let reconnects = ref 0 and sheds = ref 0 and latencies = ref [] in
      Array.iteri
        (fun i d ->
          match Domain.join d with
          | Ok (st : Client.stats) ->
            reconnects := !reconnects + st.Client.st_reconnects;
            sheds := !sheds + st.Client.st_sheds;
            latencies := st.Client.st_ack_latencies @ !latencies
          | Error msg -> failwith (Printf.sprintf "serve: session bench-%d failed: %s" i msg))
        clients;
      let wall_s = Ormp_util.Clock.now_s () -. t0 in
      Daemon.stop daemon;
      Domain.join daemon_domain;
      let ref_dir = Filename.concat base "reference" in
      Client.reference ~dir:ref_dir ~events;
      let profiles dir =
        List.map
          (fun f -> read_file (Filename.concat dir f))
          [ "whomp.profile"; "rasg.profile"; "leap.profile" ]
      in
      let want = profiles ref_dir in
      let identical = ref true in
      for i = 0 to n_sessions - 1 do
        let dir =
          Filename.concat base (Filename.concat "sessions" (Printf.sprintf "bench-%d" i))
        in
        if profiles dir <> want then identical := false
      done;
      let p q = 1000.0 *. Client.percentile !latencies q in
      Printf.printf
        "%d sessions x %d events, jobs=%d cap=%d: %.1f sessions/sec\n\
         ack latency p50 %.2fms p99 %.2fms   sheds %d   reconnects %d   byte-identical: %b\n\n"
        n_sessions (Array.length events) jobs options.Daemon.max_sessions
        (float_of_int n_sessions /. wall_s)
        (p 0.5) (p 0.99) !sheds !reconnects !identical;
      if not !identical then failwith "serve: a session's profiles differ from reference";
      Bench_log.set_serve log
        {
          Bench_log.sv_sessions = n_sessions;
          sv_events = Array.length events;
          sv_jobs = jobs;
          sv_sessions_per_sec = float_of_int n_sessions /. wall_s;
          sv_p50_ack_ms = p 0.5;
          sv_p99_ack_ms = p 0.99;
          sv_reconnects = !reconnects;
          sv_sheds = !sheds;
          sv_identical = !identical;
        })

(* ------------------------------------------------------------------ *)
(* Observe: ORMP-Watch introspection overhead guard                    *)
(* ------------------------------------------------------------------ *)

(* Pushes the same concurrent client load through an in-process daemon
   twice: once with the stats machinery fully off (registry disabled, no
   flight consumers, no export), once with everything ORMP-Watch adds
   turned on AND actively exercised — registry enabled, a poller domain
   fetching Stats frames at `ormp top`-refresh cadence, stats-file
   export at heartbeat cadence. Best-of-N walls on each side; the run
   fails if watching the daemon costs more than 10% of data-path
   throughput. DESIGN.md §15 documents this bound as part of the stats
   channel's contract. *)
let run_observe log ~bench () =
  timed log "observe" (fun () ->
      print_endline
        (Ormp_util.Ascii.section "Observability: stats channel + flight recorder overhead");
      let module Daemon = Ormp_server.Daemon in
      let module Client = Ormp_server.Client in
      let module Stats = Ormp_server.Stats in
      let module Tm = Ormp_telemetry.Telemetry in
      let n_sessions = if bench then 8 else 4 in
      let reps = if bench then 5 else 3 in
      let rec rm_rf path =
        if Sys.file_exists path then
          if Sys.is_directory path then begin
            Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
            Sys.rmdir path
          end
          else Sys.remove path
      in
      let events =
        match Client.generate ~workload:"linked_list" ~seed:1 with
        | Ok (evs, _) -> evs
        | Error msg -> failwith ("observe: " ^ msg)
      in
      let stats_frames = ref 0 and flight_dumps = ref 0 in
      let run_id = ref 0 in
      let run_once ~stats () =
        incr run_id;
        let base =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "ormp-bench-observe-%d-%d" (Unix.getpid ()) !run_id)
        in
        rm_rf base;
        Unix.mkdir base 0o755;
        Fun.protect ~finally:(fun () -> rm_rf base) @@ fun () ->
        let socket = Filename.concat base "ormp.sock" in
        let options =
          {
            (Daemon.default_options ~socket ~root:base) with
            Daemon.jobs = 2;
            max_sessions = 0;
            heartbeat_every_s = 0.1;
            stats;
            stats_file = (if stats then Some (Filename.concat base "stats.json") else None);
          }
        in
        (* Daemon.create enables the registry when [stats]; the off side
           must measure with it genuinely off *)
        if not stats then Tm.disable ();
        let daemon = Daemon.create options in
        let daemon_domain = Domain.spawn (fun () -> Daemon.run daemon) in
        let stop_poll = Atomic.make false in
        let poller =
          if not stats then None
          else
            Some
              (Domain.spawn (fun () ->
                   let n = ref 0 in
                   while not (Atomic.get stop_poll) do
                     (match Client.fetch_stats ~socket ~io_timeout_s:5.0 () with
                     | Ok s ->
                       incr n;
                       flight_dumps := s.Stats.s_flight_dumps
                     | Error _ -> ());
                     Ormp_server.Net_io.sleep 0.005
                   done;
                   !n))
        in
        let t0 = Ormp_util.Clock.now_s () in
        let clients =
          Array.init n_sessions (fun i ->
              Domain.spawn (fun () ->
                  Client.run_session ~socket ~token:(Printf.sprintf "ob-%d" i)
                    ~workload:"linked_list" ~events ~ack_every:4
                    ~retry:
                      {
                        Client.default_retry with
                        Client.attempts = 60;
                        backoff_s = 0.005;
                        backoff_max_s = 0.05;
                        seed = 0x0b5e + i;
                      }
                    ()))
        in
        Array.iteri
          (fun i d ->
            match Domain.join d with
            | Ok (_ : Client.stats) -> ()
            | Error msg -> failwith (Printf.sprintf "observe: session ob-%d failed: %s" i msg))
          clients;
        let wall_s = Ormp_util.Clock.now_s () -. t0 in
        Atomic.set stop_poll true;
        (match poller with
        | Some p -> stats_frames := !stats_frames + Domain.join p
        | None -> ());
        Daemon.stop daemon;
        Domain.join daemon_domain;
        wall_s
      in
      (* Warm both modes, then take the best of [reps] *interleaved*
         off/on pairs. Measuring the modes in separate blocks let slow
         drift (page cache, CPU frequency, daemon socket churn) land
         entirely on one side — an earlier run measured stats-on *faster*
         than stats-off (ratio 0.82) that way. Alternating trials inside
         one loop exposes both modes to the same drift. *)
      ignore (run_once ~stats:false ());
      ignore (run_once ~stats:true ());
      let off_wall = ref Float.infinity and on_wall = ref Float.infinity in
      for _ = 1 to reps do
        let off = run_once ~stats:false () in
        if off < !off_wall then off_wall := off;
        let on = run_once ~stats:true () in
        if on < !on_wall then on_wall := on
      done;
      let off_wall = !off_wall and on_wall = !on_wall in
      Tm.disable ();
      Tm.reset ();
      let total = float_of_int (n_sessions * Array.length events) in
      let off_eps = total /. off_wall and on_eps = total /. on_wall in
      let ratio = off_eps /. on_eps in
      Printf.printf
        "%d sessions x %d events (best of %d)\n\
         stats off: %10.0f events/s\n\
         stats on : %10.0f events/s   ratio: %.3f   (%d stats frames served, %d flight \
         dumps)\n\n"
        n_sessions (Array.length events) reps off_eps on_eps ratio !stats_frames
        !flight_dumps;
      Bench_log.set_observe log
        {
          Bench_log.ob_sessions = n_sessions;
          ob_events = Array.length events;
          ob_off_events_per_sec = off_eps;
          ob_on_events_per_sec = on_eps;
          ob_ratio = ratio;
          ob_stats_frames = !stats_frames;
          ob_flight_dumps = !flight_dumps;
        };
      if ratio > 1.10 then begin
        Printf.printf
          "observe guard: FAILED — watching the daemon costs %.1f%% (> 10%%)\n"
          ((ratio -. 1.0) *. 100.0);
        exit 1
      end)

(* ------------------------------------------------------------------ *)
(* Verify: the debug-mode checking pass                                *)
(* ------------------------------------------------------------------ *)

let run_verify log ~bench () =
  timed log "verify" (fun () ->
      print_endline
        (Ormp_util.Ascii.section "Checking layer: sanitizer + profile invariants");
      let failures = ref 0 in
      let verdict workload what = function
        | Ok () -> Printf.printf "  %-18s %-16s OK\n" workload what
        | Error e ->
          incr failures;
          Printf.printf "  %-18s %-16s FAIL: %s\n" workload what e
      in
      List.iter
        (fun e ->
          let name = e.Ormp_workloads.Registry.name in
          let program = Ormp_workloads.Registry.program ~bench e in
          let r = Ormp_check.Sanitizer.run program in
          verdict name "sanitizer"
            (if Ormp_check.Report.clean r then Ok ()
             else
               Error
                 (Printf.sprintf "%d error(s), %d warning(s)" (Ormp_check.Report.errors r)
                    (Ormp_check.Report.warnings r)));
          verdict name "whomp profile"
            (Ormp_check.Verify.whomp_profile (Ormp_whomp.Whomp.profile program));
          verdict name "leap profile"
            (Ormp_check.Verify.leap_profile (Ormp_leap.Leap.profile program)))
        Ormp_workloads.Registry.spec;
      if !failures > 0 then begin
        Printf.printf "verify: %d check(s) FAILED\n" !failures;
        exit 1
      end
      else print_newline ())

(* Symbols/events one run of the named micro row consumes. The
   recorded-trace profiler rows report their count from [micro_tests]
   (the shared trace's length); rows with no natural event count (the
   solver) are omitted and report per-run figures only. *)
let micro_event_counts =
  [
    ("sequitur: 4k repetitive symbols", 4096);
    ("sequitur: 4k scattered symbols", 4096);
    ("sequitur: 32k scattered symbols", 32768);
    ("sequitur: 32k scattered symbols (size hint)", 32768);
    ("sequitur: 4k repetitive symbols (push_batch)", 4096);
    ("sequitur: 32k scattered symbols (push_batch, size hint)", 32768);
    ("range_index: 1k insert+find", 2000);
    ("omc: 1k translations", 1000);
    ("omc: 1k translations (MRU cache)", 1000);
    ("omc: 1k batched translations", 1000);
    ("lmad: 4k-point regular stream", 4096);
    ("lmad: 4k-point scattered stream", 4096);
  ]

let run_micro log () =
  timed log "micro" (fun () ->
      let open Bechamel in
      print_endline
        (Ormp_util.Ascii.section "Micro-benchmarks (Bechamel, monotonic clock + minor words)");
      let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
      (* Both instances are sampled in the same runs, then analyzed per
         witness: the second pass turns the same samples into minor-heap
         words per run, the allocation column of the bench table. *)
      let instances = Toolkit.Instance.[ monotonic_clock; minor_allocated ] in
      let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
      let tests, trace_counts = micro_tests () in
      let event_counts = micro_event_counts @ trace_counts in
      let raw = Benchmark.all cfg instances tests in
      let ns_results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      let words_results = Analyze.all ols Toolkit.Instance.minor_allocated raw in
      let estimate tbl name =
        match Hashtbl.find_opt tbl name with
        | None -> None
        | Some r -> (
          match Analyze.OLS.estimates r with Some [ v ] -> Some v | _ -> None)
      in
      let rows = ref [] in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] ->
            let short =
              match String.index_opt name '/' with
              | Some i -> String.sub name (i + 1) (String.length name - i - 1)
              | None -> name
            in
            rows :=
              {
                Bench_log.mr_name = short;
                mr_ns_per_run = ns;
                mr_minor_words_per_run =
                  Option.value ~default:Float.nan (estimate words_results name);
                mr_events = Option.value ~default:0 (List.assoc_opt short event_counts);
              }
              :: !rows
          | _ -> ())
        ns_results;
      let rows =
        List.sort (fun a b -> compare a.Bench_log.mr_name b.Bench_log.mr_name) !rows
      in
      Bench_log.set_micro log rows;
      let pretty_ns ns =
        if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      print_endline
        (Ormp_util.Ascii.table
           ~header:[ "benchmark"; "time per run"; "minor alloc"; "ns/event"; "words/event" ]
           ~rows:
             (List.map
                (fun (r : Bench_log.micro_row) ->
                  let per_event f =
                    if r.Bench_log.mr_events > 0 && not (Float.is_nan f) then
                      Printf.sprintf "%.2f" (f /. float_of_int r.Bench_log.mr_events)
                    else "-"
                  in
                  [
                    r.Bench_log.mr_name;
                    pretty_ns r.Bench_log.mr_ns_per_run;
                    (if Float.is_nan r.Bench_log.mr_minor_words_per_run then "-"
                     else Printf.sprintf "%.0f w" r.Bench_log.mr_minor_words_per_run);
                    per_event r.Bench_log.mr_ns_per_run;
                    per_event r.Bench_log.mr_minor_words_per_run;
                  ])
                rows)))

(* ------------------------------------------------------------------ *)
(* perf-guard: regression check against a committed baseline log       *)
(* ------------------------------------------------------------------ *)

(* Compares this run's hotpath figure, the sequitur/leap/whomp/omc/
   range_index micro rows (time AND minor-word allocation, per event
   where the row has a count), and the combined jobs=1 scaling
   throughput against a baseline BENCH_ormp.json — exit 1 if anything
   regressed more than [guard_threshold]x. Only rows present in both
   runs participate; sub-threshold drift prints but passes. Wired to
   `dune build @perf-guard` (opt-in — timing under test concurrency is
   too noisy for @runtest). *)
let guard_threshold = 1.5

let run_guard log ~baseline =
  let module J = Ormp_util.Json in
  print_endline
    (Ormp_util.Ascii.section
       (Printf.sprintf "perf-guard: vs %s (fail above %.1fx)" baseline guard_threshold));
  let root =
    match
      J.of_string (In_channel.with_open_bin baseline In_channel.input_all)
    with
    | Ok t -> t
    | Error e ->
      Printf.eprintf "perf-guard: cannot parse %s: %s\n" baseline e;
      exit 2
    | exception Sys_error e ->
      Printf.eprintf "perf-guard: cannot read baseline: %s\n" e;
      exit 2
  in
  (match Option.bind (J.member "mode" root) J.to_str with
  | Some mode when mode <> log.Bench_log.mode ->
    Printf.printf
      "note: baseline mode %S differs from this run's %S — ratios compare\n\
       different scales and only gate gross regressions.\n" mode log.Bench_log.mode
  | _ -> ());
  let failures = ref 0 and compared = ref 0 in
  let check name base cur =
    match (base, cur) with
    | Some bv, Some cv when bv > 0.0 ->
      incr compared;
      let ratio = cv /. bv in
      let verdict =
        if ratio > guard_threshold then begin
          incr failures;
          "FAIL"
        end
        else "ok"
      in
      Printf.printf "  %-56s %10.2f -> %10.2f ns  %5.2fx  %s\n" name bv cv ratio verdict
    | _ -> Printf.printf "  %-56s not in both runs - skipped\n" name
  in
  (* Allocation figures get the same relative threshold plus one word of
     absolute slack: the flat rows sit at (or near) zero words/event,
     where a pure ratio would flag measurement noise. *)
  let check_words name base cur =
    match (base, cur) with
    | Some bv, Some cv when not (Float.is_nan bv || Float.is_nan cv) ->
      incr compared;
      let limit = (bv *. guard_threshold) +. 1.0 in
      let verdict =
        if cv > limit then begin
          incr failures;
          "FAIL"
        end
        else "ok"
      in
      Printf.printf "  %-56s %10.2f -> %10.2f w   limit %.2f  %s\n" name bv cv limit
        verdict
    | _ -> Printf.printf "  %-56s not in both runs - skipped\n" name
  in
  let jfloat o k = Option.bind (Option.bind o (J.member k)) J.to_float in
  check "hotpath.batched_ns_per_event"
    (jfloat (J.member "hotpath" root) "batched_ns_per_event")
    (Option.map (fun h -> h.Bench_log.batched_ns_per_event) log.Bench_log.hotpath);
  (* Micro rows guarded per family: every structure this repo has
     flattened stays under both its time and its allocation baseline.
     Rows with an event count compare per-event figures (stable across
     a renamed or re-sized run); the rest fall back to per-run ns. *)
  let guarded_prefixes = [ "sequitur"; "leap"; "whomp"; "omc"; "range_index" ] in
  let has_prefix name p =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  let base_micro =
    match Option.bind (J.member "micro" root) J.to_list with
    | None -> []
    | Some rows ->
      List.filter_map
        (fun r ->
          match Option.bind (J.member "name" r) J.to_str with
          | Some n -> Some (n, r)
          | None -> None)
        rows
  in
  List.iter
    (fun (r : Bench_log.micro_row) ->
      if List.exists (has_prefix r.Bench_log.mr_name) guarded_prefixes then begin
        let base = List.assoc_opt r.Bench_log.mr_name base_micro in
        let ev = r.Bench_log.mr_events in
        if ev > 0 then begin
          check
            (r.Bench_log.mr_name ^ " [/event]")
            (jfloat base "ns_per_event")
            (Some (r.Bench_log.mr_ns_per_run /. float_of_int ev));
          check_words
            (r.Bench_log.mr_name ^ " [words/event]")
            (jfloat base "minor_words_per_event")
            (Some (r.Bench_log.mr_minor_words_per_run /. float_of_int ev))
        end
        else
          check r.Bench_log.mr_name (jfloat base "ns_per_run")
            (Some r.Bench_log.mr_ns_per_run)
      end)
    log.Bench_log.micro;
  (* Combined-suite throughput (higher is better): fail when this run is
     more than [guard_threshold]x slower than the baseline's jobs=1 row. *)
  let check_throughput name base cur =
    match (base, cur) with
    | Some bv, Some cv when bv > 0.0 && cv > 0.0 ->
      incr compared;
      let ratio = bv /. cv in
      let verdict =
        if ratio > guard_threshold then begin
          incr failures;
          "FAIL"
        end
        else "ok"
      in
      Printf.printf "  %-56s %10.0f -> %10.0f ev/s %4.2fx  %s\n" name bv cv ratio verdict
    | _ -> Printf.printf "  %-56s not in both runs - skipped\n" name
  in
  let scaling_jobs1 rows_json =
    Option.bind rows_json (fun rows ->
        List.find_map
          (fun r ->
            match Option.bind (J.member "jobs" r) J.to_float with
            | Some 1.0 -> jfloat (Some r) "events_per_sec"
            | _ -> None)
          rows)
  in
  check_throughput "scaling.combined(jobs=1).events_per_sec"
    (scaling_jobs1
       (Option.bind (Option.bind (J.member "scaling" root) (J.member "rows")) J.to_list))
    (Option.bind log.Bench_log.scaling (fun s ->
         List.find_map
           (fun (r : Bench_log.scaling_row) ->
             if r.Bench_log.sl_jobs = 1 then Some r.Bench_log.sl_events_per_sec else None)
           s.Bench_log.sl_rows));
  print_newline ();
  if !compared = 0 then begin
    Printf.eprintf
      "perf-guard: nothing to compare — run the hotpath and micro sections\n\
       against a baseline that contains them.\n";
    exit 2
  end;
  if !failures > 0 then begin
    Printf.printf "perf-guard: FAILED — %d figure(s) regressed beyond %.1fx\n" !failures
      guard_threshold;
    exit 1
  end
  else Printf.printf "perf-guard: ok (%d figure(s) within %.1fx)\n" !compared guard_threshold

let () =
  let fast, baseline, wanted, enabled = parse_args () in
  let bench = not fast in
  let log = Bench_log.create ~mode:(if fast then "fast" else "paper") in
  Printf.printf "ORMP benchmark harness — %s scale\n\n%!"
    (if bench then "paper (training-input)" else "fast (test)");
  if enabled "fig5" then run_fig5 log ~bench ();
  run_dependence_figs log ~bench ~enabled ();
  if enabled "ablations" then run_ablations log ~bench ();
  if enabled "extensions" then run_extensions log ~bench ();
  if enabled "hotpath" then run_hotpath log ~bench ();
  if enabled "micro" then run_micro log ();
  if enabled "scaling" then run_scaling log ~bench ();
  if enabled "recovery" then run_recovery log ~bench ();
  if enabled "telemetry" then run_telemetry log ~bench ();
  if enabled "modelcheck" then run_modelcheck log ();
  if enabled "serve" then run_serve log ~bench ();
  if enabled "observe" then run_observe log ~bench ();
  (* Skipped in default timing runs; see the usage comment. *)
  if List.mem "verify" wanted || (wanted = [] && fast) then run_verify log ~bench ();
  Bench_log.write log "BENCH_ormp.json";
  match baseline with None -> () | Some path -> run_guard log ~baseline:path
