(* Machine-readable run log for the benchmark harness: collects section
   wall times and headline metrics as sections execute, then writes them
   as BENCH_ormp.json. JSON is emitted by hand (the repo carries no JSON
   dependency); the format is documented in README.md. *)

type hotpath = {
  events : int;  (** accesses per measured iteration *)
  legacy_ns_per_event : float;
  batched_ns_per_event : float;
  speedup : float;  (** legacy / batched, per-event *)
  events_per_sec : float;  (** through the batched translate path *)
  cache_hit_rate : float;  (** OMC MRU cache, steady state *)
}

type suite_row = { suite_name : string; suite_events : int; suite_elapsed_s : float }

(* One Bechamel micro-benchmark row. [mr_events] is the number of
   symbols/events one run consumes (0 when the row has no natural event
   count); the JSON derives ns/event and minor-GC words/event from it,
   which is what the @perf-guard alias compares across commits. *)
type micro_row = {
  mr_name : string;
  mr_ns_per_run : float;
  mr_minor_words_per_run : float;  (** NaN when the allocation pass failed *)
  mr_events : int;
}

(* Non-timing durability figures from the recovery section: how big the
   on-disk safety net is and how fast a killed session comes back. *)
type recovery = {
  rc_workload : string;
  rc_events : int;  (** raw events in the full session *)
  rc_checkpoints : int;  (** snapshots the uninterrupted run writes *)
  rc_snapshot_bytes : int;  (** newest snapshot, sealed size on disk *)
  rc_journal_bytes : int;  (** write-ahead journal at the kill point *)
  rc_resume_s : float;  (** wall time of resume after the injected kill *)
  rc_replayed : int;  (** journal-tail events replayed on resume *)
  rc_identical : bool;  (** resumed profiles byte-identical to reference *)
}

(* Overhead of the self-profiling telemetry layer on the batched WHOMP
   pipeline: the same recorded event stream pushed with telemetry off and
   on, plus the per-stage histogram breakdown the instrumented runs
   collected. The ratio is a guard figure, not a paper number. *)
type telemetry_stage = {
  tl_stage : string;
  tl_count : int;  (** observations across the instrumented repetitions *)
  tl_total_ns : float;
  tl_p50_ns : float;
}

type telemetry = {
  tl_events : int;  (** accesses per repetition *)
  tl_off_ns_per_event : float;
  tl_on_ns_per_event : float;
  tl_ratio : float;  (** on / off; the guard fails above 1.10 *)
  tl_stages : telemetry_stage list;
}

(* One point of the pipeline-parallel --jobs sweep: a combined
   WHOMP+LEAP instrumented run at a given domain count. Speedup is
   against the jobs=1 row of the same sweep; [cores] records what the
   machine could actually parallelise, so a flat curve on a 1-core box
   reads as the physics it is, not a regression. *)
type scaling_row = {
  sl_jobs : int;
  sl_wall_s : float;
  sl_speedup : float;  (** serial wall / this wall *)
  sl_events_per_sec : float;
}

type scaling = {
  sl_workload : string;
  sl_cores : int;  (** Domain.recommended_domain_count at run time *)
  sl_events : int;  (** accesses per run (collected + wild) *)
  sl_rows : scaling_row list;
}

(* One litmus case of the transport model checker: how much state space
   the exploration covered and whether the expectation held. Non-timing
   by design — interleaving counts are deterministic, so this section is
   comparable across machines (unlike every ns figure in this file). *)
type modelcheck_row = {
  mk_name : string;
  mk_interleavings : int;  (** complete executions explored *)
  mk_steps : int;  (** scheduling points across all runs *)
  mk_max_depth : int;  (** longest execution *)
  mk_exhaustive : bool;  (** the case claims full coverage *)
  mk_budget_exhausted : bool;
  mk_violation : bool;  (** a violation was found (expected for the seeded race) *)
  mk_ok : bool;
}

(* Non-timing throughput shape of the `ormp serve` daemon: how many
   sessions an in-process daemon absorbed, what the clients saw for ack
   latency, and how often the admission ladder shed. The session and
   shed counts are deterministic; the latency figures are machine-local
   colour, not guard numbers. *)
type serve = {
  sv_sessions : int;  (** sessions driven to completion *)
  sv_events : int;  (** raw events per session *)
  sv_jobs : int;  (** daemon worker-pool size *)
  sv_sessions_per_sec : float;
  sv_p50_ack_ms : float;
  sv_p99_ack_ms : float;
  sv_reconnects : int;  (** retries across all sessions (0 unless faulted) *)
  sv_sheds : int;  (** Shed replies absorbed by client backoff *)
  sv_identical : bool;  (** every session byte-identical to the reference *)
}

(* Non-timing overhead shape of the ORMP-Watch introspection layer: the
   same client load pushed through a daemon with the stats machinery off
   and then on (registry enabled, an aggressive `ormp top`-style poller
   attached, stats-file export running), and the resulting guard ratio.
   The ratio is the figure the section exists to pin down: observation
   must cost at most 10% of data-path throughput. *)
type observe = {
  ob_sessions : int;  (** concurrent sessions per repetition *)
  ob_events : int;  (** raw events per session *)
  ob_off_events_per_sec : float;  (** best-of-N, stats disabled *)
  ob_on_events_per_sec : float;  (** best-of-N, stats + poller + export *)
  ob_ratio : float;  (** off/on throughput ratio; guarded <= 1.10 *)
  ob_stats_frames : int;  (** Stats snapshots served during the on runs *)
  ob_flight_dumps : int;  (** flight bundles dumped (0 for a clean load) *)
}

type t = {
  mode : string;  (** "fast" or "paper" *)
  mutable sections : (string * float) list;  (** reverse execution order *)
  mutable hotpath : hotpath option;
  mutable micro : micro_row list;
  mutable recovery : recovery option;
  mutable telemetry : telemetry option;
  mutable scaling : scaling option;
  mutable modelcheck : modelcheck_row list;
  mutable serve : serve option;
  mutable observe : observe option;
  mutable suites_parallel : bool;
  mutable suites_wall_s : float;
  mutable suites : suite_row list;
  mutable dilation : (string * float) list;  (** reverse Table 1 order *)
}

let create ~mode =
  {
    mode;
    sections = [];
    hotpath = None;
    micro = [];
    recovery = None;
    telemetry = None;
    scaling = None;
    modelcheck = [];
    serve = None;
    observe = None;
    suites_parallel = false;
    suites_wall_s = Float.nan;
    suites = [];
    dilation = [];
  }

let add_section t name wall_s = t.sections <- (name, wall_s) :: t.sections

let set_hotpath t h = t.hotpath <- Some h

let set_micro t rows = t.micro <- rows

let set_recovery t r = t.recovery <- Some r

let set_telemetry t tl = t.telemetry <- Some tl

let set_scaling t s = t.scaling <- Some s

let set_modelcheck t rows = t.modelcheck <- rows

let set_serve t s = t.serve <- Some s

let set_observe t o = t.observe <- Some o

let set_suites t ~parallel ~wall_s rows =
  t.suites_parallel <- parallel;
  t.suites_wall_s <- wall_s;
  t.suites <- rows

let add_dilation t ~workload ~dilation = t.dilation <- (workload, dilation) :: t.dilation

(* --- JSON rendering -------------------------------------------------- *)

let buf_str b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* NaN/inf have no JSON encoding; a dilation on a too-fast workload can be
   NaN, so those render as null. *)
let buf_float b f =
  if Float.is_nan f || Float.abs f = Float.infinity then Buffer.add_string b "null"
  else Buffer.add_string b (Printf.sprintf "%.6g" f)

let buf_list b xs emit =
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_string b ", ";
      emit x)
    xs;
  Buffer.add_char b ']'

let render t =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n  \"mode\": ";
  buf_str b t.mode;
  Buffer.add_string b ",\n  \"sections\": ";
  buf_list b (List.rev t.sections) (fun (name, s) ->
      Buffer.add_string b "{\"name\": ";
      buf_str b name;
      Buffer.add_string b ", \"wall_s\": ";
      buf_float b s;
      Buffer.add_char b '}');
  (match t.hotpath with
  | None -> ()
  | Some h ->
    Buffer.add_string b ",\n  \"hotpath\": {";
    Buffer.add_string b "\"events\": ";
    Buffer.add_string b (string_of_int h.events);
    Buffer.add_string b ", \"legacy_ns_per_event\": ";
    buf_float b h.legacy_ns_per_event;
    Buffer.add_string b ", \"batched_ns_per_event\": ";
    buf_float b h.batched_ns_per_event;
    Buffer.add_string b ", \"speedup\": ";
    buf_float b h.speedup;
    Buffer.add_string b ", \"events_per_sec\": ";
    buf_float b h.events_per_sec;
    Buffer.add_string b ", \"cache_hit_rate\": ";
    buf_float b h.cache_hit_rate;
    Buffer.add_char b '}');
  if t.micro <> [] then begin
    Buffer.add_string b ",\n  \"micro\": ";
    buf_list b t.micro (fun m ->
        Buffer.add_string b "{\"name\": ";
        buf_str b m.mr_name;
        Buffer.add_string b ", \"ns_per_run\": ";
        buf_float b m.mr_ns_per_run;
        Buffer.add_string b ", \"minor_words_per_run\": ";
        buf_float b m.mr_minor_words_per_run;
        Buffer.add_string b ", \"events\": ";
        Buffer.add_string b (string_of_int m.mr_events);
        if m.mr_events > 0 then begin
          Buffer.add_string b ", \"ns_per_event\": ";
          buf_float b (m.mr_ns_per_run /. float_of_int m.mr_events);
          Buffer.add_string b ", \"minor_words_per_event\": ";
          buf_float b (m.mr_minor_words_per_run /. float_of_int m.mr_events)
        end;
        Buffer.add_char b '}')
  end;
  (match t.recovery with
  | None -> ()
  | Some r ->
    Buffer.add_string b ",\n  \"recovery\": {";
    Buffer.add_string b "\"workload\": ";
    buf_str b r.rc_workload;
    Buffer.add_string b ", \"events\": ";
    Buffer.add_string b (string_of_int r.rc_events);
    Buffer.add_string b ", \"checkpoints\": ";
    Buffer.add_string b (string_of_int r.rc_checkpoints);
    Buffer.add_string b ", \"snapshot_bytes\": ";
    Buffer.add_string b (string_of_int r.rc_snapshot_bytes);
    Buffer.add_string b ", \"journal_bytes\": ";
    Buffer.add_string b (string_of_int r.rc_journal_bytes);
    Buffer.add_string b ", \"resume_s\": ";
    buf_float b r.rc_resume_s;
    Buffer.add_string b ", \"replayed\": ";
    Buffer.add_string b (string_of_int r.rc_replayed);
    Buffer.add_string b ", \"identical\": ";
    Buffer.add_string b (string_of_bool r.rc_identical);
    Buffer.add_char b '}');
  (match t.telemetry with
  | None -> ()
  | Some tl ->
    Buffer.add_string b ",\n  \"telemetry\": {";
    Buffer.add_string b "\"events\": ";
    Buffer.add_string b (string_of_int tl.tl_events);
    Buffer.add_string b ", \"off_ns_per_event\": ";
    buf_float b tl.tl_off_ns_per_event;
    Buffer.add_string b ", \"on_ns_per_event\": ";
    buf_float b tl.tl_on_ns_per_event;
    Buffer.add_string b ", \"ratio\": ";
    buf_float b tl.tl_ratio;
    Buffer.add_string b ", \"stages\": ";
    buf_list b tl.tl_stages (fun s ->
        Buffer.add_string b "{\"stage\": ";
        buf_str b s.tl_stage;
        Buffer.add_string b ", \"count\": ";
        Buffer.add_string b (string_of_int s.tl_count);
        Buffer.add_string b ", \"total_ns\": ";
        buf_float b s.tl_total_ns;
        Buffer.add_string b ", \"p50_ns\": ";
        buf_float b s.tl_p50_ns;
        Buffer.add_char b '}');
    Buffer.add_char b '}');
  (match t.scaling with
  | None -> ()
  | Some s ->
    Buffer.add_string b ",\n  \"scaling\": {";
    Buffer.add_string b "\"workload\": ";
    buf_str b s.sl_workload;
    Buffer.add_string b ", \"cores\": ";
    Buffer.add_string b (string_of_int s.sl_cores);
    Buffer.add_string b ", \"events\": ";
    Buffer.add_string b (string_of_int s.sl_events);
    Buffer.add_string b ", \"rows\": ";
    buf_list b s.sl_rows (fun r ->
        Buffer.add_string b "{\"jobs\": ";
        Buffer.add_string b (string_of_int r.sl_jobs);
        Buffer.add_string b ", \"wall_s\": ";
        buf_float b r.sl_wall_s;
        Buffer.add_string b ", \"speedup\": ";
        buf_float b r.sl_speedup;
        Buffer.add_string b ", \"events_per_sec\": ";
        buf_float b r.sl_events_per_sec;
        Buffer.add_char b '}');
    Buffer.add_char b '}');
  if t.modelcheck <> [] then begin
    Buffer.add_string b ",\n  \"modelcheck\": ";
    buf_list b t.modelcheck (fun r ->
        Buffer.add_string b "{\"name\": ";
        buf_str b r.mk_name;
        Buffer.add_string b ", \"interleavings\": ";
        Buffer.add_string b (string_of_int r.mk_interleavings);
        Buffer.add_string b ", \"steps\": ";
        Buffer.add_string b (string_of_int r.mk_steps);
        Buffer.add_string b ", \"max_depth\": ";
        Buffer.add_string b (string_of_int r.mk_max_depth);
        Buffer.add_string b ", \"exhaustive\": ";
        Buffer.add_string b (string_of_bool r.mk_exhaustive);
        Buffer.add_string b ", \"budget_exhausted\": ";
        Buffer.add_string b (string_of_bool r.mk_budget_exhausted);
        Buffer.add_string b ", \"violation_found\": ";
        Buffer.add_string b (string_of_bool r.mk_violation);
        Buffer.add_string b ", \"ok\": ";
        Buffer.add_string b (string_of_bool r.mk_ok);
        Buffer.add_char b '}')
  end;
  (match t.serve with
  | None -> ()
  | Some s ->
    Buffer.add_string b ",\n  \"serve\": {";
    Buffer.add_string b "\"sessions\": ";
    Buffer.add_string b (string_of_int s.sv_sessions);
    Buffer.add_string b ", \"events_per_session\": ";
    Buffer.add_string b (string_of_int s.sv_events);
    Buffer.add_string b ", \"jobs\": ";
    Buffer.add_string b (string_of_int s.sv_jobs);
    Buffer.add_string b ", \"sessions_per_sec\": ";
    buf_float b s.sv_sessions_per_sec;
    Buffer.add_string b ", \"p50_ack_ms\": ";
    buf_float b s.sv_p50_ack_ms;
    Buffer.add_string b ", \"p99_ack_ms\": ";
    buf_float b s.sv_p99_ack_ms;
    Buffer.add_string b ", \"reconnects\": ";
    Buffer.add_string b (string_of_int s.sv_reconnects);
    Buffer.add_string b ", \"sheds\": ";
    Buffer.add_string b (string_of_int s.sv_sheds);
    Buffer.add_string b ", \"identical\": ";
    Buffer.add_string b (string_of_bool s.sv_identical);
    Buffer.add_char b '}');
  (match t.observe with
  | None -> ()
  | Some o ->
    Buffer.add_string b ",\n  \"observe\": {";
    Buffer.add_string b "\"sessions\": ";
    Buffer.add_string b (string_of_int o.ob_sessions);
    Buffer.add_string b ", \"events_per_session\": ";
    Buffer.add_string b (string_of_int o.ob_events);
    Buffer.add_string b ", \"off_events_per_sec\": ";
    buf_float b o.ob_off_events_per_sec;
    Buffer.add_string b ", \"on_events_per_sec\": ";
    buf_float b o.ob_on_events_per_sec;
    Buffer.add_string b ", \"ratio\": ";
    buf_float b o.ob_ratio;
    Buffer.add_string b ", \"stats_frames\": ";
    Buffer.add_string b (string_of_int o.ob_stats_frames);
    Buffer.add_string b ", \"flight_dumps\": ";
    Buffer.add_string b (string_of_int o.ob_flight_dumps);
    Buffer.add_char b '}');
  if t.suites <> [] then begin
    Buffer.add_string b ",\n  \"suites\": {\"parallel\": ";
    Buffer.add_string b (string_of_bool t.suites_parallel);
    Buffer.add_string b ", \"wall_s\": ";
    buf_float b t.suites_wall_s;
    Buffer.add_string b ", \"runs\": ";
    buf_list b t.suites (fun r ->
        Buffer.add_string b "{\"name\": ";
        buf_str b r.suite_name;
        Buffer.add_string b ", \"events\": ";
        Buffer.add_string b (string_of_int r.suite_events);
        Buffer.add_string b ", \"wall_s\": ";
        buf_float b r.suite_elapsed_s;
        Buffer.add_string b ", \"events_per_sec\": ";
        buf_float b
          (if r.suite_elapsed_s > 0.0 then float_of_int r.suite_events /. r.suite_elapsed_s
           else Float.nan);
        Buffer.add_char b '}');
    Buffer.add_char b '}'
  end;
  if t.dilation <> [] then begin
    Buffer.add_string b ",\n  \"dilation\": ";
    buf_list b (List.rev t.dilation) (fun (w, d) ->
        Buffer.add_string b "{\"workload\": ";
        buf_str b w;
        Buffer.add_string b ", \"dilation\": ";
        buf_float b d;
        Buffer.add_char b '}')
  end;
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let write t path =
  let oc = open_out path in
  output_string oc (render t);
  close_out oc;
  Printf.printf "[wrote %s]\n%!" path
