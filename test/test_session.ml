(* Crash-safe sessions: checkpoint/resume byte-identity, durable-file
   primitives, fault-injected degradation, and the supervised suite. *)

module Crc32 = Ormp_util.Crc32
module Seq_c = Ormp_sequitur.Sequitur
module C = Ormp_lmad.Compressor
module Storage = Ormp_session.Storage
module Journal = Ormp_session.Journal
module Snapshot = Ormp_session.Snapshot
module Session = Ormp_session.Session
module Supervise = Ormp_session.Supervise
module Suite = Ormp_session.Suite
module Faults = Ormp_workloads.Faults
module Micro = Ormp_workloads.Micro
module Event = Ormp_trace.Event

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let tmpdir () = Filename.temp_file "ormp_session" "" |> fun f ->
  Sys.remove f;
  Unix.mkdir f 0o755;
  f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* --- CRC-32 ------------------------------------------------------------ *)

let test_crc32_vectors () =
  (* The IEEE/zlib check value. *)
  check_int "123456789" 0xCBF43926 (Crc32.string "123456789");
  check_int "empty" 0 (Crc32.string "");
  check_int "incremental = whole"
    (Crc32.string "hello world")
    (Crc32.update (Crc32.update 0 "hello ") "world")

(* --- storage ----------------------------------------------------------- *)

let test_seal_unseal () =
  let payload = "some payload\nwith lines; and (sexps)" in
  (match Storage.unseal (Storage.seal payload) with
  | Ok p -> check_string "roundtrip" payload p
  | Error e -> Alcotest.fail e);
  (match Storage.unseal (Storage.seal payload ^ "x") with
  | Ok _ -> Alcotest.fail "accepted trailing garbage"
  | Error _ -> ());
  let sealed = Storage.seal payload in
  let corrupt = "X" ^ String.sub sealed 1 (String.length sealed - 1) in
  check_bool "corruption detected" true (Result.is_error (Storage.unseal corrupt));
  (* A payload containing the marker itself: the trailer is found from the
     end, so sealing still round-trips. *)
  let tricky = "a\n;crc 12345\nb" in
  match Storage.unseal (Storage.seal tricky) with
  | Ok p -> check_string "marker in payload" tricky p
  | Error e -> Alcotest.fail e

let test_atomic_write_faults () =
  let dir = tmpdir () in
  let path = Filename.concat dir "f" in
  Storage.write_atomic ~path "first";
  check_string "written" "first" (read_file path);
  (* A torn second write must leave the first content untouched. *)
  let io = Faults.Io.create { Faults.Io.none with torn_write = Some 1 } in
  (match Storage.write_atomic ~io ~path "second-content" with
  | () -> Alcotest.fail "torn write did not raise"
  | exception Faults.Io.Torn_write _ -> ());
  check_string "old content intact" "first" (read_file path);
  check_bool "no temp left" false (Sys.file_exists (path ^ ".tmp"));
  (* Same for ENOSPC. *)
  let io = Faults.Io.create { Faults.Io.none with no_space = Some 1 } in
  (match Storage.write_atomic ~io ~path "third" with
  | () -> Alcotest.fail "no_space did not raise"
  | exception Faults.Io.No_space _ -> ());
  check_string "still intact" "first" (read_file path);
  rm_rf dir

(* --- journal ----------------------------------------------------------- *)

let events_fixture =
  [|
    Event.Alloc { site = 1; addr = 4096; size = 64; type_name = None };
    Event.Access { instr = 2; addr = 4096; size = 8; is_store = false };
    Event.Access { instr = 3; addr = 4104; size = 8; is_store = true };
    Event.Free { addr = 4096; site = Some 4 };
  |]

let test_journal_roundtrip () =
  let dir = tmpdir () in
  let path = Filename.concat dir "j" in
  let w = Journal.create path in
  Array.iter (Journal.append w) events_fixture;
  let crc = Journal.crc w in
  Journal.flush w;
  Journal.close w;
  (match Journal.recover path with
  | Error e -> Alcotest.fail e
  | Ok r ->
    check_int "count" 4 (Array.length r.Journal.events);
    check_int "crc" crc r.Journal.r_crc;
    check_bool "not truncated" false r.Journal.truncated;
    check_bool "events equal" true (r.Journal.events = events_fixture));
  (* Reopen for append, continuing count and CRC. *)
  let w2 = Journal.create ~resume:(4, crc) path in
  Journal.append w2 (Event.Access { instr = 2; addr = 4096; size = 8; is_store = false });
  Journal.flush w2;
  Journal.close w2;
  (match Journal.recover ~at:4 path with
  | Error e -> Alcotest.fail e
  | Ok r ->
    check_int "count after append" 5 (Array.length r.Journal.events);
    check_int "crc at snapshot point" crc r.Journal.crc_at);
  rm_rf dir

let test_journal_torn_tail () =
  let dir = tmpdir () in
  let path = Filename.concat dir "j" in
  let w = Journal.create path in
  Array.iter (Journal.append w) events_fixture;
  Journal.flush w;
  Journal.close w;
  let sound = read_file path in
  (* Simulate a write that died mid-line. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "A 12 34";
  close_out oc;
  (match Journal.recover path with
  | Error e -> Alcotest.fail e
  | Ok r ->
    check_bool "truncated" true r.Journal.truncated;
    check_int "sound events kept" 4 (Array.length r.Journal.events));
  (* Recovery physically truncated the file back to the sound prefix. *)
  check_string "file truncated" sound (read_file path);
  rm_rf dir

(* --- trace file truncation tolerance (satellite c) --------------------- *)

let test_trace_truncated_tail () =
  let path = Filename.temp_file "ormp_trace" ".trace" in
  let oc = open_out path in
  output_string oc "ormp-trace 1\nA 1 4096 8 0\nA 2 41";
  close_out oc;
  let warned = ref 0 in
  let count = ref 0 in
  (match
     Ormp_trace.Trace_file.replay ~on_truncated:(fun _ -> incr warned) path (fun _ ->
         incr count)
   with
  | Ok n ->
    check_int "events delivered" 1 n;
    check_int "sink saw them" 1 !count;
    check_int "warned once" 1 !warned
  | Error e -> Alcotest.fail ("rejected torn trace: " ^ e));
  (* A malformed line that IS newline-terminated is still an error. *)
  let oc = open_out path in
  output_string oc "ormp-trace 1\nA x y z w\nA 1 4096 8 0\n";
  close_out oc;
  check_bool "mid-file corruption still fatal" true
    (Result.is_error (Ormp_trace.Trace_file.replay ~on_truncated:(fun _ -> ()) path (fun _ -> ())));
  Sys.remove path

(* --- snapshot codec ---------------------------------------------------- *)

let test_snapshot_roundtrip () =
  (* Build a session mid-flight by hand: run a workload partway through the
     profilers, snapshot, encode, decode, and compare re-encodings. *)
  let program = Micro.linked_list ~nodes:16 ~sweeps:2 () in
  let whomp = Ormp_whomp.Whomp.collector () in
  let leap = Ormp_leap.Leap.collector () in
  let rasg = Seq_c.create () in
  let on_tuple tu =
    Ormp_whomp.Whomp.collect whomp tu;
    Ormp_leap.Leap.collect leap tu
  in
  let cdc = Ormp_core.Cdc.create ~site_name:(Printf.sprintf "site%d") ~on_tuple () in
  let sink = Ormp_core.Cdc.sink cdc in
  let n = ref 0 in
  ignore
    (Ormp_vm.Runner.run program (fun ev ->
         (match ev with
         | Event.Access { addr; _ } -> Seq_c.push rasg addr
         | _ -> ());
         sink ev;
         incr n));
  let dims =
    match Ormp_whomp.Whomp.collector_dims whomp with
    | [ (_, a); (_, b); (_, c); (_, d) ] -> (a, b, c, d)
    | _ -> Alcotest.fail "not four dims"
  in
  let snap =
    {
      Snapshot.position = !n;
      checkpoint = 3;
      journal_crc = 12345;
      rotations = 1;
      epochs =
        [
          {
            Snapshot.ep_index = 1;
            ep_dim = "instr";
            ep_file = "epoch-1-instr";
            ep_from = 0;
            ep_to = 100;
            ep_symbols = 42;
          };
        ];
      degradations = [ { Snapshot.dg_position = 7; dg_kind = "rotate"; dg_detail = "x" } ];
      cdc = Ormp_core.Cdc.state cdc;
      whomp = dims;
      rasg;
      leap = Ormp_leap.Leap.live leap;
    }
  in
  let sexp = Snapshot.to_sexp snap in
  match Snapshot.of_sexp sexp with
  | Error e -> Alcotest.fail e
  | Ok snap2 ->
    (* Structural equality via re-encoding: the decoded snapshot must
       serialize to the identical sexp. *)
    check_string "re-encoding identical"
      (Ormp_util.Sexp.to_string sexp)
      (Ormp_util.Sexp.to_string (Snapshot.to_sexp snap2));
    check_int "position" snap.Snapshot.position snap2.Snapshot.position;
    check_int "journal_crc" snap.Snapshot.journal_crc snap2.Snapshot.journal_crc

let test_snapshot_seal_detects_corruption () =
  let dir = tmpdir () in
  let path = Filename.concat dir "snap" in
  let snap =
    {
      Snapshot.position = 0;
      checkpoint = 0;
      journal_crc = 0;
      rotations = 0;
      epochs = [];
      degradations = [];
      cdc =
        Ormp_core.Cdc.state
          (Ormp_core.Cdc.create ~site_name:string_of_int ~on_tuple:(fun _ -> ()) ());
      whomp = (Seq_c.create (), Seq_c.create (), Seq_c.create (), Seq_c.create ());
      rasg = Seq_c.create ();
      leap = Ormp_leap.Leap.live (Ormp_leap.Leap.collector ());
    }
  in
  Snapshot.save path snap;
  check_bool "valid snapshot loads" true (Result.is_ok (Snapshot.load path));
  (* Truncate: the CRC seal must reject it. *)
  let data = read_file path in
  let oc = open_out_bin path in
  output_string oc (String.sub data 0 (String.length data / 2));
  close_out oc;
  check_bool "truncated snapshot rejected" true (Result.is_error (Snapshot.load path));
  rm_rf dir

(* --- qcheck round-trips (satellite d) ----------------------------------- *)

let prop_sequitur_of_rules =
  QCheck.Test.make ~name:"sequitur rules round-trip" ~count:60
    QCheck.(list_of_size Gen.(int_range 0 200) (int_range 0 12))
    (fun syms ->
      let g = Seq_c.create () in
      List.iter (Seq_c.push g) syms;
      match Seq_c.of_rules (Seq_c.rules g) with
      | Error e -> QCheck.Test.fail_report e
      | Ok g2 ->
        Seq_c.rules g = Seq_c.rules g2
        && Seq_c.expand g = Seq_c.expand g2
        && Seq_c.grammar_size g = Seq_c.grammar_size g2)

let prop_compressor_state_resume =
  (* Splitting a point stream at an arbitrary index and crossing the split
     through state/of_state must equal the unsplit compressor — including
     the open descriptor and the discard summary. *)
  QCheck.Test.make ~name:"compressor state resume = uninterrupted" ~count:60
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 120) (pair (int_range 0 6) (int_range 0 40)))
        (int_range 0 119))
    (fun (points, cut) ->
      let cut = cut mod max 1 (List.length points) in
      let feed c pts = List.iter (fun (a, b) -> ignore (C.add c [| a; b |])) pts in
      let whole = C.create ~budget:3 ~dims:2 () in
      feed whole points;
      let first = C.create ~budget:3 ~dims:2 () in
      let rec split i = function
        | [] -> []
        | rest when i = cut -> rest
        | p :: rest ->
          ignore (C.add first [| fst p; snd p |]);
          split (i + 1) rest
      in
      let tail = split 0 points in
      let resumed = C.of_state (C.state first) in
      feed resumed tail;
      C.parts whole = C.parts resumed && C.total whole = C.total resumed)

let prop_leap_live_roundtrip =
  QCheck.Test.make ~name:"leap live state survives snapshot codec" ~count:30
    QCheck.(list_of_size Gen.(int_range 0 80) (pair (int_range 0 3) (int_range 0 30)))
    (fun accesses ->
      let leap = Ormp_leap.Leap.collector ~budget:2 () in
      List.iteri
        (fun t (instr, off) ->
          Ormp_leap.Leap.collect leap
            {
              Ormp_core.Tuple.instr;
              group = instr mod 2;
              obj = 0;
              offset = off;
              time = t;
              is_store = false;
            })
        accesses;
      let snap =
        {
          Snapshot.position = List.length accesses;
          checkpoint = 1;
          journal_crc = 0;
          rotations = 0;
          epochs = [];
          degradations = [];
          cdc =
            Ormp_core.Cdc.state
              (Ormp_core.Cdc.create ~site_name:string_of_int ~on_tuple:(fun _ -> ()) ());
          whomp = (Seq_c.create (), Seq_c.create (), Seq_c.create (), Seq_c.create ());
          rasg = Seq_c.create ();
          leap = Ormp_leap.Leap.live leap;
        }
      in
      match Snapshot.of_sexp (Snapshot.to_sexp snap) with
      | Error e -> QCheck.Test.fail_report e
      | Ok snap2 ->
        Ormp_util.Sexp.to_string (Snapshot.to_sexp snap)
        = Ormp_util.Sexp.to_string (Snapshot.to_sexp snap2))

(* --- session run / resume ---------------------------------------------- *)

let session_options =
  { Session.default_options with checkpoint_every = 500; watch_every = 0 }

let profile_bytes dir =
  ( read_file (Filename.concat dir "whomp.profile"),
    read_file (Filename.concat dir "rasg.profile"),
    read_file (Filename.concat dir "leap.profile") )

let run_reference ~workload ~options =
  let dir = tmpdir () in
  match Session.run ~options ~dir ~workload () with
  | Error e -> Alcotest.fail e
  | Ok oc -> (dir, oc)

let test_session_run_basic () =
  let dir, oc = run_reference ~workload:"linked_list" ~options:session_options in
  check_bool "events flowed" true (oc.Session.oc_position > 0);
  check_bool "checkpoints written" true (oc.Session.oc_checkpoints > 0);
  check_bool "whomp profile exists" true (Sys.file_exists (Filename.concat dir "whomp.profile"));
  (* The session's WHOMP output equals the standalone profiler's. *)
  (match Ormp_persist.Whomp_io.load (Filename.concat dir "whomp.profile") with
  | Error e -> Alcotest.fail e
  | Ok p ->
    let direct =
      Ormp_whomp.Whomp.profile (Ormp_workloads.Micro.linked_list ())
    in
    check_int "same collected" direct.Ormp_whomp.Whomp.collected p.Ormp_whomp.Whomp.collected;
    check_int "same omsg" (Ormp_whomp.Whomp.omsg_size direct) (Ormp_whomp.Whomp.omsg_size p));
  (match Session.status ~dir with
  | Error e -> Alcotest.fail e
  | Ok st ->
    check_bool "complete" true st.Session.st_complete;
    check_string "workload" "linked_list" st.Session.st_workload);
  rm_rf dir

let test_kill_and_resume_byte_identity () =
  (* The tentpole acceptance: kill at EVERY checkpoint boundary in turn;
     each resumed session must produce byte-identical profiles. *)
  let workload = "linked_list" in
  let ref_dir, ref_oc = run_reference ~workload ~options:session_options in
  let ref_bytes = profile_bytes ref_dir in
  let total_checkpoints = ref_oc.Session.oc_position / session_options.Session.checkpoint_every in
  check_bool "enough checkpoints to be interesting" true (total_checkpoints >= 3);
  for k = 1 to total_checkpoints do
    let dir = tmpdir () in
    let io = Faults.Io.create { Faults.Io.none with kill_at_checkpoint = Some k } in
    (match Session.run ~io ~options:session_options ~dir ~workload () with
    | Ok _ -> Alcotest.failf "kill at checkpoint %d did not fire" k
    | Error e -> Alcotest.failf "unexpected session error: %s" e
    | exception Faults.Io.Killed _ -> ());
    check_bool
      (Printf.sprintf "no final profile after kill %d" k)
      false
      (Sys.file_exists (Filename.concat dir "whomp.profile"));
    (match Session.resume ~dir () with
    | Error e -> Alcotest.failf "resume after kill %d: %s" k e
    | Ok oc ->
      check_int
        (Printf.sprintf "resumed from checkpoint %d position" k)
        (k * session_options.Session.checkpoint_every)
        (Option.value ~default:(-1) oc.Session.oc_resumed_from);
      check_int
        (Printf.sprintf "same position (kill %d)" k)
        ref_oc.Session.oc_position oc.Session.oc_position);
    let w, r, l = profile_bytes dir in
    let rw, rr, rl = ref_bytes in
    check_bool (Printf.sprintf "whomp bytes (kill %d)" k) true (w = rw);
    check_bool (Printf.sprintf "rasg bytes (kill %d)" k) true (r = rr);
    check_bool (Printf.sprintf "leap bytes (kill %d)" k) true (l = rl);
    rm_rf dir
  done;
  rm_rf ref_dir

let test_resume_discards_corrupt_snapshot () =
  let workload = "linked_list" in
  let ref_dir, _ = run_reference ~workload ~options:session_options in
  let ref_bytes = profile_bytes ref_dir in
  let dir = tmpdir () in
  let io = Faults.Io.create { Faults.Io.none with kill_at_checkpoint = Some 3 } in
  (match Session.run ~io ~options:session_options ~dir ~workload () with
  | exception Faults.Io.Killed _ -> ()
  | _ -> Alcotest.fail "kill did not fire");
  (* Corrupt the newest snapshot: resume must fall back to the older one
     and still converge to identical bytes. *)
  let snap3 = Filename.concat dir "snapshot-3" in
  check_bool "snapshot 3 exists" true (Sys.file_exists snap3);
  let data = read_file snap3 in
  let oc = open_out_bin snap3 in
  output_string oc (String.sub data 0 (String.length data - 10));
  close_out oc;
  (match Session.resume ~dir () with
  | Error e -> Alcotest.fail e
  | Ok oc ->
    check_int "fell back to checkpoint 2" 1000
      (Option.value ~default:(-1) oc.Session.oc_resumed_from));
  check_bool "bytes still identical" true (profile_bytes dir = ref_bytes);
  rm_rf dir;
  rm_rf ref_dir

let test_session_degrades_on_journal_enospc () =
  let dir = tmpdir () in
  (* Fail the 100th journal write: the session must finish anyway, with
     journaling and checkpointing off and the degradation on record. *)
  let io = Faults.Io.create { Faults.Io.none with no_space = Some 100 } in
  (match Session.run ~io ~options:session_options ~dir ~workload:"linked_list" () with
  | Error e -> Alcotest.fail e
  | Ok oc ->
    check_bool "completed" true (Sys.file_exists (Filename.concat dir "whomp.profile"));
    check_bool "degradation recorded" true
      (List.exists
         (fun d -> d.Snapshot.dg_kind = "journal-off")
         oc.Session.oc_degradations));
  rm_rf dir

let test_session_rotation_epochs () =
  let dir = tmpdir () in
  let options =
    {
      Session.default_options with
      watch_every = 500;
      grammar_budget = 300;
      max_streams = 2;
    }
  in
  (match Session.run ~options ~dir ~workload:"matrix" () with
  | Error e -> Alcotest.fail e
  | Ok oc ->
    check_bool "rotated at least once" true (oc.Session.oc_rotations >= 1);
    check_int "five epoch files per rotation" (oc.Session.oc_rotations * 5)
      (List.length oc.Session.oc_epochs);
    List.iter
      (fun e ->
        let path = Filename.concat dir e.Snapshot.ep_file in
        check_bool ("epoch file " ^ e.Snapshot.ep_file) true (Sys.file_exists path);
        match Storage.load_sealed path with
        | Error err -> Alcotest.fail err
        | Ok _ -> ())
      oc.Session.oc_epochs;
    (* The LEAP stream cap must surface as dropped accounting in the final
       profile while keeping the collected invariant intact. *)
    match Ormp_persist.Leap_io.load (Filename.concat dir "leap.profile") with
    | Error e -> Alcotest.fail e
    | Ok p ->
      check_bool "streams were capped" true (p.Ormp_leap.Leap.dropped_streams > 0);
      match Ormp_check.Verify.leap_profile p with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("capped profile fails verification: " ^ e));
  rm_rf dir

(* --- supervisor and suite ---------------------------------------------- *)

let test_supervise_completed_and_failed () =
  (match Supervise.run (fun ~should_stop:_ -> 41 + 1) with
  | Supervise.Completed v -> check_int "value" 42 v
  | _ -> Alcotest.fail "did not complete");
  match
    Supervise.run ~retries:2 ~backoff_s:0.001 (fun ~should_stop:_ ->
        failwith "boom")
  with
  | Supervise.Failed f ->
    check_int "three attempts" 3 f.Supervise.attempts;
    check_bool "error preserved" true
      (String.length f.Supervise.error > 0
      && String.lowercase_ascii f.Supervise.error <> "")
  | _ -> Alcotest.fail "did not fail"

let test_supervise_timeout () =
  match
    Supervise.run ~timeout_s:0.2 ~retries:3 (fun ~should_stop ->
        while not (should_stop ()) do
          Unix.sleepf 0.005
        done;
        raise Supervise.Cancelled)
  with
  | Supervise.Timed_out t -> check_int "no retry on timeout" 1 t.attempts
  | _ -> Alcotest.fail "did not time out"

let test_suite_degraded () =
  (* One workload crash-injected, one hang-injected: the suite exits with a
     complete report, healthy workloads profiled alongside. *)
  let spec = Ormp_workloads.Registry.spec in
  let crash_name = (List.nth spec 0).Ormp_workloads.Registry.name in
  let hang_name = (List.nth spec 1).Ormp_workloads.Registry.name in
  let out_dir = tmpdir () in
  let report =
    Suite.run ~timeout_s:5.0 ~retries:1 ~backoff_s:0.001
      ~faults:[ (crash_name, Suite.Crash); (hang_name, Suite.Hang) ]
      ~out_dir ()
  in
  check_int "one failure" 1 report.Suite.rp_failed;
  check_int "one timeout" 1 report.Suite.rp_timed_out;
  check_int "rest completed" (List.length spec - 2) report.Suite.rp_completed;
  List.iter
    (fun e ->
      match (e.Suite.en_fault, e.Suite.en_outcome) with
      | Some Suite.Crash, Supervise.Failed f ->
        check_int "crash retried once" 2 f.Supervise.attempts;
        check_bool "injected crash named" true
          (String.length f.Supervise.error > 0)
      | Some Suite.Crash, _ -> Alcotest.fail "crash workload did not fail"
      | Some Suite.Hang, Supervise.Timed_out _ -> ()
      | Some Suite.Hang, _ -> Alcotest.fail "hang workload did not time out"
      | None, Supervise.Completed s ->
        check_bool "healthy profile saved" true
          (Sys.file_exists (Filename.concat out_dir (e.Suite.en_workload ^ ".whomp")));
        check_bool "collected something" true (s.Suite.sc_collected > 0)
      | None, _ -> Alcotest.failf "healthy workload %s did not complete" e.Suite.en_workload)
    report.Suite.rp_entries;
  (* The report serializes. *)
  let sexp = Suite.report_to_sexp report in
  check_bool "report nonempty" true (String.length (Ormp_util.Sexp.to_string sexp) > 0);
  rm_rf out_dir

(* --- runner crash flush (satellite b) ----------------------------------- *)

let test_runner_flushes_on_crash () =
  let seen = ref 0 in
  let batch =
    Ormp_trace.Batch.create
      ~on_chunk:(fun c -> seen := !seen + c.Ormp_trace.Batch.len)
      ~on_event:(fun _ -> incr seen)
      ()
  in
  let program = Faults.crashing (Micro.array_stride ~elems:64 ~sweeps:1 ()) in
  (match Ormp_vm.Runner.run_batched program batch with
  | _ -> Alcotest.fail "crash did not propagate"
  | exception Faults.Injected_crash _ -> ());
  (* Events buffered before the crash were flushed, not lost. *)
  check_bool "buffered events delivered" true (!seen > 64)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ormp_session"
    [
      ( "crc32",
        [ tc "vectors" test_crc32_vectors ] );
      ( "storage",
        [
          tc "seal/unseal" test_seal_unseal;
          tc "atomic write under faults" test_atomic_write_faults;
        ] );
      ( "journal",
        [
          tc "roundtrip + resume append" test_journal_roundtrip;
          tc "torn tail truncation" test_journal_torn_tail;
        ] );
      ( "trace",
        [ tc "truncated trailing record tolerated" test_trace_truncated_tail ] );
      ( "snapshot",
        [
          tc "roundtrip" test_snapshot_roundtrip;
          tc "seal detects corruption" test_snapshot_seal_detects_corruption;
          QCheck_alcotest.to_alcotest prop_sequitur_of_rules;
          QCheck_alcotest.to_alcotest prop_compressor_state_resume;
          QCheck_alcotest.to_alcotest prop_leap_live_roundtrip;
        ] );
      ( "session",
        [
          tc "run writes profiles and report" test_session_run_basic;
          tc "kill + resume is byte-identical at every checkpoint"
            test_kill_and_resume_byte_identity;
          tc "resume survives a corrupt newest snapshot" test_resume_discards_corrupt_snapshot;
          tc "journal ENOSPC degrades gracefully" test_session_degrades_on_journal_enospc;
          tc "watchdog rotates epochs and caps streams" test_session_rotation_epochs;
        ] );
      ( "supervise",
        [
          tc "completed and failed" test_supervise_completed_and_failed;
          tc "timeout" test_supervise_timeout;
          tc "runner flushes batch on crash" test_runner_flushes_on_crash;
          tc "degraded suite" test_suite_degraded;
        ] );
    ]
