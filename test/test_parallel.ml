(* Pipeline-parallel SCC: the compressor domains behind the SPSC rings
   must produce profiles byte-identical to the serial path — for every
   workload, ring capacity (including the degenerate 1), and job count —
   and a parallel session killed mid-run must resume to the same bytes. *)

module Whomp = Ormp_whomp.Whomp
module Leap = Ormp_leap.Leap
module Par_scc = Ormp_whomp.Par_scc
module Par_leap = Ormp_leap.Par_leap
module Equiv = Ormp_check.Equiv
module Session = Ormp_session.Session
module Micro = Ormp_workloads.Micro
module Faults = Ormp_workloads.Faults
module Seq_c = Ormp_sequitur.Sequitur

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tmpdir () = Filename.temp_file "ormp_parallel" "" |> fun f ->
  Sys.remove f;
  Unix.mkdir f 0o755;
  f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let read_file path = In_channel.with_open_bin path In_channel.input_all

let profile_bytes dir =
  ( read_file (Filename.concat dir "whomp.profile"),
    read_file (Filename.concat dir "rasg.profile"),
    read_file (Filename.concat dir "leap.profile") )

(* --- WHOMP: parallel = serial over every micro workload ---------------- *)

let test_whomp_parallel_equiv () =
  List.iter
    (fun (name, prog) ->
      let serial = Whomp.profile prog in
      List.iter
        (fun (ring_capacity, jobs) ->
          let par = Par_scc.profile ~ring_capacity ~jobs prog in
          match Equiv.whomp serial par with
          | Ok () -> ()
          | Error e ->
            Alcotest.failf "%s (jobs %d, ring %d): %s" name jobs ring_capacity e)
        [ (1, 2); (1, 5); (8, 5) ])
    Micro.all

(* --- LEAP: parallel = serial, including a capacity-1 ring --------------- *)

let test_leap_parallel_equiv () =
  List.iter
    (fun (name, prog) ->
      let serial = Leap.profile prog in
      List.iter
        (fun (ring_capacity, jobs) ->
          let par = Par_leap.profile ~ring_capacity ~jobs prog in
          match Equiv.leap serial par with
          | Ok () -> ()
          | Error e ->
            Alcotest.failf "%s (jobs %d, ring %d): %s" name jobs ring_capacity e)
        [ (1, 3); (1, 6); (4, 6) ])
    Micro.all

(* --- adaptive chunking: tiny stages against capacity-1 rings ------------ *)

let test_adaptive_chunking_equiv () =
  (* stage_capacity 3 over a capacity-1 ring keeps the consumer rings
     persistently full, so the occupancy-driven chunk growth engages and
     ring waits fall into the exponential-backoff path. Whatever targets
     the stages settle on, each slot's grammar must equal a serial push
     of the same stream. Half the input goes in symbol-by-symbol, half
     through the lane (push_batch) path, in odd-sized spans that never
     line up with a stage boundary. *)
  let streams =
    Array.init 3 (fun s -> Array.init 4097 (fun i -> i * (s + 7) mod 19))
  in
  let slots = Array.init 3 (fun _ -> Seq_c.create ()) in
  let p =
    Par_scc.pool ~ring_capacity:1 ~stage_capacity:3 ~name:"test.adaptive"
      ~workers:3 slots
  in
  let half = Array.length streams.(0) / 2 in
  for i = 0 to half - 1 do
    for s = 0 to 2 do
      Par_scc.pool_stage p ~slot:s streams.(s).(i)
    done
  done;
  for s = 0 to 2 do
    let off = ref half in
    let len = Array.length streams.(s) in
    while !off < len do
      let span = min 37 (len - !off) in
      let lane = Array.sub streams.(s) !off span in
      Par_scc.pool_stage_lane p ~slot:s lane span;
      off := !off + span
    done
  done;
  Par_scc.pool_drain p;
  Par_scc.pool_shutdown p;
  Array.iteri
    (fun s stream ->
      let g = Seq_c.create () in
      Array.iter (Seq_c.push g) stream;
      check_bool (Printf.sprintf "slot %d grammar" s) true
        (Seq_c.rules (Par_scc.pool_get p s) = Seq_c.rules g))
    streams

let test_leap_budget_parallel_equiv () =
  (* The LMAD budget kicks in per stream; sharding must not change where. *)
  let prog = Micro.hash_probe ~buckets:512 ~ops:2048 () in
  let serial = Leap.profile ~budget:2 prog in
  let par = Par_leap.profile ~budget:2 ~jobs:4 prog in
  match Equiv.leap serial par with Ok () -> () | Error e -> Alcotest.fail e

(* --- property: random workloads x ring capacities x job counts ---------- *)

let prop_parallel_equals_serial =
  QCheck.Test.make ~name:"parallel whomp+leap = serial (random workloads)"
    ~count:20
    QCheck.(
      quad (int_range 4 48) (int_range 100 2000) (int_range 1 8) (int_range 2 6))
    (fun (live, ops, ring_capacity, jobs) ->
      let prog = Micro.churn ~live ~ops () in
      (match Equiv.whomp (Whomp.profile prog) (Par_scc.profile ~ring_capacity ~jobs prog) with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_report e);
      (match Equiv.leap (Leap.profile prog) (Par_leap.profile ~ring_capacity ~jobs prog) with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_report e);
      true)

(* --- sessions: parallel run = serial run, files and all ------------------ *)

let session_options =
  { Session.default_options with checkpoint_every = 500; watch_every = 0 }

let rotating_options =
  (* Small budget so the watchdog actually rotates grammars mid-run: the
     quiesce barrier must hand the rotation consistent frozen state. *)
  { Session.default_options with
    checkpoint_every = 500;
    watch_every = 200;
    grammar_budget = 400;
  }

let run_session ?io ?jobs ~options ~workload () =
  let dir = tmpdir () in
  match Session.run ?io ?jobs ~options ~dir ~workload () with
  | Error e -> Alcotest.fail e
  | Ok oc -> (dir, oc)

let test_session_parallel_equiv () =
  let workload = "linked_list" in
  let ref_dir, ref_oc = run_session ~options:session_options ~workload () in
  let ref_bytes = profile_bytes ref_dir in
  List.iter
    (fun jobs ->
      let dir, oc = run_session ~jobs ~options:session_options ~workload () in
      check_int (Printf.sprintf "position (jobs %d)" jobs)
        ref_oc.Session.oc_position oc.Session.oc_position;
      check_bool (Printf.sprintf "profile bytes (jobs %d)" jobs) true
        (profile_bytes dir = ref_bytes);
      rm_rf dir)
    [ 2; 4; 8 ];
  rm_rf ref_dir

let test_session_parallel_rotation_equiv () =
  let workload = "linked_list" in
  let ref_dir, ref_oc = run_session ~options:rotating_options ~workload () in
  check_bool "reference actually rotated" true (ref_oc.Session.oc_rotations > 0);
  let ref_bytes = profile_bytes ref_dir in
  let ref_epochs =
    List.sort compare (List.filter (fun f ->
        String.length f >= 6 && String.sub f 0 6 = "epoch-")
      (Array.to_list (Sys.readdir ref_dir)))
  in
  let dir, oc = run_session ~jobs:4 ~options:rotating_options ~workload () in
  check_int "same rotations" ref_oc.Session.oc_rotations oc.Session.oc_rotations;
  check_bool "profile bytes" true (profile_bytes dir = ref_bytes);
  List.iter
    (fun epoch ->
      check_bool (Printf.sprintf "epoch file %s" epoch) true
        (read_file (Filename.concat dir epoch)
        = read_file (Filename.concat ref_dir epoch)))
    ref_epochs;
  rm_rf dir;
  rm_rf ref_dir

(* --- kill mid-run, resume in parallel ------------------------------------ *)

let test_parallel_kill_and_resume () =
  let workload = "linked_list" in
  let ref_dir, _ = run_session ~options:session_options ~workload () in
  let ref_bytes = profile_bytes ref_dir in
  (* (kill-run jobs, resume jobs): same, and crossed both ways — jobs is a
     per-process knob, not session identity. *)
  List.iter
    (fun (run_jobs, resume_jobs) ->
      let dir = tmpdir () in
      let io = Faults.Io.create { Faults.Io.none with kill_at_checkpoint = Some 2 } in
      (match Session.run ~io ~jobs:run_jobs ~options:session_options ~dir ~workload () with
      | Ok _ -> Alcotest.fail "kill did not fire"
      | Error e -> Alcotest.failf "unexpected session error: %s" e
      | exception Faults.Io.Killed _ -> ());
      check_bool "no final profile after kill" false
        (Sys.file_exists (Filename.concat dir "whomp.profile"));
      (match Session.resume ~jobs:resume_jobs ~dir () with
      | Error e -> Alcotest.failf "resume (jobs %d->%d): %s" run_jobs resume_jobs e
      | Ok oc ->
        check_int "resumed from checkpoint 2"
          (2 * session_options.Session.checkpoint_every)
          (Option.value ~default:(-1) oc.Session.oc_resumed_from));
      check_bool
        (Printf.sprintf "bytes after kill/resume (jobs %d->%d)" run_jobs resume_jobs)
        true
        (profile_bytes dir = ref_bytes);
      rm_rf dir)
    [ (4, 4); (4, 1); (1, 4) ];
  rm_rf ref_dir

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ormp_parallel"
    [
      ( "profilers",
        [
          tc "whomp parallel = serial (all micros)" test_whomp_parallel_equiv;
          tc "leap parallel = serial (all micros)" test_leap_parallel_equiv;
          tc "adaptive chunking over capacity-1 rings" test_adaptive_chunking_equiv;
          tc "leap budget under sharding" test_leap_budget_parallel_equiv;
          QCheck_alcotest.to_alcotest prop_parallel_equals_serial;
        ] );
      ( "sessions",
        [
          tc "parallel session = serial session" test_session_parallel_equiv;
          tc "rotation under quiesce barrier" test_session_parallel_rotation_equiv;
          tc "kill mid-run, resume in parallel" test_parallel_kill_and_resume;
        ] );
    ]
