open Ormp_interval
open Ormp_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok t =
  match Range_index.check_invariants t with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("invariants: " ^ msg)

let test_empty () =
  let t = Range_index.create () in
  check_int "cardinal" 0 (Range_index.cardinal t);
  check_bool "find" true (Range_index.find t 42 = None);
  check_bool "remove" false (Range_index.remove t ~base:42);
  ok t

let test_single_range () =
  let t = Range_index.create () in
  Range_index.insert t ~base:100 ~size:16 "obj";
  check_bool "below" true (Range_index.find t 99 = None);
  check_bool "at base" true (Range_index.find t 100 = Some (100, 16, "obj"));
  check_bool "inside" true (Range_index.find t 115 = Some (100, 16, "obj"));
  check_bool "at end (exclusive)" true (Range_index.find t 116 = None);
  ok t

let test_mem () =
  let t = Range_index.create () in
  Range_index.insert t ~base:10 ~size:5 ();
  check_bool "mem inside" true (Range_index.mem t 12);
  check_bool "mem outside" false (Range_index.mem t 15)

let test_adjacent_ranges () =
  let t = Range_index.create () in
  Range_index.insert t ~base:0 ~size:10 "a";
  Range_index.insert t ~base:10 ~size:10 "b";
  check_bool "end of a" true (Range_index.find t 9 = Some (0, 10, "a"));
  check_bool "start of b" true (Range_index.find t 10 = Some (10, 10, "b"));
  ok t

let test_overlap_rejected () =
  let t = Range_index.create () in
  Range_index.insert t ~base:100 ~size:16 ();
  let rejects base size =
    check_bool
      (Printf.sprintf "overlap [%d,%d)" base (base + size))
      true
      (try
         Range_index.insert t ~base ~size ();
         false
       with Invalid_argument _ -> true)
  in
  rejects 100 16;
  rejects 90 11;
  rejects 115 5;
  rejects 104 4;
  rejects 90 100;
  ok t

let test_size_positive () =
  let t = Range_index.create () in
  check_bool "zero size rejected" true
    (try
       Range_index.insert t ~base:0 ~size:0 ();
       false
     with Invalid_argument _ -> true)

let test_remove () =
  let t = Range_index.create () in
  Range_index.insert t ~base:0 ~size:10 "a";
  Range_index.insert t ~base:20 ~size:10 "b";
  check_bool "removed" true (Range_index.remove t ~base:0);
  check_bool "gone" true (Range_index.find t 5 = None);
  check_bool "other remains" true (Range_index.find t 25 = Some (20, 10, "b"));
  check_bool "remove non-base address fails" false (Range_index.remove t ~base:25);
  check_int "cardinal" 1 (Range_index.cardinal t);
  ok t

let test_reinsert_after_remove () =
  let t = Range_index.create () in
  Range_index.insert t ~base:0 ~size:10 "a";
  ignore (Range_index.remove t ~base:0);
  Range_index.insert t ~base:5 ~size:10 "b";
  check_bool "new mapping" true (Range_index.find t 7 = Some (5, 10, "b"));
  ok t

let test_iter_order () =
  let t = Range_index.create () in
  List.iter (fun b -> Range_index.insert t ~base:b ~size:2 b) [ 30; 10; 50; 20; 40 ];
  let bases = ref [] in
  Range_index.iter t (fun ~base ~size:_ _ -> bases := base :: !bases);
  Alcotest.(check (list int)) "in-order" [ 10; 20; 30; 40; 50 ] (List.rev !bases)

let test_max_live () =
  let t = Range_index.create () in
  Range_index.insert t ~base:0 ~size:1 ();
  Range_index.insert t ~base:10 ~size:1 ();
  ignore (Range_index.remove t ~base:0);
  Range_index.insert t ~base:20 ~size:1 ();
  check_int "high water" 2 (Range_index.max_live t);
  check_int "cardinal" 2 (Range_index.cardinal t)

let test_many_sequential () =
  let t = Range_index.create () in
  for i = 0 to 999 do
    Range_index.insert t ~base:(i * 16) ~size:16 i
  done;
  ok t;
  for i = 0 to 999 do
    match Range_index.find t ((i * 16) + 7) with
    | Some (_, _, v) -> check_int "payload" i v
    | None -> Alcotest.fail "missing range"
  done;
  for i = 0 to 999 do
    if i mod 2 = 0 then check_bool "removed" true (Range_index.remove t ~base:(i * 16))
  done;
  ok t;
  check_int "remaining" 500 (Range_index.cardinal t)

let test_nearest_queries () =
  let t = Range_index.create () in
  check_bool "below on empty" true (Range_index.find_nearest_below t 50 = None);
  check_bool "above on empty" true (Range_index.find_nearest_above t 50 = None);
  List.iter (fun b -> Range_index.insert t ~base:b ~size:8 b) [ 10; 40; 100 ];
  (* Below: greatest base <= addr, containment not required. *)
  check_bool "below between ranges" true
    (Range_index.find_nearest_below t 60 = Some (40, 8, 40));
  check_bool "below inside a range" true
    (Range_index.find_nearest_below t 43 = Some (40, 8, 40));
  check_bool "below at a base" true (Range_index.find_nearest_below t 40 = Some (40, 8, 40));
  check_bool "below everything" true (Range_index.find_nearest_below t 9 = None);
  check_bool "below past the top" true
    (Range_index.find_nearest_below t 10_000 = Some (100, 8, 100));
  (* Above: least base > addr, strictly. *)
  check_bool "above between ranges" true
    (Range_index.find_nearest_above t 60 = Some (100, 8, 100));
  check_bool "above at a base is strict" true
    (Range_index.find_nearest_above t 40 = Some (100, 8, 100));
  check_bool "above from below everything" true
    (Range_index.find_nearest_above t 0 = Some (10, 8, 10));
  check_bool "above past the top" true (Range_index.find_nearest_above t 100 = None);
  ok t

(* Nearest queries against the naive model under random churn. *)
let prop_nearest_model =
  QCheck.Test.make ~name:"nearest queries agree with naive model" ~count:300
    QCheck.(pair (int_range 1 1000) (int_range 1 60))
    (fun (seed, queries) ->
      let rng = Prng.create ~seed in
      let t = Range_index.create () in
      let model = ref [] in
      for _ = 1 to 60 do
        let base = Prng.int rng 50 * 10 in
        if Prng.chance rng 0.6 then begin
          if not (List.exists (fun (b, _) -> b < base + 8 && base < b + 8) !model) then begin
            Range_index.insert t ~base ~size:8 base;
            model := (base, 8) :: !model
          end
        end
        else if List.mem_assoc base !model then begin
          ignore (Range_index.remove t ~base);
          model := List.remove_assoc base !model
        end
      done;
      let below addr =
        List.filter (fun (b, _) -> b <= addr) !model
        |> List.fold_left (fun acc (b, s) ->
               match acc with Some (b', _, _) when b' >= b -> acc | _ -> Some (b, s, b))
             None
      and above addr =
        List.filter (fun (b, _) -> b > addr) !model
        |> List.fold_left (fun acc (b, s) ->
               match acc with Some (b', _, _) when b' <= b -> acc | _ -> Some (b, s, b))
             None
      in
      let agree = ref true in
      for _ = 1 to queries do
        let addr = Prng.int rng 600 in
        if Range_index.find_nearest_below t addr <> below addr then agree := false;
        if Range_index.find_nearest_above t addr <> above addr then agree := false
      done;
      !agree)

(* Model-based property test: the index must agree with a naive association
   list under a random schedule of inserts, removes and queries. *)
let prop_model =
  let gen = QCheck.(list (pair (int_range 0 3) (int_range 0 60))) in
  QCheck.Test.make ~name:"range index agrees with naive model" ~count:300 gen (fun ops ->
      let t = Range_index.create () in
      let model = ref [] in
      let overlaps b1 s1 (b2, s2, _) = b1 < b2 + s2 && b2 < b1 + s1 in
      let rng = Prng.create ~seed:1 in
      List.iter
        (fun (op, x) ->
          match op with
          | 0 | 1 ->
            let size = 1 + Prng.int rng 8 in
            if not (List.exists (overlaps x size) !model) then begin
              Range_index.insert t ~base:x ~size x;
              model := (x, size, x) :: !model
            end
            else (
              (* must reject *)
              try
                Range_index.insert t ~base:x ~size x;
                raise Exit
              with Invalid_argument _ -> ())
          | 2 ->
            let expected = List.exists (fun (b, _, _) -> b = x) !model in
            let got = Range_index.remove t ~base:x in
            if expected <> got then raise Exit;
            model := List.filter (fun (b, _, _) -> b <> x) !model
          | _ ->
            let expected =
              List.find_opt (fun (b, s, _) -> x >= b && x < b + s) !model
              |> Option.map (fun (b, s, v) -> (b, s, v))
            in
            if Range_index.find t x <> expected then raise Exit)
        ops;
      (match Range_index.check_invariants t with Ok () -> () | Error _ -> raise Exit);
      true)

let prop_balance =
  QCheck.Test.make ~name:"stays balanced under random churn" ~count:50
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let t = Range_index.create () in
      let live = Hashtbl.create 64 in
      for _ = 1 to 500 do
        if Prng.chance rng 0.7 || Hashtbl.length live = 0 then begin
          let base = Prng.int rng 100000 * 16 in
          if not (Hashtbl.mem live base) then begin
            Range_index.insert t ~base ~size:16 ();
            Hashtbl.replace live base ()
          end
        end
        else begin
          let keys = Hashtbl.fold (fun k () acc -> k :: acc) live [] in
          let k = List.nth keys (Prng.int rng (List.length keys)) in
          ignore (Range_index.remove t ~base:k);
          Hashtbl.remove live k
        end
      done;
      match Range_index.check_invariants t with Ok () -> true | Error _ -> false)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ormp_interval"
    [
      ( "range_index",
        [
          tc "empty" test_empty;
          tc "single range" test_single_range;
          tc "mem" test_mem;
          tc "adjacent ranges" test_adjacent_ranges;
          tc "overlap rejected" test_overlap_rejected;
          tc "size must be positive" test_size_positive;
          tc "remove" test_remove;
          tc "reinsert after remove" test_reinsert_after_remove;
          tc "iter order" test_iter_order;
          tc "max live" test_max_live;
          tc "many sequential" test_many_sequential;
          tc "nearest queries" test_nearest_queries;
          QCheck_alcotest.to_alcotest prop_nearest_model;
          QCheck_alcotest.to_alcotest prop_model;
          QCheck_alcotest.to_alcotest prop_balance;
        ] );
    ]
