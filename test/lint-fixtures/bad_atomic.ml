(* Seeded lint violations — this file is a fixture, never built. It must
   trip the atomic, bare-eprintf and hot-path-alloc rules, and must NOT
   trip them where a waiver or a comment/string context applies. *)

(* lint:hot-path *)

let flag = Atomic.make false (* finding: raw Atomic outside the seam *)

let spin () =
  while not (Atomic.get flag) do
    (* a comment mentioning Atomic.get must not count *)
    ()
  done

(* lint:allow atomic — waived on the next line, must not be reported *)
let waived = Atomic.make 0

let name = "Atomic.get in a string must not count"

let shout msg = Printf.eprintf "boom: %s\n%!" msg (* finding: bare-eprintf *)

let also_shout msg = prerr_endline msg (* finding: bare-eprintf *)

let label i = Printf.sprintf "hot-%d" i (* finding: hot-path-alloc *)

let twice xs = List.map (fun x -> x * 2) xs (* finding: hot-path-alloc *)
