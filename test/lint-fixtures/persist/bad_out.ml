(* Seeded lint violation: unsorted Hashtbl iteration on an output path.
   Fixture only, never built. *)

let dump tbl out =
  Hashtbl.iter (fun k v -> Printf.fprintf out "%d %d\n" k v) tbl
(* finding: hashtbl-order (iteration order is insertion-history dependent) *)

let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
(* finding: hashtbl-order *)

let sorted_keys tbl =
  List.sort compare
    (* lint:allow hashtbl-order — order erased by the sort, must not be reported *)
    (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])
