(* Seeded blocking-io violations — this file is a fixture, never built.
   Unbounded blocking calls must be reported everywhere except the
   server's deadline-aware I/O seam (see server/net_io.ml beside this
   file, which carries the same calls and must report nothing). *)

let wait_forever fd buf = Unix.read fd buf 0 4096 (* finding: blocking-io *)

let nap () = Unix.sleepf 0.25 (* finding: the sleep prefix matches sleepf too *)

let first_line ic = input_line ic (* finding: blocking-io *)

(* lint:allow blocking-io — startup-only read of a regular config file *)
let waived ic = input_line ic

let doc = "a string mentioning Unix.select must not count"

(* prose mentioning Unix.accept in a comment must not count either *)
