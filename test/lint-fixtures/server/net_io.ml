(* The I/O-seam exemption, as a fixture: any path ending in
   server/net_io.ml may use the raw blocking primitives without a
   waiver, because that file IS the deadline-aware wrapper every other
   module must call. The lint tests assert zero findings here even
   though every pattern of the blocking-io rule appears below. *)

let wait fds timeout = Unix.select fds [] [] timeout

let next_conn fd = Unix.accept fd

let dial fd addr = Unix.connect fd addr

let read_some fd buf = Unix.read fd buf 0 (Bytes.length buf)

let recv_some fd buf = Unix.recv fd buf 0 (Bytes.length buf) []

let sleep = Unix.sleepf

let line ic = input_line ic
