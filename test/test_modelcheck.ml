(* The model checker and the lint engine, unit-tested.

   The modelcheck side runs the fast litmus cases inline (the full suite,
   including the slower exhaustive cases, runs under `dune build
   @modelcheck`) plus two engine sanity checks that do not involve the
   transport at all: the checker must find a classic lost update, and
   must prove the atomic version of the same program.

   The lint side pins down exact finding counts on the seeded fixtures in
   lint-fixtures/ — including the lines that a waiver must silence.
   Repo-wide cleanliness is enforced by `dune build @lint`, which runs
   from the source tree. *)

module Mc = Ormp_modelcheck.Mc
module Litmus = Ormp_modelcheck.Litmus
module Lint = Ormp_check.Lint

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Engine sanity                                                       *)
(* ------------------------------------------------------------------ *)

let test_mc_finds_lost_update () =
  (* Two threads do a non-atomic read-modify-write each; some schedule
     loses one increment. The checker must find it — and the trace must
     replay as a printable schedule. *)
  let stats =
    Mc.check (fun () ->
        let c = Mc.Sched.Atomic.make ~name:"c" 0 in
        let bump () =
          let v = Mc.Sched.Atomic.get c in
          Mc.Sched.Atomic.set c (v + 1)
        in
        let h1 = Mc.Sched.spawn bump in
        let h2 = Mc.Sched.spawn bump in
        Mc.Sched.join h1;
        Mc.Sched.join h2;
        Mc.check_that (Mc.Sched.Atomic.get c = 2) "no lost update")
  in
  check_bool "violation found" true (stats.Mc.violation <> None);
  check_bool "trace non-empty" true (stats.Mc.trace <> [])

let test_mc_proves_atomic_counter () =
  (* Same program with an atomic increment: every schedule sums to 2,
     and the reduced space must be explored to completion. *)
  let stats =
    Mc.check (fun () ->
        let c = Mc.Sched.Atomic.make ~name:"c" 0 in
        let h1 = Mc.Sched.spawn (fun () -> Mc.Sched.Atomic.incr c) in
        let h2 = Mc.Sched.spawn (fun () -> Mc.Sched.Atomic.incr c) in
        Mc.Sched.join h1;
        Mc.Sched.join h2;
        Mc.check_that (Mc.Sched.Atomic.get c = 2) "atomic increments commute")
  in
  check_bool "no violation" true (stats.Mc.violation = None);
  check_bool "exhausted the space" false stats.Mc.budget_exhausted;
  check_bool "explored something" true (stats.Mc.interleavings >= 1)

(* ------------------------------------------------------------------ *)
(* Litmus cases                                                        *)
(* ------------------------------------------------------------------ *)

let run name =
  match Litmus.find name with
  | Some c -> Litmus.run_case c
  | None -> Alcotest.failf "no such litmus: %s" name

let test_litmus_clean name () =
  let r = run name in
  check_bool (name ^ " ok") true r.Litmus.ok;
  check_bool (name ^ " no violation") true (r.Litmus.stats.Mc.violation = None)

let test_litmus_racy_consumer () =
  (* The seeded pre-PR-5 shutdown race: the checker must rediscover the
     lost message and produce a minimal replayable schedule. *)
  let r = run "worker_stop_no_drain_racy" in
  check_bool "ok (violation expected)" true r.Litmus.ok;
  check_bool "violation found" true (r.Litmus.stats.Mc.violation <> None);
  check_bool "schedule printed" true (List.length r.Litmus.stats.Mc.trace > 5)

let test_litmus_budget_cap () =
  (* An external cap below the case's own budget marks an exhaustive case
     not-ok: an exhausted budget proves nothing. *)
  let c =
    match Litmus.find "spsc_fifo_cap1_n2" with
    | Some c -> c
    | None -> Alcotest.fail "no such litmus"
  in
  let r = Litmus.run_case ~max_interleavings:3 c in
  check_bool "budget exhausted" true r.Litmus.stats.Mc.budget_exhausted;
  check_bool "not ok under cap" false r.Litmus.ok

(* ------------------------------------------------------------------ *)
(* Lint                                                                *)
(* ------------------------------------------------------------------ *)

(* dune runtest runs from _build/default/test; a bare `dune exec` runs
   from the repo root. Find the fixtures either way. *)
let fixtures =
  if Sys.file_exists "lint-fixtures" then "lint-fixtures" else "test/lint-fixtures"

let fixture name = Filename.concat fixtures name
let count_rule rule fs = List.length (List.filter (fun f -> f.Lint.rule = rule) fs)
let lines_of rule fs = List.filter_map (fun f -> if f.Lint.rule = rule then Some f.Lint.line else None) fs

let test_lint_atomic_fixture () =
  let fs = Lint.scan_file (fixture "bad_atomic.ml") in
  check_int "atomic errors" 2 (count_rule "atomic" fs);
  check_int "bare-eprintf errors" 2 (count_rule "bare-eprintf" fs);
  check_int "hot-path-alloc warnings" 2 (count_rule "hot-path-alloc" fs);
  check_int "total findings" 6 (List.length fs);
  (* line 16 is the waived Atomic.make; line 10's loop comment and line
     18's string literal mention Atomic.get and must not count *)
  check_bool "waived line absent" false (List.mem 16 (lines_of "atomic" fs));
  Alcotest.(check (list int)) "atomic finding lines" [ 7; 10 ] (lines_of "atomic" fs)

let test_lint_hashtbl_fixture () =
  let fs = Lint.scan_file (fixture "persist/bad_out.ml") in
  check_int "hashtbl-order errors" 2 (count_rule "hashtbl-order" fs);
  check_int "total findings" 2 (List.length fs);
  check_bool "waived fold absent" false (List.mem 14 (lines_of "hashtbl-order" fs))

let test_lint_hashtbl_rule_scoped_to_persist () =
  (* The same Hashtbl.fold outside a persist/ directory is fine: the rule
     targets output paths, not the data structure. *)
  let fs = Lint.scan_file (fixture "bad_atomic.ml") in
  check_int "no hashtbl findings outside persist" 0 (count_rule "hashtbl-order" fs)

let test_lint_blocking_fixture () =
  let fs = Lint.scan_file (fixture "bad_blocking.ml") in
  check_int "blocking-io errors" 3 (count_rule "blocking-io" fs);
  check_int "total findings" 3 (List.length fs);
  Alcotest.(check (list int)) "blocking-io finding lines" [ 6; 8; 10 ]
    (lines_of "blocking-io" fs);
  check_bool "waived line absent" false (List.mem 13 (lines_of "blocking-io" fs))

let test_lint_blocking_seam_exempt () =
  (* The same primitives inside a server/net_io.ml path are the seam
     itself — exempt by path, with no waiver comments needed. *)
  let fs = Lint.scan_file (fixture "server/net_io.ml") in
  check_int "seam findings" 0 (List.length fs)

let test_lint_scan_fixtures () =
  let r = Lint.scan [ fixtures ] in
  check_int "files" 4 r.Lint.files_scanned;
  check_int "errors" 9 (Lint.errors r);
  check_int "warnings" 2 (Lint.warnings r);
  check_int "notes" 0 (Lint.notes r);
  check_bool "not clean" false (Lint.clean r);
  (* severity-ranked: all 6 errors sort before the 2 warnings *)
  let sevs = List.map (fun f -> f.Lint.severity) r.Lint.findings in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      Ormp_check.Finding.severity_rank a <= Ormp_check.Finding.severity_rank b && sorted rest
    | _ -> true
  in
  check_bool "severity-ranked" true (sorted sevs)

let test_lint_sexp_shape () =
  let r = Lint.scan [ fixtures ] in
  let s = Ormp_util.Sexp.to_string (Lint.to_sexp r) in
  check_bool "tagged" true (String.length s > 0 && String.sub s 0 17 = "(ormp-lint-report");
  check_bool "mentions rule" true
    (let rec has i =
       i + 6 <= String.length s && (String.sub s i 6 = "atomic" || has (i + 1))
     in
     has 0)

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ormp_modelcheck"
    [
      ( "engine",
        [
          tc "finds lost update" test_mc_finds_lost_update;
          tc "proves atomic counter" test_mc_proves_atomic_counter;
        ] );
      ( "litmus",
        [
          tc "spsc fifo cap1" (test_litmus_clean "spsc_fifo_cap1_n2");
          tc "spsc length bounds" (test_litmus_clean "spsc_length_bounds");
          tc "worker stop-no-drain cap1" (test_litmus_clean "worker_stop_no_drain_cap1_n2");
          tc "worker failure containment" (test_litmus_clean "worker_failure_containment");
          tc "racy consumer race rediscovered" test_litmus_racy_consumer;
          tc "external budget cap" test_litmus_budget_cap;
        ] );
      ( "lint",
        [
          tc "atomic fixture counts" test_lint_atomic_fixture;
          tc "hashtbl fixture counts" test_lint_hashtbl_fixture;
          tc "hashtbl rule scoped to persist" test_lint_hashtbl_rule_scoped_to_persist;
          tc "blocking fixture counts" test_lint_blocking_fixture;
          tc "blocking rule exempts the net_io seam" test_lint_blocking_seam_exempt;
          tc "scan totals and ranking" test_lint_scan_fixtures;
          tc "sexp shape" test_lint_sexp_shape;
        ] );
    ]
