(* serve-smoke: the end-to-end recovery proof for `ormp serve`, run as
   real processes under `dune build @serve-smoke`.

   One daemon process serves 8 concurrent client sessions (three of them
   with injected wire faults); the daemon is killed with SIGKILL while
   the sessions stream, restarted, and every client must retry and
   resume to completion. The daemon is then drained with SIGTERM (must
   exit 0), and all eight session profiles must be byte-identical to a
   locally-computed serial reference. Prints one OK line; any failure
   exits nonzero with a diagnosis. *)

module Client = Ormp_server.Client
module Net_fault = Ormp_workloads.Faults.Net
module Spans = Ormp_telemetry.Spans
module Sexp = Ormp_util.Sexp
module J = Ormp_util.Json

let ormp = Sys.argv.(1)
let root = "smoke.serve"
let socket = Filename.concat root "ormp.sock"
let n_clients = 8

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("serve-smoke: " ^ m); exit 1) fmt

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let read_file path = In_channel.with_open_bin path In_channel.input_all

let profile_bytes dir =
  List.map
    (fun f -> read_file (Filename.concat dir f))
    [ "whomp.profile"; "rasg.profile"; "leap.profile" ]

let start_daemon () =
  let pid =
    Unix.create_process ormp
      [| ormp; "serve"; "--socket"; socket; "--root"; root; "--jobs"; "2"; "--quiet" |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  (* create_process returns before the child binds; wait for the socket *)
  let rec wait n =
    if Sys.file_exists socket then ()
    else if n = 0 then fail "daemon never bound %s" socket
    else begin
      Unix.sleepf 0.02;
      wait (n - 1)
    end
  in
  wait 250;
  pid

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  rm_rf root;
  Unix.mkdir root 0o755;
  let events =
    match Client.generate ~workload:"linked_list" ~seed:1 with
    | Ok (evs, _) -> evs
    | Error m -> fail "%s" m
  in
  let daemon = ref (start_daemon ()) in

  (* 8 concurrent sessions; the first three carry injected wire faults *)
  let plan i =
    match i with
    | 0 -> { Net_fault.none with Net_fault.torn_frame = Some 15 }
    | 1 -> { Net_fault.none with Net_fault.disconnect_before = Some 30 }
    | 2 -> { Net_fault.none with Net_fault.disconnect_before = Some 9; dup_retry = Some 400 }
    | _ -> Net_fault.none
  in
  let clients =
    Array.init n_clients (fun i ->
        Domain.spawn (fun () ->
            Client.run_session ~socket ~token:(Printf.sprintf "tok-%d" i)
              ~workload:"linked_list" ~events ~ack_every:4
              ~retry:
                {
                  Client.default_retry with
                  Client.attempts = 60;
                  backoff_s = 0.01;
                  backoff_max_s = 0.1;
                  seed = 0x5eed + i;
                }
              ~net:(Net_fault.create (plan i)) ~io_timeout_s:10.0 ()))
  in

  (* kill -9 mid-stream, then bring a fresh daemon up on the same root *)
  Unix.sleepf 0.05;
  Unix.kill !daemon Sys.sigkill;
  ignore (Unix.waitpid [] !daemon);
  Unix.sleepf 0.05;
  daemon := start_daemon ();

  let reconnects = ref 0 in
  Array.iteri
    (fun i d ->
      match Domain.join d with
      | Ok (st : Client.stats) -> reconnects := !reconnects + st.Client.st_reconnects
      | Error m -> fail "session tok-%d failed: %s" i m)
    clients;
  if !reconnects = 0 then fail "kill -9 produced no reconnects — the fault never landed";

  (* graceful drain must exit 0 *)
  Unix.kill !daemon Sys.sigterm;
  (match Unix.waitpid [] !daemon with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c -> fail "daemon exited %d after SIGTERM" c
  | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) -> fail "daemon died on signal %d" s);

  (* every session must be byte-identical to the serial reference *)
  let ref_dir = Filename.concat root "reference" in
  Client.reference ~dir:ref_dir ~events;
  let want = profile_bytes ref_dir in
  for i = 0 to n_clients - 1 do
    let dir = Filename.concat root (Filename.concat "sessions" (Printf.sprintf "tok-%d" i)) in
    if profile_bytes dir <> want then fail "session tok-%d profiles differ from reference" i
  done;
  (* the faults above leave flight bundles behind; each one must be a
     valid post-mortem (span-checked trace + loadable record) *)
  let flight_dir = Filename.concat root "flight" in
  let bundles = if Sys.file_exists flight_dir then Sys.readdir flight_dir else [||] in
  Array.iter
    (fun name ->
      let dir = Filename.concat flight_dir name in
      (match Result.map Spans.validate_json (J.of_string (read_file (Filename.concat dir "trace.json"))) with
      | Ok (Ok _) -> ()
      | Ok (Error e) -> fail "flight bundle %s: trace.json invalid: %s" name e
      | Error e -> fail "flight bundle %s: trace.json unparsable: %s" name e);
      match Sexp.load (Filename.concat dir "record.sexp") with
      | Ok _ -> ()
      | Error e -> fail "flight bundle %s: record.sexp: %s" name e)
    bundles;
  if Array.length bundles = 0 then
    fail "no flight bundle on disk despite wire faults and a kill -9 resume";

  Printf.printf
    "serve-smoke OK: %d sessions (3 wire-faulted) survived kill -9 + restart with %d \
     reconnects; all profiles byte-identical; %d flight bundles validated\n"
    n_clients !reconnects (Array.length bundles)
