(* watch-smoke: the end-to-end proof for ORMP-Watch, run as real
   processes under `dune build @watch-smoke`.

   One `ormp serve --stats-file` process serves three concurrent client
   sessions (one with injected wire faults). While they stream, an
   `ormp top SOCKET --once` subprocess must exit 0 and render the
   daemon/sessions tables from a live Stats frame. After the clients
   finish, the periodically-exported stats.json must parse as the
   version-1 snapshot, every flight bundle the faulted session caused
   must validate (trace.json through the span validator, record.sexp
   through the sexp loader), and a SIGTERM drain must exit 0. Prints one
   OK line; any failure exits nonzero with a diagnosis. *)

module Client = Ormp_server.Client
module Net_fault = Ormp_workloads.Faults.Net
module Spans = Ormp_telemetry.Spans
module J = Ormp_util.Json
module Sexp = Ormp_util.Sexp

let ormp = Sys.argv.(1)
let root = "smoke.watch"
let socket = Filename.concat root "ormp.sock"
let stats_file = Filename.concat root "stats.json"
let n_clients = 3

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("watch-smoke: " ^ m); exit 1) fmt

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let read_file path = In_channel.with_open_bin path In_channel.input_all

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let start_daemon () =
  let pid =
    Unix.create_process ormp
      [|
        ormp; "serve"; "--socket"; socket; "--root"; root; "--jobs"; "2";
        "--heartbeat-every"; "0.1"; "--stats-file"; stats_file; "--quiet";
      |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let rec wait n =
    if Sys.file_exists socket then ()
    else if n = 0 then fail "daemon never bound %s" socket
    else begin
      Unix.sleepf 0.02;
      wait (n - 1)
    end
  in
  wait 250;
  pid

(* Run a subprocess with stdout captured; returns (exit code, output). *)
let run_capture argv =
  let r, w = Unix.pipe () in
  let pid = Unix.create_process argv.(0) argv Unix.stdin w Unix.stderr in
  Unix.close w;
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    let n = Unix.read r chunk 0 4096 in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
    end
  in
  drain ();
  Unix.close r;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED c -> (c, Buffer.contents buf)
  | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) -> fail "%s died on signal %d" argv.(0) s

let validate_flight_bundles () =
  let flight_dir = Filename.concat root "flight" in
  let bundles =
    if Sys.file_exists flight_dir then Sys.readdir flight_dir else [||]
  in
  Array.iter
    (fun name ->
      let dir = Filename.concat flight_dir name in
      let trace = read_file (Filename.concat dir "trace.json") in
      (match Result.map Spans.validate_json (J.of_string trace) with
      | Ok (Ok _) -> ()
      | Ok (Error e) -> fail "flight bundle %s: trace.json invalid: %s" name e
      | Error e -> fail "flight bundle %s: trace.json unparsable: %s" name e);
      match Sexp.load (Filename.concat dir "record.sexp") with
      | Ok s -> (
        match Sexp.assoc "reason" s with
        | Ok _ -> ()
        | Error e -> fail "flight bundle %s: record.sexp has no reason: %s" name e)
      | Error e -> fail "flight bundle %s: record.sexp: %s" name e)
    bundles;
  Array.length bundles

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  rm_rf root;
  Unix.mkdir root 0o755;
  let events =
    match Client.generate ~workload:"linked_list" ~seed:1 with
    | Ok (evs, _) -> evs
    | Error m -> fail "%s" m
  in
  let daemon = start_daemon () in

  (* three concurrent sessions; the first one suffers torn frames, so it
     must reconnect — and every reconnect dumps a resume flight bundle *)
  let plan i =
    if i = 0 then { Net_fault.none with Net_fault.torn_frame = Some 11 }
    else Net_fault.none
  in
  let clients =
    Array.init n_clients (fun i ->
        Domain.spawn (fun () ->
            Client.run_session ~socket ~token:(Printf.sprintf "w-%d" i)
              ~workload:"linked_list" ~events ~ack_every:4
              ~retry:
                {
                  Client.default_retry with
                  Client.attempts = 60;
                  backoff_s = 0.01;
                  backoff_max_s = 0.1;
                  seed = 0x7a7c + i;
                }
              ~net:(Net_fault.create (plan i)) ~io_timeout_s:10.0 ()))
  in

  (* one-shot top against the live daemon, while the clients stream *)
  let top_code, top_out = run_capture [| ormp; "top"; socket; "--once" |] in
  if top_code <> 0 then fail "ormp top --once exited %d:\n%s" top_code top_out;
  List.iter
    (fun needle ->
      if not (contains top_out needle) then
        fail "ormp top output is missing %S:\n%s" needle top_out)
    [ "daemon"; "sessions"; "events/s"; "registry" ];

  Array.iteri
    (fun i d ->
      match Domain.join d with
      | Ok (st : Client.stats) ->
        if i = 0 && st.Client.st_reconnects = 0 then
          fail "the torn-frame fault never forced a reconnect"
      | Error m -> fail "session w-%d failed: %s" i m)
    clients;

  (* the periodic export lands at heartbeat cadence; give it a moment *)
  let rec wait_stats n =
    if Sys.file_exists stats_file then ()
    else if n = 0 then fail "%s never appeared" stats_file
    else begin
      Unix.sleepf 0.05;
      wait_stats (n - 1)
    end
  in
  wait_stats 100;
  (match J.of_string (read_file stats_file) with
  | Error e -> fail "stats.json does not parse: %s" e
  | Ok j -> (
    (match Option.bind (J.member "version" j) J.to_int with
    | Some 1 -> ()
    | v -> fail "stats.json version = %s" (match v with Some n -> string_of_int n | None -> "missing"));
    match J.member "daemon" j with
    | Some _ -> ()
    | None -> fail "stats.json has no daemon section"));

  let bundles = validate_flight_bundles () in
  if bundles = 0 then fail "no flight bundle on disk despite a faulted session";

  (* graceful drain must exit 0 *)
  Unix.kill daemon Sys.sigterm;
  (match Unix.waitpid [] daemon with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c -> fail "daemon exited %d after SIGTERM" c
  | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) -> fail "daemon died on signal %d" s);

  Printf.printf
    "watch-smoke OK: ormp top rendered a live snapshot, stats.json exported v1, %d \
     flight bundle(s) validated, drain exited 0\n"
    bundles
