open Ormp_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Sexp                                                                *)
(* ------------------------------------------------------------------ *)

let roundtrip t =
  match Sexp.of_string (Sexp.to_string t) with
  | Ok t' -> Alcotest.(check string) "roundtrip" (Sexp.to_string t) (Sexp.to_string t')
  | Error msg -> Alcotest.fail ("parse: " ^ msg)

let test_sexp_atoms () =
  roundtrip (Sexp.atom "hello");
  roundtrip (Sexp.int (-42));
  roundtrip (Sexp.atom "with space");
  roundtrip (Sexp.atom "quote\"and\\slash");
  roundtrip (Sexp.atom "");
  roundtrip (Sexp.atom "line\nbreak")

let test_sexp_lists () =
  roundtrip (Sexp.list []);
  roundtrip (Sexp.list [ Sexp.int 1; Sexp.list [ Sexp.atom "a"; Sexp.int 2 ]; Sexp.atom "b" ]);
  roundtrip (Sexp.field "name" [ Sexp.int 1; Sexp.int 2 ])

let test_sexp_parse_errors () =
  let fails s = match Sexp.of_string s with Ok _ -> false | Error _ -> true in
  check_bool "unterminated list" true (fails "(a b");
  check_bool "stray paren" true (fails ")");
  check_bool "trailing garbage" true (fails "(a) b");
  check_bool "unterminated string" true (fails "\"abc");
  check_bool "empty input" true (fails "   ")

let test_sexp_comments_and_ws () =
  match Sexp.of_string "  ; header comment\n (a ; inline\n b)  " with
  | Ok t -> Alcotest.(check string) "parsed" "(a b)" (Sexp.to_string t)
  | Error msg -> Alcotest.fail msg

let test_sexp_accessors () =
  let t = Sexp.list [ Sexp.field "x" [ Sexp.int 7 ]; Sexp.field "y" [ Sexp.atom "z" ] ] in
  (match Sexp.assoc "x" t with
  | Ok [ v ] -> check_int "field x" 7 (Result.get_ok (Sexp.as_int v))
  | _ -> Alcotest.fail "assoc x");
  check_bool "missing field" true (Result.is_error (Sexp.assoc "zz" t));
  check_bool "as_int rejects list" true (Result.is_error (Sexp.as_int (Sexp.list [])));
  check_bool "as_atom rejects list" true (Result.is_error (Sexp.as_atom (Sexp.list [])));
  check_bool "as_list rejects atom" true (Result.is_error (Sexp.as_list (Sexp.atom "a")))

let test_sexp_file_io () =
  let path = Filename.temp_file "ormp_sexp" ".sexp" in
  let t = Sexp.field "root" [ Sexp.int 1; Sexp.list [ Sexp.atom "nested"; Sexp.int 2 ] ] in
  Sexp.save path t;
  (match Sexp.load path with
  | Ok t' -> Alcotest.(check string) "file roundtrip" (Sexp.to_string t) (Sexp.to_string t')
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

let prop_sexp_roundtrip =
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          if n <= 0 then map (fun i -> Sexp.int i) int
          else
            frequency
              [
                (2, map (fun i -> Sexp.int i) int);
                (2, map (fun s -> Sexp.atom s) (string_size (int_range 0 8)));
                (1, map (fun l -> Sexp.list l) (list_size (int_range 0 4) (self (n / 2))));
              ]))
  in
  QCheck.Test.make ~name:"sexp print/parse roundtrip" ~count:500
    (QCheck.make ~print:Sexp.to_string gen)
    (fun t ->
      match Sexp.of_string (Sexp.to_string t) with
      | Ok t' -> Sexp.to_string t = Sexp.to_string t'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* LEAP profile round-trip                                             *)
(* ------------------------------------------------------------------ *)

let leap_profile program = Ormp_leap.Leap.profile program

let same_deps p q =
  Ormp_leap.Mdf.compute p = Ormp_leap.Mdf.compute q
  && Ormp_leap.Strides.strongly_strided p = Ormp_leap.Strides.strongly_strided q

let test_leap_roundtrip_regular () =
  let p = leap_profile (Ormp_workloads.Micro.array_stride ~elems:256 ~sweeps:4 ()) in
  let path = Filename.temp_file "ormp_leap" ".ormp" in
  Ormp_persist.Leap_io.save path p;
  (match Ormp_persist.Leap_io.load path with
  | Error msg -> Alcotest.fail msg
  | Ok q ->
    check_int "collected" p.Ormp_leap.Leap.collected q.Ormp_leap.Leap.collected;
    check_int "wild" p.Ormp_leap.Leap.wild q.Ormp_leap.Leap.wild;
    check_int "streams" (List.length p.Ormp_leap.Leap.streams)
      (List.length q.Ormp_leap.Leap.streams);
    check_bool "loads/stores preserved" true
      (Ormp_leap.Leap.loads p = Ormp_leap.Leap.loads q
      && Ormp_leap.Leap.stores p = Ormp_leap.Leap.stores q);
    check_bool "post-processors agree" true (same_deps p q);
    Alcotest.(check (float 1e-9))
      "capture stats preserved"
      (Ormp_leap.Leap.accesses_captured p)
      (Ormp_leap.Leap.accesses_captured q));
  Sys.remove path

let test_leap_roundtrip_lossy () =
  (* hash_probe overflows budgets: summaries and dspans must survive. *)
  let p = leap_profile (Ormp_workloads.Micro.hash_probe ~buckets:512 ~ops:4096 ()) in
  let path = Filename.temp_file "ormp_leap" ".ormp" in
  Ormp_persist.Leap_io.save path p;
  (match Ormp_persist.Leap_io.load path with
  | Error msg -> Alcotest.fail msg
  | Ok q ->
    check_bool "post-processors agree" true (same_deps p q);
    Alcotest.(check (float 1e-9))
      "instructions captured preserved"
      (Ormp_leap.Leap.instructions_captured p)
      (Ormp_leap.Leap.instructions_captured q);
    check_int "byte size close" (Ormp_leap.Leap.byte_size p) (Ormp_leap.Leap.byte_size q));
  Sys.remove path

let test_leap_load_errors () =
  check_bool "missing file" true (Result.is_error (Ormp_persist.Leap_io.load "/nonexistent"));
  let path = Filename.temp_file "ormp_leap" ".ormp" in
  let oc = open_out path in
  output_string oc "(wrong-tag)";
  close_out oc;
  check_bool "wrong tag" true (Result.is_error (Ormp_persist.Leap_io.load path));
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Corruption paths: load must return Error, never raise               *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let with_tempfile f =
  let path = Filename.temp_file "ormp_corrupt" ".ormp" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1)
  in
  go 0

(* Rewrite the first "(field ...)" occurrence to "(field value)"; the
   saved formats keep scalar fields flat, so scanning to the next ')'
   is safe. *)
let replace_field field value s =
  match find_sub s ("(" ^ field) with
  | None -> Alcotest.failf "field %s not present in file" field
  | Some i ->
    let j = String.index_from s i ')' in
    String.sub s 0 i
    ^ Printf.sprintf "(%s %s" field value
    ^ String.sub s j (String.length s - j)

(* Every mutation of a valid profile file must come back as a clean
   [Error _] from load — a raised exception here would take down any
   tool that inspects untrusted profile files. *)
let corruption_cases load save =
  let errs name loader = check_bool name true (Result.is_error loader) in
  with_tempfile (fun path ->
      save path;
      let good = read_file path in
      (* Sanity: the untouched file still loads. *)
      check_bool "pristine file loads" true (Result.is_ok (load path));
      write_file path (String.sub good 0 (String.length good / 2));
      errs "truncated to half" (load path);
      write_file path (String.sub good 0 (String.length good - 2));
      errs "closing paren missing" (load path);
      write_file path (replace_field "collected" "banana" good);
      errs "non-numeric count" (load path);
      write_file path (replace_field "version" "99" good);
      errs "future version" (load path);
      write_file path "";
      errs "empty file" (load path))

let test_leap_corruption () =
  let p = leap_profile (Ormp_workloads.Micro.hash_probe ~buckets:128 ~ops:1024 ()) in
  corruption_cases Ormp_persist.Leap_io.load (fun path -> Ormp_persist.Leap_io.save path p)

let test_whomp_corruption () =
  let p = Ormp_whomp.Whomp.profile (Ormp_workloads.Micro.churn ~live:8 ~ops:600 ()) in
  corruption_cases Ormp_persist.Whomp_io.load (fun path -> Ormp_persist.Whomp_io.save path p)

(* A grammar whose rules reference each other in a cycle would send a
   naive expander into an infinite loop; the loader must detect it. *)
let test_whomp_cyclic_grammar () =
  let p = Ormp_whomp.Whomp.profile (Ormp_workloads.Micro.matrix ~n:4 ()) in
  with_tempfile (fun path ->
      Ormp_persist.Whomp_io.save path p;
      let good = read_file path in
      (* Insert a self-reference at the head of the first start rule:
         "(rule 0 ..." becomes "(rule 0 R0 ...", so expanding R0 visits
         R0 again. *)
      let cyclic =
        match find_sub good "(rule 0" with
        | None -> Alcotest.fail "no start rule in file"
        | Some i ->
          String.sub good 0 (i + 7) ^ " R0" ^ String.sub good (i + 7) (String.length good - i - 7)
      in
      write_file path cyclic;
      check_bool "cyclic grammar rejected" true
        (Result.is_error (Ormp_persist.Whomp_io.load path)))

(* ------------------------------------------------------------------ *)
(* WHOMP profile round-trip                                            *)
(* ------------------------------------------------------------------ *)

let test_whomp_roundtrip () =
  let p = Ormp_whomp.Whomp.profile (Ormp_workloads.Micro.linked_list ~nodes:16 ~sweeps:4 ()) in
  let path = Filename.temp_file "ormp_whomp" ".ormp" in
  Ormp_persist.Whomp_io.save path p;
  (match Ormp_persist.Whomp_io.load path with
  | Error msg -> Alcotest.fail msg
  | Ok q ->
    check_int "collected" p.Ormp_whomp.Whomp.collected q.Ormp_whomp.Whomp.collected;
    check_int "grammar sizes identical" (Ormp_whomp.Whomp.omsg_size p)
      (Ormp_whomp.Whomp.omsg_size q);
    check_int "byte sizes identical" (Ormp_whomp.Whomp.omsg_bytes p)
      (Ormp_whomp.Whomp.omsg_bytes q);
    check_bool "streams identical" true
      (List.for_all2
         (fun (d1, g1) (d2, g2) ->
           d1 = d2 && Ormp_sequitur.Sequitur.expand g1 = Ormp_sequitur.Sequitur.expand g2)
         p.Ormp_whomp.Whomp.dims q.Ormp_whomp.Whomp.dims);
    check_int "lifetimes preserved"
      (List.length p.Ormp_whomp.Whomp.lifetimes)
      (List.length q.Ormp_whomp.Whomp.lifetimes);
    check_bool "groups preserved" true (p.Ormp_whomp.Whomp.groups = q.Ormp_whomp.Whomp.groups));
  Sys.remove path

let test_whomp_expand_after_load () =
  let program = Ormp_workloads.Micro.matrix ~n:6 () in
  let p = Ormp_whomp.Whomp.profile program in
  let path = Filename.temp_file "ormp_whomp" ".ormp" in
  Ormp_persist.Whomp_io.save path p;
  (match Ormp_persist.Whomp_io.load path with
  | Error msg -> Alcotest.fail msg
  | Ok q ->
    let tuples_p = Ormp_whomp.Whomp.expand p and tuples_q = Ormp_whomp.Whomp.expand q in
    check_bool "lossless through the file" true (tuples_p = tuples_q));
  Sys.remove path

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ormp_persist"
    [
      ( "sexp",
        [
          tc "atoms" test_sexp_atoms;
          tc "lists" test_sexp_lists;
          tc "parse errors" test_sexp_parse_errors;
          tc "comments and whitespace" test_sexp_comments_and_ws;
          tc "accessors" test_sexp_accessors;
          tc "file io" test_sexp_file_io;
          QCheck_alcotest.to_alcotest prop_sexp_roundtrip;
        ] );
      ( "leap",
        [
          tc "roundtrip (regular)" test_leap_roundtrip_regular;
          tc "roundtrip (lossy)" test_leap_roundtrip_lossy;
          tc "load errors" test_leap_load_errors;
          tc "corruption paths" test_leap_corruption;
        ] );
      ( "whomp",
        [
          tc "roundtrip" test_whomp_roundtrip;
          tc "expand after load" test_whomp_expand_after_load;
          tc "corruption paths" test_whomp_corruption;
          tc "cyclic grammar" test_whomp_cyclic_grammar;
        ] );
    ]
