open Ormp_util

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.next a <> Prng.next b then differs := true
  done;
  check_bool "different seeds differ" true !differs

let test_prng_int_bounds () =
  let t = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int t 13 in
    check_bool "in range" true (v >= 0 && v < 13)
  done

let test_prng_int_in_bounds () =
  let t = Prng.create ~seed:8 in
  for _ = 1 to 1000 do
    let v = Prng.int_in t (-5) 5 in
    check_bool "in range" true (v >= -5 && v <= 5)
  done

let test_prng_int_covers () =
  let t = Prng.create ~seed:9 in
  let seen = Array.make 6 false in
  for _ = 1 to 500 do
    seen.(Prng.int t 6) <- true
  done;
  Array.iteri (fun i s -> check_bool (Printf.sprintf "value %d seen" i) true s) seen

let test_prng_float_bounds () =
  let t = Prng.create ~seed:10 in
  for _ = 1 to 1000 do
    let v = Prng.float t 3.5 in
    check_bool "in range" true (v >= 0.0 && v < 3.5)
  done

let test_prng_chance_extremes () =
  let t = Prng.create ~seed:11 in
  for _ = 1 to 100 do
    check_bool "p=1 always true" true (Prng.chance t 1.0)
  done;
  for _ = 1 to 100 do
    check_bool "p=0 never true" false (Prng.chance t 0.0)
  done

let test_prng_shuffle_permutes () =
  let t = Prng.create ~seed:12 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_prng_split_independent () =
  let t = Prng.create ~seed:13 in
  let c1 = Prng.split t in
  let c2 = Prng.split t in
  check_bool "children differ" true (Prng.next c1 <> Prng.next c2)

let test_prng_copy () =
  let t = Prng.create ~seed:14 in
  ignore (Prng.next t);
  let c = Prng.copy t in
  Alcotest.(check int64) "copy continues identically" (Prng.next t) (Prng.next c)

let test_prng_geometric_mean () =
  let t = Prng.create ~seed:15 in
  let n = 20000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Prng.geometric t ~p:0.5
  done;
  let m = float_of_int !sum /. float_of_int n in
  check_bool "mean near 1.0" true (abs_float (m -. 1.0) < 0.1)

let test_prng_invalid_args () =
  let t = Prng.create ~seed:16 in
  Alcotest.check_raises "int 0" (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int t 0));
  Alcotest.check_raises "int_in inverted" (Invalid_argument "Prng.int_in: lo > hi") (fun () ->
      ignore (Prng.int_in t 3 2))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_mean () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "mean empty" 0.0 (Stats.mean []);
  check_float "mean_a" 2.5 (Stats.mean_a [| 1.0; 4.0 |])

let test_stats_stddev () =
  check_float "constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check_float "singleton" 0.0 (Stats.stddev [ 9.0 ]);
  check_float "known" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_stats_median () =
  check_float "odd" 3.0 (Stats.median [ 5.0; 1.0; 3.0 ]);
  check_float "even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  check_float "empty" 0.0 (Stats.median [])

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p50" 50.0 (Stats.percentile xs 50.0);
  check_float "p100" 100.0 (Stats.percentile xs 100.0);
  check_float "p1" 1.0 (Stats.percentile xs 1.0)

let test_stats_geomean () =
  check_float "geomean" 4.0 (Stats.geomean [ 2.0; 8.0 ]);
  check_float "geomean empty" 0.0 (Stats.geomean [])

let test_stats_gcd () =
  check_int "gcd" 6 (Stats.gcd 12 18);
  check_int "gcd with zero" 5 (Stats.gcd 0 5);
  check_int "gcd both zero" 0 (Stats.gcd 0 0);
  check_int "gcd negatives" 4 (Stats.gcd (-8) 12)

let test_stats_egcd () =
  let check_egcd a b =
    let g, x, y = Stats.egcd a b in
    check_int (Printf.sprintf "egcd %d %d gcd" a b) (Stats.gcd a b) g;
    check_int (Printf.sprintf "egcd %d %d bezout" a b) g ((a * x) + (b * y))
  in
  List.iter
    (fun (a, b) -> check_egcd a b)
    [ (12, 18); (18, 12); (1, 1); (0, 7); (7, 0); (-12, 18); (12, -18); (-5, -15); (17, 31) ]

let test_stats_divisions () =
  check_int "fdiv pos" 2 (Stats.fdiv 7 3);
  check_int "fdiv neg" (-3) (Stats.fdiv (-7) 3);
  check_int "cdiv pos" 3 (Stats.cdiv 7 3);
  check_int "cdiv neg" (-2) (Stats.cdiv (-7) 3);
  check_int "fdiv exact" (-2) (Stats.fdiv (-6) 3);
  check_int "cdiv exact" (-2) (Stats.cdiv (-6) 3)

let prop_fdiv_cdiv =
  QCheck.Test.make ~name:"fdiv/cdiv bracket the rational quotient" ~count:500
    QCheck.(pair (int_range (-10000) 10000) (int_range 1 100))
    (fun (a, b) ->
      let f = Stats.fdiv a b and c = Stats.cdiv a b in
      f * b <= a && a <= c * b && c - f <= 1)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_hist_uniform_buckets () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:5 in
  Histogram.add h 0.5;
  Histogram.add h 2.5;
  Histogram.add h 9.9;
  Alcotest.(check (array int)) "counts" [| 1; 1; 0; 0; 1 |] (Histogram.counts h);
  check_int "total" 3 (Histogram.total h)

let test_hist_clamping () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:2 in
  Histogram.add h (-100.0);
  Histogram.add h 100.0;
  Alcotest.(check (array int)) "clamped to edges" [| 1; 1 |] (Histogram.counts h)

let test_hist_centered_zero () =
  let h = Histogram.centered ~half_width:100.0 ~half_buckets:10 in
  check_int "zero bucket is center" 10 (Histogram.bucket_of h 0.0);
  Histogram.add h 0.0;
  check_int "center count" 1 (Histogram.counts h).(10)

let test_hist_centered_sides () =
  let h = Histogram.centered ~half_width:100.0 ~half_buckets:10 in
  check_int "small positive" 11 (Histogram.bucket_of h 5.0);
  check_int "exactly 10" 11 (Histogram.bucket_of h 10.0);
  check_int "just above 10" 12 (Histogram.bucket_of h 10.5);
  check_int "small negative" 9 (Histogram.bucket_of h (-5.0));
  check_int "-100 clamps to 0" 0 (Histogram.bucket_of h (-100.0));
  check_int "+100 clamps to last" 20 (Histogram.bucket_of h 100.0);
  check_int "overflow clamps" 20 (Histogram.bucket_of h 9999.0)

let test_hist_fractions () =
  let h = Histogram.create ~lo:0.0 ~hi:4.0 ~buckets:2 in
  Histogram.add_n h 1.0 3;
  Histogram.add h 3.0;
  let f = Histogram.fractions h in
  check_float "left" 0.75 f.(0);
  check_float "right" 0.25 f.(1)

let test_hist_fractions_empty () =
  let h = Histogram.create ~lo:0.0 ~hi:4.0 ~buckets:2 in
  Alcotest.(check (array (float 0.0))) "all zero" [| 0.0; 0.0 |] (Histogram.fractions h)

let test_hist_merge () =
  let a = Histogram.centered ~half_width:10.0 ~half_buckets:2 in
  let b = Histogram.centered ~half_width:10.0 ~half_buckets:2 in
  Histogram.add a 0.0;
  Histogram.add b 7.0;
  let m = Histogram.merge a b in
  check_int "total" 2 (Histogram.total m);
  check_int "center" 1 (Histogram.counts m).(2)

let test_hist_merge_mismatch () =
  let a = Histogram.centered ~half_width:10.0 ~half_buckets:2 in
  let b = Histogram.centered ~half_width:10.0 ~half_buckets:3 in
  check_bool "raises" true
    (try
       ignore (Histogram.merge a b);
       false
     with Invalid_argument _ -> true)

let test_hist_labels () =
  let h = Histogram.centered ~half_width:20.0 ~half_buckets:2 in
  let l = Histogram.labels h in
  Alcotest.(check string) "center label" "0" l.(2);
  Alcotest.(check string) "right label" "(0,10]" l.(3);
  Alcotest.(check string) "left label" "[-10,0)" l.(1)

let prop_hist_total =
  QCheck.Test.make ~name:"histogram total equals samples added" ~count:200
    QCheck.(list (float_range (-200.0) 200.0))
    (fun xs ->
      let h = Histogram.centered ~half_width:100.0 ~half_buckets:10 in
      List.iter (Histogram.add h) xs;
      Histogram.total h = List.length xs
      && Array.fold_left ( + ) 0 (Histogram.counts h) = List.length xs)

let test_hist_bucket_bounds_uniform () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:5 in
  let lo, hi = Histogram.bucket_bounds h 0 in
  check_float "first lo" 0.0 lo;
  check_float "first hi" 2.0 hi;
  let lo, hi = Histogram.bucket_bounds h 4 in
  check_float "last lo" 8.0 lo;
  check_float "last hi" 10.0 hi;
  check_bool "out of range raises" true
    (try
       ignore (Histogram.bucket_bounds h 5);
       false
     with Invalid_argument _ -> true)

(* The edge buckets of a centered layout: values exactly on a k*w
   boundary belong to the bucket whose upper bound they are (labels print
   "(lo,hi]" on the right side), ±half_width lands in the outermost
   buckets, and anything beyond clamps into them. bucket_bounds must
   agree with bucket_of on all of those. *)
let test_hist_centered_edge_bounds () =
  let h = Histogram.centered ~half_width:10.0 ~half_buckets:2 in
  let check_bounds name i (elo, ehi) =
    let lo, hi = Histogram.bucket_bounds h i in
    check_float (name ^ " lo") elo lo;
    check_float (name ^ " hi") ehi hi
  in
  check_bounds "leftmost" 0 (-10.0, -5.0);
  check_bounds "left" 1 (-5.0, 0.0);
  check_bounds "center" 2 (0.0, 0.0);
  check_bounds "right" 3 (0.0, 5.0);
  check_bounds "rightmost" 4 (5.0, 10.0);
  (* Exactly on the k*w boundaries. *)
  check_int "5.0 is bucket 3's upper bound" 3 (Histogram.bucket_of h 5.0);
  check_int "+half_width" 4 (Histogram.bucket_of h 10.0);
  check_int "-5.0" 1 (Histogram.bucket_of h (-5.0));
  check_int "-half_width" 0 (Histogram.bucket_of h (-10.0));
  (* Clamped overflow joins the edge buckets. *)
  check_int "overflow right" 4 (Histogram.bucket_of h 1e9);
  check_int "overflow left" 0 (Histogram.bucket_of h (-1e9))

let test_hist_quantile_empty () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:5 in
  check_bool "empty is nan" true (Float.is_nan (Histogram.quantile h 0.5))

let test_hist_quantile_interpolates () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:5 in
  Histogram.add_n h 1.0 100;
  (* All mass in [0,2): the quantile interpolates linearly inside it. *)
  check_float "p0" 0.0 (Histogram.quantile h 0.0);
  check_float "p50" 1.0 (Histogram.quantile h 0.5);
  check_float "p100" 2.0 (Histogram.quantile h 1.0);
  (* p clamps to [0,1]. *)
  check_float "p<0 clamps" 0.0 (Histogram.quantile h (-3.0));
  check_float "p>1 clamps" 2.0 (Histogram.quantile h 7.0)

let test_hist_quantile_across_buckets () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:5 in
  Histogram.add h 1.0;
  Histogram.add h 9.0;
  check_float "median exhausts first bucket" 2.0 (Histogram.quantile h 0.5);
  check_float "p75 inside last bucket" 9.0 (Histogram.quantile h 0.75)

let prop_hist_quantile_monotone =
  QCheck.Test.make ~name:"histogram quantile is monotone and in range" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_range 0.0 100.0)) (float_range 0.0 1.0))
    (fun (xs, p) ->
      let h = Histogram.create ~lo:0.0 ~hi:100.0 ~buckets:20 in
      List.iter (Histogram.add h) xs;
      let q = Histogram.quantile h p in
      let q' = Histogram.quantile h (Float.min 1.0 (p +. 0.25)) in
      q >= 0.0 && q <= 100.0 && q <= q')

(* ------------------------------------------------------------------ *)
(* Ascii                                                               *)
(* ------------------------------------------------------------------ *)

let test_ascii_table () =
  let s = Ascii.table ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ] in
  check_bool "contains header" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  check_int "line count" 6 (List.length lines);
  let widths = List.map String.length lines in
  List.iter (fun w -> check_int "uniform width" (List.hd widths) w) widths

let test_ascii_hbar () =
  Alcotest.(check string) "full" "##########" (Ascii.hbar ~width:10 1.0);
  Alcotest.(check string) "empty" "          " (Ascii.hbar ~width:10 0.0);
  Alcotest.(check string) "half" "#####     " (Ascii.hbar ~width:10 0.5);
  Alcotest.(check string) "clamped" "##########" (Ascii.hbar ~width:10 5.0)

let test_ascii_percent_ratio () =
  Alcotest.(check string) "percent" "12.3%" (Ascii.percent 0.123);
  Alcotest.(check string) "big ratio" "3539x" (Ascii.ratio 3539.0);
  Alcotest.(check string) "small ratio" "1.5x" (Ascii.ratio 1.5)

let test_ascii_bar_chart () =
  let s = Ascii.bar_chart ~width:10 ~labels:[| "x"; "yy" |] ~values:[| 1.0; 2.0 |] () in
  let lines = String.split_on_char '\n' s in
  check_int "two rows" 2 (List.length lines)

(* ------------------------------------------------------------------ *)
(* Bytesize                                                            *)
(* ------------------------------------------------------------------ *)

let test_varint_widths () =
  check_int "0" 1 (Bytesize.varint 0);
  check_int "63" 1 (Bytesize.varint 63);
  check_int "64" 2 (Bytesize.varint 64);
  check_int "-1" 1 (Bytesize.varint (-1));
  check_int "-64" 1 (Bytesize.varint (-64));
  check_int "-65" 2 (Bytesize.varint (-65));
  check_int "big" 5 (Bytesize.varint (1 lsl 33))

let test_varint_monotone () =
  let prev = ref 0 in
  for k = 0 to 40 do
    let w = Bytesize.varint (1 lsl k) in
    check_bool "non-decreasing" true (w >= !prev);
    prev := w
  done

let test_of_ints () =
  check_int "sum" (Bytesize.varint 1 + Bytesize.varint 1000) (Bytesize.of_ints [ 1; 1000 ]);
  check_int "empty" 0 (Bytesize.of_ints [])

let prop_varint_positive =
  QCheck.Test.make ~name:"varint always >= 1 and <= 10" ~count:500 QCheck.int (fun n ->
      let w = Bytesize.varint n in
      w >= 1 && w <= 10)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ormp_util"
    [
      ( "prng",
        [
          tc "deterministic" test_prng_deterministic;
          tc "seed sensitivity" test_prng_seed_sensitivity;
          tc "int bounds" test_prng_int_bounds;
          tc "int_in bounds" test_prng_int_in_bounds;
          tc "int covers range" test_prng_int_covers;
          tc "float bounds" test_prng_float_bounds;
          tc "chance extremes" test_prng_chance_extremes;
          tc "shuffle permutes" test_prng_shuffle_permutes;
          tc "split independent" test_prng_split_independent;
          tc "copy" test_prng_copy;
          tc "geometric mean" test_prng_geometric_mean;
          tc "invalid args" test_prng_invalid_args;
        ] );
      ( "stats",
        [
          tc "mean" test_stats_mean;
          tc "stddev" test_stats_stddev;
          tc "median" test_stats_median;
          tc "percentile" test_stats_percentile;
          tc "geomean" test_stats_geomean;
          tc "gcd" test_stats_gcd;
          tc "egcd" test_stats_egcd;
          tc "divisions" test_stats_divisions;
          QCheck_alcotest.to_alcotest prop_fdiv_cdiv;
        ] );
      ( "histogram",
        [
          tc "uniform buckets" test_hist_uniform_buckets;
          tc "clamping" test_hist_clamping;
          tc "centered zero" test_hist_centered_zero;
          tc "centered sides" test_hist_centered_sides;
          tc "fractions" test_hist_fractions;
          tc "fractions empty" test_hist_fractions_empty;
          tc "merge" test_hist_merge;
          tc "merge mismatch" test_hist_merge_mismatch;
          tc "labels" test_hist_labels;
          tc "bucket bounds uniform" test_hist_bucket_bounds_uniform;
          tc "centered edge bounds" test_hist_centered_edge_bounds;
          tc "quantile empty" test_hist_quantile_empty;
          tc "quantile interpolates" test_hist_quantile_interpolates;
          tc "quantile across buckets" test_hist_quantile_across_buckets;
          QCheck_alcotest.to_alcotest prop_hist_total;
          QCheck_alcotest.to_alcotest prop_hist_quantile_monotone;
        ] );
      ( "ascii",
        [
          tc "table" test_ascii_table;
          tc "hbar" test_ascii_hbar;
          tc "percent/ratio" test_ascii_percent_ratio;
          tc "bar chart" test_ascii_bar_chart;
        ] );
      ( "bytesize",
        [
          tc "varint widths" test_varint_widths;
          tc "varint monotone" test_varint_monotone;
          tc "of_ints" test_of_ints;
          QCheck_alcotest.to_alcotest prop_varint_positive;
        ] );
    ]
