(* Equivalence of the legacy per-event path and the batched fast path.

   The batched pipeline (Batch -> Cdc.batch -> Omc.translate_batch with the
   MRU translation cache) is a pure performance rework: it must produce
   byte-identical profiles to the per-event sinks. The workload is
   Micro.churn, which frees and re-allocates constantly — the hostile case
   for the MRU cache, where any missed invalidation would surface as a
   wrong (group, serial) in the profile. *)

open Ormp_vm

let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let churn = Ormp_workloads.Micro.churn ~live:24 ~ops:3000 ()
let site_name = Printf.sprintf "site%d"

(* Both paths get elapsed:0.0 so the serialized profiles are comparable
   byte for byte; wall time is the one field allowed to differ. *)

let whomp_pair () =
  let s, fin = Ormp_whomp.Whomp.sink ~site_name () in
  ignore (Runner.run churn s);
  let legacy = fin ~elapsed:0.0 in
  let b, finb = Ormp_whomp.Whomp.sink_batched ~site_name () in
  ignore (Runner.run_batched churn b);
  (legacy, finb ~elapsed:0.0)

let test_whomp_equivalence () =
  let legacy, batched = whomp_pair () in
  check_int "same collected" legacy.Ormp_whomp.Whomp.collected
    batched.Ormp_whomp.Whomp.collected;
  check_int "same wild" legacy.Ormp_whomp.Whomp.wild batched.Ormp_whomp.Whomp.wild;
  check_string "byte-identical WHOMP profile"
    (Ormp_util.Sexp.to_string (Ormp_persist.Whomp_io.to_sexp legacy))
    (Ormp_util.Sexp.to_string (Ormp_persist.Whomp_io.to_sexp batched))

let test_rasg_equivalence () =
  let s, fin = Ormp_whomp.Rasg.sink () in
  ignore (Runner.run churn s);
  let legacy = fin ~elapsed:0.0 in
  let b, finb = Ormp_whomp.Rasg.sink_batched () in
  ignore (Runner.run_batched churn b);
  let batched = finb ~elapsed:0.0 in
  check_int "same accesses" legacy.Ormp_whomp.Rasg.accesses batched.Ormp_whomp.Rasg.accesses;
  check_string "identical RASG grammar"
    (Format.asprintf "%a" Ormp_sequitur.Sequitur.pp legacy.Ormp_whomp.Rasg.grammar)
    (Format.asprintf "%a" Ormp_sequitur.Sequitur.pp batched.Ormp_whomp.Rasg.grammar)

let test_leap_equivalence () =
  let s, fin = Ormp_leap.Leap.sink ~site_name () in
  ignore (Runner.run churn s);
  let legacy = fin ~elapsed:0.0 in
  let b, finb = Ormp_leap.Leap.sink_batched ~site_name () in
  ignore (Runner.run_batched churn b);
  let batched = finb ~elapsed:0.0 in
  check_int "same collected" legacy.Ormp_leap.Leap.collected batched.Ormp_leap.Leap.collected;
  check_string "byte-identical LEAP profile"
    (Ormp_util.Sexp.to_string (Ormp_persist.Leap_io.to_sexp legacy))
    (Ormp_util.Sexp.to_string (Ormp_persist.Leap_io.to_sexp batched))

(* ------------------------------------------------------------------ *)
(* MRU cache invalidation: the stale-entry regression                  *)
(* ------------------------------------------------------------------ *)

(* Free an object an instruction has cached, then re-allocate a
   different-sized object at the same base (what every free-list
   allocator does). The cached lifetime is dead but its record still
   covers the address; a cache that skips the liveness check would
   answer with the dead object's (group, serial). *)
let test_stale_mru_invalidated () =
  let omc = Ormp_core.Omc.create ~site_name () in
  Ormp_core.Omc.on_alloc omc ~time:0 ~site:1 ~addr:1000 ~size:64 ~type_name:None;
  (match Ormp_core.Omc.translate_fast omc ~instr:0 1008 with
  | Some (g, s, off) ->
    check_int "first object group" 0 g;
    check_int "first object serial" 0 s;
    check_int "first object offset" 8 off
  | None -> Alcotest.fail "first translation missed");
  (* Hit once more so the MRU entry is warm (a way-0 hit). *)
  (match Ormp_core.Omc.translate_fast omc ~instr:0 1016 with
  | Some (_, _, off) -> check_int "warm hit offset" 16 off
  | None -> Alcotest.fail "warm hit missed");
  Ormp_core.Omc.on_free omc ~time:1 ~addr:1000;
  Ormp_core.Omc.on_alloc omc ~time:2 ~site:2 ~addr:1000 ~size:128 ~type_name:None;
  (match Ormp_core.Omc.translate_fast omc ~instr:0 1008 with
  | Some (g, s, off) ->
    check_int "new object's group, not the dead one's" 1 g;
    check_int "new object's serial" 0 s;
    check_int "offset within new object" 8 off
  | None -> Alcotest.fail "translation after realloc missed");
  (* The batched entry point shares the cache arrays; verify it too. *)
  let groups = Array.make 1 (-7) and serials = Array.make 1 (-7) and offsets = Array.make 1 (-7) in
  Ormp_core.Omc.translate_batch omc ~instrs:[| 0 |] ~addrs:[| 1100 |] ~len:1 ~groups
    ~serials ~offsets;
  check_int "batch: new object's group" 1 groups.(0);
  check_int "batch: new object's serial" 0 serials.(0);
  check_int "batch: offset within new object" 100 offsets.(0)

(* An address past the end of the re-allocated (smaller) object must be
   wild, even though the dead cached object once covered it. *)
let test_stale_mru_shrunk_object () =
  let omc = Ormp_core.Omc.create ~site_name () in
  Ormp_core.Omc.on_alloc omc ~time:0 ~site:1 ~addr:2000 ~size:256 ~type_name:None;
  ignore (Ormp_core.Omc.translate_fast omc ~instr:3 2128);
  Ormp_core.Omc.on_free omc ~time:1 ~addr:2000;
  Ormp_core.Omc.on_alloc omc ~time:2 ~site:1 ~addr:2000 ~size:64 ~type_name:None;
  (match Ormp_core.Omc.translate_fast omc ~instr:3 2128 with
  | None -> ()
  | Some _ -> Alcotest.fail "address past the new object's end must not translate");
  match Ormp_core.Omc.translate_fast omc ~instr:3 2032 with
  | Some (_, s, off) ->
    check_int "new serial under same group" 1 s;
    check_int "offset in the shrunk object" 32 off
  | None -> Alcotest.fail "in-range address must translate"

(* The two-way cache must convert a strict two-object alternation (copy
   loop) into hits once warm: way 0 holds the last object, way 1 the one
   it displaced, so the ping-pong never reaches the range index. *)
let test_mru_two_way_ping_pong () =
  let omc = Ormp_core.Omc.create ~site_name () in
  Ormp_core.Omc.on_alloc omc ~time:0 ~site:1 ~addr:1000 ~size:64 ~type_name:None;
  Ormp_core.Omc.on_alloc omc ~time:1 ~site:1 ~addr:2000 ~size:64 ~type_name:None;
  let n = 64 in
  let instrs = Array.make n 5 in
  let addrs = Array.init n (fun i -> (if i land 1 = 0 then 1000 else 2000) + (i land 7) * 8) in
  let groups = Array.make n 0 and serials = Array.make n 0 and offsets = Array.make n 0 in
  (* warm-up fills both ways *)
  Ormp_core.Omc.translate_batch omc ~instrs ~addrs ~len:2 ~groups ~serials ~offsets;
  let hits0 = Ormp_core.Omc.cache_hits omc in
  Ormp_core.Omc.translate_batch omc ~instrs ~addrs ~len:n ~groups ~serials ~offsets;
  check_int "every alternating access hits a cache way"
    (hits0 + n)
    (Ormp_core.Omc.cache_hits omc);
  for i = 0 to n - 1 do
    check_int "serial tracks the alternation" (i land 1) serials.(i);
    check_int "offset inside the right object" (i land 7 * 8) offsets.(i)
  done

(* Steady-state translation allocates nothing: the cache is int lanes and
   misses resolve through the range index's flat lanes. *)
let test_translate_batch_alloc_free () =
  let omc = Ormp_core.Omc.create ~site_name () in
  for k = 0 to 15 do
    Ormp_core.Omc.on_alloc omc ~time:k ~site:1 ~addr:(1000 * (k + 1)) ~size:512 ~type_name:None
  done;
  let n = 4096 in
  let instrs = Array.init n (fun i -> i land 7) in
  (* mixes warm hits, way-1 promotions, index fills and wild misses *)
  let addrs =
    Array.init n (fun i ->
        if i land 31 = 31 then 999 (* below every object: a miss *)
        else (1000 * (1 + (i land 15))) + ((i land 63) * 8))
  in
  let groups = Array.make n 0 and serials = Array.make n 0 and offsets = Array.make n 0 in
  Ormp_core.Omc.translate_batch omc ~instrs ~addrs ~len:n ~groups ~serials ~offsets;
  let w0 = Gc.minor_words () in
  Ormp_core.Omc.translate_batch omc ~instrs ~addrs ~len:n ~groups ~serials ~offsets;
  let w1 = Gc.minor_words () in
  let per_event = (w1 -. w0) /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "translate_batch words/event %.4f = 0" per_event)
    true (per_event <= 0.01)

(* ------------------------------------------------------------------ *)
(* Fanout: one run driving several batched consumers                   *)
(* ------------------------------------------------------------------ *)

module Batch = Ormp_trace.Batch
module Event = Ormp_trace.Event

(* A child that records the exact event sequence it observes, re-boxed
   through the legacy sink adapter. *)
let recorder ~capacity =
  let seen = ref [] in
  let b = Batch.of_sink ~capacity (fun ev -> seen := ev :: !seen) in
  (b, fun () -> List.rev !seen)

let script =
  List.concat_map
    (fun i ->
      [
        Event.Alloc { site = i; addr = 0x100 * (i + 1); size = 32; type_name = None };
        Event.Access
          { instr = i; addr = (0x100 * (i + 1)) + 8; size = 8; is_store = i mod 2 = 0 };
        Event.Access { instr = i; addr = (0x100 * (i + 1)) + 16; size = 8; is_store = false };
        Event.Free { addr = 0x100 * (i + 1); site = Some (100 + i) };
      ])
    (List.init 37 Fun.id)

(* Children with different capacities flush at different chunk
   boundaries; both must still observe the exact event sequence. *)
let test_fanout_order_preserved () =
  let c1, seen1 = recorder ~capacity:4 and c2, seen2 = recorder ~capacity:64 in
  let f = Batch.fanout ~capacity:16 [ c1; c2 ] in
  List.iter (Batch.event f) script;
  Batch.flush f;
  check_bool "small-capacity child saw the script" true (seen1 () = script);
  check_bool "large-capacity child saw the script" true (seen2 () = script)

(* flush on the fanout must cascade into children even when the fanout's
   own buffer is empty but a child still holds accesses. *)
let test_fanout_flush_cascades () =
  let c, seen = recorder ~capacity:1024 in
  let f = Batch.fanout ~capacity:2 [ c ] in
  Batch.on_access f ~instr:1 ~addr:0x10 ~size:8 ~is_store:false;
  Batch.on_access f ~instr:1 ~addr:0x18 ~size:8 ~is_store:false;
  (* The fanout's 2-entry buffer has flushed into the child, whose own
     1024-entry buffer is still pending. *)
  check_int "child buffers until flushed" 0 (List.length (seen ()));
  Batch.flush f;
  check_int "cascaded flush drains the child" 2 (List.length (seen ()))

(* A profiler and the sanitizer sharing one fanout must each see a
   faithful stream: the profiler's batched profile equals a direct run,
   and the sanitizer still pins the planted defect. *)
let test_fanout_profiler_plus_sanitizer () =
  let p = Ormp_workloads.Faults.inject ~defects:[ Ormp_workloads.Faults.Uaf ] churn in
  let wb, wfin = Ormp_whomp.Whomp.sink_batched ~site_name () in
  let san = Ormp_check.Sanitizer.create () in
  let f = Batch.fanout [ wb; Ormp_check.Sanitizer.batch san ] in
  ignore (Runner.run_batched p f);
  let shared = wfin ~elapsed:0.0 in
  let direct =
    let b, fin = Ormp_whomp.Whomp.sink_batched ~site_name () in
    ignore (Runner.run_batched p b);
    fin ~elapsed:0.0
  in
  check_string "profile unchanged by fanout"
    (Ormp_util.Sexp.to_string (Ormp_persist.Whomp_io.to_sexp direct))
    (Ormp_util.Sexp.to_string (Ormp_persist.Whomp_io.to_sexp shared));
  let report = Ormp_check.Sanitizer.finish ~site_name ~subject:p.Ormp_vm.Program.name san in
  check_int "sanitizer saw the planted uaf" 1 (Ormp_check.Report.errors report)

let () =
  Alcotest.run "batch"
    [
      ( "equivalence",
        [
          Alcotest.test_case "whomp legacy = batched" `Quick test_whomp_equivalence;
          Alcotest.test_case "rasg legacy = batched" `Quick test_rasg_equivalence;
          Alcotest.test_case "leap legacy = batched" `Quick test_leap_equivalence;
        ] );
      ( "mru-cache",
        [
          Alcotest.test_case "stale entry invalidated by free" `Quick
            test_stale_mru_invalidated;
          Alcotest.test_case "shrunk realloc at same base" `Quick
            test_stale_mru_shrunk_object;
          Alcotest.test_case "two-way ping-pong hits" `Quick test_mru_two_way_ping_pong;
          Alcotest.test_case "translate_batch allocation-free" `Quick
            test_translate_batch_alloc_free;
        ] );
      ( "fanout",
        [
          Alcotest.test_case "order preserved across children" `Quick
            test_fanout_order_preserved;
          Alcotest.test_case "flush cascades" `Quick test_fanout_flush_cascades;
          Alcotest.test_case "profiler + sanitizer share one run" `Quick
            test_fanout_profiler_plus_sanitizer;
        ] );
    ]
