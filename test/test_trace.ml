open Ormp_trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Instr                                                               *)
(* ------------------------------------------------------------------ *)

let test_register_dense_ids () =
  let t = Instr.create_table () in
  check_int "first id" 0 (Instr.register t ~name:"a" Instr.Load);
  check_int "second id" 1 (Instr.register t ~name:"b" Instr.Store);
  check_int "third id" 2 (Instr.register t ~name:"c" Instr.Alloc_site);
  check_int "count" 3 (Instr.count t)

let test_info () =
  let t = Instr.create_table () in
  let id = Instr.register t ~name:"x.load" Instr.Load in
  let i = Instr.info t id in
  Alcotest.(check string) "name" "x.load" i.Instr.name;
  check_bool "kind" true (i.Instr.kind = Instr.Load);
  check_int "id" id i.Instr.id

let test_info_unregistered () =
  let t = Instr.create_table () in
  check_bool "raises" true
    (try
       ignore (Instr.info t 0);
       false
     with Invalid_argument _ -> true)

let test_mem_ops_filter () =
  let t = Instr.create_table () in
  ignore (Instr.register t ~name:"l" Instr.Load);
  ignore (Instr.register t ~name:"a" Instr.Alloc_site);
  ignore (Instr.register t ~name:"s" Instr.Store);
  ignore (Instr.register t ~name:"f" Instr.Free_site);
  check_int "only loads and stores" 2 (List.length (Instr.mem_ops t));
  check_int "all" 4 (List.length (Instr.all t))

let test_kind_names () =
  Alcotest.(check string) "load" "load" (Instr.kind_name Instr.Load);
  Alcotest.(check string) "store" "store" (Instr.kind_name Instr.Store);
  Alcotest.(check string) "alloc" "alloc" (Instr.kind_name Instr.Alloc_site);
  Alcotest.(check string) "free" "free" (Instr.kind_name Instr.Free_site)

(* ------------------------------------------------------------------ *)
(* Event                                                               *)
(* ------------------------------------------------------------------ *)

let ld = Event.Access { instr = 3; addr = 0x100; size = 8; is_store = false }
let st = Event.Access { instr = 4; addr = 0x108; size = 8; is_store = true }
let al = Event.Alloc { site = 1; addr = 0x200; size = 64; type_name = Some "node" }
let fr = Event.Free { addr = 0x200; site = None }

let test_is_access () =
  check_bool "load" true (Event.is_access ld);
  check_bool "store" true (Event.is_access st);
  check_bool "alloc" false (Event.is_access al);
  check_bool "free" false (Event.is_access fr)

let test_pp () =
  Alcotest.(check string) "load" "ld i3 0x100+8" (Format.asprintf "%a" Event.pp ld);
  Alcotest.(check string) "store" "st i4 0x108+8" (Format.asprintf "%a" Event.pp st);
  Alcotest.(check string) "alloc" "alloc s1 0x200+64 :node" (Format.asprintf "%a" Event.pp al);
  Alcotest.(check string) "free" "free 0x200" (Format.asprintf "%a" Event.pp fr)

(* ------------------------------------------------------------------ *)
(* Sink                                                                *)
(* ------------------------------------------------------------------ *)

let test_recorder () =
  let r = Sink.recorder () in
  let s = Sink.recorder_sink r in
  List.iter s [ ld; al; st; fr ];
  check_int "events" 4 (Array.length (Sink.events r));
  check_int "accesses" 2 (Sink.access_count r);
  check_int "trace bytes" (2 * Ormp_util.Bytesize.fixed_record) (Sink.trace_bytes r);
  check_bool "order preserved" true (Sink.events r = [| ld; al; st; fr |])

let test_replay () =
  let r = Sink.recorder () in
  List.iter (Sink.recorder_sink r) [ ld; st; st ];
  let c = Sink.counter () in
  Sink.replay r (Sink.counter_sink c);
  check_int "loads" 1 c.Sink.loads;
  check_int "stores" 2 c.Sink.stores

let test_counter () =
  let c = Sink.counter () in
  let s = Sink.counter_sink c in
  List.iter s [ ld; al; st; fr; st ];
  check_int "loads" 1 c.Sink.loads;
  check_int "stores" 2 c.Sink.stores;
  check_int "allocs" 1 c.Sink.allocs;
  check_int "frees" 1 c.Sink.frees;
  check_int "accesses" 3 (Sink.accesses c)

let test_fanout () =
  let c1 = Sink.counter () and c2 = Sink.counter () in
  let s = Sink.fanout [ Sink.counter_sink c1; Sink.counter_sink c2 ] in
  List.iter s [ ld; st ];
  check_int "both sinks fed (1)" 2 (Sink.accesses c1);
  check_int "both sinks fed (2)" 2 (Sink.accesses c2)

let test_null () =
  (* Must simply not fail. *)
  List.iter Sink.null [ ld; st; al; fr ]

(* ------------------------------------------------------------------ *)
(* Trace_file                                                          *)
(* ------------------------------------------------------------------ *)

let sample_events =
  [| ld; al; st; fr; Event.Alloc { site = 2; addr = 0x400; size = 8; type_name = None } |]

let test_trace_file_roundtrip () =
  let path = Filename.temp_file "ormp_trace" ".trace" in
  Trace_file.save path sample_events;
  (match Trace_file.load path with
  | Ok evs -> check_bool "events identical" true (evs = sample_events)
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

let test_trace_file_replay_streams () =
  let path = Filename.temp_file "ormp_trace" ".trace" in
  Trace_file.save path sample_events;
  let c = Sink.counter () in
  (match Trace_file.replay path (Sink.counter_sink c) with
  | Ok n -> check_int "count returned" 5 n
  | Error msg -> Alcotest.fail msg);
  check_int "loads" 1 c.Sink.loads;
  check_int "stores" 1 c.Sink.stores;
  check_int "allocs" 2 c.Sink.allocs;
  check_int "frees" 1 c.Sink.frees;
  Sys.remove path

let test_trace_file_type_names_with_spaces () =
  let path = Filename.temp_file "ormp_trace" ".trace" in
  let evs = [| Event.Alloc { site = 1; addr = 8; size = 16; type_name = Some "big node" } |] in
  Trace_file.save path evs;
  (match Trace_file.load path with
  | Ok got -> check_bool "type preserved" true (got = evs)
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

let test_trace_file_errors () =
  check_bool "missing file" true (Result.is_error (Trace_file.replay "/nonexistent" Sink.null));
  let path = Filename.temp_file "ormp_trace" ".trace" in
  let oc = open_out path in
  output_string oc "not a trace\n";
  close_out oc;
  check_bool "bad header" true (Result.is_error (Trace_file.replay path Sink.null));
  let oc = open_out path in
  output_string oc "ormp-trace 1\nA x y z w\n";
  close_out oc;
  (match Trace_file.replay path Sink.null with
  | Error msg -> check_bool "names line" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "accepted malformed line");
  Sys.remove path

let test_trace_file_profiler_replay_equals_live () =
  (* Record a workload, replay the file through WHOMP: identical profile. *)
  let program = Ormp_workloads.Micro.linked_list ~nodes:8 ~sweeps:2 () in
  let r = Sink.recorder () in
  ignore (Ormp_vm.Runner.run program (Sink.recorder_sink r));
  let path = Filename.temp_file "ormp_trace" ".trace" in
  Trace_file.save path (Sink.events r);
  let live = Ormp_whomp.Whomp.profile program in
  let sink, fin = Ormp_whomp.Whomp.sink ~site_name:(Printf.sprintf "s%d") () in
  (match Trace_file.replay path sink with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  let replayed = fin ~elapsed:0.0 in
  check_int "same collected" live.Ormp_whomp.Whomp.collected replayed.Ormp_whomp.Whomp.collected;
  check_int "same OMSG size" (Ormp_whomp.Whomp.omsg_size live)
    (Ormp_whomp.Whomp.omsg_size replayed);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Worker                                                              *)
(* ------------------------------------------------------------------ *)

let test_worker_stop_without_drain_loses_nothing () =
  (* Regression: stop with messages still in flight must process every
     pushed message before the consumer exits — the consumer may observe
     an empty ring, then the final push and stop_flag land, and it must
     re-poll rather than exit. Many small rounds widen the race window.

     Kept as a real-threads smoke test. The exhaustive counterpart is the
     worker_stop_no_drain litmus in Ormp_modelcheck.Litmus, which explores
     every interleaving at small configurations instead of sampling 200
     random ones (and worker_stop_no_drain_racy, which reverts the fix and
     watches the checker rediscover the lost message). *)
  for round = 1 to 200 do
    let n = 16 + (round mod 7) in
    let sum = ref 0 in
    let w = Worker.spawn ~capacity:4 ~name:"test" ~f:(fun x -> sum := !sum + x) () in
    let expected = ref 0 in
    for i = 1 to n do
      Worker.push w i;
      expected := !expected + i
    done;
    Worker.stop w;
    check_int (Printf.sprintf "round %d: all messages processed" round) !expected !sum;
    check_int (Printf.sprintf "round %d: nothing pending" round) 0 (Worker.pending w)
  done

exception Boom of int

let prop_worker_failure_containment =
  (* An exception escaping [f] mid-stream surfaces on the producer with
     the original exception (and backtrace), from whichever producer call
     observes it first — a push blocked on a full ring, or the final stop.
     The worker keeps consuming and discarding, so stop never hangs and
     nothing stays pending. Exhaustive counterpart: the
     worker_failure_containment litmus in Ormp_modelcheck.Litmus. *)
  QCheck.Test.make ~name:"failure surfaces on producer; worker keeps draining" ~count:100
    QCheck.(pair (int_range 1 40) (int_range 1 40))
    (fun (a, k) ->
      let n = max a k in
      let seen = ref 0 in
      let w =
        Worker.spawn ~capacity:4 ~name:"qc-fail"
          ~f:(fun x -> if x = k then raise (Boom x) else incr seen)
          ()
      in
      let surfaced = ref None in
      (try
         for i = 1 to n do
           Worker.push w i
         done
       with Boom x -> surfaced := Some x);
      (try Worker.stop w with Boom x -> surfaced := Some x);
      (* stop joined the thread, so [seen] is safe to read and nothing is
         in flight; messages before the poisoned one were all processed,
         in order, and everything after it was discarded. *)
      !surfaced = Some k && !seen = k - 1 && Worker.pending w = 0)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ormp_trace"
    [
      ( "instr",
        [
          tc "dense ids" test_register_dense_ids;
          tc "info" test_info;
          tc "unregistered" test_info_unregistered;
          tc "mem_ops filter" test_mem_ops_filter;
          tc "kind names" test_kind_names;
        ] );
      ("event", [ tc "is_access" test_is_access; tc "pp" test_pp ]);
      ( "sink",
        [
          tc "recorder" test_recorder;
          tc "replay" test_replay;
          tc "counter" test_counter;
          tc "fanout" test_fanout;
          tc "null" test_null;
        ] );
      ( "trace_file",
        [
          tc "roundtrip" test_trace_file_roundtrip;
          tc "replay streams" test_trace_file_replay_streams;
          tc "type names with spaces" test_trace_file_type_names_with_spaces;
          tc "errors" test_trace_file_errors;
          tc "profiler replay equals live" test_trace_file_profiler_replay_equals_live;
        ] );
      ( "worker",
        [
          tc "stop without drain loses nothing" test_worker_stop_without_drain_loses_nothing;
          QCheck_alcotest.to_alcotest prop_worker_failure_containment;
        ] );
    ]
