open Ormp_sequitur

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let of_string s = Array.init (String.length s) (fun i -> Char.code s.[i])

let compress a =
  let t = Sequitur.create () in
  Sequitur.push_array t a;
  t

let ok t =
  match Sequitur.check_invariants t with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("invariants: " ^ msg)

let roundtrip name a =
  let t = compress a in
  Alcotest.(check (array int)) (name ^ ": lossless") a (Sequitur.expand t);
  check_int (name ^ ": input length") (Array.length a) (Sequitur.input_length t);
  ok t;
  t

let test_empty () =
  let t = Sequitur.create () in
  Alcotest.(check (array int)) "expand empty" [||] (Sequitur.expand t);
  check_int "size" 0 (Sequitur.grammar_size t);
  check_int "rules" 1 (Sequitur.rule_count t);
  ok t

let test_single () = ignore (roundtrip "single" [| 7 |])
let test_pair () = ignore (roundtrip "pair" [| 7; 8 |])

let test_paper_example () =
  (* The paper's own example (§3.1): "abcbcabcbc" compresses to
     S -> AA; A -> aBB; B -> bc. *)
  let t = roundtrip "abcbcabcbc" (of_string "abcbcabcbc") in
  check_int "three rules" 3 (Sequitur.rule_count t);
  let by_id = Sequitur.rules t in
  let s_rhs = List.assoc 0 by_id in
  check_int "S has two symbols" 2 (List.length s_rhs);
  (match s_rhs with
  | [ `N a; `N b ] -> check_int "S -> AA" a b
  | _ -> Alcotest.fail "start rule is not a doubled non-terminal");
  (* 2 (S) + 3 (A -> aBB) + 2 (B -> bc) *)
  check_int "grammar size" 7 (Sequitur.grammar_size t)

let test_abab () =
  let t = roundtrip "abab" (of_string "abab") in
  (* S -> AA; A -> ab *)
  check_int "rules" 2 (Sequitur.rule_count t);
  check_int "size" 4 (Sequitur.grammar_size t)

let test_no_repetition () =
  let t = roundtrip "abcdefg" (of_string "abcdefg") in
  check_int "no rules created" 1 (Sequitur.rule_count t);
  check_int "size equals input" 7 (Sequitur.grammar_size t)

let test_runs_of_equal_symbols () =
  ignore (roundtrip "aa" (of_string "aa"));
  ignore (roundtrip "aaa" (of_string "aaa"));
  ignore (roundtrip "aaaa" (of_string "aaaa"));
  ignore (roundtrip "aaaaa" (of_string "aaaaa"));
  ignore (roundtrip "aaaaaaaaaaaaaaaa" (of_string "aaaaaaaaaaaaaaaa"));
  ignore (roundtrip "aaabaaab" (of_string "aaabaaab"));
  ignore (roundtrip "aabbaabb" (of_string "aabbaabb"))

let test_long_repetition_compresses () =
  let a = Array.init 4096 (fun i -> i mod 4) in
  let t = roundtrip "cycle" a in
  check_bool "compresses well" true (Sequitur.grammar_size t < 100)

let test_nested_repetition () =
  (* (ab)^2 repeated gives hierarchical rules. *)
  let a = of_string (String.concat "" (List.init 64 (fun _ -> "abcabd"))) in
  let t = roundtrip "nested" a in
  check_bool "compresses" true (Sequitur.grammar_size t < 64)

let test_negative_terminals () =
  ignore (roundtrip "negatives" [| -1; -2; -1; -2; -1; -2; -1; -2 |])

let test_large_terminals () =
  let big = 1 lsl 40 in
  ignore (roundtrip "large" [| big; big + 1; big; big + 1; big; big + 1 |])

let test_incremental_equals_batch () =
  let a = of_string "xyxyxyzxyxyxyz" in
  let t1 = compress a in
  let t2 = Sequitur.create () in
  Array.iter (fun v -> Sequitur.push t2 v) a;
  check_int "same size" (Sequitur.grammar_size t1) (Sequitur.grammar_size t2);
  Alcotest.(check (array int)) "same expansion" (Sequitur.expand t1) (Sequitur.expand t2)

let test_byte_size_positive () =
  let t = compress (of_string "abcbcabcbc") in
  check_bool "byte size positive" true (Sequitur.byte_size t > 0);
  check_bool "byte size >= rule count (separators)" true
    (Sequitur.byte_size t >= Sequitur.rule_count t)

let test_byte_size_smaller_for_small_alphabet () =
  (* Same structure, small vs. huge terminal values: varint accounting must
     charge the huge ones more. *)
  let small = compress [| 1; 2; 3; 1; 2; 3 |] in
  let big_v = 1 lsl 40 in
  let big = compress [| big_v + 1; big_v + 2; big_v + 3; big_v + 1; big_v + 2; big_v + 3 |] in
  check_bool "small alphabet cheaper" true (Sequitur.byte_size small < Sequitur.byte_size big)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_pp_output () =
  let t = compress (of_string "abab") in
  let s = Format.asprintf "%a" Sequitur.pp t in
  check_bool "mentions R0" true (contains_substring s "R0 ->")

(* Stress: digram uniqueness interacts with rule utility; a previously-used
   rule's whole RHS matching a new digram exercises the reuse path. *)
let test_rule_reuse_path () =
  let t = roundtrip "reuse" (of_string "abcdbcabcdbc") in
  ok t

(* --- arena vs. legacy equivalence ------------------------------------- *)

(* The flat-arena implementation must be indistinguishable from the record
   implementation it replaced: identical rules (ids included), sizes and
   expansion for any input. [Sequitur_legacy] is the old implementation
   kept verbatim as the oracle. *)
let equivalent a =
  let arena = compress a in
  let legacy = Sequitur_legacy.create () in
  Sequitur_legacy.push_array legacy a;
  Sequitur.rules arena = Sequitur_legacy.rules legacy
  && Sequitur.grammar_size arena = Sequitur_legacy.grammar_size legacy
  && Sequitur.rule_count arena = Sequitur_legacy.rule_count legacy
  && Sequitur.byte_size arena = Sequitur_legacy.byte_size legacy
  && Sequitur.expand arena = Sequitur_legacy.expand legacy
  && Sequitur.input_length arena = Sequitur_legacy.input_length legacy

let assert_equivalent name a =
  check_bool (name ^ ": arena = legacy") true (equivalent a)

let test_equivalence_corpus () =
  List.iter
    (fun s -> assert_equivalent s (of_string s))
    [
      "";
      "a";
      "ab";
      "abcbcabcbc";
      "abab";
      "abcdefg";
      "aaaa";
      "aaaaaaaaaaaaaaaa";
      "aaabaaab";
      "aabbaabb";
      "xyxyxyzxyxyxyz";
      "abcdbcabcdbc";
    ];
  assert_equivalent "cycle4" (Array.init 4096 (fun i -> i mod 4));
  assert_equivalent "negatives" [| -1; -2; -1; -2; -1; -2; -1; -2 |];
  let big = 1 lsl 40 in
  assert_equivalent "large terminals" [| big; big + 1; big; big + 1; big; big + 1 |]

(* Oversized terminal codes overflow the 31-bit packing lanes of the digram
   key, so distinct digrams can collide on the same packed key; both
   implementations must resolve those collisions identically (validate on
   lookup, repoint on mismatch). [pack (2v) (2w)] collides across values
   differing by multiples of 2^30, which this alphabet is built from. *)
let gen_collision_alphabet =
  let values =
    [| 0; 1; 2; 1 lsl 30; (1 lsl 30) + 1; 1 lsl 35; (1 lsl 35) + 1; -1; -2; 1 lsl 61 |]
  in
  QCheck.Gen.(
    sized (fun n ->
        let n = min n 300 in
        array_size (return n) (map (Array.get values) (int_bound (Array.length values - 1)))))

let gen_small_alphabet_ref =
  QCheck.Gen.(
    sized (fun n ->
        let n = min n 400 in
        array_size (return n) (int_range 0 3)))

let prop_equiv_small_alphabet =
  QCheck.Test.make ~name:"arena = legacy (alphabet of 4)" ~count:500
    (QCheck.make ~print:QCheck.Print.(array int) gen_small_alphabet_ref)
    equivalent

let prop_equiv_any =
  QCheck.Test.make ~name:"arena = legacy (arbitrary ints)" ~count:300
    QCheck.(array_of_size Gen.(int_range 0 200) int)
    equivalent

let prop_equiv_collisions =
  QCheck.Test.make ~name:"arena = legacy (digram-key collision stress)" ~count:400
    (QCheck.make ~print:QCheck.Print.(array int) gen_collision_alphabet)
    equivalent

let prop_equiv_runs =
  QCheck.Test.make ~name:"arena = legacy (concatenated runs)" ~count:300
    QCheck.(small_list (pair (int_range 0 2) (int_range 1 6)))
    (fun spec -> equivalent (Array.concat (List.map (fun (v, n) -> Array.make n v) spec)))

(* --- push_batch -------------------------------------------------------- *)

let test_push_batch_slice () =
  let a = of_string "..abcbcabcbc.." in
  let whole = compress (Array.sub a 2 10) in
  let sliced = Sequitur.create () in
  Sequitur.push_batch sliced a ~off:2 ~len:10;
  Alcotest.(check (array int)) "slice expansion" (Sequitur.expand whole) (Sequitur.expand sliced);
  check_int "slice size" (Sequitur.grammar_size whole) (Sequitur.grammar_size sliced);
  ok sliced

let test_push_batch_bad_span () =
  let t = Sequitur.create () in
  let raises off len =
    match Sequitur.push_batch t [| 1; 2; 3 |] ~off ~len with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "negative off" true (raises (-1) 2);
  check_bool "negative len" true (raises 0 (-1));
  check_bool "overrun" true (raises 2 2);
  check_int "nothing pushed" 0 (Sequitur.input_length t)

let test_iter_rules_matches_rules () =
  let t = compress (of_string "abcbcabcbc") in
  let acc = ref [] in
  Sequitur.iter_rules t (fun id rhs -> acc := (id, rhs) :: !acc);
  check_bool "iter_rules = rules" true (List.rev !acc = Sequitur.rules t)

let gen_small_alphabet =
  QCheck.Gen.(
    sized (fun n ->
        let n = min n 400 in
        array_size (return n) (int_range 0 3)))

let prop_roundtrip_small_alphabet =
  QCheck.Test.make ~name:"roundtrip (alphabet of 4)" ~count:500
    (QCheck.make ~print:QCheck.Print.(array int) gen_small_alphabet)
    (fun a ->
      let t = compress a in
      Sequitur.expand t = a)

let prop_invariants_small_alphabet =
  QCheck.Test.make ~name:"invariants hold (alphabet of 4)" ~count:300
    (QCheck.make ~print:QCheck.Print.(array int) gen_small_alphabet)
    (fun a ->
      let t = compress a in
      match Sequitur.check_invariants t with Ok () -> true | Error _ -> false)

let prop_roundtrip_any =
  QCheck.Test.make ~name:"roundtrip (arbitrary ints)" ~count:300
    QCheck.(array_of_size Gen.(int_range 0 200) int)
    (fun a ->
      let t = compress a in
      Sequitur.expand t = a)

let prop_grammar_never_larger =
  QCheck.Test.make ~name:"grammar size <= input length (non-trivial inputs)" ~count:300
    (QCheck.make ~print:QCheck.Print.(array int) gen_small_alphabet)
    (fun a ->
      let t = compress a in
      Array.length a < 2 || Sequitur.grammar_size t <= Array.length a)

let prop_runs =
  QCheck.Test.make ~name:"roundtrip on runs (worst case for digram overlap)" ~count:200
    QCheck.(pair (int_range 0 4) (int_range 0 64))
    (fun (v, n) ->
      let a = Array.make n v in
      let t = compress a in
      Sequitur.expand t = a
      && (match Sequitur.check_invariants t with Ok () -> true | Error _ -> false))

(* --- generation-counter sweep ----------------------------------------- *)

(* [gen_sweep] re-baselines the per-slot generation counters before the
   packed 29-bit field can wrap. It fires naturally only after hundreds of
   millions of symbol deaths, so these tests call it directly: at any push
   boundary it must be a pure no-op on the observable grammar — stale
   digram-index entries dropped, nothing else disturbed — and continued
   pushes must still match a compressor that never swept. *)
let test_gen_sweep_noop () =
  let a = of_string "abcdbcabcdbc" in
  let t = compress a in
  let before = Sequitur.rules t in
  Sequitur.gen_sweep t;
  ok t;
  check_bool "rules unchanged" true (Sequitur.rules t = before);
  Alcotest.(check (array int)) "expansion unchanged" a (Sequitur.expand t);
  (* Sweeping twice in a row must also be safe. *)
  Sequitur.gen_sweep t;
  ok t;
  check_bool "rules unchanged after second sweep" true (Sequitur.rules t = before)

let prop_gen_sweep_transparent =
  QCheck.Test.make ~name:"gen_sweep at any push boundary = legacy (alphabet of 4)" ~count:300
    (QCheck.make
       ~print:QCheck.Print.(pair (array int) int)
       QCheck.Gen.(pair gen_small_alphabet (int_bound 400)))
    (fun (a, cut) ->
      let cut = min cut (Array.length a) in
      let swept = Sequitur.create () in
      Sequitur.push_batch swept a ~off:0 ~len:cut;
      Sequitur.gen_sweep swept;
      Sequitur.push_batch swept a ~off:cut ~len:(Array.length a - cut);
      Sequitur.gen_sweep swept;
      let legacy = Sequitur_legacy.create () in
      Sequitur_legacy.push_array legacy a;
      (match Sequitur.check_invariants swept with Ok () -> true | Error _ -> false)
      && Sequitur.rules swept = Sequitur_legacy.rules legacy
      && Sequitur.grammar_size swept = Sequitur_legacy.grammar_size legacy
      && Sequitur.expand swept = Sequitur_legacy.expand legacy)

let prop_concat_runs =
  QCheck.Test.make ~name:"roundtrip on concatenated runs" ~count:300
    QCheck.(small_list (pair (int_range 0 2) (int_range 1 6)))
    (fun spec ->
      let a = Array.concat (List.map (fun (v, n) -> Array.make n v) spec) in
      let t = compress a in
      Sequitur.expand t = a)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ormp_sequitur"
    [
      ( "unit",
        [
          tc "empty" test_empty;
          tc "single symbol" test_single;
          tc "two symbols" test_pair;
          tc "paper example abcbcabcbc" test_paper_example;
          tc "abab" test_abab;
          tc "no repetition" test_no_repetition;
          tc "runs of equal symbols" test_runs_of_equal_symbols;
          tc "long repetition compresses" test_long_repetition_compresses;
          tc "nested repetition" test_nested_repetition;
          tc "negative terminals" test_negative_terminals;
          tc "large terminals" test_large_terminals;
          tc "incremental equals batch" test_incremental_equals_batch;
          tc "byte size positive" test_byte_size_positive;
          tc "byte size scales with terminal width" test_byte_size_smaller_for_small_alphabet;
          tc "pp output" test_pp_output;
          tc "rule reuse path" test_rule_reuse_path;
          tc "arena = legacy on corpus" test_equivalence_corpus;
          tc "push_batch slice" test_push_batch_slice;
          tc "push_batch rejects bad spans" test_push_batch_bad_span;
          tc "iter_rules matches rules" test_iter_rules_matches_rules;
          tc "gen_sweep is a no-op at rest" test_gen_sweep_noop;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip_small_alphabet;
          QCheck_alcotest.to_alcotest prop_invariants_small_alphabet;
          QCheck_alcotest.to_alcotest prop_roundtrip_any;
          QCheck_alcotest.to_alcotest prop_grammar_never_larger;
          QCheck_alcotest.to_alcotest prop_runs;
          QCheck_alcotest.to_alcotest prop_concat_runs;
          QCheck_alcotest.to_alcotest prop_equiv_small_alphabet;
          QCheck_alcotest.to_alcotest prop_equiv_any;
          QCheck_alcotest.to_alcotest prop_equiv_collisions;
          QCheck_alcotest.to_alcotest prop_equiv_runs;
          QCheck_alcotest.to_alcotest prop_gen_sweep_transparent;
        ] );
    ]
