(* The checking layer.

   Three angles: the sanitizer must attribute every planted defect class
   to exactly the fault harness's program points and stay silent on clean
   workloads; the batched sanitizer must agree finding-for-finding with a
   naive per-event reference implementation under random alloc/free/access
   scripts; and the profile invariant verifiers must accept everything the
   real profilers produce while rejecting hand-corrupted grammars,
   malformed LMADs and inconsistent object tables. *)

module San = Ormp_check.Sanitizer
module Finding = Ormp_check.Finding
module Report = Ormp_check.Report
module Verify = Ormp_check.Verify
module Faults = Ormp_workloads.Faults
module Micro = Ormp_workloads.Micro
module Event = Ormp_trace.Event
module Batch = Ormp_trace.Batch
module Lmad = Ormp_lmad.Lmad

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str_opt = Alcotest.(check (option string))
let check_int_opt = Alcotest.(check (option int))

let is_error = function Error _ -> true | Ok () -> false

(* ------------------------------------------------------------------ *)
(* Sanitizer: clean workloads stay clean                               *)
(* ------------------------------------------------------------------ *)

let test_clean_workloads () =
  List.iter
    (fun p ->
      let r = San.run p in
      check_bool (p.Ormp_vm.Program.name ^ " clean") true (Report.clean r);
      check_int (p.Ormp_vm.Program.name ^ " findings") 0 (List.length r.Report.findings))
    [
      Micro.churn ~live:16 ~ops:2000 ();
      Micro.matrix ~n:8 ();
      Micro.linked_list ~nodes:24 ~sweeps:2 ();
      Micro.hash_probe ~buckets:64 ~ops:500 ();
    ]

(* Leak notes never make a run dirty: churn deliberately holds its live
   set until exit, which is a note, not a defect. *)
let test_leak_notes_stay_clean () =
  let r = San.run ~leaks:true (Micro.churn ~live:8 ~ops:400 ()) in
  check_bool "clean despite notes" true (Report.clean r);
  check_bool "notes present" true (Report.notes r > 0);
  List.iter
    (fun f -> check_bool "only leak notes" true (f.Finding.kind = Finding.Leak))
    r.Report.findings

(* ------------------------------------------------------------------ *)
(* Sanitizer: planted defects, object-relative attribution             *)
(* ------------------------------------------------------------------ *)

let only_kind r k =
  match List.filter (fun f -> f.Finding.kind = k) r.Report.findings with
  | [ f ] -> f
  | l ->
    Alcotest.failf "expected exactly one %s finding, got %d" (Finding.kind_name k)
      (List.length l)

let obj_of f =
  match f.Finding.obj with
  | Some o -> o
  | None -> Alcotest.failf "%s finding carries no object" (Finding.kind_name f.Finding.kind)

let test_fault_attribution () =
  let r = San.run ~leaks:true (Faults.inject (Micro.churn ~live:8 ~ops:500 ())) in
  check_bool "dirty" false (Report.clean r);
  check_int "errors" 3 (Report.errors r);
  check_int "warnings" 1 (Report.warnings r);

  let uaf = only_kind r Finding.Use_after_free in
  check_str_opt "uaf program point" (Some "fault:uaf-load") uaf.Finding.instr;
  check_int_opt "uaf offset" (Some 24) uaf.Finding.offset;
  let o = obj_of uaf in
  check_bool "uaf group = alloc site" true (o.Finding.group = "fault:uaf-alloc");
  check_int "uaf serial" 0 o.Finding.serial;
  check_int "uaf size" 64 o.Finding.size;
  check_str_opt "uaf free site" (Some "fault:uaf-free") o.Finding.free_site;
  check_bool "uaf freed before access" true
    (match o.Finding.free_time with
    | Some ft -> ft <= uaf.Finding.first_time
    | None -> false);

  let df = only_kind r Finding.Double_free in
  check_str_opt "double-free program point" (Some "fault:df-refree") df.Finding.instr;
  check_int_opt "double-free offset" (Some 0) df.Finding.offset;
  let o = obj_of df in
  check_bool "double-free group" true (o.Finding.group = "fault:df-alloc");
  check_str_opt "first free site" (Some "fault:df-free") o.Finding.free_site;

  let oob = only_kind r Finding.Out_of_bounds in
  check_str_opt "oob program point" (Some "fault:oob-load") oob.Finding.instr;
  check_int_opt "oob offset" (Some 60) oob.Finding.offset;
  let o = obj_of oob in
  check_bool "oob group" true (o.Finding.group = "fault:oob-alloc");
  check_int "oob object size" 57 o.Finding.size;
  check_bool "oob offset past the end" true (60 >= o.Finding.size);

  let wild = only_kind r Finding.Unmapped_access in
  check_str_opt "wild program point" (Some "fault:wild-load") wild.Finding.instr;
  check_bool "wild has no object" true (wild.Finding.obj = None);
  check_bool "wild is a warning" true (wild.Finding.severity = Finding.Warning);

  let leak =
    match
      List.filter
        (fun f ->
          f.Finding.kind = Finding.Leak
          && match f.Finding.obj with
             | Some o -> o.Finding.group = "fault:leak-alloc"
             | None -> false)
        r.Report.findings
    with
    | [ f ] -> f
    | l -> Alcotest.failf "expected one fault:leak-alloc note, got %d" (List.length l)
  in
  check_int "leak count" 1 leak.Finding.count;
  check_int "leaked object size" 48 (obj_of leak).Finding.size;

  (* Severity-major order: all errors precede the warning, which precedes
     every leak note. *)
  let ranks = List.map (fun f -> Finding.severity_rank f.Finding.severity) r.Report.findings in
  check_bool "findings severity-sorted" true (List.sort compare ranks = ranks)

let test_selective_injection () =
  let r = San.run (Faults.inject ~defects:[ Faults.Oob ] (Micro.matrix ~n:6 ())) in
  check_int "one error" 1 (Report.errors r);
  check_int "no warnings" 0 (Report.warnings r);
  match r.Report.findings with
  | [ f ] -> check_bool "it is the oob" true (f.Finding.kind = Finding.Out_of_bounds)
  | l -> Alcotest.failf "expected exactly one finding, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Property: batched sanitizer = naive per-event reference             *)
(* ------------------------------------------------------------------ *)

(* A deliberately dumb re-implementation of the sanitizer semantics:
   association lists scanned per event, no range index, no MRU cache, no
   batching. Any divergence means the fast path's data structures changed
   behaviour, not just speed. *)
module Reference = struct
  type robj = {
    site : int;
    serial : int;
    base : int;
    size : int;
    alloc_time : int;
    mutable free_time : int option;
    mutable free_site : int option;
  }

  type raw = {
    kind : Finding.kind;
    r_instr : int option;
    r_addr : int;
    r_offset : int option;
    r_obj : robj option;
    r_time : int;
    mutable r_count : int;
  }

  type t = {
    mutable live : robj list;
    mutable dead : robj list;  (* the graveyard *)
    serials : (int, int) Hashtbl.t;
    dedup : (Finding.kind * int * int * int, raw) Hashtbl.t;
    mutable order : raw list;  (* newest first *)
    slack : int;
    mutable clock : int;
    mutable accesses : int;
    mutable allocs : int;
    mutable frees : int;
  }

  let create ~slack =
    {
      live = [];
      dead = [];
      serials = Hashtbl.create 16;
      dedup = Hashtbl.create 16;
      order = [];
      slack;
      clock = 0;
      accesses = 0;
      allocs = 0;
      frees = 0;
    }

  let record t kind ?instr ?offset ?obj ~addr () =
    let key =
      ( kind,
        (match instr with Some i -> i | None -> -1),
        (match obj with Some o -> o.site | None -> -1),
        match obj with Some o -> o.serial | None -> -1 )
    in
    match Hashtbl.find_opt t.dedup key with
    | Some r -> r.r_count <- r.r_count + 1
    | None ->
      let r =
        { kind; r_instr = instr; r_addr = addr; r_offset = offset; r_obj = obj;
          r_time = t.clock; r_count = 1 }
      in
      Hashtbl.replace t.dedup key r;
      t.order <- r :: t.order

  let overlaps base size o = o.base < base + size && base < o.base + o.size
  let contains addr o = addr >= o.base && addr < o.base + o.size

  let evict_graveyard t ~base ~size =
    t.dead <- List.filter (fun o -> not (overlaps base size o)) t.dead

  let on_alloc t ~site ~addr ~size =
    t.allocs <- t.allocs + 1;
    evict_graveyard t ~base:addr ~size;
    let serial =
      let n = match Hashtbl.find_opt t.serials site with Some n -> n | None -> 0 in
      Hashtbl.replace t.serials site (n + 1);
      n
    in
    match List.filter (overlaps addr size) t.live with
    | [] ->
      t.live <-
        { site; serial; base = addr; size; alloc_time = t.clock;
          free_time = None; free_site = None }
        :: t.live
    | victims ->
      (* Blame the overlapping object with the greatest base, as the
         index's nearest-below probe does. *)
      let victim =
        List.fold_left (fun a o -> if o.base > a.base then o else a)
          (List.hd victims) (List.tl victims)
      in
      record t Finding.Overlapping_alloc ~instr:site ~obj:victim ~addr ()

  let on_free t ?site ~addr () =
    t.frees <- t.frees + 1;
    match List.find_opt (contains addr) t.live with
    | Some o when o.base = addr ->
      o.free_time <- Some t.clock;
      o.free_site <- site;
      t.live <- List.filter (fun x -> x != o) t.live;
      evict_graveyard t ~base:o.base ~size:o.size;
      t.dead <- o :: t.dead
    | Some o -> record t Finding.Invalid_free ?instr:site ~offset:(addr - o.base) ~obj:o ~addr ()
    | None -> (
      match List.find_opt (contains addr) t.dead with
      | Some o when o.base = addr ->
        record t Finding.Double_free ?instr:site ~offset:0 ~obj:o ~addr ()
      | Some o ->
        record t Finding.Invalid_free ?instr:site ~offset:(addr - o.base) ~obj:o ~addr ()
      | None -> record t Finding.Invalid_free ?instr:site ~addr ())

  let on_access t ~instr ~addr =
    t.accesses <- t.accesses + 1;
    if List.exists (contains addr) t.live then t.clock <- t.clock + 1
    else
      match List.find_opt (contains addr) t.dead with
      | Some o ->
        record t Finding.Use_after_free ~instr ~offset:(addr - o.base) ~obj:o ~addr ()
      | None ->
        let below =
          List.filter (fun o -> o.base <= addr) t.live
          |> List.fold_left (fun a o ->
                 match a with Some b when b.base >= o.base -> a | _ -> Some o)
               None
        and above =
          List.filter (fun o -> o.base > addr) t.live
          |> List.fold_left (fun a o ->
                 match a with Some b when b.base <= o.base -> a | _ -> Some o)
               None
        in
        let below =
          match below with
          | Some o when addr >= o.base + o.size && addr - (o.base + o.size) < t.slack ->
            Some (addr - (o.base + o.size), o)
          | _ -> None
        and above =
          match above with
          | Some o when o.base - addr <= t.slack -> Some (o.base - addr, o)
          | _ -> None
        in
        let nearest =
          match (below, above) with
          | Some (d1, o1), Some (d2, o2) -> Some (if d1 <= d2 then o1 else o2)
          | (Some (_, o), None | None, Some (_, o)) -> Some o
          | None, None -> None
        in
        (match nearest with
        | Some o ->
          record t Finding.Out_of_bounds ~instr ~offset:(addr - o.base) ~obj:o ~addr ()
        | None -> record t Finding.Unmapped_access ~instr ~addr ())

  let event t = function
    | Event.Access { instr; addr; size = _; is_store = _ } -> on_access t ~instr ~addr
    | Event.Alloc { site; addr; size; type_name = _ } -> on_alloc t ~site ~addr ~size
    | Event.Free { addr; site } -> on_free t ?site ~addr ()

  let finish ~site_name t =
    let info o =
      let label = site_name o.site in
      { Finding.group = label; serial = o.serial; base = o.base; size = o.size;
        alloc_site = label; alloc_time = o.alloc_time;
        free_site = Option.map site_name o.free_site; free_time = o.free_time }
    in
    let findings =
      List.rev_map
        (fun r ->
          { Finding.kind = r.kind;
            severity = Finding.severity_of_kind r.kind;
            instr = Option.map site_name r.r_instr;
            addr = r.r_addr;
            offset = r.r_offset;
            obj = Option.map info r.r_obj;
            first_time = r.r_time;
            count = r.r_count })
        t.order
    in
    (* Leak aggregation in increasing base order, one note per site, as
       the sanitizer's graveyard-free index walk produces. *)
    let live_sorted = List.sort (fun a b -> compare a.base b.base) t.live in
    let by_site = Hashtbl.create 8 in
    let site_order = ref [] in
    List.iter
      (fun o ->
        match Hashtbl.find_opt by_site o.site with
        | Some f -> Hashtbl.replace by_site o.site { f with Finding.count = f.Finding.count + 1 }
        | None ->
          site_order := o.site :: !site_order;
          Hashtbl.replace by_site o.site
            (Finding.make ~obj:(info o) ~addr:o.base ~time:t.clock Finding.Leak))
      live_sorted;
    let leaks = List.rev_map (fun s -> Hashtbl.find by_site s) !site_order in
    (findings @ leaks, t.accesses, t.allocs, t.frees, t.clock)
end

(* Scripts over six fixed slots 0x100 apart; sizes up to 0x200 so an
   allocation can spill into neighbouring slots (exercising graveyard
   eviction and overlap detection), and access addresses range from below
   the first slot to past the last (exercising all wild classifications). *)
let event_of_op (tag, slot, extra) =
  let base = 0x1000 + (slot * 0x100) in
  match tag with
  | 0 -> Event.Alloc { site = slot; addr = base; size = 1 + extra; type_name = None }
  | 1 -> Event.Free { addr = base; site = Some (10 + slot) }
  | 2 -> Event.Free { addr = base + (extra land 0x3f); site = None }
  | _ ->
    Event.Access
      { instr = 20 + slot; addr = 0xf80 + (slot * 0x100) + extra; size = 8;
        is_store = tag land 1 = 1 }

let canonical f =
  ( Finding.kind_name f.Finding.kind,
    f.Finding.instr,
    f.Finding.addr,
    f.Finding.offset,
    Option.map
      (fun (o : Finding.object_info) ->
        (o.group, o.serial, o.base, o.size, o.alloc_time, o.free_site, o.free_time))
      f.Finding.obj,
    f.Finding.first_time,
    f.Finding.count )

let prop_batched_matches_reference =
  let gen =
    QCheck.(list_of_size (Gen.int_range 0 200)
              (triple (int_range 0 4) (int_range 0 5) (int_range 0 0x1ff)))
  in
  QCheck.Test.make ~name:"batched sanitizer = naive per-event reference" ~count:300 gen
    (fun ops ->
      let events = List.map event_of_op ops in
      let site_name = Printf.sprintf "s%d" in
      (* Fast path: through the batched chunk interface. *)
      let t = San.create () in
      let b = San.batch ~capacity:16 t in
      List.iter (Batch.event b) events;
      Batch.flush b;
      let report = San.finish ~leaks:true ~site_name ~subject:"prop" t in
      (* Slow path: the naive reference, one event at a time. *)
      let r = Reference.create ~slack:San.default_slack in
      List.iter (Reference.event r) events;
      let ref_findings, accesses, allocs, frees, clock = Reference.finish ~site_name r in
      let sort l = List.sort compare (List.map canonical l) in
      sort report.Report.findings = sort ref_findings
      && report.Report.accesses = accesses
      && report.Report.allocs = allocs
      && report.Report.frees = frees
      && San.collected t = clock)

(* ------------------------------------------------------------------ *)
(* Verifiers: grammars                                                 *)
(* ------------------------------------------------------------------ *)

let test_grammar_rules_accepts () =
  (* R0 -> R1 R1 t5, R1 -> t1 t2: both constraints hold. *)
  let rules = [ (0, [ `N 1; `N 1; `T 5 ]); (1, [ `T 1; `T 2 ]) ] in
  (match Verify.grammar_rules ~input_length:5 rules with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Overlapping digram occurrences inside a run of equal symbols are the
     classic algorithm's exemption, not a violation. *)
  match Verify.grammar_rules ~input_length:3 [ (0, [ `T 7; `T 7; `T 7 ]) ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_grammar_rules_rejects () =
  let rejects name rules ?input_length () =
    check_bool name true (is_error (Verify.grammar_rules ?input_length rules))
  in
  (* Hand-corrupted grammar: digram t1 t2 appears twice — strict mode
     must reject it. *)
  rejects "repeated digram" [ (0, [ `T 1; `T 2; `T 3; `T 1; `T 2 ]) ] ();
  rejects "under-used rule" [ (0, [ `N 1; `T 9 ]); (1, [ `T 1; `T 2 ]) ] ();
  rejects "single-symbol rule" [ (0, [ `N 1; `N 1 ]); (1, [ `T 1 ]) ] ();
  rejects "dangling rule reference" [ (0, [ `N 9; `N 9 ]) ] ~input_length:2 ();
  rejects "cyclic rules" [ (0, [ `N 1; `N 1 ]); (1, [ `N 0; `N 0 ]) ] ~input_length:4 ();
  rejects "duplicate rule id" [ (0, [ `T 1; `T 2 ]); (0, [ `T 3; `T 4 ]) ] ();
  rejects "missing start rule" [ (1, [ `T 1; `T 2 ]) ] ();
  rejects "expansion length mismatch" [ (0, [ `T 1; `T 2 ]) ] ~input_length:3 ()

let test_grammar_duplicate_tolerance () =
  let dup = [ (0, [ `T 1; `T 2; `T 3; `T 1; `T 2 ]) ] in
  check_bool "strict rejects" true (is_error (Verify.grammar_rules dup));
  match Verify.grammar_rules ~max_duplicate_digrams:1 dup with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("tolerance of 1 should accept: " ^ e)

let test_grammar_accepts_real_compressor () =
  let g = Ormp_sequitur.Sequitur.create () in
  let input = Array.init 4096 (fun i -> (i * i) mod 17) in
  Ormp_sequitur.Sequitur.push_array g input;
  (match Verify.grammar g with Ok () -> () | Error e -> Alcotest.fail e);
  match Verify.grammar_rules ~input_length:4096 (Ormp_sequitur.Sequitur.rules g) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("rules view: " ^ e)

(* ------------------------------------------------------------------ *)
(* Verifiers: LMADs and object tables                                  *)
(* ------------------------------------------------------------------ *)

let test_lmad_verify () =
  let d =
    Lmad.of_levels ~start:[| 0; 0 |]
      ~levels:[ { Lmad.stride = [| 0; 8 |]; count = 16 }; { Lmad.stride = [| 1; 0 |]; count = 4 } ]
  in
  (match Verify.lmad ~dims:2 d with Ok () -> () | Error e -> Alcotest.fail e);
  (* Malformed for its stream: a 2-dimensional descriptor where the
     stream is declared 1-dimensional. *)
  check_bool "dimension mismatch rejected" true (is_error (Verify.lmad ~dims:1 d));
  check_bool "single point ok" true (Verify.lmad ~dims:3 (Lmad.make [| 1; 2; 3 |]) = Ok ())

let lifetime ~group ~serial ~base ~size ~alloc_time ?free_time ?free_site () =
  { Ormp_core.Omc.group; serial; base; size; alloc_time; free_time; free_site }

let test_objects_verify () =
  let good =
    [
      lifetime ~group:0 ~serial:0 ~base:0 ~size:16 ~alloc_time:0 ~free_time:5 ();
      lifetime ~group:1 ~serial:0 ~base:64 ~size:8 ~alloc_time:2 ~free_time:4 ~free_site:9 ();
      lifetime ~group:0 ~serial:1 ~base:0 ~size:32 ~alloc_time:6 ();
    ]
  in
  (match Verify.objects good with Ok () -> () | Error e -> Alcotest.fail e);
  check_bool "overlapping live ranges rejected" true
    (is_error
       (Verify.objects
          [
            lifetime ~group:0 ~serial:0 ~base:0 ~size:16 ~alloc_time:0 ();
            lifetime ~group:0 ~serial:1 ~base:8 ~size:16 ~alloc_time:1 ();
          ]));
  check_bool "sparse serials rejected" true
    (is_error
       (Verify.objects
          [
            lifetime ~group:0 ~serial:0 ~base:0 ~size:8 ~alloc_time:0 ();
            lifetime ~group:0 ~serial:2 ~base:32 ~size:8 ~alloc_time:1 ();
          ]));
  check_bool "free before alloc rejected" true
    (is_error
       (Verify.objects [ lifetime ~group:0 ~serial:0 ~base:0 ~size:8 ~alloc_time:5 ~free_time:3 () ]));
  check_bool "free site without free time rejected" true
    (is_error
       (Verify.objects
          [
            {
              Ormp_core.Omc.group = 0; serial = 0; base = 0; size = 8; alloc_time = 0;
              free_time = None; free_site = Some 3;
            };
          ]));
  (* Address reuse across disjoint lifetimes is legal. *)
  match
    Verify.objects
      [
        lifetime ~group:0 ~serial:0 ~base:0 ~size:16 ~alloc_time:0 ~free_time:3 ();
        lifetime ~group:0 ~serial:1 ~base:0 ~size:16 ~alloc_time:3 ();
      ]
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("address reuse: " ^ e)

let test_population_accounting () =
  let groups =
    [ { Ormp_core.Omc.gid = 0; site = 7; label = "a"; population = 2 } ]
  in
  let lifetimes =
    [
      lifetime ~group:0 ~serial:0 ~base:0 ~size:8 ~alloc_time:0 ~free_time:1 ();
      lifetime ~group:0 ~serial:1 ~base:16 ~size:8 ~alloc_time:2 ();
    ]
  in
  (match Verify.objects ~groups lifetimes with Ok () -> () | Error e -> Alcotest.fail e);
  let wrong = [ { Ormp_core.Omc.gid = 0; site = 7; label = "a"; population = 3 } ] in
  check_bool "population mismatch rejected" true
    (is_error (Verify.objects ~groups:wrong lifetimes))

(* ------------------------------------------------------------------ *)
(* Verifiers: whole profiles from the real profilers                   *)
(* ------------------------------------------------------------------ *)

let test_real_profiles_verify () =
  List.iter
    (fun p ->
      (match Verify.whomp_profile (Ormp_whomp.Whomp.profile p) with
      | Ok () -> ()
      | Error e -> Alcotest.fail (p.Ormp_vm.Program.name ^ " whomp: " ^ e));
      match Verify.leap_profile (Ormp_leap.Leap.profile p) with
      | Ok () -> ()
      | Error e -> Alcotest.fail (p.Ormp_vm.Program.name ^ " leap: " ^ e))
    [ Micro.churn ~live:12 ~ops:1500 (); Micro.matrix ~n:8 (); Micro.array_stride ~elems:256 ~sweeps:3 () ]

let test_omc_verify () =
  let omc = Ormp_core.Omc.create ~site_name:(Printf.sprintf "s%d") () in
  Ormp_core.Omc.on_alloc omc ~time:0 ~site:1 ~addr:1000 ~size:64 ~type_name:None;
  Ormp_core.Omc.on_alloc omc ~time:1 ~site:1 ~addr:2000 ~size:64 ~type_name:None;
  Ormp_core.Omc.on_free omc ~time:2 ~addr:1000;
  Ormp_core.Omc.on_alloc omc ~time:3 ~site:2 ~addr:1000 ~size:32 ~type_name:None;
  match Verify.omc omc with Ok () -> () | Error e -> Alcotest.fail e

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ormp_check"
    [
      ( "sanitizer",
        [
          tc "clean workloads report nothing" test_clean_workloads;
          tc "leak notes stay clean" test_leak_notes_stay_clean;
          tc "planted defects attributed" test_fault_attribution;
          tc "selective injection" test_selective_injection;
          QCheck_alcotest.to_alcotest prop_batched_matches_reference;
        ] );
      ( "verify-grammar",
        [
          tc "accepts well-formed rules" test_grammar_rules_accepts;
          tc "rejects corrupted rules" test_grammar_rules_rejects;
          tc "duplicate-digram tolerance" test_grammar_duplicate_tolerance;
          tc "accepts real compressor output" test_grammar_accepts_real_compressor;
        ] );
      ( "verify-structures",
        [
          tc "lmad well-formedness" test_lmad_verify;
          tc "object table invariants" test_objects_verify;
          tc "population accounting" test_population_accounting;
          tc "live omc" test_omc_verify;
          tc "real profiles verify" test_real_profiles_verify;
        ] );
    ]
