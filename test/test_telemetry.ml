(* Tests for the telemetry layer: metric merging across domains, span
   nesting well-formedness, the zero-allocation guarantee of the disabled
   hot path, heartbeat persistence, and the leveled logger. *)

module Tm = Ormp_telemetry.Telemetry
module Metrics = Ormp_telemetry.Metrics
module Spans = Ormp_telemetry.Spans
module Heartbeat = Ormp_telemetry.Heartbeat
module Log = Ormp_telemetry.Log
module J = Ormp_util.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_sums () =
  Metrics.reset ();
  let c = Metrics.counter "t.sum" in
  Metrics.incr c;
  Metrics.add c 41;
  let snap = Metrics.snapshot () in
  check_int "summed" 42 (List.assoc "t.sum" snap.Metrics.snap_counters)

let test_gauge_latest_wins () =
  Metrics.reset ();
  let g = Metrics.gauge "t.gauge" in
  Metrics.set g 3.0;
  Metrics.set g 7.0;
  let snap = Metrics.snapshot () in
  Alcotest.(check (float 0.0)) "latest" 7.0 (List.assoc "t.gauge" snap.Metrics.snap_gauges)

let test_kind_mismatch_rejected () =
  let _ = Metrics.counter "t.kind" in
  check_bool "re-registering with another kind raises" true
    (try
       ignore (Metrics.gauge "t.kind");
       false
     with Invalid_argument _ -> true)

let test_histogram_summary () =
  Metrics.reset ();
  let h = Metrics.histogram "t.hist" in
  List.iter (Metrics.observe h) [ 100.0; 200.0; 400.0; 800.0 ];
  let snap = Metrics.snapshot () in
  let s = List.assoc "t.hist" snap.Metrics.snap_hists in
  check_int "count" 4 s.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum" 1500.0 s.Metrics.sum;
  Alcotest.(check (float 1e-9)) "min" 100.0 s.Metrics.min;
  Alcotest.(check (float 1e-9)) "max" 800.0 s.Metrics.max;
  (* Quantiles come back through exp2 of the log2 buckets: within a
     bucket width (an eighth of a doubling, ~9%) of the true values. *)
  check_bool "p50 near the middle" true (s.Metrics.p50 >= 150.0 && s.Metrics.p50 <= 450.0);
  check_bool "p99 near the top" true (s.Metrics.p99 >= 700.0 && s.Metrics.p99 <= 900.0)

(* The merge property the snapshot promises: counters and histogram
   totals recorded from several domains at once read back exactly as if
   one domain had recorded everything. *)
let prop_cross_domain_merge =
  QCheck.Test.make ~name:"snapshot merges domains into exact totals" ~count:15
    QCheck.(pair (int_range 1 300) (int_range 1 4))
    (fun (per_domain, extra_domains) ->
      Metrics.reset ();
      let c = Metrics.counter "t.merge.counter" in
      let h = Metrics.histogram "t.merge.hist" in
      let body () =
        for i = 1 to per_domain do
          Metrics.incr c;
          Metrics.observe h (float_of_int i)
        done
      in
      let ds = List.init extra_domains (fun _ -> Domain.spawn body) in
      body ();
      List.iter Domain.join ds;
      let snap = Metrics.snapshot () in
      let domains = extra_domains + 1 in
      let expected = domains * per_domain in
      let counted =
        match List.assoc_opt "t.merge.counter" snap.Metrics.snap_counters with
        | Some v -> v
        | None -> 0
      in
      let hist_ok =
        match List.assoc_opt "t.merge.hist" snap.Metrics.snap_hists with
        | None -> false
        | Some s ->
          let one_domain_sum = float_of_int (per_domain * (per_domain + 1) / 2) in
          s.Metrics.count = expected
          && Float.abs (s.Metrics.sum -. (float_of_int domains *. one_domain_sum)) < 1e-6
          && s.Metrics.min = 1.0
          && s.Metrics.max = float_of_int per_domain
      in
      counted = expected && hist_ok)

let test_metrics_json_roundtrip () =
  Metrics.reset ();
  Metrics.add (Metrics.counter "t.json \"quoted\"") 5;
  Metrics.set (Metrics.gauge "t.json.gauge") 2.5;
  Metrics.observe (Metrics.histogram "t.json.hist") 1234.0;
  let snap = Metrics.snapshot () in
  match J.of_string (J.to_string (Metrics.to_json snap)) with
  | Error e -> Alcotest.fail ("metrics JSON does not parse back: " ^ e)
  | Ok j ->
    let counter =
      Option.bind (J.member "counters" j) (fun c ->
          Option.bind (J.member "t.json \"quoted\"" c) J.to_int)
    in
    check_int "counter survives the roundtrip" 5 (Option.value ~default:0 counter)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting_wellformed () =
  Spans.reset ();
  Tm.enable ();
  Tm.span ~name:"outer" (fun () ->
      Tm.span ~name:"inner" (fun () -> ());
      (* The E record must be emitted even on the exception path. *)
      try Tm.span ~name:"boom" (fun () -> raise Exit) with Exit -> ());
  Tm.disable ();
  match Spans.validate_json (Spans.to_json ()) with
  | Ok n -> check_bool "three complete spans" true (n >= 3)
  | Error e -> Alcotest.fail ("trace does not validate: " ^ e)

let test_span_disabled_is_transparent () =
  Spans.reset ();
  Tm.disable ();
  Alcotest.(check int) "value passes through" 17 (Tm.span ~name:"off" (fun () -> 17));
  match Spans.validate_json (Spans.to_json ()) with
  | Ok n -> check_int "nothing recorded" 0 n
  | Error e -> Alcotest.fail e

let test_span_validation_rejects_bad_traces () =
  let expect_error doc =
    match J.of_string doc with
    | Error e -> Alcotest.fail ("test document does not parse: " ^ e)
    | Ok j -> (
      match Spans.validate_json j with
      | Ok _ -> Alcotest.fail ("accepted invalid trace: " ^ doc)
      | Error _ -> ())
  in
  (* E closing a span with the wrong name. *)
  expect_error
    {|{"traceEvents":[{"name":"a","ph":"B","ts":0,"pid":1,"tid":1},
                      {"name":"b","ph":"E","ts":1,"pid":1,"tid":1}]}|};
  (* E with no open span. *)
  expect_error {|{"traceEvents":[{"name":"a","ph":"E","ts":0,"pid":1,"tid":1}]}|};
  (* Unclosed B. *)
  expect_error {|{"traceEvents":[{"name":"a","ph":"B","ts":0,"pid":1,"tid":1}]}|};
  (* Unknown phase. *)
  expect_error {|{"traceEvents":[{"name":"a","ph":"X","ts":0,"pid":1,"tid":1}]}|};
  (* Missing traceEvents entirely. *)
  expect_error {|{"other": []}|}

let test_span_interleaved_tids_validate () =
  (* Per-tid LIFO, not global: interleaving across threads is legal. *)
  let doc =
    {|{"traceEvents":[{"name":"a","ph":"B","ts":0,"pid":1,"tid":1},
                      {"name":"b","ph":"B","ts":1,"pid":1,"tid":2},
                      {"name":"a","ph":"E","ts":2,"pid":1,"tid":1},
                      {"name":"b","ph":"E","ts":3,"pid":1,"tid":2}]}|}
  in
  match Option.map Spans.validate_json (Result.to_option (J.of_string doc)) with
  | Some (Ok n) -> check_int "two spans" 2 n
  | _ -> Alcotest.fail "interleaved tids should validate"

(* ------------------------------------------------------------------ *)
(* Zero allocation when disabled                                       *)
(* ------------------------------------------------------------------ *)

(* The contract the instrumentation pass relies on: with telemetry off,
   the batched translate hot path allocates exactly as much as before the
   instrumentation existed — nothing, once the MRU cache is warm. The
   empty-closure loop is measured the same way so any fixed measurement
   cost cancels out. *)
let test_disabled_hot_path_zero_alloc () =
  Tm.disable ();
  let omc = Ormp_core.Omc.create ~site_name:(Printf.sprintf "s%d") () in
  for i = 0 to 7 do
    Ormp_core.Omc.on_alloc omc ~time:i ~site:1 ~addr:(i * 128) ~size:64 ~type_name:None
  done;
  let len = 64 in
  (* Two distinct objects per instruction slot: exactly what the per-
     instruction 2-way MRU cache holds, so the steady state is all hits. *)
  let instrs = Array.init len (fun i -> i land 3) in
  let addrs = Array.init len (fun i -> ((i land 7) * 128) + 8) in
  let groups = Array.make len 0 in
  let serials = Array.make len 0 in
  let offsets = Array.make len 0 in
  let call () =
    Ormp_core.Omc.translate_batch omc ~instrs ~addrs ~len ~groups ~serials ~offsets
  in
  let minor_delta f =
    f ();
    f ();
    let w0 = Gc.minor_words () in
    for _ = 1 to 50 do
      f ()
    done;
    Gc.minor_words () -. w0
  in
  let baseline = minor_delta (fun () -> ()) in
  let measured = minor_delta call in
  Alcotest.(check (float 0.0)) "no allocation beyond the empty loop" baseline measured

(* ------------------------------------------------------------------ *)
(* Heartbeat                                                           *)
(* ------------------------------------------------------------------ *)

let sample =
  {
    Heartbeat.wall_s = 1.5;
    position = 4096;
    events_per_sec = 125000.0;
    live_objects = 96;
    grammar_symbols = 512;
    leap_streams = 7;
    journal_bytes = 73000;
    snapshot_bytes = 11000;
    last_checkpoint = 4000;
    degraded = [ "grammar-rotation"; "leap-streams" ];
  }

let test_heartbeat_roundtrip () =
  match Heartbeat.of_sexp (Heartbeat.to_sexp sample) with
  | Error e -> Alcotest.fail e
  | Ok s ->
    check_int "position" sample.Heartbeat.position s.Heartbeat.position;
    check_int "checkpoint" sample.Heartbeat.last_checkpoint s.Heartbeat.last_checkpoint;
    Alcotest.(check (list string))
      "degraded" sample.Heartbeat.degraded s.Heartbeat.degraded;
    Alcotest.(check (float 1e-9)) "wall" sample.Heartbeat.wall_s s.Heartbeat.wall_s

let test_heartbeat_torn_tail () =
  let path = Filename.temp_file "ormp-test-heartbeat" ".hb" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Heartbeat.append path sample;
  Heartbeat.append path { sample with Heartbeat.position = 8192 };
  (* A crash mid-write leaves a torn final line; the loader must keep the
     intact prefix. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "((wall_s 2.0) (posit";
  close_out oc;
  let samples = Heartbeat.load path in
  check_int "torn tail skipped" 2 (List.length samples);
  check_int "last intact sample" 8192 (List.nth samples 1).Heartbeat.position

let test_heartbeat_missing_file () =
  check_int "missing file is empty" 0 (List.length (Heartbeat.load "/nonexistent/hb"))

(* ------------------------------------------------------------------ *)
(* Log                                                                 *)
(* ------------------------------------------------------------------ *)

let test_log_levels () =
  let seen = Buffer.create 64 in
  Log.set_emitter (Buffer.add_string seen);
  Fun.protect ~finally:(fun () ->
      Log.set_emitter (fun line ->
          output_string stderr line;
          flush stderr);
      Log.set_level (Log.default_level ()))
  @@ fun () ->
  Log.set_level Log.Info;
  Log.infof ~src:"test" "visible %d" 1;
  Log.debugf ~src:"test" "hidden %d" 2;
  Log.set_level Log.Quiet;
  Log.errf ~src:"test" "also hidden";
  let out = Buffer.contents seen in
  check_bool "info emitted" true
    (String.length out > 0 && out = "[info] test: visible 1\n");
  check_bool "debug and quiet suppressed" false
    (String.length out <> String.length "[info] test: visible 1\n")

let test_log_level_parse () =
  let lvl s = Log.level_of_string s in
  check_bool "quiet aliases" true
    (lvl "quiet" = Some Log.Quiet && lvl "off" = Some Log.Quiet && lvl "none" = Some Log.Quiet);
  check_bool "warn aliases" true
    (lvl "warn" = Some Log.Warn && lvl "Warning" = Some Log.Warn);
  check_bool "unknown" true (lvl "blah" = None)

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

module Flight = Ormp_telemetry.Flight
module Sexp = Ormp_util.Sexp

let test_flight_ring_overwrites_oldest () =
  let f = Flight.create ~cap:4 () in
  for i = 1 to 10 do
    Flight.record f ~kind:"k" ~session:(Printf.sprintf "s%d" i) ~detail:""
  done;
  check_int "recorded counts everything" 10 (Flight.recorded f);
  check_int "dropped is recorded minus cap" 6 (Flight.dropped f);
  let live = Flight.events f in
  check_int "ring holds cap events" 4 (List.length live);
  Alcotest.(check (list string))
    "oldest-to-newest window"
    [ "s7"; "s8"; "s9"; "s10" ]
    (List.map (fun e -> e.Flight.session) live)

let test_flight_trace_validates () =
  let f = Flight.create ~cap:8 () in
  List.iter
    (fun k -> Flight.record f ~kind:k ~session:"sess-1" ~detail:"why it happened")
    [ "hello"; "shed"; "proto-error"; "deadline-kill"; "finish" ];
  match Spans.validate_json (Flight.to_trace_json f) with
  | Ok n -> check_int "one span per event" 5 n
  | Error e -> Alcotest.fail ("flight trace does not validate: " ^ e)

let test_flight_empty_ring_exports () =
  let f = Flight.create ~cap:4 () in
  check_int "nothing dropped" 0 (Flight.dropped f);
  match Spans.validate_json (Flight.to_trace_json f) with
  | Ok n -> check_int "empty trace validates" 0 n
  | Error e -> Alcotest.fail e

let test_flight_dump_bundle () =
  let dir = Filename.temp_file "ormp-flight" "" in
  Sys.remove dir;
  let nested = Filename.concat dir "deeper" in
  Fun.protect ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [
          Filename.concat nested Flight.trace_file;
          Filename.concat nested Flight.record_file;
        ];
      (try Unix.rmdir nested with Unix.Unix_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
  @@ fun () ->
  let f = Flight.create ~cap:8 () in
  Flight.record f ~kind:"resume" ~session:"tok a" ~detail:"position 300 (torn tail)";
  Flight.record f ~kind:"proto-error" ~session:"tok b" ~detail:"position gap";
  (match Flight.dump f ~dir:nested ~reason:"unit test" with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("dump failed: " ^ m));
  (* the trace half parses as JSON and passes the span validator *)
  let trace =
    In_channel.with_open_bin (Filename.concat nested Flight.trace_file)
      In_channel.input_all
  in
  (match Option.map Spans.validate_json (Result.to_option (J.of_string trace)) with
  | Some (Ok n) -> check_int "dumped spans" 2 n
  | _ -> Alcotest.fail "dumped trace.json does not validate");
  (* the sexp half loads and carries the reason plus both events, with
     the space-bearing atoms quoted well enough to survive the parse *)
  match Sexp.load (Filename.concat nested Flight.record_file) with
  | Error e -> Alcotest.fail ("record.sexp does not load: " ^ e)
  | Ok s -> (
    match (Sexp.assoc "reason" s, Sexp.assoc "events" s) with
    | Ok [ Sexp.Atom r ], Ok evs ->
      check_bool "reason preserved" true (r = "unit test");
      check_int "both events present" 2 (List.length evs)
    | _ -> Alcotest.fail "record.sexp missing reason/events fields")

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ormp_telemetry"
    [
      ( "metrics",
        [
          tc "counter sums" test_counter_sums;
          tc "gauge latest wins" test_gauge_latest_wins;
          tc "kind mismatch rejected" test_kind_mismatch_rejected;
          tc "histogram summary" test_histogram_summary;
          tc "json roundtrip" test_metrics_json_roundtrip;
          QCheck_alcotest.to_alcotest prop_cross_domain_merge;
        ] );
      ( "spans",
        [
          tc "nesting well-formed" test_span_nesting_wellformed;
          tc "disabled is transparent" test_span_disabled_is_transparent;
          tc "validation rejects bad traces" test_span_validation_rejects_bad_traces;
          tc "interleaved tids validate" test_span_interleaved_tids_validate;
        ] );
      ( "hot path", [ tc "zero alloc when disabled" test_disabled_hot_path_zero_alloc ] );
      ( "heartbeat",
        [
          tc "roundtrip" test_heartbeat_roundtrip;
          tc "torn tail" test_heartbeat_torn_tail;
          tc "missing file" test_heartbeat_missing_file;
        ] );
      ( "log",
        [ tc "levels" test_log_levels; tc "level parse" test_log_level_parse ] );
      ( "flight",
        [
          tc "ring overwrites oldest" test_flight_ring_overwrites_oldest;
          tc "trace validates as spans" test_flight_trace_validates;
          tc "empty ring exports" test_flight_empty_ring_exports;
          tc "dump bundle roundtrips" test_flight_dump_bundle;
        ] );
    ]
