open Ormp_lmad

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let lv stride count = { Lmad.stride; count }

(* ------------------------------------------------------------------ *)
(* Lmad model                                                          *)
(* ------------------------------------------------------------------ *)

let test_make () =
  let d = Lmad.make [| 3; 5 |] in
  check_int "size" 1 (Lmad.size d);
  check_int "dims" 2 (Lmad.dims d);
  check_int "depth" 0 (Lmad.depth d);
  Alcotest.(check (array int)) "point 0" [| 3; 5 |] (Lmad.point d 0)

let test_one_level () =
  let d = Lmad.of_levels ~start:[| 0 |] ~levels:[ lv [| 8 |] 4 ] in
  check_int "size" 4 (Lmad.size d);
  Alcotest.(check (list (array int)))
    "points" [ [| 0 |]; [| 8 |]; [| 16 |]; [| 24 |] ] (Lmad.points d);
  Alcotest.(check (array int)) "last" [| 24 |] (Lmad.last d)

let test_two_levels () =
  (* inner: 3 points stepping 8; outer: 2 rows stepping 100 *)
  let d = Lmad.of_levels ~start:[| 0 |] ~levels:[ lv [| 8 |] 3; lv [| 100 |] 2 ] in
  check_int "size" 6 (Lmad.size d);
  Alcotest.(check (list (array int)))
    "loop order (inner fastest)"
    [ [| 0 |]; [| 8 |]; [| 16 |]; [| 100 |]; [| 108 |]; [| 116 |] ]
    (Lmad.points d)

let test_redundant_levels_dropped () =
  let d = Lmad.of_levels ~start:[| 0 |] ~levels:[ lv [| 8 |] 1; lv [| 4 |] 3 ] in
  check_int "depth" 1 (Lmad.depth d);
  check_int "size" 3 (Lmad.size d)

let test_of_levels_validation () =
  check_bool "dim mismatch" true
    (try
       ignore (Lmad.of_levels ~start:[| 0 |] ~levels:[ lv [| 1; 2 |] 2 ]);
       false
     with Invalid_argument _ -> true);
  check_bool "zero count" true
    (try
       ignore (Lmad.of_levels ~start:[| 0 |] ~levels:[ lv [| 1 |] 0 ]);
       false
     with Invalid_argument _ -> true)

let test_point_bounds () =
  let d = Lmad.make [| 0 |] in
  check_bool "negative rejected" true
    (try
       ignore (Lmad.point d (-1));
       false
     with Invalid_argument _ -> true);
  check_bool "past end rejected" true
    (try
       ignore (Lmad.point d 1);
       false
     with Invalid_argument _ -> true)

let test_pp () =
  let d = Lmad.of_levels ~start:[| 0 |] ~levels:[ lv [| 8 |] 2 ] in
  Alcotest.(check string) "render" "[(0) +(8)x2]" (Format.asprintf "%a" Lmad.pp d)

(* ------------------------------------------------------------------ *)
(* Compressor                                                          *)
(* ------------------------------------------------------------------ *)

let feed ?(budget = 30) ?max_depth ~dims pts =
  let c = Compressor.create ~budget ?max_depth ~dims () in
  List.iter (fun p -> ignore (Compressor.add c p)) pts;
  c

let test_compress_linear_stream () =
  let pts = List.init 100 (fun i -> [| i * 8 |]) in
  let c = feed ~dims:1 pts in
  check_int "one LMAD" 1 (List.length (Compressor.lmads c));
  check_bool "fully captured" true (Compressor.fully_captured c);
  check_int "captured" 100 (Compressor.captured c);
  Alcotest.(check (list (array int))) "reconstruct" pts (Compressor.reconstruct c)

let test_compress_two_phases () =
  (* The paper's own example offset stream: 0 4 8 12 16 20 2 5 8 11
     becomes [0,4,6] and [2,3,4]. *)
  let pts = List.map (fun x -> [| x |]) [ 0; 4; 8; 12; 16; 20; 2; 5; 8; 11 ] in
  let c = feed ~max_depth:1 ~dims:1 pts in
  match Compressor.lmads c with
  | [ a; b ] ->
    Alcotest.(check (list (array int)))
      "first = [0,4,6]"
      (List.map (fun x -> [| x |]) [ 0; 4; 8; 12; 16; 20 ])
      (Lmad.points a);
    Alcotest.(check (list (array int)))
      "second = [2,3,4]"
      (List.map (fun x -> [| x |]) [ 2; 5; 8; 11 ])
      (Lmad.points b)
  | l -> Alcotest.failf "expected 2 LMADs, got %d" (List.length l)

let test_nested_sweep_single_descriptor () =
  (* 50 sweeps over an 8-slot row: one 2-level LMAD, not 50 descriptors. *)
  let pts = List.init 400 (fun i -> [| i mod 8 * 8 |]) in
  let c = feed ~dims:1 pts in
  check_bool "fully captured" true (Compressor.fully_captured c);
  check_int "one descriptor" 1 (List.length (Compressor.lmads c));
  let d = List.hd (Compressor.lmads c) in
  check_int "depth 2" 2 (Lmad.depth d);
  Alcotest.(check (list (array int))) "reconstruct" pts (Compressor.reconstruct c)

let test_nested_matrix_walk () =
  (* Walk 5 columns in each of 6 non-contiguous rows (row pitch 100 <> 5*8,
     so the row jump cannot merge into the column level), repeated 4 times:
     3 levels. *)
  let pts =
    List.concat
      (List.init 4 (fun _ ->
           List.concat
             (List.init 6 (fun r -> List.init 5 (fun col -> [| (r * 100) + (col * 8) |])))))
  in
  let c = feed ~dims:1 pts in
  check_bool "fully captured" true (Compressor.fully_captured c);
  check_int "one descriptor" 1 (List.length (Compressor.lmads c));
  check_int "depth 3" 3 (Lmad.depth (List.hd (Compressor.lmads c)));
  Alcotest.(check (list (array int))) "reconstruct" pts (Compressor.reconstruct c)

let test_max_depth_respected () =
  let pts = List.init 400 (fun i -> [| i mod 8 * 8 |]) in
  let c = feed ~max_depth:1 ~dims:1 pts in
  List.iter (fun d -> check_bool "depth <= 1" true (Lmad.depth d <= 1)) (Compressor.lmads c)

let test_budget_overflow () =
  (* Quadratic stream: strides never repeat, overflowing a tiny budget. *)
  let pts = List.init 50 (fun i -> [| i * i * 16 |]) in
  let c = feed ~budget:5 ~max_depth:1 ~dims:1 pts in
  check_int "budget respected" 5 (List.length (Compressor.lmads c));
  check_bool "lossy" false (Compressor.fully_captured c);
  check_int "accounting" 50 (Compressor.captured c + Compressor.discarded c);
  match Compressor.summary c with
  | None -> Alcotest.fail "expected summary"
  | Some s ->
    check_int "discarded recorded" (Compressor.discarded c) s.Compressor.discarded;
    check_bool "min <= max" true (s.Compressor.min_v.(0) <= s.Compressor.max_v.(0))

let test_summary_granularity () =
  let c = Compressor.create ~budget:1 ~max_depth:1 ~dims:1 () in
  List.iter
    (fun p -> ignore (Compressor.add c p))
    [ [| 0 |]; [| 8 |]; [| 100 |]; [| 124 |]; [| 88 |] ];
  match Compressor.summary c with
  | None -> Alcotest.fail "expected summary"
  | Some s ->
    check_int "discarded" 3 s.Compressor.discarded;
    check_int "granularity divides deltas" 0 (24 mod s.Compressor.granularity.(0));
    check_int "min" 88 s.Compressor.min_v.(0);
    check_int "max" 124 s.Compressor.max_v.(0)

let test_multidim_stream () =
  (* (object, offset) stream of a strided walk over 3 objects. *)
  let pts = List.init 30 (fun i -> [| i / 10; i mod 10 * 4 |]) in
  let c = feed ~dims:2 pts in
  check_bool "fully captured" true (Compressor.fully_captured c);
  check_bool "few descriptors" true (List.length (Compressor.lmads c) <= 3);
  Alcotest.(check (list (array int))) "reconstruct" pts (Compressor.reconstruct c)

let test_placement_reporting () =
  let c = Compressor.create ~budget:2 ~max_depth:1 ~dims:1 () in
  check_bool "first opens 0" true (Compressor.add c [| 0 |] = Compressor.Opened 0);
  check_bool "second extends 0" true (Compressor.add c [| 8 |] = Compressor.Extended 0);
  check_bool "break opens 1" true (Compressor.add c [| 100 |] = Compressor.Opened 1);
  check_bool "extends 1" true (Compressor.add c [| 109 |] = Compressor.Extended 1);
  check_bool "budget full discards" true (Compressor.add c [| 5000 |] = Compressor.Discarded)

let test_create_validation () =
  check_bool "dims 0 rejected" true
    (try
       ignore (Compressor.create ~dims:0 ());
       false
     with Invalid_argument _ -> true);
  check_bool "budget 0 rejected" true
    (try
       ignore (Compressor.create ~budget:0 ~dims:1 ());
       false
     with Invalid_argument _ -> true)

let prop_roundtrip_when_captured =
  QCheck.Test.make ~name:"reconstruct = input when fully captured" ~count:500
    QCheck.(list_of_size Gen.(int_range 0 80) (int_range (-20) 20))
    (fun xs ->
      let pts = List.map (fun x -> [| x |]) xs in
      let c = feed ~budget:200 ~dims:1 pts in
      (not (Compressor.fully_captured c)) || Compressor.reconstruct c = pts)

let prop_roundtrip_always_prefix_free =
  (* Even with a tight budget, captured points must be a subsequence of the
     input: LMAD capture never invents points. *)
  QCheck.Test.make ~name:"reconstruction is a subsequence of the input" ~count:300
    QCheck.(pair (int_range 1 4) (list_of_size Gen.(int_range 0 60) (int_range 0 10)))
    (fun (budget, xs) ->
      let pts = List.map (fun x -> [| x |]) xs in
      let c = feed ~budget ~dims:1 pts in
      let rec is_subseq sub full =
        match (sub, full) with
        | [], _ -> true
        | _, [] -> false
        | s :: sub', f :: full' -> if s = f then is_subseq sub' full' else is_subseq sub full'
      in
      is_subseq (Compressor.reconstruct c) pts)

let prop_accounting =
  QCheck.Test.make ~name:"captured + discarded = total" ~count:300
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(int_range 0 80) (int_range (-20) 20)))
    (fun (budget, xs) ->
      let pts = List.map (fun x -> [| x |]) xs in
      let c = feed ~budget ~dims:1 pts in
      Compressor.captured c + Compressor.discarded c = Compressor.total c
      && Compressor.total c = List.length xs
      && List.length (Compressor.lmads c) <= budget)

let prop_nested_ramps_fit_one_descriptor =
  QCheck.Test.make ~name:"periodic ramps compress to O(1) descriptors" ~count:200
    QCheck.(triple (int_range 2 9) (int_range 2 20) (int_range 1 8))
    (fun (row, reps, stride) ->
      let pts = List.init (row * reps) (fun i -> [| i mod row * stride |]) in
      let c = feed ~dims:1 pts in
      Compressor.fully_captured c && List.length (Compressor.lmads c) <= 2)

(* ------------------------------------------------------------------ *)
(* Flat compressor vs. legacy copy                                     *)
(* ------------------------------------------------------------------ *)

(* The PR-10 compressor keeps derived caches (expected next point, digit
   vector) so the extend/discard steady states are allocation-free;
   [Compressor_legacy] is the verbatim pre-cache implementation. Every
   observable — placement sequence, descriptors, summary, reconstruction,
   exact state — must agree on any stream, and the packed-code scalar
   entry points must agree with [add]. *)

(* Streams with enough structure to exercise extend, deepen, close-and-
   retry (with leftover replay) and over-budget discard: a list of
   segments, each a strided run, a two-level nest, or raw noise. *)
let gen_stream ~dims =
  QCheck.Gen.(
    let point g = array_repeat dims g in
    let seg =
      frequency
        [
          ( 4,
            (* strided run: start + i * stride *)
            triple (point (int_range (-50) 50)) (point (int_range (-6) 6)) (int_range 1 12)
            >|= fun (s, d, n) ->
            List.init n (fun i -> Array.mapi (fun k sk -> sk + (i * d.(k))) s) );
          ( 2,
            (* two-level nest: start + o * outer + i * inner *)
            quad
              (point (int_range 0 40))
              (point (int_range 1 4))
              (point (int_range 0 60))
              (pair (int_range 2 4) (int_range 2 4))
            >|= fun (s, di, d_o, (ic, oc)) ->
            List.concat
              (List.init oc (fun o ->
                   List.init ic (fun i ->
                       Array.mapi (fun k sk -> sk + (o * d_o.(k)) + (i * di.(k))) s))) );
          (2, list_size (int_range 1 6) (point (int_range (-40) 40)));
        ]
    in
    list_size (int_range 0 8) seg >|= List.concat)

let arb_stream ~dims =
  QCheck.make ~print:QCheck.Print.(list (array int)) (gen_stream ~dims)

let placements c_add pts =
  List.map c_add pts

let legacy_same ~budget ~dims pts =
  let c = Compressor.create ~budget ~dims () in
  let l = Compressor_legacy.create ~budget ~dims () in
  let pl = placements (Compressor.add c) pts in
  let ll = placements (Compressor_legacy.add l) pts in
  let placement_eq =
    List.for_all2
      (fun a b ->
        match (a, b) with
        | Compressor.Extended i, Compressor_legacy.Extended j -> i = j
        | Compressor.Opened i, Compressor_legacy.Opened j -> i = j
        | Compressor.Discarded, Compressor_legacy.Discarded -> true
        | _ -> false)
      pl ll
  in
  placement_eq
  && Compressor.lmads c = Compressor_legacy.lmads l
  && Compressor.total c = Compressor_legacy.total l
  && Compressor.discarded c = Compressor_legacy.discarded l
  && Compressor.reconstruct c = Compressor_legacy.reconstruct l
  && (match (Compressor.summary c, Compressor_legacy.summary l) with
     | None, None -> true
     | Some a, Some b ->
       a.Compressor.min_v = b.Compressor_legacy.min_v
       && a.Compressor.max_v = b.Compressor_legacy.max_v
       && a.Compressor.granularity = b.Compressor_legacy.granularity
       && a.Compressor.discarded = b.Compressor_legacy.discarded
     | _ -> false)

let prop_flat_eq_legacy_1d =
  QCheck.Test.make ~name:"flat = legacy (1d, tight budget)" ~count:400
    (QCheck.pair (QCheck.int_range 1 6) (arb_stream ~dims:1))
    (fun (budget, pts) -> legacy_same ~budget ~dims:1 pts)

let prop_flat_eq_legacy_2d =
  QCheck.Test.make ~name:"flat = legacy (2d)" ~count:400
    (QCheck.pair (QCheck.int_range 1 8) (arb_stream ~dims:2))
    (fun (budget, pts) -> legacy_same ~budget ~dims:2 pts)

(* The packed-code scalars must report exactly what [add] reports. *)
let prop_code_eq_add =
  QCheck.Test.make ~name:"add2_code/add1_code = add" ~count:400
    (QCheck.pair (QCheck.int_range 1 6) (arb_stream ~dims:2))
    (fun (budget, pts) ->
      let ca = Compressor.create ~budget ~dims:2 () in
      let cc = Compressor.create ~budget ~dims:2 () in
      let c1a = Compressor.create ~budget ~dims:1 () in
      let c1c = Compressor.create ~budget ~dims:1 () in
      List.for_all
        (fun p ->
          let code_matches placement code =
            match placement with
            | Compressor.Extended i ->
              Compressor.code_tag code = Compressor.code_extended
              && Compressor.code_index code = i
            | Compressor.Opened i ->
              Compressor.code_tag code = Compressor.code_opened
              && Compressor.code_index code = i
            | Compressor.Discarded -> Compressor.code_tag code = Compressor.code_discarded
          in
          code_matches (Compressor.add ca p) (Compressor.add2_code cc p.(0) p.(1))
          && code_matches
               (Compressor.add c1a [| p.(0) |])
               (Compressor.add1_code c1c p.(0)))
        pts
      && Compressor.lmads ca = Compressor.lmads cc
      && Compressor.reconstruct c1a = Compressor.reconstruct c1c)

(* Mid-stream checkpoint/resume must not disturb the caches: restore from
   [state] at an arbitrary split, finish the stream, compare to an
   uninterrupted run and to legacy. *)
let prop_state_resume_eq =
  QCheck.Test.make ~name:"flat of_state resumes like legacy" ~count:300
    (QCheck.triple (QCheck.int_range 1 6) QCheck.small_nat (arb_stream ~dims:2))
    (fun (budget, cut0, pts) ->
      let n = List.length pts in
      let cut = if n = 0 then 0 else cut0 mod (n + 1) in
      let prefix = List.filteri (fun i _ -> i < cut) pts in
      let suffix = List.filteri (fun i _ -> i >= cut) pts in
      let c = Compressor.create ~budget ~dims:2 () in
      List.iter (fun p -> ignore (Compressor.add c p)) prefix;
      let c' = Compressor.of_state (Compressor.state c) in
      List.iter (fun p -> ignore (Compressor.add c' p)) suffix;
      let l = Compressor_legacy.create ~budget ~dims:2 () in
      List.iter (fun p -> ignore (Compressor_legacy.add l p)) pts;
      Compressor.lmads c' = Compressor_legacy.lmads l
      && Compressor.reconstruct c' = Compressor_legacy.reconstruct l
      && Compressor.discarded c' = Compressor_legacy.discarded l)

(* ------------------------------------------------------------------ *)
(* Solver                                                              *)
(* ------------------------------------------------------------------ *)

(* Brute-force references over enumerated points. *)
let brute_matches ~store ~load =
  let stores = Lmad.points store in
  List.length
    (List.filter (fun lp -> List.exists (fun sp -> sp = lp) stores) (Lmad.points load))

let brute_conflicts ~store ~load =
  let n = Lmad.dims load in
  let loc p = Array.sub p 0 (n - 1) in
  let time p = p.(n - 1) in
  let stores = Lmad.points store in
  List.length
    (List.filter
       (fun lp -> List.exists (fun sp -> loc sp = loc lp && time sp < time lp) stores)
       (Lmad.points load))

let mk ~start ~stride ~count = Lmad.of_levels ~start ~levels:[ lv stride count ]

let test_solver_simple_raw () =
  (* Store writes offsets 0..9 (x8) at times 0..9; load reads the same
     offsets at times 10..19: every load iteration conflicts. *)
  let store = mk ~start:[| 0; 0 |] ~stride:[| 8; 1 |] ~count:10 in
  let load = mk ~start:[| 0; 10 |] ~stride:[| 8; 1 |] ~count:10 in
  check_int "all conflict" 10 (Solver.count_conflicts ~store ~load);
  check_int "matches brute force" (brute_conflicts ~store ~load)
    (Solver.count_conflicts ~store ~load)

let test_solver_no_overlap () =
  let store = mk ~start:[| 0; 0 |] ~stride:[| 8; 1 |] ~count:10 in
  let load = mk ~start:[| 4; 10 |] ~stride:[| 8; 1 |] ~count:10 in
  check_int "disjoint lattices" 0 (Solver.count_conflicts ~store ~load)

let test_solver_time_order () =
  (* Same locations but load runs before the store: no RAW conflicts. *)
  let store = mk ~start:[| 0; 100 |] ~stride:[| 8; 1 |] ~count:10 in
  let load = mk ~start:[| 0; 0 |] ~stride:[| 8; 1 |] ~count:10 in
  check_int "load precedes store" 0 (Solver.count_conflicts ~store ~load)

let test_solver_interleaved_time () =
  let store = mk ~start:[| 0; 0 |] ~stride:[| 0; 2 |] ~count:5 in
  let load = mk ~start:[| 0; 1 |] ~stride:[| 0; 2 |] ~count:5 in
  check_int "fixed location" 5 (Solver.count_conflicts ~store ~load);
  check_int "matches brute force" (brute_conflicts ~store ~load)
    (Solver.count_conflicts ~store ~load)

let test_solver_different_strides () =
  let store = mk ~start:[| 0; 0 |] ~stride:[| 4; 1 |] ~count:30 in
  let load = mk ~start:[| 0; 100 |] ~stride:[| 6; 1 |] ~count:20 in
  check_int "matches brute force" (brute_conflicts ~store ~load)
    (Solver.count_conflicts ~store ~load)

let test_solver_single_points () =
  let store = mk ~start:[| 16; 3 |] ~stride:[| 0; 0 |] ~count:1 in
  let load_hit = mk ~start:[| 16; 7 |] ~stride:[| 0; 0 |] ~count:1 in
  let load_miss = mk ~start:[| 24; 7 |] ~stride:[| 0; 0 |] ~count:1 in
  check_int "hit" 1 (Solver.count_conflicts ~store ~load:load_hit);
  check_int "miss" 0 (Solver.count_conflicts ~store ~load:load_miss)

let test_matches_multiplicity () =
  (* Load sweeps the same 4 offsets 10 times (outer level moves nothing in
     location space): each of the 40 iterations matches. *)
  let store = Lmad.of_levels ~start:[| 0; 0 |] ~levels:[ lv [| 0; 8 |] 4 ] in
  let load = Lmad.of_levels ~start:[| 0; 0 |] ~levels:[ lv [| 0; 8 |] 4; lv [| 0; 0 |] 10 ] in
  check_int "multiplicity counted" 40 (Solver.count_matches ~store ~load)

let test_matches_nested_exact () =
  (* 2-level lattices with partial overlap, small enough to brute force. *)
  let store =
    Lmad.of_levels ~start:[| 0; 0 |] ~levels:[ lv [| 0; 8 |] 4; lv [| 0; 40 |] 3 ]
  in
  let load =
    Lmad.of_levels ~start:[| 0; 16 |] ~levels:[ lv [| 0; 8 |] 5; lv [| 0; 40 |] 2 ]
  in
  check_int "nested matches brute force" (brute_matches ~store ~load)
    (Solver.count_matches ~store ~load)

let test_solver_layout_validation () =
  let a = Lmad.make [| 0; 0 |] and b = Lmad.make [| 0 |] in
  check_bool "dim mismatch raises" true
    (try
       ignore (Solver.count_conflicts ~store:a ~load:b);
       false
     with Invalid_argument _ -> true);
  check_bool "1-dim conflicts raises" true
    (try
       ignore (Solver.count_conflicts ~store:b ~load:b);
       false
     with Invalid_argument _ -> true)

let test_overlaps () =
  let a = mk ~start:[| 0; 0 |] ~stride:[| 8; 1 |] ~count:10 in
  let b = mk ~start:[| 4; 0 |] ~stride:[| 8; 1 |] ~count:10 in
  let c = mk ~start:[| 4; 0 |] ~stride:[| 2; 1 |] ~count:10 in
  check_bool "disjoint" false (Solver.overlaps ~a ~b);
  check_bool "crossing" true (Solver.overlaps ~a ~b:c)

let gen_ap ~dims =
  QCheck.Gen.(
    let* start = array_size (return dims) (int_range (-12) 12) in
    let* stride = array_size (return dims) (int_range (-6) 6) in
    let* count = int_range 1 12 in
    return (start, stride, count))

let arb_ap_pair dims = QCheck.make QCheck.Gen.(pair (gen_ap ~dims) (gen_ap ~dims))

let prop_conflicts_vs_brute dims name =
  QCheck.Test.make ~name ~count:2000 (arb_ap_pair dims)
    (fun ((s1, t1, c1), (s2, t2, c2)) ->
      let store = mk ~start:s1 ~stride:t1 ~count:c1 in
      let load = mk ~start:s2 ~stride:t2 ~count:c2 in
      Solver.count_conflicts ~store ~load = brute_conflicts ~store ~load)

let gen_nested ~dims ~max_levels =
  QCheck.Gen.(
    let* start = array_size (return dims) (int_range (-10) 10) in
    let* n_levels = int_range 0 max_levels in
    let* levels =
      list_size (return n_levels)
        (let* stride = array_size (return dims) (int_range (-5) 5) in
         let* count = int_range 2 5 in
         return (lv stride count))
    in
    return (Lmad.of_levels ~start ~levels))

let prop_matches_vs_brute =
  QCheck.Test.make ~name:"count_matches = brute force (nested, 2d)" ~count:1000
    (QCheck.make
       ~print:(fun (a, b) -> Format.asprintf "%a vs %a" Lmad.pp a Lmad.pp b)
       QCheck.Gen.(pair (gen_nested ~dims:2 ~max_levels:3) (gen_nested ~dims:2 ~max_levels:3)))
    (fun (store, load) ->
      Solver.count_matches ~store ~load = brute_matches ~store ~load)

let prop_overlaps_vs_brute =
  QCheck.Test.make ~name:"overlaps agrees with brute force" ~count:1000 (arb_ap_pair 2)
    (fun ((s1, t1, c1), (s2, t2, c2)) ->
      let a = mk ~start:s1 ~stride:t1 ~count:c1 in
      let b = mk ~start:s2 ~stride:t2 ~count:c2 in
      let loc p = Array.sub p 0 (Array.length p - 1) in
      let brute =
        List.exists
          (fun pa -> List.exists (fun pb -> loc pa = loc pb) (Lmad.points b))
          (Lmad.points a)
      in
      Solver.overlaps ~a ~b = brute)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ormp_lmad"
    [
      ( "lmad",
        [
          tc "make" test_make;
          tc "one level" test_one_level;
          tc "two levels" test_two_levels;
          tc "redundant levels dropped" test_redundant_levels_dropped;
          tc "of_levels validation" test_of_levels_validation;
          tc "point bounds" test_point_bounds;
          tc "pp" test_pp;
        ] );
      ( "compressor",
        [
          tc "linear stream" test_compress_linear_stream;
          tc "paper example (two phases)" test_compress_two_phases;
          tc "nested sweep -> one descriptor" test_nested_sweep_single_descriptor;
          tc "nested matrix walk" test_nested_matrix_walk;
          tc "max depth respected" test_max_depth_respected;
          tc "budget overflow" test_budget_overflow;
          tc "summary granularity" test_summary_granularity;
          tc "multidim stream" test_multidim_stream;
          tc "placement reporting" test_placement_reporting;
          tc "create validation" test_create_validation;
          QCheck_alcotest.to_alcotest prop_roundtrip_when_captured;
          QCheck_alcotest.to_alcotest prop_roundtrip_always_prefix_free;
          QCheck_alcotest.to_alcotest prop_accounting;
          QCheck_alcotest.to_alcotest prop_nested_ramps_fit_one_descriptor;
          QCheck_alcotest.to_alcotest prop_flat_eq_legacy_1d;
          QCheck_alcotest.to_alcotest prop_flat_eq_legacy_2d;
          QCheck_alcotest.to_alcotest prop_code_eq_add;
          QCheck_alcotest.to_alcotest prop_state_resume_eq;
        ] );
      ( "solver",
        [
          tc "simple raw" test_solver_simple_raw;
          tc "no overlap" test_solver_no_overlap;
          tc "time order" test_solver_time_order;
          tc "interleaved time" test_solver_interleaved_time;
          tc "different strides" test_solver_different_strides;
          tc "single points" test_solver_single_points;
          tc "matches multiplicity" test_matches_multiplicity;
          tc "nested matches exact" test_matches_nested_exact;
          tc "layout validation" test_solver_layout_validation;
          tc "overlaps" test_overlaps;
          QCheck_alcotest.to_alcotest
            (prop_conflicts_vs_brute 2 "count_conflicts = brute force (2d)");
          QCheck_alcotest.to_alcotest
            (prop_conflicts_vs_brute 3 "count_conflicts = brute force (3d)");
          QCheck_alcotest.to_alcotest prop_matches_vs_brute;
          QCheck_alcotest.to_alcotest prop_overlaps_vs_brute;
        ] );
    ]
